// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per exhibit, plus the design-choice ablations listed
// in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the full experiment (offline phases are
// cached across benchmarks within the process) and reports the
// exhibit's headline numbers as custom metrics.
package medusa_test

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/experiments"
	"github.com/medusa-repro/medusa/internal/model"
)

// benchCtx shares offline artifacts across benchmarks.
var benchCtx = experiments.NewContext()

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(benchCtx, id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for name, v := range r.Metrics {
				b.ReportMetric(v, name)
			}
			if testing.Verbose() {
				b.Log("\n" + r.Render())
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: model parameter sizes and CUDA
// graph node counts (139364 total across the zoo).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure1 regenerates Figure 1: the Qwen1.5-4B cold-start
// timeline (runtime init / loading / first token).
func BenchmarkFigure1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFigure2 regenerates Figure 2: the loading-phase breakdown
// across the ten models.
func BenchmarkFigure2(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFigure3 regenerates Figure 3: CUDA-graph acceleration of
// inference latency (up to ≈2.4×).
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFigure7 regenerates Figure 7: loading-phase and cold-start
// latency for vLLM / vLLM+ASYNC / Medusa across the zoo.
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure8 regenerates Figure 8: the stage-level breakdown of
// the three strategies on Qwen1.5-4B.
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFigure9 regenerates Figure 9: offline-phase overhead
// (capturing + analysis) per model.
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates Figure 10: p99 TTFT under ShareGPT
// traces at RPS 2 and 10 for the four strategies.
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFigure11 regenerates Figure 11: p99 TTFT versus achieved
// throughput as offered load sweeps past saturation.
func BenchmarkFigure11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkAblationIndexMatching contrasts trace-based backward
// matching with naive first-match under allocator address reuse (§4.1).
func BenchmarkAblationIndexMatching(b *testing.B) { runExperiment(b, "ablation-index") }

// BenchmarkAblationCopyFree quantifies what copy-free buffer content
// restoration saves over dumping all referenced buffers (§4.3).
func BenchmarkAblationCopyFree(b *testing.B) { runExperiment(b, "ablation-copyfree") }

// BenchmarkAblationKernelResolve reports the dlsym-vs-hidden kernel
// split behind the triggering-kernels design (§5).
func BenchmarkAblationKernelResolve(b *testing.B) { runExperiment(b, "ablation-resolve") }

// BenchmarkAblationTriggering shows restoration failing without
// triggering-kernels and succeeding with them (§5.2).
func BenchmarkAblationTriggering(b *testing.B) { runExperiment(b, "ablation-trigger") }

// BenchmarkExtCheckpoint compares Medusa with the full
// checkpoint/restore baseline (§9): restore latency vs persisted bytes.
func BenchmarkExtCheckpoint(b *testing.B) { runExperiment(b, "ext-checkpoint") }

// BenchmarkExtMultiGPU exercises tensor-parallel cold starts with
// per-rank materialization (§8 future work).
func BenchmarkExtMultiGPU(b *testing.B) { runExperiment(b, "ext-multigpu") }

// BenchmarkExtDeferred quantifies §2.4's deferred-capture strawman
// against Medusa's elimination of the capture stage.
func BenchmarkExtDeferred(b *testing.B) { runExperiment(b, "ext-deferred") }

// BenchmarkExtSensitivity perturbs the calibrated cost model and
// verifies the headline reduction survives.
func BenchmarkExtSensitivity(b *testing.B) { runExperiment(b, "ext-sensitivity") }

// BenchmarkExtCaptureSizes sweeps capture-size policies, trading
// capture/restore cost against padded-dispatch decode latency.
func BenchmarkExtCaptureSizes(b *testing.B) { runExperiment(b, "ext-capturesizes") }

// BenchmarkExtHotSpare quantifies §2.4's economics: hot spares per
// model vs scale-to-zero on a shared multi-model cluster.
func BenchmarkExtHotSpare(b *testing.B) { runExperiment(b, "ext-hotspare") }

// BenchmarkOfflineZooWallclock measures the wall-clock (not simulated)
// cost of running the offline phase for the whole ten-model zoo through
// the parallel prefetch path — the fleet-style sweep Figure 9 and
// Table 1 perform. A fresh context per iteration defeats the artifact
// cache so every model's offline phase actually runs.
func BenchmarkOfflineZooWallclock(b *testing.B) {
	zoo := model.Zoo()
	for i := 0; i < b.N; i++ {
		c := experiments.NewContext()
		if err := c.PrefetchArtifacts(zoo, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(zoo)), "models/op")
}
