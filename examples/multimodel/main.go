// multimodel demonstrates §2.4's economics on a shared cluster: three
// models co-located on four GPUs under sparse, bursty traffic. Keeping
// a hot spare per model wastes GPUs; scaling to zero exposes cold
// starts — and Medusa is what makes scale-to-zero's tail acceptable.
//
//	go run ./examples/multimodel
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/workload"
)

var modelNames = []string{"Qwen1.5-0.5B", "Qwen1.5-4B", "Llama2-7B"}

func main() {
	store := storage.NewStore(storage.DefaultArray())

	// Offline phase once per model (the per-<GPU, model> artifact).
	medusaArtifacts := map[string]serverless.Config{}
	for _, name := range modelNames {
		cfg, err := model.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		art, report, err := engine.RunOffline(engine.OfflineOptions{Model: cfg, Store: store, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		medusaArtifacts[name] = serverless.Config{Cache: serverless.CacheSpec{Artifact: art, ArtifactBytes: report.ArtifactBytes}}
		fmt.Printf("offline %s: %d nodes materialized into %.2f MB\n",
			name, report.TotalNodes, float64(report.ArtifactBytes)/(1<<20))
	}
	fmt.Println()

	runPolicy := func(label string, strategy engine.Strategy, prewarm int, idle time.Duration) {
		mc := serverless.MultiConfig{NumGPUs: 4}
		for mi, name := range modelNames {
			cfg, _ := model.ByName(name)
			reqs, err := workload.Generate(workload.TraceConfig{
				Seed: int64(100 + mi), RPS: 0.03, Duration: 15 * time.Minute,
			})
			if err != nil {
				log.Fatal(err)
			}
			dcfg := serverless.Config{
				Model: cfg, Strategy: strategy, Store: store,
				Scheduler: serverless.Scheduler{Prewarm: prewarm, IdleTimeout: idle},
				Seed:      int64(mi + 1),
			}
			if strategy.NeedsArtifact() {
				dcfg.Cache = medusaArtifacts[name].Cache
			}
			mc.Deployments = append(mc.Deployments, serverless.Deployment{
				Name: name, Config: dcfg, Requests: reqs,
			})
		}
		res, err := serverless.RunMulti(mc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", label)
		for mi, name := range modelNames {
			d := res.PerDeployment[mi]
			fmt.Printf("  %-13s p99 TTFT %7.3fs  (%d cold starts, %d requests)\n",
				name, d.TTFT.P99().Seconds(), d.ColdStarts, d.Completed)
		}
		fmt.Printf("  cluster: %.0f GPU-seconds provisioned, %d launches\n\n",
			res.GPUSeconds, res.TotalColdStarts)
	}

	runPolicy("HOT SPARES (one pinned instance per model, vLLM):",
		engine.StrategyVLLM, 1, 0)
	runPolicy("SCALE-TO-ZERO (vLLM, 15s idle timeout):",
		engine.StrategyVLLM, 0, 15*time.Second)
	runPolicy("SCALE-TO-ZERO (MEDUSA, 15s idle timeout):",
		engine.StrategyMedusa, 0, 15*time.Second)

	fmt.Println("Medusa makes scale-to-zero viable: hot-spare GPU burn without hot-spare provisioning.")
}
