// Quickstart: materialize a model offline, then compare a vanilla vLLM
// cold start against a Medusa cold start of the same functional model —
// and verify they generate identical text.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
)

func main() {
	// A tiny *functional* model: kernels really execute, so we can
	// check end-to-end that restored CUDA graphs compute the same
	// thing the originals did.
	cfg := model.TestTiny("quickstart-8m")
	store := storage.NewStore(storage.DefaultArray())
	sizes := []int{1, 2, 4, 8}

	fmt.Println("== offline phase (run once per <GPU type, model>) ==")
	artifact, report, err := engine.RunOffline(engine.OfflineOptions{
		Model: cfg, Store: store, Seed: 1, CaptureSizes: sizes,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d graphs (%d nodes) into %q (%.1f KiB)\n",
		len(artifact.Graphs), artifact.TotalNodes(), report.ArtifactKey,
		float64(report.ArtifactBytes)/1024)
	st := artifact.Stats()
	fmt.Printf("parameters: %d indirect index pointers, %d constants; %d permanent buffers\n\n",
		st.Pointers, st.Constants, len(artifact.Permanent))

	fmt.Println("== online phase: two cold starts ==")
	vllm, err := engine.ColdStart(engine.Options{
		Model: cfg, Strategy: engine.StrategyVLLM, Seed: 100, Store: store, CaptureSizes: sizes,
	})
	if err != nil {
		log.Fatal(err)
	}
	med, err := engine.ColdStart(engine.Options{
		Model: cfg, Strategy: engine.StrategyMedusa, Seed: 200, Store: store,
		CaptureSizes: sizes, Artifact: artifact, ArtifactBytes: report.ArtifactBytes,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vLLM   loading phase: %8.3fs\n", vllm.LoadingDuration().Seconds())
	fmt.Printf("MEDUSA loading phase: %8.3fs  (%.1f%% faster)\n\n",
		med.LoadingDuration().Seconds(),
		(1-med.LoadingDuration().Seconds()/vllm.LoadingDuration().Seconds())*100)

	prompt := "tok5 tok12 tok3 tok3"
	a, err := vllm.Generate(prompt, 8)
	if err != nil {
		log.Fatal(err)
	}
	b, err := med.Generate(prompt, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prompt:            %q\n", prompt)
	fmt.Printf("vLLM generation:   %q\n", a)
	fmt.Printf("MEDUSA generation: %q\n", b)
	if a == b {
		fmt.Println("✓ restored CUDA graphs are functionally identical to freshly captured ones")
	} else {
		log.Fatal("✗ generations diverged — restoration bug")
	}
}
