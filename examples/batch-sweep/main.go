// batch-sweep walks vLLM's 35 capture batch sizes for one model,
// showing per-batch graph shapes (node counts, the padded largest
// graphs) and the decode-iteration latency with CUDA graphs versus
// per-kernel launches — the microscopic view behind Figure 3.
//
//	go run ./examples/batch-sweep [-model Qwen1.5-4B]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/kernels"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
)

func main() {
	name := flag.String("model", "Qwen1.5-4B", "model name")
	flag.Parse()
	cfg, err := model.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	store := storage.NewStore(storage.DefaultArray())
	withG, err := engine.ColdStart(engine.Options{
		Model: cfg, Strategy: engine.StrategyVLLM, Seed: 1, Store: store,
	})
	if err != nil {
		log.Fatal(err)
	}
	withoutG, err := engine.ColdStart(engine.Options{
		Model: cfg, Strategy: engine.StrategyNoGraph, Seed: 2, Store: store,
	})
	if err != nil {
		log.Fatal(err)
	}

	sizes := model.CaptureBatchSizes()
	fmt.Printf("%s: %d layers × %d kernels + %d epilogue nodes; %d graphs captured\n\n",
		cfg.Name, cfg.Layers, cfg.Family.KernelsPerLayer(), cfg.EpilogueNodes, len(sizes))
	fmt.Printf("%6s %8s %8s %12s %12s %8s\n",
		"batch", "bucket", "nodes", "graph (ms)", "eager (ms)", "speedup")
	total := 0
	for _, b := range sizes {
		dg, err := withG.DecodeStepDuration(b)
		if err != nil {
			log.Fatal(err)
		}
		de, err := withoutG.DecodeStepDuration(b)
		if err != nil {
			log.Fatal(err)
		}
		nodes := cfg.NodesPerGraph(b, sizes)
		total += nodes
		pad := ""
		if cfg.GraphPadded(b, sizes) {
			pad = "*"
		}
		fmt.Printf("%6d %8d %7d%1s %12.3f %12.3f %7.2fx\n",
			b, kernels.GemmBucket(b), nodes, pad,
			float64(dg.Microseconds())/1000, float64(de.Microseconds())/1000,
			float64(de)/float64(dg))
	}
	fmt.Printf("\ntotal nodes: %d (Table 1); * = padded graph\n", total)
}
