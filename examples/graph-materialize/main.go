// graph-materialize is a tour of the low-level materialization API,
// independent of the LLM engine: capture a small CUDA graph while
// recording the allocation/launch trace, analyze it into an artifact,
// serialize it, and restore it inside a *different* process whose
// address space layout (allocator base, library bases) is completely
// different — then replay and compare outputs.
//
//	go run ./examples/graph-materialize
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/gpu"
	"github.com/medusa-repro/medusa/internal/kernels"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/vclock"
)

const n = 8

func main() {
	rt := kernels.NewRuntime()

	fmt.Println("== offline process ==")
	art, reference := offline(rt)
	encoded, err := art.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifact: %d bytes, %d nodes, %d alloc events, kernels: %v\n\n",
		len(encoded), art.TotalNodes(), len(art.AllocSeq), keys(art))

	fmt.Println("== online process (different ASLR, different heap) ==")
	decoded, err := medusa.Decode(encoded)
	if err != nil {
		log.Fatal(err)
	}
	restored := online(rt, decoded)
	if bytes.Equal(reference, restored) {
		fmt.Println("✓ replayed output of the restored graph matches the original bit-for-bit")
	} else {
		log.Fatal("✗ outputs differ")
	}
}

// offline captures a two-kernel pipeline and materializes it.
func offline(rt *cuda.Runtime) (*medusa.Artifact, []byte) {
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 1, Mode: gpu.Functional})
	rec := medusa.NewRecorder()
	p.SetHooks(rec.Hooks())
	s := p.NewStream()

	// "Model loading": one persistent input buffer.
	src := mustMalloc(p, n*4)
	rec.LabelLastAlloc("src")
	dst := mustMalloc(p, n*4)
	rec.LabelLastAlloc("dst")
	writeInput(p, src)

	rec.MarkCaptureStageBegin()
	// Warm-up loads the kernels' module (capture would otherwise fail
	// with the simulated cudaErrorStreamCaptureUnsupported).
	scaleArgs := []cuda.Value{cuda.PtrValue(dst), cuda.PtrValue(src), cuda.F32Value(3), cuda.U32Value(n)}
	copyArgs := []cuda.Value{cuda.PtrValue(dst), cuda.PtrValue(dst), cuda.U32Value(n)}
	must(p.Launch(s, kernels.ElemCopy, copyArgs))
	must(p.Launch(s, kernels.RMSNorm, []cuda.Value{
		cuda.PtrValue(dst), cuda.PtrValue(src), cuda.PtrValue(src), cuda.U32Value(1), cuda.U32Value(n)}))
	_ = scaleArgs

	must(s.BeginCapture())
	must(p.Launch(s, kernels.RMSNorm, []cuda.Value{
		cuda.PtrValue(dst), cuda.PtrValue(src), cuda.PtrValue(src), cuda.U32Value(1), cuda.U32Value(n)}))
	must(p.Launch(s, kernels.ElemCopy, copyArgs))
	g, err := s.EndCapture()
	must(err)
	must(rec.AttachGraph(1, g))
	rec.MarkCaptureStageEnd()
	rec.RecordKV(medusa.KVRecord{NumBlocks: 1, BlockBytes: 1})

	fmt.Printf("captured graph: %d nodes; node 0 kernel addr %#x (will differ online)\n",
		g.NodeCount(), g.Nodes()[0].KernelAddr)

	art, err := medusa.Analyze(rec, p, medusa.AnalyzeOptions{ModelName: "pipeline"})
	must(err)

	ge, err := g.Instantiate(p)
	must(err)
	must(ge.Launch(s))
	return art, snapshot(p, dst)
}

// online restores the artifact in a fresh process and replays it.
func online(rt *cuda.Runtime, art *medusa.Artifact) []byte {
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 999, Mode: gpu.Functional})
	rest, err := medusa.NewRestorer(p, art)
	must(err)
	s := p.NewStream()

	// Natural control flow re-creates the prefix allocations…
	src := mustMalloc(p, n*4)
	dst := mustMalloc(p, n*4)
	writeInput(p, src)
	_ = dst

	// …and Medusa replays the rest and rebuilds the graph. All kernels
	// here are exported, so the dlsym route suffices (no trigger).
	must(rest.ReplayPrefix())
	must(rest.ReplayCaptureStage())
	graphs, err := rest.RestoreGraphs(nil)
	must(err)
	ge := graphs[1]
	fmt.Printf("restored graph: %d nodes; node 0 kernel addr %#x\n",
		ge.Graph().NodeCount(), ge.Graph().Nodes()[0].KernelAddr)
	must(ge.Launch(s))
	addr, _ := rest.AddrOfLabel("dst")
	return snapshot(p, addr)
}

func mustMalloc(p *cuda.Process, size uint64) uint64 {
	a, err := p.Malloc(size)
	must(err)
	return a
}

func writeInput(p *cuda.Process, addr uint64) {
	b, _, ok := p.Device().FindBuffer(addr)
	if !ok {
		log.Fatal("input buffer missing")
	}
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i) + 1
	}
	must(b.SetFloat32s(0, vals))
}

func snapshot(p *cuda.Process, addr uint64) []byte {
	b, _, ok := p.Device().FindBuffer(addr)
	if !ok {
		log.Fatal("snapshot buffer missing")
	}
	out, err := b.Snapshot()
	must(err)
	return out
}

func keys(art *medusa.Artifact) []string {
	var out []string
	for k := range art.Kernels {
		out = append(out, k)
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
