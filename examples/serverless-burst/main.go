// serverless-burst simulates the paper's motivating scenario: an LLM
// inference service facing bursty traffic (10–20× rate swings within
// 30-second windows, §1). Bursts force scale-out; every new instance
// pays a cold start on the request path. The example compares how the
// four loading strategies absorb the same burst train.
//
//	go run ./examples/serverless-burst
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/workload"
)

func main() {
	cfg, err := model.ByName("Llama2-7B")
	if err != nil {
		log.Fatal(err)
	}
	store := storage.NewStore(storage.DefaultArray())

	fmt.Println("running Medusa offline phase for", cfg.Name, "…")
	artifact, report, err := engine.RunOffline(engine.OfflineOptions{
		Model: cfg, Store: store, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	reqs, err := workload.GenerateBursty(workload.BurstConfig{
		Seed:     17,
		BaseRPS:  2,
		BurstRPS: 40,
		Period:   30 * time.Second,
		BurstLen: 6 * time.Second,
		Duration: 2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d requests over 2m (base 2 RPS, 6s bursts of 40 RPS every 30s)\n\n", len(reqs))

	fmt.Printf("%-15s %12s %12s %12s %12s %6s\n",
		"strategy", "p50 TTFT", "p99 TTFT", "p99 E2E", "throughput", "colds")
	for _, s := range []engine.Strategy{
		engine.StrategyVLLM, engine.StrategyVLLMAsync, engine.StrategyNoGraph, engine.StrategyMedusa,
	} {
		sc := serverless.Config{
			Model:    cfg,
			Strategy: s,
			Store:    store,
			NumGPUs:  4,
			Scheduler: serverless.Scheduler{
				Prewarm:        1,
				InstanceTarget: 48, // aggressive scale-out so bursts spawn instances
				IdleTimeout:    15 * time.Second,
			},
			// ShareGPT is conversational: a third of answers draw a
			// follow-up question over the accumulated context.
			Workload: serverless.Workload{FollowUp: &serverless.FollowUpModel{
				Probability: 0.33,
				ThinkTime:   8 * time.Second,
				MaxTurns:    4,
				NewTokens:   40,
			}},
			Seed: 5,
		}
		if s.NeedsArtifact() {
			sc.Cache = serverless.CacheSpec{Artifact: artifact, ArtifactBytes: report.ArtifactBytes}
		}
		res, err := serverless.Run(sc, reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %11.3fs %11.3fs %11.3fs %9.2f r/s %6d\n",
			s, res.TTFT.P50().Seconds(), res.TTFT.P99().Seconds(),
			res.E2E.P99().Seconds(), res.Throughput, res.ColdStarts)
	}
	fmt.Println("\nFaster cold starts let the autoscaler absorb bursts before queues build:")
	fmt.Println("Medusa's restored instances come online ~2x sooner than vanilla vLLM's.")
}
