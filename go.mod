module github.com/medusa-repro/medusa

go 1.23
