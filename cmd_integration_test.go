package medusa_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one command into a temp dir and returns the binary
// path.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestMedusaBenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildCmd(t, "medusa-bench")
	list := run(t, bin, "-list")
	for _, id := range []string{"table1", "fig8", "ablation-index", "ext-deferred"} {
		if !strings.Contains(list, id) {
			t.Fatalf("-list missing %s:\n%s", id, list)
		}
	}
	out := run(t, bin, "-exp", "fig8")
	if !strings.Contains(out, "MEDUSA") || !strings.Contains(out, "kv_cache_init") {
		t.Fatalf("fig8 output malformed:\n%s", out)
	}
	// Unknown experiment must fail with a helpful message.
	cmd := exec.Command(bin, "-exp", "fig99")
	combined, err := cmd.CombinedOutput()
	if err == nil || !strings.Contains(string(combined), "unknown id") {
		t.Fatalf("fig99 = %v\n%s", err, combined)
	}
}

func TestMedusaOfflineCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildCmd(t, "medusa-offline")
	out := run(t, bin, "-model", "Qwen1.5-0.5B")
	if !strings.Contains(out, "Qwen1.5-0.5B") || !strings.Contains(out, "9118") {
		t.Fatalf("offline output malformed:\n%s", out)
	}
	cmd := exec.Command(bin, "-model", "GPT-5")
	if err := cmd.Run(); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestMedusaInspectCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildCmd(t, "medusa-inspect")
	out := run(t, bin, "-model", "Qwen1.5-0.5B", "-graphs", "2")
	for _, want := range []string{
		"kernel name table", "triggering-kernels + cuModuleEnumerateFunctions",
		"dlsym + cudaGetFuncBySymbol", "indirect index", "batch   1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
}

func TestMedusaSimulateCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := buildCmd(t, "medusa-simulate")
	out := run(t, bin, "-model", "Qwen1.5-0.5B", "-strategy", "medusa", "-rps", "5", "-duration", "10")
	if !strings.Contains(out, "TTFT p50/p99") || !strings.Contains(out, "cold starts") {
		t.Fatalf("simulate output malformed:\n%s", out)
	}
}
