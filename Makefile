# Convenience targets for the Medusa reproduction.

GO ?= go

.PHONY: all build vet test test-race short bench figures examples fuzz cover clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the parallel offline pipeline (analysis worker pool,
# validation forwarding shards, artifact prefetch).
test-race:
	$(GO) test -race ./internal/medusa/ ./internal/engine/ ./internal/experiments/

# Skip the long trace simulations and CLI integration tests.
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure into results/, mirroring the original
# artifact's `python scripts/<exp>.py > results/<Figure>` workflow.
figures:
	$(GO) run ./cmd/medusa-bench -all -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/graph-materialize
	$(GO) run ./examples/serverless-burst
	$(GO) run ./examples/batch-sweep
	$(GO) run ./examples/multimodel

fuzz:
	$(GO) test -run xxx -fuzz FuzzDecode -fuzztime 30s ./internal/medusa/
	$(GO) test -run xxx -fuzz FuzzEncodeDecode -fuzztime 30s ./internal/tokenizer/

cover:
	$(GO) test -cover ./internal/...

clean:
	rm -rf results
