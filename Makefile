# Convenience targets for the Medusa reproduction.

GO ?= go

.PHONY: all check build vet lint docs linkcheck test test-race short bench bench-smoke batch-smoke fleet-smoke faults-smoke figures examples fuzz cover trace-demo clean

all: build test

# One-stop verification: compile, vet, lint the determinism invariants,
# check the documentation's relative links, full tests, race-detect
# everything, then the batched-execution and fleet-control-plane smokes.
check: build vet lint linkcheck test test-race batch-smoke fleet-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# medusalint enforces the simulator's determinism, capture-safety, and
# pooled-state invariants: the syntactic passes (wallclock, seededrand,
# maporder, capturesync) plus the flow-aware CFG passes (kvpair,
# epochguard, poolescape, spanpair); see DESIGN.md §8 for the
# invariant-to-analyzer mapping. The generous wall-clock budget is a
# tripwire so the CFG passes can't silently blow up CI time (timeout
# exits 124 on breach).
LINT_BUDGET ?= 180s
lint:
	timeout $(LINT_BUDGET) $(GO) run ./cmd/medusalint ./...

# Godoc gate: fail on any undocumented exported identifier in the
# packages whose APIs FAILURES.md, DESIGN.md and docs/ARTIFACT_FORMAT.md
# document.
docs:
	$(GO) run ./cmd/medusa-doccheck ./internal/faults ./internal/artifactcache \
		./internal/cluster ./internal/serverless ./internal/sched ./internal/cliconfig \
		./internal/eventq ./internal/workload ./internal/replicate \
		./internal/autoscale ./internal/router ./internal/metrics \
		./internal/medusa ./internal/storage ./internal/engine

# Doc-link gate: every relative markdown link in the top-level docs and
# docs/ must resolve to an existing file (fragments stripped, absolute
# URLs skipped).
linkcheck:
	$(GO) run ./cmd/medusa-linkcheck README.md DESIGN.md EXPERIMENTS.md \
		FAILURES.md ROADMAP.md CHANGES.md docs

test:
	$(GO) test ./...

# Race-detect the whole tree: the parallel offline pipeline (analysis
# worker pool, validation forwarding shards, artifact prefetch) and the
# traced simulation stack are the interesting packages, but nothing is
# exempt.
test-race:
	$(GO) test -race ./...

# Skip the long trace simulations and CLI integration tests.
short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Seconds-scale benchmark gate for CI: the seeded eviction-policy sweep
# (lru/lfu/costaware on one 2-node Zipf workload), a two-node fleet
# simulation exercising the tiered artifact cache end to end, and the
# simulator-core scale smoke — one million streamed requests under a
# wall-clock budget with an allocs/request ceiling checked in at
# internal/cluster/testdata/max_allocs_per_request.
bench-smoke:
	$(GO) run ./cmd/medusa-bench -exp ext-cache-policies
	$(GO) run ./cmd/medusa-simulate -nodes 2 -models "Qwen1.5-0.5B,Llama2-7B" \
		-cache-policy costaware -cache-ram 3 -cache-ssd 6 -idle 200ms -rps 3 -duration 10
	MEDUSA_SCALE_SMOKE=1 $(GO) test -run TestScaleSmoke1M -count=1 -v ./internal/cluster/

# Seconds-scale continuous-batching gate: a seeded 100k-request fleet
# run in batched execution mode under a wall-clock budget and an
# allocs/request ceiling checked in at
# internal/cluster/testdata/max_allocs_per_request_batched.
batch-smoke:
	MEDUSA_BATCH_SMOKE=1 $(GO) test -run TestBatchSmoke100k -count=1 -v ./internal/cluster/

# Seconds-scale fleet-control-plane gate: a seeded ~100k-request
# diurnal multi-tenant run under predictive autoscaling and score
# routing, asserting SLO attainment and node-seconds stay inside
# checked bounds.
fleet-smoke:
	MEDUSA_FLEET_SMOKE=1 $(GO) test -run TestFleetSmoke100k -count=1 -v ./internal/cluster/

# Seconds-scale fault-injection gate: the seeded probability sweep
# (every run must survive every injected fault — FAILURES.md) plus a
# crash-preset fleet simulation exercising requeue and lost tiers.
faults-smoke:
	$(GO) run ./cmd/medusa-bench -exp ext-fault-sweep
	$(GO) run ./cmd/medusa-simulate -faults crash -nodes 2 -models "Qwen1.5-0.5B,Llama2-7B" \
		-cache-ram 3 -cache-ssd 6 -idle 250ms -rps 3 -duration 15

# Regenerate every table/figure into results/, mirroring the original
# artifact's `python scripts/<exp>.py > results/<Figure>` workflow.
figures:
	$(GO) run ./cmd/medusa-bench -all -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/graph-materialize
	$(GO) run ./examples/serverless-burst
	$(GO) run ./examples/batch-sweep
	$(GO) run ./examples/multimodel

fuzz:
	$(GO) test -run xxx -fuzz FuzzDecode$$ -fuzztime 30s ./internal/medusa/
	$(GO) test -run xxx -fuzz FuzzDecodeCorrupted -fuzztime 30s ./internal/medusa/
	$(GO) test -run xxx -fuzz FuzzArtifactRoundTrip -fuzztime 30s ./internal/medusa/
	$(GO) test -run xxx -fuzz FuzzTemplateRoundTrip -fuzztime 30s ./internal/medusa/
	$(GO) test -run xxx -fuzz FuzzDeltaCorrupted -fuzztime 30s ./internal/medusa/
	$(GO) test -run xxx -fuzz FuzzDecodeTemplate -fuzztime 30s ./internal/medusa/
	$(GO) test -run xxx -fuzz FuzzEncodeDecode -fuzztime 30s ./internal/tokenizer/

cover:
	$(GO) test -cover ./internal/...

# Demonstrate the tracing layer: a short cluster simulation that writes
# a Perfetto-loadable Chrome trace and prints the drift-free per-phase
# cold-start breakdown.
trace-demo:
	mkdir -p results
	$(GO) run ./cmd/medusa-simulate -rps 4 -duration 20 -phases -trace results/trace-demo.json

clean:
	rm -rf results
