// Command medusa-bench regenerates the paper's tables and figures
// against the simulated substrate.
//
// Usage:
//
//	medusa-bench -list
//	medusa-bench -exp fig7
//	medusa-bench -all
//	medusa-bench -exp fig7 -trace fig7.json -phases
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/medusa-repro/medusa/internal/cliconfig"
	"github.com/medusa-repro/medusa/internal/experiments"
	"github.com/medusa-repro/medusa/internal/obs"
	"github.com/medusa-repro/medusa/internal/prof"
)

func main() {
	bv := cliconfig.RegisterBatch(flag.CommandLine)
	fv := cliconfig.RegisterFleet(flag.CommandLine)
	exp := flag.String("exp", "", "experiment id to run (see -list)")
	all := flag.Bool("all", false, "run every registered experiment")
	list := flag.Bool("list", false, "list experiment ids")
	format := flag.String("format", "text", "output format: text | csv")
	outDir := flag.String("out", "", "also write each result to <dir>/<id>.txt (the artifact's results/ layout)")
	tracePath := flag.String("trace", "", "write the cold-start spans of the run as Chrome trace-event JSON to this file")
	phases := flag.Bool("phases", false, "after running, print per-strategy cold-start phase breakdowns")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}()
	ctx := experiments.NewContext()
	ctx.Batch = bv.BatchParams()
	ctx.Fleet = experiments.FleetOverrides{
		Autoscale: fv.Autoscale,
		Router:    fv.Router,
		SLO:       fv.SLO(),
	}
	if *tracePath != "" {
		ctx.Tracer = obs.NewTracer()
	}
	run := func(id string) error {
		r, err := experiments.Run(ctx, id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		var rendered string
		switch *format {
		case "csv":
			rendered = r.RenderCSV()
		case "text":
			rendered = r.Render() + "\n"
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		fmt.Print(rendered)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, id+".txt")
			if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
				return err
			}
		}
		return nil
	}
	switch {
	case *all:
		for _, id := range experiments.IDs() {
			if err := run(id); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	case *exp != "":
		if err := run(*exp); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *phases {
		fmt.Println("\ncold-start phase breakdown (exclusive attribution; sums are drift-free):")
		fmt.Print(ctx.RenderPhases())
	}
	if ctx.Tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := ctx.Tracer.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("\nChrome trace written to %s (%d spans, %d tracks) — load at ui.perfetto.dev\n",
			*tracePath, ctx.Tracer.Len(), len(ctx.Tracer.Tracks()))
	}
}
