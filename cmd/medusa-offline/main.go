// Command medusa-offline runs Medusa's offline phase — the capturing
// stage and the analysis stage — for one model or the whole zoo, and
// reports the materialization inventory (the counterpart of the
// artifact's `scripts/serverless_llm.py --offline` step).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/vclock"
)

func main() {
	name := flag.String("model", "", "model name (e.g. \"Qwen1.5-4B\"); empty runs the full zoo")
	flag.Parse()

	var configs []model.Config
	if *name == "" {
		configs = model.Zoo()
	} else {
		cfg, err := model.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		configs = []model.Config{cfg}
	}

	store := storage.NewStore(storage.DefaultArray())
	fmt.Printf("%-14s %12s %12s %12s %10s %8s\n",
		"model", "capturing(s)", "analysis(s)", "total(s)", "nodes", "MB")
	for i, cfg := range configs {
		clock := vclock.New()
		art, report, err := engine.RunOffline(engine.OfflineOptions{
			Model: cfg, Store: store, Seed: int64(1000 + i), Clock: clock,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %s: %v\n", cfg.Name, err)
			os.Exit(1)
		}
		stats := art.Stats()
		fmt.Printf("%-14s %12.2f %12.2f %12.2f %10d %8.2f\n",
			cfg.Name,
			report.CaptureStageDuration.Seconds(),
			report.AnalysisDuration.Seconds(),
			report.Total().Seconds(),
			report.TotalNodes,
			float64(report.ArtifactBytes)/(1<<20))
		fmt.Printf("    params: %d pointers, %d constants; %d kernels; %d permanent buffers; stored at %q\n",
			stats.Pointers, stats.Constants, len(art.Kernels), len(art.Permanent), report.ArtifactKey)
	}
}
