// Command medusa-offline runs Medusa's offline phase — the capturing
// stage and the analysis stage — for one model or the whole zoo, and
// reports the materialization inventory (the counterpart of the
// artifact's `scripts/serverless_llm.py --offline` step).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/vclock"
)

func main() {
	name := flag.String("model", "", "model name (e.g. \"Qwen1.5-4B\"); empty runs the full zoo")
	parallel := flag.Int("parallel", 0, "offline phases to run concurrently (0 = GOMAXPROCS); models are independent, output order is stable")
	flag.Parse()

	var configs []model.Config
	if *name == "" {
		configs = model.Zoo()
	} else {
		cfg, err := model.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		configs = []model.Config{cfg}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}

	// Fan the per-model offline phases out across the pool (seeds are
	// fixed per model index, so results match a sequential run), then
	// report in zoo order.
	type outcome struct {
		line  string
		stats string
		err   error
		name  string
	}
	store := storage.NewStore(storage.DefaultArray())
	outs := make([]outcome, len(configs))
	run := func(i int) {
		cfg := configs[i]
		clock := vclock.New()
		art, report, err := engine.RunOffline(engine.OfflineOptions{
			Model: cfg, Store: store, Seed: int64(1000 + i), Clock: clock,
		})
		if err != nil {
			outs[i] = outcome{err: err, name: cfg.Name}
			return
		}
		stats := art.Stats()
		outs[i] = outcome{
			name: cfg.Name,
			line: fmt.Sprintf("%-14s %12.2f %12.2f %12.2f %10d %8.2f\n",
				cfg.Name,
				report.CaptureStageDuration.Seconds(),
				report.AnalysisDuration.Seconds(),
				report.Total().Seconds(),
				report.TotalNodes,
				float64(report.ArtifactBytes)/(1<<20)),
			stats: fmt.Sprintf("    params: %d pointers, %d constants; %d kernels; %d permanent buffers; stored at %q\n",
				stats.Pointers, stats.Constants, len(art.Kernels), len(art.Permanent), report.ArtifactKey),
		}
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run(i)
			}
		}()
	}
	for i := range configs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	fmt.Printf("%-14s %12s %12s %12s %10s %8s\n",
		"model", "capturing(s)", "analysis(s)", "total(s)", "nodes", "MB")
	for _, o := range outs {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "error: %s: %v\n", o.name, o.err)
			os.Exit(1)
		}
		fmt.Print(o.line)
		fmt.Print(o.stats)
	}
}
