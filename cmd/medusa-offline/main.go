// Command medusa-offline runs Medusa's offline phase — the capturing
// stage and the analysis stage — for one model or the whole zoo, and
// reports the materialization inventory (the counterpart of the
// artifact's `scripts/serverless_llm.py --offline` step).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/vclock"
)

func main() {
	name := flag.String("model", "", "model name (e.g. \"Qwen1.5-4B\"); empty runs the full zoo")
	parallel := flag.Int("parallel", 0, "offline phases to run concurrently (0 = GOMAXPROCS); models are independent, output order is stable")
	templates := flag.Bool("templates", false, "after the offline phases, factor the artifacts into shared per-family templates plus per-model deltas (wire format v3) and report the registry footprint")
	flag.Parse()

	var configs []model.Config
	if *name == "" {
		configs = model.Zoo()
	} else {
		cfg, err := model.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		configs = []model.Config{cfg}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}

	// Fan the per-model offline phases out across the pool (seeds are
	// fixed per model index, so results match a sequential run), then
	// report in zoo order.
	type outcome struct {
		line  string
		stats string
		err   error
		name  string
		art   *medusa.Artifact
		bytes uint64
	}
	store := storage.NewStore(storage.DefaultArray())
	outs := make([]outcome, len(configs))
	run := func(i int) {
		cfg := configs[i]
		clock := vclock.New()
		art, report, err := engine.RunOffline(engine.OfflineOptions{
			Model: cfg, Store: store, Seed: int64(1000 + i), Clock: clock,
		})
		if err != nil {
			outs[i] = outcome{err: err, name: cfg.Name}
			return
		}
		stats := art.Stats()
		outs[i] = outcome{
			name: cfg.Name,
			art:  art, bytes: report.ArtifactBytes,
			line: fmt.Sprintf("%-14s %12.2f %12.2f %12.2f %10d %8.2f\n",
				cfg.Name,
				report.CaptureStageDuration.Seconds(),
				report.AnalysisDuration.Seconds(),
				report.Total().Seconds(),
				report.TotalNodes,
				float64(report.ArtifactBytes)/(1<<20)),
			stats: fmt.Sprintf("    params: %d pointers, %d constants; %d kernels; %d permanent buffers; stored at %q\n",
				stats.Pointers, stats.Constants, len(art.Kernels), len(art.Permanent), report.ArtifactKey),
		}
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run(i)
			}
		}()
	}
	for i := range configs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	fmt.Printf("%-14s %12s %12s %12s %10s %8s\n",
		"model", "capturing(s)", "analysis(s)", "total(s)", "nodes", "MB")
	for _, o := range outs {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "error: %s: %v\n", o.name, o.err)
			os.Exit(1)
		}
		fmt.Print(o.line)
		fmt.Print(o.stats)
	}

	if !*templates {
		return
	}
	// Template factoring: one shared template per architecture family,
	// every artifact re-encoded as a v3 delta against it. Both halves
	// land in the store — templates under engine.TemplateKey, deltas
	// replacing the self-contained artifacts — and the summary is the
	// registry operator's view: what the fleet's artifact storage
	// shrinks to.
	arts := make([]*medusa.Artifact, len(configs))
	for i, o := range outs {
		arts[i] = o.art
	}
	clock := vclock.New()
	fleet, err := engine.BuildFleetTemplates(store, clock, configs, arts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%-14s %-10s %12s %12s %8s\n", "model", "family", "full KB", "delta KB", "ratio")
	var fullTotal, sharedTotal uint64
	for i, cfg := range configs {
		delta, err := arts[i].EncodeDelta(fleet[cfg.Family])
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %s: %v\n", cfg.Name, err)
			os.Exit(1)
		}
		store.Put(clock, engine.ArtifactKey(cfg.Name), delta)
		fullTotal += outs[i].bytes
		sharedTotal += uint64(len(delta))
		fmt.Printf("%-14s %-10s %12.1f %12.1f %7.1fx\n",
			cfg.Name, cfg.Family,
			float64(outs[i].bytes)/1024, float64(len(delta))/1024,
			float64(outs[i].bytes)/float64(len(delta)))
	}
	fams := make([]model.Family, 0, len(fleet))
	for fam := range fleet {
		fams = append(fams, fam)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	for _, fam := range fams {
		sz := uint64(len(fleet[fam].Encode()))
		sharedTotal += sz
		fmt.Printf("%-14s %-10s %12s %12.1f %8s\n",
			"template", fam, "-", float64(sz)/1024, "-")
	}
	fmt.Printf("registry: %.2f MB self-contained -> %.2f MB templates+deltas (%.1fx dedup)\n",
		float64(fullTotal)/(1<<20), float64(sharedTotal)/(1<<20),
		float64(fullTotal)/float64(sharedTotal))
}
