// medusalint is the multichecker driver for the repository's custom
// determinism and capture-safety analyzers. Four are syntactic AST
// passes:
//
//	wallclock   — all timing flows through internal/vclock, never time.Now
//	seededrand  — every RNG derives from a config seed
//	maporder    — no order-dependent map iteration on serialization paths
//	capturesync — no sync / module loading between BeginCapture and EndCapture
//
// and four are flow-aware, built on the intraprocedural CFG and
// path-sensitive pairing engine under internal/lint/analysis:
//
//	kvpair      — every kvcache Reserve reaches Commit or Rollback on all paths
//	epochguard  — epoch comparison dominates every mutation of pooled event state
//	poolescape  — no use of a free-listed pointer after freeReq/freeInst/recycle
//	spanpair    — every obs span begun is Ended (or handed off) on all paths
//
// Standalone use (what `make lint` runs):
//
//	medusalint [-run wallclock,maporder] [-json] [packages]
//
// exits 0 when the tree is clean and 1 with file:line:col findings
// otherwise; -json reports the findings as a JSON array of
// {file,line,col,analyzer,message} objects instead of text. A
// justified //medusalint:allow analyzer(reason) directive on or
// directly above a line suppresses one finding.
//
// The binary also speaks the go vet -vettool protocol: invoked with
// -V=full it prints its version, and invoked with a *.cfg argument it
// analyzes the single package the go command described there, so
//
//	go build -o bin/medusalint ./cmd/medusalint
//	go vet -vettool=bin/medusalint ./...
//
// works too and shares vet's caching.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"github.com/medusa-repro/medusa/internal/lint/analysis"
	"github.com/medusa-repro/medusa/internal/lint/capturesync"
	"github.com/medusa-repro/medusa/internal/lint/epochguard"
	"github.com/medusa-repro/medusa/internal/lint/kvpair"
	"github.com/medusa-repro/medusa/internal/lint/loader"
	"github.com/medusa-repro/medusa/internal/lint/maporder"
	"github.com/medusa-repro/medusa/internal/lint/poolescape"
	"github.com/medusa-repro/medusa/internal/lint/runner"
	"github.com/medusa-repro/medusa/internal/lint/seededrand"
	"github.com/medusa-repro/medusa/internal/lint/spanpair"
	"github.com/medusa-repro/medusa/internal/lint/wallclock"
)

// suite is every analyzer medusalint ships, in report order.
var suite = []*analysis.Analyzer{
	capturesync.Analyzer,
	epochguard.Analyzer,
	kvpair.Analyzer,
	maporder.Analyzer,
	poolescape.Analyzer,
	seededrand.Analyzer,
	spanpair.Analyzer,
	wallclock.Analyzer,
}

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printJSON writes findings as a JSON array (always an array, [] when
// clean) for machine consumption — CI annotation, editors, dashboards.
func printJSON(findings []runner.Finding) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func main() {
	flagV := flag.String("V", "", "print version and exit (go vet -vettool handshake)")
	flagFlags := flag.Bool("flags", false, "print flag definitions as JSON and exit (go vet -vettool handshake)")
	flagRun := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flagList := flag.Bool("list", false, "list analyzers and exit")
	flagJSON := flag.Bool("json", false, "report findings as a JSON array of {file,line,col,analyzer,message}")
	flag.Parse()

	if *flagV != "" {
		printVersion()
		return
	}
	if *flagFlags {
		// The go command probes the tool's extra flags; medusalint
		// exposes none to vet.
		fmt.Println("[]")
		return
	}
	if *flagList {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	selected, err := selectAnalyzers(*flagRun)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetMode(args[0], selected))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	pkgs, err := loader.Load(".", args...)
	if err != nil {
		fatal(err)
	}
	findings, err := runner.Run(pkgs, selected)
	if err != nil {
		fatal(err)
	}
	if *flagJSON {
		printJSON(findings)
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "medusalint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "medusalint: %v\n", err)
	os.Exit(2)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion implements the -V=full handshake: the go command hashes
// this line into its vet cache key, so it includes a digest of the
// medusalint binary itself.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:8])
		}
	}
	fmt.Printf("medusalint version devel buildID=%s\n", id)
}

func selectAnalyzers(runList string) ([]*analysis.Analyzer, error) {
	if runList == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runList, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// vetConfig is the subset of the go command's vet.cfg the driver needs
// (see cmd/go/internal/work and x/tools' unitchecker for the full
// schema).
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// vetMode analyzes the single package described by a go vet config
// file. Returns the process exit code: 0 clean, 2 findings.
func vetMode(cfgPath string, selected []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}
	// The go command requires the facts output file to exist for its
	// cache even though medusalint's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("medusalint: no facts\n"), 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	exports := make(loader.Exports, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	// Imports written in source resolve through ImportMap first.
	for src, canonical := range cfg.ImportMap {
		if file, ok := exports[canonical]; ok {
			exports[src] = file
		}
	}
	var filenames []string
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		filenames = append(filenames, f)
	}
	fset := token.NewFileSet()
	pkg, err := loader.CheckFiles(fset, exports.Importer(fset), cfg.ImportPath, filenames)
	if err != nil {
		fatal(err)
	}
	findings, err := runner.Run([]*loader.Package{pkg}, selected)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
