package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/vclock"
)

// runArtifacts implements the `artifacts` subcommand: materialize a set
// of models and list each artifact with its per-section wire-format
// size breakdown and the weight the cost-aware eviction policy would
// assign it on first touch (fetch cost over the default registry
// network, frequency 1) — the number the cluster cache ranks artifacts
// by when tiers fill up.
func runArtifacts(args []string) error {
	fs := flag.NewFlagSet("artifacts", flag.ExitOnError)
	models := fs.String("models", "Qwen1.5-0.5B,Qwen1.5-4B,Llama2-13B",
		"comma-separated model list to materialize and size")
	templates := fs.Bool("templates", false,
		"factor the listed artifacts into shared per-family templates and report per-section sharing ratios (v2 bytes / v3 delta bytes) and the fleet dedup factor")
	if err := fs.Parse(args); err != nil {
		return err
	}

	store := storage.NewStore(storage.DefaultArray())
	net := artifactcache.DefaultNetwork()
	var cfgs []model.Config
	var arts []*medusa.Artifact
	fmt.Printf("artifact inventory (cost-aware weight: fetch cost over %.1f GB/s + %v network, freq 1)\n\n",
		net.Bandwidth/1e9, net.Latency)
	for _, raw := range strings.Split(*models, ",") {
		name := strings.TrimSpace(raw)
		cfg, err := model.ByName(name)
		if err != nil {
			return err
		}
		art, report, err := engine.RunOffline(engine.OfflineOptions{Model: cfg, Store: store, Seed: 11})
		if err != nil {
			return err
		}
		cfgs = append(cfgs, cfg)
		arts = append(arts, art)
		sections, err := art.SectionSizes()
		if err != nil {
			return err
		}
		var total uint64
		for _, s := range sections {
			total += s.Bytes
		}
		if total != report.ArtifactBytes {
			return fmt.Errorf("section sizes sum to %d, artifact is %d bytes", total, report.ArtifactBytes)
		}
		cost := net.ReadDuration(total)
		fmt.Printf("%s: %.2f MiB encoded, fetch cost %v, cost-aware weight %.3f\n",
			art.ModelName, float64(total)/(1<<20), cost,
			artifactcache.CostAwareWeight(total, cost, 1))
		for _, s := range sections {
			fmt.Printf("  %-14s %10d B  %5.1f%%\n", s.Name, s.Bytes, 100*float64(s.Bytes)/float64(total))
		}
		fmt.Println()
	}
	if !*templates {
		return nil
	}
	return reportSharing(store, cfgs, arts)
}

// reportSharing prints the template-factored view of the inventory: per
// artifact, each wire section's self-contained (v2) size against its
// delta-encoded (v3) size — the sharing ratio — plus the fleet-level
// registry dedup factor (Σ v2 bytes over templates + Σ delta bytes).
func reportSharing(store *storage.Store, cfgs []model.Config, arts []*medusa.Artifact) error {
	fleet, err := engine.BuildFleetTemplates(store, vclock.New(), cfgs, arts)
	if err != nil {
		return err
	}
	fmt.Println("template sharing (per-section ratio = v2 bytes / v3 delta bytes):")
	var fullTotal, sharedTotal uint64
	for i, cfg := range cfgs {
		tmpl := fleet[cfg.Family]
		full, err := arts[i].SectionSizes()
		if err != nil {
			return err
		}
		delta, err := arts[i].DeltaSectionSizes(tmpl)
		if err != nil {
			return err
		}
		byName := make(map[string]uint64, len(delta))
		var deltaTotal uint64
		for _, s := range delta {
			byName[s.Name] = s.Bytes
			deltaTotal += s.Bytes
		}
		var v2Total uint64
		for _, s := range full {
			v2Total += s.Bytes
		}
		fullTotal += v2Total
		sharedTotal += deltaTotal
		fmt.Printf("\n%s (family %s, template %s): %.2f MiB -> %.1f KiB delta (%.1fx)\n",
			cfg.Name, cfg.Family, tmpl.ID(),
			float64(v2Total)/(1<<20), float64(deltaTotal)/1024,
			float64(v2Total)/float64(deltaTotal))
		for _, s := range full {
			if s.Name == "envelope" || s.Name == "section_crcs" {
				continue
			}
			db, ok := byName[s.Name]
			if !ok || db == 0 {
				continue
			}
			fmt.Printf("  %-14s %10d B -> %8d B  %6.1fx\n", s.Name, s.Bytes, db,
				float64(s.Bytes)/float64(db))
		}
	}
	fams := make([]string, 0, len(fleet))
	famBy := make(map[string]*medusa.Template, len(fleet))
	for fam, t := range fleet {
		fams = append(fams, string(fam))
		famBy[string(fam)] = t
	}
	sort.Strings(fams)
	fmt.Println()
	for _, fam := range fams {
		sz := uint64(len(famBy[fam].Encode()))
		sharedTotal += sz
		fmt.Printf("template %-10s %8.1f KiB (%s)\n", fam, float64(sz)/1024, famBy[fam].ID())
	}
	fmt.Printf("\nfleet dedup factor: %.2f MiB self-contained / %.2f MiB templates+deltas = %.1fx\n",
		float64(fullTotal)/(1<<20), float64(sharedTotal)/(1<<20),
		float64(fullTotal)/float64(sharedTotal))
	return nil
}
