package main

import (
	"flag"
	"fmt"
	"strings"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
)

// runArtifacts implements the `artifacts` subcommand: materialize a set
// of models and list each artifact with its per-section wire-format
// size breakdown and the weight the cost-aware eviction policy would
// assign it on first touch (fetch cost over the default registry
// network, frequency 1) — the number the cluster cache ranks artifacts
// by when tiers fill up.
func runArtifacts(args []string) error {
	fs := flag.NewFlagSet("artifacts", flag.ExitOnError)
	models := fs.String("models", "Qwen1.5-0.5B,Qwen1.5-4B,Llama2-13B",
		"comma-separated model list to materialize and size")
	if err := fs.Parse(args); err != nil {
		return err
	}

	store := storage.NewStore(storage.DefaultArray())
	net := artifactcache.DefaultNetwork()
	fmt.Printf("artifact inventory (cost-aware weight: fetch cost over %.1f GB/s + %v network, freq 1)\n\n",
		net.Bandwidth/1e9, net.Latency)
	for _, raw := range strings.Split(*models, ",") {
		name := strings.TrimSpace(raw)
		cfg, err := model.ByName(name)
		if err != nil {
			return err
		}
		art, report, err := engine.RunOffline(engine.OfflineOptions{Model: cfg, Store: store, Seed: 11})
		if err != nil {
			return err
		}
		sections, err := art.SectionSizes()
		if err != nil {
			return err
		}
		var total uint64
		for _, s := range sections {
			total += s.Bytes
		}
		if total != report.ArtifactBytes {
			return fmt.Errorf("section sizes sum to %d, artifact is %d bytes", total, report.ArtifactBytes)
		}
		cost := net.ReadDuration(total)
		fmt.Printf("%s: %.2f MiB encoded, fetch cost %v, cost-aware weight %.3f\n",
			art.ModelName, float64(total)/(1<<20), cost,
			artifactcache.CostAwareWeight(total, cost, 1))
		for _, s := range sections {
			fmt.Printf("  %-14s %10d B  %5.1f%%\n", s.Name, s.Bytes, 100*float64(s.Bytes)/float64(total))
		}
		fmt.Println()
	}
	return nil
}
