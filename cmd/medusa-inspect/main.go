// Command medusa-inspect materializes a model and dumps the artifact's
// contents: graphs, parameter classification, the kernel name table
// with restoration routes, permanent buffers, and the allocation
// sequence summary. Useful for understanding what Medusa saves.
//
// The `artifacts` subcommand instead lists a set of artifacts with
// per-section wire-format size breakdowns and the weight the cluster
// cache's cost-aware eviction policy assigns each one.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
)

func main() {
	// Subcommand form: `medusa-inspect artifacts [-models ...]` lists
	// artifacts with per-section size breakdowns and cache weights.
	if len(os.Args) > 1 && os.Args[1] == "artifacts" {
		if err := runArtifacts(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	name := flag.String("model", "Qwen1.5-0.5B", "model name")
	maxGraphs := flag.Int("graphs", 3, "how many graphs to detail")
	dotBatch := flag.Int("dot", 0, "emit the captured graph for this batch size as Graphviz DOT and exit")
	flag.Parse()

	cfg, err := model.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	store := storage.NewStore(storage.DefaultArray())
	if *dotBatch > 0 {
		if err := emitDOT(cfg, store, *dotBatch); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	art, report, err := engine.RunOffline(engine.OfflineOptions{Model: cfg, Store: store, Seed: 11})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	fmt.Printf("artifact for %s (format v%d)\n", art.ModelName, art.FormatVersion)
	fmt.Printf("  encoded size:     %.2f MB\n", float64(report.ArtifactBytes)/(1<<20))
	fmt.Printf("  graphs:           %d (batch sizes %v ... )\n", len(art.Graphs), art.Batches()[:min(6, len(art.Graphs))])
	fmt.Printf("  total nodes:      %d\n", art.TotalNodes())
	st := art.Stats()
	fmt.Printf("  parameters:       %d pointers (indirect index), %d constants\n", st.Pointers, st.Constants)
	fmt.Printf("  alloc sequence:   %d events (%d allocations), capture stage from event %d\n",
		len(art.AllocSeq), art.AllocCount, art.PrefixLen)
	fmt.Printf("  permanent bufs:   %d (contents rematerialized online)\n", len(art.Permanent))
	fmt.Printf("  KV record:        %d blocks × %d B (free mem %.2f GB)\n",
		art.KV.NumBlocks, art.KV.BlockBytes, float64(art.KV.FreeMemBytes)/(1<<30))

	fmt.Println("\nkernel name table (restoration route):")
	names := make([]string, 0, len(art.Kernels))
	for n := range art.Kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		loc := art.Kernels[n]
		route := "dlsym + cudaGetFuncBySymbol"
		if !loc.Exported {
			route = "triggering-kernels + cuModuleEnumerateFunctions"
		}
		fmt.Printf("  %-44s %-22s %s\n", n, loc.Library, route)
	}

	fmt.Println("\nper-graph node counts:")
	for i, g := range art.Graphs {
		if i >= *maxGraphs {
			fmt.Printf("  ... and %d more graphs\n", len(art.Graphs)-i)
			break
		}
		fmt.Printf("  batch %3d: %d nodes\n", g.Batch, len(g.Nodes))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// emitDOT cold-starts the model, grabs the captured graph for the
// requested batch size, and prints it as Graphviz DOT with kernel names
// resolved.
func emitDOT(cfg model.Config, store *storage.Store, batch int) error {
	inst, err := engine.ColdStart(engine.Options{
		Model: cfg, Strategy: engine.StrategyVLLM, Seed: 12, Store: store,
	})
	if err != nil {
		return err
	}
	g, ok := inst.GraphByBatch(batch)
	if !ok {
		return fmt.Errorf("no captured graph for batch %d", batch)
	}
	fmt.Print(g.DOT(fmt.Sprintf("%s_b%d", cfg.Name, batch), inst.Process().KernelResolver()))
	return nil
}
