// Command medusa-doccheck fails the build when a package exports an
// undocumented identifier. It parses Go source directly (stdlib only:
// go/parser + go/ast), so it needs no type information and runs in
// milliseconds; `make docs` gates CI with it on the packages whose
// APIs FAILURES.md and DESIGN.md document.
//
// Usage:
//
//	medusa-doccheck ./internal/faults ./internal/cluster ...
//
// A symbol is documented when its declaration carries a doc comment;
// members of a const/var group are also covered by the group's doc
// comment. Checked: exported top-level types, funcs, consts and vars,
// methods on exported receivers, struct fields, and interface methods
// — the godoc visibility rule, so exported methods on unexported
// types (interface plumbing like heap.Interface) are exempt. Test
// files are skipped.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: medusa-doccheck <package-dir> [package-dir...]")
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	total := 0
	for _, dir := range flag.Args() {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		total += len(missing)
		for _, m := range missing {
			fmt.Println(m)
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "medusa-doccheck: %d undocumented exported identifier(s)\n", total)
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns a sorted line per
// undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: undocumented exported %s %s",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(decl, report)
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// checkDecl reports every undocumented exported identifier a top-level
// declaration introduces.
func checkDecl(decl ast.Decl, report func(token.Pos, string, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		name := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) > 0 {
			recv := recvName(d.Recv.List[0].Type)
			if !ast.IsExported(recv) {
				return // not godoc-visible: interface plumbing on an unexported type
			}
			name = recv + "." + name
		}
		report(d.Name.Pos(), "function", name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
					report(s.Name.Pos(), "type", s.Name.Name)
				}
				if s.Name.IsExported() {
					checkTypeMembers(s, report)
				}
			case *ast.ValueSpec:
				// A group doc ("// Degradation reasons ...") covers its
				// members; an individual doc overrides.
				if s.Doc != nil || d.Doc != nil {
					continue
				}
				kind := "var"
				if d.Tok == token.CONST {
					kind = "const"
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), kind, n.Name)
					}
				}
			}
		}
	}
}

// checkTypeMembers descends into an exported type's struct fields and
// interface methods.
func checkTypeMembers(s *ast.TypeSpec, report func(token.Pos, string, string)) {
	switch t := s.Type.(type) {
	case *ast.StructType:
		for _, f := range t.Fields.List {
			if f.Doc != nil || f.Comment != nil {
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					report(n.Pos(), "field", s.Name.Name+"."+n.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc != nil || m.Comment != nil {
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					report(n.Pos(), "method", s.Name.Name+"."+n.Name)
				}
			}
		}
	}
}

// recvName extracts the receiver type's name for the report label.
func recvName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvName(t.X)
	case *ast.IndexListExpr:
		return recvName(t.X)
	}
	return "?"
}
