// Command medusa-linkcheck fails the build when a relative markdown
// link in the repository's documentation points at a file that does not
// exist. It parses markdown links syntactically (stdlib only), so it
// needs no network and runs in milliseconds; `make check` gates CI with
// it on the documents DESIGN.md and docs/ARTIFACT_FORMAT.md
// cross-reference.
//
// Usage:
//
//	medusa-linkcheck README.md DESIGN.md docs
//
// Each argument is a markdown file or a directory scanned recursively
// for *.md. A link's target resolves relative to the file containing
// it; fragments (#section) are stripped before the existence check, and
// absolute URLs (scheme://, mailto:) and pure in-page anchors (#...)
// are skipped — the gate is about keeping relative paths honest as
// files move, not about the public internet.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target); images use the
// same tail, so ![alt](target) is covered by the same pattern.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: medusa-linkcheck <file-or-dir> [file-or-dir...]")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		fi, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if !fi.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	broken := 0
	for _, f := range files {
		for _, b := range checkFile(f) {
			fmt.Println(b)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "medusa-linkcheck: %d broken relative link(s)\n", broken)
		os.Exit(1)
	}
}

// checkFile returns one line per broken relative link in a markdown
// file, as file:line: prefixed messages.
func checkFile(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var broken []string
	dir := filepath.Dir(path)
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		// Skip fenced code blocks: command examples routinely contain
		// ](...)-shaped text that is not a link.
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipTarget(target) {
				continue
			}
			if h := strings.IndexByte(target, '#'); h >= 0 {
				target = target[:h]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: broken link %q", filepath.ToSlash(path), i+1, m[1]))
			}
		}
	}
	return broken
}

// skipTarget reports whether a link target is outside the checker's
// scope: absolute URLs, mail links, and pure in-page anchors.
func skipTarget(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
