// Command medusa-simulate runs the serverless cluster simulation for
// one (model, strategy, workload) combination and prints latency
// statistics — the building block behind Figures 10 and 11.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/workload"
)

func main() {
	modelName := flag.String("model", "Qwen1.5-4B", "model name")
	strategyName := flag.String("strategy", "medusa", "vllm | async | nograph | medusa")
	rps := flag.Float64("rps", 10, "mean request rate (Poisson)")
	durSec := flag.Int("duration", 60, "trace duration in seconds")
	gpus := flag.Int("gpus", 4, "GPU count")
	prewarm := flag.Int("prewarm", 0, "instances pre-warmed at time zero")
	seed := flag.Int64("seed", 90125, "trace seed")
	followup := flag.Float64("followup", 0, "probability of a conversational follow-up turn (0 disables)")
	think := flag.Duration("think", 8*time.Second, "user think time before a follow-up")
	slo := flag.Duration("slo", time.Second, "TTFT SLO threshold to report attainment against")
	traceIn := flag.String("trace", "", "read the request trace from a JSONL file instead of generating one")
	traceOut := flag.String("trace-out", "", "write the generated trace to a JSONL file for replay")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	cfg, err := model.ByName(*modelName)
	if err != nil {
		fail(err)
	}
	strategy, err := engine.ParseStrategy(*strategyName)
	if err != nil {
		fail(err)
	}
	store := storage.NewStore(storage.DefaultArray())
	sc := serverless.Config{
		Model: cfg, Strategy: strategy, Store: store,
		NumGPUs: *gpus, Prewarm: *prewarm, Seed: 1,
	}
	if *followup > 0 {
		sc.FollowUp = &serverless.FollowUpModel{
			Probability: *followup, ThinkTime: *think, MaxTurns: 6,
		}
	}
	if strategy == engine.StrategyMedusa {
		fmt.Println("running offline phase (artifact not cached)...")
		art, report, err := engine.RunOffline(engine.OfflineOptions{Model: cfg, Store: store, Seed: 7})
		if err != nil {
			fail(err)
		}
		sc.Artifact = art
		sc.ArtifactBytes = report.ArtifactBytes
	}
	var reqs []workload.Request
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fail(err)
		}
		reqs, err = workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		var err error
		reqs, err = workload.Generate(workload.TraceConfig{
			Seed: *seed, RPS: *rps, Duration: time.Duration(*durSec) * time.Second,
		})
		if err != nil {
			fail(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := workload.WriteTrace(f, reqs); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace written to %s (%d requests)\n", *traceOut, len(reqs))
	}
	res, err := serverless.Run(sc, reqs)
	if err != nil {
		fail(err)
	}
	fmt.Printf("model=%s strategy=%s rps=%.1f duration=%ds requests=%d\n",
		cfg.Name, strategy, *rps, *durSec, len(reqs))
	fmt.Printf("  completed:      %d\n", res.Completed)
	fmt.Printf("  cold starts:    %d (peak instances %d)\n", res.ColdStarts, res.PeakInstances)
	fmt.Printf("  throughput:     %.2f req/s\n", res.Throughput)
	fmt.Printf("  TTFT p50/p99:   %.3fs / %.3fs\n", res.TTFT.P50().Seconds(), res.TTFT.P99().Seconds())
	fmt.Printf("  E2E  p50/p99:   %.3fs / %.3fs\n", res.E2E.P50().Seconds(), res.E2E.P99().Seconds())
	fmt.Printf("  TTFT ≤ %v:      %.1f%% of requests\n", *slo, res.TTFT.FractionBelow(*slo)*100)
	fmt.Println("\nTTFT distribution (100ms buckets):")
	fmt.Print(res.TTFT.Histogram(100*time.Millisecond, 50))
}
