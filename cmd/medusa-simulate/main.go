// Command medusa-simulate runs the serverless cluster simulation for
// one (model, strategy, workload) combination and prints latency
// statistics — the building block behind Figures 10 and 11. With
// -trace it also writes the run's span set as Chrome trace-event JSON
// (loadable in Perfetto, one track per instance); with -phases it adds
// a per-strategy cold-start phase breakdown whose per-phase sums equal
// the end-to-end cold-start durations exactly.
//
// With -batch-tokens N (N > 0) instances serve with iteration-level
// continuous batching on a paged KV cache (-kv-blocks,
// -chunked-prefill): per-token completion events make TTFT and TPOT
// first-class, and KV exhaustion preempts the lowest-id sequence for
// recompute-on-resume.
//
// With -nodes N (N > 0) the command switches to the multi-node fleet
// simulator: each node fronts the shared artifact registry with a
// tiered cache (-cache-ram/-cache-ssd MiB, -cache-policy
// lru|lfu|costaware) and cold-starting instances are placed by a
// locality-aware scorer (-locality). -models co-locates several
// deployments sharing the fleet under Zipf popularity (-zipf).
//
// The shared flag surface (workload, serving, batching and cluster
// knobs) is declared once in internal/cliconfig.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/medusa-repro/medusa/internal/cliconfig"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/faults"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/obs"
	"github.com/medusa-repro/medusa/internal/prof"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/workload"
)

func main() {
	v := cliconfig.Register(flag.CommandLine)
	slo := flag.Duration("slo", time.Second, "TTFT SLO threshold to report attainment against")
	tracePath := flag.String("trace", "", "write the run's spans as Chrome trace-event JSON to this file")
	phases := flag.Bool("phases", false, "print per-strategy cold-start phase breakdowns (runs every paper strategy)")
	requestsIn := flag.String("requests", "", "read the request trace from a JSONL file instead of generating one")
	requestsOut := flag.String("requests-out", "", "write the generated request trace to a JSONL file for replay")
	faultsSpec := flag.String("faults", "", "fault plan: preset name (none | mild | heavy | crash) or path to a plan JSON file")
	reps := flag.Int("reps", 1, "independent-seed replications; > 1 prints per-rep stats plus mean ± 95% CI")
	parallel := flag.Bool("parallel", false, "run replications on a worker pool (one per core); output is identical either way")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fail := func(err error) {
		stopProf()
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}()
	if *reps < 1 {
		fail(fmt.Errorf("-reps must be ≥ 1, got %d", *reps))
	}
	baseTC := v.TraceConfig()
	var plan *faults.Plan
	if *faultsSpec != "" {
		p, err := faults.LoadPlan(*faultsSpec)
		if err != nil {
			fail(err)
		}
		plan = &p
	}
	if v.Nodes > 0 {
		if err := runCluster(v, baseTC, *tracePath, plan, *reps, *parallel); err != nil {
			fail(err)
		}
		return
	}
	cfg, err := model.ByName(v.Model)
	if err != nil {
		fail(err)
	}
	strategy, err := engine.ParseStrategy(v.Strategy)
	if err != nil {
		fail(err)
	}
	store := storage.NewStore(storage.DefaultArray())

	// artOnce runs the offline phase at most once, caching the artifact
	// across the strategies that need it.
	var cachedArt *medusa.Artifact
	var cachedArtBytes uint64
	artOnce := func() (*medusa.Artifact, uint64, error) {
		if cachedArt != nil {
			return cachedArt, cachedArtBytes, nil
		}
		fmt.Println("running offline phase (artifact not cached)...")
		art, report, err := engine.RunOffline(engine.OfflineOptions{Model: cfg, Store: store, Seed: 7})
		if err != nil {
			return nil, 0, err
		}
		cachedArt, cachedArtBytes = art, report.ArtifactBytes
		return cachedArt, cachedArtBytes, nil
	}
	// buildConfig assembles a cluster config for one strategy.
	buildConfig := func(s engine.Strategy) (serverless.Config, error) {
		sc := serverless.Config{
			Model: cfg, Strategy: s, Store: store,
			NumGPUs: v.GPUs, Seed: 1,
			Scheduler: v.SchedulerConfig(),
			Workload:  v.WorkloadConfig(),
			Faults:    serverless.FaultSpec{Plan: plan},
		}
		if s.NeedsArtifact() {
			art, size, err := artOnce()
			if err != nil {
				return sc, err
			}
			sc.Cache = serverless.CacheSpec{Artifact: art, ArtifactBytes: size}
		}
		return sc, nil
	}

	if *reps > 1 {
		if *requestsIn != "" || *requestsOut != "" || *tracePath != "" || *phases {
			fail(fmt.Errorf("-reps > 1 is incompatible with -requests, -requests-out, -trace and -phases"))
		}
		if strategy.NeedsArtifact() {
			// Warm the artifact cache before the fan-out; replication
			// workers then share it read-only.
			if _, _, err := artOnce(); err != nil {
				fail(err)
			}
		}
		fmt.Printf("model=%s strategy=%s rps=%.1f duration=%ds reps=%d parallel=%v\n",
			cfg.Name, strategy, v.RPS, v.DurationSec, *reps, *parallel)
		if err := runServerlessReps(
			func() (serverless.Config, error) { return buildConfig(strategy) },
			baseTC, *reps, *parallel); err != nil {
			fail(err)
		}
		return
	}

	var reqs []workload.Request
	if *requestsIn != "" {
		f, err := os.Open(*requestsIn)
		if err != nil {
			fail(err)
		}
		reqs, err = workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		var err error
		reqs, err = workload.Generate(baseTC)
		if err != nil {
			fail(err)
		}
	}
	if *requestsOut != "" {
		f, err := os.Create(*requestsOut)
		if err != nil {
			fail(err)
		}
		if err := workload.WriteTrace(f, reqs); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("request trace written to %s (%d requests)\n", *requestsOut, len(reqs))
	}

	var tracer *obs.Tracer
	sc, err := buildConfig(strategy)
	if err != nil {
		fail(err)
	}
	if *tracePath != "" {
		tracer = obs.NewTracer()
		sc.Tracer = tracer
	}
	res, err := serverless.Run(sc, reqs)
	if err != nil {
		fail(err)
	}
	fmt.Printf("model=%s strategy=%s rps=%.1f duration=%ds requests=%d\n",
		cfg.Name, strategy, v.RPS, v.DurationSec, len(reqs))
	fmt.Printf("  completed:      %d\n", res.Completed)
	fmt.Printf("  cold starts:    %d (peak instances %d)\n", res.ColdStarts, res.PeakInstances)
	if plan != nil && !plan.Zero() {
		fmt.Printf("  degraded:       %d cold starts fell back to vanilla (see FAILURES.md)\n", res.Degraded)
	}
	fmt.Printf("  throughput:     %.2f req/s\n", res.Throughput)
	fmt.Printf("  TTFT p50/p99:   %.3fs / %.3fs\n", res.TTFT.P50().Seconds(), res.TTFT.P99().Seconds())
	fmt.Printf("  E2E  p50/p99:   %.3fs / %.3fs\n", res.E2E.P50().Seconds(), res.E2E.P99().Seconds())
	if res.TPOT != nil {
		fmt.Printf("  TPOT p50/p99:   %.1fms / %.1fms (%d preemptions)\n",
			float64(res.TPOT.P50().Microseconds())/1000, float64(res.TPOT.P99().Microseconds())/1000,
			res.Preemptions)
	}
	fmt.Printf("  TTFT ≤ %v:      %.1f%% of requests\n", *slo, res.TTFT.FractionBelow(*slo)*100)
	fmt.Println("\nTTFT distribution (100ms buckets):")
	fmt.Print(res.TTFT.Histogram(100*time.Millisecond, 50))

	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := tracer.WriteChrome(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("\nChrome trace written to %s (%d spans, %d tracks) — load at ui.perfetto.dev\n",
			*tracePath, tracer.Len(), len(tracer.Tracks()))
	}

	if *phases {
		fmt.Println("\ncold-start phase breakdown (exclusive attribution; sums are drift-free):")
		for _, s := range engine.Strategies() {
			psc, err := buildConfig(s)
			if err != nil {
				fail(err)
			}
			pres := res
			if s != strategy {
				pres, err = serverless.Run(psc, reqs)
				if err != nil {
					fail(err)
				}
			}
			fmt.Printf("\n%v (%d cold starts, end-to-end total %.3fs):\n", s, pres.ColdStarts, pres.ColdStartTotal.Seconds())
			fmt.Print(pres.ColdStartPhases.Table())
			if drift := pres.ColdStartPhases.Total() - pres.ColdStartTotal; drift != 0 {
				fail(fmt.Errorf("phase attribution drifted by %v for %v", drift, s))
			}
		}
	}
}
