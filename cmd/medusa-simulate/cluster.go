package main

import (
	"fmt"
	"os"

	"github.com/medusa-repro/medusa/internal/cliconfig"
	"github.com/medusa-repro/medusa/internal/cluster"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/faults"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/obs"
	"github.com/medusa-repro/medusa/internal/replicate"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/workload"
)

// runCluster executes the fleet simulation and prints its Render (or,
// with -reps > 1, per-replication stats plus mean ± 95% CI). All
// shared knobs arrive pre-parsed in v (see internal/cliconfig).
func runCluster(v *cliconfig.Values, baseTC workload.TraceConfig, tracePath string, plan *faults.Plan, reps int, parallel bool) error {
	seed := baseTC.Seed
	params, err := v.CacheParams()
	if err != nil {
		return err
	}
	strategy, err := engine.ParseStrategy(v.Strategy)
	if err != nil {
		return err
	}
	names := v.ModelNames()

	store := storage.NewStore(storage.DefaultArray())
	deps := make([]serverless.Deployment, 0, len(names))
	for i, name := range names {
		cfg, err := model.ByName(name)
		if err != nil {
			return err
		}
		sc := serverless.Config{
			Model: cfg, Strategy: strategy, Store: store,
			Seed:      int64(i + 1),
			Scheduler: serverless.Scheduler{IdleTimeout: v.Idle, Batch: v.BatchParams()},
		}
		if strategy.NeedsArtifact() {
			fmt.Printf("running offline phase for %s...\n", name)
			art, report, err := engine.RunOffline(engine.OfflineOptions{Model: cfg, Store: store, Seed: 7})
			if err != nil {
				return err
			}
			sc.Cache = serverless.CacheSpec{Artifact: art, ArtifactBytes: report.ArtifactBytes}
		}
		deps = append(deps, serverless.Deployment{Name: name, Config: sc})
	}

	// mkCfg assembles one replication's fleet config: seeds derive from
	// the replication index, deployments are cloned (Run treats them
	// read-only, but each replication routes its own trace). Control-
	// plane policies are constructed fresh per replication — a stateful
	// autoscaler must not be shared across runs.
	mkCfg := func(rep int64) (cluster.Config, error) {
		tc := baseTC
		tc.Seed = seed + rep
		rdeps := append([]serverless.Deployment(nil), deps...)
		scaler, err := v.AutoscalePolicy()
		if err != nil {
			return cluster.Config{}, err
		}
		route, err := v.RouterPolicy()
		if err != nil {
			return cluster.Config{}, err
		}
		ccfg := cluster.Config{
			Nodes:            v.Nodes,
			GPUsPerNode:      v.GPUsPerNode,
			Cache:            params,
			LocalityWeight:   v.Locality,
			PrewarmSSD:       v.PrewarmSSD,
			Seed:             seed + rep,
			Deployments:      rdeps,
			Faults:           serverless.FaultSpec{Plan: plan},
			RetainPerRequest: v.Retain,
			Autoscaler:       scaler,
			Router:           route,
			SLO:              v.SLO(),
		}
		if v.Diurnal > 0 {
			// Diurnal fleet traffic: one phase-staggered source per
			// deployment, Zipf-weighted by -zipf (flat split when the knob
			// is at its >1 Poisson-mode default is deliberate — Zipf skew
			// composes through DiurnalFleet's (i+1)^−skew weighting).
			dc := v.DiurnalConfig()
			dc.Seed = seed + rep
			srcs, err := workload.DiurnalFleet(dc, len(rdeps), v.Zipf)
			if err != nil {
				return ccfg, err
			}
			for i := range rdeps {
				rdeps[i].Source = srcs[i]
			}
			return ccfg, nil
		}
		if v.Stream {
			src, err := workload.NewPoisson(tc)
			if err != nil {
				return ccfg, err
			}
			if len(rdeps) > 1 {
				ccfg.Arrivals, err = cluster.ZipfArrivals(src, len(rdeps), seed+1+rep, v.Zipf)
				if err != nil {
					return ccfg, err
				}
			} else {
				ccfg.Arrivals = serverless.MergeArrivals([]workload.Source{src})
			}
			return ccfg, nil
		}
		trace, err := workload.Generate(tc)
		if err != nil {
			return ccfg, err
		}
		if len(rdeps) > 1 {
			ccfg.Deployments, err = cluster.ZipfDeployments(rdeps, trace, seed+1+rep, v.Zipf)
			if err != nil {
				return ccfg, err
			}
		} else {
			rdeps[0].Requests = trace
		}
		return ccfg, nil
	}

	if reps > 1 {
		if tracePath != "" {
			return fmt.Errorf("-reps > 1 is incompatible with -trace")
		}
		stats, err := replicate.Run(reps, repWorkers(parallel), func(rep int) (repStats, error) {
			ccfg, err := mkCfg(int64(rep))
			if err != nil {
				return repStats{}, err
			}
			res, err := cluster.Run(ccfg)
			if err != nil {
				return repStats{}, err
			}
			return clusterRepStats(res), nil
		})
		if err != nil {
			return err
		}
		printRepTable(stats)
		return nil
	}

	ccfg, err := mkCfg(0)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer()
		ccfg.Tracer = tracer
	}
	res, err := cluster.Run(ccfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())

	if tracer != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteChrome(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nChrome trace written to %s (%d spans, %d tracks) — load at ui.perfetto.dev\n",
			tracePath, tracer.Len(), len(tracer.Tracks()))
	}
	return nil
}
