package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/cluster"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/faults"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/obs"
	"github.com/medusa-repro/medusa/internal/replicate"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/workload"
)

// clusterFlags groups the multi-node options; -nodes > 0 switches the
// command from the single-pool simulator to the fleet simulator with
// tiered artifact caches and locality-aware placement.
type clusterFlags struct {
	nodes      *int
	gpusPer    *int
	policy     *string
	ramMiB     *int
	ssdMiB     *int
	locality   *float64
	prewarmSSD *bool
	models     *string
	zipf       *float64
	idle       *time.Duration
	stream     *bool
	retain     *bool
}

func registerClusterFlags() *clusterFlags {
	return &clusterFlags{
		nodes:      flag.Int("nodes", 0, "fleet size; > 0 runs the multi-node simulator with tiered artifact caches"),
		gpusPer:    flag.Int("gpus-per-node", 4, "GPUs per node (cluster mode)"),
		policy:     flag.String("cache-policy", "lru", "artifact cache eviction policy: lru | lfu | costaware"),
		ramMiB:     flag.Int("cache-ram", 4096, "per-node RAM cache tier size in MiB"),
		ssdMiB:     flag.Int("cache-ssd", 16384, "per-node SSD cache tier size in MiB"),
		locality:   flag.Float64("locality", cluster.DefaultLocalityWeight, "placement weight for artifact locality vs load balance (0 = pure load balancing)"),
		prewarmSSD: flag.Bool("prewarm-ssd", false, "pre-pull every artifact onto every node's SSD tier before the trace"),
		models:     flag.String("models", "", "comma-separated model list for a multi-model fleet (cluster mode; default: -model)"),
		zipf:       flag.Float64("zipf", 1.2, "Zipf popularity skew across -models (must be > 1)"),
		idle:       flag.Duration("idle", 0, "instance idle timeout (cluster mode; 0 disables)"),
		stream:     flag.Bool("stream", false, "stream arrivals instead of materializing the trace — memory stays O(active requests), enabling 10M+ request runs (cluster mode)"),
		retain:     flag.Bool("retain", false, "retain every per-request latency observation for exact quantiles (O(requests) memory; default uses a bounded deterministic reservoir)"),
	}
}

// runCluster executes the fleet simulation and prints its Render (or,
// with -reps > 1, per-replication stats plus mean ± 95% CI).
func runCluster(cf *clusterFlags, strategyName string, baseTC workload.TraceConfig, tracePath string, plan *faults.Plan, reps int, parallel bool) error {
	seed := baseTC.Seed
	policy, err := artifactcache.ParsePolicy(*cf.policy)
	if err != nil {
		return err
	}
	strategy, err := engine.ParseStrategy(strategyName)
	if err != nil {
		return err
	}
	names := strings.Split(*cf.models, ",")
	if *cf.models == "" {
		names = []string{flag.Lookup("model").Value.String()}
	}

	store := storage.NewStore(storage.DefaultArray())
	deps := make([]serverless.Deployment, 0, len(names))
	for i, raw := range names {
		name := strings.TrimSpace(raw)
		cfg, err := model.ByName(name)
		if err != nil {
			return err
		}
		sc := serverless.Config{
			Model: cfg, Strategy: strategy, Store: store,
			Seed:      int64(i + 1),
			Autoscale: serverless.Autoscale{IdleTimeout: *cf.idle},
		}
		if strategy.NeedsArtifact() {
			fmt.Printf("running offline phase for %s...\n", name)
			art, report, err := engine.RunOffline(engine.OfflineOptions{Model: cfg, Store: store, Seed: 7})
			if err != nil {
				return err
			}
			sc.Artifact = art
			sc.ArtifactBytes = report.ArtifactBytes
		}
		deps = append(deps, serverless.Deployment{Name: name, Config: sc})
	}

	params := artifactcache.DefaultParams()
	params.RAMBytes = uint64(*cf.ramMiB) << 20
	params.SSDBytes = uint64(*cf.ssdMiB) << 20
	params.Policy = policy

	// mkCfg assembles one replication's fleet config: seeds derive from
	// the replication index, deployments are cloned (Run treats them
	// read-only, but each replication routes its own trace).
	mkCfg := func(rep int64) (cluster.Config, error) {
		tc := baseTC
		tc.Seed = seed + rep
		rdeps := append([]serverless.Deployment(nil), deps...)
		ccfg := cluster.Config{
			Nodes:            *cf.nodes,
			GPUsPerNode:      *cf.gpusPer,
			Cache:            params,
			LocalityWeight:   *cf.locality,
			PrewarmSSD:       *cf.prewarmSSD,
			Seed:             seed + rep,
			Deployments:      rdeps,
			Faults:           plan,
			RetainPerRequest: *cf.retain,
		}
		if *cf.stream {
			src, err := workload.NewPoisson(tc)
			if err != nil {
				return ccfg, err
			}
			if len(rdeps) > 1 {
				ccfg.Arrivals, err = cluster.ZipfArrivals(src, len(rdeps), seed+1+rep, *cf.zipf)
				if err != nil {
					return ccfg, err
				}
			} else {
				ccfg.Arrivals = serverless.MergeArrivals([]workload.Source{src})
			}
			return ccfg, nil
		}
		trace, err := workload.Generate(tc)
		if err != nil {
			return ccfg, err
		}
		if len(rdeps) > 1 {
			ccfg.Deployments, err = cluster.ZipfDeployments(rdeps, trace, seed+1+rep, *cf.zipf)
			if err != nil {
				return ccfg, err
			}
		} else {
			rdeps[0].Requests = trace
		}
		return ccfg, nil
	}

	if reps > 1 {
		if tracePath != "" {
			return fmt.Errorf("-reps > 1 is incompatible with -trace")
		}
		stats, err := replicate.Run(reps, repWorkers(parallel), func(rep int) (repStats, error) {
			ccfg, err := mkCfg(int64(rep))
			if err != nil {
				return repStats{}, err
			}
			res, err := cluster.Run(ccfg)
			if err != nil {
				return repStats{}, err
			}
			return clusterRepStats(res), nil
		})
		if err != nil {
			return err
		}
		printRepTable(stats)
		return nil
	}

	ccfg, err := mkCfg(0)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer()
		ccfg.Tracer = tracer
	}
	res, err := cluster.Run(ccfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())

	if tracer != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteChrome(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nChrome trace written to %s (%d spans, %d tracks) — load at ui.perfetto.dev\n",
			tracePath, tracer.Len(), len(tracer.Tracks()))
	}
	return nil
}
