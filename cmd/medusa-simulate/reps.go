package main

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/cluster"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/replicate"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// repStats is one replication's headline numbers.
type repStats struct {
	requests   int
	completed  int
	coldStarts int
	p50TTFT    time.Duration
	p99TTFT    time.Duration
	throughput float64
}

// repWorkers maps the -parallel flag to a worker count: sequential by
// default, one worker per core with -parallel. Results are merged in
// replication order either way, so the output bytes do not depend on
// the choice.
func repWorkers(parallel bool) int {
	if parallel {
		return 0 // replicate.Run: GOMAXPROCS
	}
	return 1
}

// printRepTable renders per-replication rows plus mean ± 95% CI
// summary lines for the headline statistics.
func printRepTable(stats []repStats) {
	fmt.Printf("\n%-4s %10s %10s %12s %14s %14s %14s\n",
		"rep", "requests", "completed", "cold starts", "p50 TTFT", "p99 TTFT", "throughput")
	var p50s, p99s, colds, thrs []float64
	for i, st := range stats {
		p50s = append(p50s, st.p50TTFT.Seconds())
		p99s = append(p99s, st.p99TTFT.Seconds())
		colds = append(colds, float64(st.coldStarts))
		thrs = append(thrs, st.throughput)
		fmt.Printf("%-4d %10d %10d %12d %13.3fs %13.3fs %9.2f req/s\n",
			i, st.requests, st.completed, st.coldStarts,
			st.p50TTFT.Seconds(), st.p99TTFT.Seconds(), st.throughput)
	}
	p50m, p50ci := metrics.MeanCI(p50s)
	p99m, p99ci := metrics.MeanCI(p99s)
	coldm, coldci := metrics.MeanCI(colds)
	thrm, thrci := metrics.MeanCI(thrs)
	fmt.Printf("\nacross %d independent-seed replications (mean ± 95%% CI):\n", len(stats))
	fmt.Printf("  TTFT p50:    %.3f ± %.3f s\n", p50m, p50ci)
	fmt.Printf("  TTFT p99:    %.3f ± %.3f s\n", p99m, p99ci)
	fmt.Printf("  cold starts: %.1f ± %.1f\n", coldm, coldci)
	fmt.Printf("  throughput:  %.2f ± %.2f req/s\n", thrm, thrci)
}

// clusterRepStats folds one fleet replication into headline numbers.
// Per-deployment TTFT samples merge deterministically (reservoir offers
// happen in deployment order).
func clusterRepStats(res *cluster.Result) repStats {
	fleet := &metrics.Sample{}
	st := repStats{coldStarts: res.TotalColdStarts}
	for _, d := range res.PerDeployment {
		st.completed += d.Completed
		fleet.AddAll(d.TTFT)
	}
	st.requests = st.completed
	st.p50TTFT = fleet.P50()
	st.p99TTFT = fleet.P99()
	if res.Makespan > 0 {
		st.throughput = float64(st.completed) / res.Makespan.Seconds()
	}
	return st
}

// runServerlessReps runs the single-pool simulation reps times with
// independent seeds on a worker pool. Each replication is a pure
// function of its index (trace seed and simulation seed are both
// derived from it), so the printed table is identical with and without
// -parallel.
func runServerlessReps(buildConfig func() (serverless.Config, error),
	traceCfg workload.TraceConfig, reps int, parallel bool) error {
	stats, err := replicate.Run(reps, repWorkers(parallel), func(rep int) (repStats, error) {
		tc := traceCfg
		tc.Seed += int64(rep)
		reqs, err := workload.Generate(tc)
		if err != nil {
			return repStats{}, err
		}
		sc, err := buildConfig()
		if err != nil {
			return repStats{}, err
		}
		sc.Seed += int64(rep)
		res, err := serverless.Run(sc, reqs)
		if err != nil {
			return repStats{}, err
		}
		return repStats{
			requests:   len(reqs),
			completed:  res.Completed,
			coldStarts: res.ColdStarts,
			p50TTFT:    res.TTFT.P50(),
			p99TTFT:    res.TTFT.P99(),
			throughput: res.Throughput,
		}, nil
	})
	if err != nil {
		return err
	}
	printRepTable(stats)
	return nil
}
