package kernels

import (
	"fmt"
	"math"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/gpu"
)

// assumedContextTokens is the context length the cost model assumes
// for paged attention's KV reads. Capture-time forwardings run with
// dummy length-1 sequences, and at serving time decode cost is
// dominated by weight traffic, so a modest fixed context keeps both
// regimes calibrated.
const assumedContextTokens = 32

// opsModule returns the module name for exported kernels; they are
// grouped into a handful of modules like a real precompiled fatbin.
func opsModule(group string) string { return "ops_mod_" + group }

func registerExported(rt *cuda.Runtime) {
	p, u32, u64 := cuda.Ptr, cuda.U32, cuda.U64

	rt.MustRegister(cuda.KernelImpl{
		Name: EmbedLookup, Library: LibOps, Module: opsModule("embed"), Exported: true,
		Params: []cuda.ParamKind{p, p, p, u32, u32},
		Traffic: func(a []cuda.Value) uint64 {
			return uint64(a[3].U32()) * uint64(a[4].U32()) * 4
		},
		Func: kEmbedLookup,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: RMSNorm, Library: LibOps, Module: opsModule("norm"), Exported: true,
		Params: []cuda.ParamKind{p, p, p, u32, u32},
		Traffic: func(a []cuda.Value) uint64 {
			return uint64(a[3].U32()) * uint64(a[4].U32()) * 3 * 2
		},
		Func: kRMSNorm,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: RopeCache, Library: LibOps, Module: opsModule("attn"), Exported: true,
		Params: []cuda.ParamKind{p, p, p, p, p, u32, u32, u32},
		Traffic: func(a []cuda.Value) uint64 {
			return uint64(a[5].U32()) * uint64(a[6].U32()) * 6 * 2
		},
		Func: kRopeCache,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: PagedAttn, Library: LibOps, Module: opsModule("attn"), Exported: true,
		Params: []cuda.ParamKind{p, p, p, p, p, u32, u32, u32},
		Traffic: func(a []cuda.Value) uint64 {
			// Reads K and V for the assumed context length per sequence.
			return uint64(a[5].U32()) * assumedContextTokens * uint64(a[6].U32()) * 2 * 2
		},
		Func: kPagedAttn,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: ResidualAdd, Library: LibOps, Module: opsModule("elem"), Exported: true,
		Params:  []cuda.ParamKind{p, p, p, u32},
		Traffic: func(a []cuda.Value) uint64 { return uint64(a[3].U32()) * 3 * 2 },
		Func:    kResidualAdd,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: SiluMul, Library: LibOps, Module: opsModule("elem"), Exported: true,
		Params: []cuda.ParamKind{p, p, u32, u32},
		Traffic: func(a []cuda.Value) uint64 {
			return uint64(a[2].U32()) * uint64(a[3].U32()) * 3 * 2
		},
		Func: kSiluMul,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: BiasAdd, Library: LibOps, Module: opsModule("elem"), Exported: true,
		Params: []cuda.ParamKind{p, p, u32, u32},
		Traffic: func(a []cuda.Value) uint64 {
			return uint64(a[2].U32()) * uint64(a[3].U32()) * 2 * 2
		},
		Func: kBiasAdd,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: LMHeadGemm, Library: LibOps, Module: opsModule("head"), Exported: true,
		Params: []cuda.ParamKind{p, p, p, u32, u32, u32},
		Traffic: func(a []cuda.Value) uint64 {
			m, v, k := uint64(a[3].U32()), uint64(a[4].U32()), uint64(a[5].U32())
			return (m*k + v*k + m*v) * 2
		},
		Flops: func(a []cuda.Value) float64 {
			return 2 * float64(a[3].U32()) * float64(a[4].U32()) * float64(a[5].U32())
		},
		Func: kLMHeadGemm,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: SampleArgmax, Library: LibOps, Module: opsModule("sample"), Exported: true,
		Params: []cuda.ParamKind{p, p, u32, u32, u64},
		Traffic: func(a []cuda.Value) uint64 {
			return uint64(a[2].U32()) * uint64(a[3].U32()) * 4
		},
		Func: kSampleArgmax,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: ElemCopy, Library: LibOps, Module: opsModule("elem"), Exported: true,
		Params:  []cuda.ParamKind{p, p, u32},
		Traffic: func(a []cuda.Value) uint64 { return uint64(a[2].U32()) * 2 * 2 },
		Func:    kElemCopy,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: PadBatch, Library: LibOps, Module: opsModule("elem"), Exported: true,
		Params: []cuda.ParamKind{p, u32},
		Func:   kPadBatch,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: PrefillGemm, Library: LibOps, Module: opsModule("prefill"), Exported: true,
		Params: []cuda.ParamKind{p, p, p, u32, u32, u32},
		Traffic: func(a []cuda.Value) uint64 {
			m, n, k := uint64(a[3].U32()), uint64(a[4].U32()), uint64(a[5].U32())
			return (m*k + k*n + m*n) * 2
		},
		Flops: func(a []cuda.Value) float64 {
			return 2 * float64(a[3].U32()) * float64(a[4].U32()) * float64(a[5].U32())
		},
		Func: kPrefillGemm,
	})
}

func kPrefillGemm(d *gpu.Device, a []cuda.Value) error {
	dst, dOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	src, sOff, err := fetch(d, a[1])
	if err != nil {
		return err
	}
	w, wOff, err := fetch(d, a[2])
	if err != nil {
		return err
	}
	m, n, k := int(a[3].U32()), int(a[4].U32()), int(a[5].U32())
	for i := 0; i < m; i++ {
		x, err := src.Float32s(sOff+i*k, k)
		if err != nil {
			return err
		}
		out := make([]float32, n)
		for j := 0; j < n; j++ {
			var dot float64
			for l := 0; l < k; l++ {
				wv, err := w.Float32(wOff + l*n + j)
				if err != nil {
					return err
				}
				dot += float64(x[l]) * float64(wv)
			}
			out[j] = float32(dot)
		}
		if err := dst.SetFloat32s(dOff+i*n, out); err != nil {
			return err
		}
	}
	return nil
}

func kEmbedLookup(d *gpu.Device, a []cuda.Value) error {
	dst, dOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	table, tOff, err := fetch(d, a[1])
	if err != nil {
		return err
	}
	ids, iOff, err := fetch(d, a[2])
	if err != nil {
		return err
	}
	batch, hidden := int(a[3].U32()), int(a[4].U32())
	for b := 0; b < batch; b++ {
		id, err := ids.Uint32(iOff + b)
		if err != nil {
			return err
		}
		row, err := table.Float32s(tOff+int(id)*hidden, hidden)
		if err != nil {
			return err
		}
		if err := dst.SetFloat32s(dOff+b*hidden, row); err != nil {
			return err
		}
	}
	return nil
}

func kRMSNorm(d *gpu.Device, a []cuda.Value) error {
	dst, dOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	src, sOff, err := fetch(d, a[1])
	if err != nil {
		return err
	}
	w, wOff, err := fetch(d, a[2])
	if err != nil {
		return err
	}
	rows, hidden := int(a[3].U32()), int(a[4].U32())
	wv, err := w.Float32s(wOff, hidden)
	if err != nil {
		return err
	}
	for r := 0; r < rows; r++ {
		x, err := src.Float32s(sOff+r*hidden, hidden)
		if err != nil {
			return err
		}
		var ss float64
		for _, v := range x {
			ss += float64(v) * float64(v)
		}
		inv := 1 / float32(math.Sqrt(ss/float64(hidden)+1e-6))
		out := make([]float32, hidden)
		for i := range out {
			out[i] = x[i] * inv * wv[i]
		}
		if err := dst.SetFloat32s(dOff+r*hidden, out); err != nil {
			return err
		}
	}
	return nil
}

// kvSlot locates the cache element offset for (seq, pos) through the
// block table: the paged layout of vLLM.
func kvSlot(bt *gpu.Buffer, btOff, seq, pos, maxBlocks, hidden int) (int, error) {
	blockIdx, err := bt.Uint32(btOff + seq*maxBlocks + pos/KVBlockTokens)
	if err != nil {
		return 0, err
	}
	return (int(blockIdx)*KVBlockTokens + pos%KVBlockTokens) * hidden, nil
}

func kRopeCache(d *gpu.Device, a []cuda.Value) error {
	qkv, qOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	kc, kcOff, err := fetch(d, a[1])
	if err != nil {
		return err
	}
	vc, vcOff, err := fetch(d, a[2])
	if err != nil {
		return err
	}
	bt, btOff, err := fetch(d, a[3])
	if err != nil {
		return err
	}
	sl, slOff, err := fetch(d, a[4])
	if err != nil {
		return err
	}
	batch, hidden, maxBlocks := int(a[5].U32()), int(a[6].U32()), int(a[7].U32())
	for b := 0; b < batch; b++ {
		seqlen, err := sl.Uint32(slOff + b)
		if err != nil {
			return err
		}
		pos := int(seqlen) - 1
		if pos < 0 {
			return fmt.Errorf("rope: sequence %d has length 0", b)
		}
		row, err := qkv.Float32s(qOff+b*3*hidden, 3*hidden)
		if err != nil {
			return err
		}
		// Rotate q and k pairwise by a position-dependent angle.
		for part := 0; part < 2; part++ {
			vec := row[part*hidden : (part+1)*hidden]
			for i := 0; i+1 < hidden; i += 2 {
				theta := float64(pos) / math.Pow(10000, float64(i)/float64(hidden))
				sin, cos := math.Sin(theta), math.Cos(theta)
				x, y := float64(vec[i]), float64(vec[i+1])
				vec[i] = float32(x*cos - y*sin)
				vec[i+1] = float32(x*sin + y*cos)
			}
		}
		if err := qkv.SetFloat32s(qOff+b*3*hidden, row); err != nil {
			return err
		}
		slot, err := kvSlot(bt, btOff, b, pos, maxBlocks, hidden)
		if err != nil {
			return err
		}
		if err := kc.SetFloat32s(kcOff+slot, row[hidden:2*hidden]); err != nil {
			return err
		}
		if err := vc.SetFloat32s(vcOff+slot, row[2*hidden:]); err != nil {
			return err
		}
	}
	return nil
}

func kPagedAttn(d *gpu.Device, a []cuda.Value) error {
	out, oOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	qkv, qOff, err := fetch(d, a[1])
	if err != nil {
		return err
	}
	kc, kcOff, err := fetch(d, a[2])
	if err != nil {
		return err
	}
	vc, vcOff, err := fetch(d, a[3])
	if err != nil {
		return err
	}
	bt, btOff, err := fetch(d, a[4])
	if err != nil {
		return err
	}
	// seqlens ride in the same buffer layout as rope; the engine passes
	// the same buffer for both kernels, reusing parameter 4 of rope.
	batch, hidden, maxBlocks := int(a[5].U32()), int(a[6].U32()), int(a[7].U32())
	// The seqlens pointer is folded into the block-table buffer region:
	// engine allocates [blocktable | seqlens]; attention derives seqlen
	// offset as batch*maxBlocks.
	for b := 0; b < batch; b++ {
		seqlen32, err := bt.Uint32(btOff + batch*maxBlocks + b)
		if err != nil {
			return err
		}
		seqlen := int(seqlen32)
		q, err := qkv.Float32s(qOff+b*3*hidden, hidden)
		if err != nil {
			return err
		}
		scores := make([]float64, seqlen)
		maxScore := math.Inf(-1)
		scale := 1 / math.Sqrt(float64(hidden))
		for t := 0; t < seqlen; t++ {
			slot, err := kvSlot(bt, btOff, b, t, maxBlocks, hidden)
			if err != nil {
				return err
			}
			kv, err := kc.Float32s(kcOff+slot, hidden)
			if err != nil {
				return err
			}
			var dot float64
			for i := 0; i < hidden; i++ {
				dot += float64(q[i]) * float64(kv[i])
			}
			scores[t] = dot * scale
			if scores[t] > maxScore {
				maxScore = scores[t]
			}
		}
		var denom float64
		for t := range scores {
			scores[t] = math.Exp(scores[t] - maxScore)
			denom += scores[t]
		}
		acc := make([]float64, hidden)
		for t := 0; t < seqlen; t++ {
			slot, err := kvSlot(bt, btOff, b, t, maxBlocks, hidden)
			if err != nil {
				return err
			}
			vv, err := vc.Float32s(vcOff+slot, hidden)
			if err != nil {
				return err
			}
			w := scores[t] / denom
			for i := 0; i < hidden; i++ {
				acc[i] += w * float64(vv[i])
			}
		}
		row := make([]float32, hidden)
		for i := range row {
			row[i] = float32(acc[i])
		}
		if err := out.SetFloat32s(oOff+b*hidden, row); err != nil {
			return err
		}
	}
	return nil
}

func kResidualAdd(d *gpu.Device, a []cuda.Value) error {
	dst, dOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	x, xOff, err := fetch(d, a[1])
	if err != nil {
		return err
	}
	y, yOff, err := fetch(d, a[2])
	if err != nil {
		return err
	}
	n := int(a[3].U32())
	xv, err := x.Float32s(xOff, n)
	if err != nil {
		return err
	}
	yv, err := y.Float32s(yOff, n)
	if err != nil {
		return err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = xv[i] + yv[i]
	}
	return dst.SetFloat32s(dOff, out)
}

func kSiluMul(d *gpu.Device, a []cuda.Value) error {
	dst, dOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	gu, gOff, err := fetch(d, a[1])
	if err != nil {
		return err
	}
	rows, hidden := int(a[2].U32()), int(a[3].U32())
	for r := 0; r < rows; r++ {
		row, err := gu.Float32s(gOff+r*2*hidden, 2*hidden)
		if err != nil {
			return err
		}
		out := make([]float32, hidden)
		for i := 0; i < hidden; i++ {
			g := float64(row[i])
			out[i] = float32(g / (1 + math.Exp(-g)) * float64(row[hidden+i]))
		}
		if err := dst.SetFloat32s(dOff+r*hidden, out); err != nil {
			return err
		}
	}
	return nil
}

func kBiasAdd(d *gpu.Device, a []cuda.Value) error {
	dst, dOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	bias, bOff, err := fetch(d, a[1])
	if err != nil {
		return err
	}
	rows, hidden := int(a[2].U32()), int(a[3].U32())
	bv, err := bias.Float32s(bOff, hidden)
	if err != nil {
		return err
	}
	for r := 0; r < rows; r++ {
		row, err := dst.Float32s(dOff+r*hidden, hidden)
		if err != nil {
			return err
		}
		for i := range row {
			row[i] += bv[i]
		}
		if err := dst.SetFloat32s(dOff+r*hidden, row); err != nil {
			return err
		}
	}
	return nil
}

func kLMHeadGemm(d *gpu.Device, a []cuda.Value) error {
	dst, dOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	src, sOff, err := fetch(d, a[1])
	if err != nil {
		return err
	}
	w, wOff, err := fetch(d, a[2])
	if err != nil {
		return err
	}
	rows, vocab, hidden := int(a[3].U32()), int(a[4].U32()), int(a[5].U32())
	for r := 0; r < rows; r++ {
		x, err := src.Float32s(sOff+r*hidden, hidden)
		if err != nil {
			return err
		}
		out := make([]float32, vocab)
		for v := 0; v < vocab; v++ {
			wr, err := w.Float32s(wOff+v*hidden, hidden)
			if err != nil {
				return err
			}
			var dot float64
			for i := 0; i < hidden; i++ {
				dot += float64(x[i]) * float64(wr[i])
			}
			out[v] = float32(dot)
		}
		if err := dst.SetFloat32s(dOff+r*vocab, out); err != nil {
			return err
		}
	}
	return nil
}

func kSampleArgmax(d *gpu.Device, a []cuda.Value) error {
	dst, dOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	logits, lOff, err := fetch(d, a[1])
	if err != nil {
		return err
	}
	batch, vocab := int(a[2].U32()), int(a[3].U32())
	seed := a[4].U64()
	for b := 0; b < batch; b++ {
		row, err := logits.Float32s(lOff+b*vocab, vocab)
		if err != nil {
			return err
		}
		best := 0
		for v := 1; v < vocab; v++ {
			if row[v] > row[best] {
				best = v
			}
		}
		if err := dst.SetUint32(dOff+b*2, uint32(best)); err != nil {
			return err
		}
		// The mix word depends on the sampling seed scalar, so a restore
		// that corrupts the seed parameter produces observably different
		// output — the signal validation forwarding relies on (§4).
		mix := uint32(seed) ^ uint32(seed>>32) ^ uint32(best)
		if err := dst.SetUint32(dOff+b*2+1, mix); err != nil {
			return err
		}
	}
	return nil
}

func kElemCopy(d *gpu.Device, a []cuda.Value) error {
	dst, dOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	src, sOff, err := fetch(d, a[1])
	if err != nil {
		return err
	}
	n := int(a[2].U32())
	v, err := src.Float32s(sOff, n)
	if err != nil {
		return err
	}
	return dst.SetFloat32s(dOff, v)
}

func kPadBatch(d *gpu.Device, a []cuda.Value) error {
	dst, dOff, err := fetch(d, a[0])
	if err != nil {
		return err
	}
	return dst.SetUint32(dOff, a[1].U32())
}
