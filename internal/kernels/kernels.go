// Package kernels installs the simulated GPU kernel set used by the
// inference engine: the building blocks of a decoder-only transformer
// forwarding (embedding, RMSNorm, GEMM, RoPE + KV-cache write, paged
// attention, SiLU, residual add, LM head, sampling).
//
// Kernels split into two worlds, mirroring the paper's §5:
//
//   - Exported kernels live in libmedusa_ops.so with dlsym-visible
//     symbols. Their addresses restore through the
//     dlopen/dlsym/cudaGetFuncBySymbol path.
//   - Hidden kernels — the batch-bucketed GEMM variants in
//     libcublas_sim.so — are absent from the symbol table, like real
//     cuBLAS kernels. They group into per-bucket modules and can only be
//     located by loading the module (via a triggering-kernel) and
//     enumerating it.
//
// The hidden GEMMs also require two 4-byte workspace buffers holding
// magic numbers (the paper's §4.3 "permanent buffers"): in functional
// mode the kernel refuses to run if the magic is wrong, so a restore
// that fails to reproduce permanent buffer contents fails loudly.
package kernels

import (
	"fmt"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/gpu"
)

// Library names.
const (
	LibOps    = "libmedusa_ops.so"
	LibCublas = "libcublas_sim.so"
)

// GemmBuckets are the batch-size buckets for which distinct hidden GEMM
// variants exist, modelling cuBLAS tile-size kernel selection. A batch
// size selects the smallest bucket that covers it.
var GemmBuckets = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// GemmBucket returns the bucket covering batch size b.
func GemmBucket(b int) int {
	for _, k := range GemmBuckets {
		if b <= k {
			return k
		}
	}
	return GemmBuckets[len(GemmBuckets)-1]
}

// GemmKernelName returns the mangled name of the hidden GEMM variant for
// a bucket.
func GemmKernelName(bucket int) string {
	return fmt.Sprintf("sim_cublas_sgemm_128x%d_tn", bucket)
}

// GemmModuleName returns the module that carries a bucket's GEMM variant.
func GemmModuleName(bucket int) string {
	return fmt.Sprintf("cublas_mod_sgemm_%d", bucket)
}

// WorkspaceMagic returns the two magic words a bucket's GEMM variant
// expects in its workspace buffers.
func WorkspaceMagic(bucket int) (uint32, uint32) {
	return 0xC0DE0000 | uint32(bucket), 0xFACE0000 | uint32(bucket)
}

// Exported kernel names.
const (
	EmbedLookup  = "medusa_embed_lookup_f32"
	RMSNorm      = "medusa_rmsnorm_f32"
	RopeCache    = "medusa_rope_kvcache_f32"
	PagedAttn    = "medusa_paged_attention_f32"
	ResidualAdd  = "medusa_residual_add_f32"
	SiluMul      = "medusa_silu_mul_f32"
	BiasAdd      = "medusa_bias_add_f32"
	LMHeadGemm   = "medusa_lm_head_gemm_f32"
	SampleArgmax = "medusa_sample_argmax"
	ElemCopy     = "medusa_elementwise_copy_f32"
	PadBatch     = "medusa_pad_batch_marker"
	// PrefillGemm is the workspace-free GEMM used by prefill-shaped
	// forwardings (including the KV-profiling run). Decode-shaped
	// forwardings — the ones CUDA graphs capture — use the hidden
	// bucketed cuBLAS variants instead, which is why cuBLAS workspace
	// initialization happens during warm-up, inside the capture stage.
	PrefillGemm = "medusa_prefill_gemm_f32"
)

// KVBlockTokens is the number of tokens per paged KV cache block,
// matching vLLM's default block size of 16.
const KVBlockTokens = 16

// fetch resolves a pointer argument to (buffer, element offset).
func fetch(d *gpu.Device, v cuda.Value) (*gpu.Buffer, int, error) {
	b, off, ok := d.FindBuffer(v.Ptr())
	if !ok {
		return nil, 0, fmt.Errorf("illegal memory access at %#x", v.Ptr())
	}
	if off%4 != 0 {
		return nil, 0, fmt.Errorf("misaligned pointer %#x", v.Ptr())
	}
	return b, int(off / 4), nil
}

// Register installs every kernel into the runtime. Call once per
// Runtime at setup.
func Register(rt *cuda.Runtime) {
	registerExported(rt)
	registerHiddenGemms(rt)
}

// NewRuntime returns a runtime with the full kernel set installed.
func NewRuntime() *cuda.Runtime {
	rt := cuda.NewRuntime()
	Register(rt)
	return rt
}
