package kernels

import (
	"fmt"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/gpu"
)

// registerHiddenGemms installs one hidden GEMM variant per batch
// bucket, each in its own module together with two hidden sibling
// kernels that are never launched directly — the structure that makes
// cuModuleEnumerateFunctions-based lookup meaningful: a triggering
// launch of any kernel in the module makes all of them resolvable.
//
// There are deliberately NO exported symbols in libcublas_sim.so: like
// real cuBLAS, the device kernels are unreachable through dlsym, so the
// only way to learn their addresses is to trigger a module load and
// enumerate (§5).
func registerHiddenGemms(rt *cuda.Runtime) {
	for _, bucket := range GemmBuckets {
		b := bucket
		rt.MustRegister(cuda.KernelImpl{
			Name:    GemmKernelName(b),
			Library: LibCublas,
			Module:  GemmModuleName(b),
			Params:  []cuda.ParamKind{cuda.Ptr, cuda.Ptr, cuda.Ptr, cuda.Ptr, cuda.Ptr, cuda.U32, cuda.U32, cuda.U32},
			Traffic: func(a []cuda.Value) uint64 {
				m, n, k := uint64(a[5].U32()), uint64(a[6].U32()), uint64(a[7].U32())
				return (m*k + k*n + m*n) * 2 // fp16 operands
			},
			Flops: func(a []cuda.Value) float64 {
				return 2 * float64(a[5].U32()) * float64(a[6].U32()) * float64(a[7].U32())
			},
			Func: gemmFunc(b),
		})
		for _, suffix := range []string{"splitk", "batched"} {
			rt.MustRegister(cuda.KernelImpl{
				Name:    fmt.Sprintf("%s_%s", GemmKernelName(b), suffix),
				Library: LibCublas,
				Module:  GemmModuleName(b),
				Params:  []cuda.ParamKind{cuda.Ptr, cuda.U32},
				Func:    nil, // sibling variants are present but unused
			})
		}
	}
}

// gemmFunc returns the functional implementation of a bucket's GEMM:
// dst[m×n] = src[m×k] · w[k×n], guarded by the workspace magic check.
func gemmFunc(bucket int) cuda.KernelFunc {
	wantA, wantB := WorkspaceMagic(bucket)
	return func(d *gpu.Device, a []cuda.Value) error {
		dst, dOff, err := fetch(d, a[0])
		if err != nil {
			return err
		}
		src, sOff, err := fetch(d, a[1])
		if err != nil {
			return err
		}
		w, wOff, err := fetch(d, a[2])
		if err != nil {
			return err
		}
		ws1, o1, err := fetch(d, a[3])
		if err != nil {
			return err
		}
		ws2, o2, err := fetch(d, a[4])
		if err != nil {
			return err
		}
		// The workspace words are written once at library initialization
		// (warm-up) and consulted on every launch — the paper's §4.3
		// "magic number for launching" in a permanent buffer. A restored
		// graph whose permanent buffer contents were not rematerialized
		// fails here.
		m1, err := ws1.Uint32(o1)
		if err != nil {
			return err
		}
		m2, err := ws2.Uint32(o2)
		if err != nil {
			return err
		}
		if m1 != wantA || m2 != wantB {
			return fmt.Errorf("sim_cublas: workspace magic mismatch for bucket %d: got %#x/%#x want %#x/%#x",
				bucket, m1, m2, wantA, wantB)
		}
		m, n, k := int(a[5].U32()), int(a[6].U32()), int(a[7].U32())
		for i := 0; i < m; i++ {
			x, err := src.Float32s(sOff+i*k, k)
			if err != nil {
				return err
			}
			out := make([]float32, n)
			for j := 0; j < n; j++ {
				var dot float64
				for l := 0; l < k; l++ {
					wv, err := w.Float32(wOff + l*n + j)
					if err != nil {
						return err
					}
					dot += float64(x[l]) * float64(wv)
				}
				out[j] = float32(dot)
			}
			if err := dst.SetFloat32s(dOff+i*n, out); err != nil {
				return err
			}
		}
		return nil
	}
}
