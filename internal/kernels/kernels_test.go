package kernels

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/gpu"
	"github.com/medusa-repro/medusa/internal/vclock"
)

func newProc(t testing.TB, seed int64) *cuda.Process {
	t.Helper()
	return cuda.NewProcess(NewRuntime(), vclock.New(), cuda.Config{Seed: seed, Mode: gpu.Functional})
}

func alloc(t testing.TB, p *cuda.Process, size uint64) (uint64, *gpu.Buffer) {
	t.Helper()
	a, err := p.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Device().Buffer(a)
	return a, b
}

func TestGemmBucketSelection(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 8: 8, 9: 16, 100: 128, 256: 256, 999: 256}
	for b, want := range cases {
		if got := GemmBucket(b); got != want {
			t.Errorf("GemmBucket(%d) = %d, want %d", b, got, want)
		}
	}
}

func TestRegistrationInventory(t *testing.T) {
	rt := NewRuntime()
	// 11 exported ops + 9 buckets × 3 hidden kernels.
	if got, want := rt.KernelCount(), 12+len(GemmBuckets)*3; got != want {
		t.Fatalf("KernelCount = %d, want %d", got, want)
	}
	// The cuBLAS library must expose no dlsym-visible symbols at all.
	lib, ok := rt.DL().Library(LibCublas)
	if !ok {
		t.Fatal("libcublas_sim.so missing")
	}
	for _, mod := range lib.ModuleNames() {
		syms, _ := lib.Module(mod)
		for _, s := range syms {
			if s.Exported {
				t.Fatalf("cublas symbol %q is exported", s.Name)
			}
		}
	}
	// Every ops kernel must be exported.
	ops, _ := rt.DL().Library(LibOps)
	for _, mod := range ops.ModuleNames() {
		syms, _ := ops.Module(mod)
		for _, s := range syms {
			if !s.Exported {
				t.Fatalf("ops symbol %q is hidden", s.Name)
			}
		}
	}
}

func TestGemmWorkspaceMagicEnforced(t *testing.T) {
	p := newProc(t, 1)
	s := p.NewStream()
	const m, n, k = 2, 3, 4
	dstA, _ := alloc(t, p, m*n*4)
	srcA, src := alloc(t, p, m*k*4)
	wA, w := alloc(t, p, k*n*4)
	ws1A, ws1 := alloc(t, p, 4)
	ws2A, ws2 := alloc(t, p, 4)
	src.SetFloat32s(0, []float32{1, 0, 0, 0, 0, 1, 0, 0})
	for i := 0; i < k*n; i++ {
		w.SetFloat32(i, float32(i))
	}
	name := GemmKernelName(GemmBucket(m))
	args := []cuda.Value{
		cuda.PtrValue(dstA), cuda.PtrValue(srcA), cuda.PtrValue(wA),
		cuda.PtrValue(ws1A), cuda.PtrValue(ws2A),
		cuda.U32Value(m), cuda.U32Value(n), cuda.U32Value(k),
	}
	// Without the magic initialized, the launch must fail.
	if err := p.Launch(s, name, args); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("gemm without magic = %v, want magic mismatch", err)
	}
	mg1, mg2 := WorkspaceMagic(GemmBucket(m))
	ws1.SetUint32(0, mg1)
	ws2.SetUint32(0, mg2)
	if err := p.Launch(s, name, args); err != nil {
		t.Fatal(err)
	}
	dst, _ := p.Device().Buffer(dstA)
	// Row 0 of src is e0 ⇒ dst row 0 = w row 0 = [0,1,2]; row 1 = w row 1.
	got, _ := dst.Float32s(0, m*n)
	want := []float32{0, 1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gemm dst = %v, want %v", got, want)
		}
	}
}

func TestWorkspaceMagicDistinctPerBucket(t *testing.T) {
	seen := map[uint64]bool{}
	for _, b := range GemmBuckets {
		a, c := WorkspaceMagic(b)
		key := uint64(a)<<32 | uint64(c)
		if seen[key] {
			t.Fatalf("bucket %d reuses magic pair", b)
		}
		seen[key] = true
	}
}

func TestRMSNormNormalizes(t *testing.T) {
	p := newProc(t, 2)
	s := p.NewStream()
	const hidden = 4
	dstA, dst := alloc(t, p, hidden*4)
	srcA, src := alloc(t, p, hidden*4)
	wA, w := alloc(t, p, hidden*4)
	src.SetFloat32s(0, []float32{3, 3, 3, 3})
	w.SetFloat32s(0, []float32{1, 1, 1, 2})
	err := p.Launch(s, RMSNorm, []cuda.Value{
		cuda.PtrValue(dstA), cuda.PtrValue(srcA), cuda.PtrValue(wA),
		cuda.U32Value(1), cuda.U32Value(hidden),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Float32s(0, hidden)
	// rms of [3,3,3,3] is 3 ⇒ normalized to ~1, scaled by weight.
	for i, want := range []float32{1, 1, 1, 2} {
		if math.Abs(float64(got[i]-want)) > 1e-3 {
			t.Fatalf("rmsnorm = %v", got)
		}
	}
}

func TestEmbedLookup(t *testing.T) {
	p := newProc(t, 3)
	s := p.NewStream()
	const hidden, vocab, batch = 2, 3, 2
	dstA, dst := alloc(t, p, batch*hidden*4)
	tblA, tbl := alloc(t, p, vocab*hidden*4)
	idsA, ids := alloc(t, p, batch*4)
	tbl.SetFloat32s(0, []float32{0, 1, 10, 11, 20, 21})
	ids.SetUint32(0, 2)
	ids.SetUint32(1, 0)
	err := p.Launch(s, EmbedLookup, []cuda.Value{
		cuda.PtrValue(dstA), cuda.PtrValue(tblA), cuda.PtrValue(idsA),
		cuda.U32Value(batch), cuda.U32Value(hidden),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Float32s(0, batch*hidden)
	want := []float32{20, 21, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("embed = %v, want %v", got, want)
		}
	}
}

func TestRopeCacheAndPagedAttention(t *testing.T) {
	p := newProc(t, 4)
	s := p.NewStream()
	const hidden, batch, maxBlocks = 4, 1, 2
	const cacheElems = maxBlocks * KVBlockTokens * hidden
	qkvA, qkv := alloc(t, p, batch*3*hidden*4)
	kcA, _ := alloc(t, p, cacheElems*4)
	vcA, _ := alloc(t, p, cacheElems*4)
	// Metadata buffer: [blockTable | seqlens].
	metaA, meta := alloc(t, p, (batch*maxBlocks+batch)*4)
	outA, out := alloc(t, p, batch*hidden*4)
	meta.SetUint32(0, 0) // block 0
	meta.SetUint32(1, 1) // block 1
	meta.SetUint32(batch*maxBlocks, 1)
	qkv.SetFloat32s(0, []float32{
		1, 0, 0, 0, // q
		0, 1, 0, 0, // k
		5, 6, 7, 8, // v
	})
	slPtr := metaA + uint64(batch*maxBlocks)*4 // interior pointer
	if err := p.Launch(s, RopeCache, []cuda.Value{
		cuda.PtrValue(qkvA), cuda.PtrValue(kcA), cuda.PtrValue(vcA),
		cuda.PtrValue(metaA), cuda.PtrValue(slPtr),
		cuda.U32Value(batch), cuda.U32Value(hidden), cuda.U32Value(maxBlocks),
	}); err != nil {
		t.Fatal(err)
	}
	// Position 0 ⇒ rotation by angle 0 leaves vectors unchanged; k and v
	// must now be in the cache.
	kc, _ := p.Device().Buffer(kcA)
	kv, _ := kc.Float32s(0, hidden)
	if kv[1] != 1 {
		t.Fatalf("k not written to cache: %v", kv)
	}
	if err := p.Launch(s, PagedAttn, []cuda.Value{
		cuda.PtrValue(outA), cuda.PtrValue(qkvA), cuda.PtrValue(kcA), cuda.PtrValue(vcA),
		cuda.PtrValue(metaA),
		cuda.U32Value(batch), cuda.U32Value(hidden), cuda.U32Value(maxBlocks),
	}); err != nil {
		t.Fatal(err)
	}
	// Single cached token ⇒ softmax weight 1 ⇒ output equals v.
	got, _ := out.Float32s(0, hidden)
	want := []float32{5, 6, 7, 8}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("attention out = %v, want %v", got, want)
		}
	}
}

func TestSiluMulAndResidual(t *testing.T) {
	p := newProc(t, 5)
	s := p.NewStream()
	const hidden = 2
	dstA, dst := alloc(t, p, hidden*4)
	guA, gu := alloc(t, p, 2*hidden*4)
	gu.SetFloat32s(0, []float32{0, 100, 3, 5}) // gate=[0,100], up=[3,5]
	if err := p.Launch(s, SiluMul, []cuda.Value{
		cuda.PtrValue(dstA), cuda.PtrValue(guA), cuda.U32Value(1), cuda.U32Value(hidden),
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Float32s(0, hidden)
	// silu(0)=0, silu(100)≈100 ⇒ [0*3, 100*5].
	if got[0] != 0 || math.Abs(float64(got[1]-500)) > 0.1 {
		t.Fatalf("silu_mul = %v", got)
	}
	aA, a := alloc(t, p, hidden*4)
	bA, b := alloc(t, p, hidden*4)
	a.SetFloat32s(0, []float32{1, 2})
	b.SetFloat32s(0, []float32{10, 20})
	if err := p.Launch(s, ResidualAdd, []cuda.Value{
		cuda.PtrValue(dstA), cuda.PtrValue(aA), cuda.PtrValue(bA), cuda.U32Value(hidden),
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = dst.Float32s(0, hidden)
	if got[0] != 11 || got[1] != 22 {
		t.Fatalf("residual_add = %v", got)
	}
}

func TestSampleArgmaxSeedSensitivity(t *testing.T) {
	p := newProc(t, 6)
	s := p.NewStream()
	const batch, vocab = 1, 4
	dstA, dst := alloc(t, p, batch*2*4)
	lgA, lg := alloc(t, p, batch*vocab*4)
	lg.SetFloat32s(0, []float32{0.1, 0.9, 0.3, 0.2})
	run := func(seed uint64) (uint32, uint32) {
		if err := p.Launch(s, SampleArgmax, []cuda.Value{
			cuda.PtrValue(dstA), cuda.PtrValue(lgA),
			cuda.U32Value(batch), cuda.U32Value(vocab), cuda.U64Value(seed),
		}); err != nil {
			t.Fatal(err)
		}
		tok, _ := dst.Uint32(0)
		mix, _ := dst.Uint32(1)
		return tok, mix
	}
	tok1, mix1 := run(42)
	tok2, mix2 := run(43)
	if tok1 != 1 || tok2 != 1 {
		t.Fatalf("argmax token = %d/%d, want 1", tok1, tok2)
	}
	// Different seed scalar must change observable output — this is what
	// lets validation forwarding detect a seed misclassified as pointer.
	if mix1 == mix2 {
		t.Fatal("sample mix word insensitive to seed")
	}
}

func TestLMHeadAndCopyAndPad(t *testing.T) {
	p := newProc(t, 7)
	s := p.NewStream()
	const hidden, vocab = 2, 3
	dstA, dst := alloc(t, p, vocab*4)
	srcA, src := alloc(t, p, hidden*4)
	wA, w := alloc(t, p, vocab*hidden*4)
	src.SetFloat32s(0, []float32{1, 2})
	w.SetFloat32s(0, []float32{1, 0, 0, 1, 1, 1})
	if err := p.Launch(s, LMHeadGemm, []cuda.Value{
		cuda.PtrValue(dstA), cuda.PtrValue(srcA), cuda.PtrValue(wA),
		cuda.U32Value(1), cuda.U32Value(vocab), cuda.U32Value(hidden),
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Float32s(0, vocab)
	want := []float32{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lm_head = %v, want %v", got, want)
		}
	}
	cpA, cp := alloc(t, p, vocab*4)
	if err := p.Launch(s, ElemCopy, []cuda.Value{
		cuda.PtrValue(cpA), cuda.PtrValue(dstA), cuda.U32Value(vocab),
	}); err != nil {
		t.Fatal(err)
	}
	cv, _ := cp.Float32s(0, vocab)
	if cv[2] != 3 {
		t.Fatalf("copy = %v", cv)
	}
	if err := p.Launch(s, PadBatch, []cuda.Value{cuda.PtrValue(cpA), cuda.U32Value(99)}); err != nil {
		t.Fatal(err)
	}
	u, _ := cp.Uint32(0)
	if u != 99 {
		t.Fatalf("pad marker = %d", u)
	}
}

func TestBiasAdd(t *testing.T) {
	p := newProc(t, 8)
	s := p.NewStream()
	const hidden = 2
	dstA, dst := alloc(t, p, 2*hidden*4)
	bA, b := alloc(t, p, hidden*4)
	dst.SetFloat32s(0, []float32{1, 2, 3, 4})
	b.SetFloat32s(0, []float32{10, 20})
	if err := p.Launch(s, BiasAdd, []cuda.Value{
		cuda.PtrValue(dstA), cuda.PtrValue(bA), cuda.U32Value(2), cuda.U32Value(hidden),
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Float32s(0, 2*hidden)
	want := []float32{11, 22, 13, 24}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bias_add = %v, want %v", got, want)
		}
	}
}

// Property: the GEMM functional implementation is linear in its input:
// gemm(αx) = α·gemm(x) for random small matrices.
func TestGemmLinearityProperty(t *testing.T) {
	f := func(seedRaw uint8, scaleRaw uint8) bool {
		p := newProc(t, int64(seedRaw)+100)
		s := p.NewStream()
		const m, n, k = 2, 2, 2
		scale := float32(scaleRaw%7) + 1
		dstA, _ := alloc(t, p, m*n*4)
		srcA, src := alloc(t, p, m*k*4)
		wA, w := alloc(t, p, k*n*4)
		ws1A, ws1 := alloc(t, p, 4)
		ws2A, ws2 := alloc(t, p, 4)
		mg1, mg2 := WorkspaceMagic(GemmBucket(m))
		ws1.SetUint32(0, mg1)
		ws2.SetUint32(0, mg2)
		base := []float32{1, 2, 3, 4}
		w.SetFloat32s(0, []float32{1, -1, 0.5, 2})
		args := []cuda.Value{
			cuda.PtrValue(dstA), cuda.PtrValue(srcA), cuda.PtrValue(wA),
			cuda.PtrValue(ws1A), cuda.PtrValue(ws2A),
			cuda.U32Value(m), cuda.U32Value(n), cuda.U32Value(k),
		}
		name := GemmKernelName(GemmBucket(m))
		src.SetFloat32s(0, base)
		if p.Launch(s, name, args) != nil {
			return false
		}
		dst, _ := p.Device().Buffer(dstA)
		y1, _ := dst.Float32s(0, m*n)
		scaled := make([]float32, len(base))
		for i := range base {
			scaled[i] = base[i] * scale
		}
		src.SetFloat32s(0, scaled)
		if p.Launch(s, name, args) != nil {
			return false
		}
		y2, _ := dst.Float32s(0, m*n)
		for i := range y1 {
			if math.Abs(float64(y2[i]-scale*y1[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefillGemm(t *testing.T) {
	p := newProc(t, 9)
	s := p.NewStream()
	const m, n, k = 2, 2, 2
	dstA, dst := alloc(t, p, m*n*4)
	srcA, src := alloc(t, p, m*k*4)
	wA, w := alloc(t, p, k*n*4)
	src.SetFloat32s(0, []float32{1, 0, 0, 1}) // identity
	w.SetFloat32s(0, []float32{5, 6, 7, 8})
	if err := p.Launch(s, PrefillGemm, []cuda.Value{
		cuda.PtrValue(dstA), cuda.PtrValue(srcA), cuda.PtrValue(wA),
		cuda.U32Value(m), cuda.U32Value(n), cuda.U32Value(k),
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Float32s(0, m*n)
	want := []float32{5, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefill gemm = %v, want %v", got, want)
		}
	}
	// Unlike the decode-shaped cuBLAS variants, no workspace is needed:
	// prefill runs before any cuBLAS initialization.
}

func TestFetchErrors(t *testing.T) {
	p := newProc(t, 10)
	s := p.NewStream()
	// Unmapped pointer.
	err := p.Launch(s, ElemCopy, []cuda.Value{
		cuda.PtrValue(0xdead0000), cuda.PtrValue(0xdead0000), cuda.U32Value(1),
	})
	if err == nil || !strings.Contains(err.Error(), "illegal memory access") {
		t.Fatalf("unmapped pointer = %v", err)
	}
	// Misaligned interior pointer.
	a, _ := alloc(t, p, 64)
	err = p.Launch(s, ElemCopy, []cuda.Value{
		cuda.PtrValue(a + 2), cuda.PtrValue(a), cuda.U32Value(1),
	})
	if err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("misaligned pointer = %v", err)
	}
}

func TestTrafficAndFlopsModels(t *testing.T) {
	rt := NewRuntime()
	gemm, _ := rt.Impl(GemmKernelName(8))
	args := []cuda.Value{
		cuda.PtrValue(0), cuda.PtrValue(0), cuda.PtrValue(0),
		cuda.PtrValue(0), cuda.PtrValue(0),
		cuda.U32Value(8), cuda.U32Value(128), cuda.U32Value(64),
	}
	if got, want := gemm.Traffic(args), uint64((8*64+64*128+8*128)*2); got != want {
		t.Fatalf("gemm traffic = %d, want %d", got, want)
	}
	if got, want := gemm.Flops(args), float64(2*8*128*64); got != want {
		t.Fatalf("gemm flops = %v, want %v", got, want)
	}
	attn, _ := rt.Impl(PagedAttn)
	aArgs := []cuda.Value{
		cuda.PtrValue(0), cuda.PtrValue(0), cuda.PtrValue(0), cuda.PtrValue(0), cuda.PtrValue(0),
		cuda.U32Value(4), cuda.U32Value(256), cuda.U32Value(8),
	}
	if attn.Traffic(aArgs) == 0 {
		t.Fatal("attention traffic model returned zero")
	}
	head, _ := rt.Impl(LMHeadGemm)
	hArgs := []cuda.Value{
		cuda.PtrValue(0), cuda.PtrValue(0), cuda.PtrValue(0),
		cuda.U32Value(2), cuda.U32Value(32000), cuda.U32Value(4096),
	}
	if head.Flops(hArgs) != float64(2*2*32000*4096) {
		t.Fatalf("lm head flops = %v", head.Flops(hArgs))
	}
	// Every elementwise kernel reports nonzero traffic for nonzero work.
	for _, name := range []string{RMSNorm, RopeCache, ResidualAdd, SiluMul, BiasAdd, ElemCopy, EmbedLookup, SampleArgmax} {
		impl, ok := rt.Impl(name)
		if !ok || impl.Traffic == nil {
			t.Fatalf("%s missing traffic model", name)
		}
	}
}
