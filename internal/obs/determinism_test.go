// End-to-end determinism: a serverless simulation at a fixed seed must
// produce bit-identical traces — same spans, same virtual timestamps,
// same exporter bytes — across runs. This is the property the package
// doc promises and the golden tests rely on; it holds because every
// recorded instant comes from the virtual clock, never the wall clock.
// External test package: the simulation stack imports obs.
package obs_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/obs"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/workload"
)

func traceOneRun(t *testing.T) ([]obs.SpanData, []byte) {
	t.Helper()
	cfg, err := model.ByName("Qwen1.5-4B")
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(workload.TraceConfig{
		Seed: 42, RPS: 6, Duration: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	sc := serverless.Config{
		Model:    cfg,
		Strategy: engine.StrategyVLLM,
		Store:    storage.NewStore(storage.DefaultArray()),
		NumGPUs:  4,
		Seed:     1,
		Tracer:   tr,
	}
	if _, err := serverless.Run(sc, reqs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return tr.Spans(), buf.Bytes()
}

func TestTraceDeterministicAtFixedSeed(t *testing.T) {
	spans1, chrome1 := traceOneRun(t)
	spans2, chrome2 := traceOneRun(t)
	if len(spans1) == 0 {
		t.Fatal("simulation recorded no spans")
	}
	if !reflect.DeepEqual(spans1, spans2) {
		for i := range spans1 {
			if i < len(spans2) && !reflect.DeepEqual(spans1[i], spans2[i]) {
				t.Fatalf("span %d differs between runs:\n  run1: %+v\n  run2: %+v", i, spans1[i], spans2[i])
			}
		}
		t.Fatalf("span counts differ: %d vs %d", len(spans1), len(spans2))
	}
	if !bytes.Equal(chrome1, chrome2) {
		t.Error("Chrome exporter bytes differ between identical runs")
	}
}
