package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureTracer builds a small but representative span set: a nested
// cold start, an overlapping storage read, and a span on a second track
// that starts at the same instant (exercising the Track tiebreak).
func fixtureTracer() *Tracer {
	tr := NewTracer()
	root := tr.StartSpan("engine/Qwen1.5-4B/MEDUSA", "cold_start", 0)
	root.Tag("cold_start").Attr("strategy", "MEDUSA").Attr("model", "Qwen1.5-4B")
	st := root.Child("model_struct_init", 0)
	st.Tag("model_struct_init").AttrInt("tensors", 271)
	st.End(12 * time.Millisecond)
	w := root.Child("model_weights_loading", 12*time.Millisecond)
	w.Tag("model_weights_loading").AttrBytes("bytes", 7_864_320)
	w.End(48 * time.Millisecond)
	tr.RecordSpan("storage", "get", "io",
		13*time.Millisecond, 21*time.Millisecond, Attr{Key: "bytes", Value: "1048576"})
	root.End(60 * time.Millisecond)
	tr.RecordSpan("deployment-0/queue", "req-1", "queued", 0, 3*time.Millisecond)
	return tr
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureTracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace diverged from golden file\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureTracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	// One process_name + one thread_name per track + one X per span.
	tracks := fixtureTracer().Tracks()
	wantEvents := 1 + len(tracks) + fixtureTracer().Len()
	if len(doc.TraceEvents) != wantEvents {
		t.Errorf("got %d events, want %d", len(doc.TraceEvents), wantEvents)
	}
	meta, complete := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Tid < 1 || ev.Tid > len(tracks) {
				t.Errorf("event %q has tid %d outside [1,%d]", ev.Name, ev.Tid, len(tracks))
			}
		default:
			t.Errorf("unexpected ph %q", ev.Ph)
		}
	}
	if meta != 1+len(tracks) || complete != fixtureTracer().Len() {
		t.Errorf("meta=%d complete=%d, want %d and %d", meta, complete, 1+len(tracks), fixtureTracer().Len())
	}
}

func TestWriteChromeRepeatable(t *testing.T) {
	var a, b bytes.Buffer
	tr := fixtureTracer()
	if err := tr.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two WriteChrome calls on the same tracer produced different bytes")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x", "y", 0)
	sp.Tag("p").Attr("k", "v").AttrInt("i", 1)
	sp.Child("c", 0).End(time.Second)
	sp.End(time.Second)
	tr.RecordSpan("x", "y", "p", 0, time.Second)
	if tr.Len() != 0 || tr.Spans() != nil || tr.Tracks() != nil {
		t.Error("nil tracer recorded state")
	}
	if err := tr.WriteChrome(&bytes.Buffer{}); err == nil {
		t.Error("WriteChrome on nil tracer should error")
	}
}
