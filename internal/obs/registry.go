package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/medusa-repro/medusa/internal/metrics"
)

// Registry is a lightweight, name-keyed collection of counters, gauges
// and latency samples — the replacement for ad-hoc metrics plumbing.
// Instruments are created on first use, so readers and writers need no
// registration handshake. Safe for concurrent use; values are plain
// (no atomics needed — simulators are single-goroutine, and the mutex
// covers the rest).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	samples  map[string]*metrics.Sample
	retain   bool
}

// RetainSamples makes every sample created after the call retain all
// observations instead of bounding them at the default reservoir — the
// registry-level switch behind the simulators' RetainPerRequest option.
// Call it before the first Sample lookup.
func (r *Registry) RetainSamples() {
	r.mu.Lock()
	r.retain = true
	r.mu.Unlock()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		samples:  make(map[string]*metrics.Sample),
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (n may not be negative).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: counter decrement by %d", n))
	}
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is an instantaneous level that also tracks its high-water mark
// (peak instances, live requests, …).
type Gauge struct {
	mu   sync.Mutex
	v    float64
	max  float64
	seen bool
}

// Update sets the gauge's current value and folds it into the maximum.
func (g *Gauge) Update(v float64) {
	g.mu.Lock()
	g.v = v
	if !g.seen || v > g.max {
		g.max = v
		g.seen = true
	}
	g.mu.Unlock()
}

// Value reads the gauge's current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max reads the highest value ever set (0 if never set).
func (g *Gauge) Max() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Sample returns (creating on first use) the named latency sample.
func (r *Registry) Sample(name string) *metrics.Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.samples[name]
	if !ok {
		s = &metrics.Sample{}
		if r.retain {
			s.Retain()
		}
		r.samples[name] = s
	}
	return s
}

// CounterNames lists registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.counters)
}

// GaugeNames lists registered gauge names, sorted.
func (r *Registry) GaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.gauges)
}

// SampleNames lists registered sample names, sorted.
func (r *Registry) SampleNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeys(r.samples)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Render dumps the registry as an aligned text block: counters, then
// gauges (value and peak), then samples (count/mean/p50/p99/max via
// metrics.Summary). Deterministic — names sort lexicographically.
func (r *Registry) Render() string {
	var b strings.Builder
	for _, name := range r.CounterNames() {
		fmt.Fprintf(&b, "counter %-24s %d\n", name, r.Counter(name).Value())
	}
	for _, name := range r.GaugeNames() {
		g := r.Gauge(name)
		fmt.Fprintf(&b, "gauge   %-24s %g (peak %g)\n", name, g.Value(), g.Max())
	}
	for _, name := range r.SampleNames() {
		s := r.Sample(name)
		sum, ok := s.Summary()
		if !ok {
			fmt.Fprintf(&b, "sample  %-24s (empty)\n", name)
			continue
		}
		fmt.Fprintf(&b, "sample  %-24s n=%d mean=%v p50=%v p99=%v max=%v\n",
			name, sum.Count, sum.Mean, sum.P50, sum.P99, sum.Max)
	}
	return b.String()
}
