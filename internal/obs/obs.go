// Package obs provides phase-attributed tracing and a lightweight
// metrics registry for the cold-start and serving stack. Every
// timestamp is virtual — an offset on the simulation's vclock — and
// wall-clock time is never recorded: a trace taken at a fixed seed is
// bit-identical across runs, machines and -race modes, which is what
// lets exporter output be golden-tested.
//
// The span model is hierarchical: a Span belongs to a track (one track
// per simulated GPU/instance, plus auxiliary tracks like "storage" or
// a request queue), carries a phase tag (the engine's Stage* names,
// "queued", "prefill", "decode", …) and ordered key/value attributes,
// and may nest children. Exporters — the Chrome trace_event writer in
// chrome.go and the Figure-5-style phase table in phases.go — render
// the same spans for Perfetto and for terminals respectively.
//
// A nil *Tracer is a valid no-op: instrumented code records spans
// unconditionally and pays nothing when tracing is off.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Attributes are ordered
// (slice, not map) so exporter output is deterministic.
type Attr struct {
	Key   string
	Value string
}

// SpanData is the recorded form of one span.
type SpanData struct {
	// ID is the span's index in emission order (stable within a run).
	ID int
	// Parent is the parent span's ID, or -1 for a root span.
	Parent int
	// Track names the horizontal lane the span renders on — one per
	// simulated GPU/instance by convention.
	Track string
	// Name labels the span.
	Name string
	// Phase is the phase tag used for breakdown attribution; empty
	// means the span does not participate in phase tables.
	Phase string
	// Start and End are virtual-clock instants.
	Start, End time.Duration
	// Attrs are the ordered key/value annotations.
	Attrs []Attr
}

// Duration is the span length.
func (s SpanData) Duration() time.Duration { return s.End - s.Start }

// Tracer collects spans. The zero value is not usable; call NewTracer.
// A nil *Tracer is a no-op sink. Safe for concurrent use, though span
// IDs are only deterministic when emission order is (the simulators
// emit from a single goroutine).
type Tracer struct {
	mu    sync.Mutex
	spans []SpanData
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span is a handle to an in-flight (or finished) span. A nil *Span is
// a no-op, so call sites need no tracer-enabled checks.
type Span struct {
	tr *Tracer
	id int
}

// StartSpan opens a root span on a track at the given virtual instant.
// Returns nil (a no-op handle) on a nil tracer.
func (t *Tracer) StartSpan(track, name string, start time.Duration) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.startLocked(-1, track, name, start)
}

func (t *Tracer) startLocked(parent int, track, name string, start time.Duration) *Span {
	id := len(t.spans)
	t.spans = append(t.spans, SpanData{
		ID: id, Parent: parent, Track: track, Name: name, Start: start, End: start,
	})
	return &Span{tr: t, id: id}
}

// RecordSpan records an already-measured interval in one call.
func (t *Tracer) RecordSpan(track, name, phase string, start, end time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	sp := t.StartSpan(track, name, start)
	sp.Tag(phase)
	for _, a := range attrs {
		sp.Attr(a.Key, a.Value)
	}
	sp.End(end)
}

// Child opens a sub-span on the same track.
func (s *Span) Child(name string, start time.Duration) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.tr.startLocked(s.id, s.tr.spans[s.id].Track, name, start)
}

// Tag sets the span's phase tag and returns the span for chaining.
func (s *Span) Tag(phase string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	s.tr.spans[s.id].Phase = phase
	s.tr.mu.Unlock()
	return s
}

// Attr appends a key/value attribute and returns the span.
func (s *Span) Attr(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	s.tr.spans[s.id].Attrs = append(s.tr.spans[s.id].Attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
	return s
}

// AttrInt appends an integer attribute.
func (s *Span) AttrInt(key string, v int64) *Span {
	return s.Attr(key, fmt.Sprintf("%d", v))
}

// AttrBytes appends a byte-count attribute.
func (s *Span) AttrBytes(key string, v uint64) *Span {
	return s.Attr(key, fmt.Sprintf("%d", v))
}

// AttrDuration appends a duration attribute.
func (s *Span) AttrDuration(key string, d time.Duration) *Span {
	return s.Attr(key, d.String())
}

// End closes the span at the given virtual instant. Ending before the
// start panics — virtual intervals, like real ones, cannot be negative.
func (s *Span) End(end time.Duration) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	sp := &s.tr.spans[s.id]
	if end < sp.Start {
		panic(fmt.Sprintf("obs: span %q ends (%v) before it starts (%v)", sp.Name, end, sp.Start))
	}
	sp.End = end
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of all recorded spans sorted by (Start, Track,
// Name, End, Phase, Attrs, ID) — the deterministic order the exporters
// render in. Every tie-break before ID is a content field, so exporter
// output is a pure function of the span *set*: concurrent emitters
// (the storage tier under the parallel offline pipeline, the cluster
// cache's prefetch path) may interleave insertion differently between
// runs without changing what the exporters write. ID keeps even
// fully-identical duplicate spans deterministic within a run.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		if c := compareAttrs(out[i].Attrs, out[j].Attrs); c != 0 {
			return c < 0
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// compareAttrs orders attribute lists lexicographically by (key, value)
// pairs, shorter prefix first.
func compareAttrs(a, b []Attr) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Key != b[i].Key {
			if a[i].Key < b[i].Key {
				return -1
			}
			return 1
		}
		if a[i].Value != b[i].Value {
			if a[i].Value < b[i].Value {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// Tracks returns the distinct track names in sorted order.
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	seen := make(map[string]bool, 8)
	var tracks []string
	for i := range t.spans {
		if !seen[t.spans[i].Track] {
			seen[t.spans[i].Track] = true
			tracks = append(tracks, t.spans[i].Track)
		}
	}
	t.mu.Unlock()
	sort.Strings(tracks)
	return tracks
}
