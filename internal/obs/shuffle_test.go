package obs

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// These tests pin the property the maporder analyzer guards statically:
// exporter output is a pure function of the span *set*, not of the
// order spans happened to be recorded in. The parallel offline pipeline
// and the sharded cluster simulator may interleave emission differently
// between configurations; traces and phase tables must not care.

// shuffleSpec is one span in content form (no IDs).
type shuffleSpec struct {
	track, name, phase string
	start, end         time.Duration
	attrs              []Attr
}

// shuffleFixture includes same-instant, same-track collisions so the
// content tie-breaks (Name, then End) actually decide the order.
func shuffleFixture() []shuffleSpec {
	ms := time.Millisecond
	return []shuffleSpec{
		{"gpu-0", "cold_start", "cold_start", 0, 60 * ms, []Attr{{"strategy", "MEDUSA"}}},
		{"gpu-0", "model_struct_init", "model_struct_init", 0, 12 * ms, nil},
		{"gpu-0", "graph_capture", "graph_capture", 12 * ms, 30 * ms, nil},
		{"gpu-1", "cold_start", "cold_start", 0, 55 * ms, nil},
		{"storage", "get", "io", 5 * ms, 9 * ms, []Attr{{"bytes", "1048576"}}},
		{"storage", "get", "io", 5 * ms, 14 * ms, nil}, // same start+track+name, later end
		{"queue", "req-1", "queued", 9 * ms, 11 * ms, nil},
		{"queue", "req-2", "queued", 9 * ms, 13 * ms, nil},
		// Same start+track+name+end, different phase: the phase tie-break
		// decides (concurrent emitters may collide this far).
		{"gpu-1", "stage", "phase_a", 2 * ms, 4 * ms, nil},
		{"gpu-1", "stage", "phase_b", 2 * ms, 4 * ms, nil},
		// Identical except for attrs — the cluster cache records fetches
		// of different objects at the same instant on one node's track.
		{"storage/cache/node0", "fetch", "artifact_fetch", 20 * ms, 22 * ms,
			[]Attr{{"object", "m-a"}, {"tier", "ram"}}},
		{"storage/cache/node0", "fetch", "artifact_fetch", 20 * ms, 22 * ms,
			[]Attr{{"object", "m-b"}, {"tier", "ssd"}}},
	}
}

func renderChrome(t *testing.T, specs []shuffleSpec) []byte {
	t.Helper()
	tr := NewTracer()
	for _, s := range specs {
		tr.RecordSpan(s.track, s.name, s.phase, s.start, s.end, s.attrs...)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteChromeStableUnderShuffledInsertion(t *testing.T) {
	base := shuffleFixture()
	want := renderChrome(t, base)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		shuffled := append([]shuffleSpec(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := renderChrome(t, shuffled)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: Chrome trace depends on span insertion order\n--- canonical ---\n%s\n--- shuffled ---\n%s",
				trial, want, got)
		}
	}
}

// phaseIntervals includes an equal-start tie (weights vs tokenizer at
// t=10ms) so the owner tie-break, not input order, decides attribution.
func phaseIntervals() []Interval {
	ms := time.Millisecond
	return []Interval{
		{Phase: "weights", Start: 10 * ms, End: 40 * ms},
		{Phase: "tokenizer", Start: 10 * ms, End: 25 * ms},
		{Phase: "struct_init", Start: 0, End: 10 * ms},
		{Phase: "kv_init", Start: 35 * ms, End: 50 * ms},
		{Phase: "capture", Start: 55 * ms, End: 70 * ms}, // leaves a [50,55) gap
	}
}

func renderTable(ivs []Interval) string {
	b := NewPhaseBreakdown()
	b.AddExclusive(ivs)
	return b.Table()
}

func TestPhaseTableStableUnderShuffledInsertion(t *testing.T) {
	base := phaseIntervals()
	want := renderTable(base)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		shuffled := append([]Interval(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		if got := renderTable(shuffled); got != want {
			t.Fatalf("trial %d: phase table depends on interval order\n--- canonical ---\n%s\n--- shuffled ---\n%s",
				trial, want, got)
		}
	}
}

func TestPhaseTableEqualStartTieBreak(t *testing.T) {
	// weights and tokenizer both start at 10ms; weights ends later, so
	// it must own the shared region regardless of argument order.
	b := NewPhaseBreakdown()
	b.AddExclusive([]Interval{
		{Phase: "tokenizer", Start: 10 * time.Millisecond, End: 25 * time.Millisecond},
		{Phase: "weights", Start: 10 * time.Millisecond, End: 40 * time.Millisecond},
	})
	if d := b.Duration("weights"); d != 30*time.Millisecond {
		t.Errorf("weights = %v, want 30ms (longer interval owns the tie)", d)
	}
	if d := b.Duration("tokenizer"); d != 0 {
		t.Errorf("tokenizer = %v, want 0 (shadowed)", d)
	}
}
