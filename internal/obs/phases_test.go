package obs

import (
	"strings"
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/trace"
)

func TestAddExclusiveZeroDriftWithOverlap(t *testing.T) {
	// Async-style overlap: weights stream [0,30], tokenizer [10,20]
	// entirely inside it, kv [25,40] straddling the end.
	ivs := []Interval{
		{Phase: "weights", Start: 0, End: 30 * time.Millisecond},
		{Phase: "tokenizer", Start: 10 * time.Millisecond, End: 20 * time.Millisecond},
		{Phase: "kv", Start: 25 * time.Millisecond, End: 40 * time.Millisecond},
	}
	b := NewPhaseBreakdown()
	b.AddExclusive(ivs)
	if got, want := b.Total(), 40*time.Millisecond; got != want {
		t.Fatalf("Total = %v, want hull extent %v", got, want)
	}
	// Earliest-started interval owns every covered instant: weights gets
	// all of [0,30) (tokenizer is fully shadowed), kv only [30,40).
	if d := b.Duration("weights"); d != 30*time.Millisecond {
		t.Errorf("weights = %v, want 30ms", d)
	}
	if d := b.Duration("tokenizer"); d != 0 {
		t.Errorf("tokenizer = %v, want 0 (shadowed by weights)", d)
	}
	if d := b.Duration("kv"); d != 10*time.Millisecond {
		t.Errorf("kv = %v, want 10ms", d)
	}
}

func TestAddExclusiveChargesGaps(t *testing.T) {
	b := NewPhaseBreakdown()
	b.AddExclusive([]Interval{
		{Phase: "a", Start: 0, End: 10 * time.Millisecond},
		{Phase: "b", Start: 30 * time.Millisecond, End: 40 * time.Millisecond},
	})
	if d := b.Duration(GapPhase); d != 20*time.Millisecond {
		t.Errorf("gap = %v, want 20ms", d)
	}
	if got, want := b.Total(), 40*time.Millisecond; got != want {
		t.Errorf("Total = %v, want %v", got, want)
	}
}

func TestTimelineIntervalsRoundTrip(t *testing.T) {
	tl := &trace.Timeline{}
	tl.Record("struct", 0, 100*time.Millisecond)
	tl.Record("weights", 100*time.Millisecond, 400*time.Millisecond)
	tl.Record("tok", 150*time.Millisecond, 250*time.Millisecond)
	b := NewPhaseBreakdown()
	b.AddExclusive(TimelineIntervals(tl, 2*time.Second))
	if got, want := b.Total(), tl.Total(); got != want {
		t.Fatalf("attributed %v, timeline extent %v — drift %v", got, want, got-want)
	}
}

func TestTableListsPhasesInFirstChargedOrder(t *testing.T) {
	b := NewPhaseBreakdown()
	b.Add("zeta", time.Second)
	b.Add("alpha", time.Second)
	tab := b.Table()
	if zi, ai := strings.Index(tab, "zeta"), strings.Index(tab, "alpha"); zi < 0 || ai < 0 || zi > ai {
		t.Errorf("phases not in first-charged order:\n%s", tab)
	}
	if !strings.Contains(tab, "TOTAL") {
		t.Errorf("missing TOTAL row:\n%s", tab)
	}
}

func TestRegistryCreateOnFirstUse(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Counter("c").Inc()
	if v := r.Counter("c").Value(); v != 4 {
		t.Errorf("counter = %d, want 4", v)
	}
	g := r.Gauge("g")
	g.Update(5)
	g.Update(2)
	if g.Value() != 2 || g.Max() != 5 {
		t.Errorf("gauge value=%g max=%g, want 2 and 5", g.Value(), g.Max())
	}
	r.Sample("s").Add(time.Second)
	if names := r.SampleNames(); len(names) != 1 || names[0] != "s" {
		t.Errorf("SampleNames = %v", names)
	}
	if out := r.Render(); !strings.Contains(out, "counter c") {
		t.Errorf("Render missing counter:\n%s", out)
	}
}
