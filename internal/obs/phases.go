package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/medusa-repro/medusa/internal/trace"
)

// GapPhase is the synthetic phase that absorbs instants of a breakdown
// extent covered by no interval. Keeping gaps explicit is what makes
// the accounting exact: the per-phase durations of one attribution
// always sum to the extent of the input intervals, to the nanosecond.
const GapPhase = "(gap)"

// Interval is one phase-tagged interval handed to AddExclusive.
type Interval struct {
	Phase      string
	Start, End time.Duration
}

// TimelineIntervals converts a cold-start stage timeline into
// intervals, shifting every stage by offset.
func TimelineIntervals(tl *trace.Timeline, offset time.Duration) []Interval {
	return AppendTimelineIntervals(nil, tl, offset)
}

// AppendTimelineIntervals is TimelineIntervals into a caller-provided
// buffer — the allocation-free form for hot loops that convert one
// timeline per cold start. AddExclusive does not retain its input, so
// callers may reuse the buffer across calls.
func AppendTimelineIntervals(dst []Interval, tl *trace.Timeline, offset time.Duration) []Interval {
	for _, st := range tl.Stages() {
		dst = append(dst, Interval{Phase: st.Name, Start: offset + st.Start, End: offset + st.End})
	}
	return dst
}

// PhaseBreakdown accumulates exclusive per-phase durations — the
// Figure-5 view of cold starts. "Exclusive" means every instant of an
// attributed extent is charged to exactly one phase, so the per-phase
// sums equal the end-to-end durations with zero drift even when the
// underlying stages overlap (async weight streaming, Medusa's restore
// next to the weight copy).
type PhaseBreakdown struct {
	order  []string
	totals map[string]time.Duration
	counts map[string]int
}

// NewPhaseBreakdown returns an empty breakdown.
func NewPhaseBreakdown() *PhaseBreakdown {
	return &PhaseBreakdown{totals: make(map[string]time.Duration), counts: make(map[string]int)}
}

// Add charges d to a phase directly.
func (b *PhaseBreakdown) Add(phase string, d time.Duration) {
	if _, ok := b.totals[phase]; !ok {
		b.order = append(b.order, phase)
	}
	b.totals[phase] += d
	b.counts[phase]++
}

// AddExclusive attributes the extent covered by the intervals to their
// phases exclusively: at every instant the earliest-started covering
// interval owns the time (ties broken by later end, then by phase
// name, so attribution is independent of input order); instants inside
// the extent covered by nothing are charged to GapPhase. The total
// charged equals exactly hull(intervals).End - hull(intervals).Start.
func (b *PhaseBreakdown) AddExclusive(intervals []Interval) {
	if len(intervals) == 0 {
		return
	}
	// Elementary slices between sorted unique boundaries.
	bounds := make([]time.Duration, 0, 2*len(intervals))
	for _, iv := range intervals {
		bounds = append(bounds, iv.Start, iv.End)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, t := range bounds[1:] {
		if t != uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}
	charged := make(map[string]bool, len(intervals))
	for i := 0; i+1 < len(uniq); i++ {
		lo, hi := uniq[i], uniq[i+1]
		owner := GapPhase
		var ownerIv *Interval
		for j := range intervals {
			iv := &intervals[j]
			if iv.Start > lo || hi > iv.End {
				continue
			}
			if ownerIv == nil ||
				iv.Start < ownerIv.Start ||
				(iv.Start == ownerIv.Start && (iv.End > ownerIv.End ||
					(iv.End == ownerIv.End && iv.Phase < ownerIv.Phase))) {
				owner = iv.Phase
				ownerIv = iv
			}
		}
		if _, ok := b.totals[owner]; !ok {
			b.order = append(b.order, owner)
		}
		b.totals[owner] += hi - lo
		if !charged[owner] {
			charged[owner] = true
			b.counts[owner]++
		}
	}
}

// Phases lists the phases in first-charged order.
func (b *PhaseBreakdown) Phases() []string { return append([]string(nil), b.order...) }

// Duration reports a phase's accumulated exclusive time.
func (b *PhaseBreakdown) Duration(phase string) time.Duration { return b.totals[phase] }

// Count reports how many attributions charged the phase.
func (b *PhaseBreakdown) Count(phase string) int { return b.counts[phase] }

// Total sums all phases — by construction, exactly the summed extents
// handed to AddExclusive (plus direct Adds).
func (b *PhaseBreakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.totals {
		t += d
	}
	return t
}

// Table renders the Figure-5-style text breakdown: one row per phase
// in first-charged order with exclusive seconds and share, then an
// exact total row.
func (b *PhaseBreakdown) Table() string {
	total := b.Total()
	var w strings.Builder
	fmt.Fprintf(&w, "%-26s %12s %8s %7s\n", "phase", "exclusive", "share", "count")
	for _, p := range b.order {
		share := 0.0
		if total > 0 {
			share = float64(b.totals[p]) / float64(total) * 100
		}
		fmt.Fprintf(&w, "%-26s %11.3fs %7.1f%% %7d\n", p, b.totals[p].Seconds(), share, b.counts[p])
	}
	fmt.Fprintf(&w, "%-26s %11.3fs\n", "TOTAL", total.Seconds())
	return w.String()
}
