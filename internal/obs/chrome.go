package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Chrome trace_event exporter. The output loads in Perfetto
// (ui.perfetto.dev) and chrome://tracing: complete ("X") events carry
// microsecond timestamps, one thread track per obs track (pid 1 =
// the simulation), and span attributes as args. Output is byte-for-byte
// deterministic for a deterministic span set: tracks are numbered in
// sorted name order, events sort by (ts, tid, ID), map-free structs
// fix the field order, and encoding/json renders args maps with sorted
// keys.

// chromeEvent is one trace_event entry. Field order here is the field
// order in the emitted JSON.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

const chromePid = 1

// micros converts a virtual duration to trace_event microseconds.
func micros(d int64) float64 { return float64(d) / 1e3 }

// WriteChrome renders every recorded span as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteChrome on a nil tracer")
	}
	spans := t.Spans()
	tracks := t.Tracks()
	tid := make(map[string]int, len(tracks))
	for i, name := range tracks {
		tid[name] = i + 1
	}

	events := make([]chromeEvent, 0, len(spans)+len(tracks)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]string{"name": "medusa (virtual clock)"},
	})
	for _, name := range tracks {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid[name],
			Args: map[string]string{"name": name},
		})
	}
	for _, sp := range spans {
		dur := micros(int64(sp.Duration()))
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Phase,
			Ph:   "X",
			Ts:   micros(int64(sp.Start)),
			Dur:  &dur,
			Pid:  chromePid,
			Tid:  tid[sp.Track],
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}

	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	for i, ev := range events {
		enc, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		b.Write(enc)
		if i+1 < len(events) {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
