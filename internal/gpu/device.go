// Package gpu simulates a single GPU device — its memory, its allocator,
// and its execution-time accounting. It stands in for the A100-40GB used
// in the paper's evaluation.
//
// The allocator deliberately reproduces the two properties Medusa's
// parameter restoration (§4 of the paper) has to fight:
//
//  1. Non-determinism across process launches: the allocation base is
//     randomized per device (per simulated process), so the same
//     allocation sequence yields different addresses on every cold start,
//     exactly like cudaMalloc.
//  2. Address reuse within a launch: freed blocks are kept on per-size
//     free lists and handed back to later allocations of the same size,
//     which is what makes naive first-match pointer analysis produce the
//     false positives of §4.1.
//
// Buffers are backed lazily: data is materialized only when a kernel or
// memcpy actually touches it, and only when the device runs in functional
// mode. Cost-only mode (used for the paper's 7B–14B models whose tensors
// would not fit in host memory) charges virtual time without touching
// bytes.
package gpu

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/medusa-repro/medusa/internal/vclock"
)

// ExecMode selects whether kernels actually compute on buffer contents.
type ExecMode int

const (
	// Functional mode backs buffers with real bytes and runs kernel
	// implementations; used by tests, validation forwarding, and small
	// models.
	Functional ExecMode = iota
	// CostOnly mode skips kernel bodies and data movement, charging only
	// virtual time; used for the large calibrated models.
	CostOnly
)

func (m ExecMode) String() string {
	switch m {
	case Functional:
		return "functional"
	case CostOnly:
		return "cost-only"
	default:
		return fmt.Sprintf("ExecMode(%d)", int(m))
	}
}

// DeviceConfig describes the simulated hardware.
type DeviceConfig struct {
	// Name is a human-readable device model, e.g. "A100-SXM4-40GB".
	Name string
	// TotalMemory is the device memory capacity in bytes.
	TotalMemory uint64
	// MemBandwidth is the HBM bandwidth in bytes/second, used by the
	// engine's cost model for memory-bound kernels.
	MemBandwidth float64
	// PeakFLOPS is the dense fp16 throughput in FLOP/s, used for
	// compute-bound kernels (prefill).
	PeakFLOPS float64
	// Mode selects functional or cost-only execution.
	Mode ExecMode
	// Seed randomizes the allocator base and free-list behaviour. Each
	// simulated process launch must use a fresh seed to model cudaMalloc
	// non-determinism.
	Seed int64
}

// A100 returns the configuration of the paper's evaluation GPU.
func A100(seed int64, mode ExecMode) DeviceConfig {
	return DeviceConfig{
		Name:         "A100-SXM4-40GB",
		TotalMemory:  40 << 30,
		MemBandwidth: 1555e9, // 1555 GB/s HBM2e
		PeakFLOPS:    312e12, // fp16 tensor core peak
		Mode:         mode,
		Seed:         seed,
	}
}

// Device is one simulated GPU owned by one simulated process.
type Device struct {
	cfg   DeviceConfig
	clock *vclock.Clock
	alloc *Allocator

	// peakUsed tracks the high-water mark of allocated bytes; the KV
	// cache initialization stage profiles it (§6).
	peakUsed uint64
}

// NewDevice creates a device with a fresh randomized allocator.
func NewDevice(cfg DeviceConfig, clock *vclock.Clock) *Device {
	if cfg.TotalMemory == 0 {
		cfg = A100(cfg.Seed, cfg.Mode)
	}
	if clock == nil {
		clock = vclock.New()
	}
	d := &Device{cfg: cfg, clock: clock}
	d.alloc = newAllocator(cfg.TotalMemory, rand.New(rand.NewSource(cfg.Seed)))
	return d
}

// Config returns the device configuration.
func (d *Device) Config() DeviceConfig { return d.cfg }

// Clock returns the virtual clock the device charges time against.
func (d *Device) Clock() *vclock.Clock { return d.clock }

// Functional reports whether kernels execute on real buffer contents.
func (d *Device) Functional() bool { return d.cfg.Mode == Functional }

// Malloc allocates size bytes of device memory and returns its address.
// Addresses are process-unique among live allocations but freed addresses
// may be returned again, as with a caching device allocator.
func (d *Device) Malloc(size uint64) (uint64, error) {
	addr, err := d.alloc.alloc(size, d.Functional())
	if err != nil {
		return 0, err
	}
	if u := d.alloc.used; u > d.peakUsed {
		d.peakUsed = u
	}
	return addr, nil
}

// Free releases the allocation that starts at addr.
func (d *Device) Free(addr uint64) error { return d.alloc.free(addr) }

// UsedMemory reports currently allocated bytes.
func (d *Device) UsedMemory() uint64 { return d.alloc.used }

// PeakUsedMemory reports the allocation high-water mark since device
// creation. The KV cache profiling forwarding reads this to determine the
// residual free memory available for KV blocks.
func (d *Device) PeakUsedMemory() uint64 { return d.peakUsed }

// FreeMemory reports bytes not currently allocated.
func (d *Device) FreeMemory() uint64 { return d.cfg.TotalMemory - d.alloc.used }

// Buffer returns the live buffer starting exactly at addr.
func (d *Device) Buffer(addr uint64) (*Buffer, bool) {
	b, ok := d.alloc.live[addr]
	return b, ok
}

// FindBuffer returns the live buffer containing addr (the address may
// point into the interior of an allocation, as kernel parameters often
// do) along with the offset of addr within it.
func (d *Device) FindBuffer(addr uint64) (*Buffer, uint64, bool) {
	b, ok := d.alloc.findContaining(addr)
	if !ok {
		return nil, 0, false
	}
	return b, addr - b.addr, true
}

// LiveBuffers returns the number of live allocations.
func (d *Device) LiveBuffers() int { return len(d.alloc.live) }

// ChargeMemBound advances the clock by the time a memory-bound operation
// over nbytes takes at HBM bandwidth, with a floor for tiny kernels.
func (d *Device) ChargeMemBound(nbytes uint64, floor time.Duration) {
	t := time.Duration(float64(nbytes) / d.cfg.MemBandwidth * float64(time.Second))
	if t < floor {
		t = floor
	}
	d.clock.Advance(t)
}

// ChargeComputeBound advances the clock by the time a compute-bound
// operation of the given FLOP count takes, assuming 50% of peak.
func (d *Device) ChargeComputeBound(flops float64, floor time.Duration) {
	t := time.Duration(flops / (0.5 * d.cfg.PeakFLOPS) * float64(time.Second))
	if t < floor {
		t = floor
	}
	d.clock.Advance(t)
}
