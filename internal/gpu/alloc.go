package gpu

import (
	"fmt"
	"math/rand"
	"sort"
)

// allocAlign is the allocation granularity, matching the 512-byte
// alignment of CUDA device allocations.
const allocAlign = 512

// ErrOutOfMemory is returned when the device cannot satisfy an
// allocation.
type OutOfMemoryError struct {
	Requested uint64
	Free      uint64
}

func (e *OutOfMemoryError) Error() string {
	return fmt.Sprintf("gpu: out of memory: requested %d bytes, %d free", e.Requested, e.Free)
}

// BadFreeError is returned when freeing an address that is not the start
// of a live allocation.
type BadFreeError struct{ Addr uint64 }

func (e *BadFreeError) Error() string {
	return fmt.Sprintf("gpu: free of invalid address %#x", e.Addr)
}

// Allocator hands out device addresses. It is a caching bump allocator:
// fresh allocations carve new address space from a randomized per-process
// base, while freed blocks go to per-size LIFO free lists and are reused
// by later allocations of the same (aligned) size. The reuse is what
// creates the aliasing the paper's trace-based analysis must resolve.
type Allocator struct {
	total uint64
	used  uint64

	base uint64 // randomized start of the arena
	next uint64 // bump pointer

	freeBySize map[uint64][]uint64 // aligned size -> LIFO of reusable addresses
	live       map[uint64]*Buffer  // start address -> buffer
	sorted     []uint64            // sorted live start addresses, for interior lookups
}

func newAllocator(total uint64, rng *rand.Rand) *Allocator {
	// Randomize the arena base the way virtual address space layout
	// randomization and driver state perturb cudaMalloc results: a high
	// canonical address with per-process jitter.
	jitter := uint64(rng.Int63n(1<<30)) &^ (allocAlign - 1)
	base := uint64(0x7f30_0000_0000) + jitter
	return &Allocator{
		total:      total,
		base:       base,
		next:       base,
		freeBySize: make(map[uint64][]uint64),
		live:       make(map[uint64]*Buffer),
	}
}

func alignUp(n uint64) uint64 {
	return (n + allocAlign - 1) &^ (allocAlign - 1)
}

func (a *Allocator) alloc(size uint64, functional bool) (uint64, error) {
	if size == 0 {
		size = 1
	}
	aligned := alignUp(size)
	if a.used+aligned > a.total {
		return 0, &OutOfMemoryError{Requested: size, Free: a.total - a.used}
	}
	var addr uint64
	if lst := a.freeBySize[aligned]; len(lst) > 0 {
		// LIFO reuse: the most recently freed block of this size comes
		// back first, maximizing the chance a later allocation observes
		// an address an earlier (already freed) allocation returned.
		addr = lst[len(lst)-1]
		a.freeBySize[aligned] = lst[:len(lst)-1]
	} else {
		addr = a.next
		a.next += aligned
	}
	b := &Buffer{addr: addr, size: size, alignedSize: aligned, functional: functional}
	a.live[addr] = b
	a.insertSorted(addr)
	a.used += aligned
	return addr, nil
}

func (a *Allocator) free(addr uint64) error {
	b, ok := a.live[addr]
	if !ok {
		return &BadFreeError{Addr: addr}
	}
	delete(a.live, addr)
	a.removeSorted(addr)
	a.used -= b.alignedSize
	b.freed = true
	a.freeBySize[b.alignedSize] = append(a.freeBySize[b.alignedSize], addr)
	return nil
}

func (a *Allocator) insertSorted(addr uint64) {
	i := sort.Search(len(a.sorted), func(i int) bool { return a.sorted[i] >= addr })
	a.sorted = append(a.sorted, 0)
	copy(a.sorted[i+1:], a.sorted[i:])
	a.sorted[i] = addr
}

func (a *Allocator) removeSorted(addr uint64) {
	i := sort.Search(len(a.sorted), func(i int) bool { return a.sorted[i] >= addr })
	if i < len(a.sorted) && a.sorted[i] == addr {
		a.sorted = append(a.sorted[:i], a.sorted[i+1:]...)
	}
}

// findContaining returns the live buffer whose [addr, addr+size) range
// contains p.
func (a *Allocator) findContaining(p uint64) (*Buffer, bool) {
	if b, ok := a.live[p]; ok {
		return b, true
	}
	i := sort.Search(len(a.sorted), func(i int) bool { return a.sorted[i] > p })
	if i == 0 {
		return nil, false
	}
	b := a.live[a.sorted[i-1]]
	if p < b.addr+b.size {
		return b, true
	}
	return nil, false
}
