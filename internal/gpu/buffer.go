package gpu

import (
	"encoding/binary"
	"fmt"
	"math"
)

// maxFunctionalBuffer caps how large a buffer may be materialized with
// real bytes. Functional models in this repository are tiny; anything
// larger indicates a cost-only model accidentally touching data.
const maxFunctionalBuffer = 64 << 20

// Buffer is one device allocation.
type Buffer struct {
	addr        uint64
	size        uint64
	alignedSize uint64
	functional  bool
	freed       bool
	data        []byte // lazily materialized in functional mode
}

// Addr returns the device address of the start of the buffer.
func (b *Buffer) Addr() uint64 { return b.addr }

// Size returns the requested (unaligned) size in bytes.
func (b *Buffer) Size() uint64 { return b.size }

// Freed reports whether the buffer has been released. Accessing a freed
// buffer is the simulated equivalent of an illegal memory access.
func (b *Buffer) Freed() bool { return b.freed }

func (b *Buffer) materialize() error {
	if b.data != nil {
		return nil
	}
	if !b.functional {
		return fmt.Errorf("gpu: data access to buffer %#x on cost-only device", b.addr)
	}
	if b.size > maxFunctionalBuffer {
		return fmt.Errorf("gpu: functional buffer of %d bytes exceeds %d byte cap", b.size, maxFunctionalBuffer)
	}
	b.data = make([]byte, b.size)
	return nil
}

func (b *Buffer) checkRange(off, n uint64) error {
	if b.freed {
		return fmt.Errorf("gpu: illegal memory access: buffer %#x is freed", b.addr)
	}
	if off+n > b.size {
		return fmt.Errorf("gpu: access [%d,%d) out of bounds of buffer %#x (size %d)", off, off+n, b.addr, b.size)
	}
	return nil
}

// WriteAt copies host bytes into the buffer at the given offset.
func (b *Buffer) WriteAt(off uint64, p []byte) error {
	if err := b.checkRange(off, uint64(len(p))); err != nil {
		return err
	}
	if err := b.materialize(); err != nil {
		return err
	}
	copy(b.data[off:], p)
	return nil
}

// ReadAt copies buffer bytes into p from the given offset.
func (b *Buffer) ReadAt(off uint64, p []byte) error {
	if err := b.checkRange(off, uint64(len(p))); err != nil {
		return err
	}
	if err := b.materialize(); err != nil {
		return err
	}
	copy(p, b.data[off:])
	return nil
}

// Float32 returns the float32 stored at element index i.
func (b *Buffer) Float32(i int) (float32, error) {
	var p [4]byte
	if err := b.ReadAt(uint64(i)*4, p[:]); err != nil {
		return 0, err
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(p[:])), nil
}

// SetFloat32 stores v at element index i.
func (b *Buffer) SetFloat32(i int, v float32) error {
	var p [4]byte
	binary.LittleEndian.PutUint32(p[:], math.Float32bits(v))
	return b.WriteAt(uint64(i)*4, p[:])
}

// Float32s reads n float32 elements starting at element index off.
func (b *Buffer) Float32s(off, n int) ([]float32, error) {
	p := make([]byte, n*4)
	if err := b.ReadAt(uint64(off)*4, p); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[i*4:]))
	}
	return out, nil
}

// SetFloat32s writes vs starting at element index off.
func (b *Buffer) SetFloat32s(off int, vs []float32) error {
	p := make([]byte, len(vs)*4)
	for i, v := range vs {
		binary.LittleEndian.PutUint32(p[i*4:], math.Float32bits(v))
	}
	return b.WriteAt(uint64(off)*4, p)
}

// Uint32 returns the uint32 stored at element index i.
func (b *Buffer) Uint32(i int) (uint32, error) {
	var p [4]byte
	if err := b.ReadAt(uint64(i)*4, p[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(p[:]), nil
}

// SetUint32 stores v at element index i.
func (b *Buffer) SetUint32(i int, v uint32) error {
	var p [4]byte
	binary.LittleEndian.PutUint32(p[:], v)
	return b.WriteAt(uint64(i)*4, p[:])
}

// Snapshot returns a copy of the buffer contents (materializing zeroes
// if never written). Used by Medusa when saving permanent buffer
// contents and by validation when comparing forwarding outputs.
func (b *Buffer) Snapshot() ([]byte, error) {
	if err := b.checkRange(0, b.size); err != nil {
		return nil, err
	}
	if err := b.materialize(); err != nil {
		return nil, err
	}
	out := make([]byte, b.size)
	copy(out, b.data)
	return out, nil
}
