package gpu

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/medusa-repro/medusa/internal/vclock"
)

func testDevice(seed int64) *Device {
	return NewDevice(A100(seed, Functional), vclock.New())
}

func TestMallocFreeBasics(t *testing.T) {
	d := testDevice(1)
	a1, err := d.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := d.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatalf("two live allocations share address %#x", a1)
	}
	if d.LiveBuffers() != 2 {
		t.Fatalf("LiveBuffers = %d, want 2", d.LiveBuffers())
	}
	if err := d.Free(a1); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(a1); !errors.As(err, new(*BadFreeError)) {
		t.Fatalf("double free returned %v, want BadFreeError", err)
	}
	if err := d.Free(a2 + 8); !errors.As(err, new(*BadFreeError)) {
		t.Fatalf("interior free returned %v, want BadFreeError", err)
	}
}

func TestAddressReuseAfterFree(t *testing.T) {
	d := testDevice(2)
	a1, _ := d.Malloc(4096)
	if err := d.Free(a1); err != nil {
		t.Fatal(err)
	}
	a2, _ := d.Malloc(4096)
	if a1 != a2 {
		t.Fatalf("freed address %#x not reused; got %#x", a1, a2)
	}
}

func TestBaseRandomizedAcrossSeeds(t *testing.T) {
	a1, _ := testDevice(100).Malloc(512)
	a2, _ := testDevice(200).Malloc(512)
	if a1 == a2 {
		t.Fatalf("first allocation identical across seeds: %#x", a1)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func() []uint64 {
		d := testDevice(7)
		var addrs []uint64
		a, _ := d.Malloc(100)
		addrs = append(addrs, a)
		b, _ := d.Malloc(200)
		addrs = append(addrs, b)
		d.Free(a)
		c, _ := d.Malloc(100)
		addrs = append(addrs, c)
		return addrs
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("allocation %d differs across identical seeds: %#x vs %#x", i, x[i], y[i])
		}
	}
}

func TestOutOfMemory(t *testing.T) {
	d := NewDevice(DeviceConfig{Name: "tiny", TotalMemory: 1 << 20, MemBandwidth: 1e9, PeakFLOPS: 1e9, Mode: Functional, Seed: 3}, vclock.New())
	if _, err := d.Malloc(2 << 20); !errors.As(err, new(*OutOfMemoryError)) {
		t.Fatalf("oversized Malloc returned %v, want OutOfMemoryError", err)
	}
	// Fill then free must make room again.
	a, err := d.Malloc(1 << 19)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc(1 << 19); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc(1 << 19); err == nil {
		t.Fatal("third half-capacity Malloc unexpectedly succeeded")
	}
	if err := d.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc(1 << 19); err != nil {
		t.Fatalf("Malloc after Free failed: %v", err)
	}
}

func TestPeakUsedMemory(t *testing.T) {
	d := testDevice(4)
	a, _ := d.Malloc(10 << 20)
	b, _ := d.Malloc(5 << 20)
	d.Free(a)
	d.Free(b)
	if got := d.UsedMemory(); got != 0 {
		t.Fatalf("UsedMemory after frees = %d, want 0", got)
	}
	if got, want := d.PeakUsedMemory(), uint64(15<<20); got < want {
		t.Fatalf("PeakUsedMemory = %d, want >= %d", got, want)
	}
}

func TestFindBufferInterior(t *testing.T) {
	d := testDevice(5)
	a, _ := d.Malloc(1000)
	b, off, ok := d.FindBuffer(a + 500)
	if !ok || b.Addr() != a || off != 500 {
		t.Fatalf("FindBuffer(a+500) = (%v, %d, %v)", b, off, ok)
	}
	if _, _, ok := d.FindBuffer(a + 4096); ok {
		t.Fatal("FindBuffer matched past end of allocation")
	}
	if _, _, ok := d.FindBuffer(a - 8); ok {
		t.Fatal("FindBuffer matched before allocation")
	}
}

func TestBufferReadWrite(t *testing.T) {
	d := testDevice(6)
	a, _ := d.Malloc(64)
	buf, _ := d.Buffer(a)
	want := []byte{1, 2, 3, 4, 5}
	if err := buf.WriteAt(10, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := buf.ReadAt(10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ReadAt = %v, want %v", got, want)
	}
	if err := buf.WriteAt(62, []byte{1, 2, 3}); err == nil {
		t.Fatal("out-of-bounds write succeeded")
	}
}

func TestBufferFloat32Accessors(t *testing.T) {
	d := testDevice(8)
	a, _ := d.Malloc(256)
	buf, _ := d.Buffer(a)
	vals := []float32{1.5, -2.25, 3.75, 0}
	if err := buf.SetFloat32s(2, vals); err != nil {
		t.Fatal(err)
	}
	got, err := buf.Float32s(2, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("Float32s[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
	v, err := buf.Float32(3)
	if err != nil || v != -2.25 {
		t.Fatalf("Float32(3) = %v, %v", v, err)
	}
	if err := buf.SetUint32(0, 42); err != nil {
		t.Fatal(err)
	}
	if u, _ := buf.Uint32(0); u != 42 {
		t.Fatalf("Uint32(0) = %d, want 42", u)
	}
}

func TestFreedBufferAccessFails(t *testing.T) {
	d := testDevice(9)
	a, _ := d.Malloc(16)
	buf, _ := d.Buffer(a)
	d.Free(a)
	if !buf.Freed() {
		t.Fatal("Freed() = false after Free")
	}
	if err := buf.WriteAt(0, []byte{1}); err == nil {
		t.Fatal("write to freed buffer succeeded")
	}
}

func TestCostOnlyRejectsDataAccess(t *testing.T) {
	d := NewDevice(A100(10, CostOnly), vclock.New())
	a, _ := d.Malloc(16)
	buf, _ := d.Buffer(a)
	if err := buf.WriteAt(0, []byte{1}); err == nil {
		t.Fatal("cost-only device allowed data access")
	}
}

func TestChargeTiming(t *testing.T) {
	clk := vclock.New()
	d := NewDevice(A100(11, CostOnly), clk)
	d.ChargeMemBound(1555_000_000_000, 0) // exactly one second of HBM traffic
	if got := clk.Now(); got < 999*time.Millisecond || got > 1001*time.Millisecond {
		t.Fatalf("mem-bound charge advanced %v, want ~1s", got)
	}
	before := clk.Now()
	d.ChargeMemBound(1, 5*time.Microsecond) // floor applies
	if got := clk.Now() - before; got != 5*time.Microsecond {
		t.Fatalf("floor charge = %v, want 5µs", got)
	}
	before = clk.Now()
	d.ChargeComputeBound(0.5*312e12, 0) // one second at 50% of peak
	if got := clk.Now() - before; got < 999*time.Millisecond || got > 1001*time.Millisecond {
		t.Fatalf("compute-bound charge advanced %v, want ~1s", got)
	}
}

// Property: live allocations never overlap, regardless of the
// alloc/free interleaving.
func TestNoOverlapProperty(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		d := testDevice(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		var liveAddrs []uint64
		for _, op := range ops {
			if op%3 == 0 && len(liveAddrs) > 0 {
				i := rng.Intn(len(liveAddrs))
				if d.Free(liveAddrs[i]) != nil {
					return false
				}
				liveAddrs = append(liveAddrs[:i], liveAddrs[i+1:]...)
				continue
			}
			size := uint64(op%8192) + 1
			a, err := d.Malloc(size)
			if err != nil {
				return false
			}
			liveAddrs = append(liveAddrs, a)
		}
		// Verify pairwise disjointness of live buffers.
		type span struct{ lo, hi uint64 }
		var spans []span
		for _, a := range liveAddrs {
			b, ok := d.Buffer(a)
			if !ok {
				return false
			}
			spans = append(spans, span{b.Addr(), b.Addr() + b.Size()})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: FindBuffer resolves any interior address of a live buffer to
// that buffer, with the correct offset.
func TestFindBufferProperty(t *testing.T) {
	f := func(seed int64, sizes []uint16) bool {
		d := testDevice(seed)
		rng := rand.New(rand.NewSource(seed ^ 0x77))
		for _, s := range sizes {
			size := uint64(s%4096) + 1
			a, err := d.Malloc(size)
			if err != nil {
				return false
			}
			off := uint64(rng.Int63n(int64(size)))
			b, gotOff, ok := d.FindBuffer(a + off)
			if !ok || b.Addr() != a || gotOff != off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
