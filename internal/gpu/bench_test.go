package gpu

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/vclock"
)

func BenchmarkMallocFree(b *testing.B) {
	d := NewDevice(A100(1, CostOnly), vclock.New())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := d.Malloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Free(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindBufferInterior(b *testing.B) {
	d := NewDevice(A100(2, CostOnly), vclock.New())
	var addrs []uint64
	for i := 0; i < 1024; i++ {
		a, err := d.Malloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := d.FindBuffer(addrs[i%len(addrs)] + 128); !ok {
			b.Fatal("miss")
		}
	}
}
