// Package cliconfig declares the simulator commands' shared flag
// surface exactly once. medusa-simulate's single-pool and cluster
// modes historically declared ~35 overlapping flags across two files;
// this package owns each knob's name, default and help text, plus the
// flag-to-config translation, so medusa-simulate and the medusa-bench
// extension experiments cannot drift apart on what, say,
// -batch-tokens means.
//
// Register binds the full simulator surface onto a FlagSet and
// returns the Values the flags write into; RegisterBatch binds only
// the batched-execution knobs (what medusa-bench forwards to the
// ext-batching experiment), and RegisterFleet only the fleet
// control-plane knobs (what medusa-bench forwards to ext-fleet). The
// builder methods translate parsed values into the config sub-structs
// the simulators consume.
package cliconfig

import (
	"flag"
	"strings"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/autoscale"
	"github.com/medusa-repro/medusa/internal/cluster"
	"github.com/medusa-repro/medusa/internal/router"
	"github.com/medusa-repro/medusa/internal/sched"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// Values holds every shared simulator option after flag parsing. The
// zero value is NOT the default configuration — defaults live in the
// flag declarations, so Register (or RegisterBatch) is the only way
// to obtain canonically defaulted Values.
type Values struct {
	// Model is the served model's name (single-pool mode and the
	// cluster default when -models is empty).
	Model string
	// Strategy names the cold-start loading strategy.
	Strategy string
	// RPS is the Poisson arrival rate.
	RPS float64
	// DurationSec is the trace length in seconds.
	DurationSec int
	// MeanOutput is the mean output tokens per request (0 = ShareGPT
	// default).
	MeanOutput int
	// MaxOutput clamps output tokens (0 = default).
	MaxOutput int
	// Seed seeds the trace generator (replications offset it).
	Seed int64
	// Followup is the probability of a conversational follow-up turn.
	Followup float64
	// Think is the user think time before a follow-up.
	Think time.Duration

	// GPUs bounds the single-pool simulator's GPU count.
	GPUs int
	// Prewarm provisions instances ready at time zero.
	Prewarm int
	// Idle retires instances idle for this long (0 disables).
	Idle time.Duration

	// BatchTokens enables iteration-level continuous batching with
	// this per-iteration token budget (0 keeps the legacy
	// whole-request admission path).
	BatchTokens int
	// KVBlocks sizes the paged KV pool per instance (0 derives it
	// from the profile's measured KV capacity).
	KVBlocks int
	// ChunkedPrefill splits long prompts across iterations.
	ChunkedPrefill bool

	// Nodes switches to the multi-node fleet simulator when > 0.
	Nodes int
	// GPUsPerNode bounds instances per fleet node.
	GPUsPerNode int
	// CachePolicy names the artifact-cache eviction policy.
	CachePolicy string
	// CacheRAMMiB sizes each node's RAM cache tier.
	CacheRAMMiB int
	// CacheSSDMiB sizes each node's SSD cache tier.
	CacheSSDMiB int
	// Locality weights artifact locality against load balance in
	// placement.
	Locality float64
	// PrewarmSSD pre-pulls every artifact onto every node's SSD tier.
	PrewarmSSD bool
	// Models lists fleet models, comma-separated ("" = just Model).
	Models string
	// Zipf is the popularity skew across Models (must be > 1).
	Zipf float64
	// Stream streams arrivals instead of materializing the trace.
	Stream bool
	// Retain keeps every per-request latency observation.
	Retain bool

	// SLOTTFT is the time-to-first-token deadline (0 disables SLO
	// accounting together with SLOTPOT).
	SLOTTFT time.Duration
	// SLOTPOT is the time-per-output-token deadline (batched mode).
	SLOTPOT time.Duration
	// Autoscale names the fleet autoscaling policy.
	Autoscale string
	// Router names the fleet dispatch policy.
	Router string
	// Diurnal switches the fleet trace to phase-staggered diurnal
	// multi-tenant sources (sinusoidal envelope + Markov bursts) with
	// this day/night period (0 keeps the flat Poisson/Zipf trace).
	Diurnal time.Duration
}

// Register binds the full shared flag surface onto fs and returns the
// Values the parsed flags populate.
func Register(fs *flag.FlagSet) *Values {
	v := &Values{}
	fs.StringVar(&v.Model, "model", "Qwen1.5-4B", "model name")
	fs.StringVar(&v.Strategy, "strategy", "medusa", "vllm | async | nograph | medusa | checkpoint | deferred")
	fs.Float64Var(&v.RPS, "rps", 10, "mean request rate (Poisson)")
	fs.IntVar(&v.DurationSec, "duration", 60, "trace duration in seconds")
	fs.IntVar(&v.MeanOutput, "mean-output", 0, "mean output tokens per request (0 = ShareGPT default)")
	fs.IntVar(&v.MaxOutput, "max-output", 0, "output token clamp (0 = default)")
	fs.Int64Var(&v.Seed, "seed", 90125, "trace seed")
	fs.Float64Var(&v.Followup, "followup", 0, "probability of a conversational follow-up turn (0 disables)")
	fs.DurationVar(&v.Think, "think", 8*time.Second, "user think time before a follow-up")
	fs.IntVar(&v.GPUs, "gpus", 4, "GPU count")
	fs.IntVar(&v.Prewarm, "prewarm", 0, "instances pre-warmed at time zero")
	fs.DurationVar(&v.Idle, "idle", 0, "instance idle timeout (0 disables)")
	v.bindBatch(fs)
	fs.IntVar(&v.Nodes, "nodes", 0, "fleet size; > 0 runs the multi-node simulator with tiered artifact caches")
	fs.IntVar(&v.GPUsPerNode, "gpus-per-node", 4, "GPUs per node (cluster mode)")
	fs.StringVar(&v.CachePolicy, "cache-policy", "lru", "artifact cache eviction policy: lru | lfu | costaware")
	fs.IntVar(&v.CacheRAMMiB, "cache-ram", 4096, "per-node RAM cache tier size in MiB")
	fs.IntVar(&v.CacheSSDMiB, "cache-ssd", 16384, "per-node SSD cache tier size in MiB")
	fs.Float64Var(&v.Locality, "locality", cluster.DefaultLocalityWeight, "placement weight for artifact locality vs load balance (0 = pure load balancing)")
	fs.BoolVar(&v.PrewarmSSD, "prewarm-ssd", false, "pre-pull every artifact onto every node's SSD tier before the trace")
	fs.StringVar(&v.Models, "models", "", "comma-separated model list for a multi-model fleet (cluster mode; default: -model)")
	fs.Float64Var(&v.Zipf, "zipf", 1.2, "Zipf popularity skew across -models (must be > 1)")
	fs.BoolVar(&v.Stream, "stream", false, "stream arrivals instead of materializing the trace — memory stays O(active requests), enabling 10M+ request runs (cluster mode)")
	fs.BoolVar(&v.Retain, "retain", false, "retain every per-request latency observation for exact quantiles (O(requests) memory; default uses a bounded deterministic reservoir)")
	v.bindFleet(fs)
	return v
}

// RegisterBatch binds only the batched-execution knobs onto fs —
// medusa-bench registers these so the ext-batching experiment can be
// driven from the command line with the same flags, declared once,
// that medusa-simulate uses.
func RegisterBatch(fs *flag.FlagSet) *Values {
	v := &Values{}
	v.bindBatch(fs)
	return v
}

// bindBatch is the single declaration point for the batching knobs.
func (v *Values) bindBatch(fs *flag.FlagSet) {
	fs.IntVar(&v.BatchTokens, "batch-tokens", 0, "per-iteration token budget; > 0 enables iteration-level continuous batching")
	fs.IntVar(&v.KVBlocks, "kv-blocks", 0, "paged KV pool size per instance in 16-token blocks (0 = derive from the instance profile)")
	fs.BoolVar(&v.ChunkedPrefill, "chunked-prefill", false, "split long prompts into budget-sized chunks across iterations")
}

// RegisterFleet binds only the fleet control-plane knobs onto fs —
// medusa-bench registers these so the ext-fleet experiment can be
// driven from the command line with the same flags medusa-simulate
// declares.
func RegisterFleet(fs *flag.FlagSet) *Values {
	v := &Values{}
	v.bindFleet(fs)
	return v
}

// bindFleet is the single declaration point for the fleet
// control-plane knobs.
func (v *Values) bindFleet(fs *flag.FlagSet) {
	fs.DurationVar(&v.SLOTTFT, "slo-ttft", 0, "time-to-first-token deadline; with -slo-tpot 0 disables SLO accounting (cluster mode)")
	fs.DurationVar(&v.SLOTPOT, "slo-tpot", 0, "time-per-output-token deadline, checked in batched execution mode (cluster mode)")
	fs.StringVar(&v.Autoscale, "autoscale", "reactive", "fleet autoscaling policy: reactive | predictive")
	fs.StringVar(&v.Router, "router", "fifo", "fleet dispatch policy: fifo | leastloaded | score")
	fs.DurationVar(&v.Diurnal, "diurnal", 0, "day/night cycle period; > 0 streams phase-staggered diurnal multi-tenant arrivals instead of the flat trace (cluster mode)")
}

// SLO assembles the per-request deadline sub-config (zero when neither
// deadline flag was set, which disables SLO accounting).
func (v *Values) SLO() serverless.SLO {
	return serverless.SLO{TTFT: v.SLOTTFT, TPOT: v.SLOTPOT}
}

// AutoscalePolicy parses the -autoscale flag into a policy instance.
// Each call returns a fresh instance: stateful policies must not be
// shared across simulation runs.
func (v *Values) AutoscalePolicy() (autoscale.Policy, error) {
	return autoscale.Parse(v.Autoscale)
}

// RouterPolicy parses the -router flag into a dispatch policy (nil for
// "fifo", the legacy launch-order walk).
func (v *Values) RouterPolicy() (router.Policy, error) {
	return router.Parse(v.Router)
}

// DiurnalConfig assembles the diurnal multi-tenant generator's base
// configuration from the trace flags: the fleet splits -rps across
// tenants with a -diurnal-period sinusoid and default burst modulation
// (4× bursts, 5s mean burst, 30s mean calm — the 10–20× 30-second
// fluctuation shape the paper cites, toned to the envelope).
func (v *Values) DiurnalConfig() workload.DiurnalConfig {
	return workload.DiurnalConfig{
		Seed:        v.Seed,
		BaseRPS:     v.RPS,
		Amplitude:   0.6,
		Period:      v.Diurnal,
		BurstFactor: 4,
		MeanBurst:   5 * time.Second,
		MeanCalm:    30 * time.Second,
		Duration:    time.Duration(v.DurationSec) * time.Second,
		MeanOutput:  v.MeanOutput,
		MaxOutput:   v.MaxOutput,
	}
}

// TraceConfig assembles the workload generator's configuration.
func (v *Values) TraceConfig() workload.TraceConfig {
	return workload.TraceConfig{
		Seed:       v.Seed,
		RPS:        v.RPS,
		Duration:   time.Duration(v.DurationSec) * time.Second,
		MeanOutput: v.MeanOutput,
		MaxOutput:  v.MaxOutput,
	}
}

// BatchParams assembles the continuous-batching parameters (zero when
// -batch-tokens was not set, which keeps the legacy admission path).
func (v *Values) BatchParams() sched.Params {
	return sched.Params{
		BatchTokens:    v.BatchTokens,
		KVBlocks:       v.KVBlocks,
		ChunkedPrefill: v.ChunkedPrefill,
	}
}

// SchedulerConfig assembles the serving-policy sub-config.
func (v *Values) SchedulerConfig() serverless.Scheduler {
	return serverless.Scheduler{
		Prewarm:     v.Prewarm,
		IdleTimeout: v.Idle,
		Batch:       v.BatchParams(),
	}
}

// WorkloadConfig assembles the workload-shape sub-config (follow-up
// conversations when -followup > 0).
func (v *Values) WorkloadConfig() serverless.Workload {
	if v.Followup <= 0 {
		return serverless.Workload{}
	}
	return serverless.Workload{FollowUp: &serverless.FollowUpModel{
		Probability: v.Followup,
		ThinkTime:   v.Think,
		MaxTurns:    6,
	}}
}

// CacheParams assembles the per-node artifact-cache parameters,
// parsing the eviction policy name.
func (v *Values) CacheParams() (artifactcache.Params, error) {
	policy, err := artifactcache.ParsePolicy(v.CachePolicy)
	if err != nil {
		return artifactcache.Params{}, err
	}
	params := artifactcache.DefaultParams()
	params.RAMBytes = uint64(v.CacheRAMMiB) << 20
	params.SSDBytes = uint64(v.CacheSSDMiB) << 20
	params.Policy = policy
	return params, nil
}

// ModelNames resolves the fleet's model list: -models split on commas
// with whitespace trimmed, or just -model when -models is empty.
func (v *Values) ModelNames() []string {
	if v.Models == "" {
		return []string{v.Model}
	}
	names := strings.Split(v.Models, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return names
}
