package cliconfig

import (
	"errors"
	"flag"
	"reflect"
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// TestRegisterDefaults parses an empty command line and checks the
// canonical defaults — the single source of truth both binaries share.
func TestRegisterDefaults(t *testing.T) {
	fs := flag.NewFlagSet("medusa-simulate", flag.ContinueOnError)
	v := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if v.Model != "Qwen1.5-4B" {
		t.Errorf("Model default = %q, want Qwen1.5-4B", v.Model)
	}
	if v.Strategy != "medusa" {
		t.Errorf("Strategy default = %q, want medusa", v.Strategy)
	}
	if v.RPS != 10 {
		t.Errorf("RPS default = %v, want 10", v.RPS)
	}
	if v.DurationSec != 60 {
		t.Errorf("DurationSec default = %d, want 60", v.DurationSec)
	}
	if v.Seed != 90125 {
		t.Errorf("Seed default = %d, want 90125", v.Seed)
	}
	if v.Think != 8*time.Second {
		t.Errorf("Think default = %v, want 8s", v.Think)
	}
	if v.GPUs != 4 {
		t.Errorf("GPUs default = %d, want 4", v.GPUs)
	}
	if v.CachePolicy != "lru" {
		t.Errorf("CachePolicy default = %q, want lru", v.CachePolicy)
	}
	if v.Zipf != 1.2 {
		t.Errorf("Zipf default = %v, want 1.2", v.Zipf)
	}
	if v.BatchTokens != 0 || v.KVBlocks != 0 || v.ChunkedPrefill {
		t.Errorf("batch knobs must default off, got tokens=%d blocks=%d chunked=%v",
			v.BatchTokens, v.KVBlocks, v.ChunkedPrefill)
	}
	if v.SLOTTFT != 0 || v.SLOTPOT != 0 || v.Diurnal != 0 {
		t.Errorf("fleet deadlines/diurnal must default off, got ttft=%v tpot=%v diurnal=%v",
			v.SLOTTFT, v.SLOTPOT, v.Diurnal)
	}
	if v.Autoscale != "reactive" || v.Router != "fifo" {
		t.Errorf("fleet policies must default to the legacy baselines, got autoscale=%q router=%q",
			v.Autoscale, v.Router)
	}
}

// TestRegisterParsesFlags drives a representative command line through
// the full surface.
func TestRegisterParsesFlags(t *testing.T) {
	fs := flag.NewFlagSet("medusa-simulate", flag.ContinueOnError)
	v := Register(fs)
	err := fs.Parse([]string{
		"-model", "Llama2-7B", "-rps", "3.5", "-duration", "120",
		"-seed", "7", "-nodes", "2", "-models", " Llama2-7B , Qwen1.5-0.5B ",
		"-batch-tokens", "2048", "-chunked-prefill", "-idle", "250ms",
		"-followup", "0.3", "-cache-policy", "costaware",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Model != "Llama2-7B" || v.RPS != 3.5 || v.DurationSec != 120 || v.Seed != 7 {
		t.Errorf("trace flags misparsed: %+v", v)
	}
	if v.Nodes != 2 || v.CachePolicy != "costaware" {
		t.Errorf("cluster flags misparsed: %+v", v)
	}
	if v.BatchTokens != 2048 || !v.ChunkedPrefill {
		t.Errorf("batch flags misparsed: %+v", v)
	}
	if v.Idle != 250*time.Millisecond || v.Followup != 0.3 {
		t.Errorf("scheduler/workload flags misparsed: %+v", v)
	}
	if got := v.ModelNames(); !reflect.DeepEqual(got, []string{"Llama2-7B", "Qwen1.5-0.5B"}) {
		t.Errorf("ModelNames() = %v, want trimmed split", got)
	}
}

// TestRegisterBatchSubset checks the medusa-bench surface: only the
// batching knobs, with the same names and defaults as the full set.
func TestRegisterBatchSubset(t *testing.T) {
	fs := flag.NewFlagSet("medusa-bench", flag.ContinueOnError)
	v := RegisterBatch(fs)
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	want := []string{"batch-tokens", "chunked-prefill", "kv-blocks"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("RegisterBatch flags = %v, want %v", names, want)
	}
	if err := fs.Parse([]string{"-batch-tokens", "4096", "-kv-blocks", "512"}); err != nil {
		t.Fatal(err)
	}
	p := v.BatchParams()
	if p.BatchTokens != 4096 || p.KVBlocks != 512 || p.ChunkedPrefill {
		t.Errorf("BatchParams() = %+v, want tokens=4096 blocks=512", p)
	}
}

// TestFlagNamesDisjointFromBatch guards the "declared exactly once"
// property: Register must not double-declare a batch knob (flag
// panics on duplicate registration, so Register succeeding IS the
// test) and every batch knob must exist in the full surface.
func TestFlagNamesDisjointFromBatch(t *testing.T) {
	full := flag.NewFlagSet("full", flag.ContinueOnError)
	Register(full)
	batch := flag.NewFlagSet("batch", flag.ContinueOnError)
	RegisterBatch(batch)
	batch.VisitAll(func(f *flag.Flag) {
		if full.Lookup(f.Name) == nil {
			t.Errorf("batch flag -%s missing from the full surface", f.Name)
		}
	})
}

// TestRegisterFleetSubset checks the medusa-bench fleet surface: only
// the control-plane knobs, with the same names and defaults as the
// full set.
func TestRegisterFleetSubset(t *testing.T) {
	fs := flag.NewFlagSet("medusa-bench", flag.ContinueOnError)
	v := RegisterFleet(fs)
	var names []string
	fs.VisitAll(func(f *flag.Flag) { names = append(names, f.Name) })
	want := []string{"autoscale", "diurnal", "router", "slo-tpot", "slo-ttft"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("RegisterFleet flags = %v, want %v", names, want)
	}
	if err := fs.Parse([]string{"-slo-ttft", "500ms", "-slo-tpot", "80ms",
		"-autoscale", "predictive", "-router", "score", "-diurnal", "2m"}); err != nil {
		t.Fatal(err)
	}
	if slo := v.SLO(); slo.TTFT != 500*time.Millisecond || slo.TPOT != 80*time.Millisecond {
		t.Errorf("SLO() = %+v", slo)
	}
	if v.Diurnal != 2*time.Minute {
		t.Errorf("Diurnal = %v, want 2m", v.Diurnal)
	}
	scaler, err := v.AutoscalePolicy()
	if err != nil {
		t.Fatal(err)
	}
	if scaler.Name() != "predictive" {
		t.Errorf("AutoscalePolicy() = %q, want predictive", scaler.Name())
	}
	route, err := v.RouterPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if route == nil || route.Name() != "score" {
		t.Errorf("RouterPolicy() = %v, want score", route)
	}
}

// TestFlagNamesDisjointFromFleet mirrors the batch-subset guard for
// the fleet knobs.
func TestFlagNamesDisjointFromFleet(t *testing.T) {
	full := flag.NewFlagSet("full", flag.ContinueOnError)
	Register(full)
	fleet := flag.NewFlagSet("fleet", flag.ContinueOnError)
	RegisterFleet(fleet)
	fleet.VisitAll(func(f *flag.Flag) {
		if full.Lookup(f.Name) == nil {
			t.Errorf("fleet flag -%s missing from the full surface", f.Name)
		}
	})
}

// TestFleetPolicyDefaultsAreLegacy: the default flag values must
// resolve to the byte-identical legacy behaviors — reactive scaling
// and nil (launch-order) routing — and unknown names must error.
func TestFleetPolicyDefaultsAreLegacy(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	v := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if !v.SLO().Zero() {
		t.Errorf("default SLO must be zero, got %+v", v.SLO())
	}
	scaler, err := v.AutoscalePolicy()
	if err != nil {
		t.Fatal(err)
	}
	if scaler.Name() != "reactive" {
		t.Errorf("default autoscaler = %q, want reactive", scaler.Name())
	}
	route, err := v.RouterPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if route != nil {
		t.Errorf("default router must be nil (legacy dispatch), got %v", route)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	v = Register(fs)
	if err := fs.Parse([]string{"-autoscale", "oracle", "-router", "random"}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.AutoscalePolicy(); err == nil {
		t.Error("unknown autoscale policy must fail to parse")
	}
	if _, err := v.RouterPolicy(); err == nil {
		t.Error("unknown router policy must fail to parse")
	}
}

// TestDiurnalConfigAssembly checks the diurnal generator wiring: trace
// flags flow through and the assembled config validates.
func TestDiurnalConfigAssembly(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	v := Register(fs)
	if err := fs.Parse([]string{"-rps", "40", "-duration", "90", "-seed", "13", "-diurnal", "1m"}); err != nil {
		t.Fatal(err)
	}
	dc := v.DiurnalConfig()
	if dc.Seed != 13 || dc.BaseRPS != 40 || dc.Period != time.Minute || dc.Duration != 90*time.Second {
		t.Errorf("DiurnalConfig() = %+v", dc)
	}
	if _, err := workload.NewDiurnal(dc); err != nil {
		t.Errorf("assembled diurnal config must validate, got %v", err)
	}
}

// TestTraceConfigAssembly checks the flag-to-workload translation,
// including the seconds-to-Duration conversion.
func TestTraceConfigAssembly(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	v := Register(fs)
	if err := fs.Parse([]string{"-rps", "5", "-duration", "30", "-seed", "11",
		"-mean-output", "100", "-max-output", "200"}); err != nil {
		t.Fatal(err)
	}
	tc := v.TraceConfig()
	if tc.Seed != 11 || tc.RPS != 5 || tc.Duration != 30*time.Second {
		t.Errorf("TraceConfig() = %+v", tc)
	}
	if tc.MeanOutput != 100 || tc.MaxOutput != 200 {
		t.Errorf("TraceConfig() lengths = %+v", tc)
	}
}

// TestSchedulerConfigAssembly checks the scheduler sub-config embeds
// the batch params.
func TestSchedulerConfigAssembly(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	v := Register(fs)
	if err := fs.Parse([]string{"-prewarm", "2", "-idle", "1s", "-batch-tokens", "1024"}); err != nil {
		t.Fatal(err)
	}
	sc := v.SchedulerConfig()
	if sc.Prewarm != 2 || sc.IdleTimeout != time.Second || sc.Batch.BatchTokens != 1024 {
		t.Errorf("SchedulerConfig() = %+v", sc)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("assembled scheduler config must validate, got %v", err)
	}
}

// TestWorkloadConfigAssembly checks the follow-up model wiring: off at
// zero probability, populated otherwise.
func TestWorkloadConfigAssembly(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	v := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if w := v.WorkloadConfig(); w.FollowUp != nil {
		t.Errorf("WorkloadConfig() with -followup 0 must have no follow-up model, got %+v", w.FollowUp)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	v = Register(fs)
	if err := fs.Parse([]string{"-followup", "0.25", "-think", "2s"}); err != nil {
		t.Fatal(err)
	}
	w := v.WorkloadConfig()
	if w.FollowUp == nil || w.FollowUp.Probability != 0.25 || w.FollowUp.ThinkTime != 2*time.Second {
		t.Errorf("WorkloadConfig() = %+v", w.FollowUp)
	}
	if err := w.Validate(); err != nil {
		t.Errorf("assembled workload config must validate, got %v", err)
	}
}

// TestCacheParamsAssembly checks MiB-to-byte sizing and policy
// parsing.
func TestCacheParamsAssembly(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	v := Register(fs)
	if err := fs.Parse([]string{"-cache-ram", "3", "-cache-ssd", "6", "-cache-policy", "costaware"}); err != nil {
		t.Fatal(err)
	}
	p, err := v.CacheParams()
	if err != nil {
		t.Fatal(err)
	}
	if p.RAMBytes != 3<<20 || p.SSDBytes != 6<<20 {
		t.Errorf("CacheParams() sizes = ram %d ssd %d, want %d / %d", p.RAMBytes, p.SSDBytes, 3<<20, 6<<20)
	}
	def := artifactcache.DefaultParams()
	if p.RAM != def.RAM || p.SSD != def.SSD {
		t.Errorf("CacheParams() must inherit the default tier timings, got %+v", p)
	}
}

// TestCacheParamsBadPolicy checks the error path surfaces the parse
// failure rather than a zero-valued config.
func TestCacheParamsBadPolicy(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	v := Register(fs)
	if err := fs.Parse([]string{"-cache-policy", "clairvoyant"}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.CacheParams(); err == nil {
		t.Fatal("CacheParams() with an unknown policy must fail")
	}
}

// TestValidationErrorFieldPaths checks that configs assembled from
// hostile flag values surface *serverless.ConfigError with the
// documented dotted field paths — what the CLI prints for operators.
func TestValidationErrorFieldPaths(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		build func(v *Values) error
		field string
	}{
		{
			name: "negative prewarm",
			args: []string{"-prewarm", "-1"},
			build: func(v *Values) error {
				return v.SchedulerConfig().Validate()
			},
			field: "Scheduler.Prewarm",
		},
		{
			name: "negative batch tokens",
			args: []string{"-batch-tokens", "-5"},
			build: func(v *Values) error {
				return v.SchedulerConfig().Validate()
			},
			field: "Scheduler.Batch.BatchTokens",
		},
		{
			name: "negative kv blocks",
			args: []string{"-kv-blocks", "-1"},
			build: func(v *Values) error {
				return v.SchedulerConfig().Validate()
			},
			field: "Scheduler.Batch.KVBlocks",
		},
		{
			name: "follow-up probability above one",
			args: []string{"-followup", "1.5"},
			build: func(v *Values) error {
				return v.WorkloadConfig().Validate()
			},
			field: "Workload.FollowUp.Probability",
		},
		{
			name: "negative think time",
			args: []string{"-followup", "0.5", "-think", "-1s"},
			build: func(v *Values) error {
				return v.WorkloadConfig().Validate()
			},
			field: "Workload.FollowUp.ThinkTime",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("t", flag.ContinueOnError)
			v := Register(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			err := tc.build(v)
			if err == nil {
				t.Fatalf("config built from %v must fail validation", tc.args)
			}
			var ce *serverless.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *serverless.ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
}
