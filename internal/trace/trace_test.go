package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRecordAndLookup(t *testing.T) {
	var tl Timeline
	tl.Record("weights", 1*time.Second, 2*time.Second)
	tl.Record("tokenizer", 1*time.Second, 1500*time.Millisecond)
	s, ok := tl.Stage("weights")
	if !ok || s.Duration() != time.Second {
		t.Fatalf("Stage(weights) = %+v, %v", s, ok)
	}
	if tl.StageDuration("missing") != 0 {
		t.Fatal("missing stage has nonzero duration")
	}
	if _, ok := tl.Stage("missing"); ok {
		t.Fatal("missing stage found")
	}
}

func TestSpanAndTotalWithOverlap(t *testing.T) {
	var tl Timeline
	tl.Record("a", 0, 3*time.Second)
	tl.Record("b", 1*time.Second, 2*time.Second) // nested in a
	tl.Record("c", 2*time.Second, 5*time.Second)
	lo, hi := tl.Span()
	if lo != 0 || hi != 5*time.Second || tl.Total() != 5*time.Second {
		t.Fatalf("Span = [%v,%v], Total = %v", lo, hi, tl.Total())
	}
}

func TestEmptyTimeline(t *testing.T) {
	var tl Timeline
	if tl.Total() != 0 {
		t.Fatal("empty total nonzero")
	}
	if len(tl.Stages()) != 0 {
		t.Fatal("empty stages nonempty")
	}
}

func TestStagesSortedByStart(t *testing.T) {
	var tl Timeline
	tl.Record("late", 5*time.Second, 6*time.Second)
	tl.Record("early", 1*time.Second, 2*time.Second)
	got := tl.Stages()
	if got[0].Name != "early" || got[1].Name != "late" {
		t.Fatalf("Stages order = %v", got)
	}
}

func TestZeroLengthStageKept(t *testing.T) {
	var tl Timeline
	tl.Record("kv_init", time.Second, time.Second)
	if _, ok := tl.Stage("kv_init"); !ok {
		t.Fatal("zero-length stage dropped")
	}
}

func TestBackwardsStagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backwards stage did not panic")
		}
	}()
	var tl Timeline
	tl.Record("bad", 2*time.Second, time.Second)
}

func TestStringRendering(t *testing.T) {
	var tl Timeline
	tl.Record("capture", 0, 900*time.Millisecond)
	out := tl.String()
	if !strings.Contains(out, "capture") || !strings.Contains(out, "0.900") {
		t.Fatalf("String = %q", out)
	}
}
