// Package trace records stage timelines of cold starts. The breakdown
// figures of the paper (Figures 1, 2 and 8) are rendered from these
// timelines; overlapping stages (asynchronous weight loading) are
// first-class.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stage is one named interval on a timeline.
type Stage struct {
	Name  string
	Start time.Duration
	End   time.Duration
}

// Duration returns the stage length.
func (s Stage) Duration() time.Duration { return s.End - s.Start }

// Timeline is an append-only set of stages.
type Timeline struct {
	stages []Stage
}

// Record appends a stage. Zero-length stages are kept (they document
// eliminated work, e.g. Medusa's 0.02 s KV restore).
func (t *Timeline) Record(name string, start, end time.Duration) {
	if end < start {
		panic(fmt.Sprintf("trace: stage %q ends (%v) before it starts (%v)", name, end, start))
	}
	t.stages = append(t.stages, Stage{Name: name, Start: start, End: end})
}

// Stages returns all stages sorted by start time (stable on ties).
func (t *Timeline) Stages() []Stage {
	out := append([]Stage(nil), t.stages...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Stage returns the first stage with the given name.
func (t *Timeline) Stage(name string) (Stage, bool) {
	for _, s := range t.stages {
		if s.Name == name {
			return s, true
		}
	}
	return Stage{}, false
}

// StageDuration returns the duration of the named stage, or zero.
func (t *Timeline) StageDuration(name string) time.Duration {
	s, _ := t.Stage(name)
	return s.Duration()
}

// Span returns the overall [min start, max end] extent.
func (t *Timeline) Span() (time.Duration, time.Duration) {
	if len(t.stages) == 0 {
		return 0, 0
	}
	lo, hi := t.stages[0].Start, t.stages[0].End
	for _, s := range t.stages[1:] {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	return lo, hi
}

// Total returns the extent length — wall time including overlaps once.
func (t *Timeline) Total() time.Duration {
	lo, hi := t.Span()
	return hi - lo
}

// String renders a compact human-readable breakdown.
func (t *Timeline) String() string {
	var b strings.Builder
	for _, s := range t.Stages() {
		fmt.Fprintf(&b, "%-24s %10.3fs → %10.3fs  (%8.3fs)\n",
			s.Name, s.Start.Seconds(), s.End.Seconds(), s.Duration().Seconds())
	}
	return b.String()
}
