package experiments

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/autoscale"
	"github.com/medusa-repro/medusa/internal/cluster"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/faults"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/router"
	"github.com/medusa-repro/medusa/internal/sched"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/workload"
)

func init() {
	register("ext-fleet", runExtFleet)
}

// fleetModels are the two co-located deployments; the Zipf skew of the
// diurnal fleet tilts traffic toward the first.
var fleetModels = []string{"Qwen1.5-4B", "Llama2-7B"}

// fleetSLO is the default per-request deadline the sweep measures
// attainment against (overridable with -slo-ttft / -slo-tpot).
var fleetSLO = serverless.SLO{TTFT: time.Second, TPOT: 250 * time.Millisecond}

// runExtFleet sweeps the fleet control plane — autoscaling policy ×
// dispatch policy × tenant skew — under diurnal multi-tenant traffic
// with Markov-modulated bursts. Reactive autoscaling only adds capacity
// after queues form, so every burst front pays a cold start against the
// TTFT deadline; predictive autoscaling forecasts the arrival rate
// (Holt's linear smoothing over windowed rates) and provisions a
// cold-start's lead time ahead. The score router weighs queue depth, KV
// headroom, artifact locality, and predicted TTFT instead of walking
// instances in launch order. SLO attainment and node-seconds are the
// two axes of merit: a policy pair dominates when it meets more
// deadlines without holding more capacity. With -autoscale / -router /
// -slo-ttft set on the medusa-bench command line the built-in policy
// grid is replaced by that single pair.
func runExtFleet(c *Context) (*Report, error) {
	cfgs := make([]model.Config, 0, len(fleetModels))
	for _, name := range fleetModels {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	if err := c.PrefetchArtifacts(cfgs, 0); err != nil {
		return nil, err
	}

	type cell struct {
		scaler string
		route  string
		skew   float64
	}
	skews := []float64{0, 1.5}
	var cells []cell
	if c.Fleet.Enabled() {
		// The command line pinned the policies: run one cell per skew
		// level instead of the built-in grid.
		for _, sk := range skews {
			cells = append(cells, cell{scaler: c.Fleet.Autoscale, route: c.Fleet.Router, skew: sk})
		}
	} else {
		for _, sc := range []string{"reactive", "predictive"} {
			for _, rt := range []string{"fifo", "score"} {
				for _, sk := range skews {
					cells = append(cells, cell{scaler: sc, route: rt, skew: sk})
				}
			}
		}
	}
	slo := fleetSLO
	if !c.Fleet.SLO.Zero() {
		slo = c.Fleet.SLO
	}

	mkDeps := func(skew float64) ([]serverless.Deployment, error) {
		// Phase-staggered diurnal sources, one per deployment: tenant
		// peaks are offset around the cycle, so fleet demand is never
		// flat even at skew 0.
		srcs, err := workload.DiurnalFleet(workload.DiurnalConfig{
			Seed: 61, BaseRPS: 30, Amplitude: 0.97, Period: 24 * time.Second,
			BurstFactor: 2, MeanBurst: 3 * time.Second, MeanCalm: 10 * time.Second,
			Duration:  60 * time.Second,
			MaxPrompt: 512, MeanOutput: 64, MaxOutput: 128,
		}, len(cfgs), skew)
		if err != nil {
			return nil, err
		}
		deps := make([]serverless.Deployment, 0, len(cfgs))
		for i, cfg := range cfgs {
			art, size, _, err := c.Artifact(cfg)
			if err != nil {
				return nil, err
			}
			deps = append(deps, serverless.Deployment{
				Name:   cfg.Name,
				Source: srcs[i],
				Config: serverless.Config{
					Model: cfg, Strategy: engine.StrategyMedusa,
					Store: c.Store, Cache: serverless.CacheSpec{Artifact: art, ArtifactBytes: size},
					Seed: int64(i + 1),
					Scheduler: serverless.Scheduler{
						// A small per-instance target and a short idle
						// timeout make the autoscaler the bottleneck:
						// every diurnal trough drains capacity, so the
						// next ramp pays cold starts unless the policy
						// provisions ahead of it.
						InstanceTarget: 2,
						IdleTimeout:    2 * time.Second,
						Batch:          sched.Params{BatchTokens: 512, KVBlocks: 512, ChunkedPrefill: true},
					},
				},
			})
		}
		return deps, nil
	}

	r := &Report{
		ID:    "ext-fleet",
		Title: "Extension: fleet control plane — autoscaler × router × tenant skew (diurnal bursty traffic, 4 nodes, batched execution)",
		Header: []string{"autoscale", "router", "skew", "completed", "SLO att(%)",
			"node-sec", "TTFT p99(s)", "cold starts"},
	}
	for _, cl := range cells {
		// Policies are built fresh per cell: the predictive autoscaler
		// carries per-deployment forecast state across a run. Its window
		// is tuned to the diurnal period — 2s windows resolve the 24s
		// cycle's ramps, where the default 5s sees barely two points per
		// upswing. Scale-ahead is disabled (MaxStep -1): the reactive
		// feedback loop ticks on every arrival, so at these cold-start
		// lengths launching on a forecast only buys extra registry
		// fetches. The forecast earns its keep on the scale-down side —
		// a two-instance keep-warm floor held through troughs the
		// forecast expects traffic beyond, so burst fronts land on warm
		// capacity instead of a multi-second fetch.
		var scaler autoscale.Policy
		var err error
		if cl.scaler == "predictive" {
			scaler, err = autoscale.NewPredictive(autoscale.PredictiveConfig{
				Window: 2 * time.Second, MaxStep: -1, KeepWarm: 2,
			})
		} else {
			scaler, err = autoscale.Parse(cl.scaler)
		}
		if err != nil {
			return nil, err
		}
		route, err := router.Parse(cl.route)
		if err != nil {
			return nil, err
		}
		deps, err := mkDeps(cl.skew)
		if err != nil {
			return nil, err
		}
		// Ambient faults (the "mild" preset: 2% per site) leave the odd
		// replica degraded to the vanilla fallback profile — the
		// heterogeneity the score router exploits: a degraded replica's
		// slower decode step raises its predicted TTFT, steering work
		// toward healthy instances, which launch-order dispatch cannot.
		plan := faults.Presets()["mild"]
		// A high locality weight packs scale-ups onto artifact-warm
		// nodes: the predictive policy's speculative launches reuse
		// already-up nodes instead of opening fresh ones, keeping its
		// node-seconds bill near the reactive baseline.
		//
		// The cache is deliberately starved — a node's RAM tier holds one
		// tenant's artifact but not both, there is no SSD tier, and the
		// registry link is a congested WAN — so provisioning is expensive:
		// a launch on an artifact-cold node pays a multi-second registry
		// fetch before loading even starts. That is the regime where the
		// control plane earns its keep: predictive scale-ahead moves the
		// fetch off the deadline's critical path, and locality-aware
		// placement avoids paying it at all.
		res, err := cluster.Run(cluster.Config{
			Nodes: 4, GPUsPerNode: 6,
			Cache: artifactcache.Params{
				RAMBytes: 4 << 20,
				RAM:      storage.Array{Bandwidth: 80e9, Latency: 2 * time.Microsecond},
			},
			Network:        storage.Array{Bandwidth: 2e6, Latency: 10 * time.Millisecond},
			LocalityWeight: 2.0,
			Seed:           7,
			Deployments:    deps,
			Faults:         serverless.FaultSpec{Plan: &plan},
			Autoscaler:     scaler,
			Router:         route,
			SLO:            slo,
		})
		if err != nil {
			return nil, err
		}
		ttft := &metrics.Sample{}
		cold := 0
		for _, d := range res.PerDeployment {
			ttft.AddAll(d.TTFT)
			cold += d.ColdStarts
		}
		r.AddRow(
			cl.scaler, cl.route,
			fmt.Sprintf("%.1f", cl.skew),
			fmt.Sprintf("%d", res.Completed),
			fmt.Sprintf("%.2f", res.SLOAttainment()*100),
			fmt.Sprintf("%.1f", res.NodeSeconds),
			secs(ttft.P99()),
			fmt.Sprintf("%d", cold))
	}
	r.AddNote("SLO: ttft ≤ %v, tpot ≤ %v; node-seconds integrate wall time each node holds ≥1 live instance, so a row dominates when attainment rises at equal or lower node-seconds", slo.TTFT, slo.TPOT)
	r.AddNote("fixed seed: every cell is byte-identical across reruns and GOMAXPROCS — diff results/ext-fleet-sweep.txt against a fresh run to verify")
	return r, nil
}
