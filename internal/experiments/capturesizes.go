package experiments

import (
	"fmt"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
)

func init() {
	register("ext-capturesizes", runCaptureSizes)
}

// captureSizeSets are alternative capture policies: vLLM's default 35
// sizes versus sparser sets. Fewer graphs mean cheaper capture (and
// cheaper Medusa restore) but coarser padding at serving time.
var captureSizeSets = []struct {
	name  string
	sizes []int
}{
	{"4 sizes (1,8,64,256)", []int{1, 8, 64, 256}},
	{"9 sizes (powers of two)", []int{1, 2, 4, 8, 16, 32, 64, 128, 256}},
	{"35 sizes (vLLM default)", model.CaptureBatchSizes()},
}

// runCaptureSizes sweeps the number of captured batch sizes and reports
// the cold-start cost of capture vs Medusa restore, and the serving
// penalty of padded dispatch at an awkward batch size.
func runCaptureSizes(c *Context) (*Report, error) {
	cfg, err := model.ByName("Qwen1.5-4B")
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "ext-capturesizes",
		Title: "Extension: capture-size policy sweep (Qwen1.5-4B)",
		Header: []string{"policy", "graphs", "capture (s)", "restore (s)",
			"decode@20 w/ pad (ms)"},
	}
	for _, set := range captureSizeSets {
		store := storage.NewStore(storage.DefaultArray())
		art, report, err := engine.RunOffline(engine.OfflineOptions{
			Model: cfg, Store: store, Seed: c.NextSeed(), CaptureSizes: set.sizes,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: offline: %w", set.name, err)
		}
		vllm, err := engine.ColdStart(engine.Options{
			Model: cfg, Strategy: engine.StrategyVLLM, Seed: c.NextSeed(),
			Store: store, CaptureSizes: set.sizes,
		})
		if err != nil {
			return nil, err
		}
		med, err := engine.ColdStart(engine.Options{
			Model: cfg, Strategy: engine.StrategyMedusa, Seed: c.NextSeed(),
			Store: store, CaptureSizes: set.sizes,
			Artifact: art, ArtifactBytes: report.ArtifactBytes,
		})
		if err != nil {
			return nil, err
		}
		// Batch 20 lands between capture sizes in the sparse sets: it
		// dispatches to the next-larger graph and pays the padding.
		step, err := med.DecodeStepDuration(20)
		if err != nil {
			return nil, err
		}
		r.AddRow(set.name,
			fmt.Sprintf("%d", len(set.sizes)),
			secs(vllm.Timeline().StageDuration(engine.StageCapture)),
			secs(med.Timeline().StageDuration(engine.StageCapture)),
			fmt.Sprintf("%.3f", float64(step.Microseconds())/1000))
	}
	r.AddNote("sparser capture sets shrink both vanilla capture and Medusa's restore, but batch-20 requests pad up to the next captured size (64 in the 4-size policy) and decode slower")
	r.AddNote("the paper keeps vLLM's 35-size default in all experiments; this sweep shows Medusa's advantage holds at every policy")
	return r, nil
}
