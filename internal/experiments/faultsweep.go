package experiments

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/cluster"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/faults"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

func init() {
	register("ext-fault-sweep", runExtFaultSweep)
}

// faultSweepModels are the co-located deployments the sweep stresses;
// small models churn fast, so the injector gets many draws per run.
var faultSweepModels = []string{"Qwen1.5-0.5B", "Qwen1.5-1.8B", "Llama2-7B"}

// runExtFaultSweep sweeps fault probability over one seeded two-node
// workload: at each point the same plan probability is applied to all
// four injectable sites (artifact corruption, registry fetch timeouts,
// SSD read errors, restore-validation mismatches), plus a final row
// that also crashes a node mid-run. Every run must complete every
// request — injected faults degrade launches to vanilla cold starts
// (FAILURES.md), they never abort — so the table shows what survivable
// degradation costs: TTFT percentiles and the degradation rate as a
// function of fault probability.
func runExtFaultSweep(c *Context) (*Report, error) {
	cfgs := make([]model.Config, 0, len(faultSweepModels))
	for _, name := range faultSweepModels {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	if err := c.PrefetchArtifacts(cfgs, 0); err != nil {
		return nil, err
	}

	mkDeps := func() ([]serverless.Deployment, error) {
		deps := make([]serverless.Deployment, 0, len(cfgs))
		for i, cfg := range cfgs {
			art, size, _, err := c.Artifact(cfg)
			if err != nil {
				return nil, err
			}
			deps = append(deps, serverless.Deployment{
				Name: cfg.Name,
				Config: serverless.Config{
					Model: cfg, Strategy: engine.StrategyMedusa,
					Store: c.Store, Cache: serverless.CacheSpec{Artifact: art, ArtifactBytes: size},
					Seed: int64(i + 1),
					// churn: idle instances die between bursts, so each
					// fault-probability point sees many launches
					Scheduler: serverless.Scheduler{IdleTimeout: 150 * time.Millisecond},
				},
			})
		}
		// Long-ish generations keep batches busy so the crash row's node
		// death lands on running requests (they requeue, not vanish).
		trace, err := workload.Generate(workload.TraceConfig{
			Seed: 51, RPS: 4, Duration: 40 * time.Second,
			MeanOutput: 256, MaxOutput: 1024,
		})
		if err != nil {
			return nil, err
		}
		return cluster.ZipfDeployments(deps, trace, 53, 1.2)
	}

	type point struct {
		label string
		plan  faults.Plan
	}
	uniform := func(p float64) faults.Plan {
		spec := faults.SiteSpec{Probability: p}
		return faults.Plan{
			Seed:            17,
			ArtifactCorrupt: spec, RegistryTimeout: spec,
			SSDRead: spec, RestoreMismatch: spec,
		}
	}
	points := []point{{label: "0.00", plan: faults.Plan{}}}
	for _, p := range []float64{0.02, 0.05, 0.10, 0.20} {
		points = append(points, point{label: fmt.Sprintf("%.2f", p), plan: uniform(p)})
	}
	crash := uniform(0.02)
	crash.NodeCrashes = []faults.NodeCrash{{Node: 1, At: faults.Duration(12 * time.Second)}}
	points = append(points, point{label: "0.02+crash", plan: crash})

	params := artifactcache.DefaultParams()
	params.RAMBytes = 2 << 20
	params.SSDBytes = 6 << 20

	r := &Report{
		ID:    "ext-fault-sweep",
		Title: "Extension: fault-injection sweep (2 nodes, 3 models, all sites at probability p)",
		Header: []string{"p", "completed", "cold starts", "degraded", "degr rate",
			"requeued", "TTFT p50(s)", "TTFT p99(s)", "cold start p99(s)"},
	}
	for _, pt := range points {
		deps, err := mkDeps()
		if err != nil {
			return nil, err
		}
		plan := pt.plan
		ccfg := cluster.Config{
			Nodes: 2, GPUsPerNode: 4,
			Cache:          params,
			LocalityWeight: 0.8,
			Seed:           7,
			Deployments:    deps,
			Faults:         serverless.FaultSpec{Plan: &plan},
		}
		res, err := cluster.Run(ccfg)
		if err != nil {
			return nil, fmt.Errorf("fault sweep p=%s: %w", pt.label, err)
		}
		completed := 0
		cs, ttft := &metrics.Sample{}, &metrics.Sample{}
		for _, d := range res.PerDeployment {
			completed += d.Completed
			cs.AddAll(d.ColdStart)
			ttft.AddAll(d.TTFT)
		}
		rate := 0.0
		if res.TotalColdStarts > 0 {
			rate = float64(res.Degraded) / float64(res.TotalColdStarts)
		}
		r.AddRow(pt.label,
			fmt.Sprintf("%d", completed),
			fmt.Sprintf("%d", res.TotalColdStarts),
			fmt.Sprintf("%d", res.Degraded),
			pct(rate),
			fmt.Sprintf("%d", res.Requeued),
			secs(ttft.P50()), secs(ttft.P99()), secs(cs.P99()))
	}
	r.AddNote("same seeded trace at every point; faults degrade launches to vanilla cold starts (never abort), so 'completed' is constant while TTFT tails and the degradation rate grow with p")
	r.AddNote("the crash row kills node 1 at t=12s: its cache tiers are lost and running requests requeue onto node 0")
	return r, nil
}
