package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/obs"
	"github.com/medusa-repro/medusa/internal/sched"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/vclock"
)

// Context carries shared state across experiments: the SSD store and a
// cache of offline artifacts (the offline phase runs once per model, as
// in the paper's deployment model).
type Context struct {
	Store *storage.Store
	// Tracer, when set before running experiments, receives the spans
	// of every cold start and offline phase the context performs —
	// including PrefetchArtifacts' parallel fan-out, which is safe to
	// trace because the exporter orders spans by content, not by
	// emission order.
	Tracer *obs.Tracer
	// Batch, when enabled, overrides the batching parameters of
	// experiments that serve with continuous batching (ext-batching
	// runs a single cell with these knobs instead of its built-in
	// sweep). medusa-bench populates it from the -batch-tokens /
	// -kv-blocks / -chunked-prefill flags shared with medusa-simulate.
	Batch sched.Params
	// Fleet, when enabled, pins the ext-fleet experiment to a single
	// control-plane cell (that autoscaler × router × SLO) instead of
	// its built-in sweep. medusa-bench populates it from the
	// -autoscale / -router / -slo-ttft / -slo-tpot flags shared with
	// medusa-simulate.
	Fleet FleetOverrides

	mu        sync.Mutex
	artifacts map[string]*artifactEntry
	baselines map[string]*engine.Instance
	seed      int64
	phases    map[string]*obs.PhaseBreakdown
	phaseTot  map[string]time.Duration
}

// FleetOverrides carries the command-line control-plane knobs into the
// ext-fleet experiment. The policy fields hold the names accepted by
// autoscale.Parse and router.Parse — names rather than constructed
// policies, because a stateful policy must be built fresh for every
// cluster.Run and the sweep runs many.
type FleetOverrides struct {
	Autoscale string
	Router    string
	SLO       serverless.SLO
}

// Enabled reports whether any knob deviates from the legacy defaults
// (reactive autoscaling, launch-order dispatch, no SLO).
func (f FleetOverrides) Enabled() bool {
	return (f.Autoscale != "" && f.Autoscale != "reactive") ||
		(f.Router != "" && f.Router != "fifo") ||
		!f.SLO.Zero()
}

type artifactEntry struct {
	art    *medusa.Artifact
	bytes  uint64
	report *engine.OfflineReport
}

// NewContext returns a fresh experiment context.
func NewContext() *Context {
	return &Context{
		Store:     storage.NewStore(storage.DefaultArray()),
		artifacts: make(map[string]*artifactEntry),
		baselines: make(map[string]*engine.Instance),
		seed:      1,
		phases:    make(map[string]*obs.PhaseBreakdown),
		phaseTot:  make(map[string]time.Duration),
	}
}

// NextSeed hands out distinct process seeds.
func (c *Context) NextSeed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextSeedLocked()
}

func (c *Context) nextSeedLocked() int64 {
	c.seed++
	return c.seed * 7919
}

// Artifact runs (or reuses) the offline phase for a model.
func (c *Context) Artifact(cfg model.Config) (*medusa.Artifact, uint64, *engine.OfflineReport, error) {
	c.mu.Lock()
	e, ok := c.artifacts[cfg.Name]
	c.mu.Unlock()
	if ok {
		return e.art, e.bytes, e.report, nil
	}
	art, report, err := engine.RunOffline(engine.OfflineOptions{
		Model:  cfg,
		Store:  c.Store,
		Seed:   c.NextSeed(),
		Clock:  vclock.New(),
		Tracer: c.Tracer,
	})
	if err != nil {
		return nil, 0, nil, fmt.Errorf("offline phase for %s: %w", cfg.Name, err)
	}
	e = &artifactEntry{art: art, bytes: report.ArtifactBytes, report: report}
	c.mu.Lock()
	c.artifacts[cfg.Name] = e
	c.mu.Unlock()
	return e.art, e.bytes, e.report, nil
}

// PrefetchArtifacts runs the offline phase for every not-yet-cached
// model in parallel — the models are independent, and the paper's
// deployment pays the offline cost once per model, so fleet-style
// sweeps (Figure 9, Table 1) fan it out. Seeds are assigned in
// configuration order before the fan-out, so the produced artifacts
// are bit-identical to a sequential run of Artifact over the same
// configs. workers <= 0 uses GOMAXPROCS.
func (c *Context) PrefetchArtifacts(cfgs []model.Config, workers int) error {
	type job struct {
		cfg  model.Config
		seed int64
	}
	var jobs []job
	c.mu.Lock()
	seen := make(map[string]bool)
	for _, cfg := range cfgs {
		if _, ok := c.artifacts[cfg.Name]; ok || seen[cfg.Name] {
			continue
		}
		seen[cfg.Name] = true
		jobs = append(jobs, job{cfg: cfg, seed: c.nextSeedLocked()})
	}
	c.mu.Unlock()
	if len(jobs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	run := func(ji int) {
		j := jobs[ji]
		art, report, err := engine.RunOffline(engine.OfflineOptions{
			Model:  j.cfg,
			Store:  c.Store,
			Seed:   j.seed,
			Clock:  vclock.New(),
			Tracer: c.Tracer,
		})
		if err != nil {
			errs[ji] = fmt.Errorf("offline phase for %s: %w", j.cfg.Name, err)
			return
		}
		c.mu.Lock()
		c.artifacts[j.cfg.Name] = &artifactEntry{art: art, bytes: report.ArtifactBytes, report: report}
		c.mu.Unlock()
	}
	if workers > 1 {
		ch := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ji := range ch {
					run(ji)
				}
			}()
		}
		for ji := range jobs {
			ch <- ji
		}
		close(ch)
		wg.Wait()
	} else {
		for ji := range jobs {
			run(ji)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ColdStart launches an instance with the strategy, resolving the
// artifact when Medusa is requested.
func (c *Context) ColdStart(cfg model.Config, strategy engine.Strategy, runtimeInit bool) (*engine.Instance, error) {
	opts := engine.Options{
		Model:              cfg,
		Strategy:           strategy,
		Seed:               c.NextSeed(),
		Store:              c.Store,
		IncludeRuntimeInit: runtimeInit,
		Tracer:             c.Tracer,
	}
	if strategy.NeedsArtifact() {
		art, size, _, err := c.Artifact(cfg)
		if err != nil {
			return nil, err
		}
		opts.Artifact = art
		opts.ArtifactBytes = size
	}
	inst, err := engine.ColdStart(opts)
	if err != nil {
		return nil, err
	}
	c.recordPhases(strategy, inst)
	return inst, nil
}

// recordPhases folds a cold start's stage timeline into the per-strategy
// phase breakdown, attributing overlap exclusively.
func (c *Context) recordPhases(strategy engine.Strategy, inst *engine.Instance) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strategy.String()
	pb, ok := c.phases[key]
	if !ok {
		pb = obs.NewPhaseBreakdown()
		c.phases[key] = pb
	}
	pb.AddExclusive(obs.TimelineIntervals(inst.Timeline(), 0))
	c.phaseTot[key] += inst.ColdStartDuration()
}

// RenderPhases prints the per-strategy phase breakdowns accumulated
// over every cold start the experiments performed. The per-phase sums
// equal the summed end-to-end cold-start durations exactly; any drift
// is reported (and would be a bug in the attribution).
func (c *Context) RenderPhases() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.phases) == 0 {
		return "no cold starts recorded\n"
	}
	keys := make([]string, 0, len(c.phases))
	for k := range c.phases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var w strings.Builder
	for _, k := range keys {
		pb := c.phases[k]
		fmt.Fprintf(&w, "\n%s (end-to-end total %.3fs):\n", k, c.phaseTot[k].Seconds())
		w.WriteString(pb.Table())
		if drift := pb.Total() - c.phaseTot[k]; drift != 0 {
			fmt.Fprintf(&w, "WARNING: phase attribution drifted by %v\n", drift)
		}
	}
	return w.String()
}

// Baseline returns (and caches) a vanilla vLLM cold start of a model;
// several experiments read its timeline and graphs.
func (c *Context) Baseline(cfg model.Config) (*engine.Instance, error) {
	c.mu.Lock()
	inst, ok := c.baselines[cfg.Name]
	c.mu.Unlock()
	if ok {
		return inst, nil
	}
	inst, err := c.ColdStart(cfg, engine.StrategyVLLM, false)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.baselines[cfg.Name] = inst
	c.mu.Unlock()
	return inst, nil
}

// Runner is one registered experiment.
type Runner func(c *Context) (*Report, error)

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, fn Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = fn
	registryOrder = append(registryOrder, id)
}

// IDs lists registered experiment ids in registration order.
func IDs() []string { return append([]string(nil), registryOrder...) }

// Run executes one experiment by id.
func Run(c *Context, id string) (*Report, error) {
	fn, ok := registry[id]
	if !ok {
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
	return fn(c)
}
