package experiments

import (
	"fmt"
	"sort"
	"sync"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/vclock"
)

// Context carries shared state across experiments: the SSD store and a
// cache of offline artifacts (the offline phase runs once per model, as
// in the paper's deployment model).
type Context struct {
	Store *storage.Store

	mu        sync.Mutex
	artifacts map[string]*artifactEntry
	baselines map[string]*engine.Instance
	seed      int64
}

type artifactEntry struct {
	art    *medusa.Artifact
	bytes  uint64
	report *engine.OfflineReport
}

// NewContext returns a fresh experiment context.
func NewContext() *Context {
	return &Context{
		Store:     storage.NewStore(storage.DefaultArray()),
		artifacts: make(map[string]*artifactEntry),
		baselines: make(map[string]*engine.Instance),
		seed:      1,
	}
}

// NextSeed hands out distinct process seeds.
func (c *Context) NextSeed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seed++
	return c.seed * 7919
}

// Artifact runs (or reuses) the offline phase for a model.
func (c *Context) Artifact(cfg model.Config) (*medusa.Artifact, uint64, *engine.OfflineReport, error) {
	c.mu.Lock()
	e, ok := c.artifacts[cfg.Name]
	c.mu.Unlock()
	if ok {
		return e.art, e.bytes, e.report, nil
	}
	art, report, err := engine.RunOffline(engine.OfflineOptions{
		Model: cfg,
		Store: c.Store,
		Seed:  c.NextSeed(),
		Clock: vclock.New(),
	})
	if err != nil {
		return nil, 0, nil, fmt.Errorf("offline phase for %s: %w", cfg.Name, err)
	}
	e = &artifactEntry{art: art, bytes: report.ArtifactBytes, report: report}
	c.mu.Lock()
	c.artifacts[cfg.Name] = e
	c.mu.Unlock()
	return e.art, e.bytes, e.report, nil
}

// ColdStart launches an instance with the strategy, resolving the
// artifact when Medusa is requested.
func (c *Context) ColdStart(cfg model.Config, strategy engine.Strategy, runtimeInit bool) (*engine.Instance, error) {
	opts := engine.Options{
		Model:              cfg,
		Strategy:           strategy,
		Seed:               c.NextSeed(),
		Store:              c.Store,
		IncludeRuntimeInit: runtimeInit,
	}
	if strategy == engine.StrategyMedusa {
		art, size, _, err := c.Artifact(cfg)
		if err != nil {
			return nil, err
		}
		opts.Artifact = art
		opts.ArtifactBytes = size
	}
	return engine.ColdStart(opts)
}

// Baseline returns (and caches) a vanilla vLLM cold start of a model;
// several experiments read its timeline and graphs.
func (c *Context) Baseline(cfg model.Config) (*engine.Instance, error) {
	c.mu.Lock()
	inst, ok := c.baselines[cfg.Name]
	c.mu.Unlock()
	if ok {
		return inst, nil
	}
	inst, err := c.ColdStart(cfg, engine.StrategyVLLM, false)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.baselines[cfg.Name] = inst
	c.mu.Unlock()
	return inst, nil
}

// Runner is one registered experiment.
type Runner func(c *Context) (*Report, error)

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, fn Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = fn
	registryOrder = append(registryOrder, id)
}

// IDs lists registered experiment ids in registration order.
func IDs() []string { return append([]string(nil), registryOrder...) }

// Run executes one experiment by id.
func Run(c *Context, id string) (*Report, error) {
	fn, ok := registry[id]
	if !ok {
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
	return fn(c)
}
