package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// sharedCtx reuses offline artifacts across tests; building them for
// all ten models is the dominant cost.
var sharedCtx = NewContext()

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	r, err := Run(sharedCtx, id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id || len(r.Rows) == 0 || len(r.Header) == 0 {
		t.Fatalf("%s: malformed report %+v", id, r)
	}
	if !strings.Contains(r.Render(), r.Title) {
		t.Fatalf("%s: Render missing title", id)
	}
	return r
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run(sharedCtx, "fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig1", "fig2", "fig3", "fig7", "fig8", "fig9", "fig10", "fig11",
		"ablation-index", "ablation-copyfree", "ablation-resolve", "ablation-trigger",
		"ext-checkpoint", "ext-multigpu", "ext-deferred", "ext-sensitivity",
		"ext-capturesizes", "ext-hotspare", "ext-cache-policies", "ext-scale",
		"ext-batching", "ext-fault-sweep", "ext-fleet", "ext-template"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestExtCachePoliciesSweep(t *testing.T) {
	r := runExp(t, "ext-cache-policies")
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want one per eviction policy", len(r.Rows))
	}
	rates := map[string]float64{}
	for _, row := range r.Rows {
		rates[row[0]] = parsePct(t, row[1])
	}
	if rates["costaware"] <= rates["lru"] {
		t.Errorf("cost-aware hit rate %.3f not above LRU %.3f", rates["costaware"], rates["lru"])
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r := runExp(t, "table1")
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[2] != row[3] {
			t.Errorf("%s: measured nodes %s != paper %s", row[0], row[2], row[3])
		}
	}
}

func TestFigure1Shares(t *testing.T) {
	r := runExp(t, "fig1")
	// Loading must dominate (paper: 76%).
	loadShare := parsePct(t, r.Rows[1][2])
	if loadShare < 0.65 || loadShare > 0.85 {
		t.Errorf("loading share = %.2f, want ≈0.76", loadShare)
	}
}

func TestFigure2Aggregates(t *testing.T) {
	r := runExp(t, "fig2")
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The combined KV+capture share should be near the paper's 47%.
	note := r.Notes[0]
	if !strings.Contains(note, "combined") {
		t.Fatalf("note = %q", note)
	}
}

func TestFigure3Speedups(t *testing.T) {
	r := runExp(t, "fig3")
	maxSpeed := 0.0
	for _, row := range r.Rows {
		s, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if s <= 1 {
			t.Errorf("%s: speedup %.2f ≤ 1", row[0], s)
		}
		if s > maxSpeed {
			maxSpeed = s
		}
	}
	if maxSpeed < 1.8 || maxSpeed > 2.8 {
		t.Errorf("max speedup = %.2f, paper reports up to 2.4x", maxSpeed)
	}
}

func TestFigure7Reductions(t *testing.T) {
	r := runExp(t, "fig7")
	for _, row := range r.Rows {
		cut := parsePct(t, row[4])
		if cut < 0.15 || cut > 0.60 {
			t.Errorf("%s: loading reduction %.2f outside paper band [21.1%%, 42.9%%]±", row[0], cut)
		}
	}
	// Average reduction near the paper's 42.5%.
	if !strings.Contains(r.Notes[0], "avg loading reduction") {
		t.Fatalf("notes = %v", r.Notes)
	}
}

func TestFigure8Anchors(t *testing.T) {
	r := runExp(t, "fig8")
	foundKV := false
	for _, n := range r.Notes {
		if strings.Contains(n, "KV-init") {
			foundKV = true
		}
	}
	if !foundKV {
		t.Fatalf("notes = %v", r.Notes)
	}
}

func TestFigure9Durations(t *testing.T) {
	r := runExp(t, "fig9")
	for _, row := range r.Rows {
		total, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if total <= 0 || total > 90 {
			t.Errorf("%s: offline total %.1fs out of the paper's <1min ballpark", row[0], total)
		}
	}
}

func TestAblations(t *testing.T) {
	idx := runExp(t, "ablation-index")
	joined := ""
	for _, row := range idx.Rows {
		joined += strings.Join(row, " ") + "\n"
	}
	if !strings.Contains(joined, "trace-based backward") || !strings.Contains(joined, "OK") {
		t.Fatalf("index ablation rows:\n%s", joined)
	}
	if !strings.Contains(joined, "CORRUPTED") && !strings.Contains(joined, "FAILED") {
		t.Fatalf("naive matching did not fail:\n%s", joined)
	}
	runExp(t, "ablation-copyfree")
	res := runExp(t, "ablation-resolve")
	for _, row := range res.Rows {
		share := parsePct(t, row[4])
		if share < 0.4 || share > 0.95 {
			t.Errorf("%s: dlsym share %.2f implausible vs paper's 69.2%%", row[0], share)
		}
	}
	trig := runExp(t, "ablation-trigger")
	joined = ""
	for _, row := range trig.Rows {
		joined += strings.Join(row, " ") + "\n"
	}
	if !strings.Contains(joined, "FAILED as expected") {
		t.Fatalf("trigger ablation rows:\n%s", joined)
	}
}

func TestFigure10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trace simulation skipped in -short mode")
	}
	r := runExp(t, "fig10")
	// 2 models × 2 rates × 4 strategies.
	if len(r.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(r.Rows))
	}
	// Medusa's p99 must undercut vLLM's in every (model, RPS) block.
	for block := 0; block < 4; block++ {
		rows := r.Rows[block*4 : block*4+4]
		vllm := parseSecs(t, rows[0][3])
		med := parseSecs(t, rows[3][3])
		if med >= vllm {
			t.Errorf("block %d: Medusa p99 %v not below vLLM %v", block, med, vllm)
		}
	}
}

func TestExtensionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments skipped in -short mode")
	}
	for _, id := range []string{"ext-checkpoint", "ext-deferred", "ext-sensitivity", "ext-capturesizes"} {
		runExp(t, id)
	}
}

func TestExtensionsHeavySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy extension experiments skipped in -short mode")
	}
	hot := runExp(t, "ext-hotspare")
	if len(hot.Rows) != 9 {
		t.Fatalf("hotspare rows = %d", len(hot.Rows))
	}
	mg := runExp(t, "ext-multigpu")
	if len(mg.Rows) != 3 {
		t.Fatalf("multigpu rows = %d", len(mg.Rows))
	}
}

func TestFigure11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trace simulation skipped in -short mode")
	}
	r := runExp(t, "fig11")
	if len(r.Rows) != 2*4*len(figure11Rates) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q", s)
	}
	return v / 100
}

func parseSecs(t *testing.T, s string) time.Duration {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad seconds %q", s)
	}
	return time.Duration(v * float64(time.Second))
}
