package experiments

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

func init() {
	register("ext-hotspare", runHotSpare)
}

// hotSpareModels are three differently-sized models co-located on the
// 4-GPU cluster — the "diversity of model types" of §2.4.
var hotSpareModels = []string{"Qwen1.5-0.5B", "Qwen1.5-4B", "Llama2-7B"}

// runHotSpare quantifies §2.4's economics argument: keeping a hot spare
// per model type buys low tails at the price of permanently provisioned
// GPUs; scaling to zero reclaims the GPUs but puts cold starts on the
// request path — which is exactly the latency Medusa shrinks.
func runHotSpare(c *Context) (*Report, error) {
	r := &Report{
		ID:    "ext-hotspare",
		Title: "Extension: hot spares vs scale-to-zero on a shared 4-GPU cluster (3 models)",
		Header: []string{"policy", "model", "p99 TTFT (s)", "cold starts",
			"cluster GPU-seconds"},
	}
	const (
		duration = 20 * time.Minute
		rps      = 0.02 // one request every ~50s per model: the hot-spare worst case
	)
	type policy struct {
		name     string
		strategy engine.Strategy
		prewarm  int
		idle     time.Duration
	}
	policies := []policy{
		{"HOT SPARES (vLLM)", engine.StrategyVLLM, 1, 0},
		{"SCALE-TO-ZERO (vLLM)", engine.StrategyVLLM, 0, 15 * time.Second},
		{"SCALE-TO-ZERO (MEDUSA)", engine.StrategyMedusa, 0, 15 * time.Second},
	}
	for _, pol := range policies {
		mc := serverless.MultiConfig{NumGPUs: 4}
		for mi, name := range hotSpareModels {
			cfg, err := model.ByName(name)
			if err != nil {
				return nil, err
			}
			reqs, err := workload.Generate(workload.TraceConfig{
				Seed: int64(31 + mi), RPS: rps, Duration: duration,
			})
			if err != nil {
				return nil, err
			}
			dcfg := serverless.Config{
				Model:    cfg,
				Strategy: pol.strategy,
				Store:    c.Store,
				Scheduler: serverless.Scheduler{
					Prewarm:        pol.prewarm,
					IdleTimeout:    pol.idle,
					InstanceTarget: 64,
				},
				Seed: c.NextSeed(),
			}
			if pol.strategy.NeedsArtifact() {
				art, size, _, err := c.Artifact(cfg)
				if err != nil {
					return nil, err
				}
				dcfg.Cache = serverless.CacheSpec{Artifact: art, ArtifactBytes: size}
			}
			mc.Deployments = append(mc.Deployments, serverless.Deployment{
				Name: name, Config: dcfg, Requests: reqs,
			})
		}
		res, err := serverless.RunMulti(mc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pol.name, err)
		}
		for mi, name := range hotSpareModels {
			dep := res.PerDeployment[mi]
			gpuCell := ""
			if mi == 0 {
				gpuCell = fmt.Sprintf("%.0f", res.GPUSeconds)
			}
			r.AddRow(pol.name, name, secs(dep.TTFT.P99()),
				fmt.Sprintf("%d", dep.ColdStarts), gpuCell)
		}
	}
	r.AddNote("hot spares pin one instance per model for the whole run (GPU-seconds ≈ 3 models × %v); scale-to-zero reclaims them but exposes cold starts — Medusa halves that exposure (§2.4)", duration)
	return r, nil
}
