package experiments

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/plot"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

func init() {
	register("fig10", runFigure10)
	register("fig11", runFigure11)
}

// traceStrategies is the four-way comparison of §7.5.
var traceStrategies = []engine.Strategy{
	engine.StrategyVLLM, engine.StrategyVLLMAsync, engine.StrategyNoGraph, engine.StrategyMedusa,
}

// simConfig builds a cluster config for a model and strategy.
func (c *Context) simConfig(cfg model.Config, strategy engine.Strategy) (serverless.Config, error) {
	sc := serverless.Config{
		Model:    cfg,
		Strategy: strategy,
		Store:    c.Store,
		NumGPUs:  4,
		Seed:     c.NextSeed(),
	}
	if strategy.NeedsArtifact() {
		art, size, _, err := c.Artifact(cfg)
		if err != nil {
			return sc, err
		}
		sc.Cache = serverless.CacheSpec{Artifact: art, ArtifactBytes: size}
	}
	return sc, nil
}

// runFigure10 reproduces Figure 10: p99 TTFT under ShareGPT traces at
// RPS 2 and 10 for Llama2-7B and Qwen1.5-4B, scaling from zero (cold
// starts on the request path).
func runFigure10(c *Context) (*Report, error) {
	r := &Report{
		ID:     "fig10",
		Title:  "p99 TTFT under real-world traces (ShareGPT, Poisson arrivals, scale from zero)",
		Header: []string{"model", "RPS", "strategy", "p99 TTFT (s)", "p50 TTFT (s)", "cold starts", "vs vLLM"},
	}
	fig10Chart := &plot.Bar{Title: "p99 TTFT", Unit: "s",
		Series: []string{"vLLM", "vLLM+ASYNC", "w/o CUDA GRAPH", "MEDUSA"}}
	for _, name := range []string{"Llama2-7B", "Qwen1.5-4B"} {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, rps := range []float64{2, 10} {
			reqs, err := workload.Generate(workload.TraceConfig{
				Seed: 90125, RPS: rps, Duration: 60 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			var vllmP99 time.Duration
			group := plot.BarGroup{Label: fmt.Sprintf("%s @ %.0f RPS", name, rps)}
			for _, s := range traceStrategies {
				sc, err := c.simConfig(cfg, s)
				if err != nil {
					return nil, err
				}
				res, err := serverless.Run(sc, reqs)
				if err != nil {
					return nil, fmt.Errorf("%s %s rps=%v: %w", name, s, rps, err)
				}
				p99 := res.TTFT.P99()
				if s == engine.StrategyVLLM {
					vllmP99 = p99
				}
				cut := ""
				if s != engine.StrategyVLLM {
					cut = pct(metrics.Reduction(vllmP99, p99))
				}
				r.AddRow(name, fmt.Sprintf("%.0f", rps), s.String(),
					secs(p99), secs(res.TTFT.P50()), fmt.Sprintf("%d", res.ColdStarts), cut)
				group.Values = append(group.Values, p99.Seconds())
			}
			fig10Chart.Groups = append(fig10Chart.Groups, group)
		}
	}
	r.AddChart(fig10Chart.Render(60))
	r.AddNote("paper: MEDUSA reduces p99 TTFT by 50.5%% (Llama2-7B) and 53.0%% (Qwen1.5-4B) vs vLLM")
	return r, nil
}

// figure11Rates sweeps offered load; capacities differ from the paper's
// testbed, so the sweep covers our simulated cluster's range while
// preserving the shape (flat tail at low rate, cold-start bumps at
// scale-out, queueing blow-up past saturation).
var figure11Rates = []float64{2, 6, 12, 20, 28, 36, 48, 60, 72}

// runFigure11 reproduces Figure 11: p99 TTFT versus achieved system
// throughput as offered load increases, with one pre-warmed instance.
func runFigure11(c *Context) (*Report, error) {
	r := &Report{
		ID:     "fig11",
		Title:  "p99 TTFT vs overall throughput (1 instance pre-warmed, 4 GPUs)",
		Header: []string{"model", "strategy", "offered RPS", "throughput (req/s)", "p99 TTFT (s)", "instances"},
	}
	for _, name := range []string{"Llama2-7B", "Qwen1.5-4B"} {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		chart := &plot.Line{Title: name + ": p99 TTFT vs achieved throughput",
			XLabel: "req/s", YLabel: "p99 TTFT (s)", LogY: true}
		for _, s := range traceStrategies {
			series := plot.LineSeries{Name: s.String()}
			for _, rps := range figure11Rates {
				reqs, err := workload.Generate(workload.TraceConfig{
					Seed: 777, RPS: rps, Duration: 45 * time.Second,
				})
				if err != nil {
					return nil, err
				}
				sc, err := c.simConfig(cfg, s)
				if err != nil {
					return nil, err
				}
				sc.Scheduler.Prewarm = 1
				res, err := serverless.Run(sc, reqs)
				if err != nil {
					return nil, fmt.Errorf("%s %s rps=%v: %w", name, s, rps, err)
				}
				r.AddRow(name, s.String(), fmt.Sprintf("%.0f", rps),
					fmt.Sprintf("%.2f", res.Throughput), secs(res.TTFT.P99()),
					fmt.Sprintf("%d", res.PeakInstances))
				series.X = append(series.X, res.Throughput)
				series.Y = append(series.Y, res.TTFT.P99().Seconds())
			}
			chart.Series = append(chart.Series, series)
		}
		r.AddChart(chart.Render(64, 14))
	}
	r.AddNote("paper: at ≈4.5 QPS on Llama2-7B, MEDUSA's p99 TTFT is 43.0/29.9/27.0%% lower than vLLM / ASYNC / w-o-graph")
	r.AddNote("absolute saturation points differ (our simulated A100s serve faster than the testbed); the series shapes and strategy ordering are the reproduction target")
	return r, nil
}
