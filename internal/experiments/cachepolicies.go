package experiments

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/cluster"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

func init() {
	register("ext-cache-policies", runExtCachePolicies)
}

// cachePolicyModels are the zoo models the policy sweep co-locates, in
// ascending artifact size. The Zipf split maps popularity rank onto
// this order — the most popular models are the smallest — so the
// cost-aware policy's size term has signal to act on.
var cachePolicyModels = []string{
	"Qwen1.5-0.5B", "Qwen1.5-1.8B", "Llama2-7B", "Qwen1.5-7B", "Yi-6B",
	"Falcon-7B", "Llama2-13B", "Qwen1.5-4B", "Qwen1.5-14B", "Yi-9B",
}

// runExtCachePolicies sweeps the tiered artifact cache's eviction
// policies over one seeded multi-node, multi-model workload: ten Medusa
// deployments share a two-node fleet, request popularity is Zipf, and
// the cache tiers are sized so artifacts contend for space. The table
// compares hit rate, cold-start latency and fleet TTFT per policy.
func runExtCachePolicies(c *Context) (*Report, error) {
	cfgs := make([]model.Config, 0, len(cachePolicyModels))
	for _, name := range cachePolicyModels {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	if err := c.PrefetchArtifacts(cfgs, 0); err != nil {
		return nil, err
	}

	mkDeps := func() ([]serverless.Deployment, error) {
		deps := make([]serverless.Deployment, 0, len(cfgs))
		for i, cfg := range cfgs {
			art, size, _, err := c.Artifact(cfg)
			if err != nil {
				return nil, err
			}
			deps = append(deps, serverless.Deployment{
				Name: cfg.Name,
				Config: serverless.Config{
					Model: cfg, Strategy: engine.StrategyMedusa,
					Store: c.Store, Cache: serverless.CacheSpec{Artifact: art, ArtifactBytes: size},
					Seed: int64(i + 1),
					// churn: idle instances die between bursts
					Scheduler: serverless.Scheduler{IdleTimeout: 150 * time.Millisecond},
				},
			})
		}
		trace, err := workload.Generate(workload.TraceConfig{
			Seed: 41, RPS: 4, Duration: 40 * time.Second,
			MeanOutput: 16, MaxOutput: 32,
		})
		if err != nil {
			return nil, err
		}
		return cluster.ZipfDeployments(deps, trace, 43, 1.2)
	}

	// Tight tiers: SSD holds two small artifacts or one large one, so
	// the eviction policy decides which models stay local while the
	// Zipf tail streams one-shot artifacts through.
	params := artifactcache.DefaultParams()
	params.RAMBytes = 2 << 20
	params.SSDBytes = 6 << 20
	base := cluster.Config{
		Nodes: 2, GPUsPerNode: 4,
		Cache:          params,
		LocalityWeight: 0.8,
		Seed:           7,
	}
	results, err := cluster.RunPolicySweep(base, mkDeps)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:    "ext-cache-policies",
		Title: "Extension: tiered artifact cache eviction policies (2 nodes, 10 models, Zipf popularity)",
		Header: []string{"policy", "hit rate", "ram/ssd/miss", "coalesced",
			"cold start p50(s)", "cold start p99(s)", "TTFT p99(s)", "fetched MB"},
	}
	kinds := artifactcache.PolicyKinds()
	for i, res := range results {
		cs, ttft := &metrics.Sample{}, &metrics.Sample{}
		for _, d := range res.PerDeployment {
			cs.AddAll(d.ColdStart)
			ttft.AddAll(d.TTFT)
		}
		st := res.Cache
		r.AddRow(kinds[i].String(),
			pct(st.HitRate()),
			fmt.Sprintf("%d/%d/%d", st.RAMHits, st.SSDHits, st.Misses),
			fmt.Sprintf("%d", st.Coalesced),
			secs(cs.P50()), secs(cs.P99()), secs(ttft.P99()),
			fmt.Sprintf("%.1f", float64(st.BytesFetched)/(1<<20)))
	}
	r.AddNote("same seeded trace per policy; popularity rank maps to ascending artifact size, so cost-aware (GDSF) eviction retains the hot small artifacts LRU's recency churns out")
	return r, nil
}
