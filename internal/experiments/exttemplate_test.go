package experiments

import (
	"runtime"
	"testing"
)

// TestExtTemplateSweep checks the acceptance criteria of the template
// sharing extension: one row per fleet model plus one per family
// template, a registry dedup factor at or above the 5x floor, and a
// cold-fetch reduction over the same seeded trace.
func TestExtTemplateSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep skipped in -short mode")
	}
	r := runExp(t, "ext-template")
	models, tmpls := 0, 0
	for _, row := range r.Rows {
		if len(row[0]) > len("template/") && row[0][:len("template/")] == "template/" {
			tmpls++
		} else {
			models++
		}
	}
	if models != len(cachePolicyModels) || tmpls != 3 {
		t.Fatalf("rows = %d models + %d templates, want %d + 3", models, tmpls, len(cachePolicyModels))
	}
	if dedup := r.Metrics["registry_dedup_factor"]; dedup < 5 {
		t.Fatalf("registry dedup factor %.2fx below the 5x acceptance floor", dedup)
	}
	if red := r.Metrics["cold_fetch_reduction"]; red <= 1 {
		t.Fatalf("template factoring did not reduce cold-fetch traffic (%.2fx)", red)
	}
}

// TestExtTemplateDeterministic pins the byte-identity acceptance
// criterion: the sweep — template construction, delta encoding and two
// full fleet simulations — renders byte-identically across repetitions
// and GOMAXPROCS settings at fixed seeds.
func TestExtTemplateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweep skipped in -short mode")
	}
	first := runExp(t, "ext-template").Render()
	if second := runExp(t, "ext-template").Render(); second != first {
		t.Fatalf("ext-template output differs across reps:\n--- run1\n%s\n--- run2\n%s", first, second)
	}
	prev := runtime.GOMAXPROCS(1)
	third := runExp(t, "ext-template").Render()
	runtime.GOMAXPROCS(prev)
	if third != first {
		t.Fatalf("ext-template output depends on GOMAXPROCS:\n--- parallel\n%s\n--- sequential\n%s", first, third)
	}
}
