// Package experiments regenerates every table and figure of the
// paper's evaluation (§7) against the simulated substrate: the same
// workloads, the same strategy comparisons, the same reported rows and
// series. Absolute numbers come from the calibrated cost model; the
// shapes — who wins, by what factor, where crossovers fall — are the
// reproduction targets (see EXPERIMENTS.md).
package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"
	"time"
)

// Report is a rendered experiment result: a titled table plus free-form
// notes (the paper-quoted claims with our measured values).
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Charts are pre-rendered text figures (internal/plot) appended
	// after the table.
	Charts []string
	// Metrics carries headline numbers in machine-readable form for
	// the benchmark harness (e.g. "loading_reduction_pct").
	Metrics map[string]float64
}

// AddChart appends a rendered chart.
func (r *Report) AddChart(chart string) { r.Charts = append(r.Charts, chart) }

// SetMetric records a headline metric.
func (r *Report) SetMetric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// AddRow appends a table row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a formatted note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render produces the aligned text form.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, c := range r.Charts {
		b.WriteByte('\n')
		b.WriteString(c)
	}
	return b.String()
}

// RenderCSV produces a machine-readable form (RFC 4180) for plotting
// pipelines: a header row followed by the data rows. Notes and metrics
// are emitted as trailing comment lines.
func (r *Report) RenderCSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(r.Header)
	for _, row := range r.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// secs formats a duration as seconds with millisecond precision.
func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// pct formats a 0..1 fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
