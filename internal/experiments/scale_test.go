package experiments

import (
	"runtime"
	"testing"
)

// TestExtScaleDeterministicAcrossWorkers pins the parallel-replication
// determinism argument end to end: the sweep's report — five fleet
// replications fanned across a worker pool, merged into mean ± CI —
// renders byte-identically however many workers GOMAXPROCS grants.
func TestExtScaleDeterministicAcrossWorkers(t *testing.T) {
	r1 := runExp(t, "ext-scale")
	if len(r1.Rows) != extScaleReps {
		t.Fatalf("want %d replication rows, got %d", extScaleReps, len(r1.Rows))
	}
	prev := runtime.GOMAXPROCS(1)
	second := runExp(t, "ext-scale").Render()
	runtime.GOMAXPROCS(prev)
	if first := r1.Render(); first != second {
		t.Fatalf("ext-scale output depends on worker count:\n--- parallel\n%s\n--- sequential\n%s", first, second)
	}
}
