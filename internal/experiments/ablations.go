package experiments

import (
	"fmt"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/gpu"
	"github.com/medusa-repro/medusa/internal/kernels"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/vclock"
)

func init() {
	register("ablation-index", runAblationIndexMatching)
	register("ablation-copyfree", runAblationCopyFree)
	register("ablation-resolve", runAblationKernelResolve)
	register("ablation-trigger", runAblationTriggering)
}

// runAblationIndexMatching contrasts the paper's trace-based backward
// matching (§4.1) with naive forward first-match under allocator
// address reuse, using functional models where wrong restores are
// observable.
func runAblationIndexMatching(c *Context) (*Report, error) {
	r := &Report{
		ID:     "ablation-index",
		Title:  "Indirect index matching: trace-based backward vs naive first-match",
		Header: []string{"analysis", "restore outcome", "detail"},
	}
	store := storage.NewStore(storage.DefaultArray())
	cfg := model.TestTiny("ablate-index")
	sizes := []int{1, 2, 4, 8}
	for _, naive := range []bool{false, true} {
		art, _, err := engine.RunOffline(engine.OfflineOptions{
			Model: cfg, Store: store, Seed: c.NextSeed(), CaptureSizes: sizes,
			NaiveFirstMatch: naive, SkipValidation: true,
		})
		if err != nil {
			return nil, err
		}
		name := "trace-based backward"
		if naive {
			name = "naive first-match"
		}
		inst, err := engine.ColdStart(engine.Options{
			Model: cfg, Strategy: engine.StrategyMedusa, Seed: c.NextSeed(),
			Store: store, CaptureSizes: sizes, Artifact: art,
		})
		if err != nil {
			r.AddRow(name, "FAILED (restore error)", err.Error())
			continue
		}
		bad := 0
		for _, b := range sizes {
			if _, err := inst.RunValidationForward(b, 3); err != nil {
				bad++
			}
		}
		if bad == 0 {
			r.AddRow(name, "OK", "all restored graphs replay correctly")
		} else {
			r.AddRow(name, "CORRUPTED", fmt.Sprintf("%d/%d graphs fail replay", bad, len(sizes)))
		}
	}
	r.AddNote("first-match resolves reused addresses to stale allocations (Figure 6), corrupting restored graphs")
	return r, nil
}

// runAblationCopyFree measures what §4.3's copy-free classification
// saves: artifact size with and without dumping every referenced
// buffer.
func runAblationCopyFree(c *Context) (*Report, error) {
	r := &Report{
		ID:     "ablation-copyfree",
		Title:  "Copy-free buffer content restoration: saved bytes",
		Header: []string{"model", "artifact (MB)", "dump-all buffers (MB)", "saved"},
	}
	for _, name := range []string{"Qwen1.5-0.5B", "Qwen1.5-4B", "Llama2-7B"} {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		art, size, _, err := c.Artifact(cfg)
		if err != nil {
			return nil, err
		}
		// Dump-all alternative: every buffer a graph pointer references
		// would be serialized. Sum the distinct referenced allocation
		// sizes from the materialized sequence.
		sizeByIndex := map[int]uint64{}
		for _, ev := range art.AllocSeq {
			if !ev.Free {
				sizeByIndex[ev.AllocIndex] = ev.Size
			}
		}
		referenced := map[int]bool{}
		var dumpBytes uint64
		for _, g := range art.Graphs {
			for _, n := range g.Nodes {
				for _, p := range n.Params {
					if p.Pointer && !referenced[p.AllocIndex] {
						referenced[p.AllocIndex] = true
						dumpBytes += sizeByIndex[p.AllocIndex]
					}
				}
			}
		}
		dumpTotal := size + dumpBytes
		r.AddRow(name,
			fmt.Sprintf("%.2f", float64(size)/(1<<20)),
			fmt.Sprintf("%.2f", float64(dumpTotal)/(1<<20)),
			pct(1-float64(size)/float64(dumpTotal)))
	}
	r.AddNote("copy-free restoration saves only permanent buffers (4-byte magics); weights and temporaries are skipped (§4.3)")
	return r, nil
}

// runAblationKernelResolve reports how many kernels each restoration
// route covers: dlsym for exported symbols, module enumeration for the
// hidden cuBLAS variants.
func runAblationKernelResolve(c *Context) (*Report, error) {
	r := &Report{
		ID:     "ablation-resolve",
		Title:  "Kernel address restoration routes",
		Header: []string{"model", "kernels", "dlsym-resolvable", "hidden (need triggering)", "dlsym share"},
	}
	for _, name := range []string{"Llama2-13B", "Qwen1.5-4B", "Falcon-7B"} {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		art, _, _, err := c.Artifact(cfg)
		if err != nil {
			return nil, err
		}
		exported, hidden := 0, 0
		for _, loc := range art.Kernels {
			if loc.Exported {
				exported++
			} else {
				hidden++
			}
		}
		total := exported + hidden
		r.AddRow(name, fmt.Sprintf("%d", total), fmt.Sprintf("%d", exported),
			fmt.Sprintf("%d", hidden), pct(float64(exported)/float64(total)))
	}
	r.AddNote("paper: 69.2%% of kernels (Llama2-13B, batch 1) restore via dlsym; the rest are hidden cuBLAS kernels requiring triggering-kernels + cuModuleEnumerateFunctions")
	return r, nil
}

// runAblationTriggering compares hidden-kernel resolution with and
// without the first-layer triggering step: without it, restoration must
// fail for every graph containing a hidden GEMM.
func runAblationTriggering(c *Context) (*Report, error) {
	r := &Report{
		ID:     "ablation-trigger",
		Title:  "Triggering-kernels: restoration with vs without first-layer warm-up",
		Header: []string{"mode", "outcome"},
	}
	store := storage.NewStore(storage.DefaultArray())
	cfg := model.TestTiny("ablate-trigger")
	sizes := []int{1, 2}
	art, report, err := engine.RunOffline(engine.OfflineOptions{
		Model: cfg, Store: store, Seed: c.NextSeed(), CaptureSizes: sizes,
	})
	if err != nil {
		return nil, err
	}
	// First-layer capture (the paper's final design).
	fl, err := engine.ColdStart(engine.Options{
		Model: cfg, Strategy: engine.StrategyMedusa, Seed: c.NextSeed(),
		Store: store, CaptureSizes: sizes, Artifact: art, ArtifactBytes: report.ArtifactBytes,
		TriggerMode: engine.TriggerFirstLayer,
	})
	if err != nil {
		return nil, err
	}
	r.AddRow("first-layer triggering (§5.2)",
		fmt.Sprintf("all graphs restored (restore stage %ss)",
			secs(fl.Timeline().StageDuration(engine.StageCapture))))

	// Handwritten triggering-kernels (the paper's first approach).
	hw, err := engine.ColdStart(engine.Options{
		Model: cfg, Strategy: engine.StrategyMedusa, Seed: c.NextSeed(),
		Store: store, CaptureSizes: sizes, Artifact: art, ArtifactBytes: report.ArtifactBytes,
		TriggerMode: engine.TriggerHandwritten,
	})
	if err != nil {
		return nil, err
	}
	r.AddRow("handwritten triggering (§5.1)",
		fmt.Sprintf("all graphs restored (restore stage %ss; needs per-batch curation)",
			secs(hw.Timeline().StageDuration(engine.StageCapture))))

	// Without: drive the restorer by hand with a nil trigger.
	p := cuda.NewProcess(kernels.NewRuntime(), vclock.New(),
		cuda.Config{Seed: c.NextSeed(), Mode: gpu.Functional})
	rest, err := medusa.NewRestorer(p, art)
	if err != nil {
		return nil, err
	}
	// Replay the natural prefix by reissuing the recorded allocations
	// (no engine control flow here, so everything is explicit replay).
	if err := rest.ReplayPrefix(); err == nil {
		if err := rest.ReplayCaptureStage(); err == nil {
			if _, err := rest.RestoreGraphs(nil); err != nil {
				r.AddRow("no triggering-kernels", fmt.Sprintf("FAILED as expected: %v", err))
			} else {
				r.AddRow("no triggering-kernels", "unexpectedly succeeded")
			}
		}
	}
	r.AddNote("hidden cuBLAS kernels are invisible to dlsym; without a module load there is no address to restore (§5)")
	return r, nil
}
