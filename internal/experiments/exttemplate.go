package experiments

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/cluster"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/vclock"
	"github.com/medusa-repro/medusa/internal/workload"
)

func init() {
	register("ext-template", runExtTemplate)
}

// runExtTemplate measures template-based artifact sharing (wire format
// v3) on the cache-policy fleet: ten zoo models across all three
// architecture families, Zipf popularity, two nodes. Artifacts factor
// into one shared per-family template plus a small per-model delta;
// the sweep compares the registry footprint and the fleet's cold-fetch
// traffic against self-contained v2 artifacts on the same seeded
// trace. The templates+deltas registry must come in at least 5x
// smaller — the acceptance floor; the measured factor lands well above
// it (see docs/ARTIFACT_FORMAT.md for why sibling graphs delta so
// small).
func runExtTemplate(c *Context) (*Report, error) {
	cfgs := make([]model.Config, 0, len(cachePolicyModels))
	for _, name := range cachePolicyModels {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	if err := c.PrefetchArtifacts(cfgs, 0); err != nil {
		return nil, err
	}

	arts := make([]*medusa.Artifact, len(cfgs))
	fullSizes := make([]uint64, len(cfgs))
	for i, cfg := range cfgs {
		art, size, _, err := c.Artifact(cfg)
		if err != nil {
			return nil, err
		}
		arts[i], fullSizes[i] = art, size
	}
	templates, err := engine.BuildFleetTemplates(c.Store, vclock.New(), cfgs, arts)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:     "ext-template",
		Title:  "Extension: template-based artifact sharing (10 models, 3 families, Zipf fleet)",
		Header: []string{"model", "family", "full KiB", "delta KiB", "ratio"},
	}

	var fullTotal, sharedTotal uint64
	deltaSizes := make([]uint64, len(cfgs))
	for i, cfg := range cfgs {
		delta, err := arts[i].EncodeDelta(templates[cfg.Family])
		if err != nil {
			return nil, fmt.Errorf("delta-encoding %s: %w", cfg.Name, err)
		}
		deltaSizes[i] = uint64(len(delta))
		fullTotal += fullSizes[i]
		sharedTotal += deltaSizes[i]
		r.AddRow(cfg.Name, string(cfg.Family),
			fmt.Sprintf("%.0f", float64(fullSizes[i])/1024),
			fmt.Sprintf("%.0f", float64(deltaSizes[i])/1024),
			fmt.Sprintf("%.1fx", float64(fullSizes[i])/float64(deltaSizes[i])))
	}
	var tmplTotal uint64
	for _, fam := range []model.Family{model.FamilyStandard, model.FamilyFused, model.FamilyParallel} {
		if t, ok := templates[fam]; ok {
			sz := uint64(len(t.Encode()))
			tmplTotal += sz
			r.AddRow("template/"+string(fam), string(fam),
				"-", fmt.Sprintf("%.0f", float64(sz)/1024), "-")
		}
	}
	sharedTotal += tmplTotal
	dedup := float64(fullTotal) / float64(sharedTotal)
	r.SetMetric("registry_dedup_factor", dedup)
	r.AddNote("registry footprint: %.1f MiB self-contained vs %.2f MiB templates+deltas (%.1fx dedup; acceptance floor 5x)",
		float64(fullTotal)/(1<<20), float64(sharedTotal)/(1<<20), dedup)

	// Fleet comparison: the same seeded Zipf trace served twice — with
	// self-contained v2 artifacts, then template-factored — on the
	// cache-policy fleet geometry (tight tiers, so smaller objects also
	// mean fewer evictions, not just cheaper misses).
	mkDeps := func(withTemplates bool) ([]serverless.Deployment, error) {
		deps := make([]serverless.Deployment, 0, len(cfgs))
		for i, cfg := range cfgs {
			spec := serverless.CacheSpec{Artifact: arts[i], ArtifactBytes: fullSizes[i]}
			if withTemplates {
				spec.Template = templates[cfg.Family]
				spec.ArtifactBytes = deltaSizes[i]
			}
			deps = append(deps, serverless.Deployment{
				Name: cfg.Name,
				Config: serverless.Config{
					Model: cfg, Strategy: engine.StrategyMedusa,
					Store: c.Store, Cache: spec,
					Seed:      int64(i + 1),
					Scheduler: serverless.Scheduler{IdleTimeout: 150 * time.Millisecond},
				},
			})
		}
		trace, err := workload.Generate(workload.TraceConfig{
			Seed: 41, RPS: 4, Duration: 40 * time.Second,
			MeanOutput: 16, MaxOutput: 32,
		})
		if err != nil {
			return nil, err
		}
		return cluster.ZipfDeployments(deps, trace, 43, 1.2)
	}
	params := artifactcache.DefaultParams()
	params.RAMBytes = 2 << 20
	params.SSDBytes = 6 << 20
	base := cluster.Config{
		Nodes: 2, GPUsPerNode: 4,
		Cache:          params,
		LocalityWeight: 0.8,
		Seed:           7,
	}

	r2 := &Report{
		ID:    "ext-template/fleet",
		Title: "same seeded Zipf trace, self-contained vs template-factored registry",
		Header: []string{"artifacts", "cold fetch MB", "hit rate",
			"ram/ssd/miss", "cold start p50(s)", "cold start p99(s)", "TTFT p99(s)"},
	}
	var fetched [2]uint64
	for mode, withTemplates := range []bool{false, true} {
		deps, err := mkDeps(withTemplates)
		if err != nil {
			return nil, err
		}
		cfg := base
		cfg.Deployments = deps
		res, err := cluster.Run(cfg)
		if err != nil {
			return nil, err
		}
		cs, ttft := &metrics.Sample{}, &metrics.Sample{}
		for _, d := range res.PerDeployment {
			cs.AddAll(d.ColdStart)
			ttft.AddAll(d.TTFT)
		}
		st := res.Cache
		fetched[mode] = st.BytesFetched
		label := "self-contained v2"
		if withTemplates {
			label = "template+delta v3"
		}
		r2.AddRow(label,
			fmt.Sprintf("%.1f", float64(st.BytesFetched)/(1<<20)),
			pct(st.HitRate()),
			fmt.Sprintf("%d/%d/%d", st.RAMHits, st.SSDHits, st.Misses),
			secs(cs.P50()), secs(cs.P99()), secs(ttft.P99()))
	}
	r.AddChart(r2.Render())
	if fetched[1] > 0 {
		r.SetMetric("cold_fetch_reduction", float64(fetched[0])/float64(fetched[1]))
		r.AddNote("cold-fetch traffic: %.1f MiB → %.1f MiB (%.1fx less over the same seeded trace); the shared template transfers once per node and stays resident while deltas stream through",
			float64(fetched[0])/(1<<20), float64(fetched[1])/(1<<20),
			float64(fetched[0])/float64(fetched[1]))
	}
	return r, nil
}
