package experiments

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/cluster"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/sched"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

func init() {
	register("ext-batching", runExtBatching)
}

// batchingModels are the two deployments the batching sweep co-locates;
// the Zipf split skews traffic toward the first.
var batchingModels = []string{"Qwen1.5-0.5B", "Qwen1.5-1.8B"}

// batchingSLO is the TTFT bound goodput counts against.
const batchingSLO = time.Second

// runExtBatching sweeps continuous batching's two capacity knobs — the
// per-iteration token budget and the paged-KV pool size — against
// workload skew, on the two-node fleet simulator in batched execution
// mode. Small KV pools force the scheduler to preempt decodes under
// memory pressure (recompute-on-resume), trading TPOT for admission;
// large budgets admit more prefill chunks per iteration, trading TTFT
// for decode latency. Goodput counts only requests whose TTFT met the
// SLO. With -batch-tokens set on the medusa-bench command line the
// built-in grid is replaced by that single cell.
func runExtBatching(c *Context) (*Report, error) {
	cfgs := make([]model.Config, 0, len(batchingModels))
	for _, name := range batchingModels {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	if err := c.PrefetchArtifacts(cfgs, 0); err != nil {
		return nil, err
	}

	type cell struct {
		batch sched.Params
		zipf  float64
	}
	var cells []cell
	if c.Batch.Enabled() {
		// The command line pinned the batching knobs: run one cell per
		// skew level instead of the built-in grid.
		for _, z := range []float64{1.1, 2.0} {
			cells = append(cells, cell{batch: c.Batch, zipf: z})
		}
	} else {
		for _, bt := range []int{256, 1024} {
			for _, kv := range []int{48, 256} {
				for _, z := range []float64{1.1, 2.0} {
					cells = append(cells, cell{
						batch: sched.Params{BatchTokens: bt, KVBlocks: kv, ChunkedPrefill: true},
						zipf:  z,
					})
				}
			}
		}
	}

	// Prompts and outputs are clamped so the largest request needs 40 KV
	// blocks: the 48-block cells fit barely one worst-case sequence and
	// preempt under concurrency, while 256 blocks decode unhindered.
	mkDeps := func(batch sched.Params, zipf float64) ([]serverless.Deployment, error) {
		deps := make([]serverless.Deployment, 0, len(cfgs))
		for i, cfg := range cfgs {
			art, size, _, err := c.Artifact(cfg)
			if err != nil {
				return nil, err
			}
			deps = append(deps, serverless.Deployment{
				Name: cfg.Name,
				Config: serverless.Config{
					Model: cfg, Strategy: engine.StrategyMedusa,
					Store: c.Store, Cache: serverless.CacheSpec{Artifact: art, ArtifactBytes: size},
					Seed:      int64(i + 1),
					Scheduler: serverless.Scheduler{Batch: batch},
				},
			})
		}
		trace, err := workload.Generate(workload.TraceConfig{
			Seed: 61, RPS: 12, Duration: 40 * time.Second,
			MaxPrompt: 512, MeanOutput: 64, MaxOutput: 128,
		})
		if err != nil {
			return nil, err
		}
		return cluster.ZipfDeployments(deps, trace, 67, zipf)
	}

	r := &Report{
		ID:    "ext-batching",
		Title: "Extension: continuous batching — token budget × KV blocks × workload skew (2 nodes, batched execution)",
		Header: []string{"batch tokens", "KV blocks", "zipf", "TTFT p50(s)", "TTFT p99(s)",
			"TPOT p50(ms)", "preempt", "goodput (req/s)", "completed"},
	}
	for _, cl := range cells {
		deps, err := mkDeps(cl.batch, cl.zipf)
		if err != nil {
			return nil, err
		}
		res, err := cluster.Run(cluster.Config{
			Nodes: 2, GPUsPerNode: 2,
			Cache:          artifactcache.DefaultParams(),
			LocalityWeight: 0.8,
			Seed:           7,
			Deployments:    deps,
		})
		if err != nil {
			return nil, err
		}
		ttft, tpot := &metrics.Sample{}, &metrics.Sample{}
		completed, preempted := 0, 0
		for _, d := range res.PerDeployment {
			ttft.AddAll(d.TTFT)
			if d.TPOT != nil {
				tpot.AddAll(d.TPOT)
			}
			completed += d.Completed
			preempted += d.Preemptions
		}
		goodput := 0.0
		if res.Makespan > 0 {
			goodput = ttft.FractionBelow(batchingSLO) * float64(completed) / res.Makespan.Seconds()
		}
		r.AddRow(
			fmt.Sprintf("%d", cl.batch.BatchTokens),
			fmt.Sprintf("%d", cl.batch.KVBlocks),
			fmt.Sprintf("%.1f", cl.zipf),
			secs(ttft.P50()), secs(ttft.P99()),
			fmt.Sprintf("%.2f", float64(tpot.P50().Microseconds())/1000),
			fmt.Sprintf("%d", preempted),
			fmt.Sprintf("%.2f", goodput),
			fmt.Sprintf("%d", completed))
	}
	r.AddNote("goodput counts only requests with TTFT ≤ %v; preemptions release a victim's KV blocks and recompute its prefix on resume, so tight pools (48 blocks ≈ 1.2 worst-case sequences) trade TPOT and preemption churn for admission", batchingSLO)
	return r, nil
}
