package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestReportRenderAlignment(t *testing.T) {
	r := &Report{
		ID:     "x",
		Title:  "alignment",
		Header: []string{"a", "long-header"},
	}
	r.AddRow("value-longer-than-header", "v")
	r.AddRow("s", "w")
	out := r.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, separator, two rows.
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	// Columns align: the second field starts at the same offset on the
	// header and the data rows.
	idx1 := strings.Index(lines[1], "long-header")
	idx4 := strings.Index(lines[4], "w")
	if idx1 < 0 || idx1 != idx4 {
		t.Fatalf("misaligned columns (%d vs %d):\n%s", idx1, idx4, out)
	}
}

func TestReportCSV(t *testing.T) {
	r := &Report{
		ID:     "x",
		Title:  "csv",
		Header: []string{"model", "value"},
	}
	r.AddRow("a,with,commas", "1")
	r.AddRow("plain", "2")
	r.AddNote("a note with %d datum", 1)
	out := r.RenderCSV()
	if !strings.HasPrefix(out, "model,value\n") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "\"a,with,commas\",1") {
		t.Fatalf("CSV quoting broken:\n%s", out)
	}
	if !strings.Contains(out, "# a note with 1 datum") {
		t.Fatalf("CSV notes missing:\n%s", out)
	}
}

func TestReportMetrics(t *testing.T) {
	r := &Report{ID: "x"}
	r.SetMetric("speedup", 2.4)
	r.SetMetric("nodes", 139364)
	if r.Metrics["speedup"] != 2.4 || r.Metrics["nodes"] != 139364 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
}

func TestHelpers(t *testing.T) {
	if secs(1500*time.Millisecond) != "1.500" {
		t.Fatalf("secs = %q", secs(1500*time.Millisecond))
	}
	if pct(0.425) != "42.5%" {
		t.Fatalf("pct = %q", pct(0.425))
	}
}
