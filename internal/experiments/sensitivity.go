package experiments

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/storage"
)

func init() {
	register("ext-sensitivity", runSensitivity)
}

// sensitivityPoint is one perturbation of the calibrated cost model.
type sensitivityPoint struct {
	name      string
	bandwidth float64 // SSD effective bandwidth, bytes/s
	tuning    *engine.Tuning
}

// runSensitivity perturbs the cost-model knobs the headline result
// could plausibly be sensitive to — storage bandwidth (how fast weights
// stream), kernel launch overhead (how expensive the capture stage's
// warm-ups are), and graph instantiation cost (how expensive both
// vanilla capture and Medusa's restore are) — and reports Medusa's
// loading-phase reduction at each point. A simulation-backed
// reproduction is only credible if its conclusion survives this.
func runSensitivity(c *Context) (*Report, error) {
	cfg, err := model.ByName("Qwen1.5-4B")
	if err != nil {
		return nil, err
	}
	points := []sensitivityPoint{
		{name: "calibrated (19 GB/s, 6µs, 32µs)"},
		{name: "slow SSD (6 GB/s)", bandwidth: 6e9},
		{name: "fast SSD (38 GB/s)", bandwidth: 38e9},
		{name: "cheap launches (3µs)", tuning: &engine.Tuning{LaunchOverhead: 3 * time.Microsecond}},
		{name: "costly launches (12µs)", tuning: &engine.Tuning{LaunchOverhead: 12 * time.Microsecond}},
		{name: "cheap instantiate (16µs)", tuning: &engine.Tuning{InstantiateNodeCost: 16 * time.Microsecond}},
		{name: "costly instantiate (64µs)", tuning: &engine.Tuning{InstantiateNodeCost: 64 * time.Microsecond}},
		{name: "slow module loads (4ms)", tuning: &engine.Tuning{ModuleLoadCost: 4 * time.Millisecond}},
	}
	r := &Report{
		ID:     "ext-sensitivity",
		Title:  "Extension: cost-model sensitivity of the headline reduction (Qwen1.5-4B)",
		Header: []string{"perturbation", "vLLM load(s)", "MEDUSA load(s)", "reduction"},
	}
	worst, best := 1.0, 0.0
	for _, pt := range points {
		arr := storage.DefaultArray()
		if pt.bandwidth > 0 {
			arr.Bandwidth = pt.bandwidth
		}
		store := storage.NewStore(arr)
		art, report, err := engine.RunOffline(engine.OfflineOptions{
			Model: cfg, Store: store, Seed: c.NextSeed(),
		})
		if err != nil {
			return nil, fmt.Errorf("%s: offline: %w", pt.name, err)
		}
		vllm, err := engine.ColdStart(engine.Options{
			Model: cfg, Strategy: engine.StrategyVLLM, Seed: c.NextSeed(),
			Store: store, Tuning: pt.tuning,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: vLLM: %w", pt.name, err)
		}
		med, err := engine.ColdStart(engine.Options{
			Model: cfg, Strategy: engine.StrategyMedusa, Seed: c.NextSeed(),
			Store: store, Tuning: pt.tuning,
			Artifact: art, ArtifactBytes: report.ArtifactBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: Medusa: %w", pt.name, err)
		}
		red := metrics.Reduction(vllm.LoadingDuration(), med.LoadingDuration())
		if red < worst {
			worst = red
		}
		if red > best {
			best = red
		}
		r.AddRow(pt.name, secs(vllm.LoadingDuration()), secs(med.LoadingDuration()), pct(red))
	}
	r.AddNote("Medusa's loading reduction spans %s–%s across all perturbations — the paper's 41.4%% (Qwen1.5-4B) conclusion is not an artifact of one calibration point", pct(worst), pct(best))
	r.SetMetric("min_reduction_pct", worst*100)
	r.SetMetric("max_reduction_pct", best*100)
	return r, nil
}
