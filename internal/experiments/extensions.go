package experiments

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// workloadTrace generates a standard ShareGPT-shaped Poisson trace.
func workloadTrace(seed int64, rps float64, seconds int) ([]workload.Request, error) {
	return workload.Generate(workload.TraceConfig{
		Seed: seed, RPS: rps, Duration: time.Duration(seconds) * time.Second,
	})
}

// serverlessRun aliases the cluster simulator entry point.
var serverlessRun = serverless.Run

func init() {
	register("ext-checkpoint", runExtCheckpoint)
	register("ext-multigpu", runExtMultiGPU)
	register("ext-deferred", runExtDeferred)
}

// runExtCheckpoint compares Medusa against the full checkpoint/restore
// baseline of §9's related work: restore latency versus persisted state
// size. Checkpoints can restore fast, but each image is gigabytes per
// <model, GPU, configuration>, while Medusa's artifacts are megabytes
// and compose with the weight files the fleet already stores.
func runExtCheckpoint(c *Context) (*Report, error) {
	r := &Report{
		ID:    "ext-checkpoint",
		Title: "Extension: Medusa vs full checkpoint/restore",
		Header: []string{"model", "vLLM load(s)", "MEDUSA load(s)", "CKPT restore(s)",
			"MEDUSA artifact", "checkpoint image"},
	}
	for _, name := range []string{"Qwen1.5-0.5B", "Qwen1.5-4B", "Llama2-13B"} {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		vllm, err := c.Baseline(cfg)
		if err != nil {
			return nil, err
		}
		ckptBytes, err := engine.TakeCheckpoint(vllm)
		if err != nil {
			return nil, err
		}
		med, err := c.ColdStart(cfg, engine.StrategyMedusa, false)
		if err != nil {
			return nil, err
		}
		_, artBytes, _, err := c.Artifact(cfg)
		if err != nil {
			return nil, err
		}
		ckpt, err := engine.ColdStart(engine.Options{
			Model: cfg, Strategy: engine.StrategyCheckpoint, Seed: c.NextSeed(),
			Store: c.Store, CheckpointBytes: ckptBytes,
		})
		if err != nil {
			return nil, err
		}
		r.AddRow(cfg.Name,
			secs(vllm.LoadingDuration()),
			secs(med.LoadingDuration()),
			secs(ckpt.LoadingDuration()),
			fmt.Sprintf("%.2f MB", float64(artBytes)/(1<<20)),
			fmt.Sprintf("%.2f GB", float64(ckptBytes)/(1<<30)))
	}
	r.AddNote("checkpoints restore competitively but persist 1000x more state per <model, GPU, config> and cannot reuse shared weight files; Medusa materializes only graph + KV-init state (§9)")
	return r, nil
}

// runExtMultiGPU exercises the §8 future-work direction: tensor-
// parallel instances. Each rank materializes and restores its own
// shard independently — per-rank indirect index pointer tables — and
// the cold start is the slowest rank plus synchronization.
func runExtMultiGPU(c *Context) (*Report, error) {
	r := &Report{
		ID:     "ext-multigpu",
		Title:  "Extension: tensor-parallel cold starts (per-rank materialization, §8)",
		Header: []string{"model", "TP", "vLLM load(s)", "MEDUSA load(s)", "reduction"},
	}
	cfg, err := model.ByName("Llama2-13B")
	if err != nil {
		return nil, err
	}
	for _, degree := range []int{1, 2, 4} {
		v, err := engine.TPColdStart(engine.TPOptions{
			Model: cfg, Degree: degree, Strategy: engine.StrategyVLLM,
			Store: c.Store, Seed: c.NextSeed(),
		})
		if err != nil {
			return nil, err
		}
		m, err := engine.TPColdStart(engine.TPOptions{
			Model: cfg, Degree: degree, Strategy: engine.StrategyMedusa,
			Store: c.Store, Seed: c.NextSeed(),
		})
		if err != nil {
			return nil, err
		}
		r.AddRow(cfg.Name, fmt.Sprintf("%d", degree),
			secs(v.LoadingDuration), secs(m.LoadingDuration),
			pct(1-float64(m.LoadingDuration)/float64(v.LoadingDuration)))
	}
	r.AddNote("each rank holds 1/TP of the weights: struct init, weight streaming and per-rank capture all shrink, while Medusa's restore stays proportional to the (unchanged) node count — reductions persist across TP degrees")

	// Serving-level check: a TP=2 cluster (two instances on four GPUs)
	// under a short trace, scale-from-zero.
	reqs, err := workloadTrace(4242, 4, 30)
	if err != nil {
		return nil, err
	}
	for _, s := range []engine.Strategy{engine.StrategyVLLM, engine.StrategyMedusa} {
		res, err := serverlessRun(serverless.Config{
			Model: cfg, Strategy: s, Store: c.Store,
			NumGPUs: 4, TPDegree: 2, Seed: c.NextSeed(),
		}, reqs)
		if err != nil {
			return nil, err
		}
		r.AddNote("TP=2 trace (4 RPS, scale from zero): %s p99 TTFT %ss over %d requests",
			s, secs(res.TTFT.P99()), res.Completed)
	}
	return r, nil
}

// runExtDeferred quantifies §2.4's third strawman: deferring CUDA graph
// capture to serving time shortens the cold start but "merely delays
// and disperses" the latency — the first request of every batch size
// eats a capture inside its serving path.
func runExtDeferred(c *Context) (*Report, error) {
	cfg, err := model.ByName("Qwen1.5-4B")
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "ext-deferred",
		Title:  "Extension: deferred capture (§2.4) vs eliminating capture (Medusa)",
		Header: []string{"strategy", "cold start (s)", "p50 TTFT (s)", "p90 TTFT (s)", "p99 TTFT (s)"},
	}
	reqs, err := workloadTrace(90125, 10, 60)
	if err != nil {
		return nil, err
	}
	for _, s := range []engine.Strategy{engine.StrategyVLLM, engine.StrategyDeferred, engine.StrategyMedusa} {
		sc, err := c.simConfig(cfg, s)
		if err != nil {
			return nil, err
		}
		res, err := serverlessRun(sc, reqs)
		if err != nil {
			return nil, err
		}
		inst, err := c.ColdStart(cfg, s, false)
		if err != nil {
			return nil, err
		}
		r.AddRow(s.String(), secs(inst.LoadingDuration()),
			secs(res.TTFT.P50()), secs(res.TTFT.Percentile(90)), secs(res.TTFT.P99()))
	}
	r.AddNote("deferred capture matches w/o-graph cold starts but pays warm-up+capture on first use of every batch size; Medusa removes the cost instead of moving it")
	return r, nil
}
