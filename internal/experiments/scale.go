package experiments

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/cluster"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/replicate"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

func init() {
	register("ext-scale", runExtScale)
}

// scaleModels is the fleet the replication sweep co-locates — the
// six smallest zoo models, so the sweep's cost is profile-dominated
// rather than artifact-dominated.
var scaleModels = []string{
	"Qwen1.5-0.5B", "Qwen1.5-1.8B", "Qwen1.5-4B", "Llama2-7B", "Yi-6B", "Falcon-7B",
}

// extScaleReps is the sweep's replication count: enough for a
// meaningful confidence interval, small enough for the test suite.
const extScaleReps = 5

// scaleRepStats is one replication's scalar outcome.
type scaleRepStats struct {
	completed  int
	coldStarts int
	p99TTFT    time.Duration
	makespan   time.Duration
	gpuSeconds float64
}

// runExtScale exercises the scaled simulator core end to end: each
// replication streams an independently-seeded Poisson arrival process
// through a Zipf-popularity fleet (pull-based arrivals, O(active)
// request state, bounded reservoir quantiles) and the replications run
// on a worker pool. Every replication is a pure function of its index,
// so the table — and the mean ± 95% CI summary — is byte-identical
// however many workers the pool uses.
func runExtScale(c *Context) (*Report, error) {
	cfgs := make([]model.Config, 0, len(scaleModels))
	for _, name := range scaleModels {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	if err := c.PrefetchArtifacts(cfgs, 0); err != nil {
		return nil, err
	}

	runRep := func(rep int) (scaleRepStats, error) {
		deps := make([]serverless.Deployment, 0, len(cfgs))
		for i, cfg := range cfgs {
			art, size, _, err := c.Artifact(cfg)
			if err != nil {
				return scaleRepStats{}, err
			}
			deps = append(deps, serverless.Deployment{
				Name: cfg.Name,
				Config: serverless.Config{
					Model: cfg, Strategy: engine.StrategyMedusa,
					Store: c.Store, Cache: serverless.CacheSpec{Artifact: art, ArtifactBytes: size},
					Seed:      int64(i + 1),
					Scheduler: serverless.Scheduler{IdleTimeout: 200 * time.Millisecond},
				},
			})
		}
		src, err := workload.NewPoisson(workload.TraceConfig{
			Seed: 1000 + int64(rep), RPS: 30, Duration: 40 * time.Second,
			MeanOutput: 8, MaxOutput: 16,
		})
		if err != nil {
			return scaleRepStats{}, err
		}
		arrivals, err := cluster.ZipfArrivals(src, len(deps), 43+int64(rep), 1.2)
		if err != nil {
			return scaleRepStats{}, err
		}
		res, err := cluster.Run(cluster.Config{
			Nodes: 3, Seed: 7 + int64(rep),
			Deployments: deps,
			Arrivals:    arrivals,
		})
		if err != nil {
			return scaleRepStats{}, err
		}
		// Fleet-wide TTFT: merge the per-deployment samples (the merge
		// is deterministic — reservoir offers in deployment order).
		fleet := &metrics.Sample{}
		st := scaleRepStats{makespan: res.Makespan, gpuSeconds: res.GPUSeconds, coldStarts: res.TotalColdStarts}
		for _, d := range res.PerDeployment {
			st.completed += d.Completed
			fleet.AddAll(d.TTFT)
		}
		st.p99TTFT = fleet.P99()
		return st, nil
	}

	// workers=0: one worker per core. Determinism does not depend on
	// the worker count; TestExtScaleWorkerInvariance pins that.
	stats, err := replicate.Run(extScaleReps, 0, runRep)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:     "ext-scale",
		Title:  "Extension: replicated Zipf-fleet sweep on the streaming simulator core",
		Header: []string{"rep", "completed", "cold starts", "p99 TTFT (s)", "makespan (s)", "GPU-seconds"},
	}
	var p99s, colds, gpus []float64
	for rep, st := range stats {
		p99s = append(p99s, st.p99TTFT.Seconds())
		colds = append(colds, float64(st.coldStarts))
		gpus = append(gpus, st.gpuSeconds)
		r.AddRow(fmt.Sprintf("%d", rep), fmt.Sprintf("%d", st.completed),
			fmt.Sprintf("%d", st.coldStarts), secs(st.p99TTFT),
			secs(st.makespan), fmt.Sprintf("%.1f", st.gpuSeconds))
	}
	p99Mean, p99CI := metrics.MeanCI(p99s)
	coldMean, coldCI := metrics.MeanCI(colds)
	gpuMean, gpuCI := metrics.MeanCI(gpus)
	r.SetMetric("p99_ttft_mean_s", p99Mean)
	r.SetMetric("p99_ttft_ci95_s", p99CI)
	r.AddNote("across %d independent-seed replications: p99 TTFT %.3f ± %.3f s, cold starts %.1f ± %.1f, GPU-seconds %.1f ± %.1f (mean ± 95%% CI)",
		extScaleReps, p99Mean, p99CI, coldMean, coldCI, gpuMean, gpuCI)
	r.AddNote("arrivals stream through a pull-based Zipf split (no materialized trace) and replications run on a worker pool; both are byte-deterministic — medusa-simulate -reps N -parallel scales the same machinery to 10M-request runs")
	return r, nil
}
