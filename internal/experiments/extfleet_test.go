package experiments

import (
	"strconv"
	"testing"
)

// fleetRow is one parsed ext-fleet sweep cell.
type fleetRow struct {
	scaler, route string
	skew          string
	attainment    float64
	nodeSeconds   float64
}

func parseFleetRows(t *testing.T, rows [][]string) []fleetRow {
	t.Helper()
	out := make([]fleetRow, 0, len(rows))
	for _, row := range rows {
		att, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad attainment %q", row[4])
		}
		ns, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("bad node-seconds %q", row[5])
		}
		out = append(out, fleetRow{
			scaler: row[0], route: row[1], skew: row[2],
			attainment: att, nodeSeconds: ns,
		})
	}
	return out
}

// TestExtFleetSweep runs the control-plane sweep and pins its headline
// claim: on at least one cell, predictive autoscaling with the
// locality-aware score router strictly dominates the reactive baseline
// — higher SLO attainment at equal or lower node-seconds, against
// every reactive row at the same skew. The experiment is seeded, so a
// regression in any control-plane layer (forecaster, retention veto,
// router scoring, placement) surfaces here as a lost dominance cell.
func TestExtFleetSweep(t *testing.T) {
	r := runExp(t, "ext-fleet")
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 2 autoscalers × 2 routers × 2 skews", len(r.Rows))
	}
	rows := parseFleetRows(t, r.Rows)
	dominated := false
	for _, p := range rows {
		if p.scaler != "predictive" || p.route != "score" {
			continue
		}
		beatsAll := true
		for _, q := range rows {
			if q.scaler != "reactive" || q.skew != p.skew {
				continue
			}
			if p.attainment <= q.attainment || p.nodeSeconds > q.nodeSeconds {
				beatsAll = false
				break
			}
		}
		if beatsAll {
			dominated = true
			break
		}
	}
	if !dominated {
		t.Fatalf("no cell where predictive+score dominates the reactive baseline:\n%s", r.Render())
	}
}
