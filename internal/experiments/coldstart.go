package experiments

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/plot"
	"github.com/medusa-repro/medusa/internal/trace"
	"github.com/medusa-repro/medusa/internal/workload"
)

func init() {
	register("table1", runTable1)
	register("fig1", runFigure1)
	register("fig2", runFigure2)
	register("fig3", runFigure3)
	register("fig7", runFigure7)
	register("fig8", runFigure8)
	register("fig9", runFigure9)
}

// runTable1 reproduces Table 1: parameter sizes and measured CUDA graph
// node counts over the 35 standard capture batch sizes.
func runTable1(c *Context) (*Report, error) {
	r := &Report{
		ID:     "table1",
		Title:  "Models, parameter sizes, and CUDA graph node counts (35 batch sizes)",
		Header: []string{"model", "parameter size", "CUDA graph nodes", "paper"},
	}
	paper := map[string]int{
		"Falcon-7B": 14406, "Llama2-7B": 12518, "Llama2-13B": 16150,
		"Qwen1.5-0.5B": 9118, "Qwen1.5-1.8B": 9550, "Qwen1.5-4B": 16150,
		"Qwen1.5-7B": 12902, "Qwen1.5-14B": 16350, "Yi-6B": 12902, "Yi-9B": 19318,
	}
	total := 0
	for _, cfg := range model.Zoo() {
		inst, err := c.Baseline(cfg)
		if err != nil {
			return nil, err
		}
		nodes := inst.GraphNodeTotal()
		total += nodes
		r.AddRow(cfg.Name,
			fmt.Sprintf("%.1fGB", float64(cfg.ParamBytes)/(1<<30)),
			fmt.Sprintf("%d", nodes),
			fmt.Sprintf("%d", paper[cfg.Name]))
	}
	r.AddNote("total nodes across all models: %d (paper: %d)", total, model.PaperTotalGraphNodes)
	r.SetMetric("total_graph_nodes", float64(total))
	return r, nil
}

// runFigure1 reproduces Figure 1: the cold-start timeline of Qwen1.5-4B
// under vanilla vLLM, split into runtime init / loading / first token.
func runFigure1(c *Context) (*Report, error) {
	cfg, err := model.ByName("Qwen1.5-4B")
	if err != nil {
		return nil, err
	}
	inst, err := c.ColdStart(cfg, engine.StrategyVLLM, true)
	if err != nil {
		return nil, err
	}
	first, err := inst.FirstTokenServeDuration(workload.ShareGPTMeanPrompt)
	if err != nil {
		return nil, err
	}
	runtime := inst.Timeline().StageDuration(engine.StageRuntimeInit)
	loading := inst.LoadingDuration()
	total := runtime + loading + first

	r := &Report{
		ID:     "fig1",
		Title:  "Cold start timeline when serving Qwen1.5-4B (vanilla vLLM)",
		Header: []string{"phase", "seconds", "share", "paper share"},
	}
	r.AddRow("initializing runtime", secs(runtime), pct(float64(runtime)/float64(total)), "22%")
	r.AddRow("loading phase", secs(loading), pct(float64(loading)/float64(total)), "76%")
	r.AddRow("generating first token", secs(first), pct(float64(first)/float64(total)), "2%")
	for _, st := range inst.Timeline().Stages() {
		if st.Name == engine.StageRuntimeInit {
			continue
		}
		r.AddNote("loading stage %-24s %ss", st.Name, secs(st.Duration()))
	}
	return r, nil
}

var loadingStages = []string{
	engine.StageStructInit, engine.StageWeights, engine.StageTokenizer,
	engine.StageKVInit, engine.StageCapture,
}

// runFigure2 reproduces Figure 2: the per-stage breakdown of the
// loading phase across all ten models under vanilla vLLM.
func runFigure2(c *Context) (*Report, error) {
	r := &Report{
		ID:     "fig2",
		Title:  "Breakdown of the loading phase (vanilla vLLM, share of loading time)",
		Header: append([]string{"model", "total(s)"}, loadingStages...),
	}
	var kvShare, capShare float64
	bubbles := 0
	stacked := &plot.Stacked{Title: "loading phase by stage (seconds)", Segments: loadingStages}
	for _, cfg := range model.Zoo() {
		inst, err := c.Baseline(cfg)
		if err != nil {
			return nil, err
		}
		tl := inst.Timeline()
		total := inst.LoadingDuration()
		row := []string{cfg.Name, secs(total)}
		g := plot.BarGroup{Label: cfg.Name}
		for _, st := range loadingStages {
			row = append(row, pct(float64(tl.StageDuration(st))/float64(total)))
			g.Values = append(g.Values, tl.StageDuration(st).Seconds())
		}
		stacked.Groups = append(stacked.Groups, g)
		r.AddRow(row...)
		kvShare += float64(tl.StageDuration(engine.StageKVInit)) / float64(total)
		capShare += float64(tl.StageDuration(engine.StageCapture)) / float64(total)
		// The async-bubble condition of §2.4: weights loading shorter
		// than tokenizer + KV init.
		if tl.StageDuration(engine.StageWeights) <
			tl.StageDuration(engine.StageTokenizer)+tl.StageDuration(engine.StageKVInit) {
			bubbles++
		}
	}
	n := float64(len(model.Zoo()))
	r.AddNote("avg KV-init share %s (paper ≈18%%), avg capture share %s (paper ≈32%%), combined %s (paper ≈47%%)",
		pct(kvShare/n), pct(capShare/n), pct((kvShare+capShare)/n))
	r.AddNote("%d/10 models have an async bubble (weights < tokenizer+KV init); paper reports 6/10", bubbles)
	r.AddChart(stacked.Render(60))
	return r, nil
}

// figure3Models are the four models of Figure 3.
var figure3Models = []string{"Qwen1.5-0.5B", "Qwen1.5-1.8B", "Qwen1.5-4B", "Llama2-7B"}

// runFigure3 reproduces Figure 3: inference latency with and without
// CUDA graphs for the ShareGPT-average request (161 in, 338 out).
func runFigure3(c *Context) (*Report, error) {
	r := &Report{
		ID:     "fig3",
		Title:  "Acceleration brought by the CUDA graph (prompt 161, output 338)",
		Header: []string{"model", "w/ graph (s)", "w/o graph (s)", "speedup"},
	}
	maxSpeedup := 0.0
	fig3Chart := &plot.Bar{Title: "inference latency (161 in / 338 out)", Unit: "s",
		Series: []string{"w/ CUDA graph", "w/o CUDA graph"}}
	for _, name := range figure3Models {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, err
		}
		withG, err := c.Baseline(cfg)
		if err != nil {
			return nil, err
		}
		withoutG, err := c.ColdStart(cfg, engine.StrategyNoGraph, false)
		if err != nil {
			return nil, err
		}
		lat := func(inst *engine.Instance) (time.Duration, error) {
			prefill, err := inst.PrefillDuration(workload.ShareGPTMeanPrompt)
			if err != nil {
				return 0, err
			}
			step, err := inst.DecodeStepDuration(1)
			if err != nil {
				return 0, err
			}
			return prefill + time.Duration(workload.ShareGPTMeanOutput)*step, nil
		}
		a, err := lat(withG)
		if err != nil {
			return nil, err
		}
		b, err := lat(withoutG)
		if err != nil {
			return nil, err
		}
		speedup := float64(b) / float64(a)
		if speedup > maxSpeedup {
			maxSpeedup = speedup
		}
		r.AddRow(cfg.Name, secs(a), secs(b), fmt.Sprintf("%.2fx", speedup))
		fig3Chart.Groups = append(fig3Chart.Groups, plot.BarGroup{
			Label: cfg.Name, Values: []float64{a.Seconds(), b.Seconds()},
		})
	}
	r.AddChart(fig3Chart.Render(60))
	r.AddNote("max speedup %.2fx (paper: up to 2.4x)", maxSpeedup)
	r.SetMetric("max_speedup", maxSpeedup)
	return r, nil
}

// runFigure7 reproduces Figure 7: loading-phase and overall cold-start
// latency for vLLM, vLLM+ASYNC and Medusa across all ten models.
func runFigure7(c *Context) (*Report, error) {
	r := &Report{
		ID:    "fig7",
		Title: "Overall loading phase time and cold start time",
		Header: []string{"model",
			"vLLM load(s)", "ASYNC load(s)", "MEDUSA load(s)", "load cut",
			"vLLM cold(s)", "MEDUSA cold(s)", "cold cut"},
	}
	var loadCutSum, asyncCutSum, coldCutSum float64
	fig7Chart := &plot.Bar{Title: "loading phase latency", Unit: "s",
		Series: []string{"vLLM", "vLLM+ASYNC", "MEDUSA"}}
	for _, cfg := range model.Zoo() {
		vllm, err := c.Baseline(cfg)
		if err != nil {
			return nil, err
		}
		async, err := c.ColdStart(cfg, engine.StrategyVLLMAsync, false)
		if err != nil {
			return nil, err
		}
		med, err := c.ColdStart(cfg, engine.StrategyMedusa, false)
		if err != nil {
			return nil, err
		}
		lv, la, lm := vllm.LoadingDuration(), async.LoadingDuration(), med.LoadingDuration()
		coldV := runtimeInitApprox + lv
		coldM := runtimeInitApprox + lm
		loadCut := metrics.Reduction(lv, lm)
		coldCut := metrics.Reduction(coldV, coldM)
		loadCutSum += loadCut
		asyncCutSum += metrics.Reduction(la, lm)
		coldCutSum += coldCut
		r.AddRow(cfg.Name, secs(lv), secs(la), secs(lm), pct(loadCut),
			secs(coldV), secs(coldM), pct(coldCut))
		fig7Chart.Groups = append(fig7Chart.Groups, plot.BarGroup{
			Label: cfg.Name, Values: []float64{lv.Seconds(), la.Seconds(), lm.Seconds()},
		})
	}
	r.AddChart(fig7Chart.Render(60))
	n := float64(len(model.Zoo()))
	r.AddNote("avg loading reduction vs vLLM %s (paper 42.5%%), vs vLLM+ASYNC %s (paper 34.4%%)",
		pct(loadCutSum/n), pct(asyncCutSum/n))
	r.AddNote("avg cold-start reduction vs vLLM %s (paper 34.9%%)", pct(coldCutSum/n))
	r.SetMetric("avg_loading_reduction_pct", loadCutSum/n*100)
	r.SetMetric("avg_coldstart_reduction_pct", coldCutSum/n*100)
	return r, nil
}

// runtimeInitApprox mirrors the engine's runtime-init phase for the
// cold-start composition of Figure 7b.
const runtimeInitApprox = 830 * time.Millisecond

// runFigure8 reproduces Figure 8: the stage-level breakdown of the
// three strategies on Qwen1.5-4B.
func runFigure8(c *Context) (*Report, error) {
	cfg, err := model.ByName("Qwen1.5-4B")
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "fig8",
		Title:  "Breakdown of different strategies (Qwen1.5-4B)",
		Header: []string{"strategy", "stage", "start(s)", "end(s)", "dur(s)"},
	}
	timelines := map[engine.Strategy]*trace.Timeline{}
	for _, s := range []engine.Strategy{engine.StrategyVLLM, engine.StrategyVLLMAsync, engine.StrategyMedusa} {
		var inst *engine.Instance
		if s == engine.StrategyVLLM {
			inst, err = c.Baseline(cfg)
		} else {
			inst, err = c.ColdStart(cfg, s, false)
		}
		if err != nil {
			return nil, err
		}
		timelines[s] = inst.Timeline()
		var rows []plot.GanttRow
		for _, st := range inst.Timeline().Stages() {
			r.AddRow(s.String(), st.Name, secs(st.Start), secs(st.End), secs(st.Duration()))
			rows = append(rows, plot.GanttRow{Label: st.Name, Start: st.Start.Seconds(), End: st.End.Seconds()})
		}
		r.AddRow(s.String(), "TOTAL", "", "", secs(inst.LoadingDuration()))
		r.AddChart(plot.Gantt(s.String(), rows, 58))
	}
	v := timelines[engine.StrategyVLLM].Total()
	a := timelines[engine.StrategyVLLMAsync].Total()
	m := timelines[engine.StrategyMedusa].Total()
	r.AddNote("ASYNC reduces loading by %s vs vLLM (paper 13.0%%)", pct(metrics.Reduction(v, a)))
	r.AddNote("MEDUSA reduces loading by %s vs vLLM (paper 41.4%%) and %s vs ASYNC (paper 32.7%%)",
		pct(metrics.Reduction(v, m)), pct(metrics.Reduction(a, m)))
	r.AddNote("MEDUSA KV-init %ss (paper 0.50→0.02s), capture/restore %ss (paper 0.90→0.57s)",
		secs(timelines[engine.StrategyMedusa].StageDuration(engine.StageKVInit)),
		secs(timelines[engine.StrategyMedusa].StageDuration(engine.StageCapture)))
	return r, nil
}

// runFigure9 reproduces Figure 9: offline-phase overhead per model.
func runFigure9(c *Context) (*Report, error) {
	r := &Report{
		ID:     "fig9",
		Title:  "Overhead of the offline phase",
		Header: []string{"model", "capturing (s)", "analysis (s)", "total (s)", "artifact (MB)"},
	}
	// The per-model offline phases are independent: fan them out before
	// tabulating (the seeds, and hence the artifacts, match a sequential
	// run).
	if err := c.PrefetchArtifacts(model.Zoo(), 0); err != nil {
		return nil, err
	}
	var capSum, totalSum time.Duration
	for _, cfg := range model.Zoo() {
		_, _, report, err := c.Artifact(cfg)
		if err != nil {
			return nil, err
		}
		capSum += report.CaptureStageDuration
		totalSum += report.Total()
		r.AddRow(cfg.Name,
			secs(report.CaptureStageDuration),
			secs(report.AnalysisDuration),
			secs(report.Total()),
			fmt.Sprintf("%.2f", float64(report.ArtifactBytes)/(1<<20)))
	}
	n := time.Duration(len(model.Zoo()))
	r.AddNote("avg capturing stage %ss (paper ≈9.7s), avg total %ss (paper ≈39.2s, <1 min)",
		secs(capSum/n), secs(totalSum/n))
	return r, nil
}
