// Package router holds the fleet control plane's dispatch policies:
// given a deployment's ready instances, in what order should queued
// work be offered to them? The cluster simulator builds one Candidate
// per dispatchable instance — queue depth, KV headroom, artifact
// locality, predicted TTFT — scores them through the configured
// policy, and dispatches in descending score order with ties broken by
// lowest instance id. Scoring is a pure function of the Candidate, so
// routing is deterministic and a fixed-seed simulation renders
// byte-identically whatever policy is plugged in.
package router

import (
	"fmt"
	"sort"
)

// Candidate is one dispatchable instance as the router sees it.
type Candidate struct {
	// ID is the instance id (the deterministic tie-break key).
	ID int
	// QueueDepth counts requests already on the instance (running plus,
	// in batched mode, preempted-waiting).
	QueueDepth int
	// KVHeadroom is the instance's free KV-cache fraction in [0, 1].
	KVHeadroom float64
	// Locality grades the instance's node cache for the deployment's
	// artifact: 1 RAM-resident, 0.9 in-flight, 0.7 SSD, 0 absent.
	Locality float64
	// PredTTFT estimates (in seconds) how long a request dispatched to
	// this instance waits for its first token.
	PredTTFT float64
}

// Policy scores candidates; higher is better. Implementations must be
// pure functions of the Candidate.
type Policy interface {
	// Name identifies the policy in reports and renders.
	Name() string
	// Score grades one candidate; dispatch proceeds in descending
	// score order.
	Score(c Candidate) float64
}

// LeastLoaded routes to the emptiest instance: score = −QueueDepth.
type LeastLoaded struct{}

// Name identifies the policy.
func (*LeastLoaded) Name() string { return "leastloaded" }

// Score grades a candidate purely by how empty it is.
func (*LeastLoaded) Score(c Candidate) float64 { return -float64(c.QueueDepth) }

// Default weights for the SLO-aware composite score. Queue depth and
// predicted TTFT dominate (they measure the delay a dispatch would
// actually see); KV headroom and artifact locality break near-ties
// toward instances with room to grow and warm caches.
const (
	WeightQueue    = 1.0
	WeightKV       = 0.5
	WeightLocality = 0.25
	WeightTTFT     = 2.0
)

// Scored is the SLO-aware composite policy:
//
//	score = −WeightQueue·depth + WeightKV·headroom
//	      + WeightLocality·locality − WeightTTFT·predTTFT
type Scored struct{}

// Name identifies the policy.
func (*Scored) Name() string { return "score" }

// Score combines all four candidate signals with the package weights.
func (*Scored) Score(c Candidate) float64 {
	return -WeightQueue*float64(c.QueueDepth) +
		WeightKV*c.KVHeadroom +
		WeightLocality*c.Locality -
		WeightTTFT*c.PredTTFT
}

// Pick returns the index of the best-scoring candidate, ties broken by
// lowest ID, or −1 for an empty slate.
func Pick(p Policy, cands []Candidate) int {
	best := -1
	var bestScore float64
	var bestID int
	for i, c := range cands {
		s := p.Score(c)
		if best < 0 || s > bestScore || (s == bestScore && c.ID < bestID) {
			best, bestScore, bestID = i, s, c.ID
		}
	}
	return best
}

// Rank orders indices into cands by descending score, ties broken by
// ascending ID — the dispatch order the cluster simulator walks.
func Rank(p Policy, cands []Candidate) []int {
	order := make([]int, len(cands))
	scores := make([]float64, len(cands))
	for i, c := range cands {
		order[i] = i
		scores[i] = p.Score(c)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return cands[ia].ID < cands[ib].ID
	})
	return order
}

// Parse resolves a policy by CLI name: "fifo" (or empty) returns nil,
// selecting the simulator's legacy launch-order dispatch;
// "leastloaded" and "score" return the corresponding policies.
func Parse(name string) (Policy, error) {
	switch name {
	case "", "fifo":
		return nil, nil
	case "leastloaded":
		return &LeastLoaded{}, nil
	case "score":
		return &Scored{}, nil
	}
	return nil, fmt.Errorf("router: unknown policy %q (want fifo, leastloaded or score)", name)
}
