package router

import "testing"

// TestLeastLoadedPrefersEmptiest: queue depth alone decides, ties go
// to the lowest instance id.
func TestLeastLoadedPrefersEmptiest(t *testing.T) {
	p := &LeastLoaded{}
	cands := []Candidate{
		{ID: 5, QueueDepth: 3},
		{ID: 2, QueueDepth: 1},
		{ID: 9, QueueDepth: 1},
	}
	if got := Pick(p, cands); got != 1 {
		t.Fatalf("Pick = %d (id %d), want index 1 (id 2)", got, cands[got].ID)
	}
}

// TestScoredWeighsAllSignals: with equal queues, the composite policy
// must prefer the warm, roomy, fast candidate.
func TestScoredWeighsAllSignals(t *testing.T) {
	p := &Scored{}
	cold := Candidate{ID: 0, QueueDepth: 2, KVHeadroom: 0.1, Locality: 0, PredTTFT: 0.5}
	warm := Candidate{ID: 1, QueueDepth: 2, KVHeadroom: 0.9, Locality: 1, PredTTFT: 0.1}
	if p.Score(warm) <= p.Score(cold) {
		t.Fatalf("warm candidate scored %v, cold %v", p.Score(warm), p.Score(cold))
	}
	// Queue depth dominates the soft signals: a deep queue loses to an
	// empty one even with perfect locality.
	deep := Candidate{ID: 0, QueueDepth: 5, KVHeadroom: 1, Locality: 1}
	empty := Candidate{ID: 1}
	if p.Score(deep) >= p.Score(empty) {
		t.Fatalf("deep queue scored %v, empty %v", p.Score(deep), p.Score(empty))
	}
}

// TestPickTieBreaksByLowestID pins the deterministic contract: exact
// score ties resolve to the lowest instance id regardless of slice
// order.
func TestPickTieBreaksByLowestID(t *testing.T) {
	p := &LeastLoaded{}
	cands := []Candidate{
		{ID: 7, QueueDepth: 2},
		{ID: 3, QueueDepth: 2},
		{ID: 11, QueueDepth: 2},
	}
	if got := Pick(p, cands); cands[got].ID != 3 {
		t.Fatalf("tie went to id %d, want 3", cands[got].ID)
	}
	if got := Pick(p, nil); got != -1 {
		t.Fatalf("empty slate picked %d", got)
	}
}

// TestRankOrdersDeterministically: full ordering is descending score
// with ascending-id tie-breaks, stable across input permutations.
func TestRankOrdersDeterministically(t *testing.T) {
	p := &LeastLoaded{}
	cands := []Candidate{
		{ID: 4, QueueDepth: 1},
		{ID: 1, QueueDepth: 0},
		{ID: 2, QueueDepth: 1},
		{ID: 0, QueueDepth: 3},
	}
	order := Rank(p, cands)
	wantIDs := []int{1, 2, 4, 0}
	if len(order) != len(wantIDs) {
		t.Fatalf("rank length %d, want %d", len(order), len(wantIDs))
	}
	for i, idx := range order {
		if cands[idx].ID != wantIDs[i] {
			t.Fatalf("rank position %d is id %d, want %d", i, cands[idx].ID, wantIDs[i])
		}
	}
	// Permuting the input must not change the ranked id sequence.
	perm := []Candidate{cands[3], cands[2], cands[1], cands[0]}
	order2 := Rank(p, perm)
	for i, idx := range order2 {
		if perm[idx].ID != wantIDs[i] {
			t.Fatalf("permuted rank position %d is id %d, want %d", i, perm[idx].ID, wantIDs[i])
		}
	}
}

func TestParse(t *testing.T) {
	for _, name := range []string{"", "fifo"} {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if p != nil {
			t.Fatalf("Parse(%q) = %v, want nil (legacy dispatch)", name, p)
		}
	}
	for _, name := range []string{"leastloaded", "score"} {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("Parse(%q) = %q", name, p.Name())
		}
	}
	if _, err := Parse("random"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
