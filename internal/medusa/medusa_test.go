package medusa

import (
	"errors"
	"strings"
	"testing"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/gpu"
	"github.com/medusa-repro/medusa/internal/vclock"
)

// Toy kernel set: one exported elementwise kernel, one hidden kernel
// with a permanent workspace, and one exported kernel with an 8-byte
// scalar that can masquerade as a pointer.
func toyRuntime() *cuda.Runtime {
	rt := cuda.NewRuntime()
	rt.MustRegister(cuda.KernelImpl{
		Name: "toy_scale", Library: "libtoy.so", Module: "toy_mod", Exported: true,
		Params: []cuda.ParamKind{cuda.Ptr, cuda.Ptr, cuda.F32, cuda.U32},
		Func: func(d *gpu.Device, a []cuda.Value) error {
			n := int(a[3].U32())
			dst, dOff, ok := d.FindBuffer(a[0].Ptr())
			if !ok {
				return errors.New("illegal dst")
			}
			src, sOff, ok := d.FindBuffer(a[1].Ptr())
			if !ok {
				return errors.New("illegal src")
			}
			v, err := src.Float32s(int(sOff/4), n)
			if err != nil {
				return err
			}
			out := make([]float32, n)
			for i := range out {
				out[i] = v[i] * a[2].F32()
			}
			return dst.SetFloat32s(int(dOff/4), out)
		},
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: "toy_hidden_sum", Library: "libhidden.so", Module: "hidden_mod", Exported: false,
		Params: []cuda.ParamKind{cuda.Ptr, cuda.Ptr, cuda.Ptr, cuda.U32},
		Func: func(d *gpu.Device, a []cuda.Value) error {
			n := int(a[3].U32())
			dst, dOff, ok := d.FindBuffer(a[0].Ptr())
			if !ok {
				return errors.New("illegal dst")
			}
			src, sOff, ok := d.FindBuffer(a[1].Ptr())
			if !ok {
				return errors.New("illegal src")
			}
			ws, wOff, ok := d.FindBuffer(a[2].Ptr())
			if !ok {
				return errors.New("illegal ws")
			}
			bias, err := ws.Float32(int(wOff / 4))
			if err != nil {
				return err
			}
			v, err := src.Float32s(int(sOff/4), n)
			if err != nil {
				return err
			}
			sum := bias
			for _, x := range v {
				sum += x
			}
			return dst.SetFloat32(int(dOff/4), sum)
		},
	})
	// A hidden sibling to make module enumeration non-trivial.
	rt.MustRegister(cuda.KernelImpl{
		Name: "toy_hidden_aux", Library: "libhidden.so", Module: "hidden_mod", Exported: false,
		Params: []cuda.ParamKind{cuda.Ptr},
		Func:   nil,
	})
	rt.MustRegister(cuda.KernelImpl{
		Name: "toy_seedmix", Library: "libtoy.so", Module: "toy_mod", Exported: true,
		Params: []cuda.ParamKind{cuda.Ptr, cuda.U64},
		Func: func(d *gpu.Device, a []cuda.Value) error {
			dst, dOff, ok := d.FindBuffer(a[0].Ptr())
			if !ok {
				return errors.New("illegal dst")
			}
			seed := a[1].U64()
			return dst.SetUint32(int(dOff/4)+1, uint32(seed)^uint32(seed>>32))
		},
	})
	return rt
}

const (
	bufBytes  = 64
	elemCount = 16
	wsBias    = float32(3.5)
)

// offlineRun drives a toy offline phase and returns the artifact plus
// the reference output (the original graph's replay result).
//
// seedAsAddress makes the toy_seedmix scalar equal the weights buffer's
// device address — the engineered §4 false positive.
func offlineRun(t *testing.T, rt *cuda.Runtime, seed int64, seedAsAddress bool) (*Artifact, []byte) {
	t.Helper()
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: seed, Mode: gpu.Functional})
	rec := NewRecorder()
	p.SetHooks(rec.Hooks())
	s := p.NewStream()

	weights := mustMalloc(t, p, bufBytes)
	rec.LabelLastAlloc("weights")
	writeFloats(t, p, weights, weightData())
	src := mustMalloc(t, p, bufBytes)
	rec.LabelLastAlloc("io.src")
	writeFloats(t, p, src, inputData())
	dst := mustMalloc(t, p, bufBytes)
	rec.LabelLastAlloc("io.dst")

	// Stand-in for the profiling forwarding: balanced temporaries.
	tmp := mustMalloc(t, p, 128)
	if err := p.Free(tmp); err != nil {
		t.Fatal(err)
	}

	rec.MarkCaptureStageBegin()

	// Warm-up: loads modules, allocates a temporary and the permanent
	// workspace.
	warmTemp := mustMalloc(t, p, 256)
	perm := mustMalloc(t, p, 4)
	writeFloats(t, p, perm, []float32{wsBias})
	seedVal := uint64(0x1234)
	if seedAsAddress {
		seedVal = weights // high-prefix scalar colliding with a live allocation
	}
	launches := func() error {
		if err := p.Launch(s, "toy_scale", []cuda.Value{
			cuda.PtrValue(dst), cuda.PtrValue(src), cuda.F32Value(2), cuda.U32Value(elemCount),
		}); err != nil {
			return err
		}
		if err := p.Launch(s, "toy_hidden_sum", []cuda.Value{
			cuda.PtrValue(dst + 4*4), cuda.PtrValue(weights), cuda.PtrValue(perm), cuda.U32Value(4),
		}); err != nil {
			return err
		}
		return p.Launch(s, "toy_seedmix", []cuda.Value{cuda.PtrValue(dst), cuda.U64Value(seedVal)})
	}
	if err := launches(); err != nil { // warm-up forwarding
		t.Fatal(err)
	}
	if err := p.Free(warmTemp); err != nil {
		t.Fatal(err)
	}

	if err := s.BeginCapture(); err != nil {
		t.Fatal(err)
	}
	if err := launches(); err != nil {
		t.Fatal(err)
	}
	g, err := s.EndCapture()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.AttachGraph(1, g); err != nil {
		t.Fatal(err)
	}
	rec.MarkCaptureStageEnd()
	rec.RecordKV(KVRecord{FreeMemBytes: 1 << 30, NumBlocks: 512, BlockBytes: 2048})

	art, err := Analyze(rec, p, AnalyzeOptions{ModelName: "toy"})
	if err != nil {
		t.Fatal(err)
	}

	// Reference output: replay the original graph.
	ge, err := g.Instantiate(p)
	if err != nil {
		t.Fatal(err)
	}
	clearBuffer(t, p, dst)
	if err := ge.Launch(s); err != nil {
		t.Fatal(err)
	}
	return art, snapshot(t, p, dst)
}

// onlineRun restores the artifact in a fresh process and returns the
// replayed output.
func onlineRun(t *testing.T, rt *cuda.Runtime, art *Artifact, seed int64) ([]byte, error) {
	t.Helper()
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: seed, Mode: gpu.Functional})
	rest, err := NewRestorer(p, art)
	if err != nil {
		return nil, err
	}
	s := p.NewStream()

	// Natural control flow: the same three IO allocations, weights
	// loading, no profiling, no capture.
	weights := mustMalloc(t, p, bufBytes)
	writeFloats(t, p, weights, weightData())
	src := mustMalloc(t, p, bufBytes)
	writeFloats(t, p, src, inputData())
	dst := mustMalloc(t, p, bufBytes)

	if err := rest.ReplayPrefix(); err != nil {
		return nil, err
	}
	if kv := rest.KV(); kv.NumBlocks != 512 {
		t.Fatalf("restored KV = %+v", kv)
	}
	if err := rest.ReplayCaptureStage(); err != nil {
		return nil, err
	}
	// Triggering-kernels: load the hidden module by running its kernel
	// once (libtoy deliberately NOT triggered, exercising the dlsym
	// path for exported kernels).
	trigger := func(batch int) error {
		scratchDst := mustMalloc(t, p, bufBytes)
		scratchWs := mustMalloc(t, p, 4)
		writeFloats(t, p, scratchWs, []float32{0})
		err := p.Launch(s, "toy_hidden_sum", []cuda.Value{
			cuda.PtrValue(scratchDst), cuda.PtrValue(weights), cuda.PtrValue(scratchWs), cuda.U32Value(4),
		})
		if err != nil {
			return err
		}
		if err := p.Free(scratchDst); err != nil {
			return err
		}
		return p.Free(scratchWs)
	}
	graphs, err := rest.RestoreGraphs(trigger)
	if err != nil {
		return nil, err
	}
	ge, ok := graphs[1]
	if !ok {
		t.Fatal("restored graphs missing batch 1")
	}
	clearBuffer(t, p, dst)
	if err := ge.Launch(s); err != nil {
		return nil, err
	}
	return snapshot(t, p, dst), nil
}

func weightData() []float32 {
	out := make([]float32, elemCount)
	for i := range out {
		out[i] = float32(i) * 0.25
	}
	return out
}

func inputData() []float32 {
	out := make([]float32, elemCount)
	for i := range out {
		out[i] = float32(i) - 7
	}
	return out
}

func mustMalloc(t *testing.T, p *cuda.Process, size uint64) uint64 {
	t.Helper()
	a, err := p.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func writeFloats(t *testing.T, p *cuda.Process, addr uint64, vals []float32) {
	t.Helper()
	b, _, ok := p.Device().FindBuffer(addr)
	if !ok {
		t.Fatalf("writeFloats: no buffer at %#x", addr)
	}
	if err := b.SetFloat32s(0, vals); err != nil {
		t.Fatal(err)
	}
}

func clearBuffer(t *testing.T, p *cuda.Process, addr uint64) {
	t.Helper()
	b, _, ok := p.Device().FindBuffer(addr)
	if !ok {
		t.Fatalf("clearBuffer: no buffer at %#x", addr)
	}
	zero := make([]byte, b.Size())
	if err := b.WriteAt(0, zero); err != nil {
		t.Fatal(err)
	}
}

func snapshot(t *testing.T, p *cuda.Process, addr uint64) []byte {
	t.Helper()
	b, _, ok := p.Device().FindBuffer(addr)
	if !ok {
		t.Fatalf("snapshot: no buffer at %#x", addr)
	}
	out, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestOfflineOnlineEndToEnd(t *testing.T) {
	rt := toyRuntime()
	art, ref := offlineRun(t, rt, 1000, false)

	if got := art.TotalNodes(); got != 3 {
		t.Fatalf("TotalNodes = %d", got)
	}
	stats := art.Stats()
	// toy_scale: dst,src pointers + 2 constants; hidden_sum: 3 pointers
	// + 1 constant; seedmix: 1 pointer + 1 constant (small seed).
	if stats.Pointers != 6 || stats.Constants != 4 {
		t.Fatalf("Stats = %+v", stats)
	}
	for _, seed := range []int64{2000, 3000, 4000} {
		got, err := onlineRun(t, rt, art, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if string(got) != string(ref) {
			t.Fatalf("seed %d: restored output differs from reference", seed)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rt := toyRuntime()
	art, ref := offlineRun(t, rt, 1100, false)
	raw, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded artifact must be functionally identical: a restore
	// from it yields the reference output.
	got, err := onlineRun(t, rt, back, 2100)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ref) {
		t.Fatal("decoded artifact restores differently")
	}
	if back.ModelName != "toy" || back.AllocCount != art.AllocCount || back.PrefixLen != art.PrefixLen {
		t.Fatalf("decoded header = %+v", back)
	}
	if len(back.Permanent) != len(art.Permanent) {
		t.Fatalf("permanent records = %d vs %d", len(back.Permanent), len(art.Permanent))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rt := toyRuntime()
	art, _ := offlineRun(t, rt, 1200, false)
	raw, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 5, 20, len(raw) / 2, len(raw) - 1} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0xff
		if _, err := Decode(bad); err == nil {
			t.Fatalf("Decode accepted corruption at offset %d", off)
		}
	}
	if _, err := Decode(raw[:10]); err == nil {
		t.Fatal("Decode accepted truncated artifact")
	}
	if _, err := Decode(raw[:len(raw)-3]); err == nil {
		t.Fatal("Decode accepted torn artifact")
	}
}

func TestPermanentBufferContentsRestored(t *testing.T) {
	rt := toyRuntime()
	art, _ := offlineRun(t, rt, 1300, false)
	if len(art.Permanent) != 1 {
		t.Fatalf("permanent records = %d, want 1 (the workspace)", len(art.Permanent))
	}
	pr := art.Permanent[0]
	if pr.Size != 4 || pr.Contents == nil {
		t.Fatalf("permanent record = %+v", pr)
	}
	// Wipe the saved contents: the restored hidden_sum must now produce
	// a different value (bias lost), proving the contents mattered.
	ref, err := onlineRun(t, rt, art, 2300)
	if err != nil {
		t.Fatal(err)
	}
	zeroed := *art
	zeroed.Permanent = []PermRecord{{AllocIndex: pr.AllocIndex, Size: 4, Contents: []byte{0, 0, 0, 0}}}
	got, err := onlineRun(t, rt, &zeroed, 2400)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == string(ref) {
		t.Fatal("zeroing permanent contents did not change replay output")
	}
}

func TestTemporaryBuffersNotSaved(t *testing.T) {
	rt := toyRuntime()
	art, _ := offlineRun(t, rt, 1400, false)
	// Only the 4-byte workspace is permanent; the 256-byte warm-up
	// temporary must not appear.
	for _, pr := range art.Permanent {
		if pr.Size == 256 {
			t.Fatal("warm-up temporary saved as permanent")
		}
	}
	// But its allocation is still replayed (it holds an address slot).
	found := false
	for _, ev := range art.AllocSeq[art.PrefixLen:] {
		if !ev.Free && ev.Size == 256 {
			found = true
		}
	}
	if !found {
		t.Fatal("warm-up temporary missing from capture-stage replay")
	}
}

func TestFalsePositiveSeedCorrection(t *testing.T) {
	rt := toyRuntime()
	art, ref := offlineRun(t, rt, 1500, true)
	// The seed scalar collided with the weights buffer address and was
	// classified as a pointer.
	found := false
	for _, g := range art.Graphs {
		for _, n := range g.Nodes {
			if n.KernelName == "toy_seedmix" && n.Params[1].Pointer {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("engineered false positive was not classified as pointer")
	}
	// Uncorrected restore must produce wrong output (the seed is
	// rewritten to a new address).
	got, err := onlineRun(t, rt, art, 2500)
	if err == nil && string(got) == string(ref) {
		t.Fatal("false positive did not corrupt output — test is vacuous")
	}
	// Validation forwarding + correction demotes the group.
	validate := func(a *Artifact) ([]int, error) {
		out, err := onlineRun(t, rt, a, 2600)
		if err != nil {
			return nil, err
		}
		if string(out) != string(ref) {
			return []int{1}, nil
		}
		return nil, nil
	}
	res, err := (&*art).ValidateAndCorrect(validate)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Demoted) != 1 || res.Demoted[0].KernelName != "toy_seedmix" || res.Demoted[0].ParamIndex != 1 {
		t.Fatalf("Demoted = %+v", res.Demoted)
	}
	// Post-correction restore matches the reference.
	got, err = onlineRun(t, rt, art, 2700)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ref) {
		t.Fatal("corrected artifact still restores wrong output")
	}
}

func TestValidateAndCorrectCleanArtifact(t *testing.T) {
	rt := toyRuntime()
	art, ref := offlineRun(t, rt, 1600, false)
	calls := 0
	validate := func(a *Artifact) ([]int, error) {
		calls++
		out, err := onlineRun(t, rt, a, 2800)
		if err != nil {
			return nil, err
		}
		if string(out) != string(ref) {
			return []int{1}, nil
		}
		return nil, nil
	}
	res, err := art.ValidateAndCorrect(validate)
	if err != nil || len(res.Demoted) != 0 || calls != 1 {
		t.Fatalf("clean artifact: res=%+v err=%v calls=%d", res, err, calls)
	}
}

func TestBackwardMatchBeatsFirstMatchOnReuse(t *testing.T) {
	// Figure 6: allocation i and a later allocation share an address
	// after a free. Backward matching resolves to the later one; naive
	// first-match picks the stale one.
	rt := toyRuntime()
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 1700, Mode: gpu.Functional})
	rec := NewRecorder()
	p.SetHooks(rec.Hooks())
	s := p.NewStream()

	dst := mustMalloc(t, p, bufBytes) // alloc 0
	stale := mustMalloc(t, p, 4096)   // alloc 1
	if err := p.Free(stale); err != nil {
		t.Fatal(err)
	}
	reused := mustMalloc(t, p, 4096) // alloc 2 — same address as alloc 1
	if reused != stale {
		t.Skip("allocator did not reuse the address; scenario not constructed")
	}
	writeFloats(t, p, reused, inputData())

	rec.MarkCaptureStageBegin()
	warm := []cuda.Value{cuda.PtrValue(dst), cuda.PtrValue(reused), cuda.F32Value(1), cuda.U32Value(4)}
	if err := p.Launch(s, "toy_scale", warm); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginCapture(); err != nil {
		t.Fatal(err)
	}
	if err := p.Launch(s, "toy_scale", warm); err != nil {
		t.Fatal(err)
	}
	g, err := s.EndCapture()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.AttachGraph(1, g); err != nil {
		t.Fatal(err)
	}
	rec.MarkCaptureStageEnd()
	rec.RecordKV(KVRecord{NumBlocks: 1, BlockBytes: 1})

	good, err := Analyze(rec, p, AnalyzeOptions{ModelName: "toy"})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Analyze(rec, p, AnalyzeOptions{ModelName: "toy", NaiveFirstMatch: true})
	if err != nil {
		t.Fatal(err)
	}
	srcGood := good.Graphs[0].Nodes[0].Params[1]
	srcBad := bad.Graphs[0].Nodes[0].Params[1]
	if srcGood.AllocIndex != 2 {
		t.Fatalf("backward match chose allocation %d, want 2", srcGood.AllocIndex)
	}
	if srcBad.AllocIndex != 1 {
		t.Fatalf("naive match chose allocation %d, want the stale 1", srcBad.AllocIndex)
	}
}

func TestInteriorPointerOffsetRestored(t *testing.T) {
	rt := toyRuntime()
	art, ref := offlineRun(t, rt, 1800, false)
	// hidden_sum's dst is dst+16: an interior pointer. Check the
	// artifact records a nonzero offset for it.
	foundOffset := false
	for _, g := range art.Graphs {
		for _, n := range g.Nodes {
			if n.KernelName == "toy_hidden_sum" && n.Params[0].Pointer && n.Params[0].Offset == 16 {
				foundOffset = true
			}
		}
	}
	if !foundOffset {
		t.Fatal("interior pointer offset not materialized")
	}
	got, err := onlineRun(t, rt, art, 2900)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(ref) {
		t.Fatal("interior pointer restored incorrectly")
	}
}

func TestRestorerDetectsControlFlowDivergence(t *testing.T) {
	rt := toyRuntime()
	art, _ := offlineRun(t, rt, 1900, false)
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 3100, Mode: gpu.Functional})
	rest, err := NewRestorer(p, art)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate with a size the artifact does not expect.
	if _, err := p.Malloc(bufBytes + 64); err != nil {
		t.Fatal(err)
	}
	if rest.Err() == nil {
		t.Fatal("size divergence undetected")
	}
	if err := rest.ReplayPrefix(); err == nil || !strings.Contains(err.Error(), "size") {
		t.Fatalf("ReplayPrefix after divergence = %v", err)
	}
}

func TestRestorerRequiresFreshProcess(t *testing.T) {
	rt := toyRuntime()
	art, _ := offlineRun(t, rt, 2001, false)
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 3200, Mode: gpu.Functional})
	if _, err := p.Malloc(8); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRestorer(p, art); err == nil {
		t.Fatal("NewRestorer attached to a dirty process")
	}
}

func TestRestoreGraphsRequiresReplayFirst(t *testing.T) {
	rt := toyRuntime()
	art, _ := offlineRun(t, rt, 2002, false)
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 3300, Mode: gpu.Functional})
	rest, err := NewRestorer(p, art)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rest.RestoreGraphs(nil); err == nil {
		t.Fatal("RestoreGraphs succeeded before replay")
	}
}

func TestHiddenKernelNeedsTrigger(t *testing.T) {
	rt := toyRuntime()
	art, _ := offlineRun(t, rt, 2003, false)
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 3400, Mode: gpu.Functional})
	rest, err := NewRestorer(p, art)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustMalloc(t, p, bufBytes)
	}
	if err := rest.ReplayPrefix(); err != nil {
		t.Fatal(err)
	}
	if err := rest.ReplayCaptureStage(); err != nil {
		t.Fatal(err)
	}
	// No trigger ⇒ hidden_mod never loads ⇒ toy_hidden_sum unresolvable.
	if _, err := rest.RestoreGraphs(nil); err == nil || !strings.Contains(err.Error(), "hidden") {
		t.Fatalf("RestoreGraphs without trigger = %v", err)
	}
}

func TestRecorderStateChecks(t *testing.T) {
	rec := NewRecorder()
	p := cuda.NewProcess(toyRuntime(), vclock.New(), cuda.Config{Seed: 1, Mode: gpu.Functional})
	if _, err := Analyze(rec, p, AnalyzeOptions{}); err == nil {
		t.Fatal("Analyze without markers succeeded")
	}
	rec.LabelLastAlloc("x") // no allocations yet
	rec.MarkCaptureStageBegin()
	rec.MarkCaptureStageEnd()
	rec.RecordKV(KVRecord{})
	if _, err := Analyze(rec, p, AnalyzeOptions{}); err == nil {
		t.Fatal("Analyze after broken label succeeded")
	}
}

func TestArtifactAccessors(t *testing.T) {
	rt := toyRuntime()
	art, _ := offlineRun(t, rt, 2004, false)
	if b := art.Batches(); len(b) != 1 || b[0] != 1 {
		t.Fatalf("Batches = %v", b)
	}
	if _, ok := art.Graph(1); !ok {
		t.Fatal("Graph(1) missing")
	}
	if _, ok := art.Graph(2); ok {
		t.Fatal("Graph(2) present")
	}
	if idx, ok := art.LabelIndex("weights"); !ok || idx != 0 {
		t.Fatalf("LabelIndex(weights) = %d, %v", idx, ok)
	}
	if _, ok := art.LabelIndex("nope"); ok {
		t.Fatal("LabelIndex(nope) found")
	}
	groups := art.PointerGroups()
	if len(groups) == 0 {
		t.Fatal("no pointer groups")
	}
}

func TestReplayOutOfMemory(t *testing.T) {
	// An artifact demanding more device memory than exists must fail
	// replay with the allocator's error, not corrupt state.
	art := &Artifact{
		FormatVersion: CurrentFormatVersion,
		ModelName:     "oom",
		AllocCount:    1,
		AllocSeq:      []AllocRecord{{AllocIndex: 0, Size: 1 << 60}},
		PrefixLen:     1,
		Kernels:       map[string]KernelLoc{},
		KV:            KVRecord{NumBlocks: 1, BlockBytes: 1},
	}
	p := cuda.NewProcess(toyRuntime(), vclock.New(), cuda.Config{Seed: 1, Mode: gpu.Functional})
	rest, err := NewRestorer(p, art)
	if err != nil {
		t.Fatal(err)
	}
	if err := rest.ReplayPrefix(); err == nil {
		t.Fatal("replay of impossible allocation succeeded")
	}
}

func TestRestorerPositionTracking(t *testing.T) {
	rt := toyRuntime()
	art, _ := offlineRun(t, rt, 6000, false)
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 6100, Mode: gpu.Functional})
	rest, err := NewRestorer(p, art)
	if err != nil {
		t.Fatal(err)
	}
	if rest.Position() != 0 {
		t.Fatalf("initial position = %d", rest.Position())
	}
	mustMalloc(t, p, bufBytes)
	if rest.Position() != 1 {
		t.Fatalf("position after one natural alloc = %d", rest.Position())
	}
	if rest.Err() != nil {
		t.Fatalf("unexpected verify error: %v", rest.Err())
	}
	// AddrOfLabel before the relevant replay: unknown.
	if _, ok := rest.AddrOfLabel("io.dst"); ok {
		t.Fatal("label resolved before its allocation")
	}
}

func TestRestoreGraphsUnknownKernel(t *testing.T) {
	rt := toyRuntime()
	art, _ := offlineRun(t, rt, 6200, false)
	// Sabotage: point a node at a kernel the runtime does not install.
	bad := *art
	bad.Kernels["ghost_kernel"] = KernelLoc{Library: "libtoy.so", Exported: true}
	bad.Graphs[0].Nodes[0].KernelName = "ghost_kernel"
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 6300, Mode: gpu.Functional})
	rest, err := NewRestorer(p, &bad)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustMalloc(t, p, bufBytes)
	}
	if err := rest.ReplayPrefix(); err != nil {
		t.Fatal(err)
	}
	if err := rest.ReplayCaptureStage(); err != nil {
		t.Fatal(err)
	}
	if _, err := rest.RestoreGraphs(nil); err == nil {
		t.Fatal("restore with unknown kernel succeeded")
	}
}
