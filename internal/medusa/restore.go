package medusa

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/cuda"
)

// perNodeFillCost is the CPU cost of filling one restored node's
// parameters and dependencies (pointer arithmetic plus table lookups).
// Graph instantiation (charged by the cuda layer) dominates restore
// time; this is the small remainder.
const perNodeFillCost = 2 * time.Microsecond

// TriggerFunc runs the online triggering-kernel step for one batch
// size: the engine warms up and captures the *first layer* of the model
// (§5.2), which forces the CUDA driver to load every module the batch's
// graph needs. The resulting throwaway graph is discarded; only the
// module-loading side effect matters.
type TriggerFunc func(batch int) error

// Restorer drives the online phase of Medusa inside a fresh cold-start
// process. Create it before the process makes its first allocation: it
// installs hooks that verify the engine's natural allocations against
// the materialized sequence and record each allocation's address for
// indirect index pointer resolution.
type Restorer struct {
	p    *cuda.Process
	art  *Artifact
	addr []uint64 // alloc index -> this process's address
	have []bool

	cursor    int // next expected event position in art.AllocSeq
	verifyErr error
}

// NewRestorer attaches a restorer to a fresh process. It takes over the
// process's hooks for the duration of the restore.
func NewRestorer(p *cuda.Process, art *Artifact) (*Restorer, error) {
	if p.AllocationCount() != 0 {
		return nil, fmt.Errorf("medusa: restorer must attach before the first allocation (process has %d)", p.AllocationCount())
	}
	r := &Restorer{
		p:    p,
		art:  art,
		addr: make([]uint64, art.AllocCount),
		have: make([]bool, art.AllocCount),
	}
	p.SetHooks(cuda.Hooks{OnAlloc: r.onAlloc})
	return r, nil
}

// onAlloc observes every allocation event of the online process —
// whether issued by the engine's natural control flow or by the
// restorer's own replay — and matches it against the materialized
// sequence. The deterministic control flow (§4) guarantees sizes and
// ordering agree; a mismatch means the artifact belongs to a different
// build and restoration must abort rather than corrupt memory.
func (r *Restorer) onAlloc(ev cuda.AllocEvent) {
	if r.verifyErr != nil || r.cursor >= len(r.art.AllocSeq) {
		return // restoration finished (or already failed); later events are serving activity
	}
	want := r.art.AllocSeq[r.cursor]
	switch {
	case ev.Free != want.Free:
		r.verifyErr = fmt.Errorf("medusa: event %d: control flow diverged (got free=%v, artifact has free=%v)",
			r.cursor, ev.Free, want.Free)
	case !ev.Free && ev.Size != want.Size:
		r.verifyErr = fmt.Errorf("medusa: event %d: allocation size %d, artifact has %d",
			r.cursor, ev.Size, want.Size)
	case ev.Free && ev.AllocIndex != want.AllocIndex:
		r.verifyErr = fmt.Errorf("medusa: event %d: free of allocation %d, artifact frees %d",
			r.cursor, ev.AllocIndex, want.AllocIndex)
	}
	if r.verifyErr != nil {
		return
	}
	if !ev.Free {
		r.addr[want.AllocIndex] = ev.Addr
		r.have[want.AllocIndex] = true
	}
	r.cursor++
}

// Err surfaces any divergence detected so far.
func (r *Restorer) Err() error { return r.verifyErr }

// Position reports how many events of the materialized sequence have
// been consumed.
func (r *Restorer) Position() int { return r.cursor }

// replayThrough issues Malloc/Free for artifact events [cursor, end):
// the §4.2 replay of stages the online control flow skips (profiling
// forwarding, capture-time temporaries and permanents).
func (r *Restorer) replayThrough(end int) error {
	if end > len(r.art.AllocSeq) {
		return fmt.Errorf("medusa: replay through %d exceeds %d events", end, len(r.art.AllocSeq))
	}
	for r.cursor < end {
		if r.verifyErr != nil {
			return r.verifyErr
		}
		ev := r.art.AllocSeq[r.cursor]
		if ev.Free {
			if !r.have[ev.AllocIndex] {
				return fmt.Errorf("medusa: replay frees allocation %d before it exists", ev.AllocIndex)
			}
			if err := r.p.Free(r.addr[ev.AllocIndex]); err != nil {
				return fmt.Errorf("medusa: replay free of allocation %d: %w", ev.AllocIndex, err)
			}
			continue // onAlloc advanced the cursor
		}
		if _, err := r.p.Malloc(ev.Size); err != nil {
			return fmt.Errorf("medusa: replay allocation %d (%d bytes): %w", ev.AllocIndex, ev.Size, err)
		}
	}
	return r.verifyErr
}

// ReplayPrefix replays the materialized sequence up to the capture
// stage boundary. The engine calls this once its own loading stages
// (model structure, weights, tokenizer) have run; the replayed span
// covers the skipped profiling forwarding and ends with the KV cache
// allocations, whose addresses become available through labels.
func (r *Restorer) ReplayPrefix() error {
	return r.replayThrough(r.art.PrefixLen)
}

// ReplayCaptureStage replays the capture-stage events (temporaries and
// permanent buffers) and rematerializes permanent buffer contents.
func (r *Restorer) ReplayCaptureStage() error {
	if err := r.replayThrough(len(r.art.AllocSeq)); err != nil {
		return err
	}
	for _, pr := range r.art.Permanent {
		if !r.have[pr.AllocIndex] {
			return fmt.Errorf("medusa: permanent allocation %d missing after replay", pr.AllocIndex)
		}
		if pr.Contents == nil {
			// Cost-only artifact: charge the (tiny) copy anyway.
			r.p.ChargeHtoD(pr.Size)
			continue
		}
		if err := r.p.MemcpyHtoD(r.addr[pr.AllocIndex], pr.Contents); err != nil {
			return fmt.Errorf("medusa: restore permanent allocation %d contents: %w", pr.AllocIndex, err)
		}
	}
	return nil
}

// AddrOfLabel returns this process's address of a labeled allocation
// (e.g. the KV cache buffers) after the relevant replay has run.
func (r *Restorer) AddrOfLabel(label string) (uint64, bool) {
	idx, ok := r.art.LabelIndex(label)
	if !ok || !r.have[idx] {
		return 0, false
	}
	return r.addr[idx], true
}

// KV returns the materialized KV cache initialization record.
func (r *Restorer) KV() KVRecord { return r.art.KV }

// RestoreGraphs rebuilds every materialized graph into a ready-to-
// launch executable. For each batch size it first invokes the trigger
// (first-layer warm-up and capture) so the CUDA driver loads all
// modules the graph needs, then resolves kernel addresses — via
// dlsym/cudaGetFuncBySymbol for exported kernels, via module
// enumeration for hidden ones (§5) — fills parameters from the indirect
// index pointer table, and instantiates.
func (r *Restorer) RestoreGraphs(trigger TriggerFunc) (map[int]*cuda.GraphExec, error) {
	if r.cursor != len(r.art.AllocSeq) {
		return nil, fmt.Errorf("medusa: RestoreGraphs before replay finished (%d of %d events)",
			r.cursor, len(r.art.AllocSeq))
	}
	out := make(map[int]*cuda.GraphExec, len(r.art.Graphs))
	for gi := range r.art.Graphs {
		g := &r.art.Graphs[gi]
		if trigger != nil {
			if err := trigger(g.Batch); err != nil {
				return nil, fmt.Errorf("medusa: triggering-kernels for batch %d: %w", g.Batch, err)
			}
		}
		nodes := make([]*cuda.Node, len(g.Nodes))
		for ni := range g.Nodes {
			node, err := r.buildNode(ni, &g.Nodes[ni])
			if err != nil {
				return nil, fmt.Errorf("medusa: graph %d node %d: %w", g.Batch, ni, err)
			}
			nodes[ni] = node
		}
		r.p.Clock().Advance(time.Duration(len(nodes)) * perNodeFillCost)
		ge, err := cuda.NewGraph(nodes).Instantiate(r.p)
		if err != nil {
			return nil, fmt.Errorf("medusa: instantiate restored graph %d: %w", g.Batch, err)
		}
		out[g.Batch] = ge
	}
	return out, nil
}

// buildNode materializes one node: kernel address plus parameter images.
func (r *Restorer) buildNode(id int, nr *NodeRecord) (*cuda.Node, error) {
	addr, err := r.resolveKernel(nr.KernelName)
	if err != nil {
		return nil, err
	}
	node := &cuda.Node{ID: id, KernelAddr: addr, Deps: append([]int(nil), nr.Deps...)}
	for pi, p := range nr.Params {
		var raw []byte
		if p.Pointer {
			if !r.have[p.AllocIndex] {
				return nil, fmt.Errorf("param %d: indirect index %d was never allocated", pi, p.AllocIndex)
			}
			raw = make([]byte, 8)
			binary.LittleEndian.PutUint64(raw, r.addr[p.AllocIndex]+p.Offset)
		} else {
			raw = append([]byte(nil), p.Raw...)
		}
		node.Params = append(node.Params, raw)
		node.ParamSizes = append(node.ParamSizes, len(raw))
	}
	return node, nil
}

// resolveKernel finds the process-local address of a kernel by name.
func (r *Restorer) resolveKernel(name string) (uint64, error) {
	// Already loaded (a triggering-kernel or earlier resolution brought
	// its module in)?
	if k, ok := r.p.KernelByName(name); ok {
		return k.Addr(), nil
	}
	loc, ok := r.art.Kernels[name]
	if !ok {
		return 0, fmt.Errorf("kernel %q not in artifact kernel table", name)
	}
	if loc.Exported {
		// dlopen → dlsym → cudaGetFuncBySymbol (§5, the common path:
		// "Most of the kernels … can be restored in such a way").
		ll, err := r.p.Linker().Dlopen(loc.Library)
		if err != nil {
			return 0, err
		}
		h, err := r.p.Linker().Dlsym(ll, name)
		if err != nil {
			return 0, err
		}
		k, err := r.p.GetFuncBySymbol(h)
		if err != nil {
			return 0, err
		}
		return k.Addr(), nil
	}
	// Hidden kernel: search the modules the triggering-kernels loaded,
	// enumerating kernels and comparing names (cuModuleEnumerateFunctions
	// + cuFuncGetName).
	for _, m := range r.p.LoadedModules() {
		for _, k := range r.p.ModuleEnumerateFunctions(m) {
			if k.Name() == name {
				return k.Addr(), nil
			}
		}
	}
	return 0, fmt.Errorf("hidden kernel %q not found in any loaded module — triggering-kernels did not load it", name)
}
