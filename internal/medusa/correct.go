package medusa

import (
	"fmt"
	"sort"
)

// The §4 pointer heuristic can misfire: an 8-byte integer scalar (a
// sampling seed, a packed descriptor) may carry a high address prefix
// and even collide with a live allocation's address. Such a false
// positive would be "restored" to a different value online, corrupting
// kernel behaviour. The paper's answer is validation forwarding: run
// the original and the speculative (restored) graphs and compare
// outputs, then correct mismatches. This file implements the
// correction search.

// ParamGroup identifies a parameter position structurally: the same
// kernel at the same argument slot across all nodes and graphs. A
// misclassified scalar is misclassified everywhere the kernel appears,
// so corrections apply group-wide.
type ParamGroup struct {
	// KernelName is the kernel whose parameter slot the group spans.
	KernelName string
	// ParamIndex is the zero-based argument slot within that kernel.
	ParamIndex int
}

// PointerGroups returns every group currently classified as pointer,
// in deterministic order.
func (a *Artifact) PointerGroups() []ParamGroup {
	seen := make(map[ParamGroup]bool)
	var out []ParamGroup
	for _, g := range a.Graphs {
		for _, n := range g.Nodes {
			for pi, p := range n.Params {
				if !p.Pointer {
					continue
				}
				pg := ParamGroup{KernelName: n.KernelName, ParamIndex: pi}
				if !seen[pg] {
					seen[pg] = true
					out = append(out, pg)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].KernelName != out[j].KernelName {
			return out[i].KernelName < out[j].KernelName
		}
		return out[i].ParamIndex < out[j].ParamIndex
	})
	return out
}

// setGroupPointer flips every parameter of the group to pointer=v,
// returning how many parameters changed. Demoting to constant restores
// the original raw image (kept for exactly this purpose).
func (a *Artifact) setGroupPointer(pg ParamGroup, v bool) int {
	changed := 0
	for gi := range a.Graphs {
		g := &a.Graphs[gi]
		for ni := range g.Nodes {
			n := &g.Nodes[ni]
			if n.KernelName != pg.KernelName || pg.ParamIndex >= len(n.Params) {
				continue
			}
			p := &n.Params[pg.ParamIndex]
			if p.Pointer != v && len(p.Raw) == 8 {
				p.Pointer = v
				changed++
			}
		}
	}
	return changed
}

// ValidateFunc runs validation forwarding against the artifact's
// current speculation: it restores the graphs in a fresh process, runs
// them next to a reference, and returns the batch sizes whose outputs
// mismatched (empty means the artifact is sound). The engine supplies
// this; Medusa stays agnostic of what "forwarding" means.
type ValidateFunc func(a *Artifact) (mismatched []int, err error)

// CorrectionResult summarizes a validation-and-correction pass.
type CorrectionResult struct {
	// Rounds is how many validation forwardings ran.
	Rounds int
	// Demoted lists groups corrected from pointer to constant.
	Demoted []ParamGroup
}

// ValidateAndCorrect runs the paper's validation loop: if the
// speculative graphs misbehave, demote suspect pointer groups to
// constants one at a time, keeping each demotion only if it repairs a
// mismatching batch. It returns an error if mismatches survive all
// candidate corrections.
func (a *Artifact) ValidateAndCorrect(validate ValidateFunc) (CorrectionResult, error) {
	var res CorrectionResult
	mismatched, err := validate(a)
	res.Rounds++
	if err != nil {
		return res, fmt.Errorf("medusa: validation forwarding failed: %w", err)
	}
	if len(mismatched) == 0 {
		return res, nil
	}
	for _, pg := range a.PointerGroups() {
		if a.setGroupPointer(pg, false) == 0 {
			continue
		}
		m2, err := validate(a)
		res.Rounds++
		if err != nil {
			// A demotion that breaks restoration outright is wrong:
			// revert and keep searching.
			a.setGroupPointer(pg, true)
			continue
		}
		if len(m2) < len(mismatched) {
			res.Demoted = append(res.Demoted, pg)
			mismatched = m2
			if len(mismatched) == 0 {
				return res, nil
			}
			continue
		}
		a.setGroupPointer(pg, true) // no improvement: revert
	}
	return res, fmt.Errorf("medusa: %d batch(es) still mismatch after correction (first: %d)",
		len(mismatched), mismatched[0])
}
