package medusa_test

import (
	"fmt"
	"log"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/gpu"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/vclock"
)

// Example walks the full materialization pipeline on a two-kernel
// pipeline: record a cold start, capture a graph, analyze it into an
// artifact, then restore it inside a process with a completely
// different address-space layout and replay it to the same result.
func Example() {
	rt := cuda.NewRuntime()
	rt.MustRegister(cuda.KernelImpl{
		Name: "double", Library: "libex.so", Module: "m", Exported: true,
		Params: []cuda.ParamKind{cuda.Ptr, cuda.Ptr, cuda.U32},
		Func: func(d *gpu.Device, a []cuda.Value) error {
			dst, dOff, _ := d.FindBuffer(a[0].Ptr())
			src, sOff, _ := d.FindBuffer(a[1].Ptr())
			n := int(a[2].U32())
			v, err := src.Float32s(int(sOff/4), n)
			if err != nil {
				return err
			}
			out := make([]float32, n)
			for i := range v {
				out[i] = 2 * v[i]
			}
			return dst.SetFloat32s(int(dOff/4), out)
		},
	})

	// ---- offline process ----
	p1 := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 1, Mode: gpu.Functional})
	rec := medusa.NewRecorder()
	p1.SetHooks(rec.Hooks())
	s1 := p1.NewStream()
	src1, _ := p1.Malloc(16)
	rec.LabelLastAlloc("src")
	dst1, _ := p1.Malloc(16)
	rec.LabelLastAlloc("dst")
	in, _, _ := p1.Device().FindBuffer(src1)
	in.SetFloat32s(0, []float32{1, 2, 3, 4})

	rec.MarkCaptureStageBegin()
	args := []cuda.Value{cuda.PtrValue(dst1), cuda.PtrValue(src1), cuda.U32Value(4)}
	p1.Launch(s1, "double", args) // warm-up loads the module
	s1.BeginCapture()
	p1.Launch(s1, "double", args)
	g, err := s1.EndCapture()
	if err != nil {
		log.Fatal(err)
	}
	rec.AttachGraph(1, g)
	rec.MarkCaptureStageEnd()
	rec.RecordKV(medusa.KVRecord{NumBlocks: 8, BlockBytes: 1024})

	art, err := medusa.Analyze(rec, p1, medusa.AnalyzeOptions{ModelName: "example"})
	if err != nil {
		log.Fatal(err)
	}
	stats := art.Stats()
	fmt.Printf("materialized %d node(s): %d pointer params, %d constants\n",
		art.TotalNodes(), stats.Pointers, stats.Constants)

	// ---- online process: different seed ⇒ different addresses ----
	p2 := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 999, Mode: gpu.Functional})
	rest, err := medusa.NewRestorer(p2, art)
	if err != nil {
		log.Fatal(err)
	}
	src2, _ := p2.Malloc(16) // natural control flow re-creates the prefix
	p2.Malloc(16)
	in2, _, _ := p2.Device().FindBuffer(src2)
	in2.SetFloat32s(0, []float32{1, 2, 3, 4})
	if err := rest.ReplayPrefix(); err != nil {
		log.Fatal(err)
	}
	if err := rest.ReplayCaptureStage(); err != nil {
		log.Fatal(err)
	}
	graphs, err := rest.RestoreGraphs(nil) // exported kernel: dlsym route
	if err != nil {
		log.Fatal(err)
	}
	if err := graphs[1].Launch(p2.NewStream()); err != nil {
		log.Fatal(err)
	}
	dstAddr, _ := rest.AddrOfLabel("dst")
	out, _, _ := p2.Device().FindBuffer(dstAddr)
	vals, _ := out.Float32s(0, 4)
	fmt.Printf("restored replay output: %v\n", vals)
	// Output:
	// materialized 1 node(s): 2 pointer params, 1 constants
	// restored replay output: [2 4 6 8]
}
