package medusa

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/gpu"
	"github.com/medusa-repro/medusa/internal/vclock"
)

// linearLocateLive is the reference oracle for TraceIndex.LocateLive:
// the allocation containing p among those live at eventPos, found by a
// full replay of the event prefix (the pre-index implementation of
// ScanIndirectPointers' locate).
func linearLocateLive(events []event, eventPos int, p uint64) (int, bool) {
	type span struct{ addr, size uint64 }
	freed := make(map[int]bool)
	spans := make(map[int]span)
	for _, ev := range events[:eventPos] {
		if ev.free {
			freed[ev.allocIndex] = true
			continue
		}
		freed[ev.allocIndex] = false
		spans[ev.allocIndex] = span{addr: ev.addr, size: ev.size}
	}
	for idx, sp := range spans {
		if !freed[idx] && p >= sp.addr && p < sp.addr+sp.size {
			return idx, true
		}
	}
	return 0, false
}

// TestIndexMatchesLinearOracles is the property test: on randomized
// alloc/free traces with heavy address reuse (freed ranges carved into
// smaller re-allocations, the allocator behaviour behind Figure 6), the
// indexed matcher must return identical (allocIndex, offset, ok) to the
// linear backwardMatch/firstMatch oracles for every probe address and
// event position, and LocateLive must agree with a full liveness replay.
func TestIndexMatchesLinearOracles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const base = uint64(0x7f40_0000_0000)
	for trial := 0; trial < 25; trial++ {
		rec := NewRecorder()
		hooks := rec.Hooks()
		type arange struct{ addr, size uint64 }
		type liveAlloc struct {
			idx        int
			addr, size uint64
		}
		var vacant []arange
		var live []liveAlloc
		next := base
		allocIdx := 0
		nEvents := 300 + rng.Intn(500)
		for len(rec.events) < nEvents {
			if len(live) > 0 && rng.Float64() < 0.4 {
				i := rng.Intn(len(live))
				a := live[i]
				hooks.OnAlloc(cuda.AllocEvent{Free: true, AllocIndex: a.idx, Addr: a.addr})
				vacant = append(vacant, arange{a.addr, a.size})
				live = append(live[:i], live[i+1:]...)
				continue
			}
			var addr, size uint64
			if len(vacant) > 0 && rng.Float64() < 0.6 {
				// Reuse: carve a prefix of a vacant range — same base
				// address, possibly smaller size, remainder stays
				// vacant. Live ranges stay disjoint, as with a real
				// allocator.
				vi := rng.Intn(len(vacant))
				v := vacant[vi]
				size = 8 * uint64(1+rng.Intn(int(v.size/8)))
				addr = v.addr
				if size < v.size {
					vacant[vi] = arange{v.addr + size, v.size - size}
				} else {
					vacant = append(vacant[:vi], vacant[vi+1:]...)
				}
			} else {
				size = 8 * uint64(1+rng.Intn(64))
				addr = next
				next += size
				if rng.Float64() < 0.3 {
					next += 8 * uint64(rng.Intn(8)) // leave a gap
				}
			}
			hooks.OnAlloc(cuda.AllocEvent{AllocIndex: allocIdx, Size: size, Addr: addr})
			live = append(live, liveAlloc{allocIdx, addr, size})
			allocIdx++
		}

		ix := rec.Index()
		for q := 0; q < 1500; q++ {
			var p uint64
			if rng.Float64() < 0.8 {
				ev := rec.events[rng.Intn(len(rec.events))]
				if ev.free {
					continue
				}
				p = ev.addr + uint64(rng.Intn(int(ev.size)))
			} else {
				p = base + uint64(rng.Intn(1<<16))
			}
			pos := rng.Intn(len(rec.events) + 1)

			gi, gOff, gOK := ix.BackwardMatch(pos, p)
			wi, wOff, wOK := rec.backwardMatch(pos, p)
			if gi != wi || gOff != wOff || gOK != wOK {
				t.Fatalf("trial %d: BackwardMatch(%d, %#x) = (%d,%d,%v), oracle (%d,%d,%v)",
					trial, pos, p, gi, gOff, gOK, wi, wOff, wOK)
			}
			fi, fOff, fOK := ix.FirstMatch(p)
			li, lOff, lOK := rec.firstMatch(p)
			if fi != li || fOff != lOff || fOK != lOK {
				t.Fatalf("trial %d: FirstMatch(%#x) = (%d,%d,%v), oracle (%d,%d,%v)",
					trial, p, fi, fOff, fOK, li, lOff, lOK)
			}
			ii, iOK := ix.LocateLive(pos, p)
			oi, oOK := linearLocateLive(rec.events, pos, p)
			if ii != oi || iOK != oOK {
				t.Fatalf("trial %d: LocateLive(%d, %#x) = (%d,%v), oracle (%d,%v)",
					trial, pos, p, ii, iOK, oi, oOK)
			}
		}
	}
}

// TestIndexResolvesAddressReuse crafts the Figure 6 scenario: a freed
// buffer's address handed to a later allocation. Backward matching from
// the launch position must resolve to the later allocation; the naive
// first-match strawman picks the earlier, freed one.
func TestIndexResolvesAddressReuse(t *testing.T) {
	const x = uint64(0x7f50_0000_0000)
	rec := NewRecorder()
	hooks := rec.Hooks()
	hooks.OnAlloc(cuda.AllocEvent{AllocIndex: 0, Size: 64, Addr: x})
	hooks.OnAlloc(cuda.AllocEvent{Free: true, AllocIndex: 0, Addr: x})
	hooks.OnAlloc(cuda.AllocEvent{AllocIndex: 1, Size: 64, Addr: x}) // full reuse
	hooks.OnAlloc(cuda.AllocEvent{Free: true, AllocIndex: 1, Addr: x})
	hooks.OnAlloc(cuda.AllocEvent{AllocIndex: 2, Size: 16, Addr: x + 8}) // partial, interior reuse
	ix := rec.Index()

	// A launch after event 3 referencing x+8 sees allocation 1.
	if idx, off, ok := ix.BackwardMatch(3, x+8); !ok || idx != 1 || off != 8 {
		t.Fatalf("BackwardMatch(3) = (%d,%d,%v), want (1,8,true)", idx, off, ok)
	}
	// A launch after event 5 referencing x+8 sees allocation 2 (offset 0).
	if idx, off, ok := ix.BackwardMatch(5, x+8); !ok || idx != 2 || off != 0 {
		t.Fatalf("BackwardMatch(5) = (%d,%d,%v), want (2,0,true)", idx, off, ok)
	}
	// x+4 is covered only by the 64-byte allocations, not the interior one.
	if idx, _, ok := ix.BackwardMatch(5, x+4); !ok || idx != 1 {
		t.Fatalf("BackwardMatch(5, x+4) = (%d,_,%v), want (1,true)", idx, ok)
	}
	// The strawman returns the first, long-freed allocation (the false
	// positive validation forwarding exists to catch).
	if idx, _, ok := ix.FirstMatch(x + 8); !ok || idx != 0 {
		t.Fatalf("FirstMatch = (%d,_,%v), want (0,true)", idx, ok)
	}
	// Liveness: at position 5 only allocation 2 is live; x+4 is dead space.
	if idx, ok := ix.LocateLive(5, x+8); !ok || idx != 2 {
		t.Fatalf("LocateLive(5, x+8) = (%d,%v), want (2,true)", idx, ok)
	}
	if _, ok := ix.LocateLive(5, x+4); ok {
		t.Fatal("LocateLive(5, x+4) found a live allocation in freed space")
	}
	if _, ok := ix.LocateLive(2, x); ok {
		t.Fatal("LocateLive(2, x) found allocation 0 after its free")
	}
}

// multiGraphFixture records an offline run with several captured graphs
// and an address-reuse probe between batches, mirroring the engine's
// capture loop closely enough to exercise the parallel analysis merge.
func multiGraphFixture(t *testing.T, batches []int) (*cuda.Process, *Recorder) {
	t.Helper()
	rt := toyRuntime()
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 7, Mode: gpu.CostOnly})
	rec := NewRecorder()
	p.SetHooks(rec.Hooks())
	s := p.NewStream()
	src := mustMalloc(t, p, 1<<12)
	dst := mustMalloc(t, p, 1<<12)
	rec.MarkCaptureStageBegin()
	args := []cuda.Value{cuda.PtrValue(dst), cuda.PtrValue(src), cuda.F32Value(2), cuda.U32Value(64)}
	for _, b := range batches {
		// Warm-up launch plus the 4-byte probe whose freed address the
		// next iteration's workspace reuses (Figure 6 aliasing).
		if err := p.Launch(s, "toy_scale", args); err != nil {
			t.Fatal(err)
		}
		probe := mustMalloc(t, p, 4)
		if err := p.Free(probe); err != nil {
			t.Fatal(err)
		}
		ws := mustMalloc(t, p, 4)
		wargs := []cuda.Value{cuda.PtrValue(dst), cuda.PtrValue(ws), cuda.F32Value(1), cuda.U32Value(1)}
		if err := s.BeginCapture(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b*8; i++ {
			a := args
			if i%3 == 0 {
				a = wargs
			}
			if err := p.Launch(s, "toy_scale", a); err != nil {
				t.Fatal(err)
			}
		}
		g, err := s.EndCapture()
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.AttachGraph(b, g); err != nil {
			t.Fatal(err)
		}
	}
	rec.MarkCaptureStageEnd()
	rec.RecordKV(KVRecord{NumBlocks: 1, BlockBytes: 1})
	return p, rec
}

// TestAnalyzeParallelDeterminism asserts the determinism invariant the
// artifact store relies on: the encoded bytes are bit-identical at any
// worker count, and the indexed matcher changes nothing vs. the linear
// reference implementation.
func TestAnalyzeParallelDeterminism(t *testing.T) {
	p, rec := multiGraphFixture(t, []int{1, 2, 4, 8, 16, 32})
	encode := func(opts AnalyzeOptions) []byte {
		t.Helper()
		opts.ModelName = "det"
		opts.SkipContents = true
		art, err := Analyze(rec, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := art.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	want := encode(AnalyzeOptions{Parallelism: 1})
	for _, workers := range []int{2, 8} {
		if got := encode(AnalyzeOptions{Parallelism: workers}); !bytes.Equal(got, want) {
			t.Fatalf("artifact bytes differ between 1 and %d analysis workers", workers)
		}
	}
	if got := encode(AnalyzeOptions{LinearMatch: true, Parallelism: 1}); !bytes.Equal(got, want) {
		t.Fatal("indexed analysis produced different bytes than the linear reference")
	}
	if got := encode(AnalyzeOptions{LinearMatch: true, Parallelism: 8}); !bytes.Equal(got, want) {
		t.Fatal("parallel linear analysis produced different bytes")
	}
	// The ablation strawman must also be worker-count- and
	// index-independent (it differs from backward matching in content,
	// not determinism).
	naiveWant := encode(AnalyzeOptions{NaiveFirstMatch: true, Parallelism: 1})
	if got := encode(AnalyzeOptions{NaiveFirstMatch: true, Parallelism: 8}); !bytes.Equal(got, naiveWant) {
		t.Fatal("naive first-match analysis not deterministic across workers")
	}
	if got := encode(AnalyzeOptions{NaiveFirstMatch: true, LinearMatch: true, Parallelism: 1}); !bytes.Equal(got, naiveWant) {
		t.Fatal("indexed first-match differs from linear first-match")
	}
}
