package medusa

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/medusa-repro/medusa/internal/faults"
)

// FuzzDecode hardens the artifact parser: arbitrary bytes must never
// panic, and anything that decodes successfully must re-encode to a
// byte-identical artifact (canonical form).
func FuzzDecode(f *testing.F) {
	// Seed with a small hand-built artifact and corruptions of it.
	art := &Artifact{
		FormatVersion: CurrentFormatVersion,
		ModelName:     "fuzz",
		AllocCount:    1,
		AllocSeq:      []AllocRecord{{AllocIndex: 0, Size: 64, Label: "weights"}},
		PrefixLen:     1,
		Graphs: []GraphRecord{{Batch: 1, Nodes: []NodeRecord{{
			KernelName: "k",
			Params: []ParamRecord{
				{Raw: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Pointer: true, AllocIndex: 0, Offset: 8},
				{Raw: []byte{9, 9, 9, 9}},
			},
		}}}},
		Kernels:   map[string]KernelLoc{"k": {Library: "lib.so", Exported: true}},
		Permanent: []PermRecord{{AllocIndex: 0, Size: 4, Contents: []byte{1, 2, 3, 4}}},
		KV:        KVRecord{FreeMemBytes: 1 << 20, NumBlocks: 2, BlockBytes: 4},
	}
	raw, err := art.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:16])
	f.Add([]byte("MDSA"))
	f.Add([]byte{})
	trunc := append([]byte(nil), raw[:len(raw)/2]...)
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		re, err := a.Encode()
		if err != nil {
			t.Fatalf("decoded artifact fails to re-encode: %v", err)
		}
		again, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded artifact fails to decode: %v", err)
		}
		re2, err := again.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("encode → decode → encode is not a fixed point")
		}
	})
}

// buildFuzzArtifact derives a structurally valid artifact from a seeded
// generator, so the round-trip fuzzer explores the encoder's whole
// input space (not just what byte-level mutation of one seed reaches).
func buildFuzzArtifact(rng *rand.Rand, nAlloc, nGraphs, nKernels int, omitContents bool) *Artifact {
	a := &Artifact{
		FormatVersion: CurrentFormatVersion,
		ModelName:     fmt.Sprintf("fuzz-%x", rng.Int63()),
		AllocCount:    nAlloc,
		Kernels:       make(map[string]KernelLoc),
	}
	for i := 0; i < nAlloc; i++ {
		label := ""
		if rng.Intn(2) == 0 {
			label = fmt.Sprintf("buf%d", i)
		}
		a.AllocSeq = append(a.AllocSeq, AllocRecord{AllocIndex: i, Size: uint64(rng.Int63()), Label: label})
		if rng.Intn(3) == 0 {
			a.AllocSeq = append(a.AllocSeq, AllocRecord{Free: true, AllocIndex: rng.Intn(i + 1)})
		}
	}
	a.PrefixLen = rng.Intn(len(a.AllocSeq) + 1)

	names := make([]string, nKernels)
	for i := range names {
		names[i] = fmt.Sprintf("kernel_%d", i)
		a.Kernels[names[i]] = KernelLoc{Library: fmt.Sprintf("lib%d.so", rng.Intn(3)), Exported: rng.Intn(2) == 0}
	}
	if nKernels > 0 {
		for gi := 0; gi < nGraphs; gi++ {
			g := GraphRecord{Batch: 1 << gi}
			nNodes := rng.Intn(4)
			for ni := 0; ni < nNodes; ni++ {
				n := NodeRecord{KernelName: names[rng.Intn(nKernels)]}
				for pi := rng.Intn(3); pi > 0; pi-- {
					raw := make([]byte, 4+4*rng.Intn(2))
					rng.Read(raw)
					p := ParamRecord{Raw: raw}
					if nAlloc > 0 && rng.Intn(2) == 0 {
						p.Pointer = true
						p.AllocIndex = rng.Intn(nAlloc)
						p.Offset = uint64(rng.Intn(1 << 20))
					}
					n.Params = append(n.Params, p)
				}
				for di := rng.Intn(2); di > 0 && nNodes > 0; di-- {
					n.Deps = append(n.Deps, rng.Intn(nNodes))
				}
				g.Nodes = append(g.Nodes, n)
			}
			a.Graphs = append(a.Graphs, g)
		}
	}
	for i := 0; i < nAlloc && i < rng.Intn(nAlloc+1); i++ {
		pr := PermRecord{AllocIndex: rng.Intn(nAlloc)}
		if omitContents {
			pr.Size = uint64(rng.Intn(1 << 16))
		} else {
			pr.Contents = make([]byte, rng.Intn(64))
			rng.Read(pr.Contents)
			pr.Size = uint64(len(pr.Contents))
		}
		a.Permanent = append(a.Permanent, pr)
	}
	a.KV = KVRecord{FreeMemBytes: uint64(rng.Int63()), NumBlocks: rng.Intn(1 << 16), BlockBytes: uint64(rng.Intn(1 << 24))}
	return a
}

// FuzzDecodeCorrupted hardens the decoder against damage to otherwise
// valid artifacts: construct a valid artifact, flip one fuzzed byte
// (and optionally truncate), and require Decode to return an error —
// never a panic, and never a silently wrong artifact. Flips inside the
// body must be caught by a checksum and surface as the typed
// *faults.ArtifactCorruptError the degradation paths dispatch on.
func FuzzDecodeCorrupted(f *testing.F) {
	f.Add(int64(1), uint32(20), uint8(0xff), uint16(0))
	f.Add(int64(2), uint32(0), uint8(1), uint16(0))
	f.Add(int64(3), uint32(5), uint8(0x80), uint16(4))
	f.Add(int64(4), uint32(1<<31), uint8(7), uint16(100))

	f.Fuzz(func(t *testing.T, seed int64, pos uint32, mask uint8, truncate uint16) {
		rng := rand.New(rand.NewSource(seed))
		art := buildFuzzArtifact(rng, 3, 2, 2, false)
		raw, err := art.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if mask == 0 {
			mask = 1 // guarantee the flip changes the byte
		}
		idx := int(pos % uint32(len(raw)))
		mut := append([]byte(nil), raw...)
		mut[idx] ^= mask
		if truncate > 0 {
			mut = mut[:len(mut)-int(uint32(truncate)%uint32(len(mut)))]
		}
		decoded, err := Decode(mut)
		if err == nil {
			t.Fatalf("corrupting byte %d (mask %#x, truncate %d) decoded cleanly: %+v", idx, mask, truncate, decoded)
		}
		// An untruncated flip inside the body leaves structure intact, so
		// it must be caught by checksum and reported as the typed error.
		if truncate == 0 && idx >= 16 {
			var corrupt *faults.ArtifactCorruptError
			if !errors.As(err, &corrupt) {
				t.Fatalf("body flip at %d surfaced %T (%v), want *faults.ArtifactCorruptError", idx, err, err)
			}
			if corrupt.Section == "" {
				t.Fatalf("corrupt error without a section: %v", corrupt)
			}
		}
	})
}

// TestDecodeCorruptLocalizesSection pins the v2 trailer's purpose: a
// byte flip inside a known section is attributed to that section.
func TestDecodeCorruptLocalizesSection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	art := buildFuzzArtifact(rng, 4, 3, 3, false)
	raw, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sections, err := art.SectionSizes()
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for _, sec := range sections {
		start, end := off, off+int(sec.Bytes)
		off = end
		if sec.Name == "envelope" || sec.Name == "section_crcs" || sec.Bytes == 0 {
			continue
		}
		mut := append([]byte(nil), raw...)
		mut[start+int(sec.Bytes)/2] ^= 0x55
		_, err := Decode(mut)
		var corrupt *faults.ArtifactCorruptError
		if !errors.As(err, &corrupt) {
			t.Fatalf("flip in %s: got %T (%v), want ArtifactCorruptError", sec.Name, err, err)
		}
		if corrupt.Section != sec.Name {
			t.Errorf("flip in %s attributed to %q", sec.Name, corrupt.Section)
		}
	}
	if off != len(raw) {
		t.Fatalf("SectionSizes covered %d of %d bytes", off, len(raw))
	}
}

// FuzzTemplateRoundTrip is the v3 analogue of FuzzArtifactRoundTrip:
// build a template from one structure-fuzzed artifact, delta-encode a
// second (independently fuzzed) artifact against it, and require the
// template-resolved decode to be lossless and both encodings to be
// canonical fixed points — including across the v2/v3 boundary, where
// the resolved artifact's self-contained encoding must be byte-equal
// to encoding the original directly.
func FuzzTemplateRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(3), uint8(2), uint8(4), false)
	f.Add(int64(9), int64(9), uint8(5), uint8(3), uint8(3), true) // self-delta
	f.Add(int64(3), int64(-8), uint8(0), uint8(0), uint8(0), false)
	f.Add(int64(100), int64(7), uint8(1), uint8(3), uint8(1), true)

	f.Fuzz(func(t *testing.T, refSeed, tgtSeed int64, nAlloc, nGraphs, nKernels uint8, omitContents bool) {
		ref := buildFuzzArtifact(rand.New(rand.NewSource(refSeed)), int(nAlloc%9)+1, int(nGraphs%4), int(nKernels%6), omitContents)
		tgt := buildFuzzArtifact(rand.New(rand.NewSource(tgtSeed)), int(nAlloc%9)+1, int(nGraphs%4), int(nKernels%6), omitContents)
		tmpl, err := BuildTemplate("medusa/templates/fuzz", ref)
		if err != nil {
			t.Fatalf("template from valid artifact: %v", err)
		}
		delta, err := tgt.EncodeDelta(tmpl)
		if err != nil {
			t.Fatalf("delta-encoding valid artifact: %v", err)
		}
		resolve := func(id string) (*Template, bool) {
			if id == tmpl.ID() {
				return tmpl, true
			}
			return nil, false
		}
		decoded, err := DecodeResolved(delta, resolve)
		if err != nil {
			t.Fatalf("template-resolved decode: %v", err)
		}
		if !reflect.DeepEqual(tgt, decoded) {
			t.Fatalf("v3 round trip is lossy:\nencoded %+v\ndecoded %+v", tgt, decoded)
		}
		v2, err := tgt.Encode()
		if err != nil {
			t.Fatal(err)
		}
		crossV2, err := decoded.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v2, crossV2) {
			t.Fatal("decode(v3) does not re-encode to the original v2 bytes")
		}
		reDelta, err := decoded.EncodeDelta(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(delta, reDelta) {
			t.Fatal("delta encoding is not canonical: re-encoding a resolved artifact differs")
		}
		// The template's own encoding must also be a fixed point.
		tmpl2, err := DecodeTemplate(tmpl.Encode())
		if err != nil {
			t.Fatalf("re-decoding an encoded template: %v", err)
		}
		if !bytes.Equal(tmpl.Encode(), tmpl2.Encode()) {
			t.Fatal("template encode → decode → encode is not a fixed point")
		}
	})
}

// FuzzDeltaCorrupted is FuzzDecodeCorrupted for v3 containers: flip one
// byte of a valid template+delta encoding (optionally truncate) and
// require the resolved decode to fail with a typed, section-localized
// error — never a panic, never a silently wrong artifact.
func FuzzDeltaCorrupted(f *testing.F) {
	f.Add(int64(1), uint32(20), uint8(0xff), uint16(0))
	f.Add(int64(2), uint32(0), uint8(1), uint16(0))
	f.Add(int64(3), uint32(5), uint8(0x80), uint16(4))
	f.Add(int64(4), uint32(1<<31), uint8(7), uint16(100))

	f.Fuzz(func(t *testing.T, seed int64, pos uint32, mask uint8, truncate uint16) {
		rng := rand.New(rand.NewSource(seed))
		ref := buildFuzzArtifact(rng, 3, 2, 2, false)
		tgt := buildFuzzArtifact(rng, 3, 2, 2, false)
		tmpl, err := BuildTemplate("medusa/templates/fuzz", ref)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := tgt.EncodeDelta(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		if mask == 0 {
			mask = 1
		}
		idx := int(pos % uint32(len(raw)))
		mut := append([]byte(nil), raw...)
		mut[idx] ^= mask
		if truncate > 0 {
			mut = mut[:len(mut)-int(uint32(truncate)%uint32(len(mut)))]
		}
		resolve := func(id string) (*Template, bool) {
			if id == tmpl.ID() {
				return tmpl, true
			}
			return nil, false
		}
		decoded, err := DecodeResolved(mut, resolve)
		if err == nil {
			t.Fatalf("corrupting byte %d (mask %#x, truncate %d) decoded cleanly: %+v", idx, mask, truncate, decoded)
		}
		if truncate == 0 && idx >= 16 {
			// A body flip leaves the envelope parseable, so the failure
			// must be one of the typed template-path errors — a checksum
			// hit localized to a wire section, or (if the flip lands in
			// the template reference and dodges every CRC, which it
			// cannot) a missing/mismatched template.
			var corrupt *faults.ArtifactCorruptError
			if !errors.As(err, &corrupt) {
				t.Fatalf("body flip at %d surfaced %T (%v), want *faults.ArtifactCorruptError", idx, err, err)
			}
			if corrupt.Section == "" {
				t.Fatalf("corrupt error without a section: %v", corrupt)
			}
		}
	})
}

// FuzzDecodeTemplate hardens the template parser the way FuzzDecode
// hardens the artifact parser: arbitrary bytes never panic, and
// anything that decodes must re-encode canonically.
func FuzzDecodeTemplate(f *testing.F) {
	rng := rand.New(rand.NewSource(17))
	art := buildFuzzArtifact(rng, 3, 2, 2, false)
	tmpl, err := BuildTemplate("medusa/templates/fuzz", art)
	if err != nil {
		f.Fatal(err)
	}
	raw := tmpl.Encode()
	f.Add(raw)
	f.Add(raw[:16])
	f.Add([]byte("MDST"))
	f.Add([]byte{})
	f.Add(append([]byte(nil), raw[:len(raw)/2]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeTemplate(data)
		if err != nil {
			return
		}
		re := decoded.Encode()
		again, err := DecodeTemplate(re)
		if err != nil {
			t.Fatalf("re-encoded template fails to decode: %v", err)
		}
		if !bytes.Equal(re, again.Encode()) {
			t.Fatal("template encode → decode → encode is not a fixed point")
		}
	})
}

// FuzzArtifactRoundTrip is the structure-aware complement to FuzzDecode:
// it constructs valid artifacts from fuzzed shape parameters and
// asserts the wire format is lossless (decode returns a deeply equal
// artifact) and canonical (re-encoding is byte-identical).
func FuzzArtifactRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2), uint8(4), false)
	f.Add(int64(2), uint8(0), uint8(0), uint8(0), true)
	f.Add(int64(3), uint8(7), uint8(3), uint8(1), true)
	f.Add(int64(-12345), uint8(1), uint8(1), uint8(9), false)

	f.Fuzz(func(t *testing.T, seed int64, nAlloc, nGraphs, nKernels uint8, omitContents bool) {
		rng := rand.New(rand.NewSource(seed))
		art := buildFuzzArtifact(rng, int(nAlloc%9), int(nGraphs%4), int(nKernels%6), omitContents)
		raw, err := art.Encode()
		if err != nil {
			t.Fatalf("constructed artifact refuses to encode: %v", err)
		}
		decoded, err := Decode(raw)
		if err != nil {
			t.Fatalf("encoded artifact refuses to decode: %v", err)
		}
		if !reflect.DeepEqual(art, decoded) {
			t.Fatalf("wire format is lossy:\nencoded %+v\ndecoded %+v", art, decoded)
		}
		re, err := decoded.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, re) {
			t.Fatal("re-encoding a decoded artifact is not byte-identical")
		}
	})
}
