package medusa

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the artifact parser: arbitrary bytes must never
// panic, and anything that decodes successfully must re-encode to a
// byte-identical artifact (canonical form).
func FuzzDecode(f *testing.F) {
	// Seed with a small hand-built artifact and corruptions of it.
	art := &Artifact{
		FormatVersion: CurrentFormatVersion,
		ModelName:     "fuzz",
		AllocCount:    1,
		AllocSeq:      []AllocRecord{{AllocIndex: 0, Size: 64, Label: "weights"}},
		PrefixLen:     1,
		Graphs: []GraphRecord{{Batch: 1, Nodes: []NodeRecord{{
			KernelName: "k",
			Params: []ParamRecord{
				{Raw: []byte{1, 2, 3, 4, 5, 6, 7, 8}, Pointer: true, AllocIndex: 0, Offset: 8},
				{Raw: []byte{9, 9, 9, 9}},
			},
		}}}},
		Kernels:   map[string]KernelLoc{"k": {Library: "lib.so", Exported: true}},
		Permanent: []PermRecord{{AllocIndex: 0, Size: 4, Contents: []byte{1, 2, 3, 4}}},
		KV:        KVRecord{FreeMemBytes: 1 << 20, NumBlocks: 2, BlockBytes: 4},
	}
	raw, err := art.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:16])
	f.Add([]byte("MDSA"))
	f.Add([]byte{})
	trunc := append([]byte(nil), raw[:len(raw)/2]...)
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		re, err := a.Encode()
		if err != nil {
			t.Fatalf("decoded artifact fails to re-encode: %v", err)
		}
		again, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded artifact fails to decode: %v", err)
		}
		re2, err := again.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("encode → decode → encode is not a fixed point")
		}
	})
}
