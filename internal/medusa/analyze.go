package medusa

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/dl"
)

// Pointer-looking 8-byte scalars carry a high canonical address prefix.
// The range below covers the device heap and stays below the library
// text segments; false positives inside it are possible (which is why
// validation exists) but rare, matching the paper's observation.
const (
	ptrPrefixLo = uint64(0x7f00_0000_0000)
	ptrPrefixHi = uint64(0x8000_0000_0000)
)

// looksLikePointer applies the §4 heuristic: 8 bytes wide and a high
// address prefix.
func looksLikePointer(raw []byte) (uint64, bool) {
	if len(raw) != 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(raw)
	return v, v >= ptrPrefixLo && v < ptrPrefixHi
}

// AnalyzeOptions tunes the analysis stage.
type AnalyzeOptions struct {
	// ModelName stamps the artifact.
	ModelName string
	// NaiveFirstMatch replaces the trace-based backward matching with a
	// forward first-match over the allocation sequence — the strawman of
	// §4.1/Figure 6 that produces false positives under address reuse.
	// Exists for the ablation benchmark only.
	NaiveFirstMatch bool
	// SkipContents omits permanent buffer contents (forced for
	// cost-only devices, where there is no data plane).
	SkipContents bool
	// LinearMatch forces the O(events) linear walkers
	// (backwardMatch/firstMatch) instead of the interval index — the
	// original implementation, kept as the reference oracle for the
	// property tests and the wall-clock ablation benchmarks.
	LinearMatch bool
	// Parallelism caps the per-graph analysis worker pool; 0 uses
	// GOMAXPROCS. The encoded artifact is bit-identical for any value
	// (the artifact is CRC'd and stored, so the merge is deterministic).
	Parallelism int
}

// Analyze synthesizes the recorder's observations into an Artifact: the
// paper's offline analysis stage.
func Analyze(rec *Recorder, proc *cuda.Process, opts AnalyzeOptions) (*Artifact, error) {
	if err := rec.check(); err != nil {
		return nil, err
	}
	art := &Artifact{
		FormatVersion: CurrentFormatVersion,
		ModelName:     opts.ModelName,
		PrefixLen:     rec.captureStageBegin,
		Kernels:       make(map[string]KernelLoc),
		KV:            rec.kv,
	}

	// Materialize the (de)allocation sequence up to the capture stage
	// end. Later events (post-capture serving activity, if any) are not
	// part of the cold start being materialized.
	allocCount := 0
	for _, ev := range rec.events[:rec.captureStageEnd] {
		art.AllocSeq = append(art.AllocSeq, AllocRecord{
			Free:       ev.free,
			AllocIndex: ev.allocIndex,
			Size:       ev.size,
			Label:      ev.label,
		})
		if !ev.free {
			allocCount++
		}
	}
	art.AllocCount = allocCount

	// Materialize each captured graph. The 35 per-batch-size graphs are
	// independent, so node/param classification fans out across a worker
	// pool; the merge below is index-ordered, keeping the artifact
	// bit-identical regardless of worker count.
	var ix *TraceIndex
	if !opts.LinearMatch {
		ix = rec.Index()
	}
	outs := make([]graphAnalysis, len(rec.graphs))
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rec.graphs) {
		workers = len(rec.graphs)
	}
	if workers > 1 {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for gi := range jobs {
					outs[gi] = analyzeGraph(rec, proc, ix, opts, gi)
				}
			}()
		}
		for gi := range rec.graphs {
			jobs <- gi
		}
		close(jobs)
		wg.Wait()
	} else {
		for gi := range rec.graphs {
			outs[gi] = analyzeGraph(rec, proc, ix, opts, gi)
		}
	}

	// Deterministic merge, in captured-graph order. The kernel table is
	// a map (sorted at encode time) and referenced indices only feed the
	// permanent-buffer set, so merge order cannot leak into the bytes;
	// errors surface in graph order so failures are stable too.
	referenced := make(map[int]bool) // alloc indices referenced by pointers
	for gi := range outs {
		o := &outs[gi]
		if o.err != nil {
			return nil, o.err
		}
		art.Graphs = append(art.Graphs, o.gr)
		for idx := range o.referenced {
			referenced[idx] = true
		}
		for name, loc := range o.kernels {
			art.Kernels[name] = loc
		}
	}

	// Buffer content classification (§4.3). Only capture-stage
	// allocations that are still live at capture end and referenced by
	// some graph need their contents saved.
	if err := classifyPermanent(rec, proc, art, referenced, opts.SkipContents); err != nil {
		return nil, err
	}

	if err := art.validate(); err != nil {
		return nil, fmt.Errorf("medusa: analysis produced inconsistent artifact: %w", err)
	}
	return art, nil
}

// graphAnalysis is one worker's output for one captured graph.
type graphAnalysis struct {
	gr         GraphRecord
	referenced map[int]bool
	kernels    map[string]KernelLoc
	err        error
}

// analyzeGraph materializes one captured graph: node topology, kernel
// locations, and constant-vs-pointer classification of every parameter
// via the §4.1 indirect index pointer analysis. It only reads shared
// state (the recorder's events, the index, the process's kernel and
// symbol tables), so any number of instances may run concurrently.
func analyzeGraph(rec *Recorder, proc *cuda.Process, ix *TraceIndex, opts AnalyzeOptions, gi int) graphAnalysis {
	cg := rec.graphs[gi]
	out := graphAnalysis{
		gr:         GraphRecord{Batch: cg.batch},
		referenced: make(map[int]bool),
		kernels:    make(map[string]KernelLoc),
	}
	match := func(eventPos int, p uint64) (int, uint64, bool) {
		switch {
		case opts.NaiveFirstMatch && opts.LinearMatch:
			return rec.firstMatch(p)
		case opts.NaiveFirstMatch:
			return ix.FirstMatch(p)
		case opts.LinearMatch:
			return rec.backwardMatch(eventPos, p)
		default:
			return ix.BackwardMatch(eventPos, p)
		}
	}
	for ni, node := range cg.graph.Nodes() {
		l := cg.launches[ni]
		nr := NodeRecord{Deps: append([]int(nil), node.Deps...)}

		k, ok := proc.KernelByAddr(node.KernelAddr)
		if !ok {
			out.err = fmt.Errorf("medusa: graph %d node %d: no kernel at %#x", cg.batch, ni, node.KernelAddr)
			return out
		}
		nr.KernelName = k.Name()
		if _, seen := out.kernels[nr.KernelName]; !seen {
			loc, err := locateKernel(proc.Runtime().DL(), nr.KernelName)
			if err != nil {
				out.err = err
				return out
			}
			out.kernels[nr.KernelName] = loc
		}

		for _, raw := range node.Params {
			pr := ParamRecord{Raw: append([]byte(nil), raw...)}
			if p, isPtr := looksLikePointer(raw); isPtr {
				if idx, off, found := match(l.eventPos, p); found {
					pr.Pointer = true
					pr.AllocIndex = idx
					pr.Offset = off
					out.referenced[idx] = true
				}
				// A high-prefix scalar matching no allocation stays
				// a constant: its value is not an address Medusa
				// manages. Validation forwarding covers the case
				// where this speculation is wrong.
			}
			nr.Params = append(nr.Params, pr)
		}
		out.gr.Nodes = append(out.gr.Nodes, nr)
	}
	return out
}

// locateKernel records how the online phase can find a kernel: its
// library, and whether dlsym will resolve it there. This inspects the
// on-disk symbol tables (available offline), never process state.
func locateKernel(reg *dl.Registry, name string) (KernelLoc, error) {
	lib, sym, ok := reg.FindSymbol(name)
	if !ok {
		return KernelLoc{}, fmt.Errorf("medusa: kernel %q not found in any installed library", name)
	}
	return KernelLoc{Library: lib.Name, Exported: sym.Exported}, nil
}

// backwardMatch implements the paper's trace-based indirect index
// pointer analysis: starting from the launch's position in the event
// stream, walk backwards and return the first allocation whose range
// contains p. Because kernels only use buffers that are live at launch,
// the nearest preceding allocation is the right one even when freed
// buffers were reallocated at the same address (Figure 6).
func (r *Recorder) backwardMatch(eventPos int, p uint64) (allocIndex int, offset uint64, ok bool) {
	for i := eventPos - 1; i >= 0; i-- {
		ev := r.events[i]
		if ev.free {
			continue
		}
		if p >= ev.addr && p < ev.addr+ev.size {
			return ev.allocIndex, p - ev.addr, true
		}
	}
	return 0, 0, false
}

// firstMatch is the naive strawman: scan the allocation sequence from
// the beginning and take the first range containing p, ignoring launch
// position. Under address reuse this picks the wrong (earlier, freed)
// allocation.
func (r *Recorder) firstMatch(p uint64) (allocIndex int, offset uint64, ok bool) {
	for _, ev := range r.events {
		if ev.free {
			continue
		}
		if p >= ev.addr && p < ev.addr+ev.size {
			return ev.allocIndex, p - ev.addr, true
		}
	}
	return 0, 0, false
}

// classifyPermanent implements §4.3: among capture-stage allocations,
// those freed before the stage ends are temporaries (replayed but
// content-free); those still live and referenced by a graph are
// permanent and have their contents saved.
func classifyPermanent(rec *Recorder, proc *cuda.Process, art *Artifact, referenced map[int]bool, skipContents bool) error {
	type allocState struct {
		addr  uint64
		size  uint64
		pos   int // event position of the allocation
		freed bool
	}
	states := make(map[int]*allocState)
	for pos, ev := range rec.events[:rec.captureStageEnd] {
		if ev.free {
			if st := states[ev.allocIndex]; st != nil {
				st.freed = true
			}
			continue
		}
		states[ev.allocIndex] = &allocState{addr: ev.addr, size: ev.size, pos: pos}
	}
	for idx, st := range states {
		if st.pos < rec.captureStageBegin || st.freed || !referenced[idx] {
			continue
		}
		pr := PermRecord{AllocIndex: idx, Size: st.size}
		if !skipContents {
			buf, ok := proc.Device().Buffer(st.addr)
			if !ok {
				return fmt.Errorf("medusa: permanent allocation %d at %#x vanished", idx, st.addr)
			}
			contents, err := buf.Snapshot()
			if err != nil {
				return fmt.Errorf("medusa: snapshot permanent allocation %d: %w", idx, err)
			}
			pr.Contents = contents
		}
		art.Permanent = append(art.Permanent, pr)
	}
	// Deterministic artifact: order by allocation index.
	sort.Slice(art.Permanent, func(i, j int) bool {
		return art.Permanent[i].AllocIndex < art.Permanent[j].AllocIndex
	})
	return nil
}
