package medusa

import (
	"fmt"
)

// KVRecord materializes the KV cache initialization (§6): the residual
// free GPU memory a profiling forwarding found, and the block geometry
// derived from it. Online, the engine allocates the cache directly from
// these numbers instead of re-profiling.
type KVRecord struct {
	// FreeMemBytes is the profiled residual free device memory.
	FreeMemBytes uint64
	// NumBlocks is the KV block count the free memory supports.
	NumBlocks int
	// BlockBytes is the per-block device size.
	BlockBytes uint64
}

// AllocRecord is one entry of the materialized buffer (de)allocation
// sequence. Addresses are deliberately absent: only sizes, ordering and
// the allocation index survive, because addresses are not stable across
// cold starts.
type AllocRecord struct {
	// Free marks a deallocation of the AllocIndex-th allocation.
	Free bool
	// AllocIndex is the ordinal of the allocation (counting allocations
	// only).
	AllocIndex int
	// Size is the allocation size (zero for frees).
	Size uint64
	// Label optionally names the allocation's role for the engine.
	Label string
}

// ParamRecord is one kernel parameter of a materialized graph node.
type ParamRecord struct {
	// Raw is the parameter image as captured. Constants restore from it
	// directly; for pointers it is retained so a validation correction
	// can demote the parameter back to a constant (§4).
	Raw []byte
	// Pointer marks a data pointer to be restored through the indirect
	// index pointer table.
	Pointer bool
	// AllocIndex is the indirect index pointer: which allocation of the
	// sequence the pointer referenced (§4.1).
	AllocIndex int
	// Offset is the pointer's offset within that allocation — pointers
	// may reference buffer interiors.
	Offset uint64
}

// NodeRecord is one materialized CUDA graph node.
type NodeRecord struct {
	// KernelName is the kernel's mangled name — the stable identity
	// addresses are recovered from (§5).
	KernelName string
	// Params are the node's parameters in order.
	Params []ParamRecord
	// Deps are dependency node IDs.
	Deps []int
}

// GraphRecord is one materialized CUDA graph.
type GraphRecord struct {
	// Batch is the batch size the graph serves.
	Batch int
	// Nodes are the graph's nodes; index is node ID.
	Nodes []NodeRecord
}

// KernelLoc locates a kernel for online address restoration.
type KernelLoc struct {
	// Library is the shared object carrying the kernel.
	Library string
	// Exported reports whether dlsym can resolve it. Hidden kernels
	// need the triggering-kernel + module enumeration path.
	Exported bool
}

// PermRecord is one permanent buffer (§4.3): allocated during the
// capture stage and still live at its end, so its contents must be
// rematerialized online.
type PermRecord struct {
	// AllocIndex identifies the allocation.
	AllocIndex int
	// Size is the content size.
	Size uint64
	// Contents holds the saved bytes; nil when the offline run was
	// cost-only (no data plane).
	Contents []byte
}

// Artifact is everything Medusa materializes for one <GPU type, model>
// combination. It is built once offline and restored on every cold
// start.
type Artifact struct {
	// FormatVersion guards the wire encoding.
	FormatVersion uint32
	// ModelName identifies the model.
	ModelName string
	// AllocSeq is the buffer (de)allocation sequence of the offline
	// cold start, replayed online (§4.2).
	AllocSeq []AllocRecord
	// AllocCount is the number of allocations in AllocSeq.
	AllocCount int
	// PrefixLen is the event position where the capture stage begins.
	// Events before it are reproduced by the engine's natural control
	// flow (and by explicit replay for skipped stages); events after it
	// exist only because of capture and are always replayed by Medusa.
	PrefixLen int
	// Graphs are the materialized CUDA graphs, one per batch size.
	Graphs []GraphRecord
	// Kernels maps kernel names to their restoration route.
	Kernels map[string]KernelLoc
	// Permanent lists buffers whose contents must be restored.
	Permanent []PermRecord
	// KV is the materialized KV cache initialization.
	KV KVRecord
}

// CurrentFormatVersion is the self-contained artifact wire version
// this build writes (Encode). v2 added the per-section checksum
// trailer that lets the decoder name the first damaged section of a
// corrupt artifact (see wire.go). Decode also accepts v1 (no trailer;
// re-encodes as v2) and, through DecodeResolved, the v3 template+delta
// container. docs/ARTIFACT_FORMAT.md is the normative spec.
const CurrentFormatVersion = 2

// DeltaFormatVersion is the v3 template+delta container version
// written by EncodeDelta: section payloads are delta-encoded against a
// shared per-architecture Template referenced by ID and body CRC.
const DeltaFormatVersion = 3

// legacyFormatVersion is the original trailer-less encoding, kept
// decodable for old registries; decoded artifacts normalize to v2.
const legacyFormatVersion = 1

// Graph returns the record for a batch size.
func (a *Artifact) Graph(batch int) (*GraphRecord, bool) {
	for i := range a.Graphs {
		if a.Graphs[i].Batch == batch {
			return &a.Graphs[i], true
		}
	}
	return nil, false
}

// Batches returns the materialized batch sizes in artifact order.
func (a *Artifact) Batches() []int {
	out := make([]int, len(a.Graphs))
	for i, g := range a.Graphs {
		out[i] = g.Batch
	}
	return out
}

// TotalNodes sums nodes across all graphs.
func (a *Artifact) TotalNodes() int {
	n := 0
	for _, g := range a.Graphs {
		n += len(g.Nodes)
	}
	return n
}

// LabelIndex returns the alloc index carrying the given label.
func (a *Artifact) LabelIndex(label string) (int, bool) {
	for _, ev := range a.AllocSeq {
		if !ev.Free && ev.Label == label {
			return ev.AllocIndex, true
		}
	}
	return 0, false
}

// PointerStats counts parameters by class — the materialization
// inventory reported by inspection tooling.
type PointerStats struct {
	// Constants counts parameters classified as embedded scalar values.
	Constants int
	// Pointers counts parameters classified as device addresses.
	Pointers int
}

// Stats tallies parameter classes over all graphs.
func (a *Artifact) Stats() PointerStats {
	var s PointerStats
	for _, g := range a.Graphs {
		for _, n := range g.Nodes {
			for _, p := range n.Params {
				if p.Pointer {
					s.Pointers++
				} else {
					s.Constants++
				}
			}
		}
	}
	return s
}

// validate checks internal consistency after decode or analysis.
func (a *Artifact) validate() error {
	if a.PrefixLen < 0 || a.PrefixLen > len(a.AllocSeq) {
		return fmt.Errorf("medusa: artifact prefix %d out of range (%d events)", a.PrefixLen, len(a.AllocSeq))
	}
	allocs := 0
	for i, ev := range a.AllocSeq {
		if ev.Free {
			if ev.AllocIndex < 0 || ev.AllocIndex >= a.AllocCount {
				return fmt.Errorf("medusa: event %d frees invalid allocation %d", i, ev.AllocIndex)
			}
		} else {
			if ev.AllocIndex != allocs {
				return fmt.Errorf("medusa: event %d has allocation index %d, want %d", i, ev.AllocIndex, allocs)
			}
			allocs++
		}
	}
	if allocs != a.AllocCount {
		return fmt.Errorf("medusa: %d allocations in sequence, header says %d", allocs, a.AllocCount)
	}
	for _, g := range a.Graphs {
		for ni, n := range g.Nodes {
			if _, ok := a.Kernels[n.KernelName]; !ok {
				return fmt.Errorf("medusa: graph %d node %d references unknown kernel %q", g.Batch, ni, n.KernelName)
			}
			for pi, p := range n.Params {
				if p.Pointer && (p.AllocIndex < 0 || p.AllocIndex >= a.AllocCount) {
					return fmt.Errorf("medusa: graph %d node %d param %d indexes allocation %d of %d",
						g.Batch, ni, pi, p.AllocIndex, a.AllocCount)
				}
				if len(p.Raw) != 4 && len(p.Raw) != 8 {
					return fmt.Errorf("medusa: graph %d node %d param %d has %d-byte image", g.Batch, ni, pi, len(p.Raw))
				}
			}
			for _, d := range n.Deps {
				if d < 0 || d >= len(g.Nodes) {
					return fmt.Errorf("medusa: graph %d node %d has dangling dep %d", g.Batch, ni, d)
				}
			}
		}
	}
	for _, pr := range a.Permanent {
		if pr.AllocIndex < 0 || pr.AllocIndex >= a.AllocCount {
			return fmt.Errorf("medusa: permanent record indexes allocation %d of %d", pr.AllocIndex, a.AllocCount)
		}
		if pr.Contents != nil && uint64(len(pr.Contents)) != pr.Size {
			return fmt.Errorf("medusa: permanent record size %d has %d content bytes", pr.Size, len(pr.Contents))
		}
	}
	return nil
}
