package medusa

import (
	"encoding/binary"
	"fmt"

	"github.com/medusa-repro/medusa/internal/cuda"
)

// §8 of the paper scopes Medusa to host-side allocations and direct
// pointers, noting that indirect pointers — device buffers whose
// *contents* are pointers to other buffers — would escape the indirect
// index pointer table and silently survive restoration with stale
// addresses. The paper reports finding none across 139364 nodes but
// keeps validation as the safety net. This scanner makes the check
// explicit: it inspects the contents of every buffer a graph references
// and flags 8-byte-aligned words that decode to addresses inside other
// live allocations.

// IndirectPointerWarning flags a suspected pointer stored inside a
// referenced buffer.
type IndirectPointerWarning struct {
	// AllocIndex is the buffer holding the suspicious word.
	AllocIndex int
	// Offset is the word's byte offset within the buffer.
	Offset uint64
	// Value is the suspicious word.
	Value uint64
	// TargetIndex is the live allocation the value points into.
	TargetIndex int
}

func (w IndirectPointerWarning) String() string {
	return fmt.Sprintf("allocation %d offset %d holds %#x, which points into allocation %d",
		w.AllocIndex, w.Offset, w.Value, w.TargetIndex)
}

// ScanIndirectPointers inspects the contents of every allocation that a
// captured graph references through a pointer parameter, looking for
// stored device addresses. It requires a functional device (contents
// exist only there) and should run at the end of the offline capturing
// stage, before the process state is torn down.
func ScanIndirectPointers(rec *Recorder, proc *cuda.Process, art *Artifact) ([]IndirectPointerWarning, error) {
	if err := rec.check(); err != nil {
		return nil, err
	}
	// Live allocations at capture end, by address range.
	type span struct {
		index int
		addr  uint64
		size  uint64
	}
	var live []span
	freed := make(map[int]bool)
	addrOf := make(map[int]span)
	for _, ev := range rec.events[:rec.captureStageEnd] {
		if ev.free {
			freed[ev.allocIndex] = true
			continue
		}
		freed[ev.allocIndex] = false
		addrOf[ev.allocIndex] = span{index: ev.allocIndex, addr: ev.addr, size: ev.size}
	}
	for idx, sp := range addrOf {
		if !freed[idx] {
			live = append(live, sp)
		}
	}
	locate := func(v uint64) (int, bool) {
		for _, sp := range live {
			if v >= sp.addr && v < sp.addr+sp.size {
				return sp.index, true
			}
		}
		return 0, false
	}

	// Buffers referenced by any graph pointer parameter.
	referenced := make(map[int]bool)
	for _, g := range art.Graphs {
		for _, n := range g.Nodes {
			for _, p := range n.Params {
				if p.Pointer {
					referenced[p.AllocIndex] = true
				}
			}
		}
	}

	var warnings []IndirectPointerWarning
	for idx := range referenced {
		if freed[idx] {
			continue
		}
		sp := addrOf[idx]
		buf, ok := proc.Device().Buffer(sp.addr)
		if !ok {
			continue
		}
		contents, err := buf.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("medusa: indirect scan of allocation %d: %w", idx, err)
		}
		for off := 0; off+8 <= len(contents); off += 8 {
			v := binary.LittleEndian.Uint64(contents[off:])
			if v < ptrPrefixLo || v >= ptrPrefixHi {
				continue
			}
			if target, hit := locate(v); hit {
				warnings = append(warnings, IndirectPointerWarning{
					AllocIndex:  idx,
					Offset:      uint64(off),
					Value:       v,
					TargetIndex: target,
				})
			}
		}
	}
	return warnings, nil
}
