package medusa

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/medusa-repro/medusa/internal/cuda"
)

// §8 of the paper scopes Medusa to host-side allocations and direct
// pointers, noting that indirect pointers — device buffers whose
// *contents* are pointers to other buffers — would escape the indirect
// index pointer table and silently survive restoration with stale
// addresses. The paper reports finding none across 139364 nodes but
// keeps validation as the safety net. This scanner makes the check
// explicit: it inspects the contents of every buffer a graph references
// and flags 8-byte-aligned words that decode to addresses inside other
// live allocations.

// IndirectPointerWarning flags a suspected pointer stored inside a
// referenced buffer.
type IndirectPointerWarning struct {
	// AllocIndex is the buffer holding the suspicious word.
	AllocIndex int
	// Offset is the word's byte offset within the buffer.
	Offset uint64
	// Value is the suspicious word.
	Value uint64
	// TargetIndex is the live allocation the value points into.
	TargetIndex int
}

// String renders the warning the way the offline report prints it.
func (w IndirectPointerWarning) String() string {
	return fmt.Sprintf("allocation %d offset %d holds %#x, which points into allocation %d",
		w.AllocIndex, w.Offset, w.Value, w.TargetIndex)
}

// liveSpan is one allocation live at capture end, keyed by its address
// range.
type liveSpan struct {
	index int
	addr  uint64
	size  uint64
}

// ScanIndirectPointers inspects the contents of every allocation that a
// captured graph references through a pointer parameter, looking for
// stored device addresses. It requires a functional device (contents
// exist only there) and should run at the end of the offline capturing
// stage, before the process state is torn down.
//
// The scan checks every 8-byte word of every referenced buffer, so the
// live-span lookup is a binary search over address-sorted spans (live
// ranges are disjoint, so at most one span can contain a value) and the
// per-buffer scans fan out across GOMAXPROCS workers. Warnings come
// back sorted by (AllocIndex, Offset) regardless of worker count.
func ScanIndirectPointers(rec *Recorder, proc *cuda.Process, art *Artifact) ([]IndirectPointerWarning, error) {
	if err := rec.check(); err != nil {
		return nil, err
	}
	// Live allocations at capture end, sorted by address.
	freed := make(map[int]bool)
	addrOf := make(map[int]liveSpan)
	for _, ev := range rec.events[:rec.captureStageEnd] {
		if ev.free {
			freed[ev.allocIndex] = true
			continue
		}
		freed[ev.allocIndex] = false
		addrOf[ev.allocIndex] = liveSpan{index: ev.allocIndex, addr: ev.addr, size: ev.size}
	}
	var live []liveSpan
	for idx, sp := range addrOf {
		if !freed[idx] {
			live = append(live, sp)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].addr < live[j].addr })
	locate := func(v uint64) (int, bool) {
		i := sort.Search(len(live), func(i int) bool { return live[i].addr > v }) - 1
		if i < 0 || v >= live[i].addr+live[i].size {
			return 0, false
		}
		return live[i].index, true
	}

	// Buffers referenced by any graph pointer parameter, in index order
	// so the scan output is deterministic.
	referenced := make(map[int]bool)
	for _, g := range art.Graphs {
		for _, n := range g.Nodes {
			for _, p := range n.Params {
				if p.Pointer {
					referenced[p.AllocIndex] = true
				}
			}
		}
	}
	var targets []int
	for idx := range referenced {
		if !freed[idx] {
			targets = append(targets, idx)
		}
	}
	sort.Ints(targets)

	perBuffer := make([][]IndirectPointerWarning, len(targets))
	errs := make([]error, len(targets))
	scan := func(ti int) {
		idx := targets[ti]
		sp := addrOf[idx]
		buf, ok := proc.Device().Buffer(sp.addr)
		if !ok {
			return
		}
		contents, err := buf.Snapshot()
		if err != nil {
			errs[ti] = fmt.Errorf("medusa: indirect scan of allocation %d: %w", idx, err)
			return
		}
		for off := 0; off+8 <= len(contents); off += 8 {
			v := binary.LittleEndian.Uint64(contents[off:])
			if v < ptrPrefixLo || v >= ptrPrefixHi {
				continue
			}
			if target, hit := locate(v); hit {
				perBuffer[ti] = append(perBuffer[ti], IndirectPointerWarning{
					AllocIndex:  idx,
					Offset:      uint64(off),
					Value:       v,
					TargetIndex: target,
				})
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers > 1 {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ti := range jobs {
					scan(ti)
				}
			}()
		}
		for ti := range targets {
			jobs <- ti
		}
		close(jobs)
		wg.Wait()
	} else {
		for ti := range targets {
			scan(ti)
		}
	}

	var warnings []IndirectPointerWarning
	for ti := range targets {
		if errs[ti] != nil {
			return nil, errs[ti]
		}
		warnings = append(warnings, perBuffer[ti]...)
	}
	return warnings, nil
}
