package medusa

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/gpu"
	"github.com/medusa-repro/medusa/internal/vclock"
)

// offlineBenchFixture builds a recorder + graphs without test assertions.
func offlineBenchFixture(b *testing.B, nodes int) (*cuda.Process, *Recorder) {
	b.Helper()
	rt := toyRuntime()
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 1, Mode: gpu.CostOnly})
	rec := NewRecorder()
	p.SetHooks(rec.Hooks())
	s := p.NewStream()
	src, err := p.Malloc(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := p.Malloc(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	rec.MarkCaptureStageBegin()
	args := []cuda.Value{cuda.PtrValue(dst), cuda.PtrValue(src), cuda.F32Value(2), cuda.U32Value(64)}
	if err := p.Launch(s, "toy_scale", args); err != nil {
		b.Fatal(err)
	}
	if err := s.BeginCapture(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if err := p.Launch(s, "toy_scale", args); err != nil {
			b.Fatal(err)
		}
	}
	g, err := s.EndCapture()
	if err != nil {
		b.Fatal(err)
	}
	if err := rec.AttachGraph(1, g); err != nil {
		b.Fatal(err)
	}
	rec.MarkCaptureStageEnd()
	rec.RecordKV(KVRecord{NumBlocks: 1, BlockBytes: 1})
	return p, rec
}

func BenchmarkAnalyze1kNodes(b *testing.B) {
	p, rec := offlineBenchFixture(b, 1000)
	opts := AnalyzeOptions{ModelName: "bench", SkipContents: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(rec, p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode1kNodes(b *testing.B) {
	p, rec := offlineBenchFixture(b, 1000)
	art, err := Analyze(rec, p, AnalyzeOptions{ModelName: "bench", SkipContents: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := art.Encode()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(raw)))
	}
}

func BenchmarkDecode1kNodes(b *testing.B) {
	p, rec := offlineBenchFixture(b, 1000)
	art, err := Analyze(rec, p, AnalyzeOptions{ModelName: "bench", SkipContents: true})
	if err != nil {
		b.Fatal(err)
	}
	raw, err := art.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// tableScaleFixture approximates a Table-1-sized offline trace
// (Qwen1.5-0.5B: ~9.1k graph nodes over 35 graphs, a few thousand live
// allocations). Nodes reference buffers spread across the whole
// allocation history, so the linear matcher's backward scan pays the
// average-case O(events) cost the index removes.
func tableScaleFixture(b *testing.B) (*cuda.Process, *Recorder) {
	b.Helper()
	const (
		nAllocs   = 4096
		nGraphs   = 35
		nodesPer  = 260
		allocSize = 1 << 12
	)
	rt := toyRuntime()
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: 1, Mode: gpu.CostOnly})
	rec := NewRecorder()
	p.SetHooks(rec.Hooks())
	s := p.NewStream()
	bufs := make([]uint64, nAllocs)
	for i := range bufs {
		ptr, err := p.Malloc(allocSize)
		if err != nil {
			b.Fatal(err)
		}
		bufs[i] = ptr
	}
	rec.MarkCaptureStageBegin()
	if err := p.Launch(s, "toy_scale", []cuda.Value{
		cuda.PtrValue(bufs[0]), cuda.PtrValue(bufs[1]), cuda.F32Value(2), cuda.U32Value(64),
	}); err != nil {
		b.Fatal(err)
	}
	pick := uint64(12345)
	for g := 0; g < nGraphs; g++ {
		if err := s.BeginCapture(); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < nodesPer; i++ {
			pick = pick*6364136223846793005 + 1442695040888963407
			dst := bufs[pick%nAllocs]
			src := bufs[(pick>>16)%nAllocs]
			args := []cuda.Value{cuda.PtrValue(dst), cuda.PtrValue(src), cuda.F32Value(2), cuda.U32Value(64)}
			if err := p.Launch(s, "toy_scale", args); err != nil {
				b.Fatal(err)
			}
		}
		g2, err := s.EndCapture()
		if err != nil {
			b.Fatal(err)
		}
		if err := rec.AttachGraph(g+1, g2); err != nil {
			b.Fatal(err)
		}
	}
	rec.MarkCaptureStageEnd()
	rec.RecordKV(KVRecord{NumBlocks: 1, BlockBytes: 1})
	return p, rec
}

// BenchmarkAnalyzeWallclock measures end-to-end Analyze wall-clock time
// on the Table-1-scale trace, comparing the pre-PR linear matcher
// against the interval index, sequentially and with the worker pool.
// (The index is built once and cached on the recorder; its construction
// cost shows up in the first iteration only, as in the real offline
// phase where one index serves all 35 graphs.)
func BenchmarkAnalyzeWallclock(b *testing.B) {
	p, rec := tableScaleFixture(b)
	cases := []struct {
		name string
		opts AnalyzeOptions
	}{
		{"linear-seq", AnalyzeOptions{LinearMatch: true, Parallelism: 1}},
		{"indexed-seq", AnalyzeOptions{Parallelism: 1}},
		{"linear-parallel", AnalyzeOptions{LinearMatch: true}},
		{"indexed-parallel", AnalyzeOptions{}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			opts := tc.opts
			opts.ModelName = "bench"
			opts.SkipContents = true
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(rec, p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBackwardMatch(b *testing.B) {
	// A deep event history with the match near the end: the common case
	// (kernels use recently allocated buffers).
	rec := NewRecorder()
	hooks := rec.Hooks()
	for i := 0; i < 4096; i++ {
		hooks.OnAlloc(cuda.AllocEvent{AllocIndex: i, Size: 4096, Addr: 0x7f30_0000_0000 + uint64(i)*8192})
	}
	target := uint64(0x7f30_0000_0000 + 4000*8192 + 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := rec.backwardMatch(len(rec.events), target); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkBackwardMatchIndexed(b *testing.B) {
	// Same trace and probe as BenchmarkBackwardMatch, resolved through
	// the interval index: two binary searches instead of a linear scan.
	rec := NewRecorder()
	hooks := rec.Hooks()
	for i := 0; i < 4096; i++ {
		hooks.OnAlloc(cuda.AllocEvent{AllocIndex: i, Size: 4096, Addr: 0x7f30_0000_0000 + uint64(i)*8192})
	}
	target := uint64(0x7f30_0000_0000 + 4000*8192 + 128)
	ix := rec.Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := ix.BackwardMatch(len(rec.events), target); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkRestore1kNodes(b *testing.B) {
	rt := toyRuntime()
	p, rec := offlineBenchFixture(b, 1000)
	art, err := Analyze(rec, p, AnalyzeOptions{ModelName: "bench", SkipContents: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: int64(i + 2), Mode: gpu.CostOnly})
		rest, err := NewRestorer(fresh, art)
		if err != nil {
			b.Fatal(err)
		}
		if err := rest.ReplayPrefix(); err != nil {
			b.Fatal(err)
		}
		if err := rest.ReplayCaptureStage(); err != nil {
			b.Fatal(err)
		}
		if _, err := rest.RestoreGraphs(nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1000, "nodes/restore")
}
