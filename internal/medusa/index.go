package medusa

import (
	"math"
	"sort"
)

// The linear walkers in analyze.go (backwardMatch, firstMatch) and the
// live-span scan in indirect.go are O(events) per query; the analysis
// stage issues one query per pointer parameter of every node, making the
// offline phase O(launches × params × events) — the dominant wall-clock
// cost at Table-1 scale (139,364 nodes). TraceIndex precomputes, from
// the recorder's event stream, a per-address-range index of allocation
// live intervals so every query becomes two binary searches. The linear
// walkers are kept as reference oracles; the property tests in
// index_test.go assert exact agreement on randomized and crafted
// address-reuse traces.

// ixAlloc is one allocation's live interval in event-position space,
// plus its (transient) address range.
type ixAlloc struct {
	allocIndex int
	pos        int // event position of the allocation
	freePos    int // event position of its free; math.MaxInt if never freed
	addr       uint64
	size       uint64
}

// TraceIndex is an immutable interval index over one recorded event
// stream. The address space is cut at every allocation boundary into
// elementary segments; each segment lists the allocations covering it in
// event order, so "nearest allocation preceding position P that contains
// address p" is a segment lookup plus a binary search over positions.
// Build is O(n log n); queries are O(log n). Safe for concurrent use
// once built.
type TraceIndex struct {
	bounds []uint64  // sorted unique allocation boundary addresses
	segs   [][]int32 // per segment: covering alloc slots, ascending pos
	allocs []ixAlloc // slot order = event order of allocations
}

// newTraceIndex indexes the given event stream.
func newTraceIndex(events []event) *TraceIndex {
	ix := &TraceIndex{}
	slotOf := make(map[int]int32) // allocIndex -> slot
	for pos, ev := range events {
		if ev.free {
			if slot, ok := slotOf[ev.allocIndex]; ok {
				ix.allocs[slot].freePos = pos
			}
			continue
		}
		slotOf[ev.allocIndex] = int32(len(ix.allocs))
		ix.allocs = append(ix.allocs, ixAlloc{
			allocIndex: ev.allocIndex,
			pos:        pos,
			freePos:    math.MaxInt,
			addr:       ev.addr,
			size:       ev.size,
		})
		ix.bounds = append(ix.bounds, ev.addr, ev.addr+ev.size)
	}
	sort.Slice(ix.bounds, func(i, j int) bool { return ix.bounds[i] < ix.bounds[j] })
	ix.bounds = dedupeUint64(ix.bounds)
	if len(ix.bounds) == 0 {
		return ix
	}
	ix.segs = make([][]int32, len(ix.bounds)-1)
	// Appending in slot order keeps every segment's list sorted by
	// event position — the invariant the binary searches rely on.
	for slot := range ix.allocs {
		a := &ix.allocs[slot]
		lo := sort.Search(len(ix.bounds), func(i int) bool { return ix.bounds[i] >= a.addr })
		for s := lo; s < len(ix.segs) && ix.bounds[s] < a.addr+a.size; s++ {
			ix.segs[s] = append(ix.segs[s], int32(slot))
		}
	}
	return ix
}

func dedupeUint64(s []uint64) []uint64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// segment returns the covering-allocation list for address p, or nil if
// p falls outside every allocation boundary.
func (ix *TraceIndex) segment(p uint64) []int32 {
	// Rightmost boundary <= p; segment s covers [bounds[s], bounds[s+1]).
	s := sort.Search(len(ix.bounds), func(i int) bool { return ix.bounds[i] > p }) - 1
	if s < 0 || s >= len(ix.segs) {
		return nil
	}
	return ix.segs[s]
}

// BackwardMatch is the indexed equivalent of Recorder.backwardMatch: the
// nearest allocation preceding eventPos whose range contains p. Because
// live ranges are disjoint at any instant, this is exactly the §4.1
// trace-based match that resolves address reuse (Figure 6).
func (ix *TraceIndex) BackwardMatch(eventPos int, p uint64) (allocIndex int, offset uint64, ok bool) {
	seg := ix.segment(p)
	// Largest slot with pos < eventPos.
	// Boundaries are cut at every allocation edge, so an allocation in
	// the segment list covers the whole segment — and therefore p. The
	// latest one before eventPos is the answer.
	i := sort.Search(len(seg), func(i int) bool { return ix.allocs[seg[i]].pos >= eventPos }) - 1
	if i < 0 {
		return 0, 0, false
	}
	a := &ix.allocs[seg[i]]
	return a.allocIndex, p - a.addr, true
}

// FirstMatch is the indexed equivalent of Recorder.firstMatch — the §4.1
// strawman: the earliest allocation whose range contains p, ignoring
// launch position (wrong under address reuse; kept for the ablation).
func (ix *TraceIndex) FirstMatch(p uint64) (allocIndex int, offset uint64, ok bool) {
	seg := ix.segment(p)
	if len(seg) == 0 {
		return 0, 0, false
	}
	a := &ix.allocs[seg[0]]
	return a.allocIndex, p - a.addr, true
}

// LocateLive returns the allocation containing p that is live at
// eventPos (allocated before it, not yet freed). At any instant live
// ranges are disjoint, so the nearest preceding allocation containing p
// is the only candidate: if it was already freed, no live allocation
// contains p.
func (ix *TraceIndex) LocateLive(eventPos int, p uint64) (allocIndex int, ok bool) {
	seg := ix.segment(p)
	i := sort.Search(len(seg), func(i int) bool { return ix.allocs[seg[i]].pos >= eventPos }) - 1
	if i < 0 {
		return 0, false
	}
	a := &ix.allocs[seg[i]]
	if a.freePos < eventPos {
		return 0, false
	}
	return a.allocIndex, true
}

// AllocLen reports how many allocations the index covers.
func (ix *TraceIndex) AllocLen() int { return len(ix.allocs) }

// Index returns the interval index over the recorder's current event
// stream, building (and caching) it on first use. Appending further
// events invalidates the cache; the index itself is immutable and safe
// to share across analysis workers.
func (r *Recorder) Index() *TraceIndex {
	if r.index == nil || r.indexEvents != len(r.events) {
		r.index = newTraceIndex(r.events)
		r.indexEvents = len(r.events)
	}
	return r.index
}
