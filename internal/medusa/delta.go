package medusa

import (
	"encoding/binary"
	"fmt"
)

// Binary delta codec for the v3 (template+delta) artifact container.
//
// A delta rewrites a target byte string in terms of a source byte
// string as a flat little-endian op stream:
//
//	COPY (0x01): uvarint zigzag(offset − cursor) | uvarint length
//	ADD  (0x02): uvarint length | <length raw bytes>
//
// The cursor tracks the "aligned" source position: it starts at 0 and
// advances with every op (by the copied length for COPY, by the added
// length for ADD). Artifact sections of sibling models — and the
// per-batch graphs of one model — differ almost exclusively by
// in-place substitutions (a dimension or batch scalar replaced by
// another of the same width), so the common case is ADD(4) followed by
// COPY with a zero offset zigzag: ~10 delta bytes per divergence site
// however long the matching runs between sites are.
//
// The encoder is deterministic: a greedy aligned-extension scan with a
// seed-hash index fallback for insertions/deletions, no randomness, no
// map iteration. Determinism is load-bearing — encode→decode→encode
// over a fixed template must be a byte-level fixed point (the v3
// fuzzer enforces it), and registry footprints derived from delta
// sizes must be identical across runs and GOMAXPROCS.

const (
	deltaOpCopy = 0x01
	deltaOpAdd  = 0x02

	// deltaSeedLen is the probe width of the source index.
	deltaSeedLen = 8
	// deltaMinAligned is the shortest run worth a COPY op at the
	// aligned cursor position (op overhead is ~3 bytes).
	deltaMinAligned = 8
	// deltaMinSeed is the shortest run worth a COPY op that moves the
	// cursor (offset zigzag costs more, and a spurious jump desyncs
	// the aligned scan).
	deltaMinSeed = 16
	// deltaMaxCandidates caps positions indexed per seed value.
	deltaMaxCandidates = 8
)

// deltaEncode computes a delta that rewrites tgt in terms of src.
// deltaApply(src, deltaEncode(src, tgt)) == tgt for every input pair;
// the encoding is a pure deterministic function of (src, tgt).
func deltaEncode(src, tgt []byte) []byte {
	var out []byte
	var lit []byte // pending ADD bytes

	flushLit := func() {
		if len(lit) == 0 {
			return
		}
		out = append(out, deltaOpAdd)
		out = binary.AppendUvarint(out, uint64(len(lit)))
		out = append(out, lit...)
		lit = lit[:0]
	}
	emitCopy := func(off, n, cursor int) {
		flushLit()
		out = append(out, deltaOpCopy)
		d := int64(off - cursor)
		out = binary.AppendUvarint(out, uint64((d<<1)^(d>>63)))
		out = binary.AppendUvarint(out, uint64(n))
	}

	// Seed index over src, first deltaMaxCandidates positions per seed.
	var index map[uint64][]int32
	if len(src) >= deltaSeedLen {
		index = make(map[uint64][]int32, len(src)/4)
		for i := 0; i+deltaSeedLen <= len(src); i++ {
			h := binary.LittleEndian.Uint64(src[i:])
			if cands := index[h]; len(cands) < deltaMaxCandidates {
				index[h] = append(cands, int32(i))
			}
		}
	}

	matchLen := func(si, ti int) int {
		n := 0
		for si+n < len(src) && ti+n < len(tgt) && src[si+n] == tgt[ti+n] {
			n++
		}
		return n
	}

	cursor, t := 0, 0
	for t < len(tgt) {
		// Aligned extension: the overwhelmingly common case after an
		// in-place substitution.
		if cursor < len(src) {
			if run := matchLen(cursor, t); run >= deltaMinAligned {
				emitCopy(cursor, run, cursor)
				cursor += run
				t += run
				continue
			}
		}
		// Seed resync: insertions, deletions, and reordered content.
		if index != nil && t+deltaSeedLen <= len(tgt) {
			h := binary.LittleEndian.Uint64(tgt[t:])
			bestPos, bestRun := -1, 0
			for _, p := range index[h] {
				if run := matchLen(int(p), t); run > bestRun {
					bestPos, bestRun = int(p), run
				}
			}
			if bestRun >= deltaMinSeed {
				emitCopy(bestPos, bestRun, cursor)
				cursor = bestPos + bestRun
				t += bestRun
				continue
			}
		}
		lit = append(lit, tgt[t])
		t++
		cursor++
	}
	flushLit()
	return out
}

// deltaApply reconstructs the target from src and a delta, bounding the
// output at wantLen bytes. It never panics: malformed ops, out-of-range
// copies and oversized outputs return descriptive errors (the v3
// decoder wraps them in the typed corruption error).
func deltaApply(src, delta []byte, wantLen int) ([]byte, error) {
	if wantLen < 0 {
		return nil, fmt.Errorf("negative delta output length %d", wantLen)
	}
	out := make([]byte, 0, wantLen)
	cursor := 0
	off := 0
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(delta[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	for off < len(delta) {
		op := delta[off]
		off++
		switch op {
		case deltaOpCopy:
			zz, ok := uvarint()
			if !ok {
				return nil, fmt.Errorf("truncated copy offset at delta byte %d", off)
			}
			n64, ok := uvarint()
			if !ok {
				return nil, fmt.Errorf("truncated copy length at delta byte %d", off)
			}
			rel := int64(zz>>1) ^ -int64(zz&1)
			srcOff := int64(cursor) + rel
			n := int64(n64)
			if srcOff < 0 || n < 0 || srcOff+n > int64(len(src)) {
				return nil, fmt.Errorf("copy [%d,%d) outside %d-byte source", srcOff, srcOff+n, len(src))
			}
			if len(out)+int(n) > wantLen {
				return nil, fmt.Errorf("delta output exceeds declared %d bytes", wantLen)
			}
			out = append(out, src[srcOff:srcOff+n]...)
			cursor = int(srcOff + n)
		case deltaOpAdd:
			n64, ok := uvarint()
			if !ok {
				return nil, fmt.Errorf("truncated add length at delta byte %d", off)
			}
			n := int(n64)
			if n < 0 || off+n > len(delta) {
				return nil, fmt.Errorf("add of %d bytes overruns %d-byte delta", n64, len(delta))
			}
			if len(out)+n > wantLen {
				return nil, fmt.Errorf("delta output exceeds declared %d bytes", wantLen)
			}
			out = append(out, delta[off:off+n]...)
			off += n
			cursor += n
		default:
			return nil, fmt.Errorf("unknown delta op %#x at byte %d", op, off-1)
		}
	}
	return out, nil
}
