// Package medusa implements the paper's contribution: state
// materialization for serverless LLM inference cold starts.
//
// Offline, a Recorder observes a full cold start — every buffer
// (de)allocation and every kernel launch — while the engine captures its
// CUDA graphs. Analyze then turns the captured graphs plus the trace
// into an Artifact: graph topology, constants, *indirect index pointers*
// (§4.1) for every data pointer, a kernel name table (§5), the buffer
// (de)allocation sequence, permanent-buffer contents (§4.3), and the
// materialized KV cache sizing (§6).
//
// Online, a Restorer replays the allocation sequence, fills pointers
// back in from the indirect index pointer table, restores kernel
// addresses via dlsym and triggering-kernel module enumeration, and
// rebuilds ready-to-launch graph executables without any warm-up or
// capture of the full model.
package medusa

import (
	"fmt"

	"github.com/medusa-repro/medusa/internal/cuda"
)

// event is one offline-observed allocation event, including the
// transient address (addresses are never persisted — they are the
// non-determinism being materialized away).
type event struct {
	free       bool
	allocIndex int
	size       uint64
	addr       uint64
	label      string
}

// launch is one offline-observed kernel launch.
type launch struct {
	eventPos   int // events observed before this launch
	kernelAddr uint64
	raw        [][]byte
	captured   bool
	nodeID     int
}

// capturedGraph pairs a captured CUDA graph with the launches that
// produced its nodes.
type capturedGraph struct {
	batch    int
	graph    *cuda.Graph
	launches []launch // index == node ID
}

// Recorder observes one offline cold start. Install its Hooks on the
// process before the first allocation.
type Recorder struct {
	events   []event
	launches []launch // non-captured launches (eager warm-up etc.)
	pending  []launch // captured launches awaiting AttachGraph
	graphs   []capturedGraph

	labels            map[string]int // label -> alloc index
	captureStageBegin int            // event position; -1 until marked
	captureStageEnd   int            // event position; -1 until marked

	kv     KVRecord
	kvSet  bool
	broken error

	index       *TraceIndex // cached interval index; see index.go
	indexEvents int         // event count the cache was built from
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{labels: make(map[string]int), captureStageBegin: -1, captureStageEnd: -1}
}

// Hooks returns the process hooks that feed the recorder.
func (r *Recorder) Hooks() cuda.Hooks {
	return cuda.Hooks{
		OnAlloc: func(ev cuda.AllocEvent) {
			r.events = append(r.events, event{
				free:       ev.Free,
				allocIndex: ev.AllocIndex,
				size:       ev.Size,
				addr:       ev.Addr,
			})
		},
		OnLaunch: func(rec cuda.LaunchRecord) {
			l := launch{
				eventPos:   len(r.events),
				kernelAddr: rec.KernelAddr,
				raw:        rec.RawParams,
				captured:   rec.Captured,
				nodeID:     rec.NodeID,
			}
			if rec.Captured {
				r.pending = append(r.pending, l)
			} else {
				r.launches = append(r.launches, l)
			}
		},
	}
}

// LabelLastAlloc names the most recent allocation so the online phase
// can find it by role (e.g. "kv.k", "cublas.ws1.b16").
func (r *Recorder) LabelLastAlloc(label string) {
	for i := len(r.events) - 1; i >= 0; i-- {
		if !r.events[i].free {
			r.events[i].label = label
			r.labels[label] = r.events[i].allocIndex
			return
		}
	}
	r.broken = fmt.Errorf("medusa: LabelLastAlloc(%q) with no allocations", label)
}

// MarkCaptureStageBegin marks the boundary between the loading-phase
// prefix (model structure, weights, profiling, KV cache) and the
// capture stage. Buffer classification (§4.3) pivots on this marker:
// pointers into allocations made before it are model-parameter-class
// buffers whose contents the natural control flow reproduces online.
func (r *Recorder) MarkCaptureStageBegin() {
	if r.captureStageBegin >= 0 {
		r.broken = fmt.Errorf("medusa: capture stage marked twice")
		return
	}
	r.captureStageBegin = len(r.events)
}

// MarkCaptureStageEnd marks the end of the capture stage. Capture-stage
// allocations still live here are permanent buffers (contents saved);
// already-freed ones are temporaries (contents discarded).
func (r *Recorder) MarkCaptureStageEnd() {
	r.captureStageEnd = len(r.events)
}

// AttachGraph hands over a freshly captured graph for the given batch
// size. All captured launches since the previous AttachGraph must
// correspond 1:1 to the graph's nodes.
func (r *Recorder) AttachGraph(batch int, g *cuda.Graph) error {
	if len(r.pending) != g.NodeCount() {
		return fmt.Errorf("medusa: graph for batch %d has %d nodes but %d captured launches pending",
			batch, g.NodeCount(), len(r.pending))
	}
	for i, l := range r.pending {
		if l.nodeID != i {
			return fmt.Errorf("medusa: captured launch %d maps to node %d", i, l.nodeID)
		}
	}
	r.graphs = append(r.graphs, capturedGraph{batch: batch, graph: g, launches: r.pending})
	r.pending = nil
	return nil
}

// RecordKV materializes the KV cache initialization result (§6): the
// profiled free GPU memory and the block geometry derived from it.
func (r *Recorder) RecordKV(kv KVRecord) {
	r.kv = kv
	r.kvSet = true
}

// EventCount reports recorded allocation events.
func (r *Recorder) EventCount() int { return len(r.events) }

// GraphCount reports attached graphs.
func (r *Recorder) GraphCount() int { return len(r.graphs) }

// check verifies the recorder is in an analyzable state.
func (r *Recorder) check() error {
	if r.broken != nil {
		return r.broken
	}
	if r.captureStageBegin < 0 {
		return fmt.Errorf("medusa: capture stage begin never marked")
	}
	if r.captureStageEnd < 0 {
		return fmt.Errorf("medusa: capture stage end never marked")
	}
	if len(r.pending) != 0 {
		return fmt.Errorf("medusa: %d captured launches never attached to a graph", len(r.pending))
	}
	if !r.kvSet {
		return fmt.Errorf("medusa: KV cache initialization never recorded")
	}
	return nil
}
