package medusa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/medusa-repro/medusa/internal/faults"
)

// Template wire format (normative spec: docs/ARTIFACT_FORMAT.md):
//
//	"MDST" | u32 version | u32 bodyLen | u32 crc32(body) | body
//	body := str id | u8 sectionCount | sectionCount × blob(section)
//
// A template is the shared per-architecture half of the v3 artifact
// factoring: the section bodies of one reference artifact, with the
// graphs slot holding a single canonical graph body instead of the
// full 35-graph section. Foundry's observation (PAPERS.md) is that
// CUDA-graph contexts are largely template-shaped per architecture —
// sibling models share kernel names, topology and parameter layout,
// differing in dimension scalars and layer count — and the per-batch
// graphs of one model differ from each other almost only in batch
// scalars. One canonical graph is therefore enough source material:
// each model's first graph delta-encodes against it, and every further
// graph chains off the previously reconstructed one.

// templateMagic distinguishes template objects from artifacts.
var templateMagic = [4]byte{'M', 'D', 'S', 'T'}

// TemplateFormatVersion is the template wire version this build writes
// and the only one it resolves deltas against; a version skew surfaces
// as a typed *faults.TemplateMismatchError.
const TemplateFormatVersion = 1

// deltaSectionNames lists the v3 body sections in wire order: the
// template reference, then the six delta-encoded artifact sections.
var deltaSectionNames = [1 + numBodySections]string{
	"template_ref", "header", "alloc_seq", "graphs", "kernel_table", "permanent", "kv_record",
}

// TemplateResolver resolves a template ID to a decoded template, as
// DecodeResolved needs for v3 inputs. Implementations typically wrap a
// storage.Store or artifact registry (engine.StoreTemplates).
type TemplateResolver func(id string) (*Template, bool)

// Template is the shared per-architecture half of a template-factored
// artifact: immutable reference section bodies deltas resolve against.
// Build one per architecture with BuildTemplate, publish its Encode
// bytes once, and encode every sibling model with EncodeDelta.
type Template struct {
	id string
	// sections holds the reference body per artifact section, in wire
	// order; the graphs slot holds one canonical graph body.
	sections [numBodySections][]byte
	bodyCRC  uint32
	encoded  []byte
}

// BuildTemplate derives a template from a reference artifact of the
// architecture. The id is the template's registry identity (the
// convention is engine.TemplateKey's "medusa/templates/<arch>"); the
// artifact's sections become the delta sources, with the canonical
// graph chosen deterministically (most nodes, larger batch on ties).
func BuildTemplate(id string, a *Artifact) (*Template, error) {
	if id == "" {
		return nil, fmt.Errorf("medusa: template needs a non-empty id")
	}
	if err := a.validate(); err != nil {
		return nil, fmt.Errorf("medusa: refusing to build template from inconsistent artifact: %w", err)
	}
	t := &Template{id: id}
	var w wireWriter
	last := 0
	sec := 0
	a.encodeBody(&w, func(string) {
		t.sections[sec] = append([]byte{}, w.buf.Bytes()[last:]...)
		last = w.buf.Len()
		sec++
	})
	canonical := -1
	for i := range a.Graphs {
		g := &a.Graphs[i]
		if canonical < 0 ||
			len(g.Nodes) > len(a.Graphs[canonical].Nodes) ||
			(len(g.Nodes) == len(a.Graphs[canonical].Nodes) && g.Batch > a.Graphs[canonical].Batch) {
			canonical = i
		}
	}
	if canonical >= 0 {
		var gw wireWriter
		encodeGraph(&gw, &a.Graphs[canonical])
		t.sections[2] = append([]byte{}, gw.buf.Bytes()...)
	} else {
		t.sections[2] = []byte{}
	}
	t.seal()
	return t, nil
}

// seal computes the canonical encoding and body CRC from the sections.
func (t *Template) seal() {
	var w wireWriter
	w.str(t.id)
	w.u8(numBodySections)
	for _, s := range t.sections {
		w.bytes(s)
	}
	body := w.buf.Bytes()
	t.bodyCRC = crc32.ChecksumIEEE(body)
	out := make([]byte, 0, len(body)+16)
	out = append(out, templateMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, TemplateFormatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, t.bodyCRC)
	t.encoded = append(out, body...)
}

// ID returns the template's registry identity.
func (t *Template) ID() string { return t.id }

// BodyCRC returns the checksum v3 artifacts pin their template by.
func (t *Template) BodyCRC() uint32 { return t.bodyCRC }

// Encode serializes the template. The encoding is canonical: for any
// template, Encode∘DecodeTemplate∘Encode is a byte-level fixed point.
func (t *Template) Encode() []byte {
	return append([]byte(nil), t.encoded...)
}

// SectionSizes attributes the template's encoded size to wire
// sections, mirroring Artifact.SectionSizes (the graphs entry covers
// the single canonical graph body).
func (t *Template) SectionSizes() []Section {
	out := []Section{{Name: "envelope", Bytes: 16}}
	idLen := uint64(4 + len(t.id) + 1) // str + sectionCount byte
	out = append(out, Section{Name: "template_id", Bytes: idLen})
	for i, s := range t.sections {
		out = append(out, Section{Name: bodySectionNames[i], Bytes: uint64(4 + len(s))})
	}
	return out
}

// DecodeTemplate parses a template object, verifying magic, version
// and the envelope checksum. Corruption surfaces as a typed
// *faults.ArtifactCorruptError (Section "template"); a foreign format
// version as a typed *faults.TemplateMismatchError. Never panics.
func DecodeTemplate(p []byte) (*Template, error) {
	if len(p) < 16 {
		return nil, fmt.Errorf("medusa: template of %d bytes is shorter than its header", len(p))
	}
	if !bytes.Equal(p[:4], templateMagic[:]) {
		return nil, fmt.Errorf("medusa: bad template magic %q", p[:4])
	}
	version := binary.LittleEndian.Uint32(p[4:8])
	if version != TemplateFormatVersion {
		return nil, &faults.TemplateMismatchError{
			Detail: fmt.Sprintf("template format v%d not supported (want v%d)", version, TemplateFormatVersion),
		}
	}
	bodyLen := binary.LittleEndian.Uint32(p[8:12])
	wantCRC := binary.LittleEndian.Uint32(p[12:16])
	if uint64(len(p)-16) != uint64(bodyLen) {
		return nil, fmt.Errorf("medusa: template body is %d bytes, header says %d", len(p)-16, bodyLen)
	}
	body := p[16:]
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, &faults.ArtifactCorruptError{
			Section: "template",
			Detail:  fmt.Sprintf("template checksum mismatch: %#x != %#x", got, wantCRC),
		}
	}
	r := &wireReader{p: body}
	t := &Template{id: r.str("template id")}
	if n := r.u8(); n != numBodySections && r.err == nil {
		r.fail("template lists %d sections, want %d", n, numBodySections)
	}
	for i := 0; i < numBodySections && r.err == nil; i++ {
		t.sections[i] = r.blob(bodySectionNames[i]+" template section", 1<<26)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("medusa: %d trailing bytes after template body", len(body)-r.off)
	}
	t.seal()
	return t, nil
}

// EncodeDelta serializes the artifact as a v3 template+delta container
// against the given template: each section body is delta-encoded
// against the template's matching section, and graphs chain — the
// first graph deltas against the template's canonical graph, each
// subsequent graph against the previously encoded one. The output
// decodes back (DecodeResolved with the same template) to an artifact
// whose Encode is byte-identical to this artifact's v2 encoding.
func (a *Artifact) EncodeDelta(t *Template) ([]byte, error) {
	if err := a.validate(); err != nil {
		return nil, fmt.Errorf("medusa: refusing to encode inconsistent artifact: %w", err)
	}
	var w wireWriter
	if err := a.encodeDeltaBody(t, &w, func(string) {}); err != nil {
		return nil, err
	}
	body := w.buf.Bytes()
	out := make([]byte, 0, len(body)+16)
	out = append(out, wireMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, DeltaFormatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return append(out, body...), nil
}

// DeltaSectionSizes attributes an EncodeDelta encoding to wire
// sections, in wire order and summing exactly to len(EncodeDelta()).
// medusa-inspect divides Artifact.SectionSizes by these to report
// per-section sharing ratios.
func (a *Artifact) DeltaSectionSizes(t *Template) ([]Section, error) {
	if err := a.validate(); err != nil {
		return nil, fmt.Errorf("medusa: refusing to size inconsistent artifact: %w", err)
	}
	var w wireWriter
	out := []Section{{Name: "envelope", Bytes: 16}}
	last := 0
	err := a.encodeDeltaBody(t, &w, func(section string) {
		out = append(out, Section{Name: section, Bytes: uint64(w.buf.Len() - last)})
		last = w.buf.Len()
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// encodeDeltaBody writes the v3 body — template_ref, six delta
// sections, checksum trailer — calling mark after each wire section
// (and once more for the trailer, "section_crcs") so EncodeDelta and
// DeltaSectionSizes share one format walk, exactly as encodeBody does
// for v2.
func (a *Artifact) encodeDeltaBody(t *Template, w *wireWriter, mark func(section string)) error {
	if t == nil {
		return fmt.Errorf("medusa: EncodeDelta needs a template")
	}
	var bw wireWriter
	var secs [numBodySections][]byte
	last := 0
	sec := 0
	a.encodeBody(&bw, func(string) {
		secs[sec] = bw.buf.Bytes()[last:]
		last = bw.buf.Len()
		sec++
	})
	graphBodies := make([][]byte, len(a.Graphs))
	for i := range a.Graphs {
		var gw wireWriter
		encodeGraph(&gw, &a.Graphs[i])
		graphBodies[i] = gw.buf.Bytes()
	}

	crcs := make([]uint32, 0, len(deltaSectionNames))
	lastW := 0
	endSection := func(name string) {
		crcs = append(crcs, crc32.ChecksumIEEE(w.buf.Bytes()[lastW:]))
		lastW = w.buf.Len()
		mark(name)
	}

	w.str(t.id)
	w.u32(t.bodyCRC)
	endSection("template_ref")

	for i, name := range bodySectionNames {
		raw := secs[i]
		w.u32(uint32(len(raw)))
		w.u32(crc32.ChecksumIEEE(raw))
		if name == "graphs" {
			w.u32(uint32(len(graphBodies)))
			src := t.sections[2]
			for _, gb := range graphBodies {
				w.u32(uint32(len(gb)))
				w.bytes(deltaEncode(src, gb))
				src = gb
			}
		} else {
			w.bytes(deltaEncode(t.sections[i], raw))
		}
		endSection(name)
	}

	w.u8(uint8(len(crcs)))
	for _, c := range crcs {
		w.u32(c)
	}
	mark("section_crcs")
	return nil
}

// deltaWire is the parsed (not yet resolved) structure of a v3 body.
type deltaWire struct {
	templateID  string
	templateCRC uint32
	rawLen      [numBodySections]uint32
	rawCRC      [numBodySections]uint32
	graphLens   []uint32
	graphDeltas [][]byte
	deltas      [numBodySections][]byte // nil for graphs
	ends        [len(deltaSectionNames)]int
	crcs        [len(deltaSectionNames)]uint32
}

// parseDeltaBody structurally decodes a v3 body without applying
// deltas or verifying checksums — the shared walk behind
// decodeDeltaBody and corruptDeltaError.
func parseDeltaBody(body []byte) (*deltaWire, error) {
	d := &deltaWire{}
	r := &wireReader{p: body}
	sec := 0
	endSection := func() {
		if r.err == nil && sec < len(d.ends) {
			d.ends[sec] = r.off
			sec++
		}
	}
	d.templateID = r.str("template id")
	d.templateCRC = r.u32()
	endSection()
	for i, name := range bodySectionNames {
		d.rawLen[i] = r.u32()
		if d.rawLen[i] > 1<<28 {
			r.fail("%s section of %d resolved bytes exceeds limit", name, d.rawLen[i])
		}
		d.rawCRC[i] = r.u32()
		if name == "graphs" {
			nGraphs := r.u32()
			if nGraphs > 1<<16 {
				r.fail("%d graph deltas", nGraphs)
			}
			for gi := uint32(0); gi < nGraphs && r.err == nil; gi++ {
				gLen := r.u32()
				if gLen > 1<<26 {
					r.fail("graph of %d resolved bytes exceeds limit", gLen)
				}
				d.graphLens = append(d.graphLens, gLen)
				d.graphDeltas = append(d.graphDeltas, r.blob("graph delta", 1<<26))
			}
		} else {
			d.deltas[i] = r.blob(name+" delta", 1<<26)
		}
		endSection()
	}
	if n := r.u8(); n != uint8(len(deltaSectionNames)) && r.err == nil {
		r.fail("checksum trailer lists %d sections, want %d", n, len(deltaSectionNames))
	}
	for i := range d.crcs {
		d.crcs[i] = r.u32()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("medusa: %d trailing bytes after artifact body", len(body)-r.off)
	}
	return d, nil
}

// verifyDeltaSectionCRCs mirrors verifySectionCRCs for the v3 layout.
func verifyDeltaSectionCRCs(body []byte, d *deltaWire) (string, bool) {
	start := 0
	for i, end := range d.ends {
		if crc32.ChecksumIEEE(body[start:end]) != d.crcs[i] {
			return deltaSectionNames[i], false
		}
		start = end
	}
	return "", true
}

// corruptDeltaError localizes envelope-checksum damage in a v3 body to
// the first wire section whose trailer CRC mismatches, falling back to
// "body" when the structure is unparseable.
func corruptDeltaError(body []byte, detail string) error {
	section := "body"
	if d, err := parseDeltaBody(body); err == nil {
		if bad, ok := verifyDeltaSectionCRCs(body, d); !ok {
			section = bad
		}
	}
	return &faults.ArtifactCorruptError{Section: section, Detail: detail}
}

// decodeDeltaBody resolves a (envelope-verified) v3 body into an
// artifact: structural parse, per-section trailer verification,
// template resolution with the typed missing/mismatch errors, delta
// application with resolved-section checksum verification, and finally
// the ordinary v2 body parse plus semantic validation over the
// reconstructed bytes.
func decodeDeltaBody(body []byte, resolve TemplateResolver) (*Artifact, error) {
	d, err := parseDeltaBody(body)
	if err != nil {
		return nil, err
	}
	if section, ok := verifyDeltaSectionCRCs(body, d); !ok {
		return nil, &faults.ArtifactCorruptError{Section: section, Detail: "section checksum mismatch"}
	}
	if resolve == nil {
		return nil, &faults.TemplateMissingError{Template: d.templateID}
	}
	t, ok := resolve(d.templateID)
	if !ok || t == nil {
		return nil, &faults.TemplateMissingError{Template: d.templateID}
	}
	if t.bodyCRC != d.templateCRC {
		return nil, &faults.TemplateMismatchError{
			Template: d.templateID,
			Detail:   fmt.Sprintf("template body CRC %#x, artifact pinned %#x", t.bodyCRC, d.templateCRC),
		}
	}

	var resolved wireWriter
	lastR := 0
	for i, name := range bodySectionNames {
		if name == "graphs" {
			resolved.u32(uint32(len(d.graphDeltas)))
			src := t.sections[2]
			for gi, gd := range d.graphDeltas {
				gb, err := deltaApply(src, gd, int(d.graphLens[gi]))
				if err == nil && len(gb) != int(d.graphLens[gi]) {
					err = fmt.Errorf("resolved %d bytes, want %d", len(gb), d.graphLens[gi])
				}
				if err != nil {
					return nil, &faults.ArtifactCorruptError{
						Section: "graphs",
						Detail:  fmt.Sprintf("graph %d delta: %v", gi, err),
					}
				}
				resolved.buf.Write(gb)
				src = gb
			}
		} else {
			raw, err := deltaApply(t.sections[i], d.deltas[i], int(d.rawLen[i]))
			if err != nil {
				return nil, &faults.ArtifactCorruptError{
					Section: name,
					Detail:  fmt.Sprintf("section delta: %v", err),
				}
			}
			resolved.buf.Write(raw)
		}
		sec := resolved.buf.Bytes()[lastR:]
		if len(sec) != int(d.rawLen[i]) {
			return nil, &faults.ArtifactCorruptError{
				Section: name,
				Detail:  fmt.Sprintf("resolved %d bytes, want %d", len(sec), d.rawLen[i]),
			}
		}
		if got := crc32.ChecksumIEEE(sec); got != d.rawCRC[i] {
			return nil, &faults.ArtifactCorruptError{
				Section: name,
				Detail:  fmt.Sprintf("resolved section checksum mismatch: %#x != %#x", got, d.rawCRC[i]),
			}
		}
		lastR = resolved.buf.Len()
	}
	// Append the v2 trailer the resolved sections imply and reuse the
	// ordinary parser — the reconstruction is bit-exact v2 by design.
	resolved.u8(numBodySections)
	for i := range bodySectionNames {
		resolved.u32(d.rawCRC[i])
	}
	a, _, _, err := parseBody(resolved.buf.Bytes(), true)
	if err != nil {
		return nil, err
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// TemplateRef peeks a v3 container's template reference without
// decoding it: the template ID and the pinned template body CRC.
// ok is false for self-contained (v1/v2) artifacts and anything
// structurally unreadable — callers then need no template.
func TemplateRef(p []byte) (id string, bodyCRC uint32, ok bool) {
	if len(p) < 16 || !bytes.Equal(p[:4], wireMagic[:]) {
		return "", 0, false
	}
	if binary.LittleEndian.Uint32(p[4:8]) != DeltaFormatVersion {
		return "", 0, false
	}
	r := &wireReader{p: p[16:]}
	id = r.str("template id")
	bodyCRC = r.u32()
	if r.err != nil {
		return "", 0, false
	}
	return id, bodyCRC, true
}
