package medusa

import (
	"encoding/binary"
	"testing"

	"github.com/medusa-repro/medusa/internal/cuda"
	"github.com/medusa-repro/medusa/internal/gpu"
	"github.com/medusa-repro/medusa/internal/vclock"
)

// scanFixture runs a minimal offline flow: one buffer of weights, one
// src, one dst, a single captured kernel referencing all three. When
// plantPointer is set, the src buffer's contents include the weights
// buffer's device address — an indirect pointer the §8 scanner must
// flag.
func scanFixture(t *testing.T, seed int64, plantPointer bool) (*cuda.Process, *Recorder, *Artifact) {
	t.Helper()
	rt := toyRuntime()
	p := cuda.NewProcess(rt, vclock.New(), cuda.Config{Seed: seed, Mode: gpu.Functional})
	rec := NewRecorder()
	p.SetHooks(rec.Hooks())
	s := p.NewStream()

	weights := mustMalloc(t, p, bufBytes) // alloc 0
	writeFloats(t, p, weights, weightData())
	src := mustMalloc(t, p, bufBytes) // alloc 1
	writeFloats(t, p, src, inputData())
	dst := mustMalloc(t, p, bufBytes) // alloc 2

	if plantPointer {
		// Store the weights buffer's address inside src — an
		// 8-byte-aligned word whose value is a live device pointer.
		var raw [8]byte
		binary.LittleEndian.PutUint64(raw[:], weights)
		buf, _, ok := p.Device().FindBuffer(src)
		if !ok {
			t.Fatal("src buffer missing")
		}
		if err := buf.WriteAt(16, raw[:]); err != nil {
			t.Fatal(err)
		}
	}

	rec.MarkCaptureStageBegin()
	args := []cuda.Value{cuda.PtrValue(dst), cuda.PtrValue(src), cuda.F32Value(2), cuda.U32Value(4)}
	if err := p.Launch(s, "toy_scale", args); err != nil { // warm-up
		t.Fatal(err)
	}
	if err := s.BeginCapture(); err != nil {
		t.Fatal(err)
	}
	if err := p.Launch(s, "toy_scale", args); err != nil {
		t.Fatal(err)
	}
	g, err := s.EndCapture()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.AttachGraph(1, g); err != nil {
		t.Fatal(err)
	}
	rec.MarkCaptureStageEnd()
	rec.RecordKV(KVRecord{NumBlocks: 1, BlockBytes: 1})
	art, err := Analyze(rec, p, AnalyzeOptions{ModelName: "scan"})
	if err != nil {
		t.Fatal(err)
	}
	return p, rec, art
}

func TestIndirectScanCleanWorkload(t *testing.T) {
	p, rec, art := scanFixture(t, 5000, false)
	warnings, err := ScanIndirectPointers(rec, p, art)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("clean workload produced warnings: %v", warnings)
	}
}

func TestIndirectScanDetectsStoredPointer(t *testing.T) {
	p, rec, art := scanFixture(t, 5100, true)
	warnings, err := ScanIndirectPointers(rec, p, art)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want exactly the planted one", warnings)
	}
	w := warnings[0]
	if w.AllocIndex != 1 || w.Offset != 16 || w.TargetIndex != 0 {
		t.Fatalf("warning = %+v, want src(1)@16 → weights(0)", w)
	}
	if w.String() == "" {
		t.Fatal("empty warning string")
	}
}

func TestIndirectScanRequiresCompleteRecorder(t *testing.T) {
	rec := NewRecorder()
	p := cuda.NewProcess(toyRuntime(), vclock.New(), cuda.Config{Seed: 1, Mode: gpu.Functional})
	if _, err := ScanIndirectPointers(rec, p, &Artifact{}); err == nil {
		t.Fatal("scan of incomplete recorder succeeded")
	}
}
