package medusa

import (
	"errors"
	"testing"
)

// artifactWithGroups builds a synthetic artifact with two pointer
// groups for correction-logic tests.
func artifactWithGroups() *Artifact {
	mkPtr := func() ParamRecord {
		return ParamRecord{Raw: []byte{0, 0, 0, 0, 0, 0x40, 0x7f, 0}, Pointer: true, AllocIndex: 0}
	}
	return &Artifact{
		FormatVersion: CurrentFormatVersion,
		ModelName:     "synthetic",
		AllocCount:    1,
		AllocSeq:      []AllocRecord{{AllocIndex: 0, Size: 4096}},
		PrefixLen:     1,
		Graphs: []GraphRecord{
			{Batch: 1, Nodes: []NodeRecord{
				{KernelName: "alpha", Params: []ParamRecord{mkPtr(), {Raw: []byte{1, 0, 0, 0}}}},
				{KernelName: "beta", Params: []ParamRecord{mkPtr()}, Deps: []int{0}},
			}},
			{Batch: 2, Nodes: []NodeRecord{
				{KernelName: "alpha", Params: []ParamRecord{mkPtr(), {Raw: []byte{2, 0, 0, 0}}}},
			}},
		},
		Kernels: map[string]KernelLoc{
			"alpha": {Library: "a.so", Exported: true},
			"beta":  {Library: "b.so", Exported: false},
		},
		KV: KVRecord{NumBlocks: 1, BlockBytes: 1},
	}
}

func TestPointerGroupsDeterministic(t *testing.T) {
	a := artifactWithGroups()
	g1 := a.PointerGroups()
	g2 := a.PointerGroups()
	if len(g1) != 2 {
		t.Fatalf("groups = %v", g1)
	}
	if g1[0].KernelName != "alpha" || g1[1].KernelName != "beta" {
		t.Fatalf("group order = %v", g1)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("PointerGroups not deterministic")
		}
	}
}

func TestSetGroupPointerAffectsAllGraphs(t *testing.T) {
	a := artifactWithGroups()
	changed := a.setGroupPointer(ParamGroup{KernelName: "alpha", ParamIndex: 0}, false)
	if changed != 2 {
		t.Fatalf("changed = %d, want both alpha nodes across graphs", changed)
	}
	if a.Stats().Pointers != 1 {
		t.Fatalf("pointers after demotion = %d", a.Stats().Pointers)
	}
	// Re-promote.
	if a.setGroupPointer(ParamGroup{KernelName: "alpha", ParamIndex: 0}, true) != 2 {
		t.Fatal("revert changed wrong count")
	}
	// 4-byte params are never flipped.
	if a.setGroupPointer(ParamGroup{KernelName: "alpha", ParamIndex: 1}, true) != 0 {
		t.Fatal("flipped a 4-byte constant to pointer")
	}
}

func TestValidateAndCorrectNoProgress(t *testing.T) {
	a := artifactWithGroups()
	calls := 0
	validate := func(*Artifact) ([]int, error) {
		calls++
		return []int{1, 2}, nil // every batch always mismatches
	}
	_, err := a.ValidateAndCorrect(validate)
	if err == nil {
		t.Fatal("uncorrectable artifact validated")
	}
	// All groups tried once plus the initial round.
	if calls != 1+len(a.PointerGroups()) {
		t.Fatalf("validate calls = %d", calls)
	}
	// Failed corrections must be reverted.
	if a.Stats().Pointers != 3 {
		t.Fatalf("pointers after failed correction = %d, want 3", a.Stats().Pointers)
	}
}

func TestValidateAndCorrectPartialProgress(t *testing.T) {
	a := artifactWithGroups()
	// Batch 1 is fixed by demoting beta's param; batch 2 never fixes.
	validate := func(art *Artifact) ([]int, error) {
		var mismatched []int
		betaPtr := false
		for _, g := range art.Graphs {
			for _, n := range g.Nodes {
				if n.KernelName == "beta" && n.Params[0].Pointer {
					betaPtr = true
				}
			}
		}
		if betaPtr {
			mismatched = append(mismatched, 1)
		}
		mismatched = append(mismatched, 2)
		return mismatched, nil
	}
	res, err := a.ValidateAndCorrect(validate)
	if err == nil {
		t.Fatal("partially correctable artifact fully validated")
	}
	// The productive demotion (beta) must be kept.
	kept := false
	for _, pg := range res.Demoted {
		if pg.KernelName == "beta" {
			kept = true
		}
	}
	if !kept {
		t.Fatalf("productive demotion not kept: %+v", res)
	}
}

func TestValidateAndCorrectValidationError(t *testing.T) {
	a := artifactWithGroups()
	boom := errors.New("boom")
	_, err := a.ValidateAndCorrect(func(*Artifact) ([]int, error) { return nil, boom })
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestArtifactValidateRejectsMalformed(t *testing.T) {
	cases := map[string]func(*Artifact){
		"bad prefix":        func(a *Artifact) { a.PrefixLen = 99 },
		"bad alloc index":   func(a *Artifact) { a.Graphs[0].Nodes[0].Params[0].AllocIndex = 5 },
		"dangling dep":      func(a *Artifact) { a.Graphs[0].Nodes[1].Deps = []int{7} },
		"unknown kernel":    func(a *Artifact) { a.Graphs[0].Nodes[0].KernelName = "ghost" },
		"bad param width":   func(a *Artifact) { a.Graphs[0].Nodes[0].Params[0].Raw = []byte{1, 2} },
		"free out of range": func(a *Artifact) { a.AllocSeq = append(a.AllocSeq, AllocRecord{Free: true, AllocIndex: 9}) },
		"perm size lie": func(a *Artifact) {
			a.Permanent = []PermRecord{{AllocIndex: 0, Size: 8, Contents: []byte{1}}}
		},
	}
	for name, corrupt := range cases {
		a := artifactWithGroups()
		corrupt(a)
		if _, err := a.Encode(); err == nil {
			t.Errorf("%s: Encode accepted malformed artifact", name)
		}
	}
}
