package medusa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"github.com/medusa-repro/medusa/internal/faults"
)

// Artifact wire format (normative spec: docs/ARTIFACT_FORMAT.md):
//
//	"MDSA" | u32 version | u32 bodyLen | u32 crc32(body) | body
//
// For the self-contained versions (v1, v2) the body is a flat
// little-endian encoding of the artifact's six sections, followed in
// v2 by a checksum trailer:
//
//	header | alloc_seq | graphs | kernel_table | permanent | kv_record
//	| u8 sectionCount | sectionCount × u32 crc32(section)
//
// v3 (template.go) replaces the section payloads with deltas against a
// shared per-architecture template, prefixed by a template_ref section
// and covered by the same per-section trailer scheme.
//
// The envelope CRC guards against torn or corrupted artifact files:
// restoring from a damaged artifact must fail loudly, never silently
// build wrong graphs. The per-section trailer (new in v2) lets the
// decoder name the first damaged section, so a corrupt restore
// surfaces a *faults.ArtifactCorruptError pinpointing what was lost
// rather than an opaque checksum failure.
var wireMagic = [4]byte{'M', 'D', 'S', 'A'}

// numBodySections is the fixed count of checksummed body sections.
const numBodySections = 6

// bodySectionNames lists the checksummed body sections in wire order.
var bodySectionNames = [numBodySections]string{
	"header", "alloc_seq", "graphs", "kernel_table", "permanent", "kv_record",
}

type wireWriter struct {
	buf bytes.Buffer
}

func (w *wireWriter) u8(v uint8)   { w.buf.WriteByte(v) }
func (w *wireWriter) u32(v uint32) { _ = binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *wireWriter) u64(v uint64) { _ = binary.Write(&w.buf, binary.LittleEndian, v) }
func (w *wireWriter) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *wireWriter) bytes(p []byte) {
	w.u32(uint32(len(p)))
	w.buf.Write(p)
}
func (w *wireWriter) str(s string) { w.bytes([]byte(s)) }

type wireReader struct {
	p   []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("medusa: artifact decode: "+format, args...)
	}
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.p) {
		r.fail("truncated at offset %d (need %d bytes)", r.off, n)
		return nil
	}
	out := r.p[r.off : r.off+n]
	r.off += n
	return out
}

func (r *wireReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *wireReader) boolean() bool { return r.u8() != 0 }

func (r *wireReader) blob(what string, limit uint32) []byte {
	n := r.u32()
	if n > limit {
		r.fail("%s of %d bytes exceeds limit %d", what, n, limit)
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	// append to a non-nil empty slice: a present-but-empty blob must
	// decode non-nil, or re-encoding would drop its presence bit and
	// break the encode→decode→encode fixed point.
	return append([]byte{}, b...)
}

func (r *wireReader) str(what string) string { return string(r.blob(what, 1<<20)) }

// encodeBody writes the artifact body, calling mark after each wire
// section so callers can attribute bytes to sections without a second
// format definition (Encode and SectionSizes share this one walk).
func (a *Artifact) encodeBody(w *wireWriter, mark func(section string)) {
	w.str(a.ModelName)
	w.u32(uint32(a.AllocCount))
	w.u32(uint32(a.PrefixLen))
	mark("header")

	w.u32(uint32(len(a.AllocSeq)))
	for _, ev := range a.AllocSeq {
		w.boolean(ev.Free)
		w.u32(uint32(ev.AllocIndex))
		w.u64(ev.Size)
		w.str(ev.Label)
	}
	mark("alloc_seq")

	w.u32(uint32(len(a.Graphs)))
	for i := range a.Graphs {
		encodeGraph(w, &a.Graphs[i])
	}
	mark("graphs")

	names := make([]string, 0, len(a.Kernels))
	for name := range a.Kernels {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic encoding
	w.u32(uint32(len(names)))
	for _, name := range names {
		loc := a.Kernels[name]
		w.str(name)
		w.str(loc.Library)
		w.boolean(loc.Exported)
	}
	mark("kernel_table")

	w.u32(uint32(len(a.Permanent)))
	for _, pr := range a.Permanent {
		w.u32(uint32(pr.AllocIndex))
		w.u64(pr.Size)
		w.boolean(pr.Contents != nil)
		if pr.Contents != nil {
			w.bytes(pr.Contents)
		}
	}
	mark("permanent")

	w.u64(a.KV.FreeMemBytes)
	w.u32(uint32(a.KV.NumBlocks))
	w.u64(a.KV.BlockBytes)
	mark("kv_record")
}

// encodeGraph writes one materialized graph. Shared between the v2
// body walk and the v3 per-graph delta chunking: the graphs section
// body is exactly u32 count followed by these graph encodings, so the
// v3 decoder can splice resolved graph bodies back into a bit-exact v2
// section.
func encodeGraph(w *wireWriter, g *GraphRecord) {
	w.u32(uint32(g.Batch))
	w.u32(uint32(len(g.Nodes)))
	for _, n := range g.Nodes {
		w.str(n.KernelName)
		w.u32(uint32(len(n.Deps)))
		for _, d := range n.Deps {
			w.u32(uint32(d))
		}
		w.u32(uint32(len(n.Params)))
		for _, p := range n.Params {
			w.bytes(p.Raw)
			w.boolean(p.Pointer)
			w.u32(uint32(p.AllocIndex))
			w.u64(p.Offset)
		}
	}
}

// encodeBodyChecksummed writes the body sections via encodeBody, then
// appends the v2 per-section checksum trailer. mark fires after each
// section and once more for the trailer itself ("section_crcs").
func (a *Artifact) encodeBodyChecksummed(w *wireWriter, mark func(section string)) {
	crcs := make([]uint32, 0, numBodySections)
	last := 0
	a.encodeBody(w, func(section string) {
		crcs = append(crcs, crc32.ChecksumIEEE(w.buf.Bytes()[last:]))
		last = w.buf.Len()
		mark(section)
	})
	w.u8(uint8(len(crcs)))
	for _, c := range crcs {
		w.u32(c)
	}
	mark("section_crcs")
}

// Section is one wire-format section's share of an encoded artifact.
type Section struct {
	// Name is the section ("envelope", "header", "alloc_seq", "graphs",
	// "kernel_table", "permanent", "kv_record", "section_crcs").
	Name string
	// Bytes is the section's encoded size.
	Bytes uint64
}

// SectionSizes attributes an artifact's encoded size to wire sections,
// in wire order and summing exactly to len(Encode()). medusa-inspect
// prints this breakdown per artifact.
func (a *Artifact) SectionSizes() ([]Section, error) {
	if err := a.validate(); err != nil {
		return nil, fmt.Errorf("medusa: refusing to size inconsistent artifact: %w", err)
	}
	var w wireWriter
	out := []Section{{Name: "envelope", Bytes: 16}}
	last := 0
	a.encodeBodyChecksummed(&w, func(section string) {
		out = append(out, Section{Name: section, Bytes: uint64(w.buf.Len() - last)})
		last = w.buf.Len()
	})
	return out, nil
}

// Encode serializes the artifact.
func (a *Artifact) Encode() ([]byte, error) {
	if err := a.validate(); err != nil {
		return nil, fmt.Errorf("medusa: refusing to encode inconsistent artifact: %w", err)
	}
	var w wireWriter
	a.encodeBodyChecksummed(&w, func(string) {})

	body := w.buf.Bytes()
	out := make([]byte, 0, len(body)+16)
	out = append(out, wireMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, a.FormatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	out = append(out, body...)
	return out, nil
}

// EncodeLegacyV1 serializes the artifact in the original trailer-less
// v1 layout. Kept (and exercised by the cross-version tests and
// fuzzers) so registries written before the v2 per-section trailer
// remain readable; new artifacts always encode as v2 or v3.
func EncodeLegacyV1(a *Artifact) ([]byte, error) {
	if err := a.validate(); err != nil {
		return nil, fmt.Errorf("medusa: refusing to encode inconsistent artifact: %w", err)
	}
	var w wireWriter
	a.encodeBody(&w, func(string) {})
	body := w.buf.Bytes()
	out := make([]byte, 0, len(body)+16)
	out = append(out, wireMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, legacyFormatVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return append(out, body...), nil
}

// Decode parses a self-contained (v1 or v2) artifact, verifying magic,
// version, the envelope checksum, and (v2) every per-section checksum.
// Checksum failures return a *faults.ArtifactCorruptError naming the
// first damaged section (best effort — "body" when the damage prevents
// even locating sections); structural failures (truncation, limit
// violations, trailing bytes) return descriptive plain errors. A v3
// (template+delta) input returns a typed *faults.TemplateMissingError:
// its template must be supplied through DecodeResolved. Decode never
// panics, whatever the input. The normative wire-format spec lives in
// docs/ARTIFACT_FORMAT.md.
func Decode(p []byte) (*Artifact, error) {
	return DecodeResolved(p, nil)
}

// DecodeResolved parses an artifact of any supported wire version,
// resolving v3 template references through resolve. Decoded artifacts
// are normalized to the current self-contained version: re-encoding
// with Encode always writes v2, and re-encoding with EncodeDelta
// against the same template reproduces the v3 bytes exactly. A nil
// resolver decodes v1/v2 only (v3 surfaces the typed missing-template
// error). Like Decode, it never panics.
func DecodeResolved(p []byte, resolve TemplateResolver) (*Artifact, error) {
	if len(p) < 16 {
		return nil, fmt.Errorf("medusa: artifact of %d bytes is shorter than its header", len(p))
	}
	if !bytes.Equal(p[:4], wireMagic[:]) {
		return nil, fmt.Errorf("medusa: bad artifact magic %q", p[:4])
	}
	version := binary.LittleEndian.Uint32(p[4:8])
	switch version {
	case legacyFormatVersion, CurrentFormatVersion, DeltaFormatVersion:
	default:
		return nil, fmt.Errorf("medusa: artifact format v%d not supported (≤ v%d)", version, DeltaFormatVersion)
	}
	bodyLen := binary.LittleEndian.Uint32(p[8:12])
	wantCRC := binary.LittleEndian.Uint32(p[12:16])
	if uint64(len(p)-16) != uint64(bodyLen) {
		return nil, fmt.Errorf("medusa: artifact body is %d bytes, header says %d", len(p)-16, bodyLen)
	}
	body := p[16:]
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		detail := fmt.Sprintf("envelope checksum mismatch: %#x != %#x", got, wantCRC)
		if version == DeltaFormatVersion {
			return nil, corruptDeltaError(body, detail)
		}
		return nil, corruptError(body, version == CurrentFormatVersion, detail)
	}
	if version == DeltaFormatVersion {
		return decodeDeltaBody(body, resolve)
	}

	a, ends, crcs, err := parseBody(body, version == CurrentFormatVersion)
	if err != nil {
		return nil, err
	}
	if version == CurrentFormatVersion {
		if section, ok := verifySectionCRCs(body, ends, crcs); !ok {
			return nil, &faults.ArtifactCorruptError{
				Key:     a.ModelName,
				Section: section,
				Detail:  "section checksum mismatch",
			}
		}
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// corruptError builds the ArtifactCorruptError for a v1/v2 body that
// failed the envelope checksum, localizing the damage to the first
// section whose trailer CRC mismatches when the body is still
// structurally parseable (v2 only — v1 has no trailer), and falling
// back to "body" when it is not.
func corruptError(body []byte, trailer bool, detail string) error {
	section, key := "body", ""
	if a, ends, crcs, err := parseBody(body, trailer); err == nil {
		key = a.ModelName
		if trailer {
			if bad, ok := verifySectionCRCs(body, ends, crcs); !ok {
				section = bad
			}
		}
	}
	return &faults.ArtifactCorruptError{Key: key, Section: section, Detail: detail}
}

// verifySectionCRCs recomputes each body section's checksum against
// the trailer, returning the first mismatching section's name.
func verifySectionCRCs(body []byte, ends [numBodySections]int, crcs [numBodySections]uint32) (string, bool) {
	start := 0
	for i, end := range ends {
		if crc32.ChecksumIEEE(body[start:end]) != crcs[i] {
			return bodySectionNames[i], false
		}
		start = end
	}
	return "", true
}

// parseBody decodes the six body sections and, when trailer is set
// (v2), the checksum trailer — returning the artifact, each section's
// end offset, and the trailer's stored checksums. It performs no
// checksum verification and no semantic validation — Decode layers
// those on top.
func parseBody(body []byte, trailer bool) (*Artifact, [numBodySections]int, [numBodySections]uint32, error) {
	var ends [numBodySections]int
	var crcs [numBodySections]uint32
	sec := 0
	endSection := func(r *wireReader) {
		if r.err == nil && sec < numBodySections {
			ends[sec] = r.off
			sec++
		}
	}

	r := &wireReader{p: body}
	a := &Artifact{FormatVersion: CurrentFormatVersion, Kernels: make(map[string]KernelLoc)}
	a.ModelName = r.str("model name")
	a.AllocCount = int(r.u32())
	a.PrefixLen = int(r.u32())
	endSection(r)

	nEvents := r.u32()
	if nEvents > 1<<24 {
		r.fail("%d allocation events", nEvents)
	}
	for i := uint32(0); i < nEvents && r.err == nil; i++ {
		var ev AllocRecord
		ev.Free = r.boolean()
		ev.AllocIndex = int(r.u32())
		ev.Size = r.u64()
		ev.Label = r.str("alloc label")
		a.AllocSeq = append(a.AllocSeq, ev)
	}
	endSection(r)

	nGraphs := r.u32()
	if nGraphs > 1<<16 {
		r.fail("%d graphs", nGraphs)
	}
	for gi := uint32(0); gi < nGraphs && r.err == nil; gi++ {
		var g GraphRecord
		g.Batch = int(r.u32())
		nNodes := r.u32()
		if nNodes > 1<<22 {
			r.fail("graph with %d nodes", nNodes)
		}
		for ni := uint32(0); ni < nNodes && r.err == nil; ni++ {
			var n NodeRecord
			n.KernelName = r.str("kernel name")
			nDeps := r.u32()
			if nDeps > nNodes {
				r.fail("node with %d deps", nDeps)
			}
			for di := uint32(0); di < nDeps && r.err == nil; di++ {
				n.Deps = append(n.Deps, int(r.u32()))
			}
			nParams := r.u32()
			if nParams > 1<<12 {
				r.fail("node with %d params", nParams)
			}
			for pi := uint32(0); pi < nParams && r.err == nil; pi++ {
				var p ParamRecord
				p.Raw = r.blob("param image", 8)
				p.Pointer = r.boolean()
				p.AllocIndex = int(r.u32())
				p.Offset = r.u64()
				n.Params = append(n.Params, p)
			}
			g.Nodes = append(g.Nodes, n)
		}
		a.Graphs = append(a.Graphs, g)
	}
	endSection(r)

	nKernels := r.u32()
	if nKernels > 1<<20 {
		r.fail("%d kernel entries", nKernels)
	}
	for i := uint32(0); i < nKernels && r.err == nil; i++ {
		name := r.str("kernel name")
		lib := r.str("library name")
		exported := r.boolean()
		a.Kernels[name] = KernelLoc{Library: lib, Exported: exported}
	}
	endSection(r)

	nPerm := r.u32()
	if nPerm > 1<<22 {
		r.fail("%d permanent records", nPerm)
	}
	for i := uint32(0); i < nPerm && r.err == nil; i++ {
		var pr PermRecord
		pr.AllocIndex = int(r.u32())
		pr.Size = r.u64()
		if r.boolean() {
			pr.Contents = r.blob("permanent contents", 1<<26)
		}
		a.Permanent = append(a.Permanent, pr)
	}
	endSection(r)

	a.KV.FreeMemBytes = r.u64()
	a.KV.NumBlocks = int(r.u32())
	a.KV.BlockBytes = r.u64()
	endSection(r)

	if trailer {
		if n := r.u8(); n != numBodySections && r.err == nil {
			r.fail("checksum trailer lists %d sections, want %d", n, numBodySections)
		}
		for i := 0; i < numBodySections; i++ {
			crcs[i] = r.u32()
		}
	}

	if r.err != nil {
		return nil, ends, crcs, r.err
	}
	if r.off != len(body) {
		return nil, ends, crcs, fmt.Errorf("medusa: %d trailing bytes after artifact body", len(body)-r.off)
	}
	return a, ends, crcs, nil
}
