package medusa_test

// Template/delta (v3) tests live in an external test package so they
// can exercise the codec on the real model zoo via the engine's
// offline phase — package medusa cannot import engine (engine imports
// medusa).

import (
	"bytes"
	"errors"
	"testing"

	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/faults"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/model"
)

// offlineArtifact materializes one zoo model's artifact (cost-only: no
// validation forwarding, fast enough to run for the whole fleet).
func offlineArtifact(t *testing.T, name string) *medusa.Artifact {
	t.Helper()
	cfg, err := model.ByName(name)
	if err != nil {
		t.Fatalf("model %s: %v", name, err)
	}
	cfg.Functional = false
	art, _, err := engine.RunOffline(engine.OfflineOptions{Model: cfg, Seed: 1})
	if err != nil {
		t.Fatalf("offline %s: %v", name, err)
	}
	return art
}

// templateFleetModels is the ext-cache-policies / ext-template fleet:
// ten zoo models across all three architecture families.
var templateFleetModels = []string{
	"Qwen1.5-0.5B", "Qwen1.5-1.8B", "Llama2-7B", "Qwen1.5-7B", "Yi-6B",
	"Falcon-7B", "Llama2-13B", "Qwen1.5-4B", "Qwen1.5-14B", "Yi-9B",
}

func resolverFor(ts ...*medusa.Template) medusa.TemplateResolver {
	return func(id string) (*medusa.Template, bool) {
		for _, t := range ts {
			if t.ID() == id {
				return t, true
			}
		}
		return nil, false
	}
}

func TestTemplateRoundTrip(t *testing.T) {
	art := offlineArtifact(t, "Qwen1.5-1.8B")
	tmpl, err := medusa.BuildTemplate("medusa/templates/standard", art)
	if err != nil {
		t.Fatalf("BuildTemplate: %v", err)
	}

	// Template encoding is a fixed point.
	enc := tmpl.Encode()
	tmpl2, err := medusa.DecodeTemplate(enc)
	if err != nil {
		t.Fatalf("DecodeTemplate: %v", err)
	}
	if !bytes.Equal(tmpl2.Encode(), enc) {
		t.Fatal("template encode→decode→encode is not a fixed point")
	}
	if tmpl2.ID() != tmpl.ID() || tmpl2.BodyCRC() != tmpl.BodyCRC() {
		t.Fatalf("template identity drifted: %q/%#x vs %q/%#x",
			tmpl2.ID(), tmpl2.BodyCRC(), tmpl.ID(), tmpl.BodyCRC())
	}

	// Delta round trip: decode(v3) re-encodes to the original v2 bytes
	// and to the original v3 bytes.
	other := offlineArtifact(t, "Qwen1.5-4B")
	wantV2, err := other.Encode()
	if err != nil {
		t.Fatal(err)
	}
	deltaWire, err := other.EncodeDelta(tmpl)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	back, err := medusa.DecodeResolved(deltaWire, resolverFor(tmpl))
	if err != nil {
		t.Fatalf("DecodeResolved: %v", err)
	}
	gotV2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotV2, wantV2) {
		t.Fatal("v3 decode does not reproduce the v2 encoding")
	}
	again, err := back.EncodeDelta(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, deltaWire) {
		t.Fatal("v3 encode→decode→encode is not a fixed point")
	}

	// TemplateRef peeks without resolving.
	id, crc, ok := TemplateRefOf(deltaWire)
	if !ok || id != tmpl.ID() || crc != tmpl.BodyCRC() {
		t.Fatalf("TemplateRef = %q/%#x/%v, want %q/%#x/true", id, crc, ok, tmpl.ID(), tmpl.BodyCRC())
	}
	if _, _, ok := TemplateRefOf(wantV2); ok {
		t.Fatal("TemplateRef claimed a v2 artifact references a template")
	}

	// Self-delta: a template built from the same artifact shrinks it
	// the most.
	selfTmpl, err := medusa.BuildTemplate("medusa/templates/self", other)
	if err != nil {
		t.Fatal(err)
	}
	selfDelta, err := other.EncodeDelta(selfTmpl)
	if err != nil {
		t.Fatal(err)
	}
	if len(selfDelta) >= len(deltaWire) {
		t.Errorf("self-template delta (%d bytes) not smaller than cross-model delta (%d bytes)",
			len(selfDelta), len(deltaWire))
	}
}

// TemplateRefOf adapts medusa.TemplateRef for tests.
func TemplateRefOf(p []byte) (string, uint32, bool) { return medusa.TemplateRef(p) }

func TestTemplateTypedErrors(t *testing.T) {
	art := offlineArtifact(t, "Qwen1.5-0.5B")
	tmpl, err := medusa.BuildTemplate("medusa/templates/fused", art)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := art.EncodeDelta(tmpl)
	if err != nil {
		t.Fatal(err)
	}

	// Missing template: nil resolver and resolver without the ID.
	var missing *faults.TemplateMissingError
	if _, err := medusa.Decode(wire); !errors.As(err, &missing) {
		t.Fatalf("Decode(v3) = %v, want TemplateMissingError", err)
	}
	if missing.Template != tmpl.ID() {
		t.Fatalf("missing template ID = %q, want %q", missing.Template, tmpl.ID())
	}
	if _, err := medusa.DecodeResolved(wire, resolverFor()); !errors.As(err, &missing) {
		t.Fatalf("DecodeResolved(empty resolver) = %v, want TemplateMissingError", err)
	}
	if reason, ok := faults.DegradeReason(missing); !ok || reason != faults.ReasonTemplateMissing {
		t.Fatalf("DegradeReason(missing) = %q/%v", reason, ok)
	}

	// Mismatched template: same ID, different content.
	otherArt := offlineArtifact(t, "Qwen1.5-1.8B")
	wrong, err := medusa.BuildTemplate(tmpl.ID(), otherArt)
	if err != nil {
		t.Fatal(err)
	}
	var mismatch *faults.TemplateMismatchError
	if _, err := medusa.DecodeResolved(wire, resolverFor(wrong)); !errors.As(err, &mismatch) {
		t.Fatalf("DecodeResolved(wrong template) = %v, want TemplateMismatchError", err)
	}
	if reason, ok := faults.DegradeReason(mismatch); !ok || reason != faults.ReasonTemplateMismatch {
		t.Fatalf("DegradeReason(mismatch) = %q/%v", reason, ok)
	}

	// Corrupted template object: CRC failure is a typed corrupt error.
	enc := tmpl.Encode()
	enc[len(enc)-1] ^= 0xff
	var corrupt *faults.ArtifactCorruptError
	if _, err := medusa.DecodeTemplate(enc); !errors.As(err, &corrupt) {
		t.Fatalf("DecodeTemplate(corrupt) = %v, want ArtifactCorruptError", err)
	} else if corrupt.Section != "template" {
		t.Fatalf("corrupt section = %q, want template", corrupt.Section)
	}

	// Version-skewed template object: typed mismatch.
	enc2 := tmpl.Encode()
	enc2[4] = 99
	if _, err := medusa.DecodeTemplate(enc2); !errors.As(err, &mismatch) {
		t.Fatalf("DecodeTemplate(version skew) = %v, want TemplateMismatchError", err)
	}
}

func TestCorruptedDeltaLocalizes(t *testing.T) {
	art := offlineArtifact(t, "Qwen1.5-0.5B")
	tmpl, err := medusa.BuildTemplate("medusa/templates/fused", art)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := art.EncodeDelta(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	resolve := resolverFor(tmpl)

	// Flip one byte in the middle of the body: decode must fail with a
	// typed corruption error naming a real wire section, never panic.
	for _, off := range []int{20, len(wire) / 2, len(wire) - 10} {
		mut := append([]byte(nil), wire...)
		mut[off] ^= 0x41
		_, err := medusa.DecodeResolved(mut, resolve)
		if err == nil {
			t.Fatalf("decode of corrupted byte %d succeeded", off)
		}
		var corrupt *faults.ArtifactCorruptError
		if errors.As(err, &corrupt) {
			switch corrupt.Section {
			case "template_ref", "header", "alloc_seq", "graphs",
				"kernel_table", "permanent", "kv_record", "body", "template":
			default:
				t.Fatalf("corrupt byte %d localized to unknown section %q", off, corrupt.Section)
			}
		}
	}
}

// TestTemplateFleetDedup measures the acceptance criterion on the real
// ten-model Zipf fleet: per-family templates plus per-model deltas must
// shrink the registry footprint by at least 5x versus self-contained v2
// artifacts.
func TestTemplateFleetDedup(t *testing.T) {
	byFamily := map[model.Family][]*medusa.Artifact{}
	var order []model.Family
	arts := map[string]*medusa.Artifact{}
	for _, name := range templateFleetModels {
		cfg, err := model.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		art := offlineArtifact(t, name)
		arts[name] = art
		if len(byFamily[cfg.Family]) == 0 {
			order = append(order, cfg.Family)
		}
		byFamily[cfg.Family] = append(byFamily[cfg.Family], art)
	}

	var fullBytes, sharedBytes int
	templates := map[model.Family]*medusa.Template{}
	for _, fam := range order {
		// Reference = lexicographically smallest model name, matching
		// engine.StoreTemplates.
		ref := byFamily[fam][0]
		for _, a := range byFamily[fam] {
			if a.ModelName < ref.ModelName {
				ref = a
			}
		}
		tmpl, err := medusa.BuildTemplate("medusa/templates/"+string(fam), ref)
		if err != nil {
			t.Fatal(err)
		}
		templates[fam] = tmpl
		sharedBytes += len(tmpl.Encode())
	}
	for _, name := range templateFleetModels {
		cfg, _ := model.ByName(name)
		art := arts[name]
		full, err := art.Encode()
		if err != nil {
			t.Fatal(err)
		}
		fullBytes += len(full)
		delta, err := art.EncodeDelta(templates[cfg.Family])
		if err != nil {
			t.Fatal(err)
		}
		sharedBytes += len(delta)

		// Every delta must still decode to the exact artifact.
		back, err := medusa.DecodeResolved(delta, resolverFor(templates[cfg.Family]))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		reEnc, err := back.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reEnc, full) {
			t.Fatalf("%s: v3 round trip lost bytes", name)
		}
		t.Logf("%-14s full %8d  delta %7d  (%.1fx)", name, len(full), len(delta),
			float64(len(full))/float64(len(delta)))
	}
	factor := float64(fullBytes) / float64(sharedBytes)
	t.Logf("fleet: full %d bytes, templates+deltas %d bytes, dedup %.2fx",
		fullBytes, sharedBytes, factor)
	if factor < 5 {
		t.Fatalf("fleet dedup factor %.2fx < 5x acceptance floor", factor)
	}
}

func TestDeltaSectionSizesSum(t *testing.T) {
	art := offlineArtifact(t, "Qwen1.5-0.5B")
	tmpl, err := medusa.BuildTemplate("medusa/templates/fused", art)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := art.EncodeDelta(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	secs, err := art.DeltaSectionSizes(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, s := range secs {
		sum += s.Bytes
	}
	if sum != uint64(len(wire)) {
		t.Fatalf("DeltaSectionSizes sum %d != wire length %d", sum, len(wire))
	}
	tSecs := tmpl.SectionSizes()
	sum = 0
	for _, s := range tSecs {
		sum += s.Bytes
	}
	if sum != uint64(len(tmpl.Encode())) {
		t.Fatalf("Template.SectionSizes sum %d != encoded length %d", sum, len(tmpl.Encode()))
	}
}

func TestLegacyV1Decodes(t *testing.T) {
	art := offlineArtifact(t, "Qwen1.5-0.5B")
	v2, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	v1, err := medusa.EncodeLegacyV1(art)
	if err != nil {
		t.Fatal(err)
	}
	back, err := medusa.Decode(v1)
	if err != nil {
		t.Fatalf("Decode(v1): %v", err)
	}
	reEnc, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reEnc, v2) {
		t.Fatal("v1 decode does not normalize to the v2 encoding")
	}
}
