package metrics

import (
	"fmt"
	"time"
)

// This file holds the rate estimators the fleet control plane forecasts
// demand with (internal/autoscale): plain exponential smoothing (EWMA),
// Holt's linear trend method, and a windowed arrival-rate estimator
// that feeds virtual-time arrival instants into a Holt filter. Nothing
// here reads a wall clock — estimators advance only when fed
// observations or explicitly rolled forward to a virtual instant, so
// fixed-seed simulations using them stay byte-deterministic.

// EWMA is an exponentially weighted moving average: level' = α·x +
// (1−α)·level, initialized to the first observation. The zero value is
// unusable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	level float64
	n     int
}

// NewEWMA returns an EWMA smoother with weight alpha in (0, 1]. Larger
// alphas track recent observations more aggressively.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("metrics: EWMA alpha must be in (0,1], got %g", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe feeds one observation.
func (e *EWMA) Observe(x float64) {
	if e.n == 0 {
		e.level = x
	} else {
		e.level = e.alpha*x + (1-e.alpha)*e.level
	}
	e.n++
}

// Level returns the smoothed value (0 before any observation).
func (e *EWMA) Level() float64 { return e.level }

// Count reports how many observations have been folded in.
func (e *EWMA) Count() int { return e.n }

// Holt is Holt's linear (double exponential) smoothing: a level and a
// trend component, so forecasts extrapolate a ramp instead of lagging
// it the way a plain EWMA does. Initialization is the textbook one —
// level₀ = x₀, trend₀ = x₁ − x₀ — under which a perfectly linear
// series is tracked exactly (the unit tests pin this closed form).
// The zero value is unusable; construct with NewHolt.
type Holt struct {
	alpha, beta  float64
	level, trend float64
	first        float64
	n            int
}

// NewHolt returns a Holt smoother with level weight alpha and trend
// weight beta, both in (0, 1].
func NewHolt(alpha, beta float64) (*Holt, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("metrics: Holt alpha must be in (0,1], got %g", alpha)
	}
	if beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("metrics: Holt beta must be in (0,1], got %g", beta)
	}
	return &Holt{alpha: alpha, beta: beta}, nil
}

// Observe feeds one observation.
func (h *Holt) Observe(x float64) {
	switch h.n {
	case 0:
		h.first = x
	case 1:
		h.level = x
		h.trend = x - h.first
	default:
		prev := h.level
		h.level = h.alpha*x + (1-h.alpha)*(h.level+h.trend)
		h.trend = h.beta*(h.level-prev) + (1-h.beta)*h.trend
	}
	h.n++
}

// Level returns the smoothed level. Before two observations it falls
// back to the best available value (the sole observation, or 0).
func (h *Holt) Level() float64 {
	if h.n < 2 {
		return h.first
	}
	return h.level
}

// Trend returns the smoothed per-step slope (0 before two
// observations).
func (h *Holt) Trend() float64 {
	if h.n < 2 {
		return 0
	}
	return h.trend
}

// Forecast extrapolates k steps ahead: level + k·trend. Fractional k
// interpolates within a step.
func (h *Holt) Forecast(k float64) float64 { return h.Level() + k*h.Trend() }

// Count reports how many observations have been folded in.
func (h *Holt) Count() int { return h.n }

// RateWindow estimates an arrival process's rate on virtual time: it
// counts arrivals into fixed-width windows and feeds each completed
// window's rate (count/width, in events per second) into a Holt
// filter. Windows the process skipped entirely contribute zero-rate
// observations, so the estimate decays through quiet periods instead
// of freezing at the last busy window's rate.
type RateWindow struct {
	width    time.Duration
	holt     *Holt
	winStart time.Duration
	count    int
	last     time.Duration
	observed bool
}

// NewRateWindow returns a windowed rate estimator with the given
// window width and Holt smoothing weights.
func NewRateWindow(width time.Duration, alpha, beta float64) (*RateWindow, error) {
	if width <= 0 {
		return nil, fmt.Errorf("metrics: rate window width must be positive, got %v", width)
	}
	holt, err := NewHolt(alpha, beta)
	if err != nil {
		return nil, err
	}
	return &RateWindow{width: width, holt: holt}, nil
}

// Observe records one arrival at virtual instant t. Arrivals must be
// fed in nondecreasing order (the simulators' event loops guarantee
// this).
func (w *RateWindow) Observe(t time.Duration) {
	w.roll(t)
	w.count++
	w.last = t
	w.observed = true
}

// LastObserved returns the instant of the most recent arrival and
// whether any arrival has been observed at all. The Holt level decays
// gradually through silence; this is the sharp signal — consumers that
// must react to traffic stopping (retiring speculative capacity, say)
// check the gap since the last arrival rather than waiting for the
// smoothed rate to bleed to zero.
func (w *RateWindow) LastObserved() (time.Duration, bool) { return w.last, w.observed }

// roll closes every window that ends at or before t, feeding each
// closed window's rate into the Holt filter.
func (w *RateWindow) roll(t time.Duration) {
	for t >= w.winStart+w.width {
		w.holt.Observe(float64(w.count) / w.width.Seconds())
		w.count = 0
		w.winStart += w.width
	}
}

// RateAt returns the smoothed arrival rate (events/second) as of
// virtual instant t, first closing any windows that completed before
// t. The in-progress window is not included: its partial count would
// bias the rate low early in the window.
func (w *RateWindow) RateAt(t time.Duration) float64 {
	w.roll(t)
	return w.holt.Level()
}

// ForecastAt extrapolates the arrival rate horizon ahead of virtual
// instant t using the Holt trend, clamped at zero (a negative arrival
// rate is meaningless). Windows completed before t are closed first.
func (w *RateWindow) ForecastAt(t, horizon time.Duration) float64 {
	w.roll(t)
	f := w.holt.Forecast(horizon.Seconds() / w.width.Seconds())
	if f < 0 {
		return 0
	}
	return f
}

// Windows reports how many complete windows have been folded in.
func (w *RateWindow) Windows() int { return w.holt.Count() }
