package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleOf(vals ...time.Duration) *Sample {
	var s Sample
	for _, v := range vals {
		s.Add(v)
	}
	return &s
}

func TestPercentileNearestRank(t *testing.T) {
	s := sampleOf(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	cases := []struct {
		p    float64
		want time.Duration
	}{{10, 1}, {50, 5}, {90, 9}, {99, 10}, {100, 10}}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleton(t *testing.T) {
	s := sampleOf(7 * time.Millisecond)
	if s.P99() != 7*time.Millisecond || s.P50() != 7*time.Millisecond {
		t.Fatal("singleton percentiles wrong")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty percentile did not panic")
		}
	}()
	(&Sample{}).P99()
}

func TestPercentileRangePanics(t *testing.T) {
	s := sampleOf(1)
	for _, p := range []float64{0, -1, 101} {
		func() {
			defer func() { recover() }()
			s.Percentile(p)
			t.Errorf("Percentile(%v) did not panic", p)
		}()
	}
}

func TestMeanMax(t *testing.T) {
	s := sampleOf(2*time.Second, 4*time.Second)
	if s.Mean() != 3*time.Second {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Max() != 4*time.Second {
		t.Fatalf("Max = %v", s.Max())
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(90, 30*time.Second); got != 3 {
		t.Fatalf("Throughput = %v", got)
	}
	if Throughput(10, 0) != 0 {
		t.Fatal("Throughput over zero span")
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(2*time.Second, time.Second); got != 0.5 {
		t.Fatalf("Reduction = %v", got)
	}
	if Reduction(0, time.Second) != 0 {
		t.Fatal("Reduction with zero base")
	}
}

// Property: nearest-rank percentile matches a reference implementation
// on random samples, and is monotone in p.
func TestPercentileProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		vals := make([]time.Duration, n)
		for i := range vals {
			vals[i] = time.Duration(rng.Intn(1000)) * time.Millisecond
			s.Add(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		prev := time.Duration(-1)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			rank := int(float64(len(vals))*p/100 + 0.9999999)
			if rank < 1 {
				rank = 1
			}
			want := vals[rank-1]
			got := s.Percentile(p)
			if got != want {
				return false
			}
			if got < prev {
				return false // monotonicity
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionBelow(t *testing.T) {
	s := sampleOf(100*time.Millisecond, 200*time.Millisecond, 900*time.Millisecond, 3*time.Second)
	if got := s.FractionBelow(time.Second); got != 0.75 {
		t.Fatalf("FractionBelow(1s) = %v, want 0.75", got)
	}
	if got := s.FractionBelow(50 * time.Millisecond); got != 0 {
		t.Fatalf("FractionBelow(50ms) = %v, want 0", got)
	}
	if got := s.FractionBelow(time.Minute); got != 1 {
		t.Fatalf("FractionBelow(1m) = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty FractionBelow did not panic")
		}
	}()
	(&Sample{}).FractionBelow(time.Second)
}

func TestHistogram(t *testing.T) {
	s := sampleOf(10*time.Millisecond, 15*time.Millisecond, 35*time.Millisecond)
	out := s.Histogram(10*time.Millisecond, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // buckets 0-10, 10-20, 20-30, 30-40
		t.Fatalf("histogram lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "2") || !strings.Contains(lines[3], "1") {
		t.Fatalf("histogram counts wrong:\n%s", out)
	}
	// Empty bucket draws nothing but still lists.
	if strings.ContainsRune(lines[2], '█') {
		t.Fatalf("empty bucket drew bars:\n%s", out)
	}
	if (&Sample{}).Histogram(time.Second, 10) != "" {
		t.Fatal("empty histogram not empty")
	}
	if s.Histogram(0, 10) != "" {
		t.Fatal("zero-bucket histogram not empty")
	}
}
