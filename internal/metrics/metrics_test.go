package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleOf(vals ...time.Duration) *Sample {
	var s Sample
	for _, v := range vals {
		s.Add(v)
	}
	return &s
}

func TestPercentileNearestRank(t *testing.T) {
	s := sampleOf(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	cases := []struct {
		p    float64
		want time.Duration
	}{{10, 1}, {50, 5}, {90, 9}, {99, 10}, {100, 10}}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleton(t *testing.T) {
	s := sampleOf(7 * time.Millisecond)
	if s.P99() != 7*time.Millisecond || s.P50() != 7*time.Millisecond {
		t.Fatal("singleton percentiles wrong")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty percentile did not panic")
		}
	}()
	(&Sample{}).P99()
}

func TestPercentileRangePanics(t *testing.T) {
	s := sampleOf(1)
	for _, p := range []float64{0, -1, 101} {
		func() {
			defer func() { recover() }()
			s.Percentile(p)
			t.Errorf("Percentile(%v) did not panic", p)
		}()
	}
}

func TestMeanMax(t *testing.T) {
	s := sampleOf(2*time.Second, 4*time.Second)
	if s.Mean() != 3*time.Second {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Max() != 4*time.Second {
		t.Fatalf("Max = %v", s.Max())
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(90, 30*time.Second); got != 3 {
		t.Fatalf("Throughput = %v", got)
	}
	if Throughput(10, 0) != 0 {
		t.Fatal("Throughput over zero span")
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(2*time.Second, time.Second); got != 0.5 {
		t.Fatalf("Reduction = %v", got)
	}
	if Reduction(0, time.Second) != 0 {
		t.Fatal("Reduction with zero base")
	}
}

// Property: nearest-rank percentile matches a reference implementation
// on random samples, and is monotone in p.
func TestPercentileProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		vals := make([]time.Duration, n)
		for i := range vals {
			vals[i] = time.Duration(rng.Intn(1000)) * time.Millisecond
			s.Add(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		prev := time.Duration(-1)
		for _, p := range []float64{1, 25, 50, 75, 90, 99, 100} {
			rank := int(float64(len(vals))*p/100 + 0.9999999)
			if rank < 1 {
				rank = 1
			}
			want := vals[rank-1]
			got := s.Percentile(p)
			if got != want {
				return false
			}
			if got < prev {
				return false // monotonicity
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionBelow(t *testing.T) {
	s := sampleOf(100*time.Millisecond, 200*time.Millisecond, 900*time.Millisecond, 3*time.Second)
	if got := s.FractionBelow(time.Second); got != 0.75 {
		t.Fatalf("FractionBelow(1s) = %v, want 0.75", got)
	}
	if got := s.FractionBelow(50 * time.Millisecond); got != 0 {
		t.Fatalf("FractionBelow(50ms) = %v, want 0", got)
	}
	if got := s.FractionBelow(time.Minute); got != 1 {
		t.Fatalf("FractionBelow(1m) = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty FractionBelow did not panic")
		}
	}()
	(&Sample{}).FractionBelow(time.Second)
}

func TestHistogram(t *testing.T) {
	s := sampleOf(10*time.Millisecond, 15*time.Millisecond, 35*time.Millisecond)
	out := s.Histogram(10*time.Millisecond, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // buckets 0-10, 10-20, 20-30, 30-40
		t.Fatalf("histogram lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "2") || !strings.Contains(lines[3], "1") {
		t.Fatalf("histogram counts wrong:\n%s", out)
	}
	// Empty bucket draws nothing but still lists.
	if strings.ContainsRune(lines[2], '█') {
		t.Fatalf("empty bucket drew bars:\n%s", out)
	}
	if (&Sample{}).Histogram(time.Second, 10) != "" {
		t.Fatal("empty histogram not empty")
	}
	if s.Histogram(0, 10) != "" {
		t.Fatal("zero-bucket histogram not empty")
	}
}

// TestReservoirExactUnderCap pins the property every existing test and
// checked-in experiment relies on: a sample that never exceeds the
// retention bound behaves exactly like a fully-retained one.
func TestReservoirExactUnderCap(t *testing.T) {
	var s Sample
	for i := 0; i < DefaultReservoir; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if s.Retained() != DefaultReservoir || s.Len() != DefaultReservoir {
		t.Fatalf("Retained=%d Len=%d, want %d each", s.Retained(), s.Len(), DefaultReservoir)
	}
	if got := s.Percentile(50); got != time.Duration(DefaultReservoir/2-1)*time.Millisecond {
		t.Fatalf("p50 = %v under cap, want exact order statistic", got)
	}
	if got := s.Max(); got != time.Duration(DefaultReservoir-1)*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
}

// TestReservoirBoundedAndDeterministic drives a sample past the cap and
// checks (a) retention stays bounded, (b) the exact aggregates stay
// exact, (c) two identical insertion orders produce identical reservoirs
// — the determinism the byte-identical-output guarantee rests on.
func TestReservoirBoundedAndDeterministic(t *testing.T) {
	const n = 3 * DefaultReservoir
	build := func() *Sample {
		var s Sample
		for i := 0; i < n; i++ {
			s.Add(time.Duration(i) * time.Microsecond)
		}
		return &s
	}
	a, b := build(), build()
	if a.Retained() != DefaultReservoir {
		t.Fatalf("Retained = %d, want %d", a.Retained(), DefaultReservoir)
	}
	if a.Len() != n {
		t.Fatalf("Len = %d, want %d", a.Len(), n)
	}
	if a.Max() != time.Duration(n-1)*time.Microsecond {
		t.Fatalf("max lost: %v", a.Max())
	}
	if a.Mean() != b.Mean() || a.Percentile(99) != b.Percentile(99) || a.Percentile(50) != b.Percentile(50) {
		t.Fatal("identical insertion orders diverged")
	}
	sa, _ := a.Summary()
	sb, _ := b.Summary()
	if sa != sb {
		t.Fatalf("summaries diverged: %+v vs %+v", sa, sb)
	}
	// Mean is exact (streamed), independent of the reservoir.
	if want := time.Duration(n-1) * time.Microsecond / 2; sa.Mean != want {
		t.Fatalf("mean = %v, want %v", sa.Mean, want)
	}
}

// TestReservoirEstimatesQuantiles sanity-checks that beyond the cap the
// reservoir still estimates quantiles usefully: uniform data in
// [0, 10s) must put p50 and p99 within a loose band of truth.
func TestReservoirEstimatesQuantiles(t *testing.T) {
	var s Sample
	const n = 100000
	for i := 0; i < n; i++ {
		// Insert in a scrambled but deterministic order.
		v := (uint64(i) * 2654435761) % n
		s.Add(time.Duration(v) * 10 * time.Second / n)
	}
	p50 := s.Percentile(50)
	if p50 < 4*time.Second || p50 > 6*time.Second {
		t.Fatalf("p50 estimate %v far from 5s", p50)
	}
	p99 := s.Percentile(99)
	if p99 < 9*time.Second || p99 > 10*time.Second {
		t.Fatalf("p99 estimate %v far from 9.9s", p99)
	}
	if frac := s.FractionBelow(5 * time.Second); frac < 0.4 || frac > 0.6 {
		t.Fatalf("FractionBelow(5s) = %v far from 0.5", frac)
	}
}

// TestRetain opts a sample out of the bound.
func TestRetain(t *testing.T) {
	var s Sample
	s.Retain()
	const n = DefaultReservoir + 100
	for i := 0; i < n; i++ {
		s.Add(time.Duration(i))
	}
	if s.Retained() != n {
		t.Fatalf("Retained = %d after Retain, want %d", s.Retained(), n)
	}
}

// TestAddAllMergesExactAggregates checks the streaming fields merge
// exactly and deterministically.
func TestAddAllMergesExactAggregates(t *testing.T) {
	a := sampleOf(time.Second, 3*time.Second)
	b := sampleOf(2*time.Second, 10*time.Second)
	var m Sample
	m.AddAll(a)
	m.AddAll(b)
	m.AddAll(nil)
	m.AddAll(&Sample{})
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.Mean() != 4*time.Second {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if m.Max() != 10*time.Second {
		t.Fatalf("Max = %v", m.Max())
	}
	if m.Percentile(99) != 10*time.Second {
		t.Fatalf("p99 = %v", m.Percentile(99))
	}
}

func TestMeanCI(t *testing.T) {
	if mean, half := MeanCI(nil); mean != 0 || half != 0 {
		t.Fatalf("MeanCI(nil) = %v ± %v", mean, half)
	}
	if mean, half := MeanCI([]float64{7}); mean != 7 || half != 0 {
		t.Fatalf("MeanCI(single) = %v ± %v", mean, half)
	}
	mean, half := MeanCI([]float64{1, 2, 3, 4, 5})
	if mean != 3 {
		t.Fatalf("mean = %v", mean)
	}
	// sd = sqrt(2.5), se = sd/sqrt(5), half = 1.96*se ≈ 1.386
	if half < 1.38 || half > 1.39 {
		t.Fatalf("half-width = %v", half)
	}
	if _, h := MeanCI([]float64{4, 4, 4}); h != 0 {
		t.Fatalf("identical values must give zero width, got %v", h)
	}
}
