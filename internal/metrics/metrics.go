// Package metrics provides the latency statistics the evaluation
// reports: percentiles (the paper's headline metric is p99 TTFT),
// means, and simple throughput accounting.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is a latency observation series.
type Sample struct {
	vals []time.Duration
}

// Add appends an observation.
func (s *Sample) Add(d time.Duration) { s.vals = append(s.vals, d) }

// Len reports the observation count.
func (s *Sample) Len() int { return len(s.vals) }

// AddAll appends every observation of another sample — fleet-level
// percentiles merge the per-deployment series this way.
func (s *Sample) AddAll(o *Sample) {
	if o != nil {
		s.vals = append(s.vals, o.vals...)
	}
}

// Quantile returns the p-quantile (0 < p ≤ 1) using the nearest-rank
// method on a sorted copy, and false instead of a value when the
// sample is empty or p is out of range. This is the non-panicking
// accessor for code paths where an empty sample is a legitimate state
// (a deployment that saw no traffic) rather than a caller bug.
func (s *Sample) Quantile(p float64) (time.Duration, bool) {
	if len(s.vals) == 0 || p <= 0 || p > 1 {
		return 0, false
	}
	sorted := append([]time.Duration(nil), s.vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p * float64(len(sorted))))
	return sorted[rank-1], true
}

// Percentile returns the p-th percentile (0 < p ≤ 100) using the
// nearest-rank method. It panics on an empty sample or an out-of-range
// p: asking for a percentile of nothing is a caller bug. Quantile is
// the non-panicking form.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.vals) == 0 {
		panic("metrics: percentile of empty sample")
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,100]", p))
	}
	d, _ := s.Quantile(p / 100)
	return d
}

// P99 is the tail latency the paper reports.
func (s *Sample) P99() time.Duration { return s.Percentile(99) }

// P50 is the median.
func (s *Sample) P50() time.Duration { return s.Percentile(50) }

// Summary is a point-in-time digest of a sample — the per-metric row a
// registry dump or results table renders.
type Summary struct {
	Count                    int
	Mean, P50, P90, P99, Max time.Duration
}

// Summary digests the sample, reporting false when it is empty.
func (s *Sample) Summary() (Summary, bool) {
	if len(s.vals) == 0 {
		return Summary{}, false
	}
	p50, _ := s.Quantile(0.50)
	p90, _ := s.Quantile(0.90)
	p99, _ := s.Quantile(0.99)
	return Summary{
		Count: len(s.vals),
		Mean:  s.Mean(),
		P50:   p50,
		P90:   p90,
		P99:   p99,
		Max:   s.Max(),
	}, true
}

// Mean returns the arithmetic mean.
func (s *Sample) Mean() time.Duration {
	if len(s.vals) == 0 {
		panic("metrics: mean of empty sample")
	}
	var sum time.Duration
	for _, v := range s.vals {
		sum += v
	}
	return sum / time.Duration(len(s.vals))
}

// Max returns the largest observation.
func (s *Sample) Max() time.Duration {
	if len(s.vals) == 0 {
		panic("metrics: max of empty sample")
	}
	max := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// FractionBelow reports the share of observations at or under the
// threshold — SLO attainment (e.g. "TTFT under one second").
func (s *Sample) FractionBelow(d time.Duration) float64 {
	if len(s.vals) == 0 {
		panic("metrics: FractionBelow of empty sample")
	}
	n := 0
	for _, v := range s.vals {
		if v <= d {
			n++
		}
	}
	return float64(n) / float64(len(s.vals))
}

// Histogram renders a compact text histogram with the given bucket
// width — a quick look at a latency distribution's shape. An empty
// sample or a non-positive bucket width renders as the empty string:
// there is no distribution to draw, and callers print the result
// verbatim, so "nothing" is the documented representation of "no
// data" (not an error).
func (s *Sample) Histogram(bucket time.Duration, maxWidth int) string {
	if bucket <= 0 || len(s.vals) == 0 {
		return ""
	}
	if maxWidth < 1 {
		maxWidth = 40
	}
	counts := map[int]int{}
	maxBucket, maxCount := 0, 0
	for _, v := range s.vals {
		b := int(v / bucket)
		counts[b]++
		if b > maxBucket {
			maxBucket = b
		}
		if counts[b] > maxCount {
			maxCount = counts[b]
		}
	}
	var out []string
	for b := 0; b <= maxBucket; b++ {
		n := counts[b]
		w := 0
		if maxCount > 0 {
			w = n * maxWidth / maxCount
		}
		if w == 0 && n > 0 {
			w = 1
		}
		out = append(out, fmt.Sprintf("%8v–%-8v %s %d",
			time.Duration(b)*bucket, time.Duration(b+1)*bucket,
			strings.Repeat("█", w), n))
	}
	return strings.Join(out, "\n") + "\n"
}

// Throughput reports completed ops per second over a span.
func Throughput(completed int, span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(completed) / span.Seconds()
}

// Reduction returns the fractional reduction of `new` versus `base`
// (0.53 ⇒ 53% lower), the form the paper quotes improvements in.
func Reduction(base, new time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return 1 - float64(new)/float64(base)
}
