// Package metrics provides the latency statistics the evaluation
// reports: percentiles (the paper's headline metric is p99 TTFT),
// means, and simple throughput accounting.
//
// Samples aggregate in a streaming fashion: counts, sums and extrema
// are exact for any run length, while the value set behind quantiles
// is bounded by a deterministic reservoir (DefaultReservoir
// observations by default). A sample that never exceeds its reservoir
// retains everything, so small runs — every test and every checked-in
// experiment — compute exactly what a fully-retained sample would;
// 10M-request simulations hold a few thousand values per sample
// instead of tens of millions. Retain lifts the bound for callers that
// need every observation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// DefaultReservoir is the number of observations a sample retains for
// quantile estimation before reservoir sampling kicks in.
const DefaultReservoir = 8192

// reservoirSalt seeds the deterministic slot draws of the reservoir
// (splitmix64 of salt ⊕ observation ordinal). The draw sequence is a
// fixed function of insertion order — no RNG state, no config seed —
// so a fixed-seed simulation renders byte-identical summaries across
// runs, GOMAXPROCS and process restarts.
const reservoirSalt = 0x9e3779b97f4a7c15

// splitmix64 is the SplitMix64 finalizer — a strong 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sample is a latency observation series with streaming aggregation.
// The zero value is ready for use and bounds its retained values at
// DefaultReservoir.
type Sample struct {
	vals []time.Duration
	// limit is the retention bound: 0 means DefaultReservoir, negative
	// means retain every observation.
	limit int
	// offered counts values offered to the reservoir (Add observations
	// plus merged values), the ordinal the deterministic slot draw is
	// keyed on.
	offered uint64
	count   int64
	sum     time.Duration
	max     time.Duration
}

// Retain lifts the sample's retention bound so every observation is
// kept — the opt-in path for exporters and tests that need exact
// quantiles at any run length. Call it before adding observations.
func (s *Sample) Retain() { s.limit = -1 }

// reservoir returns the retention bound (0 = unlimited).
func (s *Sample) reservoir() int {
	switch {
	case s.limit < 0:
		return 0
	case s.limit == 0:
		return DefaultReservoir
	default:
		return s.limit
	}
}

// Add appends an observation.
func (s *Sample) Add(d time.Duration) {
	s.count++
	s.sum += d
	if s.count == 1 || d > s.max {
		s.max = d
	}
	s.offer(d)
}

// offer routes one value into the retained set: appended while the
// reservoir has room, then displacing a deterministically drawn slot
// with probability k/n (Vitter's algorithm R).
func (s *Sample) offer(d time.Duration) {
	s.offered++
	k := s.reservoir()
	if k == 0 || len(s.vals) < k {
		s.vals = append(s.vals, d)
		return
	}
	if j := splitmix64(reservoirSalt ^ s.offered) % s.offered; j < uint64(k) {
		s.vals[j] = d
	}
}

// Len reports the observation count.
func (s *Sample) Len() int { return int(s.count) }

// Retained reports how many observations the sample currently holds
// for quantile estimation. Retained < Len means quantiles are
// reservoir estimates rather than exact order statistics.
func (s *Sample) Retained() int { return len(s.vals) }

// AddAll merges another sample — fleet-level percentiles merge the
// per-deployment series this way, and replication merges fold per-rep
// samples in rep order. Counts, sums and maxima merge exactly; the
// other sample's retained values are offered to this sample's
// reservoir in their stored order, which keeps the merge a
// deterministic function of merge order.
func (s *Sample) AddAll(o *Sample) {
	if o == nil || o.count == 0 {
		return
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.sum += o.sum
	for _, v := range o.vals {
		s.offer(v)
	}
}

// Quantile returns the p-quantile (0 < p ≤ 1) using the nearest-rank
// method on a sorted copy of the retained values, and false instead of
// a value when the sample is empty or p is out of range. This is the
// non-panicking accessor for code paths where an empty sample is a
// legitimate state (a deployment that saw no traffic) rather than a
// caller bug. Beyond the retention bound the result is a reservoir
// estimate; within it, the exact order statistic.
func (s *Sample) Quantile(p float64) (time.Duration, bool) {
	if len(s.vals) == 0 || p <= 0 || p > 1 {
		return 0, false
	}
	sorted := append([]time.Duration(nil), s.vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p * float64(len(sorted))))
	return sorted[rank-1], true
}

// Percentile returns the p-th percentile (0 < p ≤ 100) using the
// nearest-rank method. It panics on an empty sample or an out-of-range
// p: asking for a percentile of nothing is a caller bug. Quantile is
// the non-panicking form.
func (s *Sample) Percentile(p float64) time.Duration {
	if s.count == 0 {
		panic("metrics: percentile of empty sample")
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,100]", p))
	}
	d, _ := s.Quantile(p / 100)
	return d
}

// P99 is the tail latency the paper reports.
func (s *Sample) P99() time.Duration { return s.Percentile(99) }

// P50 is the median.
func (s *Sample) P50() time.Duration { return s.Percentile(50) }

// Summary is a point-in-time digest of a sample — the per-metric row a
// registry dump or results table renders.
type Summary struct {
	// Count is how many values the sample holds.
	Count int
	// Mean, P50, P90, P99 and Max digest the sample's distribution.
	Mean, P50, P90, P99, Max time.Duration
}

// Summary digests the sample, reporting false when it is empty.
func (s *Sample) Summary() (Summary, bool) {
	if s.count == 0 {
		return Summary{}, false
	}
	p50, _ := s.Quantile(0.50)
	p90, _ := s.Quantile(0.90)
	p99, _ := s.Quantile(0.99)
	return Summary{
		Count: int(s.count),
		Mean:  s.Mean(),
		P50:   p50,
		P90:   p90,
		P99:   p99,
		Max:   s.Max(),
	}, true
}

// Mean returns the arithmetic mean. It is exact at any run length (the
// sum and count stream; the reservoir is not involved).
func (s *Sample) Mean() time.Duration {
	if s.count == 0 {
		panic("metrics: mean of empty sample")
	}
	return s.sum / time.Duration(s.count)
}

// Max returns the largest observation (exact at any run length).
func (s *Sample) Max() time.Duration {
	if s.count == 0 {
		panic("metrics: max of empty sample")
	}
	return s.max
}

// FractionBelow reports the share of observations at or under the
// threshold — SLO attainment (e.g. "TTFT under one second"). Beyond
// the retention bound it is estimated over the reservoir.
func (s *Sample) FractionBelow(d time.Duration) float64 {
	if s.count == 0 {
		panic("metrics: FractionBelow of empty sample")
	}
	n := 0
	for _, v := range s.vals {
		if v <= d {
			n++
		}
	}
	return float64(n) / float64(len(s.vals))
}

// Histogram renders a compact text histogram with the given bucket
// width — a quick look at a latency distribution's shape (drawn over
// the retained values; beyond the retention bound the counts describe
// the reservoir). An empty sample or a non-positive bucket width
// renders as the empty string: there is no distribution to draw, and
// callers print the result verbatim, so "nothing" is the documented
// representation of "no data" (not an error).
func (s *Sample) Histogram(bucket time.Duration, maxWidth int) string {
	if bucket <= 0 || len(s.vals) == 0 {
		return ""
	}
	if maxWidth < 1 {
		maxWidth = 40
	}
	counts := map[int]int{}
	maxBucket, maxCount := 0, 0
	for _, v := range s.vals {
		b := int(v / bucket)
		counts[b]++
		if b > maxBucket {
			maxBucket = b
		}
		if counts[b] > maxCount {
			maxCount = counts[b]
		}
	}
	var out []string
	for b := 0; b <= maxBucket; b++ {
		n := counts[b]
		w := 0
		if maxCount > 0 {
			w = n * maxWidth / maxCount
		}
		if w == 0 && n > 0 {
			w = 1
		}
		out = append(out, fmt.Sprintf("%8v–%-8v %s %d",
			time.Duration(b)*bucket, time.Duration(b+1)*bucket,
			strings.Repeat("█", w), n))
	}
	return strings.Join(out, "\n") + "\n"
}

// Throughput reports completed ops per second over a span.
func Throughput(completed int, span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(completed) / span.Seconds()
}

// Reduction returns the fractional reduction of `new` versus `base`
// (0.53 ⇒ 53% lower), the form the paper quotes improvements in.
func Reduction(base, new time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return 1 - float64(new)/float64(base)
}

// MeanCI returns the sample mean of xs and the half-width of its 95%
// confidence interval under a normal approximation (1.96 standard
// errors) — the merge statistic parallel independent-seed replications
// report. Fewer than two values carry no spread information, so the
// half-width is 0.
func MeanCI(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, 1.96 * sd / math.Sqrt(float64(n))
}
