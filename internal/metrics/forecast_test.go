package metrics

import (
	"math"
	"testing"
	"time"
)

// TestEWMAClosedForm checks the smoother against the recurrence
// computed by hand: l₀ = x₀, lₙ = α·xₙ + (1−α)·lₙ₋₁.
func TestEWMAClosedForm(t *testing.T) {
	const alpha = 0.25
	e, err := NewEWMA(alpha)
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{4, 8, 2, 10, 6}
	want := xs[0]
	e.Observe(xs[0])
	for _, x := range xs[1:] {
		e.Observe(x)
		want = alpha*x + (1-alpha)*want
		if got := e.Level(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("after %v: level = %v, want %v", x, got, want)
		}
	}
	if e.Count() != len(xs) {
		t.Fatalf("count = %d, want %d", e.Count(), len(xs))
	}
}

// TestEWMAConstantSeries pins the fixed point: a constant input is
// reproduced exactly at any alpha.
func TestEWMAConstantSeries(t *testing.T) {
	e, err := NewEWMA(0.7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		e.Observe(3.5)
	}
	if got := e.Level(); got != 3.5 {
		t.Fatalf("constant series level = %v, want 3.5 exactly", got)
	}
}

func TestEWMARejectsBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		if _, err := NewEWMA(a); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
	}
}

// TestHoltTracksLinearSeriesExactly pins the closed form the
// predictive autoscaler relies on: with the textbook initialization
// (level₀ = x₀, trend₀ = x₁ − x₀), Holt's method reproduces a
// perfectly linear series x_n = c + m·n exactly — level_n = x_n,
// trend = m, and Forecast(k) = x_n + m·k for every horizon.
func TestHoltTracksLinearSeriesExactly(t *testing.T) {
	const c, m = 5.0, 1.5
	h, err := NewHolt(0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for n := 0; n < 40; n++ {
		last = c + m*float64(n)
		h.Observe(last)
	}
	if got := h.Level(); math.Abs(got-last) > 1e-9 {
		t.Fatalf("level = %v, want %v (exact linear tracking)", got, last)
	}
	if got := h.Trend(); math.Abs(got-m) > 1e-9 {
		t.Fatalf("trend = %v, want %v", got, m)
	}
	for _, k := range []float64{0, 1, 2.5, 10} {
		if got, want := h.Forecast(k), last+m*k; math.Abs(got-want) > 1e-9 {
			t.Fatalf("forecast(%v) = %v, want %v", k, got, want)
		}
	}
}

// TestHoltConstantSeries: a flat series must yield zero trend and a
// flat forecast.
func TestHoltConstantSeries(t *testing.T) {
	h, err := NewHolt(0.4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		h.Observe(7)
	}
	if h.Level() != 7 || h.Trend() != 0 {
		t.Fatalf("constant series: level %v trend %v, want 7 and 0", h.Level(), h.Trend())
	}
	if h.Forecast(100) != 7 {
		t.Fatalf("forecast = %v, want 7", h.Forecast(100))
	}
}

// TestHoltEarlyObservations: before two observations the smoother
// degrades gracefully (no NaNs, no panic).
func TestHoltEarlyObservations(t *testing.T) {
	h, err := NewHolt(0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Level() != 0 || h.Trend() != 0 || h.Forecast(5) != 0 {
		t.Fatal("empty smoother must report zeros")
	}
	h.Observe(4)
	if h.Level() != 4 || h.Trend() != 0 {
		t.Fatalf("single observation: level %v trend %v, want 4 and 0", h.Level(), h.Trend())
	}
}

func TestHoltRejectsBadWeights(t *testing.T) {
	if _, err := NewHolt(0, 0.5); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewHolt(0.5, 2); err == nil {
		t.Error("beta 2 accepted")
	}
}

// TestRateWindowSteadyRate feeds a metronome arrival process — exactly
// r arrivals per window — and checks the estimator converges to r
// events/second exactly (every window observation equals r, and both
// Holt components are fixed points under constant input).
func TestRateWindowSteadyRate(t *testing.T) {
	const perWindow = 10
	w, err := NewRateWindow(time.Second, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for win := 0; win < 20; win++ {
		base := time.Duration(win) * time.Second
		for i := 0; i < perWindow; i++ {
			w.Observe(base + time.Duration(i)*time.Second/perWindow)
		}
	}
	now := 20 * time.Second
	if got := w.RateAt(now); got != perWindow {
		t.Fatalf("steady rate = %v, want %d exactly", got, perWindow)
	}
	if got := w.ForecastAt(now, 5*time.Second); got != perWindow {
		t.Fatalf("steady forecast = %v, want %d exactly", got, perWindow)
	}
}

// TestRateWindowLinearRamp pins the Holt composition end to end: if
// window n holds (n+1)·k arrivals, the per-window rate series is
// linear, so the estimator must report the last closed window's rate
// exactly and extrapolate the ramp on forecast.
func TestRateWindowLinearRamp(t *testing.T) {
	const k = 4
	width := 500 * time.Millisecond
	w, err := NewRateWindow(width, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wins := 12
	for win := 0; win < wins; win++ {
		base := time.Duration(win) * width
		n := (win + 1) * k
		for i := 0; i < n; i++ {
			w.Observe(base + time.Duration(i)*width/time.Duration(n))
		}
	}
	now := time.Duration(wins) * width
	// Window win's rate is (win+1)·k / 0.5s; the last closed window is
	// wins−1. Slope per window is k/0.5s.
	lastRate := float64(wins*k) / width.Seconds()
	slope := float64(k) / width.Seconds()
	if got := w.RateAt(now); math.Abs(got-lastRate) > 1e-9 {
		t.Fatalf("ramp rate = %v, want %v", got, lastRate)
	}
	// A horizon of 2 windows extrapolates 2 slope steps.
	if got, want := w.ForecastAt(now, 2*width), lastRate+2*slope; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ramp forecast = %v, want %v", got, want)
	}
}

// TestRateWindowDecaysThroughSilence: skipped windows must count as
// zero-rate observations, decaying the estimate instead of freezing
// it.
func TestRateWindowDecaysThroughSilence(t *testing.T) {
	w, err := NewRateWindow(time.Second, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		w.Observe(time.Duration(i) * time.Second / 4) // 4/s for 10s
	}
	busy := w.RateAt(10 * time.Second)
	quiet := w.RateAt(30 * time.Second) // 20 silent windows
	if quiet >= busy {
		t.Fatalf("rate did not decay through silence: busy %v quiet %v", busy, quiet)
	}
	if quiet > 0.1 {
		t.Fatalf("rate after 20 silent windows still %v", quiet)
	}
	// Forecast is clamped at zero even when the trend is negative.
	if f := w.ForecastAt(30*time.Second, time.Minute); f < 0 {
		t.Fatalf("forecast went negative: %v", f)
	}
}

func TestRateWindowRejectsBadWidth(t *testing.T) {
	if _, err := NewRateWindow(0, 0.5, 0.5); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewRateWindow(time.Second, 0, 0.5); err == nil {
		t.Error("bad alpha accepted")
	}
}
