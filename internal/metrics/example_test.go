package metrics_test

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/metrics"
)

func ExampleSample_P99() {
	var s metrics.Sample
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	fmt.Println(s.P99())
	fmt.Println(s.P50())
	// Output:
	// 99ms
	// 50ms
}

func ExampleReduction() {
	// The paper's headline: Medusa cuts Qwen1.5-4B's loading phase from
	// 2.85s to ~1.67s.
	r := metrics.Reduction(2850*time.Millisecond, 1670*time.Millisecond)
	fmt.Printf("%.1f%%\n", r*100)
	// Output:
	// 41.4%
}
