package eventq

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refEvent / refHeap reimplement the container/heap event queue the
// simulators used before the 4-ary migration — the oracle the generic
// queue must match pop-for-pop.
type refEvent struct {
	t   time.Duration
	seq int
	v   int
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// TestQueueMatchesContainerHeap drives both implementations with the
// same interleaved push/pop schedule, including deliberate timestamp
// collisions, and requires identical pop sequences.
func TestQueueMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q Queue[int]
	var ref refHeap
	seq := 0
	pushes, pops := 0, 0
	for step := 0; step < 20000; step++ {
		if q.Len() != ref.Len() {
			t.Fatalf("length diverged: %d vs %d", q.Len(), ref.Len())
		}
		if q.Len() == 0 || rng.Intn(3) != 0 {
			// Coarse timestamps force frequent ties so the (t, seq)
			// tie-break is actually exercised.
			at := time.Duration(rng.Intn(50)) * time.Millisecond
			q.Push(at, step)
			heap.Push(&ref, refEvent{t: at, seq: seq, v: step})
			seq++
			pushes++
		} else {
			gt, gv := q.Pop()
			want := heap.Pop(&ref).(refEvent)
			if gt != want.t || gv != want.v {
				t.Fatalf("pop %d diverged: got (%v, %d), want (%v, %d)", pops, gt, gv, want.t, want.v)
			}
			pops++
		}
	}
	for q.Len() > 0 {
		gt, gv := q.Pop()
		want := heap.Pop(&ref).(refEvent)
		if gt != want.t || gv != want.v {
			t.Fatalf("drain diverged: got (%v, %d), want (%v, %d)", gt, gv, want.t, want.v)
		}
	}
	if ref.Len() != 0 {
		t.Fatalf("oracle still holds %d events", ref.Len())
	}
	if pushes < 1000 || pops < 1000 {
		t.Fatalf("schedule too tame: %d pushes, %d pops", pushes, pops)
	}
}

func TestQueueFIFOAtEqualTime(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(time.Second, i)
	}
	for i := 0; i < 100; i++ {
		at, v := q.Pop()
		if at != time.Second || v != i {
			t.Fatalf("pop %d: got (%v, %d); ties must pop in push order", i, at, v)
		}
	}
}

func TestQueueReserve(t *testing.T) {
	var q Queue[string]
	q.Push(2*time.Second, "b")
	q.Reserve(1024)
	q.Push(time.Second, "a")
	if q.Len() != 2 {
		t.Fatalf("Len = %d after Reserve", q.Len())
	}
	if _, v := q.Pop(); v != "a" {
		t.Fatalf("Reserve broke ordering: popped %q", v)
	}
	if _, v := q.Pop(); v != "b" {
		t.Fatalf("Reserve broke ordering: popped %q", v)
	}
}

func TestDequeFIFO(t *testing.T) {
	var d Deque[int]
	next, expect := 0, 0
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 10000; step++ {
		if d.Len() == 0 || rng.Intn(3) != 0 {
			d.PushBack(next)
			next++
		} else {
			if got := d.Front(); got != expect {
				t.Fatalf("Front = %d, want %d", got, expect)
			}
			if got := d.PopFront(); got != expect {
				t.Fatalf("PopFront = %d, want %d", got, expect)
			}
			expect++
		}
	}
	for d.Len() > 0 {
		if got := d.PopFront(); got != expect {
			t.Fatalf("drain PopFront = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("popped %d of %d pushed", expect, next)
	}
}

// TestDequeBoundedMemory pins the deque's reason for existing: a queue
// that oscillates around a small depth must not grow its buffer with
// total throughput.
func TestDequeBoundedMemory(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 100000; i++ {
		d.PushBack(i)
		if d.Len() > 4 {
			d.PopFront()
		}
	}
	if len(d.buf) > 16 {
		t.Fatalf("ring grew to %d slots for a depth-4 queue", len(d.buf))
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	var q Queue[int]
	rng := rand.New(rand.NewSource(1))
	at := make([]time.Duration, 1024)
	for i := range at {
		at[i] = time.Duration(rng.Int63n(int64(time.Hour)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(at[i%len(at)], i)
		if q.Len() > 512 {
			q.Pop()
		}
	}
}
