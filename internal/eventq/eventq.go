// Package eventq provides the containers on the simulators' hottest
// path: a monomorphized 4-ary min-heap for timed events and a
// ring-buffer deque for FIFO queues.
//
// Both discrete-event loops (internal/serverless, internal/cluster)
// previously sat on container/heap, whose interface-based API boxes
// every Push/Pop operand into an `any` — one allocation and one
// dynamic dispatch per event, twice per event lifetime. Queue is
// generic over the payload, so events move through it by value with no
// boxing, and the 4-ary layout does the same work with roughly half
// the levels (and half the compare-and-swap cascades) of a binary heap
// on the mostly-near-sorted pushes a simulation produces.
//
// Determinism contract: Pop returns events in strictly increasing
// (time, sequence) order, where the sequence number is assigned by
// Push in call order. This is exactly the (t, seq) tie-break the event
// loops used with container/heap, so a fixed-seed simulation pops the
// same events in the same order regardless of heap arity or
// implementation details.
package eventq

import "time"

// arity is the heap fan-out. Four children per node halves the tree
// depth of a binary heap; sift-down scans at most four children per
// level, which stays within one cache line for the entry sizes the
// simulators use.
const arity = 4

// entry is one scheduled event: its instant, its tie-break sequence,
// and the caller's payload.
type entry[T any] struct {
	t   time.Duration
	seq uint64
	v   T
}

// less orders entries by (t, seq). Sequences are unique, so the order
// is total and Pop is deterministic.
func (e *entry[T]) less(o *entry[T]) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// Queue is a deterministic min-heap of timed events. The zero value is
// an empty queue ready for use.
type Queue[T any] struct {
	entries []entry[T]
	seq     uint64
}

// Len reports the number of pending events.
func (q *Queue[T]) Len() int { return len(q.entries) }

// Reserve grows the underlying storage to hold at least n events
// without reallocating.
func (q *Queue[T]) Reserve(n int) {
	if cap(q.entries) < n {
		grown := make([]entry[T], len(q.entries), n)
		copy(grown, q.entries)
		q.entries = grown
	}
}

// Push schedules v at instant t, assigning the next sequence number.
// Events pushed earlier win ties at equal t.
func (q *Queue[T]) Push(t time.Duration, v T) {
	e := entry[T]{t: t, seq: q.seq, v: v}
	q.seq++
	q.entries = append(q.entries, e)
	q.siftUp(len(q.entries) - 1)
}

// Pop removes and returns the earliest event. It must not be called on
// an empty queue (guard with Len).
func (q *Queue[T]) Pop() (time.Duration, T) {
	root := q.entries[0]
	last := len(q.entries) - 1
	if last > 0 {
		q.entries[0] = q.entries[last]
	}
	// Clear the vacated slot so payloads holding pointers don't pin
	// their referents beyond the event's lifetime.
	q.entries[last] = entry[T]{}
	q.entries = q.entries[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return root.t, root.v
}

func (q *Queue[T]) siftUp(i int) {
	e := q.entries[i]
	for i > 0 {
		parent := (i - 1) / arity
		if !e.less(&q.entries[parent]) {
			break
		}
		q.entries[i] = q.entries[parent]
		i = parent
	}
	q.entries[i] = e
}

func (q *Queue[T]) siftDown(i int) {
	e := q.entries[i]
	n := len(q.entries)
	for {
		first := i*arity + 1
		if first >= n {
			break
		}
		min := first
		end := first + arity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.entries[c].less(&q.entries[min]) {
				min = c
			}
		}
		if !q.entries[min].less(&e) {
			break
		}
		q.entries[i] = q.entries[min]
		i = min
	}
	q.entries[i] = e
}
