package eventq

// Deque is a growable ring-buffer FIFO. The simulators' pending-request
// queues previously advanced a slice head (`q = q[1:]`), which keeps
// the whole arrival history reachable until the next append reallocates;
// the ring reuses its storage, so a queue that oscillates around depth
// k holds O(k) memory no matter how many requests stream through it.
// The zero value is an empty deque ready for use.
type Deque[T any] struct {
	buf        []T
	head, size int
}

// Len reports the number of queued elements.
func (d *Deque[T]) Len() int { return d.size }

// PushBack appends v at the tail.
func (d *Deque[T]) PushBack(v T) {
	if d.size == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.size)%len(d.buf)] = v
	d.size++
}

// Front returns the head element without removing it. It must not be
// called on an empty deque (guard with Len).
func (d *Deque[T]) Front() T { return d.buf[d.head] }

// PopFront removes and returns the head element. It must not be called
// on an empty deque (guard with Len).
func (d *Deque[T]) PopFront() T {
	v := d.buf[d.head]
	var zero T
	d.buf[d.head] = zero // release pointer payloads promptly
	d.head = (d.head + 1) % len(d.buf)
	d.size--
	return v
}

func (d *Deque[T]) grow() {
	next := len(d.buf) * 2
	if next == 0 {
		next = 8
	}
	buf := make([]T, next)
	for i := 0; i < d.size; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}
