// Package faults is the deterministic fault-injection subsystem: a
// seeded, virtual-clock-driven Injector configured from a Plan that
// decides — per injection site and per key — whether an artifact read
// is corrupt, a registry fetch times out, an SSD read errors, a
// restore validation mismatches, or a cluster node crashes at a given
// virtual instant. The paper's §4 safety story is that materialized
// state is never trusted blindly: whenever validation fails, the
// system "falls back to the vanilla cold start". This package supplies
// the failures; storage, artifactcache, engine, serverless and cluster
// supply the survival paths (see FAILURES.md for the full catalog).
//
// Determinism is the design constraint everything here serves. The
// injector draws no shared random stream: every decision is a pure
// hash of (plan seed, site, key, per-(site, key) draw counter), so the
// outcome of the Nth draw at a site/key pair is a function of the plan
// alone — independent of goroutine interleaving, GOMAXPROCS, and the
// order other sites consumed draws. Backoff jitter is derived the same
// way and advances only virtual clocks. Fixed seed + fixed plan ⇒
// byte-identical simulation results, the same contract every other
// subsystem honors.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Site names one fault-injection point. Sites are stable identifiers:
// plans reference them, counters embed them, and FAILURES.md documents
// one recovery path per site.
type Site string

const (
	// SiteArtifactCorrupt corrupts an artifact's bytes: the per-section
	// checksum verification on load surfaces an ArtifactCorruptError
	// and the instance degrades to the vanilla cold start.
	SiteArtifactCorrupt Site = "artifact_corrupt"
	// SiteRegistryTimeout stalls a remote registry fetch until its
	// deadline. Budgeted retries with capped exponential backoff run on
	// the virtual clock; exhausting them yields a FetchTimeoutError and
	// the launch degrades to the vanilla cold start.
	SiteRegistryTimeout Site = "registry_timeout"
	// SiteSSDRead fails a local SSD read (storage.Store.Get, or the
	// SSD tier of a node cache, which falls through to the registry).
	SiteSSDRead Site = "ssd_read"
	// SiteRestoreMismatch makes a Medusa restore's validation diverge
	// (a RestoreMismatchError): the replayed allocation sequence no
	// longer matches the artifact, so the instance discards the restore
	// and degrades to the vanilla cold start — §4's fallback.
	SiteRestoreMismatch Site = "restore_mismatch"
	// SiteTemplateMissing makes the shared architecture template of a
	// template+delta deployment vanish from the registry (a
	// TemplateMissingError): the per-model delta alone cannot be
	// restored, so the launch degrades to the vanilla cold start.
	// Fires only for deployments using template-factored artifacts.
	SiteTemplateMissing Site = "template_missing"
)

// Sites lists every injection site in documentation order.
func Sites() []Site {
	return []Site{SiteArtifactCorrupt, SiteRegistryTimeout, SiteSSDRead, SiteRestoreMismatch, SiteTemplateMissing}
}

// Degradation reasons recorded on Results when a launch survives an
// injected fault by falling back to the vanilla cold-start stages.
const (
	// ReasonCorruptArtifact marks a launch whose fetched artifact
	// failed checksum verification.
	ReasonCorruptArtifact = "artifact_corrupt"
	// ReasonRestoreMismatch marks a launch whose restore validation
	// diverged mid-replay.
	ReasonRestoreMismatch = "restore_mismatch"
	// ReasonFetchTimeout marks a launch whose registry fetch exhausted
	// its retry budget.
	ReasonFetchTimeout = "fetch_timeout"
	// ReasonSSDReadFailed marks a launch whose local artifact read
	// exhausted its retry budget.
	ReasonSSDReadFailed = "ssd_read_failed"
	// ReasonTemplateMissing marks a launch whose delta-encoded artifact
	// referenced a template absent from the registry.
	ReasonTemplateMissing = "template_missing"
	// ReasonTemplateMismatch marks a launch whose delta-encoded
	// artifact pinned a different template than the registry served
	// (CRC or format-version skew).
	ReasonTemplateMismatch = "template_mismatch"
	// ReasonCorruptTemplate marks a launch whose fetched architecture
	// template failed checksum verification.
	ReasonCorruptTemplate = "template_corrupt"
)

// Duration is a time.Duration that marshals to and from JSON as a Go
// duration string ("150ms", "2s"), so hand-written plan files stay
// readable. Plain JSON numbers are accepted too (nanoseconds).
type Duration time.Duration

// D converts to the standard library type.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "250ms"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(p []byte) error {
	var s string
	if err := json.Unmarshal(p, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faults: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	n, err := strconv.ParseInt(string(p), 10, 64)
	if err != nil {
		return fmt.Errorf("faults: duration must be a string or integer nanoseconds, got %s", p)
	}
	*d = Duration(n)
	return nil
}

// SiteSpec configures one injection site. Probability and Every
// compose: a draw fires if either rule says so; both zero disables the
// site.
type SiteSpec struct {
	// Probability injects independently at each decision point with
	// this chance (deterministically derived from the plan seed).
	Probability float64 `json:"probability,omitempty"`
	// Every injects at every Nth draw of each (site, key) pair
	// (1 = every draw) — the deterministic-schedule alternative to
	// Probability for tests that need an exact failure.
	Every int `json:"every,omitempty"`
}

// Enabled reports whether the site can ever fire.
func (s SiteSpec) Enabled() bool { return s.Probability > 0 || s.Every > 0 }

// NodeCrash schedules one cluster node's death at a virtual instant.
// The cluster simulator marks the node's cache tiers lost, requeues
// its in-flight cold starts and running requests, and re-places them
// on surviving nodes.
type NodeCrash struct {
	// Node is the crashing node's index.
	Node int `json:"node"`
	// At is the virtual instant of the crash.
	At Duration `json:"at"`
}

// RetryPolicy budgets the capped-exponential-backoff retries that
// registry and SSD fetches run on the virtual clock.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts per operation (default 4).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Base is the first backoff delay (default 20ms); attempt k waits
	// Base·2^k, capped at Cap.
	Base Duration `json:"base,omitempty"`
	// Cap bounds a single backoff delay (default 500ms).
	Cap Duration `json:"cap,omitempty"`
	// Jitter spreads each delay by ±Jitter/2 of itself,
	// deterministically derived from the plan seed (default 0.2).
	Jitter float64 `json:"jitter,omitempty"`
}

// Plan is one fault-injection configuration: what fails, how often,
// and how recovery is budgeted. The zero Plan injects nothing and is
// behaviorally identical to no plan at all.
type Plan struct {
	// Seed namespaces every deterministic draw the injector makes.
	Seed int64 `json:"seed,omitempty"`
	// ArtifactCorrupt configures SiteArtifactCorrupt.
	ArtifactCorrupt SiteSpec `json:"artifact_corrupt,omitempty"`
	// RegistryTimeout configures SiteRegistryTimeout.
	RegistryTimeout SiteSpec `json:"registry_timeout,omitempty"`
	// SSDRead configures SiteSSDRead.
	SSDRead SiteSpec `json:"ssd_read,omitempty"`
	// RestoreMismatch configures SiteRestoreMismatch.
	RestoreMismatch SiteSpec `json:"restore_mismatch,omitempty"`
	// TemplateMissing configures SiteTemplateMissing (draws happen only
	// for deployments whose artifact is template-factored).
	TemplateMissing SiteSpec `json:"template_missing,omitempty"`
	// TimeoutDelay is the virtual time one timed-out fetch attempt
	// burns before its failure is known. Zero means "the full transfer
	// duration" — a stall detected only at the deadline.
	TimeoutDelay Duration `json:"timeout_delay,omitempty"`
	// NodeCrashes schedules cluster node deaths (cluster simulator
	// only; the single-pool simulator has no nodes and ignores them).
	NodeCrashes []NodeCrash `json:"node_crashes,omitempty"`
	// Retry budgets fetch retries.
	Retry RetryPolicy `json:"retry,omitempty"`
}

// Spec returns the site's configuration.
func (p Plan) Spec(site Site) SiteSpec {
	switch site {
	case SiteArtifactCorrupt:
		return p.ArtifactCorrupt
	case SiteRegistryTimeout:
		return p.RegistryTimeout
	case SiteSSDRead:
		return p.SSDRead
	case SiteRestoreMismatch:
		return p.RestoreMismatch
	case SiteTemplateMissing:
		return p.TemplateMissing
	}
	return SiteSpec{}
}

// Zero reports whether the plan injects nothing: no site enabled and
// no crash scheduled. Simulators treat a zero plan exactly like a nil
// one, which is what keeps empty-plan runs bit-identical to fault-free
// builds.
func (p Plan) Zero() bool {
	for _, s := range Sites() {
		if p.Spec(s).Enabled() {
			return false
		}
	}
	return len(p.NodeCrashes) == 0
}

// Validate rejects out-of-range fields.
func (p Plan) Validate() error {
	for _, s := range Sites() {
		spec := p.Spec(s)
		if spec.Probability < 0 || spec.Probability > 1 {
			return fmt.Errorf("faults: %s probability must be in [0,1], got %g", s, spec.Probability)
		}
		if spec.Every < 0 {
			return fmt.Errorf("faults: %s every must be ≥ 0, got %d", s, spec.Every)
		}
	}
	if p.TimeoutDelay < 0 {
		return fmt.Errorf("faults: timeout_delay must be ≥ 0, got %v", p.TimeoutDelay.D())
	}
	for i, nc := range p.NodeCrashes {
		if nc.Node < 0 {
			return fmt.Errorf("faults: node_crashes[%d].node must be ≥ 0, got %d", i, nc.Node)
		}
		if nc.At < 0 {
			return fmt.Errorf("faults: node_crashes[%d].at must be ≥ 0, got %v", i, nc.At.D())
		}
	}
	r := p.Retry
	if r.MaxAttempts < 0 || r.Base < 0 || r.Cap < 0 || r.Jitter < 0 || r.Jitter > 1 {
		return fmt.Errorf("faults: retry fields must be non-negative (jitter ≤ 1), got %+v", r)
	}
	return nil
}

// withDefaults fills the retry budget with the calibrated defaults.
func (p Plan) withDefaults() Plan {
	if p.Retry.MaxAttempts == 0 {
		p.Retry.MaxAttempts = 4
	}
	if p.Retry.Base == 0 {
		p.Retry.Base = Duration(20 * time.Millisecond)
	}
	if p.Retry.Cap == 0 {
		p.Retry.Cap = Duration(500 * time.Millisecond)
	}
	if p.Retry.Jitter == 0 {
		p.Retry.Jitter = 0.2
	}
	return p
}

// Presets returns the named built-in plans LoadPlan resolves before
// trying the filesystem: "none" (inject nothing), "mild" (2% per
// site), "heavy" (15% per site), and "crash" (mild plus node 1 dying
// 15 s in).
func Presets() map[string]Plan {
	mild := Plan{
		Seed:            1,
		ArtifactCorrupt: SiteSpec{Probability: 0.02},
		RegistryTimeout: SiteSpec{Probability: 0.02},
		SSDRead:         SiteSpec{Probability: 0.02},
		RestoreMismatch: SiteSpec{Probability: 0.02},
	}
	heavy := Plan{
		Seed:            2,
		ArtifactCorrupt: SiteSpec{Probability: 0.15},
		RegistryTimeout: SiteSpec{Probability: 0.15},
		SSDRead:         SiteSpec{Probability: 0.15},
		RestoreMismatch: SiteSpec{Probability: 0.15},
	}
	crash := mild
	crash.Seed = 3
	crash.NodeCrashes = []NodeCrash{{Node: 1, At: Duration(15 * time.Second)}}
	return map[string]Plan{"none": {}, "mild": mild, "heavy": heavy, "crash": crash}
}

// LoadPlan resolves a -faults argument: a preset name from Presets, or
// a path to a JSON plan file. The returned plan is validated.
func LoadPlan(nameOrPath string) (Plan, error) {
	if p, ok := Presets()[nameOrPath]; ok {
		return p, nil
	}
	raw, err := os.ReadFile(nameOrPath)
	if err != nil {
		return Plan{}, fmt.Errorf("faults: %q is neither a preset (none|mild|heavy|crash) nor a readable plan file: %w", nameOrPath, err)
	}
	var p Plan
	if err := json.Unmarshal(raw, &p); err != nil {
		return Plan{}, fmt.Errorf("faults: parsing plan %s: %w", nameOrPath, err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, fmt.Errorf("faults: plan %s: %w", nameOrPath, err)
	}
	return p, nil
}

// Injector makes the per-draw decisions of one Plan. Safe for
// concurrent use; every decision is a pure hash of (seed, site, key,
// draw count), so concurrent callers perturb only which caller gets
// which draw — the multiset of outcomes per (site, key) is fixed. The
// simulators drive it from single-goroutine event loops, where even
// that ambiguity vanishes.
type Injector struct {
	plan Plan

	mu     sync.Mutex
	counts map[string]uint64
	fired  map[Site]int
}

// NewInjector validates the plan, applies retry defaults, and returns
// an injector for it. A nil return with nil error means the plan is
// zero — callers skip fault paths entirely, keeping empty-plan runs
// bit-identical to fault-free ones.
func NewInjector(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if plan.Zero() {
		return nil, nil
	}
	return &Injector{
		plan:   plan.withDefaults(),
		counts: make(map[string]uint64),
		fired:  make(map[Site]int),
	}, nil
}

// Plan returns the injector's (defaults-applied) plan.
func (in *Injector) Plan() Plan { return in.plan }

// Inject decides whether the site's fault fires for this draw. Each
// (site, key) pair has its own draw counter, so repeated draws at one
// site are independent and reproducible.
func (in *Injector) Inject(site Site, key string) bool {
	spec := in.plan.Spec(site)
	if !spec.Enabled() {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	ck := string(site) + "\x00" + key
	n := in.counts[ck]
	in.counts[ck] = n + 1
	fire := false
	if spec.Every > 0 && (n+1)%uint64(spec.Every) == 0 {
		fire = true
	}
	if !fire && spec.Probability > 0 {
		fire = in.unit(site, key, n) < spec.Probability
	}
	if fire {
		in.fired[site]++
	}
	return fire
}

// Fired reports how many times the site has injected so far.
func (in *Injector) Fired(site Site) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// FiredTotal sums injections across sites.
func (in *Injector) FiredTotal() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	total := 0
	for _, s := range Sites() {
		total += in.fired[s]
	}
	return total
}

// MaxAttempts is the plan's per-operation retry budget.
func (in *Injector) MaxAttempts() int { return in.plan.Retry.MaxAttempts }

// TimeoutDelay is the virtual cost of one timed-out fetch attempt;
// fallback (typically the full transfer duration) applies when the
// plan leaves it unset.
func (in *Injector) TimeoutDelay(fallback time.Duration) time.Duration {
	if d := in.plan.TimeoutDelay.D(); d > 0 {
		return d
	}
	return fallback
}

// Backoff returns the delay before retry number attempt (0-based) of
// an operation at (site, key): capped exponential growth from the
// plan's base, spread by deterministic jitter so coordinated retries
// do not synchronize.
func (in *Injector) Backoff(site Site, key string, attempt int) time.Duration {
	r := in.plan.Retry
	d := r.Base.D()
	for i := 0; i < attempt && d < r.Cap.D(); i++ {
		d *= 2
	}
	if d > r.Cap.D() {
		d = r.Cap.D()
	}
	if r.Jitter > 0 {
		u := in.unit(site, "backoff\x00"+key, uint64(attempt))
		d += time.Duration(float64(d) * r.Jitter * (u - 0.5))
	}
	return d
}

// CrashSchedule returns the plan's node crashes ordered by (instant,
// node) so schedulers enqueue them deterministically.
func (in *Injector) CrashSchedule() []NodeCrash {
	out := append([]NodeCrash(nil), in.plan.NodeCrashes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// unit derives a uniform [0,1) value from (seed, site, key, n) with a
// splitmix64 chain — no shared random stream, no ordering dependence.
func (in *Injector) unit(site Site, key string, n uint64) float64 {
	h := uint64(in.plan.Seed)
	h = splitmix64(h ^ fnv64(string(site)))
	h = splitmix64(h ^ fnv64(key))
	h = splitmix64(h ^ n)
	return float64(h>>11) / float64(1<<53)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a strong
// 64-bit mix with full avalanche, used here as a stateless hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 is FNV-1a over the string, inlined to keep the package
// dependency-free and allocation-free on the hot path.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
