package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestZeroPlan(t *testing.T) {
	var p Plan
	if !p.Zero() {
		t.Fatal("zero Plan must report Zero")
	}
	inj, err := NewInjector(p)
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		t.Fatal("zero plan must yield a nil injector")
	}
	p.SSDRead.Probability = 0.1
	if p.Zero() {
		t.Fatal("plan with an enabled site must not be Zero")
	}
	p = Plan{NodeCrashes: []NodeCrash{{Node: 0, At: Duration(time.Second)}}}
	if p.Zero() {
		t.Fatal("plan with a scheduled crash must not be Zero")
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{ArtifactCorrupt: SiteSpec{Probability: -0.1}},
		{RegistryTimeout: SiteSpec{Probability: 1.5}},
		{SSDRead: SiteSpec{Every: -1}},
		{TimeoutDelay: Duration(-time.Second)},
		{NodeCrashes: []NodeCrash{{Node: -1}}},
		{NodeCrashes: []NodeCrash{{Node: 0, At: Duration(-1)}}},
		{Retry: RetryPolicy{Jitter: 2}},
		{Retry: RetryPolicy{MaxAttempts: -1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d should fail validation: %+v", i, p)
		}
	}
	if err := (Plan{RestoreMismatch: SiteSpec{Probability: 1}}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestInjectDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, SSDRead: SiteSpec{Probability: 0.3}, ArtifactCorrupt: SiteSpec{Probability: 0.3}}
	draw := func() []bool {
		inj, err := NewInjector(plan)
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, inj.Inject(SiteSSDRead, fmt.Sprintf("k%d", i%7)))
			out = append(out, inj.Inject(SiteArtifactCorrupt, "m"))
		}
		return out
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical plans must yield identical draw sequences")
	}
	fired := 0
	for _, v := range a {
		if v {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.3 over %d draws fired %d times; expected a nontrivial count", len(a), fired)
	}
}

// Draws at one (site, key) pair must be independent of draws at other
// pairs: interleaving extra draws elsewhere cannot change a pair's
// outcome sequence.
func TestInjectOrderRobust(t *testing.T) {
	plan := Plan{Seed: 7, SSDRead: SiteSpec{Probability: 0.5}}
	seq := func(noise bool) []bool {
		inj, _ := NewInjector(plan)
		var out []bool
		for i := 0; i < 100; i++ {
			if noise {
				inj.Inject(SiteSSDRead, "other")
				inj.Inject(SiteSSDRead, "third")
			}
			out = append(out, inj.Inject(SiteSSDRead, "target"))
		}
		return out
	}
	if !reflect.DeepEqual(seq(false), seq(true)) {
		t.Fatal("draws for one key must not depend on draws for other keys")
	}
}

func TestInjectEvery(t *testing.T) {
	inj, err := NewInjector(Plan{SSDRead: SiteSpec{Every: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 9; i++ {
		got = append(got, inj.Inject(SiteSSDRead, "k"))
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Every=3: got %v want %v", got, want)
	}
	if inj.Fired(SiteSSDRead) != 3 {
		t.Fatalf("Fired = %d, want 3", inj.Fired(SiteSSDRead))
	}
	if inj.FiredTotal() != 3 {
		t.Fatalf("FiredTotal = %d, want 3", inj.FiredTotal())
	}
	// Disabled sites draw nothing and leave no counter state.
	if inj.Inject(SiteRestoreMismatch, "k") {
		t.Fatal("disabled site must never fire")
	}
}

func TestInjectProbabilityConverges(t *testing.T) {
	inj, _ := NewInjector(Plan{Seed: 9, SSDRead: SiteSpec{Probability: 0.2}})
	const n = 20000
	fired := 0
	for i := 0; i < n; i++ {
		if inj.Inject(SiteSSDRead, "k") {
			fired++
		}
	}
	got := float64(fired) / n
	if math.Abs(got-0.2) > 0.02 {
		t.Fatalf("empirical rate %.4f far from 0.2", got)
	}
}

func TestBackoff(t *testing.T) {
	inj, _ := NewInjector(Plan{SSDRead: SiteSpec{Probability: 1}})
	prev := time.Duration(0)
	for attempt := 0; attempt < 6; attempt++ {
		d := inj.Backoff(SiteSSDRead, "k", attempt)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", attempt, d)
		}
		// Cap plus maximal jitter bounds every delay.
		capMax := inj.Plan().Retry.Cap.D()
		capMax += time.Duration(float64(capMax) * inj.Plan().Retry.Jitter)
		if d > capMax {
			t.Fatalf("attempt %d: backoff %v exceeds cap+jitter %v", attempt, d, capMax)
		}
		if attempt > 0 && attempt < 3 && d <= prev {
			t.Fatalf("attempt %d: backoff %v did not grow from %v", attempt, d, prev)
		}
		if d2 := inj.Backoff(SiteSSDRead, "k", attempt); d2 != d {
			t.Fatalf("backoff not deterministic: %v vs %v", d, d2)
		}
		prev = d
	}
}

func TestTimeoutDelay(t *testing.T) {
	inj, _ := NewInjector(Plan{SSDRead: SiteSpec{Probability: 1}})
	if got := inj.TimeoutDelay(time.Second); got != time.Second {
		t.Fatalf("unset TimeoutDelay must use fallback, got %v", got)
	}
	inj, _ = NewInjector(Plan{SSDRead: SiteSpec{Probability: 1}, TimeoutDelay: Duration(50 * time.Millisecond)})
	if got := inj.TimeoutDelay(time.Second); got != 50*time.Millisecond {
		t.Fatalf("TimeoutDelay = %v, want 50ms", got)
	}
}

func TestCrashSchedule(t *testing.T) {
	inj, _ := NewInjector(Plan{NodeCrashes: []NodeCrash{
		{Node: 2, At: Duration(5 * time.Second)},
		{Node: 0, At: Duration(time.Second)},
		{Node: 1, At: Duration(5 * time.Second)},
	}})
	got := inj.CrashSchedule()
	want := []NodeCrash{
		{Node: 0, At: Duration(time.Second)},
		{Node: 1, At: Duration(5 * time.Second)},
		{Node: 2, At: Duration(5 * time.Second)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CrashSchedule = %v, want %v", got, want)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].At < got[j].At || (got[i].At == got[j].At && got[i].Node < got[j].Node) }) {
		t.Fatal("schedule not sorted")
	}
}

func TestDurationJSON(t *testing.T) {
	type wrap struct {
		D Duration `json:"d"`
	}
	out, err := json.Marshal(wrap{D: Duration(1500 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"d":"1.5s"}` {
		t.Fatalf("marshal = %s", out)
	}
	var w wrap
	if err := json.Unmarshal([]byte(`{"d":"250ms"}`), &w); err != nil {
		t.Fatal(err)
	}
	if w.D.D() != 250*time.Millisecond {
		t.Fatalf("unmarshal string = %v", w.D.D())
	}
	if err := json.Unmarshal([]byte(`{"d":1000}`), &w); err != nil {
		t.Fatal(err)
	}
	if w.D.D() != 1000 {
		t.Fatalf("unmarshal number = %v", int64(w.D))
	}
	if err := json.Unmarshal([]byte(`{"d":"nonsense"}`), &w); err == nil {
		t.Fatal("bad duration string must error")
	}
}

func TestPresetsAndLoadPlan(t *testing.T) {
	for name, p := range Presets() {
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
	if !Presets()["none"].Zero() {
		t.Fatal("preset none must be zero")
	}
	if Presets()["mild"].Zero() || Presets()["heavy"].Zero() || Presets()["crash"].Zero() {
		t.Fatal("mild/heavy/crash presets must be nonzero")
	}
	if len(Presets()["crash"].NodeCrashes) != 1 {
		t.Fatal("crash preset must schedule a node crash")
	}

	p, err := LoadPlan("mild")
	if err != nil || p.Zero() {
		t.Fatalf("LoadPlan(mild): %v %v", p, err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	body := `{"seed": 11, "ssd_read": {"probability": 0.25}, "timeout_delay": "75ms", "node_crashes": [{"node": 1, "at": "10s"}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err = LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 11 || p.SSDRead.Probability != 0.25 || p.TimeoutDelay.D() != 75*time.Millisecond || len(p.NodeCrashes) != 1 || p.NodeCrashes[0].At.D() != 10*time.Second {
		t.Fatalf("loaded plan mismatch: %+v", p)
	}

	if _, err := LoadPlan("no-such-preset-or-file"); err == nil {
		t.Fatal("unknown preset must error")
	}
	badPath := filepath.Join(dir, "bad.json")
	os.WriteFile(badPath, []byte(`{"ssd_read": {"probability": 7}}`), 0o644)
	if _, err := LoadPlan(badPath); err == nil {
		t.Fatal("invalid plan file must error")
	}
}

func TestDegradeReason(t *testing.T) {
	cases := []struct {
		err  error
		want string
		ok   bool
	}{
		{&ArtifactCorruptError{Key: "m", Section: "graphs", Detail: "crc"}, ReasonCorruptArtifact, true},
		{&FetchTimeoutError{Key: "m", Attempts: 4}, ReasonFetchTimeout, true},
		{&ReadError{Object: "m", Attempts: 4}, ReasonSSDReadFailed, true},
		{&RestoreMismatchError{Key: "m", Label: "graph 0"}, ReasonRestoreMismatch, true},
		{fmt.Errorf("wrapped: %w", &RestoreMismatchError{Key: "m"}), ReasonRestoreMismatch, true},
		{errors.New("plain"), "", false},
		{nil, "", false},
	}
	for i, c := range cases {
		got, ok := DegradeReason(c.err)
		if got != c.want || ok != c.ok {
			t.Errorf("case %d: DegradeReason = (%q, %v), want (%q, %v)", i, got, ok, c.want, c.ok)
		}
	}
	for _, err := range []error{
		&ArtifactCorruptError{Key: "k", Section: "s", Detail: "d"},
		&FetchTimeoutError{Key: "k", Attempts: 2},
		&ReadError{Object: "o", Attempts: 3},
		&RestoreMismatchError{Key: "k", Label: "l"},
	} {
		if err.Error() == "" {
			t.Errorf("%T has empty Error()", err)
		}
	}
}

// Concurrent draws for distinct keys must produce the same per-key
// outcome sequences as serial draws: the race detector guards the
// mutex, this guards the math.
func TestInjectConcurrentDistinctKeys(t *testing.T) {
	plan := Plan{Seed: 5, SSDRead: SiteSpec{Probability: 0.4}}
	serial := make(map[string][]bool)
	inj, _ := NewInjector(plan)
	for k := 0; k < 8; k++ {
		key := fmt.Sprintf("k%d", k)
		for i := 0; i < 50; i++ {
			serial[key] = append(serial[key], inj.Inject(SiteSSDRead, key))
		}
	}

	inj2, _ := NewInjector(plan)
	var mu sync.Mutex
	conc := make(map[string][]bool)
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		key := fmt.Sprintf("k%d", k)
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]bool, 0, 50)
			for i := 0; i < 50; i++ {
				local = append(local, inj2.Inject(SiteSSDRead, key))
			}
			mu.Lock()
			conc[key] = local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if !reflect.DeepEqual(serial, conc) {
		t.Fatal("concurrent per-key draw sequences diverged from serial")
	}
}
