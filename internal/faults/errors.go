package faults

import (
	"errors"
	"fmt"
)

// ArtifactCorruptError reports that an artifact's bytes failed
// checksum verification. Section names the first damaged wire section
// when the decoder could localize it ("body" otherwise).
type ArtifactCorruptError struct {
	// Key identifies the artifact (model name or cache key).
	Key string
	// Section is the first wire section whose checksum mismatched.
	Section string
	// Detail carries the decoder's diagnostic.
	Detail string
}

// Error implements error.
func (e *ArtifactCorruptError) Error() string {
	return fmt.Sprintf("faults: artifact %q corrupt in section %q: %s", e.Key, e.Section, e.Detail)
}

// FetchTimeoutError reports that a remote registry fetch exhausted its
// retry budget, every attempt timing out.
type FetchTimeoutError struct {
	// Key identifies the artifact being fetched.
	Key string
	// Attempts is how many fetches were tried before giving up.
	Attempts int
}

// Error implements error.
func (e *FetchTimeoutError) Error() string {
	return fmt.Sprintf("faults: fetch of %q timed out after %d attempts", e.Key, e.Attempts)
}

// ReadError reports that a local (SSD) read exhausted its retry
// budget.
type ReadError struct {
	// Object identifies what was being read.
	Object string
	// Attempts is how many reads were tried before giving up.
	Attempts int
}

// Error implements error.
func (e *ReadError) Error() string {
	return fmt.Sprintf("faults: read of %q failed after %d attempts", e.Object, e.Attempts)
}

// RestoreMismatchError reports that a Medusa restore's validation
// diverged: the replayed allocation sequence no longer matches the
// artifact, so the materialized state cannot be trusted (§4's trigger
// for the vanilla-cold-start fallback).
type RestoreMismatchError struct {
	// Key identifies the artifact being restored.
	Key string
	// Label names the divergent structure (e.g. a graph or workspace).
	Label string
}

// Error implements error.
func (e *RestoreMismatchError) Error() string {
	return fmt.Sprintf("faults: restore of %q diverged at %q; materialized state untrusted", e.Key, e.Label)
}

// TemplateMissingError reports that a v3 (template+delta) artifact
// references an architecture template the resolver cannot supply — not
// in the registry, or no resolver at all. The delta alone cannot be
// restored, so the launch degrades to the vanilla cold start.
type TemplateMissingError struct {
	// Key identifies the artifact whose delta needed the template
	// (empty when decode failed before the model name was known).
	Key string
	// Template is the missing template's ID.
	Template string
}

// Error implements error.
func (e *TemplateMissingError) Error() string {
	return fmt.Sprintf("faults: artifact %q references template %q, which is missing", e.Key, e.Template)
}

// TemplateMismatchError reports that a resolved template does not match
// what the artifact's delta was encoded against — a body-CRC skew, or a
// template/delta format-version skew. Applying a delta against the
// wrong template bytes would silently build wrong graphs, so resolution
// refuses and the launch degrades to the vanilla cold start.
type TemplateMismatchError struct {
	// Key identifies the artifact whose delta pinned the template
	// (empty when decode failed before the model name was known).
	Key string
	// Template is the mismatching template's ID.
	Template string
	// Detail carries the decoder's diagnostic (CRC values or versions).
	Detail string
}

// Error implements error.
func (e *TemplateMismatchError) Error() string {
	return fmt.Sprintf("faults: artifact %q does not match template %q: %s", e.Key, e.Template, e.Detail)
}

// DegradeReason maps an error to the DegradedReason a survivable
// launch records, and reports whether the error is degradable at all.
// Non-degradable errors (nil, or genuine bugs) propagate as failures.
func DegradeReason(err error) (string, bool) {
	var corrupt *ArtifactCorruptError
	if errors.As(err, &corrupt) {
		return ReasonCorruptArtifact, true
	}
	var timeout *FetchTimeoutError
	if errors.As(err, &timeout) {
		return ReasonFetchTimeout, true
	}
	var read *ReadError
	if errors.As(err, &read) {
		return ReasonSSDReadFailed, true
	}
	var mismatch *RestoreMismatchError
	if errors.As(err, &mismatch) {
		return ReasonRestoreMismatch, true
	}
	var tmplMissing *TemplateMissingError
	if errors.As(err, &tmplMissing) {
		return ReasonTemplateMissing, true
	}
	var tmplMismatch *TemplateMismatchError
	if errors.As(err, &tmplMismatch) {
		return ReasonTemplateMismatch, true
	}
	return "", false
}
