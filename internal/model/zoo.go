package model

import "fmt"

// gb converts the paper's GB figures (decimal fractions of GiB as
// reported) into bytes.
func gb(v float64) uint64 { return uint64(v * (1 << 30)) }

// Zoo returns the ten models of Table 1, in the paper's column order.
//
// EpilogueNodes and PaddedGraphs are calibrated so TotalGraphNodes over
// the 35 standard capture sizes matches the published counts exactly:
//
//	Falcon-7B    32·12+27=411, +21 → 14406
//	Llama2-7B    32·11+5 =357, +23 → 12518
//	Llama2-13B   40·11+21=461, +15 → 16150
//	Qwen1.5-0.5B 24·10+20=260, +18 →  9118
//	Qwen1.5-1.8B 24·11+8 =272, +30 →  9550
//	Qwen1.5-4B   40·11+21=461, +15 → 16150
//	Qwen1.5-7B   32·11+16=368, +22 → 12902
//	Qwen1.5-14B  40·11+27=467, +5  → 16350
//	Yi-6B        32·11+16=368, +22 → 12902
//	Yi-9B        48·11+23=551, +33 → 19318
//
// Sum: 139364 — the total the paper reports materializing.
func Zoo() []Config {
	return []Config{
		{Name: "Falcon-7B", Family: FamilyParallel, ParamBytes: gb(13.4),
			Layers: 32, Hidden: 4544, FFN: 18176, Vocab: 65024, MaxSeqLen: 2048,
			EpilogueNodes: 27, PaddedGraphs: 21},
		{Name: "Llama2-7B", Family: FamilyStandard, ParamBytes: gb(12.6),
			Layers: 32, Hidden: 4096, FFN: 11008, Vocab: 32000, MaxSeqLen: 4096,
			EpilogueNodes: 5, PaddedGraphs: 23},
		{Name: "Llama2-13B", Family: FamilyStandard, ParamBytes: gb(24.2),
			Layers: 40, Hidden: 5120, FFN: 13824, Vocab: 32000, MaxSeqLen: 4096,
			EpilogueNodes: 21, PaddedGraphs: 15},
		{Name: "Qwen1.5-0.5B", Family: FamilyFused, ParamBytes: gb(1.2),
			Layers: 24, Hidden: 1024, FFN: 2816, Vocab: 151936, MaxSeqLen: 8192,
			EpilogueNodes: 20, PaddedGraphs: 18},
		{Name: "Qwen1.5-1.8B", Family: FamilyStandard, ParamBytes: gb(3.4),
			Layers: 24, Hidden: 2048, FFN: 5504, Vocab: 151936, MaxSeqLen: 8192,
			EpilogueNodes: 8, PaddedGraphs: 30},
		{Name: "Qwen1.5-4B", Family: FamilyStandard, ParamBytes: gb(7.4),
			Layers: 40, Hidden: 2560, FFN: 6912, Vocab: 151936, MaxSeqLen: 8192,
			EpilogueNodes: 21, PaddedGraphs: 15},
		{Name: "Qwen1.5-7B", Family: FamilyStandard, ParamBytes: gb(14.4),
			Layers: 32, Hidden: 4096, FFN: 11008, Vocab: 151936, MaxSeqLen: 8192,
			EpilogueNodes: 16, PaddedGraphs: 22},
		{Name: "Qwen1.5-14B", Family: FamilyStandard, ParamBytes: gb(26.4),
			Layers: 40, Hidden: 5120, FFN: 13696, Vocab: 152064, MaxSeqLen: 8192,
			EpilogueNodes: 27, PaddedGraphs: 5},
		{Name: "Yi-6B", Family: FamilyStandard, ParamBytes: gb(11.3),
			Layers: 32, Hidden: 4096, FFN: 11008, Vocab: 64000, MaxSeqLen: 4096,
			EpilogueNodes: 16, PaddedGraphs: 22},
		{Name: "Yi-9B", Family: FamilyStandard, ParamBytes: gb(16.4),
			Layers: 48, Hidden: 4096, FFN: 11008, Vocab: 64000, MaxSeqLen: 4096,
			EpilogueNodes: 23, PaddedGraphs: 33},
	}
}

// ByName returns the zoo model with the given name.
func ByName(name string) (Config, error) {
	for _, c := range Zoo() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown model %q", name)
}

// PaperTotalGraphNodes is the total node count the paper reports across
// all ten models and 35 batch sizes.
const PaperTotalGraphNodes = 139364

// TestTiny returns a small functional model whose kernels run real
// arithmetic. Tests and validation forwarding use it.
func TestTiny(name string) Config {
	return Config{
		Name: name, Family: FamilyStandard,
		ParamBytes: 0, // derived from tensors; tiny
		Layers:     2, Hidden: 8, FFN: 16, Vocab: 32, MaxSeqLen: 64,
		EpilogueNodes: 5, PaddedGraphs: 1,
		Functional: true,
	}
}

// TestTinyFused is a functional model with the 10-kernel fused layer.
func TestTinyFused(name string) Config {
	c := TestTiny(name)
	c.Family = FamilyFused
	return c
}

// TestTinyParallel is a functional model with the 12-kernel Falcon
// layer.
func TestTinyParallel(name string) Config {
	c := TestTiny(name)
	c.Family = FamilyParallel
	return c
}
