// Package model defines the LLM zoo of the paper's evaluation (Table 1)
// plus tiny functional models for tests.
//
// Each config carries two kinds of truth:
//
//   - Real structural dimensions (layers, hidden size, vocabulary) that
//     drive the cost model and the forwarding kernel sequence.
//   - Graph-shape constants (kernels per layer, epilogue nodes, padded
//     graphs) calibrated so that capturing the standard 35 batch sizes
//     reproduces the paper's CUDA-graph node counts exactly — 139364
//     nodes across the ten models.
package model

import (
	"fmt"
	"sort"
)

// Family selects the per-layer kernel sequence variant.
type Family string

const (
	// FamilyStandard is the 11-kernel decoder layer (Llama/Qwen/Yi
	// style): norm, qkv-GEMM, rope, attention, o-GEMM, add, norm,
	// gateup-GEMM, silu, down-GEMM, add.
	FamilyStandard Family = "standard"
	// FamilyFused is the 10-kernel layer with a fused norm-residual
	// (small Qwen models).
	FamilyFused Family = "fused"
	// FamilyParallel is the 12-kernel Falcon-style layer with parallel
	// attention/MLP requiring an extra bias add.
	FamilyParallel Family = "parallel"
)

// KernelsPerLayer returns the layer kernel count of a family.
func (f Family) KernelsPerLayer() int {
	switch f {
	case FamilyFused:
		return 10
	case FamilyParallel:
		return 12
	default:
		return 11
	}
}

// Config describes one model.
type Config struct {
	// Name as reported in Table 1, e.g. "Qwen1.5-4B".
	Name string
	// Family selects the layer kernel sequence.
	Family Family
	// ParamBytes is the fp16 parameter size (Table 1 row 1).
	ParamBytes uint64
	// Layers is the number of decoder layers.
	Layers int
	// Hidden is the model width.
	Hidden int
	// FFN is the MLP intermediate size.
	FFN int
	// Vocab is the vocabulary size.
	Vocab int
	// MaxSeqLen is the maximum supported sequence length.
	MaxSeqLen int
	// EpilogueNodes is the number of non-layer graph nodes per captured
	// graph (embedding, final norm, LM head, sampling, plus auxiliary
	// logits-processing kernels). Calibrated to Table 1.
	EpilogueNodes int
	// PaddedGraphs is the number of largest capture batch sizes whose
	// graphs carry one extra padding-kernel node. Calibrated to Table 1.
	PaddedGraphs int
	// Functional marks a tiny test model whose kernels run real math.
	Functional bool
	// TrickySeed makes the engine pass a sampling seed scalar that
	// collides with a device address, manufacturing the §4
	// false-positive pointer classification case.
	TrickySeed bool
	// TPDegree marks a tensor-parallel shard of a larger model (the §8
	// future-work extension): weight matrices and attention width are
	// divided across TPDegree ranks, while layer structure — and hence
	// CUDA graph shape — is unchanged. 0 or 1 means unsharded.
	TPDegree int
	// TPRank is this shard's rank in [0, TPDegree).
	TPRank int
}

// TP returns the effective tensor-parallel degree (≥1).
func (c Config) TP() int {
	if c.TPDegree > 1 {
		return c.TPDegree
	}
	return 1
}

// Shard derives one tensor-parallel rank's configuration.
func (c Config) Shard(rank, degree int) (Config, error) {
	if degree < 1 || rank < 0 || rank >= degree {
		return c, fmt.Errorf("model: invalid shard %d/%d", rank, degree)
	}
	if degree == 1 {
		return c, nil
	}
	if c.Hidden%degree != 0 || (c.Hidden/degree)%2 != 0 {
		return c, fmt.Errorf("model %s: hidden %d not shardable %d-way", c.Name, c.Hidden, degree)
	}
	if c.FFN%degree != 0 || c.Vocab%degree != 0 {
		return c, fmt.Errorf("model %s: ffn %d / vocab %d not shardable %d-way", c.Name, c.FFN, c.Vocab, degree)
	}
	s := c
	s.Name = fmt.Sprintf("%s-tp%d.%d", c.Name, degree, rank)
	s.TPDegree = degree
	s.TPRank = rank
	return s, nil
}

// minEpilogueNodes is the fixed epilogue: embedding lookup, final
// RMSNorm, LM-head GEMM, and argmax sampling. Configs add auxiliary
// elementwise nodes on top.
const minEpilogueNodes = 4

// Validate checks structural sanity.
func (c Config) Validate() error {
	if c.Name == "" || c.Layers <= 0 || c.Hidden <= 0 || c.Vocab <= 0 {
		return fmt.Errorf("model: malformed config %+v", c)
	}
	if c.Hidden%2 != 0 {
		return fmt.Errorf("model %s: hidden size %d must be even for RoPE", c.Name, c.Hidden)
	}
	if c.EpilogueNodes < minEpilogueNodes {
		return fmt.Errorf("model %s: epilogue %d below minimum %d", c.Name, c.EpilogueNodes, minEpilogueNodes)
	}
	if c.PaddedGraphs < 0 {
		return fmt.Errorf("model %s: negative padded graphs", c.Name)
	}
	return nil
}

// AuxEpilogueNodes is the number of auxiliary elementwise epilogue
// kernels beyond the fixed four.
func (c Config) AuxEpilogueNodes() int { return c.EpilogueNodes - minEpilogueNodes }

// BaseNodesPerGraph is the node count of an unpadded captured graph.
func (c Config) BaseNodesPerGraph() int {
	return c.Layers*c.Family.KernelsPerLayer() + c.EpilogueNodes
}

// GraphPadded reports whether the graph for the given batch size gets
// the extra padding node, given the full set of capture sizes: the
// PaddedGraphs largest sizes do.
func (c Config) GraphPadded(batch int, captureSizes []int) bool {
	if c.PaddedGraphs == 0 {
		return false
	}
	sorted := append([]int(nil), captureSizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	cut := c.PaddedGraphs
	if cut > len(sorted) {
		cut = len(sorted)
	}
	for _, s := range sorted[:cut] {
		if s == batch {
			return true
		}
	}
	return false
}

// NodesPerGraph returns the node count of the graph captured for one
// batch size.
func (c Config) NodesPerGraph(batch int, captureSizes []int) int {
	n := c.BaseNodesPerGraph()
	if c.GraphPadded(batch, captureSizes) {
		n++
	}
	return n
}

// TotalGraphNodes returns the summed node count over all capture sizes
// — the Table 1 "CUDA graph nodes" figure.
func (c Config) TotalGraphNodes(captureSizes []int) int {
	total := 0
	for _, b := range captureSizes {
		total += c.NodesPerGraph(b, captureSizes)
	}
	return total
}

// ApproxParams returns the approximate parameter count (fp16).
func (c Config) ApproxParams() float64 { return float64(c.ParamBytes) / 2 }

// CaptureBatchSizes returns vLLM's default 35 CUDA-graph capture batch
// sizes: 1, 2, 4, then multiples of 8 up to 256.
func CaptureBatchSizes() []int {
	sizes := []int{1, 2, 4}
	for b := 8; b <= 256; b += 8 {
		sizes = append(sizes, b)
	}
	return sizes
}

// MaxCaptureBatch is the largest captured batch size.
func MaxCaptureBatch() int {
	s := CaptureBatchSizes()
	return s[len(s)-1]
}
