package model

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCaptureBatchSizes(t *testing.T) {
	sizes := CaptureBatchSizes()
	if len(sizes) != 35 {
		t.Fatalf("capture sizes = %d, want 35 (vLLM default)", len(sizes))
	}
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 4 || sizes[3] != 8 || sizes[34] != 256 {
		t.Fatalf("capture sizes = %v", sizes)
	}
	if MaxCaptureBatch() != 256 {
		t.Fatalf("MaxCaptureBatch = %d", MaxCaptureBatch())
	}
}

// TestTable1NodeCounts verifies the calibration reproduces Table 1
// exactly: per-model node counts and the 139364 total.
func TestTable1NodeCounts(t *testing.T) {
	want := map[string]int{
		"Falcon-7B":    14406,
		"Llama2-7B":    12518,
		"Llama2-13B":   16150,
		"Qwen1.5-0.5B": 9118,
		"Qwen1.5-1.8B": 9550,
		"Qwen1.5-4B":   16150,
		"Qwen1.5-7B":   12902,
		"Qwen1.5-14B":  16350,
		"Yi-6B":        12902,
		"Yi-9B":        19318,
	}
	sizes := CaptureBatchSizes()
	total := 0
	for _, c := range Zoo() {
		got := c.TotalGraphNodes(sizes)
		if got != want[c.Name] {
			t.Errorf("%s: total graph nodes = %d, want %d", c.Name, got, want[c.Name])
		}
		total += got
	}
	if total != PaperTotalGraphNodes {
		t.Errorf("zoo total = %d, want %d", total, PaperTotalGraphNodes)
	}
}

func TestTable1ParamSizes(t *testing.T) {
	want := map[string]float64{
		"Falcon-7B": 13.4, "Llama2-7B": 12.6, "Llama2-13B": 24.2,
		"Qwen1.5-0.5B": 1.2, "Qwen1.5-1.8B": 3.4, "Qwen1.5-4B": 7.4,
		"Qwen1.5-7B": 14.4, "Qwen1.5-14B": 26.4, "Yi-6B": 11.3, "Yi-9B": 16.4,
	}
	for _, c := range Zoo() {
		gotGB := float64(c.ParamBytes) / (1 << 30)
		if diff := gotGB - want[c.Name]; diff > 0.001 || diff < -0.001 {
			t.Errorf("%s: param size %.2f GB, want %.1f", c.Name, gotGB, want[c.Name])
		}
	}
}

func TestZooValidates(t *testing.T) {
	for _, c := range Zoo() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.Functional {
			t.Errorf("%s: zoo model marked functional", c.Name)
		}
	}
	for _, c := range []Config{TestTiny("t"), TestTinyFused("t"), TestTinyParallel("t")} {
		if err := c.Validate(); err != nil {
			t.Errorf("tiny %s/%s: %v", c.Name, c.Family, err)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("Qwen1.5-4B")
	if err != nil || c.Layers != 40 {
		t.Fatalf("ByName = %+v, %v", c, err)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Fatal("unknown model resolved")
	}
}

func TestGraphPaddingGoesToLargestBatches(t *testing.T) {
	c, _ := ByName("Qwen1.5-4B") // 15 padded graphs
	sizes := CaptureBatchSizes()
	padded := 0
	for _, b := range sizes {
		if c.GraphPadded(b, sizes) {
			padded++
			if b < 144 { // 15 largest of the 35 sizes are 144..256
				t.Errorf("batch %d padded but is not among the 15 largest", b)
			}
		}
	}
	if padded != 15 {
		t.Fatalf("padded graphs = %d, want 15", padded)
	}
	if c.NodesPerGraph(256, sizes) != c.BaseNodesPerGraph()+1 {
		t.Fatal("largest batch missing padding node")
	}
	if c.NodesPerGraph(1, sizes) != c.BaseNodesPerGraph() {
		t.Fatal("batch 1 unexpectedly padded")
	}
}

func TestFamilyKernelCounts(t *testing.T) {
	if FamilyStandard.KernelsPerLayer() != 11 ||
		FamilyFused.KernelsPerLayer() != 10 ||
		FamilyParallel.KernelsPerLayer() != 12 {
		t.Fatal("family kernel counts wrong")
	}
}

func TestTensorsStructure(t *testing.T) {
	c := TestTiny("tiny")
	specs := c.Tensors()
	// embed + 6 per layer × 2 layers + final norm + lm_head.
	if len(specs) != 1+6*2+2 {
		t.Fatalf("tensor count = %d", len(specs))
	}
	if specs[0].Name != "embed_tokens" || specs[0].Layer != -1 {
		t.Fatalf("first tensor = %+v", specs[0])
	}
	last := specs[len(specs)-1]
	if last.Name != "lm_head" {
		t.Fatalf("last tensor = %+v", last)
	}
	cp := TestTinyParallel("tinyp")
	if len(cp.Tensors()) != 1+7*2+2 {
		t.Fatalf("parallel tensor count = %d", len(cp.Tensors()))
	}
}

func TestWeightBytesAccounting(t *testing.T) {
	c := TestTiny("tiny")
	var sum uint64
	for _, s := range c.Tensors() {
		sum += c.TensorBytes(s)
	}
	if sum != c.WeightBytesTotal() {
		t.Fatal("WeightBytesTotal mismatch")
	}
	if c.LoadBytes() != c.WeightBytesTotal() {
		t.Fatal("functional LoadBytes should equal structural total")
	}
	big, _ := ByName("Llama2-13B")
	if big.LoadBytes() != big.ParamBytes {
		t.Fatal("zoo LoadBytes should be the published size")
	}
	// Cost-only tensors are fp16: half the functional footprint.
	spec := TensorSpec{Name: "x", Elems: 100}
	if big.TensorBytes(spec) != 200 || c.TensorBytes(spec) != 400 {
		t.Fatal("TensorBytes element width wrong")
	}
}

func TestTensorDataDeterministic(t *testing.T) {
	c := TestTiny("tiny")
	s := c.Tensors()[1]
	a, b := c.TensorData(s), c.TensorData(s)
	if !bytes.Equal(a, b) {
		t.Fatal("TensorData not deterministic")
	}
	other := c.TensorData(c.Tensors()[2])
	if bytes.Equal(a, other) {
		t.Fatal("distinct tensors share data")
	}
	c2 := TestTiny("tiny2")
	if bytes.Equal(a, c2.TensorData(s)) {
		t.Fatal("distinct models share tensor data")
	}
	if len(a) != s.Elems*4 {
		t.Fatalf("tensor data length = %d", len(a))
	}
}

// Property: for any subset of capture sizes and any padding count, the
// padding always lands on the largest sizes and total node accounting
// is consistent.
func TestNodeAccountingProperty(t *testing.T) {
	f := func(padRaw uint8) bool {
		c := TestTiny("prop")
		c.PaddedGraphs = int(padRaw % 40)
		sizes := CaptureBatchSizes()
		total := 0
		padded := 0
		for _, b := range sizes {
			n := c.NodesPerGraph(b, sizes)
			total += n
			if n == c.BaseNodesPerGraph()+1 {
				padded++
			}
		}
		wantPadded := c.PaddedGraphs
		if wantPadded > len(sizes) {
			wantPadded = len(sizes)
		}
		return padded == wantPadded && total == c.TotalGraphNodes(sizes) &&
			total == len(sizes)*c.BaseNodesPerGraph()+wantPadded
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCostScalingInputs verifies the structural quantities the cost
// model scales with behave monotonically across the zoo: more layers
// never means fewer graph nodes, and more parameters never means fewer
// weight bytes to stream.
func TestCostScalingInputs(t *testing.T) {
	sizes := CaptureBatchSizes()
	for _, a := range Zoo() {
		for _, b := range Zoo() {
			if a.Layers > b.Layers && a.Family.KernelsPerLayer() >= b.Family.KernelsPerLayer() &&
				a.EpilogueNodes >= b.EpilogueNodes && a.PaddedGraphs >= b.PaddedGraphs {
				if a.TotalGraphNodes(sizes) < b.TotalGraphNodes(sizes) {
					t.Errorf("%s structurally ≥ %s but has fewer nodes", a.Name, b.Name)
				}
			}
			if a.ParamBytes > b.ParamBytes && a.LoadBytes() < b.LoadBytes() {
				t.Errorf("%s bigger than %s but streams fewer bytes", a.Name, b.Name)
			}
		}
	}
}

func TestShardTensorsConsistency(t *testing.T) {
	for _, name := range []string{"Llama2-13B", "Qwen1.5-14B"} {
		cfg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var fullBytes uint64
		for _, s := range cfg.Tensors() {
			fullBytes += cfg.TensorBytes(s)
		}
		for _, degree := range []int{2, 4} {
			var shardSum uint64
			for rank := 0; rank < degree; rank++ {
				shard, err := cfg.Shard(rank, degree)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range shard.Tensors() {
					shardSum += shard.TensorBytes(s)
				}
				if shard.TotalGraphNodes(CaptureBatchSizes()) != cfg.TotalGraphNodes(CaptureBatchSizes()) {
					t.Fatalf("%s tp%d: graph shape changed under sharding", name, degree)
				}
			}
			// Shards replicate embeddings/norms, so the sum exceeds the
			// full model but by less than the replicated part times TP.
			if shardSum < fullBytes {
				t.Fatalf("%s tp%d: shards sum to %d < full %d", name, degree, shardSum, fullBytes)
			}
			if shardSum > fullBytes*2 {
				t.Fatalf("%s tp%d: shards sum to %d, replication overhead implausible", name, degree, shardSum)
			}
			if shard, _ := cfg.Shard(0, degree); shard.LoadBytes() != cfg.ParamBytes/uint64(degree) {
				t.Fatalf("%s tp%d: rank streams %d bytes, want %d", name, degree, shard.LoadBytes(), cfg.ParamBytes/uint64(degree))
			}
		}
	}
}
