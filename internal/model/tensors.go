package model

import (
	"encoding/binary"
	"fmt"
	"math"
)

// TensorSpec describes one weight tensor of the model structure.
type TensorSpec struct {
	// Name identifies the tensor, e.g. "layers.3.wqkv".
	Name string
	// Layer is the owning decoder layer, or -1 for global tensors.
	Layer int
	// Elems is the element count.
	Elems int
	// Norm marks normalization weights (initialized near 1).
	Norm bool
}

// Bytes returns the tensor's device size for the config: 4 bytes per
// element for functional (f32) models, 2 for cost-only (fp16) ones.
func (c Config) TensorBytes(s TensorSpec) uint64 {
	if c.Functional {
		return uint64(s.Elems) * 4
	}
	return uint64(s.Elems) * 2
}

// Tensors returns the model's weight tensors in initialization order —
// the order the model structure initialization stage allocates device
// buffers, and therefore the deterministic prefix of the allocation
// sequence the paper's §4 leans on.
//
// For tensor-parallel shards the weight matrices are divided TP-ways
// (column-parallel for QKV/gate-up/LM head, row-parallel for O/down),
// while embeddings and norms are replicated — the Megatron layout.
func (c Config) Tensors() []TensorSpec {
	h, f, v := c.Hidden, c.FFN, c.Vocab
	tp := c.TP()
	specs := []TensorSpec{
		{Name: "embed_tokens", Layer: -1, Elems: v * h},
	}
	for l := 0; l < c.Layers; l++ {
		p := func(n string) string { return fmt.Sprintf("layers.%d.%s", l, n) }
		specs = append(specs,
			TensorSpec{Name: p("input_norm"), Layer: l, Elems: h, Norm: true},
			TensorSpec{Name: p("wqkv"), Layer: l, Elems: h * 3 * h / tp},
			TensorSpec{Name: p("wo"), Layer: l, Elems: h * h / tp},
			TensorSpec{Name: p("post_norm"), Layer: l, Elems: h, Norm: true},
			TensorSpec{Name: p("wgateup"), Layer: l, Elems: h * 2 * f / tp},
			TensorSpec{Name: p("wdown"), Layer: l, Elems: f * h / tp},
		)
		if c.Family == FamilyParallel {
			specs = append(specs, TensorSpec{Name: p("attn_bias"), Layer: l, Elems: h})
		}
	}
	specs = append(specs,
		TensorSpec{Name: "final_norm", Layer: -1, Elems: h, Norm: true},
		TensorSpec{Name: "lm_head", Layer: -1, Elems: v * h / tp},
	)
	return specs
}

// WeightBytesTotal sums the device bytes of all tensors.
func (c Config) WeightBytesTotal() uint64 {
	var total uint64
	for _, s := range c.Tensors() {
		total += c.TensorBytes(s)
	}
	return total
}

// LoadBytes is the number of bytes the weights-loading stage streams
// from storage: the published parameter size when available (divided
// across tensor-parallel ranks), otherwise the structural total (tiny
// functional models).
func (c Config) LoadBytes() uint64 {
	if c.ParamBytes > 0 {
		return c.ParamBytes / uint64(c.TP())
	}
	return c.WeightBytesTotal()
}

// TensorData deterministically generates a functional tensor's f32
// contents. The same (model, tensor) pair always produces the same
// bytes, standing in for weights files on the SSD array.
func (c Config) TensorData(s TensorSpec) []byte {
	out := make([]byte, s.Elems*4)
	state := hash64(c.Name + "/" + s.Name)
	for i := 0; i < s.Elems; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		// Map to small centered floats so deep compositions stay finite.
		u := float64(state>>11) / float64(1<<53) // [0,1)
		v := float32((u - 0.5) * 0.5)
		if s.Norm {
			v = 1 + v*0.1
		}
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

func hash64(s string) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
