package sched

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/kvcache"
)

// req is the test payload.
type req struct {
	id             int
	prompt, output int
}

// queue adapts a slice to the peek/pop callbacks.
type queue struct {
	reqs []req
}

func (w *queue) peek() (int, int, bool) {
	if len(w.reqs) == 0 {
		return 0, 0, false
	}
	return w.reqs[0].prompt, w.reqs[0].output, true
}

func (w *queue) pop() req {
	r := w.reqs[0]
	w.reqs = w.reqs[1:]
	return r
}

// drive runs the scheduler to completion, returning the per-request
// iteration index of each token as "events" plus the completion order.
func drive(t *testing.T, s *Scheduler[req], w *queue, maxRounds int) (tokens map[int][]int, doneOrder []int) {
	t.Helper()
	tokens = map[int][]int{}
	for round := 0; round < maxRounds; round++ {
		it, err := s.Plan(w.peek, w.pop)
		if err != nil {
			t.Fatal(err)
		}
		if it.Empty() {
			if !s.Idle() {
				t.Fatalf("round %d: empty iteration with %d running / %d preempted",
					round, s.Running(), s.PreemptedWaiting())
			}
			return tokens, doneOrder
		}
		s.Finish(func(r req, emitted int) {
			tokens[r.id] = append(tokens[r.id], round)
		}, func(r req) {
			doneOrder = append(doneOrder, r.id)
		})
	}
	t.Fatalf("scheduler did not drain in %d rounds", maxRounds)
	return nil, nil
}

func TestSingleSequenceLifecycle(t *testing.T) {
	s := New[req](Params{BatchTokens: 64, KVBlocks: 16})
	w := &queue{reqs: []req{{id: 1, prompt: 10, output: 3}}}

	it, err := s.Plan(w.peek, w.pop)
	if err != nil {
		t.Fatal(err)
	}
	if len(it.Chunks) != 1 || it.Chunks[0].Tokens != 10 || len(it.Admitted) != 1 {
		t.Fatalf("admission round: %d chunks (%v tokens), %d admitted",
			len(it.Chunks), it.Chunks, len(it.Admitted))
	}
	var first int
	s.Finish(func(r req, emitted int) { first = emitted }, func(req) { t.Fatal("early done") })
	if first != 1 {
		t.Fatalf("prefill completion emitted token %d, want 1", first)
	}
	if st := it.Admitted[0].State(); st != StateDecoding {
		t.Fatalf("after prefill: state %v", st)
	}

	// Two more decode rounds complete output=3.
	done := false
	for i := 0; i < 2; i++ {
		it, err := s.Plan(w.peek, w.pop)
		if err != nil {
			t.Fatal(err)
		}
		if len(it.Decode) != 1 || len(it.Chunks) != 0 {
			t.Fatalf("decode round %d: %d decode, %d chunks", i, len(it.Decode), len(it.Chunks))
		}
		s.Finish(func(req, int) {}, func(req) { done = true })
	}
	if !done || !s.Idle() {
		t.Fatalf("done=%v idle=%v", done, s.Idle())
	}
}

func TestChunkedPrefillSplitsLongPrompt(t *testing.T) {
	s := New[req](Params{BatchTokens: 32, KVBlocks: 16, ChunkedPrefill: true})
	w := &queue{reqs: []req{{id: 1, prompt: 100, output: 2}}}
	sizes := []int{}
	for {
		it, err := s.Plan(w.peek, w.pop)
		if err != nil {
			t.Fatal(err)
		}
		if it.Empty() {
			break
		}
		for _, c := range it.Chunks {
			sizes = append(sizes, c.Tokens)
		}
		s.Finish(func(req, int) {}, func(req) {})
	}
	want := []int{32, 32, 32, 4}
	if len(sizes) != len(want) {
		t.Fatalf("chunks %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("chunks %v, want %v", sizes, want)
		}
	}
}

func TestWholePromptWaitsForBudgetException(t *testing.T) {
	// Non-chunked: a 50-token prompt exceeds the 32-token budget, so it
	// only runs as the round's sole prefill.
	s := New[req](Params{BatchTokens: 32, KVBlocks: 32})
	w := &queue{reqs: []req{
		{id: 1, prompt: 8, output: 2},
		{id: 2, prompt: 50, output: 2},
	}}
	it, err := s.Plan(w.peek, w.pop)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 admits req 1 (8 ≤ budget); req 2 must wait (budget left
	// 24 < 50 and a prefill already planned).
	if len(it.Chunks) != 1 || it.Chunks[0].Tokens != 8 {
		t.Fatalf("round 1 chunks %v", it.Chunks)
	}
	s.Finish(func(req, int) {}, func(req) {})
	it, err = s.Plan(w.peek, w.pop)
	if err != nil {
		t.Fatal(err)
	}
	// Round 2: req 1 decodes; req 2 is the first prefill of the round,
	// so the budget exception admits all 50 tokens.
	if len(it.Decode) != 1 || len(it.Chunks) != 1 || it.Chunks[0].Tokens != 50 {
		t.Fatalf("round 2 decode=%d chunks=%v", len(it.Decode), it.Chunks)
	}
}

func TestDecodeConsumesBudget(t *testing.T) {
	s := New[req](Params{BatchTokens: 10, KVBlocks: 64, ChunkedPrefill: true})
	w := &queue{reqs: []req{
		{id: 1, prompt: 4, output: 8},
		{id: 2, prompt: 4, output: 8},
		{id: 3, prompt: 40, output: 2},
	}}
	// Round 1: admit 1 and 2 (8 tokens) and the first 2-token chunk of 3.
	it, err := s.Plan(w.peek, w.pop)
	if err != nil {
		t.Fatal(err)
	}
	if got := it.PrefillTokens(); got != 10 || len(it.Chunks) != 3 {
		t.Fatalf("round 1: %d prefill tokens in %d chunks", got, len(it.Chunks))
	}
	s.Finish(func(req, int) {}, func(req) {})
	// Round 2: seqs 1,2 decode (2 budget tokens), leaving 8 for seq 3.
	it, err = s.Plan(w.peek, w.pop)
	if err != nil {
		t.Fatal(err)
	}
	if len(it.Decode) != 2 || len(it.Chunks) != 1 || it.Chunks[0].Tokens != 8 {
		t.Fatalf("round 2: decode=%d chunks=%v", len(it.Decode), it.Chunks)
	}
}

func TestPreemptionEvictsLowestSeq(t *testing.T) {
	// Pool of 4 blocks = 64 tokens. Two sequences of 32+32 tokens fill
	// it exactly at admission; the first decode round must evict one,
	// and the victim must be the lowest id.
	s := New[req](Params{BatchTokens: 64, KVBlocks: 4})
	w := &queue{reqs: []req{
		{id: 1, prompt: 32, output: 32},
		{id: 2, prompt: 32, output: 32},
	}}
	it, err := s.Plan(w.peek, w.pop)
	if err != nil {
		t.Fatal(err)
	}
	if len(it.Admitted) != 2 {
		t.Fatalf("admitted %d", len(it.Admitted))
	}
	a, b := it.Admitted[0], it.Admitted[1]
	s.Finish(func(req, int) {}, func(req) {})

	it, err = s.Plan(w.peek, w.pop)
	if err != nil {
		t.Fatal(err)
	}
	if it.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", it.Preemptions)
	}
	if a.State() != StateWaiting || a.Preemptions() != 1 {
		t.Fatalf("victim: state=%v preemptions=%d, want lowest-id waiting", a.State(), a.Preemptions())
	}
	if b.State() != StateDecoding || len(it.Decode) != 1 || it.Decode[0] != b {
		t.Fatalf("survivor: state=%v decode=%v", b.State(), it.Decode)
	}
	if s.PreemptedWaiting() != 1 {
		t.Fatalf("preempted queue = %d", s.PreemptedWaiting())
	}
}

func TestPreemptedSequenceResumesAndCompletes(t *testing.T) {
	s := New[req](Params{BatchTokens: 64, KVBlocks: 4, ChunkedPrefill: true})
	w := &queue{reqs: []req{
		{id: 1, prompt: 32, output: 32},
		{id: 2, prompt: 32, output: 32},
	}}
	tokens, doneOrder := drive(t, s, w, 500)
	if len(tokens[1]) != 32 || len(tokens[2]) != 32 {
		t.Fatalf("token counts: %d and %d, want 32 each", len(tokens[1]), len(tokens[2]))
	}
	if len(doneOrder) != 2 {
		t.Fatalf("done %v", doneOrder)
	}
	// Token rounds must be strictly increasing per request (monotone
	// virtual progress even across preemptions).
	for id, rounds := range tokens {
		for i := 1; i < len(rounds); i++ {
			if rounds[i] <= rounds[i-1] {
				t.Fatalf("req %d: token %d at round %d after round %d", id, i, rounds[i], rounds[i-1])
			}
		}
	}
}

func TestRecomputeOnResumeGrowsTarget(t *testing.T) {
	s := New[req](Params{BatchTokens: 64, KVBlocks: 4})
	w := &queue{reqs: []req{
		{id: 1, prompt: 32, output: 32},
		{id: 2, prompt: 32, output: 32},
	}}
	it, _ := s.Plan(w.peek, w.pop)
	a := it.Admitted[0]
	s.Finish(func(req, int) {}, func(req) {}) // both prefilled, 1 token each
	s.Plan(w.peek, w.pop)                     // evicts a
	if a.target != a.prompt+a.emitted {
		t.Fatalf("victim target %d, want prompt %d + emitted %d", a.target, a.prompt, a.emitted)
	}
	if a.filled != 0 {
		t.Fatalf("victim filled %d, want 0 (recompute on resume)", a.filled)
	}
}

func TestOversizedSequenceIsAnError(t *testing.T) {
	s := New[req](Params{BatchTokens: 64, KVBlocks: 2}) // 32-token pool
	w := &queue{reqs: []req{{id: 1, prompt: 30, output: 10}}}
	if _, err := s.Plan(w.peek, w.pop); err == nil {
		t.Fatal("Plan admitted a sequence that cannot fit the pool")
	}
}

func TestMaxSeqsCapsAdmission(t *testing.T) {
	s := New[req](Params{BatchTokens: 64, KVBlocks: 64, MaxSeqs: 2})
	w := &queue{reqs: []req{
		{id: 1, prompt: 4, output: 2},
		{id: 2, prompt: 4, output: 2},
		{id: 3, prompt: 4, output: 2},
	}}
	it, err := s.Plan(w.peek, w.pop)
	if err != nil {
		t.Fatal(err)
	}
	if len(it.Admitted) != 2 || len(w.reqs) != 1 {
		t.Fatalf("admitted %d, queue %d; want 2 and 1", len(it.Admitted), len(w.reqs))
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() ([]int, map[int][]int) {
		s := New[req](Params{BatchTokens: 48, KVBlocks: 6, ChunkedPrefill: true})
		w := &queue{reqs: []req{
			{id: 1, prompt: 40, output: 20},
			{id: 2, prompt: 30, output: 25},
			{id: 3, prompt: 20, output: 30},
		}}
		tokens, doneOrder := drive(t, s, w, 1000)
		return doneOrder, tokens
	}
	d1, t1 := run()
	d2, t2 := run()
	if len(d1) != len(d2) {
		t.Fatalf("done orders differ: %v vs %v", d1, d2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("done orders differ: %v vs %v", d1, d2)
		}
	}
	for id, r1 := range t1 {
		r2 := t2[id]
		if len(r1) != len(r2) {
			t.Fatalf("req %d token rounds differ", id)
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("req %d token rounds differ at %d: %d vs %d", id, i, r1[i], r2[i])
			}
		}
	}
}

func TestResetRecyclesCleanly(t *testing.T) {
	s := New[req](Params{BatchTokens: 32, KVBlocks: 8})
	w := &queue{reqs: []req{{id: 1, prompt: 10, output: 50}}}
	s.Plan(w.peek, w.pop)
	s.Finish(func(req, int) {}, func(req) {})
	s.Reset(Params{BatchTokens: 32, KVBlocks: 8})
	if !s.Idle() || s.KVFreeBlocks() != 8 {
		t.Fatalf("after Reset: idle=%v free=%d", s.Idle(), s.KVFreeBlocks())
	}
	// A fresh workload on the recycled scheduler behaves like new.
	w2 := &queue{reqs: []req{{id: 9, prompt: 16, output: 2}}}
	tokens, done := drive(t, s, w2, 50)
	if len(tokens[9]) != 2 || len(done) != 1 {
		t.Fatalf("recycled scheduler: tokens=%v done=%v", tokens, done)
	}
}

// TestBlockConservationUnderChurn drives a tight pool hard and checks
// the KV invariant after every round: blocks held by running sequences
// plus free blocks always equals the pool size.
func TestBlockConservationUnderChurn(t *testing.T) {
	s := New[req](Params{BatchTokens: 24, KVBlocks: 5, ChunkedPrefill: true})
	w := &queue{}
	for i := 0; i < 12; i++ {
		w.reqs = append(w.reqs, req{id: i, prompt: 10 + (i*7)%40, output: 5 + (i*3)%25})
	}
	completed := 0
	for round := 0; round < 5000; round++ {
		it, err := s.Plan(w.peek, w.pop)
		if err != nil {
			t.Fatal(err)
		}
		if it.Empty() {
			break
		}
		s.Finish(func(req, int) {}, func(req) { completed++ })
		held := 0
		for _, q := range s.running {
			held += kvcache.BlocksForTokens(s.kv.SeqLen(q.id))
		}
		if held+s.kv.NumFreeBlocks() != 5 {
			t.Fatalf("round %d: %d held + %d free != 5", round, held, s.kv.NumFreeBlocks())
		}
	}
	if completed != 12 {
		t.Fatalf("completed %d of 12", completed)
	}
}
