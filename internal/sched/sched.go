// Package sched implements an iteration-level continuous-batching
// scheduler in the style of vLLM/Orca, layered on the paged KV cache
// of internal/kvcache. Each scheduling round ("iteration") admits
// waiting sequences up to a token budget, optionally splitting long
// prompts into chunks so prefills do not stall running decodes,
// advances every decoding sequence by one token, and — when the KV
// block pool is exhausted — preempts the lowest-id victim, releasing
// its blocks for recompute-on-resume.
//
// The scheduler is deliberately simulation-agnostic: it knows about
// tokens and blocks, not about virtual time or cost models. The
// serverless and cluster event loops call Plan at iteration start,
// price the returned prefill chunks and decode batch with the engine
// cost model, and call Finish when the priced interval elapses.
// Everything the scheduler does is a deterministic function of the
// call sequence: sequences carry monotonically assigned ids, all
// internal collections are slices or FIFO rings walked in order, and
// the KV manager's free list is restored byte-for-byte on rollback —
// so a fixed seed yields byte-identical schedules across runs and
// GOMAXPROCS settings.
package sched

import (
	"fmt"

	"github.com/medusa-repro/medusa/internal/eventq"
	"github.com/medusa-repro/medusa/internal/kvcache"
)

// Params configures one scheduler instance. The zero value disables
// batched execution (Enabled reports false), which is how the
// simulators keep their legacy whole-request admission path
// byte-identical when no batching knobs are set.
type Params struct {
	// BatchTokens is the per-iteration token budget (vLLM
	// max_num_batched_tokens). Every decoding sequence consumes one
	// budget token; the remainder is available for prefill chunks.
	// A value > 0 enables batched execution.
	BatchTokens int
	// KVBlocks sizes the paged KV pool in blocks of
	// kvcache.TokensPerBlock tokens. 0 lets the simulator derive it
	// from the instance profile's measured KV capacity.
	KVBlocks int
	// MaxSeqs caps concurrently running sequences (vLLM max_num_seqs).
	// 0 means unlimited.
	MaxSeqs int
	// ChunkedPrefill splits prompts across iterations so a long
	// prefill cannot monopolize the token budget; without it a prompt
	// is admitted whole, waiting for an iteration with no other
	// prefill when it exceeds the budget.
	ChunkedPrefill bool
}

// Enabled reports whether the parameters select batched execution.
func (p Params) Enabled() bool { return p.BatchTokens > 0 }

// State is a sequence's position in the scheduler's lifecycle.
type State int

// Scheduler lifecycle states. A sequence enters Waiting on admission
// to the scheduler's queue, moves to Prefilling when its first chunk
// is planned, to Decoding when its prefill target is reached, and to
// Finished when its last token is emitted. Preemption sends a
// Decoding or Prefilling sequence back to Waiting with its KV blocks
// released (recompute on resume).
const (
	StateWaiting State = iota
	StatePrefilling
	StateDecoding
	StateFinished
)

// String names the state for spans and debugging.
func (s State) String() string {
	switch s {
	case StateWaiting:
		return "waiting"
	case StatePrefilling:
		return "prefilling"
	case StateDecoding:
		return "decoding"
	case StateFinished:
		return "finished"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Seq is one sequence under scheduler management. Data carries the
// caller's request state; everything else is scheduler-owned.
type Seq[T any] struct {
	// Data is the caller's payload (the simulators store their
	// per-request state here).
	Data T

	id      uint64
	prompt  int // original prompt length in tokens
	output  int // tokens to generate
	target  int // prefill target: prompt + tokens to recompute after preemption
	filled  int // tokens prefilled toward target
	emitted int // tokens emitted so far (survives preemption)
	planned int // tokens planned for the in-flight iteration (0 = idle)
	state   State
	// preemptions counts how many times this sequence was evicted.
	preemptions int
}

// ID is the sequence's scheduler-assigned monotone id — the preemption
// policy's victim ordering key.
func (q *Seq[T]) ID() uint64 { return q.id }

// State reports the sequence's lifecycle state.
func (q *Seq[T]) State() State { return q.state }

// Emitted reports how many tokens the sequence has emitted.
func (q *Seq[T]) Emitted() int { return q.emitted }

// Preemptions reports how many times the sequence was preempted.
func (q *Seq[T]) Preemptions() int { return q.preemptions }

// Chunk is one planned prefill slice: Tokens of Seq's prompt (or
// recompute prefix) processed this iteration.
type Chunk[T any] struct {
	// Seq is the sequence the chunk belongs to.
	Seq *Seq[T]
	// Tokens is how many prompt tokens this chunk processes.
	Tokens int
}

// Iteration describes the work one scheduling round planned. Its
// slices alias scheduler-internal scratch buffers and are valid until
// the next Plan call.
type Iteration[T any] struct {
	// Chunks lists the prefill work, in admission order.
	Chunks []Chunk[T]
	// Decode lists the sequences advancing one decode step, in
	// running order.
	Decode []*Seq[T]
	// Admitted lists sequences newly admitted from the caller's queue
	// this round (resumed preemption victims are not re-listed).
	Admitted []*Seq[T]
	// Preemptions counts victims evicted while planning this round.
	Preemptions int
}

// Empty reports whether the round planned no work at all.
func (it Iteration[T]) Empty() bool { return len(it.Chunks) == 0 && len(it.Decode) == 0 }

// PrefillTokens sums the planned chunk sizes.
func (it Iteration[T]) PrefillTokens() int {
	n := 0
	for _, c := range it.Chunks {
		n += c.Tokens
	}
	return n
}

// Scheduler is one instance's iteration-level scheduler. It is not
// safe for concurrent use; the event loops serialize access.
type Scheduler[T any] struct {
	params Params
	kv     *kvcache.Manager
	nextID uint64

	// running holds Prefilling and Decoding sequences in admission
	// order (resumed victims re-enter at the tail, so the order is not
	// id-sorted; victim choice scans for the minimum id).
	running []*Seq[T]
	// preempted queues evicted sequences for resume, FIFO, ahead of
	// any new admission.
	preempted eventq.Deque[*Seq[T]]

	// Free-list of recycled Seq objects (PR 6 pooling idiom: steady
	// state allocates O(active sequences), not O(total)).
	freeSeqs []*Seq[T]

	// Iteration scratch, reused across rounds.
	chunks   []Chunk[T]
	decode   []*Seq[T]
	admitted []*Seq[T]
}

// New returns a scheduler over a fresh KV pool of p.KVBlocks blocks.
// Enabled parameters are required: callers gate on p.Enabled().
func New[T any](p Params) *Scheduler[T] {
	s := &Scheduler[T]{}
	s.Reset(p)
	return s
}

// Reset reinitializes the scheduler for a new instance, reusing the
// KV manager when the pool size is unchanged — the free-list idiom
// that lets the simulators recycle scheduler state with instance
// state.
func (s *Scheduler[T]) Reset(p Params) {
	s.params = p
	if s.kv == nil || s.kv.NumBlocks() != p.KVBlocks {
		s.kv = kvcache.NewManager(p.KVBlocks)
	} else {
		s.kv.Reset()
	}
	s.nextID = 0
	for _, q := range s.running {
		s.recycle(q)
	}
	s.running = s.running[:0]
	for s.preempted.Len() > 0 {
		s.recycle(s.preempted.PopFront())
	}
	s.chunks = s.chunks[:0]
	s.decode = s.decode[:0]
	s.admitted = s.admitted[:0]
}

// Running reports the number of sequences in the Prefilling or
// Decoding state.
func (s *Scheduler[T]) Running() int { return len(s.running) }

// PreemptedWaiting reports the number of evicted sequences awaiting
// resume.
func (s *Scheduler[T]) PreemptedWaiting() int { return s.preempted.Len() }

// Idle reports whether the scheduler holds no sequences at all.
func (s *Scheduler[T]) Idle() bool { return len(s.running) == 0 && s.preempted.Len() == 0 }

// KVFreeBlocks exposes the KV pool's free-block count (observability).
func (s *Scheduler[T]) KVFreeBlocks() int { return s.kv.NumFreeBlocks() }

// newSeq returns a zeroed sequence from the free-list.
func (s *Scheduler[T]) newSeq() *Seq[T] {
	if n := len(s.freeSeqs); n > 0 {
		q := s.freeSeqs[n-1]
		s.freeSeqs = s.freeSeqs[:n-1]
		return q
	}
	return &Seq[T]{}
}

// recycle zeroes a sequence (releasing the Data pointer promptly) and
// returns it to the free-list.
func (s *Scheduler[T]) recycle(q *Seq[T]) {
	*q = Seq[T]{}
	s.freeSeqs = append(s.freeSeqs, q)
}

// lowestRunning returns the running sequence with the smallest id —
// the deterministic preemption victim.
func (s *Scheduler[T]) lowestRunning() *Seq[T] {
	var victim *Seq[T]
	for _, q := range s.running {
		if victim == nil || q.id < victim.id {
			victim = q
		}
	}
	return victim
}

// preempt evicts a running sequence: its KV blocks are released, its
// prefill target grows to cover recomputing the tokens it had already
// generated, and it queues for resume ahead of new admissions.
func (s *Scheduler[T]) preempt(victim *Seq[T]) {
	s.kv.Release(victim.id)
	victim.state = StateWaiting
	victim.target = victim.prompt + victim.emitted
	victim.filled = 0
	victim.planned = 0
	victim.preemptions++
	for i, q := range s.running {
		if q == victim {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	s.preempted.PushBack(victim)
}

// maxFitTokens returns how many more tokens a sequence can grow by
// without exhausting the KV pool: the slack in its last block plus
// every free block.
func (s *Scheduler[T]) maxFitTokens(q *Seq[T]) int {
	held := s.kv.SeqLen(q.id)
	slack := kvcache.BlocksForTokens(held)*kvcache.TokensPerBlock - held
	return slack + s.kv.NumFreeBlocks()*kvcache.TokensPerBlock
}

// Plan runs one scheduling round. peek reports the head of the
// caller's waiting queue (prompt and output token counts); pop
// removes it, returning the payload — the scheduler only pops what it
// admits. The returned Iteration is the work to price and execute;
// Finish applies it. Plan returns an error when a single sequence
// cannot fit in the KV pool even alone — a configuration error, since
// no preemption schedule can serve it.
func (s *Scheduler[T]) Plan(peek func() (prompt, output int, ok bool), pop func() T) (Iteration[T], error) {
	s.chunks = s.chunks[:0]
	s.admitted = s.admitted[:0]
	preemptions := 0

	// Phase 1 — decode reservations, atomically for the whole decode
	// batch: every Decoding sequence extends by one token. On
	// exhaustion the whole reservation rolls back (restoring the
	// free list byte-for-byte), the lowest-id running sequence is
	// evicted, and the batch retries over the survivors. The retry
	// terminates: each pass shrinks the running set by one.
	for {
		s.decode = s.decode[:0]
		ok := true
		for _, q := range s.running {
			if q.state != StateDecoding {
				continue
			}
			if err := s.kv.Reserve(q.id, 1); err != nil {
				s.kv.Rollback()
				s.preempt(s.lowestRunning())
				preemptions++
				ok = false
				break
			}
			s.decode = append(s.decode, q)
		}
		if ok {
			s.kv.Commit()
			break
		}
	}
	for _, q := range s.decode {
		q.planned = 1
	}

	// Phases 2–3 plan prefill work. When every running sequence is a
	// stalled prefill (no chunk fit, no decode), evicting the lowest
	// victim frees blocks so the round makes progress; the loop
	// terminates because the running set shrinks each pass, and an
	// empty running set always admits the queue head (a lone
	// sequence's whole lifetime fits the pool by the admission check).
	for {
		budget := s.params.BatchTokens - len(s.decode)
		budget = s.continuePrefills(budget)
		if err := s.admitWaiting(budget, peek, pop); err != nil {
			return Iteration[T]{}, err
		}
		if len(s.chunks) > 0 || len(s.decode) > 0 || len(s.running) == 0 {
			break
		}
		s.preempt(s.lowestRunning())
		preemptions++
	}

	return Iteration[T]{
		Chunks:      s.chunks,
		Decode:      s.decode,
		Admitted:    s.admitted,
		Preemptions: preemptions,
	}, nil
}

// continuePrefills plans the next chunk of every mid-prefill sequence
// (chunked mode; whole-prompt admission never leaves a sequence
// Prefilling across rounds) and returns the remaining budget.
func (s *Scheduler[T]) continuePrefills(budget int) int {
	for _, q := range s.running {
		if q.state != StatePrefilling || budget <= 0 {
			continue
		}
		chunk := q.target - q.filled
		if s.params.ChunkedPrefill && chunk > budget {
			chunk = budget
		}
		if fit := s.maxFitTokens(q); chunk > fit {
			// Not enough blocks: take what fits (chunked) or stall.
			if !s.params.ChunkedPrefill {
				continue
			}
			chunk = fit
		}
		if chunk <= 0 || (!s.params.ChunkedPrefill && chunk > budget) {
			continue
		}
		if s.kv.Reserve(q.id, chunk) != nil {
			s.kv.Rollback()
			continue
		}
		s.kv.Commit()
		q.planned = chunk
		s.chunks = append(s.chunks, Chunk[T]{Seq: q, Tokens: chunk})
		budget -= chunk
	}
	return budget
}

// admitWaiting fills the remaining budget with resumed preemption
// victims first (FIFO — they arrived before anything still queued),
// then new sequences popped from the caller's queue.
func (s *Scheduler[T]) admitWaiting(budget int, peek func() (int, int, bool), pop func() T) error {
	for s.preempted.Len() > 0 && budget > 0 && s.roomForSeq() {
		q := s.preempted.Front()
		chunk, ok := s.admissionChunk(q.target, budget)
		if !ok || s.kv.Reserve(q.id, chunk) != nil {
			s.kv.Rollback()
			break // head-of-line: wait for completions to free blocks
		}
		s.kv.Commit()
		s.preempted.PopFront()
		q.state = StatePrefilling
		q.planned = chunk
		q.filled = 0
		s.running = append(s.running, q)
		s.chunks = append(s.chunks, Chunk[T]{Seq: q, Tokens: chunk})
		budget -= chunk
	}
	for s.preempted.Len() == 0 && budget > 0 && s.roomForSeq() {
		prompt, output, ok := peek()
		if !ok {
			break
		}
		if need := kvcache.BlocksForTokens(prompt + output); need > s.kv.NumBlocks() {
			return fmt.Errorf("sched: sequence needs %d KV blocks (prompt %d + output %d tokens), pool has %d",
				need, prompt, output, s.kv.NumBlocks())
		}
		q := s.newSeq()
		q.id = s.nextID
		chunk, ok := s.admissionChunk(prompt, budget)
		if !ok || s.kv.Reserve(q.id, chunk) != nil {
			s.kv.Rollback()
			s.recycle(q)
			break
		}
		s.kv.Commit()
		s.nextID++
		q.Data = pop()
		q.prompt = prompt
		q.output = output
		q.target = prompt
		q.filled = 0
		q.emitted = 0
		q.state = StatePrefilling
		q.planned = chunk
		s.running = append(s.running, q)
		s.chunks = append(s.chunks, Chunk[T]{Seq: q, Tokens: chunk})
		s.admitted = append(s.admitted, q)
		budget -= chunk
	}
	return nil
}

// Drain evicts every sequence from the scheduler — running order
// first, then queued preemption victims — invoking fn with each
// payload and releasing its KV blocks. The cluster simulator uses it
// for node-crash recovery: the caller requeues the payloads onto the
// deployment's pending queue for surviving instances to re-admit.
func (s *Scheduler[T]) Drain(fn func(data T)) {
	for _, q := range s.running {
		s.kv.Release(q.id)
		fn(q.Data)
		s.recycle(q)
	}
	s.running = s.running[:0]
	for s.preempted.Len() > 0 {
		q := s.preempted.PopFront()
		fn(q.Data)
		s.recycle(q)
	}
}

// roomForSeq reports whether MaxSeqs allows another running sequence.
func (s *Scheduler[T]) roomForSeq() bool {
	return s.params.MaxSeqs == 0 || len(s.running) < s.params.MaxSeqs
}

// admissionChunk sizes a sequence's first chunk under the remaining
// budget and KV free space. In chunked mode any positive slice is
// admissible; whole-prompt mode requires the full target within
// budget, except that the round's first prefill may exceed the budget
// (otherwise a prompt longer than BatchTokens could never be served).
func (s *Scheduler[T]) admissionChunk(target, budget int) (int, bool) {
	fit := s.kv.NumFreeBlocks() * kvcache.TokensPerBlock
	if s.params.ChunkedPrefill {
		chunk := target
		if chunk > budget {
			chunk = budget
		}
		if chunk > fit {
			chunk = fit
		}
		if chunk <= 0 {
			return 0, false
		}
		return chunk, true
	}
	if target > fit {
		return 0, false
	}
	if target > budget && len(s.chunks) > 0 {
		return 0, false
	}
	return target, true
}

// Finish applies a planned round after the caller has priced and
// elapsed it: prefilled chunks advance toward their targets, a
// completed prefill emits the sequence's first token (recomputed
// resumes emit their next token), and every decoded sequence emits
// one more. emit observes each token (data, tokens emitted so far);
// done observes each completed sequence after its final token, just
// before its KV blocks release and its state recycles. Both callbacks
// fire in running order — the deterministic metric-recording order.
func (s *Scheduler[T]) Finish(emit func(data T, emitted int), done func(data T)) {
	keep := s.running[:0]
	for _, q := range s.running {
		if q.planned == 0 { // stalled prefill: no work this round
			keep = append(keep, q)
			continue
		}
		if q.state == StatePrefilling {
			q.filled += q.planned
			q.planned = 0
			if q.filled < q.target {
				keep = append(keep, q)
				continue
			}
			q.state = StateDecoding
		} else {
			q.planned = 0
		}
		q.emitted++
		emit(q.Data, q.emitted)
		if q.emitted >= q.output {
			q.state = StateFinished
			s.kv.Release(q.id)
			done(q.Data)
			s.recycle(q)
			continue
		}
		keep = append(keep, q)
	}
	s.running = keep
}
