package cluster

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/sched"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// batchSmokeBudget bounds the 100k-request batched smoke's wall clock.
// Batched iterations do more bookkeeping per virtual step than the
// legacy admission path, but the run still finishes in seconds on the
// development machine; the budget absorbs slow CI hosts.
const batchSmokeBudget = 90 * time.Second

// maxAllocsPerBatchedRequest reads the checked-in allocs/request
// ceiling for batched execution mode.
func maxAllocsPerBatchedRequest(t *testing.T) float64 {
	t.Helper()
	raw, err := os.ReadFile("testdata/max_allocs_per_request_batched")
	if err != nil {
		t.Fatal(err)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("testdata/max_allocs_per_request_batched: %v", err)
	}
	return v
}

// TestBatchSmoke100k streams one hundred thousand requests through a
// two-node Zipf fleet in batched execution mode under a wall-clock
// budget and an allocs/request ceiling — the pooled per-request and
// per-sequence state must hold at scale exactly like the legacy path.
// It runs from `make batch-smoke` (gated on MEDUSA_BATCH_SMOKE so
// ordinary `go test ./...` stays fast).
func TestBatchSmoke100k(t *testing.T) {
	if os.Getenv("MEDUSA_BATCH_SMOKE") == "" {
		t.Skip("set MEDUSA_BATCH_SMOKE=1 to run the 100k-request batched smoke (make batch-smoke)")
	}
	models := fixtureModels[:2]
	deps := make([]serverless.Deployment, 0, len(models))
	for i, name := range models {
		dcfg := idleOut(medusaDeployment(t, name, int64(i+1)), 500*time.Millisecond)
		dcfg.Scheduler.Batch = sched.Params{BatchTokens: 512, KVBlocks: 96, ChunkedPrefill: true}
		deps = append(deps, serverless.Deployment{Name: name, Config: dcfg})
	}
	// Prompts clamp to 512 tokens so the largest request needs 34 KV
	// blocks — admissible against the 96-block pool, tight enough that
	// concurrent decodes still preempt.
	src, err := workload.NewPoisson(workload.TraceConfig{
		Seed: 97, RPS: 700, Duration: 150 * time.Second,
		MaxPrompt: 512, MeanOutput: 8, MaxOutput: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := ZipfArrivals(src, len(deps), 43, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Nodes: 2, GPUsPerNode: 8, Seed: 7,
		Deployments: deps,
		Arrivals:    arrivals,
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := Run(cfg)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}

	completed, preempted := 0, 0
	for _, d := range res.PerDeployment {
		completed += d.Completed
		preempted += d.Preemptions
	}
	if completed < 100_000 {
		t.Fatalf("completed %d requests, want ≥ 100k (workload mis-sized)", completed)
	}
	if elapsed > batchSmokeBudget {
		t.Fatalf("100k-request batched run took %v, budget %v", elapsed, batchSmokeBudget)
	}
	allocsPerReq := float64(after.Mallocs-before.Mallocs) / float64(completed)
	if limit := maxAllocsPerBatchedRequest(t); allocsPerReq > limit {
		t.Fatalf("allocs/request = %.2f exceeds checked-in threshold %.2f "+
			"(testdata/max_allocs_per_request_batched); if the regression is intentional, update the threshold deliberately",
			allocsPerReq, limit)
	}
	t.Logf("completed %d requests in %v (%.2f allocs/request, %d preemptions, %d cold starts)",
		completed, elapsed, allocsPerReq, preempted, res.TotalColdStarts)
}
