package cluster

import (
	"os"
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/autoscale"
	"github.com/medusa-repro/medusa/internal/router"
	"github.com/medusa-repro/medusa/internal/sched"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// fleetSmokeBudget bounds the 100k-request control-plane smoke's wall
// clock. The run finishes in seconds on the development machine; the
// budget absorbs slow CI hosts.
const fleetSmokeBudget = 90 * time.Second

// TestFleetSmoke100k drives the full fleet control plane — predictive
// autoscaling with retention, score routing, SLO accounting — through
// a seeded ~100k-request diurnal multi-tenant workload, and asserts
// the serving outcome stays inside checked bounds: SLO attainment high
// enough that the control plane is demonstrably scheduling (not
// timing out the fleet), node-seconds inside the physical ceiling of
// nodes × makespan, and the whole run under a wall-clock budget. It
// runs from `make fleet-smoke` (gated on MEDUSA_FLEET_SMOKE so
// ordinary `go test ./...` stays fast).
func TestFleetSmoke100k(t *testing.T) {
	if os.Getenv("MEDUSA_FLEET_SMOKE") == "" {
		t.Skip("set MEDUSA_FLEET_SMOKE=1 to run the 100k-request control-plane smoke (make fleet-smoke)")
	}
	srcs, err := workload.DiurnalFleet(workload.DiurnalConfig{
		Seed: 701, BaseRPS: 440, Amplitude: 0.8, Period: 60 * time.Second,
		BurstFactor: 2, MeanBurst: 5 * time.Second, MeanCalm: 15 * time.Second,
		Duration:  180 * time.Second,
		MaxPrompt: 512, MeanOutput: 8, MaxOutput: 16,
	}, 2, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	models := fixtureModels[:2]
	deps := make([]serverless.Deployment, 0, len(models))
	for i, name := range models {
		dcfg := idleOut(medusaDeployment(t, name, int64(i+1)), 2*time.Second)
		dcfg.Scheduler.Batch = sched.Params{BatchTokens: 512, KVBlocks: 256, ChunkedPrefill: true}
		deps = append(deps, serverless.Deployment{Name: name, Config: dcfg, Source: srcs[i]})
	}
	scaler, err := autoscale.NewPredictive(autoscale.PredictiveConfig{Window: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	route, err := router.Parse("score")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Nodes: 4, GPUsPerNode: 8, Seed: 7,
		Deployments: deps,
		Autoscaler:  scaler,
		Router:      route,
		SLO:         serverless.SLO{TTFT: time.Second, TPOT: 250 * time.Millisecond},
	}

	start := time.Now()
	res, err := Run(cfg)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 100_000 {
		t.Fatalf("completed %d requests, want ≥ 100k (workload mis-sized)", res.Completed)
	}
	if elapsed > fleetSmokeBudget {
		t.Fatalf("100k-request control-plane run took %v, budget %v", elapsed, fleetSmokeBudget)
	}
	if att := res.SLOAttainment(); att < 0.90 {
		t.Fatalf("SLO attainment %.4f below the 0.90 floor — the control plane stopped keeping up", att)
	}
	// Makespan ends at the last completion, but idle instances retire on
	// their timeouts (and the retention veto holds some a little longer)
	// after it — allow one retention window of drain per node on top.
	drain := res.Makespan + 10*time.Second
	ceiling := float64(cfg.Nodes) * drain.Seconds()
	if res.NodeSeconds <= 0 || res.NodeSeconds > ceiling {
		t.Fatalf("node-seconds %.3f outside (0, nodes × (makespan+drain) = %.3f]", res.NodeSeconds, ceiling)
	}
	t.Logf("completed %d requests in %v (attainment %.4f, node-seconds %.1f, %d cold starts)",
		res.Completed, elapsed, res.SLOAttainment(), res.NodeSeconds, res.TotalColdStarts)
}
