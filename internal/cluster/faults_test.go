package cluster

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/faults"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// faultConfig is churnConfig plus a fault plan and two Medusa
// deployments whose relaunch churn gives the injector plenty of draws.
func faultConfig(t *testing.T, plan *faults.Plan) Config {
	cfg := churnConfig(artifactcache.PolicyLRU)
	cfg.Faults = serverless.FaultSpec{Plan: plan}
	cfg.Deployments = []serverless.Deployment{
		{Name: "a", Config: idleOut(medusaDeployment(t, "Qwen1.5-0.5B", 1), 250*time.Millisecond),
			Requests: genTrace(t, 31, 2, 15)},
		{Name: "b", Config: idleOut(medusaDeployment(t, "Llama2-7B", 2), 250*time.Millisecond),
			Requests: genTrace(t, 32, 1, 15)},
	}
	return cfg
}

func submittedOf(cfg Config) int {
	n := 0
	for _, d := range cfg.Deployments {
		n += len(d.Requests)
	}
	return n
}

// TestClusterFaultsSurvivable is the tentpole acceptance check: under a
// plan that fires every site plus a node crash, no injected fault
// aborts the run and every submitted request completes.
func TestClusterFaultsSurvivable(t *testing.T) {
	plan := &faults.Plan{
		Seed:            9,
		ArtifactCorrupt: faults.SiteSpec{Probability: 0.2},
		RegistryTimeout: faults.SiteSpec{Probability: 0.2},
		SSDRead:         faults.SiteSpec{Probability: 0.2},
		RestoreMismatch: faults.SiteSpec{Probability: 0.2},
		NodeCrashes:     []faults.NodeCrash{{Node: 1, At: faults.Duration(4 * time.Second)}},
	}
	cfg := faultConfig(t, plan)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("injected faults must degrade, not abort: %v", err)
	}

	// Conservation: everything submitted completes, despite degradations,
	// requeues and a dead node.
	total := 0
	for _, d := range res.PerDeployment {
		total += d.Completed
	}
	if want := submittedOf(cfg); total != want {
		t.Fatalf("completed %d of %d submitted", total, want)
	}
	if res.NodeCrashes != 1 || !res.PerNode[1].Crashed {
		t.Fatalf("crash plan not applied: crashes %d, node1 crashed %v",
			res.NodeCrashes, res.PerNode[1].Crashed)
	}
	if res.Degraded == 0 {
		t.Fatal("p=0.2 on every site produced no degraded launches")
	}
	agg := 0
	for _, d := range res.PerDeployment {
		agg += d.Degraded
		sum := int(d.Metrics.Counter("degraded_"+faults.ReasonCorruptArtifact).Value()) +
			int(d.Metrics.Counter("degraded_"+faults.ReasonRestoreMismatch).Value()) +
			int(d.Metrics.Counter("degraded_"+faults.ReasonFetchTimeout).Value()) +
			int(d.Metrics.Counter("degraded_"+faults.ReasonSSDReadFailed).Value())
		if sum != d.Degraded {
			t.Fatalf("deployment %s: per-reason counters sum to %d, Degraded %d", d.Name, sum, d.Degraded)
		}
	}
	if agg != res.Degraded {
		t.Fatalf("per-deployment degraded sum %d != cluster total %d", agg, res.Degraded)
	}
	// Every launch made exactly one cache request — a hit, miss,
	// coalesced join or timeout — even the ones lost to the crash.
	if res.Cache.Requests() != res.TotalColdStarts {
		t.Fatalf("cache requests %d != cold starts %d (stats %+v)",
			res.Cache.Requests(), res.TotalColdStarts, res.Cache)
	}
	// Phase attribution stays exact with restore_failed intervals mixed in.
	for _, d := range res.PerDeployment {
		if drift := d.ColdStartPhases.Total() - d.ColdStartTotal; drift != 0 {
			t.Fatalf("deployment %s: phase attribution drifted by %v under faults", d.Name, drift)
		}
	}
	if !strings.Contains(res.Render(), "faults: degraded") {
		t.Fatalf("render missing fault section:\n%s", res.Render())
	}
}

// TestClusterFaultsDeterministic locks the determinism contract: fixed
// seed and plan render byte-identical Results and Chrome exports across
// repetitions and GOMAXPROCS settings.
func TestClusterFaultsDeterministic(t *testing.T) {
	plan := &faults.Plan{
		Seed:            3,
		ArtifactCorrupt: faults.SiteSpec{Probability: 0.15},
		RegistryTimeout: faults.SiteSpec{Probability: 0.15},
		SSDRead:         faults.SiteSpec{Probability: 0.15},
		RestoreMismatch: faults.SiteSpec{Probability: 0.15},
		NodeCrashes:     []faults.NodeCrash{{Node: 0, At: faults.Duration(6 * time.Second)}},
	}
	run := func() (string, string) {
		cfg := faultConfig(t, plan)
		tr := obsTracer()
		cfg.Tracer = tr.tracer
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render() + res.Metrics.Render(), tr.chrome(t)
	}
	r1, c1 := run()
	for rep := 0; rep < 2; rep++ {
		r, c := run()
		if r != r1 {
			t.Fatalf("rep %d: rendered results differ:\n--- run1\n%s\n--- rep\n%s", rep, r1, r)
		}
		if c != c1 {
			t.Fatalf("rep %d: chrome exports differ", rep)
		}
	}
	prev := runtime.GOMAXPROCS(1)
	r, c := run()
	runtime.GOMAXPROCS(prev)
	if r != r1 || c != c1 {
		t.Fatal("fault-injected run differs under GOMAXPROCS=1")
	}
}

// TestClusterEmptyPlanBitIdentical pins the zero-plan contract: a nil
// plan and an explicit zero plan render byte-identical output, with no
// fault lines.
func TestClusterEmptyPlanBitIdentical(t *testing.T) {
	run := func(plan *faults.Plan) (string, string) {
		cfg := faultConfig(t, plan)
		tr := obsTracer()
		cfg.Tracer = tr.tracer
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render() + res.Metrics.Render(), tr.chrome(t)
	}
	rNil, cNil := run(nil)
	rZero, cZero := run(&faults.Plan{})
	if rNil != rZero || cNil != cZero {
		t.Fatalf("zero plan changed output:\n--- nil\n%s\n--- zero\n%s", rNil, rZero)
	}
	if strings.Contains(rNil, "degraded") || strings.Contains(rNil, "faults:") {
		t.Fatalf("fault-free render leaks fault lines:\n%s", rNil)
	}
}

// TestClusterAllFetchesTimeOut drives the harshest registry outage:
// every fetch attempt times out, so every artifact launch must degrade
// — and still serve every request.
func TestClusterAllFetchesTimeOut(t *testing.T) {
	plan := &faults.Plan{RegistryTimeout: faults.SiteSpec{Every: 1}}
	cfg := faultConfig(t, plan)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("total registry outage must degrade, not abort: %v", err)
	}
	total := 0
	for _, d := range res.PerDeployment {
		total += d.Completed
		if d.Degraded != d.ColdStarts {
			t.Fatalf("deployment %s: %d of %d launches degraded; total outage should degrade all",
				d.Name, d.Degraded, d.ColdStarts)
		}
		if got := int(d.Metrics.Counter("degraded_" + faults.ReasonFetchTimeout).Value()); got != d.Degraded {
			t.Fatalf("deployment %s: degraded_fetch_timeout %d != degraded %d", d.Name, got, d.Degraded)
		}
	}
	if want := submittedOf(cfg); total != want {
		t.Fatalf("completed %d of %d submitted", total, want)
	}
	if res.Cache.TimedOut != res.TotalColdStarts {
		t.Fatalf("timed out %d != cold starts %d", res.Cache.TimedOut, res.TotalColdStarts)
	}
}

// TestClusterCrashRequeues kills a node mid-run and checks the requeue
// accounting: the crash is recorded, in-flight work is requeued or
// written off, and conservation still holds.
func TestClusterCrashRequeues(t *testing.T) {
	plan := &faults.Plan{NodeCrashes: []faults.NodeCrash{{Node: 0, At: faults.Duration(3 * time.Second)}}}
	cfg := faultConfig(t, plan)
	// Long generations guarantee the crash lands on a running batch:
	// thousands of decode iterations span the 3s crash instant.
	long := []workload.Request{
		{ID: 0, Arrival: 0, PromptTokens: 64, OutputTokens: 4000},
		{ID: 1, Arrival: 200 * time.Millisecond, PromptTokens: 128, OutputTokens: 4000},
	}
	cfg.Deployments = []serverless.Deployment{
		{Name: "a", Config: medusaDeployment(t, "Qwen1.5-0.5B", 1), Requests: long},
		{Name: "b", Config: medusaDeployment(t, "Llama2-7B", 2), Requests: genTrace(t, 34, 2, 10)},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range res.PerDeployment {
		total += d.Completed
	}
	if want := submittedOf(cfg); total != want {
		t.Fatalf("completed %d of %d submitted after crash", total, want)
	}
	if res.NodeCrashes != 1 || !res.PerNode[0].Crashed || res.PerNode[1].Crashed {
		t.Fatalf("crash accounting wrong: %d crashes, node0 %v node1 %v",
			res.NodeCrashes, res.PerNode[0].Crashed, res.PerNode[1].Crashed)
	}
	if res.Requeued == 0 {
		t.Fatal("a 3s crash into a 15s busy trace should requeue running requests")
	}
	// Without probabilistic sites, no launch degrades: the crash only
	// re-places work.
	if res.Degraded != 0 {
		t.Fatalf("crash-only plan degraded %d launches", res.Degraded)
	}
}

// templated converts a Medusa deployment to the template-factored
// form: its artifact re-encodes as a v3 delta against a per-family
// template (here built from the deployment's own artifact — the
// smallest valid fleet), so cold fetches pull template+delta and the
// template fault sites are armed.
func templated(t testing.TB, cfg serverless.Config) serverless.Config {
	t.Helper()
	tmpl, err := medusa.BuildTemplate(engine.TemplateKey(cfg.Model.Family), cfg.Cache.Artifact)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache.Template = tmpl
	cfg.Cache.ArtifactBytes = 0 // recompute on demand: delta bytes, not the v2 size
	return cfg
}

// templateFaultConfig is faultConfig with every deployment
// template-factored.
func templateFaultConfig(t *testing.T, plan *faults.Plan) Config {
	cfg := faultConfig(t, plan)
	for i := range cfg.Deployments {
		cfg.Deployments[i].Config = templated(t, cfg.Deployments[i].Config)
	}
	return cfg
}

// TestClusterTemplateMissingDegrades pins satellite 4's fault contract:
// when the shared template is absent from the registry, every launch
// degrades to a vanilla cold start — after one wasted registry round
// trip — and the run completes instead of aborting.
func TestClusterTemplateMissingDegrades(t *testing.T) {
	plan := &faults.Plan{TemplateMissing: faults.SiteSpec{Every: 1}}
	cfg := templateFaultConfig(t, plan)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("missing template must degrade to vanilla cold start, not abort: %v", err)
	}
	total := 0
	for _, d := range res.PerDeployment {
		total += d.Completed
		if d.ColdStarts == 0 {
			t.Fatalf("deployment %s never cold-started", d.Name)
		}
		if d.Degraded != d.ColdStarts {
			t.Fatalf("deployment %s: %d of %d launches degraded; a missing template should degrade all",
				d.Name, d.Degraded, d.ColdStarts)
		}
		if got := int(d.Metrics.Counter("degraded_" + faults.ReasonTemplateMissing).Value()); got != d.Degraded {
			t.Fatalf("deployment %s: degraded_template_missing %d != degraded %d", d.Name, got, d.Degraded)
		}
		// Phase attribution stays exact with the injected registry
		// round trip mixed in.
		if drift := d.ColdStartPhases.Total() - d.ColdStartTotal; drift != 0 {
			t.Fatalf("deployment %s: phase attribution drifted by %v", d.Name, drift)
		}
	}
	if want := submittedOf(cfg); total != want {
		t.Fatalf("completed %d of %d submitted", total, want)
	}
}

// TestClusterCorruptTemplateDegrades drives SiteArtifactCorrupt against
// the template key: the fetched template fails its checksum, the cached
// copy is discarded, and the launch falls back to a vanilla cold start.
func TestClusterCorruptTemplateDegrades(t *testing.T) {
	plan := &faults.Plan{ArtifactCorrupt: faults.SiteSpec{Every: 1}}
	cfg := templateFaultConfig(t, plan)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("corrupt template must degrade, not abort: %v", err)
	}
	total := 0
	for _, d := range res.PerDeployment {
		total += d.Completed
		if d.Degraded != d.ColdStarts {
			t.Fatalf("deployment %s: %d of %d launches degraded", d.Name, d.Degraded, d.ColdStarts)
		}
		// On a templated deployment the corrupt draw lands on the
		// template before the delta, so every degradation is
		// template_corrupt, not corrupt_artifact.
		if got := int(d.Metrics.Counter("degraded_" + faults.ReasonCorruptTemplate).Value()); got != d.Degraded {
			t.Fatalf("deployment %s: degraded_template_corrupt %d != degraded %d", d.Name, got, d.Degraded)
		}
	}
	if want := submittedOf(cfg); total != want {
		t.Fatalf("completed %d of %d submitted", total, want)
	}
}

// TestClusterTemplateFaultsDeterministic extends the determinism
// contract to the template fault sites: fixed seed and plan render
// byte-identical Results across repetitions and GOMAXPROCS settings.
func TestClusterTemplateFaultsDeterministic(t *testing.T) {
	plan := &faults.Plan{
		Seed:            5,
		TemplateMissing: faults.SiteSpec{Probability: 0.2},
		ArtifactCorrupt: faults.SiteSpec{Probability: 0.2},
		SSDRead:         faults.SiteSpec{Probability: 0.1},
	}
	run := func() (string, string) {
		cfg := templateFaultConfig(t, plan)
		tr := obsTracer()
		cfg.Tracer = tr.tracer
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render() + res.Metrics.Render(), tr.chrome(t)
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1 != r2 {
		t.Fatalf("rendered results differ across reps:\n--- run1\n%s\n--- run2\n%s", r1, r2)
	}
	if c1 != c2 {
		t.Fatal("chrome exports differ across reps")
	}
	prev := runtime.GOMAXPROCS(1)
	r3, c3 := run()
	runtime.GOMAXPROCS(prev)
	if r3 != r1 || c3 != c1 {
		t.Fatal("template-faulted run differs under GOMAXPROCS=1")
	}
}

// TestClusterCrashValidation rejects plans the fleet cannot survive.
func TestClusterCrashValidation(t *testing.T) {
	base := faultConfig(t, nil)
	for _, tc := range []struct {
		name string
		plan faults.Plan
	}{
		{"node out of range", faults.Plan{NodeCrashes: []faults.NodeCrash{{Node: 2}}}},
		{"all nodes crash", faults.Plan{NodeCrashes: []faults.NodeCrash{{Node: 0}, {Node: 1}}}},
		{"invalid probability", faults.Plan{SSDRead: faults.SiteSpec{Probability: 1.5}}},
	} {
		cfg := base
		plan := tc.plan
		cfg.Faults = serverless.FaultSpec{Plan: &plan}
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted an unsurvivable plan", tc.name)
		}
	}
}
