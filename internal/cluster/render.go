package cluster

import (
	"fmt"
	"strings"
)

// Render is the Result's canonical text form: a pure function of the
// simulation outcome, used by the determinism tests (byte-identical
// across repetitions and GOMAXPROCS) and printed by medusa-simulate.
func (r *Result) Render() string {
	// Fault lines only appear under a nonzero plan so that fault-free
	// output stays byte-identical to builds without fault injection.
	withFaults := r.Config.Faults.Plan != nil && !r.Config.Faults.Plan.Zero()
	// SLO and control-plane lines only appear when an SLO is configured,
	// for the same reason.
	withSLO := !r.Config.SLO.Zero()
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d nodes × %d GPUs, policy %v, locality %.2f\n",
		r.Config.Nodes, r.Config.GPUsPerNode, r.Config.Cache.Policy, r.Config.LocalityWeight)
	if withSLO {
		scaler := "reactive"
		if r.Config.Autoscaler != nil {
			scaler = r.Config.Autoscaler.Name()
		}
		route := "fifo"
		if r.Config.Router != nil {
			route = r.Config.Router.Name()
		}
		fmt.Fprintf(&b, "fleet: autoscale %s router %s slo ttft %v tpot %v\n",
			scaler, route, r.Config.SLO.TTFT, r.Config.SLO.TPOT)
	}
	for _, d := range r.PerDeployment {
		fmt.Fprintf(&b, "deployment %-16s completed %5d  ttft p50 %-12v p99 %-12v cold_starts %4d (total %v)\n",
			d.Name, d.Completed, d.TTFT.P50(), d.TTFT.P99(), d.ColdStarts, d.ColdStartTotal)
		if d.ColdStart.Len() > 0 {
			fmt.Fprintf(&b, "  cold start p50 %-12v p99 %-12v\n", d.ColdStart.P50(), d.ColdStart.P99())
		}
		// TPOT exists only in batched execution mode; gating on it keeps
		// legacy output byte-identical.
		if d.TPOT != nil {
			fmt.Fprintf(&b, "  tpot p50 %-12v p99 %-12v preemptions %d\n",
				d.TPOT.P50(), d.TPOT.P99(), d.Preemptions)
		}
		if withSLO {
			pct := 0.0
			if d.Completed > 0 {
				pct = float64(d.SLOMet) / float64(d.Completed) * 100
			}
			fmt.Fprintf(&b, "  slo met %d/%d (%.1f%%)\n", d.SLOMet, d.Completed, pct)
		}
		if withFaults {
			fmt.Fprintf(&b, "  degraded %d (corrupt %d mismatch %d timeout %d)\n",
				d.Degraded,
				int(d.Metrics.Counter("degraded_artifact_corrupt").Value()),
				int(d.Metrics.Counter("degraded_restore_mismatch").Value()),
				int(d.Metrics.Counter("degraded_fetch_timeout").Value()))
		}
		for _, p := range sortedPhases(d.ColdStartPhases) {
			fmt.Fprintf(&b, "  phase %-26s %v\n", p, d.ColdStartPhases.Duration(p))
		}
	}
	for _, n := range r.PerNode {
		c := n.Cache
		crashed := ""
		if n.Crashed {
			crashed = "  CRASHED"
		}
		fmt.Fprintf(&b, "node %d: launches %4d  cache ram %d ssd %d miss %d coalesced %d evict %d/%d bytes %d%s\n",
			n.ID, n.Launches, c.RAMHits, c.SSDHits, c.Misses, c.Coalesced,
			c.RAMEvictions, c.SSDEvictions, c.BytesFetched, crashed)
	}
	fmt.Fprintf(&b, "cache total: requests %d hit_rate %.1f%% coalesced %d bytes_fetched %d\n",
		r.Cache.Requests(), r.Cache.HitRate()*100, r.Cache.Coalesced, r.Cache.BytesFetched)
	if withFaults {
		rate := 0.0
		if r.TotalColdStarts > 0 {
			rate = float64(r.Degraded) / float64(r.TotalColdStarts) * 100
		}
		fmt.Fprintf(&b, "faults: degraded %d/%d (%.1f%%)  requeued %d  node_crashes %d  lost_cold_starts %d  fetch_timeouts %d  ssd_read_errors %d\n",
			r.Degraded, r.TotalColdStarts, rate, r.Requeued, r.NodeCrashes,
			int(r.Metrics.Counter("lost_cold_starts").Value()),
			r.Cache.TimedOut, r.Cache.SSDReadErrors)
	}
	if withSLO {
		fmt.Fprintf(&b, "slo attainment %.2f%%  node_seconds %.3f\n",
			r.SLOAttainment()*100, r.NodeSeconds)
	}
	fmt.Fprintf(&b, "cold starts %d  gpu_seconds %.3f  makespan %v\n",
		r.TotalColdStarts, r.GPUSeconds, r.Makespan)
	return b.String()
}
