package cluster

import (
	"fmt"
	"strings"
)

// Render is the Result's canonical text form: a pure function of the
// simulation outcome, used by the determinism tests (byte-identical
// across repetitions and GOMAXPROCS) and printed by medusa-simulate.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d nodes × %d GPUs, policy %v, locality %.2f\n",
		r.Config.Nodes, r.Config.GPUsPerNode, r.Config.Cache.Policy, r.Config.LocalityWeight)
	for _, d := range r.PerDeployment {
		fmt.Fprintf(&b, "deployment %-16s completed %5d  ttft p50 %-12v p99 %-12v cold_starts %4d (total %v)\n",
			d.Name, d.Completed, d.TTFT.P50(), d.TTFT.P99(), d.ColdStarts, d.ColdStartTotal)
		if d.ColdStart.Len() > 0 {
			fmt.Fprintf(&b, "  cold start p50 %-12v p99 %-12v\n", d.ColdStart.P50(), d.ColdStart.P99())
		}
		for _, p := range sortedPhases(d.ColdStartPhases) {
			fmt.Fprintf(&b, "  phase %-26s %v\n", p, d.ColdStartPhases.Duration(p))
		}
	}
	for _, n := range r.PerNode {
		c := n.Cache
		fmt.Fprintf(&b, "node %d: launches %4d  cache ram %d ssd %d miss %d coalesced %d evict %d/%d bytes %d\n",
			n.ID, n.Launches, c.RAMHits, c.SSDHits, c.Misses, c.Coalesced,
			c.RAMEvictions, c.SSDEvictions, c.BytesFetched)
	}
	fmt.Fprintf(&b, "cache total: requests %d hit_rate %.1f%% coalesced %d bytes_fetched %d\n",
		r.Cache.Requests(), r.Cache.HitRate()*100, r.Cache.Coalesced, r.Cache.BytesFetched)
	fmt.Fprintf(&b, "cold starts %d  gpu_seconds %.3f  makespan %v\n",
		r.TotalColdStarts, r.GPUSeconds, r.Makespan)
	return b.String()
}
