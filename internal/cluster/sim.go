package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/autoscale"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/eventq"
	"github.com/medusa-repro/medusa/internal/faults"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/obs"
	"github.com/medusa-repro/medusa/internal/router"
	"github.com/medusa-repro/medusa/internal/sched"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// The event loop mirrors internal/serverless/sim.go — same event kinds,
// same (time, push-sequence) queue tie-break, same continuous-batching
// iteration shape, same O(active) scaling machinery (lazy pulled
// arrivals, free-listed request/instance state, per-deployment live
// lists, incremental GPU accounting) — extended with node-level
// placement: every launch first picks a node (locality vs load), then
// charges runtime init and the node cache's artifact fetch, overlapped
// (the node daemon pulls the artifact while the container boots).

type eventKind int

const (
	evArrival eventKind = iota
	evInstanceReady
	evIterationEnd
	evIdleCheck
	evNodeCrash
)

// event is one scheduled occurrence. Instance events carry the epoch
// the instance state had when scheduled; recycled instances bump their
// epoch, which invalidates events still queued against the previous
// incarnation (idle checks after retirement, ready/iteration-end
// events after a node crash).
type event struct {
	kind  eventKind
	req   *reqState
	inst  *instState
	node  int
	epoch uint64
}

// runtimeInitDuration mirrors the engine's runtime-initialization
// phase, paid by launches that miss the node's warm container pool.
const runtimeInitDuration = 830 * time.Millisecond

// reqState tracks one request through the fleet.
type reqState struct {
	workload.Request
	dep      int
	emitted  int
	ttftSeen bool
	// firstTok is when the first token was emitted (batched mode; the
	// TPOT denominator interval starts here).
	firstTok time.Duration
	turn     int
	// sloViolated latches the first missed deadline; checked once at
	// completion so each request counts toward attainment exactly once.
	sloViolated bool
}

// instState is one provisioned instance, pinned to a node.
type instState struct {
	id         int
	dep        int
	node       int
	epoch      uint64
	ready      bool
	retired    bool
	running    []*reqState
	iterating  bool
	idleSince  time.Duration
	launchedAt time.Duration
	retiredAt  time.Duration
	kvTokens   int
	captured   map[int]bool
	// degraded records the fault reason when the launch fell back to the
	// vanilla cold-start profile ("" for a clean Medusa launch).
	degraded string
	// sch is the instance's iteration-level scheduler (batched
	// execution mode only; nil otherwise). It recycles with the
	// instance state through the free-list.
	sch *sched.Scheduler[*reqState]
}

// idleNow reports whether the instance currently holds no work.
func (inst *instState) idleNow(batched bool) bool {
	if batched {
		return !inst.iterating && inst.sch.Idle()
	}
	return !inst.iterating && len(inst.running) == 0
}

// nodeState is one fleet node: a GPU budget, a warm-container pool and
// the tiered artifact cache.
type nodeState struct {
	id       int
	gpusUsed int
	warmLeft int // -1 = unbounded
	launches int
	crashed  bool
	cache    *artifactcache.NodeCache
	// Node-seconds accounting: a node costs while it hosts at least one
	// instance. liveInsts transitions 0→1 open an up-interval; 1→0
	// close it into upTime.
	liveInsts int
	upSince   time.Duration
	upTime    time.Duration
}

// depState is one deployment's queue, profile and metrics. Hot-path
// registry instruments are resolved once and cached.
type depState struct {
	cfg  serverless.Config
	prof *serverless.Profile
	name string
	// key is the deployment's artifact-cache key ("" when the strategy
	// fetches no artifact through the cache).
	key string
	// tmplKey is the shared template's cache key when the deployment's
	// artifact is template-factored ("" otherwise). Launches then fetch
	// the (template, delta) pair; the template entry is shared across
	// every sibling deployment of the architecture.
	tmplKey string
	// fallback is the vanilla cold-start profile degraded launches use
	// (nil when no injector is attached or the strategy has no artifact).
	fallback *serverless.Profile

	// batched selects iteration-level continuous batching; batch is the
	// resolved parameter set (KVBlocks defaulted from the profile's
	// measured KV capacity, MaxSeqs from MaxBatch).
	batched bool
	batch   sched.Params

	// provLatency is the launch lead time the predictive autoscaler
	// scales ahead by (the profile's measured cold start).
	provLatency time.Duration

	pending eventq.Deque[*reqState]
	// active lists live instances in launch order.
	active []*instState
	// outstanding counts the deployment's unfinished requests
	// (pending + running), maintained incrementally.
	outstanding int

	reg      *obs.Registry
	phases   *obs.PhaseBreakdown
	csTotal  time.Duration
	live     int
	firstArr time.Duration
	seenArr  bool
	lastDone time.Duration
	rng      *rand.Rand

	// Cached registry instruments (hot path).
	cCompleted  *obs.Counter
	cColdStarts *obs.Counter
	cIterations *obs.Counter
	cFollowUps  *obs.Counter
	cPreempt    *obs.Counter
	sTTFT       *metrics.Sample
	sE2E        *metrics.Sample
	sTPOT       *metrics.Sample
	sColdStart  *metrics.Sample
	gLive       *obs.Gauge
	// cSLOMet counts deadline-meeting completions; bound only when the
	// cluster config sets an SLO (nil otherwise, and the registry keeps
	// its historical instrument set).
	cSLOMet *obs.Counter
}

// bindInstruments resolves the hot-path instruments once. The
// batched-only instruments (tpot, preemptions) register lazily so a
// legacy-mode registry renders exactly the historical instrument set.
func (d *depState) bindInstruments() {
	d.cCompleted = d.reg.Counter("completed")
	d.cColdStarts = d.reg.Counter("cold_starts")
	d.cIterations = d.reg.Counter("iterations")
	d.cFollowUps = d.reg.Counter("follow_ups")
	d.sTTFT = d.reg.Sample("ttft")
	d.sE2E = d.reg.Sample("e2e")
	d.sColdStart = d.reg.Sample("cold_start")
	d.gLive = d.reg.Gauge("live_instances")
	if d.batched {
		d.cPreempt = d.reg.Counter("preemptions")
		d.sTPOT = d.reg.Sample("tpot")
	}
}

func (d *depState) liveChanged() {
	d.gLive.Update(float64(d.live))
}

// removeActive deletes inst from the live list, preserving launch
// order (dispatch order is part of the deterministic contract).
func (d *depState) removeActive(inst *instState) {
	for i, a := range d.active {
		if a == inst {
			d.active = append(d.active[:i], d.active[i+1:]...)
			return
		}
	}
}

type simulation struct {
	cfg   Config
	reg   *obs.Registry // cluster-wide (cache counters)
	inj   *faults.Injector
	nodes []*nodeState

	// The control plane: scaler decides instance counts on every tick
	// (never nil — Run defaults it to the reactive baseline), router
	// orders dispatch (nil = legacy launch-order walk), slo carries the
	// configured deadlines (zero = no SLO accounting).
	scaler autoscale.Policy
	router router.Policy
	slo    serverless.SLO

	deps []*depState

	// src streams arrivals; head is the one pulled-but-unfired arrival
	// whose event sits in the queue.
	src      serverless.ArrivalSource
	head     *reqState
	renumber bool
	lastArr  time.Duration

	now    time.Duration
	events eventq.Queue[event]

	reqPool  []*reqState
	instPool []*instState
	instSeq  int
	nextID   int

	scratchIntervals []obs.Interval
	scratchAdmitted  []*reqState
	scratchCrash     []*instState
	scratchChunkDur  []time.Duration
	scratchCands     []router.Candidate
	scratchRoute     []*instState

	created    int
	completed  int
	lastDone   time.Duration
	gpuSeconds float64
}

func (s *simulation) schedule(t time.Duration, ev event) {
	s.events.Push(t, ev)
}

func (s *simulation) newReq() *reqState {
	if n := len(s.reqPool); n > 0 {
		r := s.reqPool[n-1]
		s.reqPool = s.reqPool[:n-1]
		return r
	}
	return &reqState{}
}

func (s *simulation) freeReq(r *reqState) {
	*r = reqState{}
	s.reqPool = append(s.reqPool, r)
}

func (s *simulation) newInst(dep, node int) *instState {
	var inst *instState
	if n := len(s.instPool); n > 0 {
		inst = s.instPool[n-1]
		s.instPool = s.instPool[:n-1]
	} else {
		inst = &instState{}
	}
	inst.id = s.instSeq
	s.instSeq++
	inst.dep = dep
	inst.node = node
	if d := s.deps[dep]; d.batched {
		if inst.sch == nil {
			inst.sch = sched.New[*reqState](d.batch)
		} else {
			inst.sch.Reset(d.batch)
		}
	}
	return inst
}

// freeInst recycles an instance state, invalidating any events still
// referencing this incarnation (stale idle checks; after a crash, the
// in-flight ready or iteration-end event).
func (s *simulation) freeInst(inst *instState) {
	epoch := inst.epoch + 1
	running := inst.running[:0]
	// The scheduler recycles with the instance (newInst resets it).
	*inst = instState{epoch: epoch, running: running, sch: inst.sch}
	s.instPool = append(s.instPool, inst)
}

// pullArrival draws the next arrival from the source and schedules it.
// Exactly one sourced arrival is in the event queue at a time.
func (s *simulation) pullArrival() error {
	di, req, ok := s.src.Next()
	if !ok {
		s.head = nil
		return s.src.Err()
	}
	if di < 0 || di >= len(s.deps) {
		return fmt.Errorf("cluster: arrival for unknown deployment %d", di)
	}
	if req.Arrival < s.lastArr {
		return fmt.Errorf("cluster: arrival stream went backwards (%v after %v)", req.Arrival, s.lastArr)
	}
	s.lastArr = req.Arrival
	r := s.newReq()
	r.Request = req
	r.dep = di
	r.turn = 1
	if s.renumber {
		r.ID = s.nextID
		s.nextID++
	}
	s.created++
	s.head = r
	s.schedule(req.Arrival, event{kind: evArrival, req: r})
	return nil
}

func (s *simulation) run() (*Result, error) {
	for di, d := range s.deps {
		// Pre-warmed instances occupy GPUs from time zero, placed like
		// any launch but charged no cold start.
		for i := 0; i < d.cfg.Scheduler.Prewarm; i++ {
			node := s.placeNode(d)
			if node == nil {
				break
			}
			inst := s.newInst(di, node.id)
			inst.ready = true
			node.gpusUsed += d.cfg.TPDegree
			node.launches++
			s.nodeUp(node)
			d.active = append(d.active, inst)
			d.live++
		}
		d.liveChanged()
	}
	if err := s.pullArrival(); err != nil {
		return nil, err
	}
	if s.inj != nil {
		for _, nc := range s.inj.CrashSchedule() {
			s.schedule(nc.At.D(), event{kind: evNodeCrash, node: nc.Node})
		}
	}

	for s.events.Len() > 0 {
		t, ev := s.events.Pop()
		s.now = t
		switch ev.kind {
		case evArrival:
			r := ev.req
			d := s.deps[r.dep]
			if !d.seenArr {
				d.seenArr = true
				d.firstArr = r.Arrival
			}
			d.pending.PushBack(r)
			d.outstanding++
			s.scaler.ObserveArrival(r.dep, r.Arrival)
			if r == s.head {
				if err := s.pullArrival(); err != nil {
					return nil, err
				}
			}
			if err := s.tick(); err != nil {
				return nil, err
			}
			if err := s.dispatchIdle(); err != nil {
				return nil, err
			}
		case evInstanceReady:
			inst := ev.inst
			if inst.epoch != ev.epoch {
				// The instance's node crashed mid-provisioning; the
				// launch was already written off as lost.
				break
			}
			inst.ready = true
			s.markIdle(inst)
			if err := s.dispatchIdle(); err != nil {
				return nil, err
			}
		case evIterationEnd:
			if ev.inst.epoch != ev.epoch {
				// The node crashed mid-iteration; the batch was requeued
				// and this event means nothing.
				break
			}
			if err := s.finishIteration(ev.inst); err != nil {
				return nil, err
			}
		case evNodeCrash:
			if err := s.crashNode(ev.node); err != nil {
				return nil, err
			}
		case evIdleCheck:
			inst := ev.inst
			if inst.epoch != ev.epoch {
				break
			}
			d := s.deps[inst.dep]
			if !inst.retired && inst.ready && inst.idleNow(d.batched) &&
				s.now-inst.idleSince >= d.cfg.Scheduler.IdleTimeout {
				if s.retainVeto(inst) {
					// The autoscaling policy is holding this capacity warm
					// for forecast traffic: re-arm the idle check instead
					// of retiring. The veto lapses as the forecast decays,
					// and a policy without the Retainer extension (the
					// reactive baseline) never vetoes. Re-checks run at
					// half the timeout so a vetoed instance retires
					// promptly once its node's anchor work drains.
					s.schedule(s.now+(d.cfg.Scheduler.IdleTimeout+1)/2,
						event{kind: evIdleCheck, inst: inst, epoch: inst.epoch})
					break
				}
				s.retire(inst)
				if err := s.tick(); err != nil {
					return nil, err
				}
				if err := s.dispatchIdle(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := s.src.Err(); err != nil {
		return nil, err
	}
	if s.completed != s.created {
		return nil, fmt.Errorf("cluster: %d of %d requests completed", s.completed, s.created)
	}
	return s.assemble(), nil
}

// retire takes an instance out of service, settling its GPU-time
// account and recycling its state.
// nodeUp opens the node's cost interval when its first instance lands.
func (s *simulation) nodeUp(n *nodeState) {
	if n.liveInsts == 0 {
		n.upSince = s.now
	}
	n.liveInsts++
}

// nodeDown closes the node's cost interval when its last instance
// leaves.
func (s *simulation) nodeDown(n *nodeState) {
	n.liveInsts--
	if n.liveInsts == 0 {
		n.upTime += s.now - n.upSince
	}
}

func (s *simulation) retire(inst *instState) {
	d := s.deps[inst.dep]
	inst.retired = true
	inst.retiredAt = s.now
	s.nodes[inst.node].gpusUsed -= d.cfg.TPDegree
	s.nodeDown(s.nodes[inst.node])
	d.live--
	d.liveChanged()
	if inst.retiredAt > inst.launchedAt {
		s.gpuSeconds += (inst.retiredAt - inst.launchedAt).Seconds() * float64(d.cfg.TPDegree)
	}
	d.removeActive(inst)
	s.freeInst(inst)
}

func (s *simulation) assemble() *Result {
	out := &Result{Config: s.cfg, Metrics: s.reg, Makespan: s.lastDone,
		GPUSeconds: s.gpuSeconds, Completed: s.completed}
	for _, d := range s.deps {
		completed := int(d.cCompleted.Value())
		coldStarts := int(d.cColdStarts.Value())
		degraded := int(d.reg.Counter("degraded_cold_starts").Value())
		res := &DeploymentResult{
			Name:            d.name,
			TTFT:            d.sTTFT,
			E2E:             d.sE2E,
			ColdStart:       d.sColdStart,
			Completed:       completed,
			ColdStarts:      coldStarts,
			Degraded:        degraded,
			ColdStartPhases: d.phases,
			ColdStartTotal:  d.csTotal,
			Metrics:         d.reg,
		}
		if d.batched {
			res.TPOT = d.sTPOT
			res.Preemptions = int(d.cPreempt.Value())
		}
		if d.cSLOMet != nil {
			res.SLOMet = int(d.cSLOMet.Value())
			out.SLOMet += res.SLOMet
		}
		out.PerDeployment = append(out.PerDeployment, res)
		out.TotalColdStarts += coldStarts
		out.Degraded += degraded
		// Instances still live at the end are charged to the last
		// completion, as if decommissioned with the cluster.
		for _, inst := range d.active {
			if s.lastDone > inst.launchedAt {
				out.GPUSeconds += (s.lastDone - inst.launchedAt).Seconds() * float64(d.cfg.TPDegree)
			}
		}
	}
	out.Requeued = int(s.reg.Counter("requeued").Value())
	out.NodeCrashes = int(s.reg.Counter("node_crashes").Value())
	for _, n := range s.nodes {
		st := n.cache.Stats()
		out.PerNode = append(out.PerNode, NodeResult{ID: n.id, Launches: n.launches, Crashed: n.crashed, Cache: st})
		out.Cache.Add(st)
		// Nodes still hosting instances are charged to the last
		// completion, mirroring the GPU-seconds convention above.
		up := n.upTime
		if n.liveInsts > 0 && s.lastDone > n.upSince {
			up += s.lastDone - n.upSince
		}
		out.NodeSeconds += up.Seconds()
	}
	return out
}

// tick is the control plane's single evaluation point: every event
// that can change demand or capacity (arrival, iteration end, idle
// retirement, node crash) funnels here. Each deployment's desired
// instance count comes from the pluggable autoscale policy, and
// launches repeat round-robin until every policy is satisfied or no
// node can host another instance.
func (s *simulation) tick() error {
	progress := true
	for progress {
		progress = false
		for di := range s.deps {
			launched, err := s.launchOne(di)
			if err != nil {
				return err
			}
			if launched {
				progress = true
			}
		}
	}
	return nil
}

// localityScore grades how close a node's cache is to holding the
// artifact: RAM-resident is ideal, an in-flight transfer is nearly as
// good (it lands while the container boots), SSD costs one local read.
func localityScore(tier artifactcache.Tier, ok bool) float64 {
	if !ok {
		return 0
	}
	switch tier {
	case artifactcache.TierRAM:
		return 1.0
	case artifactcache.TierRemote: // in-flight
		return 0.9
	case artifactcache.TierSSD:
		return 0.7
	}
	return 0
}

// placeNode picks the launch node: among nodes with enough free GPUs,
// the one maximizing LocalityWeight·locality − load. Strict comparison
// over ascending ids makes ties go to the lowest node id. Returns nil
// when no node can host the instance.
func (s *simulation) placeNode(d *depState) *nodeState {
	var best *nodeState
	bestScore := 0.0
	for _, n := range s.nodes {
		if n.crashed || n.gpusUsed+d.cfg.TPDegree > s.cfg.GPUsPerNode {
			continue
		}
		score := -float64(n.gpusUsed) / float64(s.cfg.GPUsPerNode)
		if d.key != "" && s.cfg.LocalityWeight > 0 {
			tier, ok := n.cache.Locate(d.key, s.now)
			score += s.cfg.LocalityWeight * localityScore(tier, ok)
		}
		if best == nil || score > bestScore {
			best = n
			bestScore = score
		}
	}
	return best
}

// observe snapshots the deployment state an autoscaling policy sees at
// a control tick.
func (s *simulation) observe(di int) autoscale.Observation {
	d := s.deps[di]
	return autoscale.Observation{
		Now:              s.now,
		Outstanding:      d.outstanding,
		Live:             d.live,
		InstanceTarget:   d.cfg.Scheduler.InstanceTarget,
		ProvisionLatency: d.provLatency,
	}
}

// nodeAnchored reports whether the node hosts a live instance other
// than except that is earning its keep — busy, or idle for less than
// its deployment's retirement timeout. Instances that are themselves
// retirement-overdue do not anchor: two overdue instances must not
// keep each other's node up.
func (s *simulation) nodeAnchored(node int, except *instState) bool {
	for _, d := range s.deps {
		for _, inst := range d.active {
			if inst == except || inst.node != node || inst.retired {
				continue
			}
			if !inst.idleNow(d.batched) || s.now-inst.idleSince < d.cfg.Scheduler.IdleTimeout {
				return true
			}
		}
	}
	return false
}

// retainVeto asks a Retainer policy whether retiring this instance
// would drop its deployment below the keep-warm floor. The veto only
// applies while the instance's node is anchored by other work: warm
// capacity is held when its marginal node-seconds cost is near zero,
// and a node is never kept up solely on a forecast — an instance whose
// node holds nothing but retirement-overdue peers retires on its idle
// timeout exactly like the baseline. Policies without the optional
// extension never veto, so the reactive and legacy paths keep
// unconditional idle-timeout retirement byte for byte.
func (s *simulation) retainVeto(inst *instState) bool {
	r, ok := s.scaler.(autoscale.Retainer)
	if !ok {
		return false
	}
	if !s.nodeAnchored(inst.node, inst) {
		return false
	}
	di := inst.dep
	return s.deps[di].live-1 < r.Retain(di, s.observe(di))
}

// launchOne starts at most one instance for the deployment if demand
// warrants and some node has free GPUs. The launch overlaps runtime
// initialization with the node cache's artifact fetch: the node daemon
// pulls the artifact while the container boots, and loading begins
// when both are done.
func (s *simulation) launchOne(di int) (bool, error) {
	d := s.deps[di]
	desired := s.scaler.Desired(di, s.observe(di))
	if d.live >= desired {
		return false, nil
	}
	node := s.placeNode(d)
	if node == nil {
		return false, nil
	}
	inst := s.newInst(di, node.id)
	inst.idleSince = s.now
	inst.launchedAt = s.now
	node.gpusUsed += d.cfg.TPDegree
	node.launches++
	s.nodeUp(node)
	d.active = append(d.active, inst)
	d.cColdStarts.Inc()
	d.live++
	d.liveChanged()

	intervals := s.scratchIntervals[:0]
	riEnd := s.now
	if node.warmLeft == 0 {
		riEnd = s.now + runtimeInitDuration
		intervals = append(intervals, obs.Interval{
			Phase: engine.StageRuntimeInit, Start: s.now, End: riEnd})
	} else if node.warmLeft > 0 {
		node.warmLeft--
	}
	loadStart := riEnd
	prof := d.prof
	var fetch artifactcache.FetchResult
	if d.key != "" && s.inj != nil && d.tmplKey != "" && d.fallback != nil &&
		s.inj.Inject(faults.SiteTemplateMissing, d.tmplKey) {
		// The registry lost the shared template (operator error, partial
		// GC): the delta is undecodable without it, so after one registry
		// round trip (the 404) the launch degrades to the vanilla stages.
		known := s.now + s.cfg.Network.Latency
		intervals = append(intervals, obs.Interval{
			Phase: engine.StageRestoreFailed, Start: s.now, End: known})
		if known > loadStart {
			loadStart = known
		}
		s.degradeLaunch(d, inst, faults.ReasonTemplateMissing)
		prof = d.fallback
	} else if d.key != "" {
		var err error
		fetch, err = node.cache.FetchPair(s.now, d.key, d.tmplKey)
		if err != nil {
			// The registry fetch exhausted its retry budget. The failed
			// attempts still burned virtual time (fetch.Ready marks the
			// instant failure was known); the launch degrades to the
			// vanilla stages, which read weights from the model store
			// rather than the artifact registry.
			reason, degradable := faults.DegradeReason(err)
			if !degradable || d.fallback == nil {
				return false, err
			}
			intervals = append(intervals, obs.Interval{
				Phase: engine.StageRestoreFailed, Start: s.now, End: fetch.Ready})
			if fetch.Ready > loadStart {
				loadStart = fetch.Ready
			}
			s.degradeLaunch(d, inst, reason)
			prof = d.fallback
		} else {
			intervals = append(intervals, obs.Interval{
				Phase: engine.StageArtifactFetch, Start: s.now, End: fetch.Ready})
			if fetch.Ready > loadStart {
				loadStart = fetch.Ready
			}
			if s.inj != nil && d.fallback != nil {
				if d.tmplKey != "" && s.inj.Inject(faults.SiteArtifactCorrupt, d.tmplKey) {
					// The shared template failed its envelope checksum: the
					// delta cannot resolve against it, and the cached copy
					// would poison every sibling launch on this node.
					node.cache.Discard(d.tmplKey)
					s.degradeLaunch(d, inst, faults.ReasonCorruptTemplate)
					prof = d.fallback
				} else if s.inj.Inject(faults.SiteArtifactCorrupt, d.key) {
					// Checksum verification fails right after the read and
					// decode: nothing beyond the fetch is wasted, but the
					// untrusted cached copy must go.
					node.cache.Discard(d.key)
					s.degradeLaunch(d, inst, faults.ReasonCorruptArtifact)
					prof = d.fallback
				} else if s.inj.Inject(faults.SiteRestoreMismatch, d.key) {
					// Validation rejects the restore only after the whole
					// restore pipeline ran: the full Medusa loading phase
					// is wasted before the vanilla stages start over.
					wasted := d.prof.ColdStart()
					intervals = append(intervals, obs.Interval{
						Phase: engine.StageRestoreFailed, Start: loadStart, End: loadStart + wasted})
					loadStart += wasted
					s.degradeLaunch(d, inst, faults.ReasonRestoreMismatch)
					prof = d.fallback
				}
			}
		}
	}
	intervals = obs.AppendTimelineIntervals(intervals, prof.Timeline(), loadStart)
	d.phases.AddExclusive(intervals)
	ready := loadStart + prof.ColdStart()
	d.csTotal += ready - s.now
	d.sColdStart.Add(ready - s.now)
	if tr := d.cfg.Tracer; tr != nil {
		root := tr.StartSpan(s.instTrack(inst), "cold_start", s.now).
			Tag("cold_start").
			Attr("strategy", d.cfg.Strategy.String()).
			Attr("model", d.cfg.Model.Name).
			Attr("node", fmt.Sprintf("node%d", node.id))
		if d.key != "" {
			root.Attr("fetch_tier", fetch.Tier.String())
		}
		if inst.degraded != "" {
			root.Attr("degraded_reason", inst.degraded)
		}
		for _, iv := range intervals {
			root.Child(iv.Phase, iv.Start).Tag(iv.Phase).End(iv.End)
		}
		root.End(ready)
	}
	s.scratchIntervals = intervals[:0]
	s.schedule(ready, event{kind: evInstanceReady, inst: inst, epoch: inst.epoch})
	return true, nil
}

func (s *simulation) instTrack(inst *instState) string {
	return fmt.Sprintf("%s/node%d/inst-%d", s.deps[inst.dep].name, inst.node, inst.id)
}

// profOf resolves which profile governs an instance's serving costs: the
// deployment's primary profile, or the vanilla fallback when the launch
// degraded.
func (s *simulation) profOf(inst *instState) *serverless.Profile {
	d := s.deps[inst.dep]
	if inst.degraded != "" && d.fallback != nil {
		return d.fallback
	}
	return d.prof
}

// degradeLaunch records one launch's fall-back to the vanilla cold-start
// stages, in both the deployment's and the cluster's registries.
func (s *simulation) degradeLaunch(d *depState, inst *instState, reason string) {
	inst.degraded = reason
	d.reg.Counter("degraded_cold_starts").Inc()
	d.reg.Counter("degraded_" + reason).Inc()
	s.reg.Counter("degraded_cold_starts").Inc()
	s.reg.Counter("faults_" + reason).Inc()
}

// crashNode kills one node at the plan's instant: its cache tiers are
// lost, its instances (ready or mid-provisioning) retire, and every
// request that was running on it is requeued onto the deployment's
// pending queue for surviving nodes to pick up. TTFT is sampled at most
// once per request, so a requeued request that already streamed tokens
// does not re-enter the TTFT distribution.
func (s *simulation) crashNode(id int) error {
	node := s.nodes[id]
	if node.crashed {
		return nil
	}
	node.crashed = true
	node.cache.MarkLost()
	s.reg.Counter("node_crashes").Inc()
	// Collect the node's instances first: retiring mutates the active
	// lists being walked. Deployment-major order matches the per-
	// deployment requeue order of the original all-instances scan.
	doomed := s.scratchCrash[:0]
	for _, d := range s.deps {
		for _, inst := range d.active {
			if inst.node == id {
				doomed = append(doomed, inst)
			}
		}
	}
	for _, inst := range doomed {
		d := s.deps[inst.dep]
		if !inst.ready {
			// Mid-provisioning: the cold start is lost with the node. Its
			// evInstanceReady event still fires and is ignored (stale
			// epoch).
			d.reg.Counter("lost_cold_starts").Inc()
			s.reg.Counter("lost_cold_starts").Inc()
		}
		requeue := func(r *reqState) {
			// Partial generation is lost: the request restarts from its
			// first output token on whichever instance re-admits it.
			r.emitted = 0
			d.pending.PushBack(r)
			d.reg.Counter("requeued").Inc()
			s.reg.Counter("requeued").Inc()
		}
		if d.batched {
			inst.sch.Drain(requeue)
		} else {
			for _, r := range inst.running {
				requeue(r)
			}
		}
		inst.running = inst.running[:0]
		inst.iterating = false
		inst.kvTokens = 0
		s.retire(inst)
	}
	s.scratchCrash = doomed[:0]
	if err := s.tick(); err != nil {
		return err
	}
	return s.dispatchIdle()
}

// dispatchIdle starts iterations on ready instances that are idle and
// have admissible work. Without a router each deployment's live
// instances are walked in launch order (the historical behavior); with
// one, dispatchable instances are offered work in descending score
// order, ties to the lowest instance id, so queued requests land on
// the instances the policy ranks best.
func (s *simulation) dispatchIdle() error {
	for _, d := range s.deps {
		if s.router == nil {
			for _, inst := range d.active {
				if inst.ready && !inst.iterating {
					if err := s.startIteration(inst); err != nil {
						return err
					}
				}
			}
			continue
		}
		if err := s.routeDispatch(d); err != nil {
			return err
		}
	}
	return nil
}

// routeDispatch scores a deployment's dispatchable instances and
// starts iterations in rank order. Scores are computed once per
// dispatch round: an earlier start in the round does not re-rank the
// rest (the next event's round sees the updated state).
func (s *simulation) routeDispatch(d *depState) error {
	ready := s.scratchRoute[:0]
	cands := s.scratchCands[:0]
	for _, inst := range d.active {
		if !inst.ready || inst.iterating {
			continue
		}
		c, err := s.candidate(d, inst)
		if err != nil {
			return err
		}
		ready = append(ready, inst)
		cands = append(cands, c)
	}
	s.scratchRoute, s.scratchCands = ready, cands
	for _, i := range router.Rank(s.router, cands) {
		if err := s.startIteration(ready[i]); err != nil {
			return err
		}
	}
	return nil
}

// candidate snapshots one instance for the router: queue depth, KV
// headroom, artifact locality of its node's cache, and a predicted
// TTFT (the queue-deepened decode step a newly admitted request would
// wait behind).
func (s *simulation) candidate(d *depState, inst *instState) (router.Candidate, error) {
	var depth int
	var headroom float64
	prof := s.profOf(inst)
	if d.batched {
		depth = inst.sch.Running() + inst.sch.PreemptedWaiting()
		if total := d.batch.KVBlocks; total > 0 {
			headroom = float64(inst.sch.KVFreeBlocks()) / float64(total)
		}
	} else {
		depth = len(inst.running)
		if max := prof.MaxKVTokens(); max > 0 {
			headroom = float64(max-inst.kvTokens) / float64(max)
		}
	}
	locality := 0.0
	if d.key != "" {
		tier, ok := s.nodes[inst.node].cache.Locate(d.key, s.now)
		locality = localityScore(tier, ok)
	}
	// Predicted TTFT: each queued request deepens the batch a new
	// arrival decodes in, so charge one decode step at depth+1 per
	// queue position plus the new request's own (memoized per batch
	// size — this is the hot dispatch path).
	batch := depth + 1
	if max := d.cfg.Scheduler.MaxBatch; max > 0 && batch > max {
		batch = max
	}
	step, err := prof.DecodeStep(batch)
	if err != nil {
		return router.Candidate{}, err
	}
	return router.Candidate{
		ID:         inst.id,
		QueueDepth: depth,
		KVHeadroom: headroom,
		Locality:   locality,
		PredTTFT:   (time.Duration(depth+1) * step).Seconds(),
	}, nil
}

// admit moves pending requests of the instance's deployment into it up
// to batch and KV capacity, returning the admitted set (valid until the
// next admit call).
func (s *simulation) admit(inst *instState) []*reqState {
	d := s.deps[inst.dep]
	admitted := s.scratchAdmitted[:0]
	for d.pending.Len() > 0 && len(inst.running) < d.cfg.Scheduler.MaxBatch {
		r := d.pending.Front()
		need := r.PromptTokens + r.OutputTokens
		if inst.kvTokens+need > s.profOf(inst).MaxKVTokens() {
			break
		}
		d.pending.PopFront()
		inst.kvTokens += need
		inst.running = append(inst.running, r)
		admitted = append(admitted, r)
	}
	s.scratchAdmitted = admitted
	return admitted
}

func (s *simulation) startIteration(inst *instState) error {
	d := s.deps[inst.dep]
	if d.batched {
		return s.startIterationBatched(inst)
	}
	admitted := s.admit(inst)
	if tr := d.cfg.Tracer; tr != nil {
		for _, r := range admitted {
			tr.RecordSpan(d.name+"/queue", fmt.Sprintf("req-%d", r.ID), "queued",
				r.Arrival, s.now,
				obs.Attr{Key: "prompt_tokens", Value: fmt.Sprint(r.PromptTokens)},
				obs.Attr{Key: "turn", Value: fmt.Sprint(r.turn)})
		}
	}
	if len(inst.running) == 0 {
		return nil
	}
	var dur time.Duration
	prof := s.profOf(inst)
	if prof.Deferred() {
		gb, c, err := prof.CaptureCost(len(inst.running))
		if err != nil {
			return err
		}
		if inst.captured == nil {
			inst.captured = make(map[int]bool)
		}
		if !inst.captured[gb] {
			inst.captured[gb] = true
			dur += c
		}
	}
	for _, r := range admitted {
		p, err := prof.Prefill(r.PromptTokens)
		if err != nil {
			return err
		}
		dur += p
	}
	step, err := prof.DecodeStep(len(inst.running))
	if err != nil {
		return err
	}
	dur += step
	inst.iterating = true
	d.cIterations.Inc()
	if tr := d.cfg.Tracer; tr != nil {
		phase := "decode"
		if len(admitted) > 0 {
			phase = "prefill+decode"
		}
		tr.RecordSpan(s.instTrack(inst), "iteration", phase, s.now, s.now+dur,
			obs.Attr{Key: "batch", Value: fmt.Sprint(len(inst.running))},
			obs.Attr{Key: "admitted", Value: fmt.Sprint(len(admitted))})
	}
	s.schedule(s.now+dur, event{kind: evIterationEnd, inst: inst, epoch: inst.epoch})
	return nil
}

func (s *simulation) finishIteration(inst *instState) error {
	d := s.deps[inst.dep]
	if d.batched {
		return s.finishIterationBatched(inst)
	}
	inst.iterating = false
	keep := inst.running[:0]
	for _, r := range inst.running {
		r.emitted++
		if !r.ttftSeen {
			r.ttftSeen = true
			d.sTTFT.Add(s.now - r.Arrival)
			if d.cSLOMet != nil && s.slo.TTFT > 0 && s.now-r.Arrival > s.slo.TTFT {
				r.sloViolated = true
			}
		}
		if r.emitted >= r.OutputTokens {
			d.sE2E.Add(s.now - r.Arrival)
			if d.cSLOMet != nil && !r.sloViolated {
				d.cSLOMet.Inc()
			}
			d.cCompleted.Inc()
			s.completed++
			d.outstanding--
			inst.kvTokens -= r.PromptTokens + r.OutputTokens
			if s.now > d.lastDone {
				d.lastDone = s.now
			}
			if s.now > s.lastDone {
				s.lastDone = s.now
			}
			s.maybeFollowUp(r)
			s.freeReq(r)
			continue
		}
		keep = append(keep, r)
	}
	inst.running = keep
	if len(inst.running) == 0 {
		s.markIdle(inst)
	}
	if err := s.tick(); err != nil {
		return err
	}
	return s.startIteration(inst)
}

// startIterationBatched plans one continuous-batching round through
// the instance's scheduler and prices it exactly as the single-pool
// simulator does: deferred graph capture (first use of a decode batch
// size), one prefill cost per planned chunk, one decode step for the
// decode batch. Iteration span children tile the interval — capture,
// each chunk (tagged "preempt" when recomputing an evicted sequence's
// prefix), then decode — so phase attribution never drifts.
func (s *simulation) startIterationBatched(inst *instState) error {
	d := s.deps[inst.dep]
	peek := func() (int, int, bool) {
		if d.pending.Len() == 0 {
			return 0, 0, false
		}
		r := d.pending.Front()
		return r.PromptTokens, r.OutputTokens, true
	}
	it, err := inst.sch.Plan(peek, d.pending.PopFront)
	if err != nil {
		return err
	}
	if it.Preemptions > 0 {
		d.cPreempt.Add(int64(it.Preemptions))
	}
	if tr := d.cfg.Tracer; tr != nil {
		for _, q := range it.Admitted {
			r := q.Data
			tr.RecordSpan(d.name+"/queue", fmt.Sprintf("req-%d", r.ID), "queued",
				r.Arrival, s.now,
				obs.Attr{Key: "prompt_tokens", Value: fmt.Sprint(r.PromptTokens)},
				obs.Attr{Key: "turn", Value: fmt.Sprint(r.turn)})
		}
	}
	if it.Empty() {
		return nil
	}
	prof := s.profOf(inst)
	var dur, captureDur time.Duration
	if prof.Deferred() && len(it.Decode) > 0 {
		gb, c, err := prof.CaptureCost(len(it.Decode))
		if err != nil {
			return err
		}
		if inst.captured == nil {
			inst.captured = make(map[int]bool)
		}
		if !inst.captured[gb] {
			inst.captured[gb] = true
			captureDur = c
			dur += c
		}
	}
	chunkDur := s.scratchChunkDur[:0]
	for _, ch := range it.Chunks {
		p, err := prof.Prefill(ch.Tokens)
		if err != nil {
			return err
		}
		chunkDur = append(chunkDur, p)
		dur += p
	}
	s.scratchChunkDur = chunkDur
	var stepDur time.Duration
	if len(it.Decode) > 0 {
		stepDur, err = prof.DecodeStep(len(it.Decode))
		if err != nil {
			return err
		}
		dur += stepDur
	}
	inst.iterating = true
	d.cIterations.Inc()
	if tr := d.cfg.Tracer; tr != nil {
		phase := "decode"
		switch {
		case len(it.Chunks) > 0 && len(it.Decode) > 0:
			phase = "prefill+decode"
		case len(it.Chunks) > 0:
			phase = "prefill"
		}
		root := tr.StartSpan(s.instTrack(inst), "iteration", s.now).
			Tag(phase).
			Attr("batch", fmt.Sprint(len(it.Decode)+len(it.Chunks))).
			Attr("admitted", fmt.Sprint(len(it.Admitted))).
			Attr("preemptions", fmt.Sprint(it.Preemptions))
		off := s.now
		if captureDur > 0 {
			root.Child("graph_capture", off).Tag("capture").End(off + captureDur)
			off += captureDur
		}
		for i, ch := range it.Chunks {
			tag := "prefill"
			if ch.Seq.Preemptions() > 0 {
				tag = "preempt"
			}
			root.Child("prefill", off).Tag(tag).
				Attr("tokens", fmt.Sprint(ch.Tokens)).
				End(off + chunkDur[i])
			off += chunkDur[i]
		}
		if len(it.Decode) > 0 {
			root.Child("decode", off).Tag("decode").End(off + stepDur)
			off += stepDur
		}
		root.End(off)
	}
	s.schedule(s.now+dur, event{kind: evIterationEnd, inst: inst, epoch: inst.epoch})
	return nil
}

// finishIterationBatched applies the elapsed round: per-token events
// feed TTFT at the first emission and TPOT (mean inter-token gap) at
// completion.
func (s *simulation) finishIterationBatched(inst *instState) error {
	d := s.deps[inst.dep]
	inst.iterating = false
	inst.sch.Finish(
		func(r *reqState, emitted int) {
			r.emitted = emitted
			if !r.ttftSeen {
				r.ttftSeen = true
				r.firstTok = s.now
				d.sTTFT.Add(s.now - r.Arrival)
				if d.cSLOMet != nil && s.slo.TTFT > 0 && s.now-r.Arrival > s.slo.TTFT {
					r.sloViolated = true
				}
			}
		},
		func(r *reqState) {
			d.sE2E.Add(s.now - r.Arrival)
			if r.OutputTokens > 1 {
				tpot := (s.now - r.firstTok) / time.Duration(r.OutputTokens-1)
				d.sTPOT.Add(tpot)
				if d.cSLOMet != nil && s.slo.TPOT > 0 && tpot > s.slo.TPOT {
					r.sloViolated = true
				}
			}
			if d.cSLOMet != nil && !r.sloViolated {
				d.cSLOMet.Inc()
			}
			d.cCompleted.Inc()
			s.completed++
			d.outstanding--
			if s.now > d.lastDone {
				d.lastDone = s.now
			}
			if s.now > s.lastDone {
				s.lastDone = s.now
			}
			s.maybeFollowUp(r)
			s.freeReq(r)
		})
	if inst.sch.Idle() {
		s.markIdle(inst)
	}
	if err := s.tick(); err != nil {
		return err
	}
	return s.startIteration(inst)
}

func (s *simulation) maybeFollowUp(r *reqState) {
	d := s.deps[r.dep]
	fu := d.cfg.Workload.FollowUp
	if fu == nil || fu.Probability <= 0 {
		return
	}
	if fu.MaxTurns > 0 && r.turn >= fu.MaxTurns {
		return
	}
	if d.rng.Float64() >= fu.Probability {
		return
	}
	newTokens := fu.NewTokens
	if newTokens <= 0 {
		newTokens = workload.ShareGPTMeanPrompt / 4
	}
	next := s.newReq()
	next.Request = workload.Request{
		ID:           s.nextID,
		Arrival:      s.now + fu.ThinkTime,
		PromptTokens: r.PromptTokens + r.OutputTokens + newTokens,
		OutputTokens: r.OutputTokens,
	}
	next.dep = r.dep
	next.turn = r.turn + 1
	s.nextID++
	s.created++
	d.cFollowUps.Inc()
	s.schedule(next.Arrival, event{kind: evArrival, req: next})
}

func (s *simulation) markIdle(inst *instState) {
	inst.idleSince = s.now
	if s.deps[inst.dep].cfg.Scheduler.IdleTimeout > 0 {
		s.schedule(s.now+s.deps[inst.dep].cfg.Scheduler.IdleTimeout,
			event{kind: evIdleCheck, inst: inst, epoch: inst.epoch})
	}
}
