package cluster

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/faults"
	"github.com/medusa-repro/medusa/internal/obs"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// The event loop mirrors internal/serverless/sim.go — same event kinds,
// same (t, seq) heap tie-break, same continuous-batching iteration
// shape — extended with node-level placement: every launch first picks
// a node (locality vs load), then charges runtime init and the node
// cache's artifact fetch, overlapped (the node daemon pulls the
// artifact while the container boots).

type eventKind int

const (
	evArrival eventKind = iota
	evInstanceReady
	evIterationEnd
	evIdleCheck
	evNodeCrash
)

type event struct {
	t    time.Duration
	kind eventKind
	req  int
	inst int
	node int
	seq  int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// runtimeInitDuration mirrors the engine's runtime-initialization
// phase, paid by launches that miss the node's warm container pool.
const runtimeInitDuration = 830 * time.Millisecond

// reqState tracks one request through the fleet.
type reqState struct {
	workload.Request
	dep      int
	emitted  int
	ttftSeen bool
	turn     int
}

// instState is one provisioned instance, pinned to a node.
type instState struct {
	id         int
	dep        int
	node       int
	ready      bool
	retired    bool
	running    []*reqState
	iterating  bool
	idleSince  time.Duration
	launchedAt time.Duration
	retiredAt  time.Duration
	kvTokens   int
	captured   map[int]bool
	// degraded records the fault reason when the launch fell back to the
	// vanilla cold-start profile ("" for a clean Medusa launch).
	degraded string
}

// nodeState is one fleet node: a GPU budget, a warm-container pool and
// the tiered artifact cache.
type nodeState struct {
	id       int
	gpusUsed int
	warmLeft int // -1 = unbounded
	launches int
	crashed  bool
	cache    *artifactcache.NodeCache
}

// depState is one deployment's queue, profile and metrics.
type depState struct {
	cfg  serverless.Config
	prof *serverless.Profile
	name string
	// key is the deployment's artifact-cache key ("" when the strategy
	// fetches no artifact through the cache).
	key string
	// fallback is the vanilla cold-start profile degraded launches use
	// (nil when no injector is attached or the strategy has no artifact).
	fallback *serverless.Profile

	pending  []*reqState
	reg      *obs.Registry
	phases   *obs.PhaseBreakdown
	csTotal  time.Duration
	live     int
	firstArr time.Duration
	lastDone time.Duration
	rng      *rand.Rand
}

func (d *depState) liveChanged() {
	d.reg.Gauge("live_instances").Update(float64(d.live))
}

type simulation struct {
	cfg   Config
	reg   *obs.Registry // cluster-wide (cache counters)
	inj   *faults.Injector
	nodes []*nodeState

	deps      []*depState
	instances []*instState
	states    []*reqState

	now    time.Duration
	events eventHeap
	seq    int

	completed int
	lastDone  time.Duration
}

func (s *simulation) schedule(t time.Duration, ev event) {
	ev.t = t
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

func (s *simulation) run() (*Result, error) {
	heap.Init(&s.events)
	for di, d := range s.deps {
		// Pre-warmed instances occupy GPUs from time zero, placed like
		// any launch but charged no cold start.
		for i := 0; i < d.cfg.Prewarm; i++ {
			node := s.placeNode(d)
			if node == nil {
				break
			}
			inst := &instState{id: len(s.instances), dep: di, node: node.id, ready: true}
			s.instances = append(s.instances, inst)
			node.gpusUsed += d.cfg.TPDegree
			node.launches++
			d.live++
		}
		d.liveChanged()
	}
	for i := range s.states {
		s.schedule(s.states[i].Arrival, event{kind: evArrival, req: i})
	}
	if s.inj != nil {
		for _, nc := range s.inj.CrashSchedule() {
			s.schedule(nc.At.D(), event{kind: evNodeCrash, node: nc.Node})
		}
	}

	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		s.now = ev.t
		switch ev.kind {
		case evArrival:
			r := s.states[ev.req]
			s.deps[r.dep].pending = append(s.deps[r.dep].pending, r)
			if err := s.autoscaleAll(); err != nil {
				return nil, err
			}
			if err := s.dispatchIdle(); err != nil {
				return nil, err
			}
		case evInstanceReady:
			inst := s.instances[ev.inst]
			if inst.retired {
				// The instance's node crashed mid-provisioning; the
				// launch was already written off as lost.
				break
			}
			inst.ready = true
			s.markIdle(inst)
			if err := s.dispatchIdle(); err != nil {
				return nil, err
			}
		case evIterationEnd:
			if err := s.finishIteration(s.instances[ev.inst]); err != nil {
				return nil, err
			}
		case evNodeCrash:
			if err := s.crashNode(ev.node); err != nil {
				return nil, err
			}
		case evIdleCheck:
			inst := s.instances[ev.inst]
			d := s.deps[inst.dep]
			if !inst.retired && inst.ready && !inst.iterating && len(inst.running) == 0 &&
				s.now-inst.idleSince >= d.cfg.IdleTimeout {
				inst.retired = true
				inst.retiredAt = s.now
				s.nodes[inst.node].gpusUsed -= d.cfg.TPDegree
				d.live--
				d.liveChanged()
				if err := s.autoscaleAll(); err != nil {
					return nil, err
				}
				if err := s.dispatchIdle(); err != nil {
					return nil, err
				}
			}
		}
	}
	if s.completed != len(s.states) {
		return nil, fmt.Errorf("cluster: %d of %d requests completed", s.completed, len(s.states))
	}
	return s.assemble(), nil
}

func (s *simulation) assemble() *Result {
	out := &Result{Config: s.cfg, Metrics: s.reg, Makespan: s.lastDone}
	for _, d := range s.deps {
		completed := int(d.reg.Counter("completed").Value())
		coldStarts := int(d.reg.Counter("cold_starts").Value())
		degraded := int(d.reg.Counter("degraded_cold_starts").Value())
		out.PerDeployment = append(out.PerDeployment, &DeploymentResult{
			Name:            d.name,
			TTFT:            d.reg.Sample("ttft"),
			E2E:             d.reg.Sample("e2e"),
			ColdStart:       d.reg.Sample("cold_start"),
			Completed:       completed,
			ColdStarts:      coldStarts,
			Degraded:        degraded,
			ColdStartPhases: d.phases,
			ColdStartTotal:  d.csTotal,
			Metrics:         d.reg,
		})
		out.TotalColdStarts += coldStarts
		out.Degraded += degraded
	}
	out.Requeued = int(s.reg.Counter("requeued").Value())
	out.NodeCrashes = int(s.reg.Counter("node_crashes").Value())
	for _, n := range s.nodes {
		st := n.cache.Stats()
		out.PerNode = append(out.PerNode, NodeResult{ID: n.id, Launches: n.launches, Crashed: n.crashed, Cache: st})
		out.Cache.Add(st)
	}
	for _, inst := range s.instances {
		end := s.lastDone
		if inst.retired {
			end = inst.retiredAt
		}
		if end > inst.launchedAt {
			out.GPUSeconds += (end - inst.launchedAt).Seconds() *
				float64(s.deps[inst.dep].cfg.TPDegree)
		}
	}
	return out
}

func (s *simulation) outstanding(di int) int {
	n := len(s.deps[di].pending)
	for _, inst := range s.instances {
		if inst.dep == di && !inst.retired {
			n += len(inst.running)
		}
	}
	return n
}

func (s *simulation) autoscaleAll() error {
	progress := true
	for progress {
		progress = false
		for di := range s.deps {
			launched, err := s.launchOne(di)
			if err != nil {
				return err
			}
			if launched {
				progress = true
			}
		}
	}
	return nil
}

// localityScore grades how close a node's cache is to holding the
// artifact: RAM-resident is ideal, an in-flight transfer is nearly as
// good (it lands while the container boots), SSD costs one local read.
func localityScore(tier artifactcache.Tier, ok bool) float64 {
	if !ok {
		return 0
	}
	switch tier {
	case artifactcache.TierRAM:
		return 1.0
	case artifactcache.TierRemote: // in-flight
		return 0.9
	case artifactcache.TierSSD:
		return 0.7
	}
	return 0
}

// placeNode picks the launch node: among nodes with enough free GPUs,
// the one maximizing LocalityWeight·locality − load. Strict comparison
// over ascending ids makes ties go to the lowest node id. Returns nil
// when no node can host the instance.
func (s *simulation) placeNode(d *depState) *nodeState {
	var best *nodeState
	bestScore := 0.0
	for _, n := range s.nodes {
		if n.crashed || n.gpusUsed+d.cfg.TPDegree > s.cfg.GPUsPerNode {
			continue
		}
		score := -float64(n.gpusUsed) / float64(s.cfg.GPUsPerNode)
		if d.key != "" && s.cfg.LocalityWeight > 0 {
			tier, ok := n.cache.Locate(d.key, s.now)
			score += s.cfg.LocalityWeight * localityScore(tier, ok)
		}
		if best == nil || score > bestScore {
			best = n
			bestScore = score
		}
	}
	return best
}

// launchOne starts at most one instance for the deployment if demand
// warrants and some node has free GPUs. The launch overlaps runtime
// initialization with the node cache's artifact fetch: the node daemon
// pulls the artifact while the container boots, and loading begins
// when both are done.
func (s *simulation) launchOne(di int) (bool, error) {
	d := s.deps[di]
	out := s.outstanding(di)
	if out == 0 {
		return false, nil
	}
	desired := 1 + (out-1)/d.cfg.InstanceTarget
	if d.live >= desired {
		return false, nil
	}
	node := s.placeNode(d)
	if node == nil {
		return false, nil
	}
	inst := &instState{id: len(s.instances), dep: di, node: node.id, idleSince: s.now, launchedAt: s.now}
	s.instances = append(s.instances, inst)
	node.gpusUsed += d.cfg.TPDegree
	node.launches++
	d.reg.Counter("cold_starts").Inc()
	d.live++
	d.liveChanged()

	intervals := make([]obs.Interval, 0, 10)
	riEnd := s.now
	if node.warmLeft == 0 {
		riEnd = s.now + runtimeInitDuration
		intervals = append(intervals, obs.Interval{
			Phase: engine.StageRuntimeInit, Start: s.now, End: riEnd})
	} else if node.warmLeft > 0 {
		node.warmLeft--
	}
	loadStart := riEnd
	prof := d.prof
	var fetch artifactcache.FetchResult
	if d.key != "" {
		var err error
		fetch, err = node.cache.Fetch(s.now, d.key)
		if err != nil {
			// The registry fetch exhausted its retry budget. The failed
			// attempts still burned virtual time (fetch.Ready marks the
			// instant failure was known); the launch degrades to the
			// vanilla stages, which read weights from the model store
			// rather than the artifact registry.
			reason, degradable := faults.DegradeReason(err)
			if !degradable || d.fallback == nil {
				return false, err
			}
			intervals = append(intervals, obs.Interval{
				Phase: engine.StageRestoreFailed, Start: s.now, End: fetch.Ready})
			if fetch.Ready > loadStart {
				loadStart = fetch.Ready
			}
			s.degradeLaunch(d, inst, reason)
			prof = d.fallback
		} else {
			intervals = append(intervals, obs.Interval{
				Phase: engine.StageArtifactFetch, Start: s.now, End: fetch.Ready})
			if fetch.Ready > loadStart {
				loadStart = fetch.Ready
			}
			if s.inj != nil && d.fallback != nil {
				if s.inj.Inject(faults.SiteArtifactCorrupt, d.key) {
					// Checksum verification fails right after the read and
					// decode: nothing beyond the fetch is wasted, but the
					// untrusted cached copy must go.
					node.cache.Discard(d.key)
					s.degradeLaunch(d, inst, faults.ReasonCorruptArtifact)
					prof = d.fallback
				} else if s.inj.Inject(faults.SiteRestoreMismatch, d.key) {
					// Validation rejects the restore only after the whole
					// restore pipeline ran: the full Medusa loading phase
					// is wasted before the vanilla stages start over.
					wasted := d.prof.ColdStart()
					intervals = append(intervals, obs.Interval{
						Phase: engine.StageRestoreFailed, Start: loadStart, End: loadStart + wasted})
					loadStart += wasted
					s.degradeLaunch(d, inst, faults.ReasonRestoreMismatch)
					prof = d.fallback
				}
			}
		}
	}
	intervals = append(intervals, obs.TimelineIntervals(prof.Timeline(), loadStart)...)
	d.phases.AddExclusive(intervals)
	ready := loadStart + prof.ColdStart()
	d.csTotal += ready - s.now
	d.reg.Sample("cold_start").Add(ready - s.now)
	if tr := d.cfg.Tracer; tr != nil {
		root := tr.StartSpan(s.instTrack(inst), "cold_start", s.now).
			Tag("cold_start").
			Attr("strategy", d.cfg.Strategy.String()).
			Attr("model", d.cfg.Model.Name).
			Attr("node", fmt.Sprintf("node%d", node.id))
		if d.key != "" {
			root.Attr("fetch_tier", fetch.Tier.String())
		}
		if inst.degraded != "" {
			root.Attr("degraded_reason", inst.degraded)
		}
		for _, iv := range intervals {
			root.Child(iv.Phase, iv.Start).Tag(iv.Phase).End(iv.End)
		}
		root.End(ready)
	}
	s.schedule(ready, event{kind: evInstanceReady, inst: inst.id})
	return true, nil
}

func (s *simulation) instTrack(inst *instState) string {
	return fmt.Sprintf("%s/node%d/inst-%d", s.deps[inst.dep].name, inst.node, inst.id)
}

// profOf resolves which profile governs an instance's serving costs: the
// deployment's primary profile, or the vanilla fallback when the launch
// degraded.
func (s *simulation) profOf(inst *instState) *serverless.Profile {
	d := s.deps[inst.dep]
	if inst.degraded != "" && d.fallback != nil {
		return d.fallback
	}
	return d.prof
}

// degradeLaunch records one launch's fall-back to the vanilla cold-start
// stages, in both the deployment's and the cluster's registries.
func (s *simulation) degradeLaunch(d *depState, inst *instState, reason string) {
	inst.degraded = reason
	d.reg.Counter("degraded_cold_starts").Inc()
	d.reg.Counter("degraded_" + reason).Inc()
	s.reg.Counter("degraded_cold_starts").Inc()
	s.reg.Counter("faults_" + reason).Inc()
}

// crashNode kills one node at the plan's instant: its cache tiers are
// lost, its instances (ready or mid-provisioning) retire, and every
// request that was running on it is requeued onto the deployment's
// pending queue for surviving nodes to pick up. TTFT is sampled at most
// once per request, so a requeued request that already streamed tokens
// does not re-enter the TTFT distribution.
func (s *simulation) crashNode(id int) error {
	node := s.nodes[id]
	if node.crashed {
		return nil
	}
	node.crashed = true
	node.cache.MarkLost()
	s.reg.Counter("node_crashes").Inc()
	for _, inst := range s.instances {
		if inst.node != id || inst.retired {
			continue
		}
		d := s.deps[inst.dep]
		inst.retired = true
		inst.retiredAt = s.now
		node.gpusUsed -= d.cfg.TPDegree
		d.live--
		d.liveChanged()
		if !inst.ready {
			// Mid-provisioning: the cold start is lost with the node. Its
			// evInstanceReady event still fires and is ignored.
			d.reg.Counter("lost_cold_starts").Inc()
			s.reg.Counter("lost_cold_starts").Inc()
		}
		for _, r := range inst.running {
			// Partial generation is lost: the request restarts from its
			// first output token on whichever instance re-admits it.
			r.emitted = 0
			d.pending = append(d.pending, r)
			d.reg.Counter("requeued").Inc()
			s.reg.Counter("requeued").Inc()
		}
		inst.running = nil
		inst.iterating = false
		inst.kvTokens = 0
	}
	if err := s.autoscaleAll(); err != nil {
		return err
	}
	return s.dispatchIdle()
}

func (s *simulation) dispatchIdle() error {
	for _, inst := range s.instances {
		if inst.ready && !inst.retired && !inst.iterating {
			if err := s.startIteration(inst); err != nil {
				return err
			}
		}
	}
	return nil
}

// admit moves pending requests of the instance's deployment into it up
// to batch and KV capacity.
func (s *simulation) admit(inst *instState) []*reqState {
	d := s.deps[inst.dep]
	var admitted []*reqState
	for len(d.pending) > 0 && len(inst.running) < d.cfg.MaxBatch {
		r := d.pending[0]
		need := r.PromptTokens + r.OutputTokens
		if inst.kvTokens+need > s.profOf(inst).MaxKVTokens() {
			break
		}
		d.pending = d.pending[1:]
		inst.kvTokens += need
		inst.running = append(inst.running, r)
		admitted = append(admitted, r)
	}
	return admitted
}

func (s *simulation) startIteration(inst *instState) error {
	d := s.deps[inst.dep]
	admitted := s.admit(inst)
	if tr := d.cfg.Tracer; tr != nil {
		for _, r := range admitted {
			tr.RecordSpan(d.name+"/queue", fmt.Sprintf("req-%d", r.ID), "queued",
				r.Arrival, s.now,
				obs.Attr{Key: "prompt_tokens", Value: fmt.Sprint(r.PromptTokens)},
				obs.Attr{Key: "turn", Value: fmt.Sprint(r.turn)})
		}
	}
	if len(inst.running) == 0 {
		return nil
	}
	var dur time.Duration
	prof := s.profOf(inst)
	if prof.Deferred() {
		gb, c, err := prof.CaptureCost(len(inst.running))
		if err != nil {
			return err
		}
		if inst.captured == nil {
			inst.captured = make(map[int]bool)
		}
		if !inst.captured[gb] {
			inst.captured[gb] = true
			dur += c
		}
	}
	for _, r := range admitted {
		p, err := prof.Prefill(r.PromptTokens)
		if err != nil {
			return err
		}
		dur += p
	}
	step, err := prof.DecodeStep(len(inst.running))
	if err != nil {
		return err
	}
	dur += step
	inst.iterating = true
	d.reg.Counter("iterations").Inc()
	if tr := d.cfg.Tracer; tr != nil {
		phase := "decode"
		if len(admitted) > 0 {
			phase = "prefill+decode"
		}
		tr.RecordSpan(s.instTrack(inst), "iteration", phase, s.now, s.now+dur,
			obs.Attr{Key: "batch", Value: fmt.Sprint(len(inst.running))},
			obs.Attr{Key: "admitted", Value: fmt.Sprint(len(admitted))})
	}
	s.schedule(s.now+dur, event{kind: evIterationEnd, inst: inst.id})
	return nil
}

func (s *simulation) finishIteration(inst *instState) error {
	if inst.retired {
		// The node crashed mid-iteration; the batch was requeued and the
		// pending iteration-end event means nothing.
		return nil
	}
	d := s.deps[inst.dep]
	inst.iterating = false
	keep := inst.running[:0]
	for _, r := range inst.running {
		r.emitted++
		if !r.ttftSeen {
			r.ttftSeen = true
			d.reg.Sample("ttft").Add(s.now - r.Arrival)
		}
		if r.emitted >= r.OutputTokens {
			d.reg.Sample("e2e").Add(s.now - r.Arrival)
			d.reg.Counter("completed").Inc()
			s.completed++
			inst.kvTokens -= r.PromptTokens + r.OutputTokens
			if s.now > d.lastDone {
				d.lastDone = s.now
			}
			if s.now > s.lastDone {
				s.lastDone = s.now
			}
			s.maybeFollowUp(r)
			continue
		}
		keep = append(keep, r)
	}
	inst.running = keep
	if len(inst.running) == 0 {
		s.markIdle(inst)
	}
	if err := s.autoscaleAll(); err != nil {
		return err
	}
	return s.startIteration(inst)
}

func (s *simulation) maybeFollowUp(r *reqState) {
	d := s.deps[r.dep]
	fu := d.cfg.FollowUp
	if fu == nil || fu.Probability <= 0 {
		return
	}
	if fu.MaxTurns > 0 && r.turn >= fu.MaxTurns {
		return
	}
	if d.rng.Float64() >= fu.Probability {
		return
	}
	newTokens := fu.NewTokens
	if newTokens <= 0 {
		newTokens = workload.ShareGPTMeanPrompt / 4
	}
	next := &reqState{
		Request: workload.Request{
			ID:           len(s.states),
			Arrival:      s.now + fu.ThinkTime,
			PromptTokens: r.PromptTokens + r.OutputTokens + newTokens,
			OutputTokens: r.OutputTokens,
		},
		dep:  r.dep,
		turn: r.turn + 1,
	}
	s.states = append(s.states, next)
	d.reg.Counter("follow_ups").Inc()
	s.schedule(next.Arrival, event{kind: evArrival, req: next.ID})
}

func (s *simulation) markIdle(inst *instState) {
	inst.idleSince = s.now
	if s.deps[inst.dep].cfg.IdleTimeout > 0 {
		s.schedule(s.now+s.deps[inst.dep].cfg.IdleTimeout, event{kind: evIdleCheck, inst: inst.id})
	}
}
