package cluster

import (
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// benchZipfFleet assembles the Zipf-fleet workload the simulator-core
// performance work is measured against: ten models of skewed
// popularity churning through two nodes with tight caches and short
// idle timeouts, so the run exercises placement, cache contention,
// continual relaunching and the full event-loop hot path.
func benchZipfFleet(b *testing.B, rps float64, seconds int) Config {
	b.Helper()
	cfg := churnConfig(artifactcache.PolicyCostAware)
	cfg.Nodes = 4
	cfg.Cache.RAMBytes = 3 << 20
	cfg.Cache.SSDBytes = 6 << 20
	cfg.LocalityWeight = 0.8
	deps := make([]serverless.Deployment, 0, len(fixtureModels))
	for i, name := range fixtureModels {
		deps = append(deps, serverless.Deployment{
			Name:   name,
			Config: idleOut(medusaDeployment(b, name, int64(i+1)), 250*time.Millisecond),
		})
	}
	trace, err := workload.Generate(workload.TraceConfig{
		Seed: 97, RPS: rps, Duration: time.Duration(seconds) * time.Second,
		MeanOutput: 8, MaxOutput: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	split, err := ZipfDeployments(deps, trace, 43, 1.2)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Deployments = split
	return cfg
}

// BenchmarkClusterSimWallclock is the headline simulator-core
// benchmark: wall-clock and allocations for one Zipf-fleet run
// (results/perf-simcore.txt tracks its trajectory across PRs). The two
// sizes expose the core's scaling behaviour: a core that is linear in
// events costs ~4x more for the 4x workload, anything worse shows up
// immediately.
func BenchmarkClusterSimWallclock(b *testing.B) {
	for _, bc := range []struct {
		name    string
		rps     float64
		seconds int
	}{
		{"zipf-6k", 50, 120},
		{"zipf-24k", 200, 120},
		// An hour of fleet time: instance churn (idle-timeout retirement
		// plus relaunch) accumulates thousands of launches, which is
		// where per-event scans over everything-ever-launched go
		// quadratic and an O(active) core does not.
		{"zipf-180k", 50, 3600},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := benchZipfFleet(b, bc.rps, bc.seconds)
			total := 0
			for _, d := range cfg.Deployments {
				total += len(d.Requests)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Each deployment's Requests slice is read-only to Run, so
				// the config is reusable across iterations.
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(total), "requests")
					b.ReportMetric(float64(res.TotalColdStarts), "cold_starts")
				}
			}
		})
	}
}
