package cluster

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/medusa"
	"github.com/medusa-repro/medusa/internal/model"
	"github.com/medusa-repro/medusa/internal/obs"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/workload"
)

// fixtureModels are the zoo models the cluster tests deploy, in
// roughly ascending artifact size (the Zipf tests map popularity rank
// onto this order: the most popular models are the smallest, the
// regime where cost-aware eviction pays off).
var fixtureModels = []string{
	"Qwen1.5-0.5B", "Qwen1.5-1.8B", "Llama2-7B", "Qwen1.5-7B", "Yi-6B",
	"Falcon-7B", "Llama2-13B", "Qwen1.5-4B", "Qwen1.5-14B", "Yi-9B",
}

// The offline phase runs once per model per test binary (the paper's
// deployment model pays it once per model); every test shares the
// store and artifacts.
var (
	fixtureOnce  sync.Once
	fixtureStore *storage.Store
	fixtureArts  map[string]struct {
		cfg   model.Config
		art   *medusa.Artifact
		bytes uint64
	}
	fixtureErr error
)

// medusaDeployment builds one Medusa-strategy deployment config for a
// fixture model.
func medusaDeployment(t testing.TB, name string, seed int64) serverless.Config {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureStore = storage.NewStore(storage.DefaultArray())
		fixtureArts = make(map[string]struct {
			cfg   model.Config
			art   *medusa.Artifact
			bytes uint64
		})
		for _, n := range fixtureModels {
			cfg, err := model.ByName(n)
			if err != nil {
				fixtureErr = err
				return
			}
			art, rep, err := engine.RunOffline(engine.OfflineOptions{Model: cfg, Store: fixtureStore, Seed: 500})
			if err != nil {
				fixtureErr = err
				return
			}
			fixtureArts[n] = struct {
				cfg   model.Config
				art   *medusa.Artifact
				bytes uint64
			}{cfg, art, rep.ArtifactBytes}
		}
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	fa, ok := fixtureArts[name]
	if !ok {
		t.Fatalf("model %s not in fixture", name)
	}
	return serverless.Config{
		Model:         fa.cfg,
		Strategy:      engine.StrategyMedusa,
		Store:         fixtureStore,
		Cache:         serverless.CacheSpec{Artifact: fa.art, ArtifactBytes: fa.bytes},
		Seed:          seed,
	}
}

// tracerFixture pairs a tracer with its serialized export.
type tracerFixture struct{ tracer *obs.Tracer }

func obsTracer() tracerFixture { return tracerFixture{tracer: obs.NewTracer()} }

func (f tracerFixture) chrome(t testing.TB) string {
	t.Helper()
	var buf bytes.Buffer
	if err := f.tracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func genTrace(t testing.TB, seed int64, rps float64, seconds int) []workload.Request {
	t.Helper()
	reqs, err := workload.Generate(workload.TraceConfig{
		Seed: seed, RPS: rps, Duration: time.Duration(seconds) * time.Second,
		MeanOutput: 16, MaxOutput: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// churnConfig is a fleet sized so artifacts contend for cache space:
// tiers hold one or two of the fixture artifacts (1.6–3 MiB each), and
// short idle timeouts force continual relaunching.
func churnConfig(policy artifactcache.PolicyKind) Config {
	const MiB = 1 << 20
	p := artifactcache.DefaultParams()
	p.RAMBytes = 3 * MiB
	p.SSDBytes = 6 * MiB
	p.Policy = policy
	return Config{
		Nodes:          2,
		GPUsPerNode:    4,
		Cache:          p,
		LocalityWeight: DefaultLocalityWeight,
		Seed:           7,
	}
}

func idleOut(cfg serverless.Config, d time.Duration) serverless.Config {
	cfg.Scheduler.IdleTimeout = d
	return cfg
}

func TestClusterCompletesAndConserves(t *testing.T) {
	cfg := churnConfig(artifactcache.PolicyLRU)
	vllmDep := medusaDeployment(t, "Qwen1.5-1.8B", 2)
	vllmDep.Strategy = engine.StrategyVLLM
	vllmDep.Cache = serverless.CacheSpec{}
	cfg.Deployments = []serverless.Deployment{
		{Name: "medusa-0.5b", Config: idleOut(medusaDeployment(t, "Qwen1.5-0.5B", 1), 300*time.Millisecond),
			Requests: genTrace(t, 11, 2, 20)},
		{Name: "vllm-1.8b", Config: idleOut(vllmDep, 300*time.Millisecond),
			Requests: genTrace(t, 12, 1, 20)},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range res.PerDeployment {
		total += d.Completed
		if d.Completed == 0 {
			t.Fatalf("deployment %s completed nothing", d.Name)
		}
	}
	want := len(cfg.Deployments[0].Requests) + len(cfg.Deployments[1].Requests)
	if total != want {
		t.Fatalf("completed %d of %d", total, want)
	}

	// Conservation: per-tier hits + misses + coalesced fetches equal
	// the artifact-strategy launches exactly; the vLLM deployment never
	// touches the cache.
	medusaCS := res.PerDeployment[0].ColdStarts
	if res.Cache.Requests() != medusaCS {
		t.Fatalf("cache requests %d != medusa cold starts %d (stats %+v)",
			res.Cache.Requests(), medusaCS, res.Cache)
	}
	if medusaCS < 3 {
		t.Fatalf("workload produced only %d medusa cold starts; cache barely exercised", medusaCS)
	}
	// Registry counters agree with the per-node stats they mirror.
	reg := res.Metrics
	if got := int(reg.Counter("cache_ram_hits").Value() + reg.Counter("cache_ssd_hits").Value() +
		reg.Counter("cache_misses").Value() + reg.Counter("cache_coalesced").Value()); got != res.Cache.Requests() {
		t.Fatalf("registry counters sum to %d, stats to %d", got, res.Cache.Requests())
	}
	// Phase attribution stays exact under the overlapped fetch model.
	for _, d := range res.PerDeployment {
		if drift := d.ColdStartPhases.Total() - d.ColdStartTotal; drift != 0 {
			t.Fatalf("deployment %s: phase attribution drifted by %v", d.Name, drift)
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	for _, policy := range artifactcache.PolicyKinds() {
		run := func() (string, string) {
			cfg := churnConfig(policy)
			cfg.PrewarmSSD = policy == artifactcache.PolicyLFU // vary the setup per policy arm
			tr := obsTracer()
			cfg.Tracer = tr.tracer
			cfg.Deployments = []serverless.Deployment{
				{Name: "a", Config: idleOut(medusaDeployment(t, "Qwen1.5-0.5B", 1), 250*time.Millisecond),
					Requests: genTrace(t, 21, 2, 15)},
				{Name: "b", Config: idleOut(medusaDeployment(t, "Llama2-7B", 2), 250*time.Millisecond),
					Requests: genTrace(t, 22, 1, 15)},
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res.Render() + res.Metrics.Render(), tr.chrome(t)
		}
		r1, c1 := run()
		r2, c2 := run()
		if r1 != r2 {
			t.Fatalf("%v: rendered results differ across identical runs:\n--- run1\n%s\n--- run2\n%s", policy, r1, r2)
		}
		if c1 != c2 {
			t.Fatalf("%v: chrome trace exports differ across identical runs", policy)
		}
		// A different scheduler parallelism must not change a byte.
		prev := runtime.GOMAXPROCS(1)
		r3, c3 := run()
		runtime.GOMAXPROCS(prev)
		if r3 != r1 || c3 != c1 {
			t.Fatalf("%v: results differ under GOMAXPROCS=1", policy)
		}
		if !strings.Contains(r1, "cache total") {
			t.Fatalf("render missing cache section:\n%s", r1)
		}
	}
}

// zipfWorkload splits one Poisson trace across the first n fixture
// models with Zipf popularity (rank 0 = smallest artifact).
func zipfWorkload(t testing.TB, n int, idle time.Duration, traceSeed int64, rps float64, seconds int) []serverless.Deployment {
	t.Helper()
	deps := make([]serverless.Deployment, 0, n)
	for i, name := range fixtureModels[:n] {
		deps = append(deps, serverless.Deployment{
			Name:   name,
			Config: idleOut(medusaDeployment(t, name, int64(i+1)), idle),
		})
	}
	split, err := ZipfDeployments(deps, genTrace(t, traceSeed, rps, seconds), 43, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	return split
}

// TestLocalityImprovesHitRate compares locality-aware placement with
// pure load balancing on the same multi-model churn workload: steering
// launches toward nodes that already hold the artifact must raise the
// fleet's local hit rate — spreading by load alone splits each model's
// working set across nodes whose tight caches can't all retain it.
func TestLocalityImprovesHitRate(t *testing.T) {
	run := func(weight float64) *Result {
		cfg := churnConfig(artifactcache.PolicyLRU)
		cfg.LocalityWeight = weight
		cfg.Deployments = zipfWorkload(t, 6, 150*time.Millisecond, 31, 4, 30)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	local := run(0.8)
	spread := run(0)
	if local.Cache.Requests() < 20 {
		t.Fatalf("only %d launches; workload too tame to compare placement", local.Cache.Requests())
	}
	lr, sr := local.Cache.HitRate(), spread.Cache.HitRate()
	if lr <= sr {
		t.Fatalf("locality hit rate %.3f not above load-balanced %.3f (local %+v, spread %+v)",
			lr, sr, local.Cache, spread.Cache)
	}
	t.Logf("hit rate: locality %.3f vs load-balanced %.3f over %d fetches", lr, sr, local.Cache.Requests())
}

// TestCostAwareBeatsLRUOnZipf is the acceptance check: on a skewed
// multi-model workload with cache churn, the cost-aware policy's
// cluster hit rate must beat LRU's.
func TestCostAwareBeatsLRUOnZipf(t *testing.T) {
	mkDeps := func() ([]serverless.Deployment, error) {
		return zipfWorkload(t, len(fixtureModels), 150*time.Millisecond, 41, 4, 40), nil
	}
	base := churnConfig(artifactcache.PolicyLRU)
	// Tight tiers: SSD holds two small artifacts or one large one, so
	// the eviction policy decides which models stay local while the
	// Zipf tail streams one-shot artifacts through.
	base.Cache.RAMBytes = 2 << 20
	base.Cache.SSDBytes = 6 << 20
	base.LocalityWeight = 0.8
	results, err := RunPolicySweep(base, mkDeps)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[artifactcache.PolicyKind]*Result{}
	for i, kind := range artifactcache.PolicyKinds() {
		byPolicy[kind] = results[i]
		if results[i].Cache.Requests() < 10 {
			t.Fatalf("%v: only %d artifact fetches; workload not churning", kind, results[i].Cache.Requests())
		}
	}
	lru := byPolicy[artifactcache.PolicyLRU].Cache.HitRate()
	gdsf := byPolicy[artifactcache.PolicyCostAware].Cache.HitRate()
	if gdsf <= lru {
		t.Fatalf("cost-aware hit rate %.3f not above LRU %.3f\nlru: %+v\ngdsf: %+v",
			gdsf, lru, byPolicy[artifactcache.PolicyLRU].Cache, byPolicy[artifactcache.PolicyCostAware].Cache)
	}
	t.Logf("hit rate: lru %.3f lfu %.3f costaware %.3f over %d fetches",
		lru, byPolicy[artifactcache.PolicyLFU].Cache.HitRate(), gdsf,
		byPolicy[artifactcache.PolicyCostAware].Cache.Requests())
}

func TestPrewarmSSDServesFirstLaunchLocally(t *testing.T) {
	cfg := churnConfig(artifactcache.PolicyLRU)
	// Tiers large enough that nothing is evicted after the prewarm.
	cfg.Cache.RAMBytes = 64 << 20
	cfg.Cache.SSDBytes = 64 << 20
	cfg.PrewarmSSD = true
	cfg.Deployments = []serverless.Deployment{
		{Name: "a", Config: idleOut(medusaDeployment(t, "Qwen1.5-0.5B", 1), 300*time.Millisecond),
			Requests: genTrace(t, 51, 2, 10)},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Misses != 0 {
		t.Fatalf("prewarmed fleet still missed %d times: %+v", res.Cache.Misses, res.Cache)
	}
	if res.Cache.SSDHits == 0 {
		t.Fatalf("prewarmed fleet never hit SSD: %+v", res.Cache)
	}
}

func TestZipfDeployments(t *testing.T) {
	trace := genTrace(t, 61, 5, 30)
	deps := make([]serverless.Deployment, 4)
	for i := range deps {
		deps[i].Name = fixtureModels[i]
	}
	split, err := ZipfDeployments(deps, trace, 9, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, d := range split {
		if len(d.Requests) == 0 {
			t.Fatalf("deployment %d got no requests", i)
		}
		total += len(d.Requests)
		for j := 1; j < len(d.Requests); j++ {
			if d.Requests[j].Arrival < d.Requests[j-1].Arrival {
				t.Fatalf("deployment %d arrivals out of order", i)
			}
		}
	}
	if total != len(trace) {
		t.Fatalf("split %d requests, had %d", total, len(trace))
	}
	if len(split[0].Requests) <= len(split[len(split)-1].Requests) {
		t.Fatalf("skew inverted: rank 0 got %d, last rank %d",
			len(split[0].Requests), len(split[len(split)-1].Requests))
	}
	// Same seed, same split.
	again, err := ZipfDeployments(deps, trace, 9, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range split {
		if len(split[i].Requests) != len(again[i].Requests) {
			t.Fatalf("split not deterministic for deployment %d", i)
		}
	}
	if _, err := ZipfDeployments(deps, trace, 9, 0.9); err == nil {
		t.Fatal("skew ≤ 1 should be rejected")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config should be rejected (no deployments)")
	}
	if _, err := Run(Config{LocalityWeight: -1,
		Deployments: []serverless.Deployment{{}}}); err == nil {
		t.Fatal("negative locality weight should be rejected")
	}
	if _, err := Run(Config{
		Deployments: []serverless.Deployment{{Name: "empty"}}}); err == nil {
		t.Fatal("empty trace should be rejected")
	}
}
