// Package cluster extends the serverless simulator to a multi-node
// fleet with a tiered artifact cache. The single-pool simulator answers
// "how bad are cold starts"; this package answers the question the
// fleet operator actually faces: WHERE to place a cold-starting
// instance so the (model, strategy) artifact it needs is already
// nearby. Each node fronts the shared artifact registry with a
// two-tier local cache (host page cache, node-local SSD — see
// internal/artifactcache), and the placer trades artifact locality
// against load balance with a configurable weight.
//
// Everything is deterministic: one event loop on virtual time, heap
// tie-breaks by sequence number, RNGs seeded from the Config, no wall
// clock. Fixed-seed runs render byte-identical Results and obs exports
// regardless of repetition or GOMAXPROCS.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/autoscale"
	"github.com/medusa-repro/medusa/internal/engine"
	"github.com/medusa-repro/medusa/internal/faults"
	"github.com/medusa-repro/medusa/internal/kvcache"
	"github.com/medusa-repro/medusa/internal/metrics"
	"github.com/medusa-repro/medusa/internal/obs"
	"github.com/medusa-repro/medusa/internal/router"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/storage"
	"github.com/medusa-repro/medusa/internal/workload"
)

// DefaultLocalityWeight is the placement trade-off used when callers do
// not set one: locality contributes up to this much score against a
// load term in [0, 1].
const DefaultLocalityWeight = 0.6

// Config parameterizes one multi-node simulation.
type Config struct {
	// Nodes is the fleet size (default 2).
	Nodes int
	// GPUsPerNode bounds instances per node (default 4, the paper's
	// testbed as one node).
	GPUsPerNode int
	// Cache sizes and times each node's local tiers and selects the
	// eviction policy (zero value: artifactcache.DefaultParams).
	Cache artifactcache.Params
	// Network times the shared artifact registry link (zero value:
	// artifactcache.DefaultNetwork).
	Network storage.Array
	// LocalityWeight scales the placer's preference for nodes whose
	// cache holds the deployment's artifact: score = weight·locality −
	// load. 0 means pure load balancing; negative values are rejected.
	LocalityWeight float64
	// WarmContainersPerNode sizes each node's pool of pre-initialized
	// execution environments; launches beyond it also pay runtime init.
	// 0 means unbounded (the paper's assumption).
	WarmContainersPerNode int
	// PrewarmSSD pre-pulls every deployment's artifact onto every
	// node's SSD tier before the trace starts (operator-driven warm-up,
	// charged no virtual time).
	PrewarmSSD bool
	// Seed namespaces the simulation's RNGs (follow-up sampling).
	Seed int64
	// Deployments are the co-located models, sharing the fleet.
	Deployments []serverless.Deployment
	// Tracer, when set, receives cold-start, iteration and queueing
	// spans (as the single-pool simulator records) plus per-node cache
	// fetch spans on "storage/cache/node<N>" tracks.
	Tracer *obs.Tracer
	// Arrivals, when set, streams the whole fleet's traffic instead of
	// per-deployment Requests slices: the simulator pulls one arrival at
	// a time, so memory stays O(active requests) however long the trace.
	// Each emitted deployment index must be valid and arrivals must be
	// nondecreasing. Deployments' Requests/Source fields are ignored
	// when set.
	Arrivals serverless.ArrivalSource
	// RetainPerRequest keeps every per-request latency observation in
	// the result samples (exact quantiles, O(requests) memory). Off by
	// default: samples keep exact count/mean/max plus a deterministic
	// bounded reservoir for quantiles.
	RetainPerRequest bool
	// Autoscaler decides how many instances each deployment keeps live,
	// evaluated on every control tick (arrival, iteration end, idle
	// retirement, node crash). Nil selects the reactive baseline, which
	// reproduces the legacy autoscaler byte-for-byte. A stateful policy
	// (autoscale.NewPredictive) must not be shared across runs.
	Autoscaler autoscale.Policy
	// Router orders each deployment's ready instances for dispatch by
	// score (queue depth, KV headroom, artifact locality, predicted
	// TTFT), ties broken by lowest instance id. Nil keeps the legacy
	// launch-order walk, byte-identical to before routing was pluggable.
	Router router.Policy
	// SLO, when nonzero, enables per-request deadline accounting: each
	// deployment reports how many completed requests met every
	// configured deadline, and the Result carries fleet-wide SLO
	// attainment. The zero value changes nothing.
	SLO serverless.SLO
	// Faults, when holding a nonzero plan, injects deterministic faults
	// (artifact corruption, registry fetch timeouts, SSD read errors,
	// restore-validation mismatches, node crashes) into the run. Every
	// injected fault is survivable: launches degrade to the vanilla
	// cold-start stages and crashed nodes' work is re-placed. A nil or
	// zero plan leaves the simulation bit-identical to a fault-free
	// build. The sub-config and its Validate are shared with the
	// single-pool simulator. See FAILURES.md for the full catalog.
	Faults serverless.FaultSpec
}

func (c Config) withDefaults() (Config, error) {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 4
	}
	if c.Nodes < 0 || c.GPUsPerNode < 0 {
		return c, fmt.Errorf("cluster: Nodes %d and GPUsPerNode %d must be positive", c.Nodes, c.GPUsPerNode)
	}
	if c.LocalityWeight < 0 {
		return c, fmt.Errorf("cluster: LocalityWeight must be ≥ 0, got %g", c.LocalityWeight)
	}
	if c.WarmContainersPerNode < 0 {
		return c, fmt.Errorf("cluster: WarmContainersPerNode must be ≥ 0, got %d", c.WarmContainersPerNode)
	}
	if err := c.SLO.Validate(); err != nil {
		return c, err
	}
	if c.Cache == (artifactcache.Params{}) {
		c.Cache = artifactcache.DefaultParams()
	}
	if c.Network == (storage.Array{}) {
		c.Network = artifactcache.DefaultNetwork()
	}
	if len(c.Deployments) == 0 {
		return c, fmt.Errorf("cluster: no deployments")
	}
	if c.Faults.Plan != nil {
		if err := c.Faults.Validate(); err != nil {
			return c, err
		}
		crashed := make(map[int]bool)
		for _, nc := range c.Faults.Plan.NodeCrashes {
			if nc.Node >= c.Nodes {
				return c, fmt.Errorf("cluster: fault plan crashes node %d of a %d-node fleet", nc.Node, c.Nodes)
			}
			crashed[nc.Node] = true
		}
		if len(crashed) >= c.Nodes {
			return c, fmt.Errorf("cluster: fault plan crashes all %d nodes; at least one must survive", c.Nodes)
		}
	}
	return c, nil
}

// artifactCacheKey names a deployment's artifact in the registry and
// node caches — keyed by (model, strategy) so distinct artifact-based
// strategies of one model cache independently.
func artifactCacheKey(modelName string, strategy engine.Strategy) string {
	return engine.ArtifactKey(modelName) + "@" + strategy.String()
}

// DeploymentResult is one deployment's slice of the fleet outcome.
type DeploymentResult struct {
	// Name labels the deployment.
	Name string
	// TTFT / E2E are the request latency samples ("ttft"/"e2e" in
	// Metrics).
	TTFT *metrics.Sample
	// E2E is end-to-end request latency.
	E2E *metrics.Sample
	// TPOT is time-per-output-token — per completed request, the mean
	// inter-token gap. Recorded only in batched execution mode
	// (Scheduler.Batch enabled); nil otherwise.
	TPOT *metrics.Sample
	// Preemptions counts scheduler evictions under KV pressure
	// (batched execution mode only).
	Preemptions int
	// ColdStart samples each launch's end-to-end provisioning latency
	// (runtime init + artifact fetch + loading, overlap-aware).
	ColdStart *metrics.Sample
	// Completed counts finished requests.
	Completed int
	// ColdStarts counts instance launches.
	ColdStarts int
	// Degraded counts launches that fell back to the vanilla cold-start
	// stages after an injected fault (0 without a fault plan).
	Degraded int
	// ColdStartPhases attributes every launch exclusively across
	// runtime init, artifact fetch and the strategy's loading stages;
	// its Total equals ColdStartTotal exactly.
	ColdStartPhases *obs.PhaseBreakdown
	// ColdStartTotal sums all launches' end-to-end durations.
	ColdStartTotal time.Duration
	// SLOMet counts completed requests that met every configured
	// deadline (0 when Config.SLO is zero).
	SLOMet int
	// Metrics is the deployment's counter/gauge/sample registry.
	Metrics *obs.Registry
}

// NodeResult is one node's share of the fleet outcome.
type NodeResult struct {
	// ID is the node index.
	ID int
	// Launches counts instances placed on the node.
	Launches int
	// Crashed reports whether a fault plan killed the node mid-run.
	Crashed bool
	// Cache is the node's tiered-cache traffic.
	Cache artifactcache.Stats
}

// Result aggregates one fleet simulation.
type Result struct {
	// Config echoes the normalized configuration the run used.
	Config Config
	// PerDeployment holds each deployment's statistics, in
	// configuration order.
	PerDeployment []*DeploymentResult
	// PerNode holds each node's placement and cache statistics.
	PerNode []NodeResult
	// Cache aggregates every node's cache traffic.
	Cache artifactcache.Stats
	// Metrics is the cluster-wide registry the node caches count into
	// (cache_ram_hits, cache_misses, …).
	Metrics *obs.Registry
	// TotalColdStarts counts launches across deployments.
	TotalColdStarts int
	// Degraded counts launches that survived an injected fault by
	// degrading to the vanilla cold-start stages.
	Degraded int
	// Requeued counts requests re-placed after their node crashed.
	Requeued int
	// NodeCrashes counts nodes the fault plan killed.
	NodeCrashes int
	// GPUSeconds is total provisioned GPU time across the fleet.
	GPUSeconds float64
	// NodeSeconds is the fleet's cost: the summed time each node spent
	// hosting at least one instance (nodes idle end to end cost
	// nothing). Always computed; it is the denominator predictive
	// autoscaling is judged against.
	NodeSeconds float64
	// SLOMet counts completed requests fleet-wide that met every
	// configured deadline (0 when Config.SLO is zero).
	SLOMet int
	// Completed counts finished requests fleet-wide.
	Completed int
	// Makespan spans simulation start to the last completion.
	Makespan time.Duration
}

// SLOAttainment returns the fleet-wide fraction of completed requests
// that met every configured deadline (0 when nothing completed).
func (r *Result) SLOAttainment() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.SLOMet) / float64(r.Completed)
}

// Run simulates the fleet.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	registry := artifactcache.NewRegistry(cfg.Network)
	clusterReg := obs.NewRegistry()
	sim := &simulation{cfg: cfg, reg: clusterReg, scaler: cfg.Autoscaler, router: cfg.Router, slo: cfg.SLO}
	if sim.scaler == nil {
		sim.scaler = autoscale.NewReactive()
	}
	if cfg.Faults.Plan != nil {
		inj, err := faults.NewInjector(*cfg.Faults.Plan)
		if err != nil {
			return nil, err
		}
		sim.inj = inj // nil for a zero plan: the fault paths vanish
	}
	for i := 0; i < cfg.Nodes; i++ {
		cache := artifactcache.NewNodeCache(fmt.Sprintf("node%d", i), cfg.Cache, registry)
		cache.SetObs(cfg.Tracer, clusterReg)
		cache.SetFaults(sim.inj)
		sim.nodes = append(sim.nodes, &nodeState{id: i, warmLeft: -1, cache: cache})
		if cfg.WarmContainersPerNode > 0 {
			sim.nodes[i].warmLeft = cfg.WarmContainersPerNode
		}
	}

	streaming := cfg.Arrivals != nil
	if !streaming {
		for _, dep := range cfg.Deployments {
			if dep.Source != nil {
				streaming = true
				break
			}
		}
	}

	for di, dep := range cfg.Deployments {
		if !streaming && len(dep.Requests) == 0 {
			return nil, fmt.Errorf("cluster: deployment %d (%s) has an empty trace", di, dep.Name)
		}
		dcfg := dep.Config
		dcfg.NumGPUs = cfg.GPUsPerNode
		// The cluster charges each launch's artifact fetch explicitly
		// through the node cache (tier- and dedup-dependent), so the
		// template profile must not also bake the storage read into the
		// restore stage. Tensor-parallel instances materialize per-rank
		// artifacts inside the engine and bypass the cache.
		fetches := dcfg.Strategy.NeedsArtifact() && dcfg.TPDegree <= 1
		dcfg.Cache.ArtifactPreloaded = fetches
		prof, err := serverless.NewProfile(dcfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: profiling %s: %w", dep.Name, err)
		}
		dcfg = prof.Config()
		key, tmplKey := "", ""
		if fetches {
			key = artifactCacheKey(dcfg.Model.Name, dcfg.Strategy)
			size, err := dcfg.Cache.ColdFetchBytes()
			if err != nil {
				return nil, fmt.Errorf("cluster: encoding %s artifact: %w", dep.Name, err)
			}
			registry.RegisterSized(key, size)
			if tmpl := dcfg.Cache.Template; tmpl != nil {
				// The shared template registers once under its own ID
				// (unsuffixed — every strategy and sibling model resolves
				// the same object); re-registration by later deployments
				// is idempotent.
				tmplKey = tmpl.ID()
				registry.RegisterSized(tmplKey, dcfg.Cache.EncodedTemplateBytes())
			}
		}
		name := dep.Name
		if name == "" {
			name = fmt.Sprintf("deployment-%d", di)
		}
		// Under a nonzero fault plan, every artifact-based deployment gets
		// a vanilla fallback profile so a failed or untrusted restore can
		// degrade instead of aborting (§4's fallback path). The fallback
		// reads weights from the model store, not the artifact registry.
		var fallback *serverless.Profile
		if sim.inj != nil && dcfg.Strategy.NeedsArtifact() {
			fcfg := dcfg
			fcfg.Strategy = engine.StrategyVLLM
			fcfg.Cache = serverless.CacheSpec{}
			fallback, err = serverless.NewProfile(fcfg)
			if err != nil {
				return nil, fmt.Errorf("cluster: profiling %s fallback: %w", dep.Name, err)
			}
		}
		// Resolve the batched-execution parameters against the measured
		// profile: an unset KV pool inherits the instance's measured KV
		// capacity, so legacy and batched admission see the same memory.
		batch := dcfg.Scheduler.Batch
		if batch.Enabled() && batch.KVBlocks == 0 {
			batch.KVBlocks = prof.MaxKVTokens() / kvcache.TokensPerBlock
		}
		d := &depState{
			cfg:      dcfg,
			prof:     prof,
			name:     name,
			key:      key,
			tmplKey:  tmplKey,
			fallback: fallback,
			batched:  batch.Enabled(),
			batch:    batch,
			reg:      obs.NewRegistry(),
			phases:   obs.NewPhaseBreakdown(),
			rng:      rand.New(rand.NewSource(cfg.Seed ^ dcfg.Seed ^ 0x5eed ^ int64(di))),
		}
		// The predictive autoscaler scales ahead by the launch lead time:
		// the profile's measured cold start (placement may shave the
		// fetch, but the loading stages dominate).
		d.provLatency = prof.ColdStart()
		if cfg.RetainPerRequest {
			d.reg.RetainSamples()
		}
		d.bindInstruments()
		if !cfg.SLO.Zero() {
			// Registered only under an SLO so legacy registries render the
			// historical instrument set byte-for-byte.
			d.cSLOMet = d.reg.Counter("slo_met")
		}
		if !streaming {
			d.seenArr = true
			d.firstArr = dep.Requests[0].Arrival
		}
		sim.deps = append(sim.deps, d)
	}

	if streaming {
		// Streaming traffic: request IDs are assigned in delivery order.
		sim.renumber = true
		if cfg.Arrivals != nil {
			sim.src = cfg.Arrivals
		} else {
			perDep := make([]workload.Source, len(cfg.Deployments))
			for di, dep := range cfg.Deployments {
				if dep.Source != nil {
					perDep[di] = dep.Source
				} else {
					perDep[di] = workload.NewSlice(dep.Requests)
				}
			}
			sim.src = serverless.MergeArrivals(perDep)
		}
	} else {
		// Slice traffic keeps the historical ID scheme: global IDs in
		// deployment-concatenation order, follow-ups numbered after all
		// initial requests.
		nextID := 0
		perDep := make([]workload.Source, len(cfg.Deployments))
		for di, dep := range cfg.Deployments {
			reqs := make([]workload.Request, len(dep.Requests))
			copy(reqs, dep.Requests)
			for i := range reqs {
				reqs[i].ID = nextID
				nextID++
			}
			perDep[di] = workload.NewSlice(reqs)
		}
		sim.src = serverless.MergeArrivals(perDep)
		sim.nextID = nextID
	}

	if cfg.PrewarmSSD {
		// Sorted keys: Preload order must not depend on map iteration.
		keys := registry.Names()
		for _, n := range sim.nodes {
			for _, k := range keys {
				if err := n.cache.Preload(k); err != nil {
					return nil, err
				}
			}
		}
	}
	return sim.run()
}

// RunPolicySweep runs the same workload once per eviction policy,
// regenerating deployments through mkDeps so each run starts from a
// fresh trace and profile (runs must not share mutable state).
func RunPolicySweep(base Config, mkDeps func() ([]serverless.Deployment, error)) ([]*Result, error) {
	var out []*Result
	for _, kind := range artifactcache.PolicyKinds() {
		deps, err := mkDeps()
		if err != nil {
			return nil, err
		}
		cfg := base
		cfg.Cache.Policy = kind
		cfg.Deployments = deps
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: policy %v: %w", kind, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// ZipfDeployments splits one Poisson arrival process across the given
// deployments with Zipf-distributed popularity (skew s > 1; rank 0 is
// the most popular). The returned slices preserve each deployment's
// own arrival ordering and re-number per-deployment request IDs.
func ZipfDeployments(deps []serverless.Deployment, trace []workload.Request, seed int64, s float64) ([]serverless.Deployment, error) {
	if len(deps) == 0 {
		return nil, fmt.Errorf("cluster: no deployments to split across")
	}
	if s <= 1 {
		return nil, fmt.Errorf("cluster: Zipf skew must be > 1, got %g", s)
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(len(deps)-1))
	if zipf == nil {
		return nil, fmt.Errorf("cluster: invalid Zipf parameters (s=%g, n=%d)", s, len(deps))
	}
	out := make([]serverless.Deployment, len(deps))
	copy(out, deps)
	for i := range out {
		out[i].Requests = nil
	}
	for _, r := range trace {
		di := int(zipf.Uint64())
		r.ID = len(out[di].Requests)
		out[di].Requests = append(out[di].Requests, r)
	}
	for i := range out {
		if len(out[i].Requests) == 0 {
			// Every deployment needs at least one request or Run
			// rejects it; steal the tail of the busiest deployment.
			busiest := 0
			for j := range out {
				if len(out[j].Requests) > len(out[busiest].Requests) {
					busiest = j
				}
			}
			if len(out[busiest].Requests) < 2 {
				return nil, fmt.Errorf("cluster: trace too small to cover %d deployments", len(deps))
			}
			last := len(out[busiest].Requests) - 1
			r := out[busiest].Requests[last]
			out[busiest].Requests = out[busiest].Requests[:last]
			r.ID = 0
			out[i].Requests = []workload.Request{r}
		}
	}
	return out, nil
}

// sortedPhases lists a breakdown's phases sorted by name (rendering
// must not depend on first-charged order, which varies with workload).
func sortedPhases(b *obs.PhaseBreakdown) []string {
	phases := b.Phases()
	sort.Strings(phases)
	return phases
}
