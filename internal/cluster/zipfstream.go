package cluster

import (
	"fmt"
	"math/rand"

	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// zipfArrivals streams one arrival process across a fleet of
// deployments with Zipf-distributed popularity — the pull-based
// counterpart of ZipfDeployments. Draw order matches ZipfDeployments
// exactly (one Zipf draw per request, in trace order), so both paths
// route request k of the trace to the same deployment. Unlike the
// slice-based splitter it never materializes the trace and never
// reshuffles requests into empty deployments: a deployment the Zipf
// draw skips simply serves no traffic.
type zipfArrivals struct {
	src  workload.Source
	zipf *rand.Zipf
}

// ZipfArrivals wraps a request source into a fleet-wide arrival stream
// with Zipf-distributed deployment popularity (skew s > 1; deployment 0
// is the most popular). numDeps must match the simulation's deployment
// count.
func ZipfArrivals(src workload.Source, numDeps int, seed int64, s float64) (serverless.ArrivalSource, error) {
	if numDeps <= 0 {
		return nil, fmt.Errorf("cluster: no deployments to split across")
	}
	if s <= 1 {
		return nil, fmt.Errorf("cluster: Zipf skew must be > 1, got %g", s)
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(numDeps-1))
	if zipf == nil {
		return nil, fmt.Errorf("cluster: invalid Zipf parameters (s=%g, n=%d)", s, numDeps)
	}
	return &zipfArrivals{src: src, zipf: zipf}, nil
}

func (z *zipfArrivals) Next() (int, workload.Request, bool) {
	req, ok := z.src.Next()
	if !ok {
		return 0, workload.Request{}, false
	}
	return int(z.zipf.Uint64()), req, true
}

func (z *zipfArrivals) Err() error { return z.src.Err() }
