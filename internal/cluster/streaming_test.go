package cluster

import (
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// TestClusterStreamingMatchesSlice pins the two traffic paths against
// each other: the slice-based Zipf split and the pull-based ZipfArrivals
// stream drive byte-identical fleet results at a fixed seed (the Zipf
// draw sequences are identical, so every request lands on the same
// deployment at the same instant in both forms).
func TestClusterStreamingMatchesSlice(t *testing.T) {
	const nDeps = 4
	mkDeps := func() []serverless.Deployment {
		deps := make([]serverless.Deployment, 0, nDeps)
		for i, name := range fixtureModels[:nDeps] {
			deps = append(deps, serverless.Deployment{
				Name:   name,
				Config: idleOut(medusaDeployment(t, name, int64(i+1)), 250*time.Millisecond),
			})
		}
		return deps
	}
	trace := genTrace(t, 91, 6, 25)

	slice := churnConfig(artifactcache.PolicyLRU)
	split, err := ZipfDeployments(mkDeps(), trace, 43, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range split {
		// The equivalence only holds when the slice splitter didn't have
		// to reshuffle an empty deployment; the trace is sized so it
		// doesn't.
		if len(d.Requests) < 2 {
			t.Fatalf("trace too small: deployment %s got %d requests", d.Name, len(d.Requests))
		}
	}
	slice.Deployments = split
	sliceRes, err := Run(slice)
	if err != nil {
		t.Fatal(err)
	}

	stream := churnConfig(artifactcache.PolicyLRU)
	stream.Deployments = mkDeps()
	stream.Arrivals, err = ZipfArrivals(workload.NewSlice(trace), nDeps, 43, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	streamRes, err := Run(stream)
	if err != nil {
		t.Fatal(err)
	}

	want := sliceRes.Render() + sliceRes.Metrics.Render()
	got := streamRes.Render() + streamRes.Metrics.Render()
	if want != got {
		t.Fatalf("streaming fleet diverged from slice mode:\n--- slice\n%s\n--- stream\n%s", want, got)
	}
}

// TestClusterRetainMatchesReservoir pins the aggregation modes against
// each other on a trace under the reservoir cap: retaining every
// observation and the bounded deterministic reservoir must render the
// same bytes.
func TestClusterRetainMatchesReservoir(t *testing.T) {
	run := func(retain bool) string {
		cfg := churnConfig(artifactcache.PolicyLRU)
		cfg.RetainPerRequest = retain
		split, err := ZipfDeployments([]serverless.Deployment{
			{Name: "a", Config: idleOut(medusaDeployment(t, "Qwen1.5-0.5B", 1), 250*time.Millisecond)},
			{Name: "b", Config: idleOut(medusaDeployment(t, "Llama2-7B", 2), 250*time.Millisecond)},
		}, genTrace(t, 23, 4, 20), 43, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Deployments = split
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render() + res.Metrics.Render()
	}
	if want, got := run(true), run(false); want != got {
		t.Fatalf("retained and reservoir aggregation diverged:\n--- retained\n%s\n--- reservoir\n%s", want, got)
	}
}
