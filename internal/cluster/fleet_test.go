package cluster

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/artifactcache"
	"github.com/medusa-repro/medusa/internal/autoscale"
	"github.com/medusa-repro/medusa/internal/router"
	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// fleetSources builds the phase-staggered diurnal sources the control
// plane tests drive: bursty multi-tenant traffic with troughs deep
// enough that the autoscaler's retirement decisions actually bind.
func fleetSources(t testing.TB, n int, skew float64) []workload.Source {
	t.Helper()
	srcs, err := workload.DiurnalFleet(workload.DiurnalConfig{
		Seed: 401, BaseRPS: 6, Amplitude: 0.9, Period: 10 * time.Second,
		BurstFactor: 2, MeanBurst: 2 * time.Second, MeanCalm: 4 * time.Second,
		Duration:   30 * time.Second,
		MeanOutput: 16, MaxOutput: 32,
	}, n, skew)
	if err != nil {
		t.Fatal(err)
	}
	return srcs
}

// fleetConfig assembles a two-tenant cluster fed by diurnal sources,
// parameterized over the control-plane policies under test.
func fleetConfig(t testing.TB, scaler autoscale.Policy, route router.Policy, slo serverless.SLO) Config {
	t.Helper()
	srcs := fleetSources(t, 2, 1.0)
	cfg := churnConfig(artifactcache.PolicyLRU)
	cfg.Autoscaler = scaler
	cfg.Router = route
	cfg.SLO = slo
	cfg.Deployments = []serverless.Deployment{
		{Name: "a", Config: idleOut(medusaDeployment(t, "Qwen1.5-0.5B", 1), time.Second), Source: srcs[0]},
		{Name: "b", Config: idleOut(medusaDeployment(t, "Llama2-7B", 2), time.Second), Source: srcs[1]},
	}
	return cfg
}

// TestReactivePolicyMatchesLegacy pins the pluggable control plane's
// compatibility contract: a run with the reactive policy explicitly
// configured renders byte-identically to a run with no Autoscaler at
// all (the legacy built-in formula).
func TestReactivePolicyMatchesLegacy(t *testing.T) {
	run := func(scaler autoscale.Policy) string {
		cfg := fleetConfig(t, scaler, nil, serverless.SLO{})
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Render() + res.Metrics.Render()
	}
	legacy := run(nil)
	reactive := run(autoscale.NewReactive())
	if legacy != reactive {
		t.Fatalf("reactive policy diverges from legacy autoscaler:\n--- legacy\n%s\n--- reactive\n%s", legacy, reactive)
	}
}

// TestFleetControlPlaneDeterministic: the full control plane stack —
// predictive autoscaling with retention, score routing, SLO accounting,
// diurnal sources — must render byte-identically across repetitions
// and scheduler parallelism. Policies are rebuilt per run: the
// predictive policy carries forecast state.
func TestFleetControlPlaneDeterministic(t *testing.T) {
	run := func() string {
		scaler, err := autoscale.NewPredictive(autoscale.PredictiveConfig{Window: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		route, err := router.Parse("score")
		if err != nil {
			t.Fatal(err)
		}
		cfg := fleetConfig(t, scaler, route, serverless.SLO{TTFT: time.Second, TPOT: 250 * time.Millisecond})
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed == 0 {
			t.Fatal("no requests completed")
		}
		return res.Render() + res.Metrics.Render()
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Fatalf("control-plane runs differ across identical configs:\n--- run1\n%s\n--- run2\n%s", r1, r2)
	}
	prev := runtime.GOMAXPROCS(1)
	r3 := run()
	runtime.GOMAXPROCS(prev)
	if r3 != r1 {
		t.Fatal("control-plane run differs under GOMAXPROCS=1")
	}
	if !strings.Contains(r1, "fleet: autoscale predictive router score") {
		t.Fatalf("render missing control-plane line:\n%s", r1)
	}
	if !strings.Contains(r1, "slo attainment") {
		t.Fatalf("render missing SLO attainment line:\n%s", r1)
	}
}

// TestRouterConservesRequests: dispatch order is a scheduling choice,
// not a admission decision — every router must complete exactly the
// same request population.
func TestRouterConservesRequests(t *testing.T) {
	counts := map[string]int{}
	for _, name := range []string{"fifo", "score"} {
		route, err := router.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fleetConfig(t, nil, route, serverless.SLO{})
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		counts[name] = res.Completed
	}
	if counts["fifo"] != counts["score"] {
		t.Fatalf("routers completed different request counts: fifo %d, score %d",
			counts["fifo"], counts["score"])
	}
}

// TestSLOAttainmentExact hand-checks the attainment accounting at its
// two poles: a deadline no request can miss yields exactly 1.0, and a
// deadline no request can meet yields exactly 0.0 (every TTFT is
// positive). The same workload runs in both arms, so Completed must
// match too.
func TestSLOAttainmentExact(t *testing.T) {
	run := func(slo serverless.SLO) *Result {
		cfg := fleetConfig(t, nil, nil, slo)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lax := run(serverless.SLO{TTFT: time.Hour})
	if lax.SLOMet != lax.Completed || lax.SLOAttainment() != 1.0 {
		t.Fatalf("1h TTFT deadline: met %d of %d (attainment %f), want all",
			lax.SLOMet, lax.Completed, lax.SLOAttainment())
	}
	strict := run(serverless.SLO{TTFT: time.Nanosecond})
	if strict.SLOMet != 0 || strict.SLOAttainment() != 0 {
		t.Fatalf("1ns TTFT deadline: met %d (attainment %f), want none",
			strict.SLOMet, strict.SLOAttainment())
	}
	if lax.Completed != strict.Completed {
		t.Fatalf("deadline changed the workload: %d vs %d completions", lax.Completed, strict.Completed)
	}
	// Without an SLO the accounting stays off: no counter, no render line.
	off := run(serverless.SLO{})
	if off.SLOMet != 0 {
		t.Fatalf("SLOMet %d with no SLO configured", off.SLOMet)
	}
	if strings.Contains(off.Render(), "slo attainment") {
		t.Fatal("attainment rendered with no SLO configured")
	}
}

// TestNodeSecondsBounds sanity-checks the fleet cost metric: positive,
// and no greater than every node being up for the whole run.
func TestNodeSecondsBounds(t *testing.T) {
	cfg := fleetConfig(t, nil, nil, serverless.SLO{})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeSeconds <= 0 {
		t.Fatalf("node-seconds %f, want positive", res.NodeSeconds)
	}
	ceiling := float64(cfg.Nodes) * res.Makespan.Seconds()
	if res.NodeSeconds > ceiling {
		t.Fatalf("node-seconds %f exceeds %d nodes × makespan %v = %f",
			res.NodeSeconds, cfg.Nodes, res.Makespan, ceiling)
	}
}

// TestRetainerHoldsThroughTroughs: the predictive policy's scale-down
// veto must not cost completions or determinism, and with retention
// enabled the deployment relaunches no more often than the baseline —
// held instances replace cold starts on trickle traffic.
func TestRetainerHoldsThroughTroughs(t *testing.T) {
	coldStarts := func(scaler autoscale.Policy) (int, int) {
		cfg := fleetConfig(t, scaler, nil, serverless.SLO{})
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalColdStarts, res.Completed
	}
	reactiveCold, reactiveDone := coldStarts(nil)
	scaler, err := autoscale.NewPredictive(autoscale.PredictiveConfig{
		Window: time.Second, MaxStep: -1, KeepWarm: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	predCold, predDone := coldStarts(scaler)
	if predDone != reactiveDone {
		t.Fatalf("retention changed completions: %d vs %d", predDone, reactiveDone)
	}
	if predCold > reactiveCold {
		t.Fatalf("retention-only policy cold-started more than the baseline: %d > %d",
			predCold, reactiveCold)
	}
}
