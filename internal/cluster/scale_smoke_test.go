package cluster

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/serverless"
	"github.com/medusa-repro/medusa/internal/workload"
)

// scaleSmokeBudget bounds the 1M-request smoke's wall clock. The run
// takes single-digit seconds on the development machine; the budget is
// generous for slow CI hosts while still catching a return to the
// pre-streaming core (which needed minutes at this scale).
const scaleSmokeBudget = 90 * time.Second

// maxAllocsPerRequest reads the checked-in allocation threshold — the
// benchstat-style guard against hot-path allocation regressions.
func maxAllocsPerRequest(t *testing.T) float64 {
	t.Helper()
	raw, err := os.ReadFile("testdata/max_allocs_per_request")
	if err != nil {
		t.Fatal(err)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	if err != nil {
		t.Fatalf("testdata/max_allocs_per_request: %v", err)
	}
	return v
}

// TestScaleSmoke1M streams one million requests through a four-node
// Zipf fleet under a wall-clock budget and an allocs/request ceiling.
// It runs from `make bench-smoke` (gated on MEDUSA_SCALE_SMOKE so
// ordinary `go test ./...` stays fast).
func TestScaleSmoke1M(t *testing.T) {
	if os.Getenv("MEDUSA_SCALE_SMOKE") == "" {
		t.Skip("set MEDUSA_SCALE_SMOKE=1 to run the 1M-request scale smoke (make bench-smoke)")
	}
	models := fixtureModels[:4]
	deps := make([]serverless.Deployment, 0, len(models))
	for i, name := range models {
		deps = append(deps, serverless.Deployment{
			Name:   name,
			Config: idleOut(medusaDeployment(t, name, int64(i+1)), 500*time.Millisecond),
		})
	}
	src, err := workload.NewPoisson(workload.TraceConfig{
		Seed: 97, RPS: 2800, Duration: 360 * time.Second,
		MeanOutput: 8, MaxOutput: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := ZipfArrivals(src, len(deps), 43, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Nodes: 4, GPUsPerNode: 8, Seed: 7,
		Deployments: deps,
		Arrivals:    arrivals,
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := Run(cfg)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}

	completed := 0
	for _, d := range res.PerDeployment {
		completed += d.Completed
	}
	if completed < 1_000_000 {
		t.Fatalf("completed %d requests, want ≥ 1M (workload mis-sized)", completed)
	}
	if elapsed > scaleSmokeBudget {
		t.Fatalf("1M-request run took %v, budget %v", elapsed, scaleSmokeBudget)
	}
	allocsPerReq := float64(after.Mallocs-before.Mallocs) / float64(completed)
	if limit := maxAllocsPerRequest(t); allocsPerReq > limit {
		t.Fatalf("allocs/request = %.2f exceeds checked-in threshold %.2f "+
			"(testdata/max_allocs_per_request); if the regression is intentional, update the threshold deliberately",
			allocsPerReq, limit)
	}
	t.Logf("completed %d requests in %v (%.2f allocs/request, %d cold starts)",
		completed, elapsed, allocsPerReq, res.TotalColdStarts)
}
