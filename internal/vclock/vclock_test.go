package vclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %v, want 0", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	c.Advance(3 * time.Second)
	c.Advance(500 * time.Millisecond)
	if got, want := c.Now(), 3500*time.Millisecond; got != want {
		t.Fatalf("Now = %v, want %v", got, want)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-time.Nanosecond)
}

func TestAdvanceTo(t *testing.T) {
	c := NewAt(time.Second)
	c.AdvanceTo(2 * time.Second)
	if c.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", c.Now())
	}
	c.AdvanceTo(2 * time.Second) // same instant is allowed
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo backwards did not panic")
		}
	}()
	c.AdvanceTo(time.Second)
}

func TestBranchAndJoin(t *testing.T) {
	c := NewAt(10 * time.Second)
	b := c.Branch()
	if b.Now() != c.Now() {
		t.Fatalf("branch starts at %v, want %v", b.Now(), c.Now())
	}
	b.Advance(5 * time.Second)
	c.Advance(time.Second)
	c.Join(b)
	if c.Now() != 15*time.Second {
		t.Fatalf("after join Now = %v, want 15s", c.Now())
	}
	// Joining an earlier branch must not move the clock backwards.
	early := NewAt(time.Second)
	c.Join(early)
	if c.Now() != 15*time.Second {
		t.Fatalf("join with earlier branch moved clock to %v", c.Now())
	}
}

func TestParallelTakesMax(t *testing.T) {
	c := New()
	durs := c.Parallel(
		func(b *Clock) { b.Advance(3 * time.Second) },
		func(b *Clock) { b.Advance(7 * time.Second) },
		func(b *Clock) { b.Advance(time.Second) },
	)
	if c.Now() != 7*time.Second {
		t.Fatalf("parallel end = %v, want 7s", c.Now())
	}
	want := []time.Duration{3 * time.Second, 7 * time.Second, time.Second}
	for i := range want {
		if durs[i] != want[i] {
			t.Fatalf("durs[%d] = %v, want %v", i, durs[i], want[i])
		}
	}
}

func TestParallelEmpty(t *testing.T) {
	c := NewAt(4 * time.Second)
	durs := c.Parallel()
	if len(durs) != 0 || c.Now() != 4*time.Second {
		t.Fatalf("empty Parallel changed state: durs=%v now=%v", durs, c.Now())
	}
}

func TestNestedParallel(t *testing.T) {
	c := New()
	c.Parallel(
		func(b *Clock) {
			b.Parallel(
				func(bb *Clock) { bb.Advance(2 * time.Second) },
				func(bb *Clock) { bb.Advance(4 * time.Second) },
			)
			b.Advance(time.Second) // sequential tail after inner join
		},
		func(b *Clock) { b.Advance(3 * time.Second) },
	)
	if c.Now() != 5*time.Second {
		t.Fatalf("nested parallel end = %v, want 5s", c.Now())
	}
}

func TestSpanAndStopwatch(t *testing.T) {
	c := New()
	d := c.Span(func() { c.Advance(42 * time.Millisecond) })
	if d != 42*time.Millisecond {
		t.Fatalf("Span = %v, want 42ms", d)
	}
	w := c.StartWatch()
	c.Advance(8 * time.Millisecond)
	if w.Elapsed() != 8*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 8ms", w.Elapsed())
	}
}

// Property: Parallel over any set of nonnegative durations ends at
// start + max(durations), and per-branch durations are reported exactly.
func TestParallelMaxProperty(t *testing.T) {
	f := func(start uint32, raw []uint16) bool {
		c := NewAt(time.Duration(start) * time.Microsecond)
		begin := c.Now()
		fns := make([]func(*Clock), len(raw))
		var max time.Duration
		for i, r := range raw {
			d := time.Duration(r) * time.Microsecond
			if d > max {
				max = d
			}
			fns[i] = func(b *Clock) { b.Advance(d) }
		}
		durs := c.Parallel(fns...)
		if c.Now() != begin+max {
			return false
		}
		for i, r := range raw {
			if durs[i] != time.Duration(r)*time.Microsecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
