package vclock_test

import (
	"fmt"
	"time"

	"github.com/medusa-repro/medusa/internal/vclock"
)

// Parallel models vLLM+ASYNC's overlapped loading: weights stream while
// the tokenizer and KV init run on a second track; the clock lands at
// the slower branch.
func ExampleClock_Parallel() {
	c := vclock.New()
	c.Advance(850 * time.Millisecond) // model structure init
	c.Parallel(
		func(weights *vclock.Clock) { weights.Advance(470 * time.Millisecond) },
		func(other *vclock.Clock) {
			other.Advance(210 * time.Millisecond) // tokenizer
			other.Advance(500 * time.Millisecond) // KV init
		},
	)
	fmt.Printf("loading so far: %v\n", c.Now())
	// Output:
	// loading so far: 1.56s
}

func ExampleClock_Span() {
	c := vclock.New()
	d := c.Span(func() {
		c.Advance(300 * time.Millisecond)
		c.Advance(600 * time.Millisecond)
	})
	fmt.Println(d)
	// Output:
	// 900ms
}
