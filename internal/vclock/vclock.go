// Package vclock provides a deterministic virtual clock used by the
// simulated GPU, the inference engine, and the serverless cluster
// simulator. All latencies in this repository are virtual: they model the
// timing of the paper's testbed (A100-40GB GPUs, Optane SSD array) without
// consuming wall-clock time, which keeps experiments fast and exactly
// reproducible.
//
// The clock is single-goroutine by design: simulated work advances it
// explicitly. Logical parallelism (for example vLLM+ASYNC's overlapped
// weight loading, or Medusa's warm-up running next to disk I/O) is
// expressed with Parallel, which forks branch clocks from the current
// instant and joins them at the latest finish time.
package vclock

import (
	"fmt"
	"time"
)

// Clock is a virtual clock. The zero value is a clock at time zero.
type Clock struct {
	now time.Duration
}

// New returns a clock starting at time zero.
func New() *Clock { return &Clock{} }

// NewAt returns a clock starting at the given instant.
func NewAt(t time.Duration) *Clock { return &Clock{now: t} }

// Now reports the current virtual time as an offset from the simulation
// origin.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. It panics if d is negative:
// virtual time, like real time, does not run backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock forward to instant t. Moving to the current
// instant is a no-op; moving backwards panics.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("vclock: AdvanceTo(%v) would move clock backwards from %v", t, c.now))
	}
	c.now = t
}

// Branch returns a new clock starting at the current instant of c.
// Branches model concurrent activities: they advance independently and
// are typically joined back with Join or through Parallel.
func (c *Clock) Branch() *Clock { return &Clock{now: c.now} }

// Join advances c to the later of its own time and the branch's time.
func (c *Clock) Join(branch *Clock) {
	if branch.now > c.now {
		c.now = branch.now
	}
}

// Parallel runs each fn on its own branch forked at the current instant,
// then advances c to the latest branch finish time. It returns the
// duration each branch consumed, in argument order. Branches run
// sequentially in real time (determinism) but concurrently in virtual
// time.
func (c *Clock) Parallel(fns ...func(*Clock)) []time.Duration {
	start := c.now
	durs := make([]time.Duration, len(fns))
	end := start
	for i, fn := range fns {
		b := c.Branch()
		fn(b)
		durs[i] = b.now - start
		if b.now > end {
			end = b.now
		}
	}
	c.now = end
	return durs
}

// Span measures the virtual duration of fn as observed on c.
func (c *Clock) Span(fn func()) time.Duration {
	start := c.now
	fn()
	return c.now - start
}

// Stopwatch captures an instant on a clock and reports elapsed virtual
// time since then.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartWatch returns a stopwatch anchored at the clock's current instant.
func (c *Clock) StartWatch() Stopwatch {
	return Stopwatch{clock: c, start: c.now}
}

// Elapsed reports the virtual time since the stopwatch was started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.now - s.start }
