// Package dl simulates the dynamic-link machinery the paper's kernel
// address restoration (§5) depends on: shared libraries with symbol
// tables, per-process address space layout randomization, and CUDA
// modules — groups of kernels that the driver loads as a unit.
//
// Two properties matter to Medusa and are reproduced here faithfully:
//
//   - Kernel addresses are randomized on every process launch (ASLR), so
//     an address captured offline is useless online; only the mangled
//     name is stable.
//   - Some kernels (the simulated cuBLAS ones) are *hidden*: they exist
//     inside a library's modules but are absent from the dlsym-visible
//     symbol table. They can only be located by loading their module and
//     enumerating it — which is exactly what triggering-kernels are for.
package dl

import (
	"fmt"
	"sort"
)

// Symbol is one kernel symbol inside a library image.
type Symbol struct {
	// Name is the kernel's mangled name, unique within the registry.
	Name string
	// Exported reports whether the symbol appears in the dlsym-visible
	// dynamic symbol table. Hidden symbols model closed-source cuBLAS
	// kernels.
	Exported bool
	// Module is the name of the CUDA module (cubin) that contains this
	// kernel within the library.
	Module string
	// Offset is the symbol's fixed offset within the library image; the
	// process-specific address is load base + offset.
	Offset uint64
}

// Library is a shared object "on disk": immutable once registered,
// shared by every simulated process.
type Library struct {
	Name    string
	symbols map[string]*Symbol
	modules map[string][]*Symbol // module name -> kernels, in registration order
	next    uint64               // next symbol offset
}

// Symbol returns the named symbol whether or not it is exported.
// (This is the loader's private view; dlsym only sees exported ones.)
func (l *Library) Symbol(name string) (*Symbol, bool) {
	s, ok := l.symbols[name]
	return s, ok
}

// Module returns the kernels of the named module in registration order.
func (l *Library) Module(name string) ([]*Symbol, bool) {
	m, ok := l.modules[name]
	return m, ok
}

// ModuleNames returns the library's module names, sorted.
func (l *Library) ModuleNames() []string {
	names := make([]string, 0, len(l.modules))
	for n := range l.modules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registry is the set of installed libraries, analogous to the dynamic
// linker search path. It is immutable after setup and shared across all
// simulated processes.
type Registry struct {
	libs map[string]*Library
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{libs: make(map[string]*Library)}
}

// AddSymbol registers a kernel symbol into lib/module, creating the
// library and module as needed, and returns the symbol. Symbol names
// must be unique within a library.
func (r *Registry) AddSymbol(lib, module, name string, exported bool) (*Symbol, error) {
	l, ok := r.libs[lib]
	if !ok {
		l = &Library{
			Name:    lib,
			symbols: make(map[string]*Symbol),
			modules: make(map[string][]*Symbol),
			next:    0x1000,
		}
		r.libs[lib] = l
	}
	if _, dup := l.symbols[name]; dup {
		return nil, fmt.Errorf("dl: duplicate symbol %q in %q", name, lib)
	}
	s := &Symbol{Name: name, Exported: exported, Module: module, Offset: l.next}
	l.next += 0x400 // fixed spacing between kernel entry points
	l.symbols[name] = s
	l.modules[module] = append(l.modules[module], s)
	return s, nil
}

// Library returns the named installed library.
func (r *Registry) Library(name string) (*Library, bool) {
	l, ok := r.libs[name]
	return l, ok
}

// LibraryNames returns the installed library names, sorted.
func (r *Registry) LibraryNames() []string {
	names := make([]string, 0, len(r.libs))
	for n := range r.libs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FindSymbol locates name across all libraries (loader-private view).
func (r *Registry) FindSymbol(name string) (*Library, *Symbol, bool) {
	for _, ln := range r.LibraryNames() {
		l := r.libs[ln]
		if s, ok := l.symbols[name]; ok {
			return l, s, true
		}
	}
	return nil, nil, false
}
