package dl

import (
	"fmt"
	"math/rand"
)

// NotFoundError is returned by Dlopen and Dlsym lookups that fail. For
// Dlsym, hidden symbols fail exactly like missing ones — a process
// cannot tell the difference, which is why the paper needs module
// enumeration for cuBLAS kernels.
type NotFoundError struct {
	Kind string // "library" or "symbol"
	Name string
}

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("dl: %s %q not found", e.Kind, e.Name)
}

// LoadedLibrary is a library mapped into one process at a randomized
// base address.
type LoadedLibrary struct {
	Lib  *Library
	Base uint64
}

// AddrOf returns the process-specific address of a symbol of this
// library.
func (ll *LoadedLibrary) AddrOf(s *Symbol) uint64 { return ll.Base + s.Offset }

// SymbolHandle is what Dlsym returns: a resolved, process-specific
// function address plus identifying metadata. It corresponds to the
// void* handle passed to cudaGetFuncBySymbol.
type SymbolHandle struct {
	Library string
	Name    string
	Addr    uint64
}

// Linker is one process's dynamic-linker state: which libraries are
// mapped and at which randomized bases.
type Linker struct {
	reg    *Registry
	rng    *rand.Rand
	loaded map[string]*LoadedLibrary
}

// NewLinker creates a process linker. The seed determines the ASLR
// layout: different seeds model different process launches.
func NewLinker(reg *Registry, seed int64) *Linker {
	return &Linker{
		reg:    reg,
		rng:    rand.New(rand.NewSource(seed)),
		loaded: make(map[string]*LoadedLibrary),
	}
}

// Dlopen maps the named library (idempotently) and returns it.
func (l *Linker) Dlopen(name string) (*LoadedLibrary, error) {
	if ll, ok := l.loaded[name]; ok {
		return ll, nil
	}
	lib, ok := l.reg.Library(name)
	if !ok {
		return nil, &NotFoundError{Kind: "library", Name: name}
	}
	// ASLR: high canonical code addresses with per-process, per-library
	// jitter, 4 KiB aligned, in a range disjoint from the device heap.
	base := uint64(0x7fa0_0000_0000) + uint64(l.rng.Int63n(1<<36))&^0xfff
	ll := &LoadedLibrary{Lib: lib, Base: base}
	l.loaded[name] = ll
	return ll, nil
}

// Dlsym resolves an *exported* symbol in a loaded library. Hidden
// symbols return NotFoundError even though they exist in the image.
func (l *Linker) Dlsym(ll *LoadedLibrary, name string) (SymbolHandle, error) {
	s, ok := ll.Lib.Symbol(name)
	if !ok || !s.Exported {
		return SymbolHandle{}, &NotFoundError{Kind: "symbol", Name: name}
	}
	return SymbolHandle{Library: ll.Lib.Name, Name: name, Addr: ll.AddrOf(s)}, nil
}

// Loaded returns the loaded view of a library if it has been mapped.
func (l *Linker) Loaded(name string) (*LoadedLibrary, bool) {
	ll, ok := l.loaded[name]
	return ll, ok
}
