package dl

import (
	"errors"
	"testing"
	"testing/quick"
)

func buildRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	mustAdd := func(lib, mod, name string, exported bool) {
		t.Helper()
		if _, err := r.AddSymbol(lib, mod, name, exported); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("libops.so", "mod_norm", "rmsnorm_f32", true)
	mustAdd("libops.so", "mod_norm", "layernorm_f32", true)
	mustAdd("libops.so", "mod_act", "silu_f32", true)
	mustAdd("libcublas_sim.so", "mod_gemm0", "cublas_gemm_hidden_128", false)
	mustAdd("libcublas_sim.so", "mod_gemm0", "cublas_gemm_public", true)
	return r
}

func TestDuplicateSymbolRejected(t *testing.T) {
	r := buildRegistry(t)
	if _, err := r.AddSymbol("libops.so", "mod_norm", "rmsnorm_f32", true); err == nil {
		t.Fatal("duplicate AddSymbol succeeded")
	}
}

func TestRegistryLookups(t *testing.T) {
	r := buildRegistry(t)
	lib, ok := r.Library("libops.so")
	if !ok {
		t.Fatal("libops.so missing")
	}
	if _, ok := lib.Symbol("rmsnorm_f32"); !ok {
		t.Fatal("rmsnorm_f32 missing from loader-private view")
	}
	if _, ok := lib.Symbol("nope"); ok {
		t.Fatal("unknown symbol found")
	}
	mods := lib.ModuleNames()
	if len(mods) != 2 || mods[0] != "mod_act" || mods[1] != "mod_norm" {
		t.Fatalf("ModuleNames = %v", mods)
	}
	syms, ok := lib.Module("mod_norm")
	if !ok || len(syms) != 2 {
		t.Fatalf("Module(mod_norm) = %v, %v", syms, ok)
	}
	l, s, ok := r.FindSymbol("cublas_gemm_hidden_128")
	if !ok || l.Name != "libcublas_sim.so" || s.Exported {
		t.Fatalf("FindSymbol hidden = %v %v %v", l, s, ok)
	}
}

func TestSymbolOffsetsDistinct(t *testing.T) {
	r := buildRegistry(t)
	lib, _ := r.Library("libops.so")
	seen := map[uint64]string{}
	for _, name := range []string{"rmsnorm_f32", "layernorm_f32", "silu_f32"} {
		s, _ := lib.Symbol(name)
		if prev, dup := seen[s.Offset]; dup {
			t.Fatalf("offset %#x shared by %q and %q", s.Offset, prev, name)
		}
		seen[s.Offset] = name
	}
}

func TestDlopenUnknownLibrary(t *testing.T) {
	l := NewLinker(buildRegistry(t), 1)
	_, err := l.Dlopen("libmissing.so")
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.Kind != "library" {
		t.Fatalf("Dlopen unknown = %v", err)
	}
}

func TestDlopenIdempotent(t *testing.T) {
	l := NewLinker(buildRegistry(t), 1)
	a, err := l.Dlopen("libops.so")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Dlopen("libops.so")
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a.Base != b.Base {
		t.Fatal("repeated Dlopen returned a different mapping")
	}
}

func TestDlsymExportedOnly(t *testing.T) {
	l := NewLinker(buildRegistry(t), 1)
	ll, _ := l.Dlopen("libcublas_sim.so")
	h, err := l.Dlsym(ll, "cublas_gemm_public")
	if err != nil {
		t.Fatal(err)
	}
	if h.Addr == 0 || h.Name != "cublas_gemm_public" || h.Library != "libcublas_sim.so" {
		t.Fatalf("Dlsym handle = %+v", h)
	}
	// Hidden symbols are invisible to dlsym — the Challenge II premise.
	if _, err := l.Dlsym(ll, "cublas_gemm_hidden_128"); err == nil {
		t.Fatal("Dlsym resolved a hidden symbol")
	}
	// But the loader-private AddrOf can still compute its address once
	// the module machinery locates it.
	s, _ := ll.Lib.Symbol("cublas_gemm_hidden_128")
	if ll.AddrOf(s) == h.Addr {
		t.Fatal("hidden and public symbols share an address")
	}
}

func TestASLRAcrossProcesses(t *testing.T) {
	r := buildRegistry(t)
	l1 := NewLinker(r, 111)
	l2 := NewLinker(r, 222)
	a, _ := l1.Dlopen("libops.so")
	b, _ := l2.Dlopen("libops.so")
	if a.Base == b.Base {
		t.Fatalf("two processes mapped libops.so at the same base %#x", a.Base)
	}
	// Same seed ⇒ same layout (replayable cold starts in tests).
	l3 := NewLinker(r, 111)
	c, _ := l3.Dlopen("libops.so")
	if a.Base != c.Base {
		t.Fatalf("same seed produced different bases: %#x vs %#x", a.Base, c.Base)
	}
}

// Property: for any set of symbols, per-process addresses preserve
// within-library offsets: addr(sym) - base == registered offset, and
// addresses of distinct symbols never collide inside one process.
func TestAddressLayoutProperty(t *testing.T) {
	f := func(seed int64, rawNames []uint8) bool {
		r := NewRegistry()
		names := make([]string, 0, len(rawNames))
		seen := map[string]bool{}
		for i, b := range rawNames {
			name := string(rune('a'+b%26)) + "_" + string(rune('0'+i%10)) + "_" + itoa(i)
			if seen[name] {
				continue
			}
			seen[name] = true
			if _, err := r.AddSymbol("lib.so", "m", name, b%2 == 0); err != nil {
				return false
			}
			names = append(names, name)
		}
		l := NewLinker(r, seed)
		ll, err := l.Dlopen("lib.so")
		if err != nil {
			return len(names) == 0 // registry empty means lib absent
		}
		addrs := map[uint64]bool{}
		for _, n := range names {
			s, ok := ll.Lib.Symbol(n)
			if !ok {
				return false
			}
			a := ll.AddrOf(s)
			if a-ll.Base != s.Offset || addrs[a] {
				return false
			}
			addrs[a] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
