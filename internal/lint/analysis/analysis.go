// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that the medusalint
// analyzers need. The container this repository grows in has no module
// proxy access, so instead of vendoring x/tools we re-declare the three
// types the analyzers program against: Analyzer, Pass, and Diagnostic.
// The shapes match x/tools deliberately — if the real dependency ever
// becomes available, the analyzers compile against it after changing
// one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass and its entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -run filters, and
	// //medusalint:allow comments. By convention lowercase, no spaces.
	Name string

	// Doc is the analyzer's documentation: first line is a summary,
	// the rest explains the enforced invariant.
	Doc string

	// Run applies the analyzer to a single package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package
// and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The runner installs this; it
	// applies the //medusalint:allow suppression before recording.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}
