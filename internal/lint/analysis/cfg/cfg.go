// Package cfg builds intraprocedural control-flow graphs for the
// flow-aware medusalint analyzers, using only the standard library. It
// plays the role golang.org/x/tools/go/analysis/passes/ctrlflow plays
// for the real go/analysis framework: one Graph per function body,
// basic blocks of statement-level nodes, and edges for every branch,
// loop, switch, select, label, goto and return the language offers.
//
// The granularity is deliberately statement-level, not expression-level:
// an if statement contributes its Init and Cond as ordinary nodes of the
// predecessor block, and both branch blocks are successors. Analyzers
// that need to see a call buried in a condition therefore find it inside
// a node; short-circuit evaluation inside one condition is not split
// into blocks. This keeps the builder small and is conservative in the
// right direction for the pairing analyses built on top (a call that
// might not execute is treated as executing, and the paths that must
// close a resource still must).
//
// Two terminator forms get special treatment: a return statement edges
// to the synthetic Exit block, and a direct call to panic ends its block
// with no successors — a panicking path is not a "return path", so the
// all-paths pairing analyzers do not demand cleanup on it (mirroring
// x/tools' lostcancel, whose CFG treats panic as no-return).
//
// Function literals are opaque: a FuncLit appearing in a statement is
// part of that node, and its body is NOT woven into the enclosing graph.
// Analyzers build a separate Graph per literal body when they care.
package cfg

import "go/ast"

// Block is one basic block: a straight-line sequence of nodes executed
// in order, then a transfer to one of Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, build
	// order; useful as a map key or bitset index).
	Index int
	// Nodes are the statements (and hoisted init/cond expressions) the
	// block executes, in order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block, Entry first. Unreachable blocks (code
	// after a terminator) are retained — analyzers walk reachable
	// subgraphs from Entry and naturally ignore them.
	Blocks []*Block
	// Entry is where control enters the body.
	Entry *Block
	// Exit is the synthetic function-exit block: every return statement
	// and every fall-off-the-end path edges here. It holds no nodes.
	Exit *Block
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	cur := b.stmtList(g.Entry, body.List)
	// Falling off the end of the body returns.
	b.edge(cur, g.Exit)
	return g
}

// labelInfo tracks one label's blocks for goto and labeled branches.
type labelInfo struct {
	target *Block // the labeled statement's entry (goto / continue re-resolve)
	brk    *Block // break target, set when the labeled stmt is a loop/switch
	cont   *Block // continue target, loops only
}

// builder threads the construction state.
type builder struct {
	g *Graph
	// breaks and continues are the innermost enclosing targets.
	breaks    []*Block
	continues []*Block
	labels    map[string]*labelInfo
	// pendingLabel is the label naming the next loop/switch statement.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge connects from → to. A nil from (dead code after a terminator)
// adds nothing.
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmtList threads a statement sequence through cur, returning the
// block live at the end (nil when control cannot fall through).
func (b *builder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// deadBlock returns a fresh block for statements after a terminator;
// it has no predecessors, so analyses starting at Entry never see it.
func (b *builder) liveOr(cur *Block) *Block {
	if cur != nil {
		return cur
	}
	return b.newBlock()
}

// stmt adds one statement to the graph with cur as the incoming block,
// returning the fall-through block (nil if the statement terminates).
func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	cur = b.liveOr(cur)
	switch s := s.(type) {
	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		return b.branch(cur, s)

	case *ast.LabeledStmt:
		// The labeled statement starts its own block so goto can land on
		// it; the loop/switch cases below fill in break/continue targets
		// via pendingLabel. A forward goto may have created the landing
		// block already — adopt it rather than orphaning its edge.
		info := b.labelFor(s.Label.Name)
		start := info.target
		if start == nil {
			start = b.newBlock()
			info.target = start
		}
		b.edge(cur, start)
		b.pendingLabel = s.Label.Name
		return b.stmt(start, s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		after := b.newBlock()
		thenEntry := b.newBlock()
		b.edge(cur, thenEntry)
		thenEnd := b.stmtList(thenEntry, s.Body.List)
		b.edge(thenEnd, after)
		if s.Else != nil {
			elseEntry := b.newBlock()
			b.edge(cur, elseEntry)
			b.edge(b.stmt(elseEntry, s.Else), after)
		} else {
			b.edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		if s.Cond != nil {
			b.edge(head, after) // condition false
		}
		b.setLabelTargets(label, after, post)
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(after, post)
		b.edge(b.stmtList(body, s.Body.List), post)
		b.popLoop()
		return after

	case *ast.RangeStmt:
		label := b.takeLabel()
		// The RangeStmt itself is the head node: it models both the
		// evaluation of the range expression and the per-iteration
		// assignment of Key/Value (which matters to analyses tracking
		// variable redefinition across iterations).
		head := b.newBlock()
		head.Nodes = append(head.Nodes, s)
		b.edge(cur, head)
		after := b.newBlock()
		b.edge(head, after) // range exhausted
		b.setLabelTargets(label, after, head)
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(after, head)
		b.edge(b.stmtList(body, s.Body.List), head)
		b.popLoop()
		return after

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s.Init, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(cur, s.Init, nil, s.Body, s.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock()
		b.setLabelTargets(label, after, nil)
		b.pushLoop(after, nil) // break inside select targets after
		hasDefault := false
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			entry := b.newBlock()
			if comm.Comm != nil {
				entry.Nodes = append(entry.Nodes, comm.Comm)
			} else {
				hasDefault = true
			}
			b.edge(cur, entry)
			b.edge(b.stmtList(entry, comm.Body), after)
		}
		b.popLoop()
		_ = hasDefault // a select blocks until a case fires; no edge past it
		if len(s.Body.List) == 0 {
			// select{} blocks forever.
			return nil
		}
		return after

	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if isPanic(s.X) {
			return nil // panicking paths are not return paths
		}
		return cur

	case *ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.AssignStmt, *ast.DeclStmt, *ast.EmptyStmt:
		cur.Nodes = append(cur.Nodes, s)
		return cur

	default:
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchStmt builds expression and type switches: init/tag/assign nodes
// in the incoming block, one entry block per case, fallthrough wiring,
// and an implicit edge past the switch when no default exists.
func (b *builder) switchStmt(cur *Block, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, extra ...ast.Stmt) *Block {
	label := b.takeLabel()
	if init != nil {
		cur.Nodes = append(cur.Nodes, init)
	}
	if tag != nil {
		cur.Nodes = append(cur.Nodes, tag)
	}
	for _, e := range extra {
		cur.Nodes = append(cur.Nodes, e)
	}
	after := b.newBlock()
	b.setLabelTargets(label, after, nil)
	b.pushLoop(after, nil) // break inside the switch targets after
	hasDefault := false
	// Build case bodies first so fallthrough can edge into the next
	// case's body block.
	var bodies []*Block
	var clauses []*ast.CaseClause
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		clauses = append(clauses, cc)
		bodies = append(bodies, b.newBlock())
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		entry := bodies[i]
		for _, e := range cc.List {
			entry.Nodes = append(entry.Nodes, e)
		}
		b.edge(cur, entry)
		var next *Block // fallthrough target
		if i+1 < len(bodies) {
			next = bodies[i+1]
		}
		end := b.caseBody(entry, cc.Body, next)
		b.edge(end, after)
	}
	b.popLoop()
	if !hasDefault {
		b.edge(cur, after)
	}
	return after
}

// caseBody threads one case clause's statements, wiring a trailing
// fallthrough to the next case's body block.
func (b *builder) caseBody(entry *Block, stmts []ast.Stmt, next *Block) *Block {
	cur := entry
	for _, s := range stmts {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			b.edge(b.liveOr(cur), next)
			return nil
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// branch wires break, continue and goto.
func (b *builder) branch(cur *Block, s *ast.BranchStmt) *Block {
	cur.Nodes = append(cur.Nodes, s)
	switch s.Tok.String() {
	case "break":
		if s.Label != nil {
			b.edge(cur, b.labelFor(s.Label.Name).brk)
		} else if n := len(b.breaks); n > 0 {
			b.edge(cur, b.breaks[n-1])
		}
	case "continue":
		if s.Label != nil {
			b.edge(cur, b.labelFor(s.Label.Name).cont)
		} else {
			// The innermost loop's continue target (switch/select push nil).
			for i := len(b.continues) - 1; i >= 0; i-- {
				if b.continues[i] != nil {
					b.edge(cur, b.continues[i])
					break
				}
			}
		}
	case "goto":
		if s.Label != nil {
			info := b.labelFor(s.Label.Name)
			if info.target == nil {
				// Forward goto: create the landing block now; LabeledStmt
				// will adopt it.
				info.target = b.newBlock()
			}
			b.edge(cur, info.target)
		}
	}
	return nil
}

func (b *builder) labelFor(name string) *labelInfo {
	info := b.labels[name]
	if info == nil {
		info = &labelInfo{}
		b.labels[name] = info
	}
	return info
}

// takeLabel consumes the pending label (set when this statement is the
// body of a LabeledStmt).
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// setLabelTargets records the break/continue targets of a labeled
// loop/switch.
func (b *builder) setLabelTargets(label string, brk, cont *Block) {
	if label == "" {
		return
	}
	info := b.labelFor(label)
	info.brk = brk
	info.cont = cont
}

func (b *builder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// isPanic reports whether an expression is a direct call to the
// built-in panic.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
