package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of function f in a throwaway
// package.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// reachesExit reports whether the exit block is reachable from entry.
func reachesExit(g *Graph) bool {
	seen := map[int]bool{}
	var visit func(b *Block) bool
	visit = func(b *Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	return visit(g.Entry)
}

func TestStraightLine(t *testing.T) {
	g := New(parseBody(t, "x := 1\n_ = x"))
	if !reachesExit(g) {
		t.Fatal("straight-line body must reach exit")
	}
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
}

func TestIfBothBranchesJoin(t *testing.T) {
	g := New(parseBody(t, `
if cond() {
	a()
} else {
	b()
}
c()`))
	// Entry holds the condition and has two successors.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if: entry succs = %d, want 2", len(g.Entry.Succs))
	}
	if !reachesExit(g) {
		t.Fatal("if/else with join must reach exit")
	}
}

func TestReturnEdgesToExit(t *testing.T) {
	g := New(parseBody(t, `
if cond() {
	return
}
a()`))
	// Find the block holding the return; its sole successor is Exit.
	var retBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				retBlock = b
			}
		}
	}
	if retBlock == nil {
		t.Fatal("no block holds the return")
	}
	if len(retBlock.Succs) != 1 || retBlock.Succs[0] != g.Exit {
		t.Fatalf("return block succs = %v, want [Exit]", retBlock.Succs)
	}
}

func TestPanicTerminatesWithoutExitEdge(t *testing.T) {
	g := New(parseBody(t, `panic("boom")`))
	if reachesExit(g) {
		t.Fatal("a body that always panics must not reach exit")
	}
}

func TestForLoopBackEdgeAndBreak(t *testing.T) {
	g := New(parseBody(t, `
for i := 0; i < n; i++ {
	if stop() {
		break
	}
	work()
}
after()`))
	if !reachesExit(g) {
		t.Fatal("loop with exit condition must reach exit")
	}
	// Some block must have a back edge (successor with smaller index).
	back := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("for loop must produce a back edge")
	}
}

func TestInfiniteLoopNoExit(t *testing.T) {
	g := New(parseBody(t, `
for {
	work()
}`))
	if reachesExit(g) {
		t.Fatal("for{} without break must not reach exit")
	}
}

func TestRangeHeadHoldsStmt(t *testing.T) {
	g := New(parseBody(t, `
for _, v := range xs {
	use(v)
}
after()`))
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				// The range head must branch: body and loop-exit.
				if len(b.Succs) != 2 {
					t.Fatalf("range head succs = %d, want 2", len(b.Succs))
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("RangeStmt must appear as a head node")
	}
	if !reachesExit(g) {
		t.Fatal("range loop must reach exit")
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	// Without default: an implicit edge skips the switch.
	g := New(parseBody(t, `
switch x {
case 1:
	a()
case 2:
	return
}
after()`))
	if !reachesExit(g) {
		t.Fatal("switch without default must fall past the switch")
	}

	// Exhaustive default where every case returns: nothing falls out.
	g = New(parseBody(t, `
switch x {
case 1:
	return
default:
	return
}`))
	// The only way to exit is via the returns; verify via the after
	// statement being absent, i.e. exit is still reachable (returns).
	if !reachesExit(g) {
		t.Fatal("returning switch cases must edge to exit")
	}

	// Fallthrough connects consecutive case bodies.
	g = New(parseBody(t, `
switch x {
case 1:
	a()
	fallthrough
case 2:
	b()
}`))
	if !reachesExit(g) {
		t.Fatal("fallthrough switch must reach exit")
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := New(parseBody(t, `
outer:
for i := 0; i < n; i++ {
	for j := 0; j < n; j++ {
		if a() {
			continue outer
		}
		if b() {
			break outer
		}
	}
}
after()`))
	if !reachesExit(g) {
		t.Fatal("labeled loops must reach exit")
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g := New(parseBody(t, `
	i := 0
loop:
	i++
	if i < 10 {
		goto loop
	}
	if done() {
		goto end
	}
	work()
end:
	finish()`))
	if !reachesExit(g) {
		t.Fatal("goto graph must reach exit")
	}
}

func TestSelect(t *testing.T) {
	g := New(parseBody(t, `
select {
case <-a:
	x()
case <-b:
	return
}
after()`))
	if !reachesExit(g) {
		t.Fatal("select must reach exit through its cases")
	}
}

func TestDeferAndGoAreNodes(t *testing.T) {
	g := New(parseBody(t, "defer cleanup()\ngo work()\nrest()"))
	kinds := []string{}
	for _, n := range g.Entry.Nodes {
		switch n.(type) {
		case *ast.DeferStmt:
			kinds = append(kinds, "defer")
		case *ast.GoStmt:
			kinds = append(kinds, "go")
		case *ast.ExprStmt:
			kinds = append(kinds, "expr")
		}
	}
	if got := strings.Join(kinds, ","); got != "defer,go,expr" {
		t.Fatalf("entry node kinds = %s, want defer,go,expr", got)
	}
}
