package pairing

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"github.com/medusa-repro/medusa/internal/lint/analysis/cfg"
)

// build parses src as a function body and returns its CFG.
func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.New(f.Decls[0].(*ast.FuncDecl).Body)
}

// nodeText renders the source fragment of a statement node for
// classification by substring, which keeps the fixtures readable.
func nodeText(n ast.Node) string {
	switch s := n.(type) {
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok {
				return id.Name
			}
		}
	case *ast.DeferStmt:
		if id, ok := s.Call.Fun.(*ast.Ident); ok {
			return "defer " + id.Name
		}
	case *ast.AssignStmt:
		if id, ok := s.Lhs[0].(*ast.Ident); ok {
			return id.Name + "="
		}
	}
	return ""
}

// classifier builds a classify func from name sets.
func classifier(kills, uses string) func(ast.Node) Class {
	killSet := strings.Fields(kills)
	useSet := strings.Fields(uses)
	return func(n ast.Node) Class {
		txt := nodeText(n)
		for _, k := range killSet {
			if txt == k || txt == "defer "+k {
				return ClassKill
			}
		}
		for _, u := range useSet {
			if txt == u {
				return ClassUse
			}
		}
		return ClassNone
	}
}

// findCall locates the Pos of the statement calling name.
func findCall(t *testing.T, g *cfg.Graph, name string) Pos {
	t.Helper()
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if nodeText(n) == name {
				return Pos{Block: b, Index: i}
			}
		}
	}
	t.Fatalf("no call to %s in graph", name)
	return Pos{}
}

func TestEscapesStraightLinePaired(t *testing.T) {
	g := build(t, "acquire()\nrelease()")
	if EscapesToExit(g, findCall(t, g, "acquire"), classifier("release", "")) {
		t.Fatal("acquire immediately followed by release must not escape")
	}
}

func TestEscapesMissingRelease(t *testing.T) {
	g := build(t, "acquire()\nwork()")
	if !EscapesToExit(g, findCall(t, g, "acquire"), classifier("release", "")) {
		t.Fatal("acquire with no release must escape")
	}
}

func TestEscapesOneBranchLeaks(t *testing.T) {
	g := build(t, `
acquire()
if cond() {
	release()
	return
}
work()`)
	if !EscapesToExit(g, findCall(t, g, "acquire"), classifier("release", "")) {
		t.Fatal("release on only one branch must escape via the other")
	}
}

func TestEscapesBothBranchesPaired(t *testing.T) {
	g := build(t, `
acquire()
if cond() {
	rollback()
	return
}
commit()`)
	if EscapesToExit(g, findCall(t, g, "acquire"), classifier("rollback commit", "")) {
		t.Fatal("rollback-or-commit on every path must not escape")
	}
}

func TestEscapesDeferCountsImmediately(t *testing.T) {
	g := build(t, `
acquire()
defer release()
if cond() {
	return
}
work()`)
	if EscapesToExit(g, findCall(t, g, "acquire"), classifier("release", "")) {
		t.Fatal("deferred release must pair all downstream returns")
	}
}

func TestEscapesPanicPathIsNotAReturn(t *testing.T) {
	g := build(t, "acquire()\npanic(\"boom\")")
	if EscapesToExit(g, findCall(t, g, "acquire"), classifier("release", "")) {
		t.Fatal("a path ending in panic does not reach exit")
	}
}

func TestEscapesLoopReacquire(t *testing.T) {
	// Release inside the loop pairs the acquisition before the back
	// edge; the loop-exit path after release has no live acquisition...
	// but the exists-path query starts AFTER acquire, and the path
	// acquire -> loop-head -> loop-exit (zero iterations) escapes only
	// if the loop can be skipped before release runs.
	g := build(t, `
for iter() {
	acquire()
	if bad() {
		rollback()
		continue
	}
	commit()
}`)
	if EscapesToExit(g, findCall(t, g, "acquire"), classifier("rollback commit", "")) {
		t.Fatal("loop body pairing on both continue and fallthrough must not escape")
	}
}

func TestEscapesLoopBreakLeaks(t *testing.T) {
	g := build(t, `
for iter() {
	acquire()
	if bad() {
		break
	}
	commit()
}`)
	if !EscapesToExit(g, findCall(t, g, "acquire"), classifier("commit", "")) {
		t.Fatal("break between acquire and commit must escape")
	}
}

func TestUnkilledCollectsUseAfterFree(t *testing.T) {
	g := build(t, "free()\nuse()")
	uses := Unkilled(g, findCall(t, g, "free"), classifier("", "use"))
	if len(uses) != 1 {
		t.Fatalf("got %d uses, want 1", len(uses))
	}
}

func TestUnkilledReassignmentKills(t *testing.T) {
	g := build(t, "free()\np=newThing()\nuse()")
	uses := Unkilled(g, findCall(t, g, "free"), classifier("p=", "use"))
	if len(uses) != 0 {
		t.Fatalf("got %d uses after reassignment, want 0", len(uses))
	}
}

func TestUnkilledLoopBackEdge(t *testing.T) {
	// free at the end of a loop body: the back edge reaches use() at
	// the top of the next iteration unless the loop head reassigns.
	g := build(t, `
for iter() {
	use()
	free()
}`)
	uses := Unkilled(g, findCall(t, g, "free"), classifier("", "use"))
	if len(uses) != 1 {
		t.Fatalf("got %d uses via back edge, want 1", len(uses))
	}
}

func TestUnkilledGuardKillsBothBranchJoin(t *testing.T) {
	g := build(t, `
if cond() {
	guard()
} else {
	guard()
}
use()`)
	uses := Unkilled(g, Entry(g), classifier("guard", "use"))
	if len(uses) != 0 {
		t.Fatalf("got %d uses with guards on all paths, want 0", len(uses))
	}
}

func TestUnkilledGuardOnOneBranchOnly(t *testing.T) {
	g := build(t, `
if cond() {
	guard()
}
use()`)
	uses := Unkilled(g, Entry(g), classifier("guard", "use"))
	if len(uses) != 1 {
		t.Fatalf("got %d uses with guard on one branch, want 1", len(uses))
	}
}

func TestFindLocatesNestedExpr(t *testing.T) {
	g := build(t, `
if acquireCond() {
	work()
}`)
	// Locate the call buried in the if condition: Find must return the
	// node (the IfStmt header entry) containing it.
	var call *ast.CallExpr
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(x ast.Node) bool {
				if c, ok := x.(*ast.CallExpr); ok && call == nil {
					call = c
				}
				return true
			})
		}
	}
	if call == nil {
		t.Fatal("no call found in any block")
	}
	if _, ok := Find(g, call); !ok {
		t.Fatal("Find must locate a call nested in an if condition")
	}
}
