// Package pairing is the path-sensitive query engine the flow-aware
// medusalint analyzers share. Given a cfg.Graph, it answers the two
// questions resource-pairing invariants reduce to, in the spirit of
// x/tools' lostcancel:
//
//   - EscapesToExit: starting just after an acquisition node, does SOME
//     path reach the function exit without passing a node that releases
//     the resource? If yes, the acquisition is unpaired on at least one
//     return path (kvpair: a Reserve that can return without Commit or
//     Rollback; spanpair: a span that can return without End).
//
//   - Unkilled: starting from a point, which "use" nodes are reachable
//     on SOME path that has not passed a "kill" node? (poolescape: uses
//     of a pointer after freeReq with no reassignment in between;
//     epochguard: mutations of pooled state with no epoch comparison
//     dominating them, by starting at function entry with guards as
//     kills.)
//
// Both queries are exists-path, not all-paths: they deliberately ignore
// branch conditions (path feasibility), which makes them conservative —
// every real violation is on some CFG path, and the //medusalint:allow
// escape hatch covers the rare infeasible-path report. Classification
// is per CFG node via a caller-supplied function, so the engine knows
// nothing about what a resource is.
package pairing

import (
	"go/ast"

	"github.com/medusa-repro/medusa/internal/lint/analysis/cfg"
)

// Class is a CFG node's role in one query.
type Class int

const (
	// ClassNone nodes are transparent: paths pass through them.
	ClassNone Class = iota
	// ClassKill nodes stop path propagation: the resource was released,
	// the pointer reassigned, the guard evaluated.
	ClassKill
	// ClassUse nodes are what Unkilled collects when reached on an
	// unkilled path. EscapesToExit treats them as transparent.
	ClassUse
)

// Pos addresses one node inside a graph: Block.Nodes[Index]. Index -1
// addresses the point before the block's first node (used to start a
// traversal at function entry).
type Pos struct {
	Block *cfg.Block
	Index int
}

// Find locates the CFG node containing target (by position interval) —
// e.g. the statement node holding a call expression buried in an if
// condition. When intervals nest (a RangeStmt head node spans its whole
// loop, including body statements that are their own nodes), the
// SMALLEST containing node wins: that is the one whose execution point
// actually evaluates the target. Returns ok=false when target is not
// inside any node of a reachable block (dead code).
func Find(g *cfg.Graph, target ast.Node) (Pos, bool) {
	var (
		best     Pos
		bestSpan int64 = -1
	)
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= target.Pos() && target.End() <= n.End() {
				span := int64(n.End() - n.Pos())
				if bestSpan < 0 || span < bestSpan {
					best, bestSpan = Pos{Block: b, Index: i}, span
				}
			}
		}
	}
	return best, bestSpan >= 0
}

// Entry returns the position before the first node of the entry block.
func Entry(g *cfg.Graph) Pos {
	return Pos{Block: g.Entry, Index: -1}
}

// EscapesToExit reports whether some path starting just AFTER start
// reaches the function exit without passing a ClassKill node.
// A DeferStmt classified ClassKill counts as a kill immediately: the
// deferred release is registered on this path and will run at every
// subsequent return, so all exits downstream of it are paired.
func EscapesToExit(g *cfg.Graph, start Pos, classify func(ast.Node) Class) bool {
	escaped := false
	walk(g, start, classify, func(ast.Node) {}, func() { escaped = true })
	return escaped
}

// Unkilled returns the ClassUse nodes reachable from the point just
// after start on some path that has not passed a ClassKill node, in
// first-reached order. A node that is both (classify returns ClassKill)
// stops the path without being collected — callers wanting
// use-then-kill semantics classify such nodes ClassUse.
func Unkilled(g *cfg.Graph, start Pos, classify func(ast.Node) Class) []ast.Node {
	var uses []ast.Node
	seen := map[ast.Node]bool{}
	walk(g, start, classify, func(n ast.Node) {
		if !seen[n] {
			seen[n] = true
			uses = append(uses, n)
		}
	}, func() {})
	return uses
}

// walk is the shared traversal: from the point after start, visit nodes
// in path order, stopping each path at a ClassKill node, reporting
// ClassUse nodes via onUse and exit-block arrival via onExit. Blocks
// are visited at most once from their top (the partial start block is
// handled separately), which suffices: classification is path-history
// independent, so reaching a block twice adds nothing.
func walk(g *cfg.Graph, start Pos, classify func(ast.Node) Class, onUse func(ast.Node), onExit func()) {
	visited := make(map[int]bool, len(g.Blocks))
	var visit func(b *cfg.Block, from int)
	visit = func(b *cfg.Block, from int) {
		if from == 0 {
			if visited[b.Index] {
				return
			}
			visited[b.Index] = true
		}
		if b == g.Exit {
			onExit()
			return
		}
		for i := from; i < len(b.Nodes); i++ {
			switch classify(b.Nodes[i]) {
			case ClassKill:
				return
			case ClassUse:
				onUse(b.Nodes[i])
			}
		}
		for _, succ := range b.Succs {
			visit(succ, 0)
		}
	}
	visit(start.Block, start.Index+1)
}
