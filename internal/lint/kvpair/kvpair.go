// Package kvpair defines the flow-aware medusalint analyzer that
// checks kvcache reservation pairing: every call to a Reserve method
// must reach a Commit or Rollback on the same manager type on ALL
// paths before the function returns. It is the static mirror of the
// block-conservation property test — an unpaired Reserve leaks
// reserved blocks exactly the way an unpaired speculative allocation
// would leak KV slots in Medusa's materialized startup path.
//
// Matching is duck-typed rather than import-path-based so the testdata
// fixtures (and any future manager) are covered: a call is a
// reservation when the callee is a method named Reserve whose receiver
// type also declares Commit and Rollback methods. This deliberately
// excludes eventq.Queue.Reserve (capacity pre-sizing, no transaction
// to pair).
//
// The check is an exists-path query over the intraprocedural CFG
// (pairing.EscapesToExit): a diagnostic means some branch/loop/return
// path escapes the function with the reservation still open. Paths
// ending in panic are not returns and are not counted. A Commit or
// Rollback inside a defer pairs every return downstream of the defer
// statement.
package kvpair

import (
	"go/ast"
	"go/types"

	"github.com/medusa-repro/medusa/internal/lint/analysis"
	"github.com/medusa-repro/medusa/internal/lint/analysis/cfg"
	"github.com/medusa-repro/medusa/internal/lint/analysis/pairing"
	"github.com/medusa-repro/medusa/internal/lint/lintutil"
)

// Analyzer is the kvpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "kvpair",
	Doc:  "every kvcache Reserve must reach Commit or Rollback on all return paths",
	Run:  run,
}

// receiverNamed unwraps a method's receiver to its *types.Named type.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// hasMethod reports whether named declares a method with the name.
func hasMethod(named *types.Named, name string) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// isManagerMethod reports whether fn is the named method of a
// reservation manager: a type declaring Reserve, Commit and Rollback.
func isManagerMethod(fn *types.Func, name string) (*types.Named, bool) {
	if fn == nil || fn.Name() != name {
		return nil, false
	}
	named := receiverNamed(fn)
	if named == nil {
		return nil, false
	}
	if !hasMethod(named, "Reserve") || !hasMethod(named, "Commit") || !hasMethod(named, "Rollback") {
		return nil, false
	}
	return named, true
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || lintutil.IsTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Collect the Reserve call sites first; most functions have none
	// and never pay for a CFG.
	type site struct {
		call    *ast.CallExpr
		manager *types.Named
	}
	var sites []site
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // function literals are separate flows; keep the pass intraprocedural
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if named, ok := isManagerMethod(lintutil.Callee(pass.TypesInfo, call), "Reserve"); ok {
			sites = append(sites, site{call, named})
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	g := cfg.New(fd.Body)
	for _, s := range sites {
		start, ok := pairing.Find(g, s.call)
		if !ok {
			continue // dead code
		}
		classify := func(n ast.Node) pairing.Class {
			killed := false
			ast.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := lintutil.Callee(pass.TypesInfo, call)
				if fn == nil {
					return true
				}
				if fn.Name() == "Commit" || fn.Name() == "Rollback" {
					if receiverNamed(fn) == s.manager {
						killed = true
						return false
					}
				}
				return true
			})
			if killed {
				return pairing.ClassKill
			}
			return pairing.ClassNone
		}
		if pairing.EscapesToExit(g, start, classify) {
			pass.Reportf(s.call.Pos(), "%s.Reserve can reach return without Commit or Rollback on some path: reserved blocks leak (pair every reservation, kvcache block conservation)", s.manager.Obj().Name())
		}
	}
}
