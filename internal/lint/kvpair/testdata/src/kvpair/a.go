// Package kvpair's testdata mirrors the kvcache.Manager reservation
// API by shape: Reserve opens a speculative allocation that Commit
// publishes or Rollback abandons. Queue mimics eventq.Queue.Reserve
// (capacity pre-sizing) and must NOT be matched.
package kvpair

// Manager mimics kvcache.Manager: Reserve/Commit/Rollback triple.
type Manager struct{}

func (m *Manager) Reserve(id string, n int) error { return nil }
func (m *Manager) Commit()                        {}
func (m *Manager) Rollback()                      {}

// Queue mimics eventq.Queue: Reserve alone, no transaction to pair.
type Queue struct{}

func (q *Queue) Reserve(n int) {}

func cond() bool { return false }
func work()      {}

// GoodPairedBothBranches pairs the reservation on every path: the
// error branch rolls back, the success path commits.
func GoodPairedBothBranches(m *Manager) error {
	if err := m.Reserve("r1", 4); err != nil {
		m.Rollback()
		return err
	}
	m.Commit()
	return nil
}

// GoodDeferRollback registers the rollback before any branching; every
// downstream return is paired by the defer.
func GoodDeferRollback(m *Manager) error {
	err := m.Reserve("r2", 4)
	defer m.Rollback()
	if err != nil {
		return err
	}
	if cond() {
		return nil
	}
	work()
	return nil
}

// GoodLoopPaired reserves per iteration and pairs before both the
// continue back edge and the fallthrough to the next iteration.
func GoodLoopPaired(m *Manager, ids []string) {
	for _, id := range ids {
		if err := m.Reserve(id, 1); err != nil {
			m.Rollback()
			continue
		}
		m.Commit()
	}
}

// GoodPanicPath never returns after the reservation; panic paths are
// not returns, so nothing escapes.
func GoodPanicPath(m *Manager) {
	if err := m.Reserve("r3", 2); err != nil {
		m.Rollback()
		panic("reserve failed")
	}
	m.Commit()
}

// GoodQueueReserve is capacity pre-sizing, not a transaction: the
// duck-typed match requires Commit and Rollback on the receiver.
func GoodQueueReserve(q *Queue) {
	q.Reserve(1024)
}

// BadNoPairing never commits or rolls back.
func BadNoPairing(m *Manager) error {
	if err := m.Reserve("r4", 4); err != nil { // want `Reserve can reach return without Commit or Rollback`
		return err
	}
	work()
	return nil
}

// BadErrorBranchLeaks pairs the success path but returns the error
// with the reservation still open.
func BadErrorBranchLeaks(m *Manager) error {
	if err := m.Reserve("r5", 4); err != nil { // want `Reserve can reach return without Commit or Rollback`
		return err
	}
	m.Commit()
	return nil
}

// BadBreakLeaks escapes the loop between Reserve and Commit.
func BadBreakLeaks(m *Manager, ids []string) {
	for _, id := range ids {
		if err := m.Reserve(id, 1); err != nil { // want `Reserve can reach return without Commit or Rollback`
			break
		}
		m.Commit()
	}
}

// AllowedHandoff demonstrates the escape hatch for deliberate
// cross-function handoff, which the intraprocedural pass cannot see.
func AllowedHandoff(m *Manager) error {
	err := m.Reserve("r6", 8) //medusalint:allow kvpair(reservation ownership transfers to the caller, which commits after planning)
	return err
}
