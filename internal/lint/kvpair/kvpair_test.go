package kvpair_test

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/lint/analysistest"
	"github.com/medusa-repro/medusa/internal/lint/kvpair"
)

func TestKVPair(t *testing.T) {
	analysistest.Run(t, kvpair.Analyzer, "kvpair")
}
