package wallclock_test

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/lint/analysistest"
	"github.com/medusa-repro/medusa/internal/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "wallclock")
}

func TestWallclockVclockExempt(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "vclock")
}
