// Package vclock stands in for internal/vclock: the one package
// allowed to touch real time types, so it is exempt wholesale.
package vclock

import "time"

// RealNow is legal here and only here.
func RealNow() time.Time { return time.Now() }
