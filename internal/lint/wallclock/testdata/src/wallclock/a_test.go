package wallclock

import "time"

// Test files are exempt: tests may measure real elapsed time (for
// example to bound a benchmark) without threatening simulation
// determinism.
func helperForTests() time.Duration {
	start := time.Now()
	time.Sleep(time.Microsecond)
	return time.Since(start)
}
