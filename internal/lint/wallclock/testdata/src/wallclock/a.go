package wallclock

import "time"

// Violations exercises every forbidden form: calls and value
// references both read the wall clock.
func Violations() time.Duration {
	t := time.Now()              // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks on the wall clock`
	d := time.Since(t)           // want `time\.Since reads the wall clock`
	<-time.After(d)              // want `time\.After blocks on the wall clock`
	clock := time.Now            // want `time\.Now reads the wall clock`
	_ = clock
	return d
}

// Denominations shows what stays legal: duration arithmetic, constants,
// and parsing — virtual time is still denominated in time.Duration.
func Denominations() time.Duration {
	budget := 5 * time.Millisecond
	parsed, _ := time.ParseDuration("1.5s")
	return budget + parsed
}

// Allowed demonstrates the escape hatch with a justification.
func Allowed() time.Time {
	return time.Now() //medusalint:allow wallclock(process-level watchdog deadline, not simulated time)
}

// AllowedAbove demonstrates the directive-above-the-statement style.
func AllowedAbove() time.Time {
	//medusalint:allow wallclock(host timestamp for log file naming only)
	return time.Now()
}
