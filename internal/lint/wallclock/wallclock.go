// Package wallclock defines a medusalint analyzer that forbids reading
// the wall clock. Every duration in this repository is virtual: the
// simulated GPU, engine, and cluster all advance an internal/vclock
// Clock, which is what makes a run at a fixed seed bit-identical across
// machines, -race modes, and CPU load. One stray time.Now() breaks that
// guarantee silently — a trace looks plausible and golden tests flake
// weeks later.
//
// The analyzer flags any reference (call or function value) to the
// time-package functions that observe or consume real time. The
// internal/vclock package itself and _test.go files are exempt, and a
// justified //medusalint:allow wallclock(...) directive silences one
// line.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/medusa-repro/medusa/internal/lint/analysis"
	"github.com/medusa-repro/medusa/internal/lint/lintutil"
)

// forbidden lists the time-package functions that read or wait on the
// wall clock. Conversions and constants (time.Duration, time.Millisecond,
// time.ParseDuration) are fine: they denominate virtual time.
var forbidden = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "blocks on the wall clock",
	"AfterFunc": "schedules on the wall clock",
	"Tick":      "ticks on the wall clock",
	"NewTicker": "ticks on the wall clock",
	"NewTimer":  "schedules on the wall clock",
}

// Analyzer is the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock time in the simulator: all timing must flow through internal/vclock",
	Run:  run,
}

// exemptPackage reports whether the package is the virtual clock
// itself — the one place real time types are legitimately wrapped.
func exemptPackage(path string) bool {
	return path == "vclock" || strings.HasSuffix(path, "/vclock")
}

func run(pass *analysis.Pass) (any, error) {
	if exemptPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if why, bad := forbidden[fn.Name()]; bad {
				pass.Reportf(sel.Sel.Pos(), "time.%s %s; use the internal/vclock clock threaded through the simulation", fn.Name(), why)
			}
			return true
		})
	}
	return nil, nil
}
