// Package loader type-checks Go packages for medusalint using only the
// standard library and the go command. It shells out to
// `go list -deps -export -json`, which compiles (or reuses from the
// build cache) gc export data for every dependency, then parses the
// target packages from source and type-checks them with an export-data
// importer. This is the same strategy x/tools' go/packages uses in
// NeedTypes mode, reimplemented small because this repository builds
// with zero external modules.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// golist runs `go list -deps -export -json` in dir for the given
// patterns and decodes the JSON object stream.
func golist(dir string, patterns ...string) ([]listPkg, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,GoFiles,Export,Standard,DepOnly,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Exports resolves import paths to gc export-data files. It backs the
// types.Importer used for every type-check.
type Exports map[string]string

// ExportsFor builds an export index covering the given import paths and
// all of their dependencies. dir must be inside the module so the go
// command can resolve module-internal paths.
func ExportsFor(dir string, importPaths ...string) (Exports, error) {
	if len(importPaths) == 0 {
		return Exports{}, nil
	}
	pkgs, err := golist(dir, importPaths...)
	if err != nil {
		return nil, err
	}
	ex := make(Exports, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			ex[p.ImportPath] = p.Export
		}
	}
	return ex, nil
}

// Importer returns a types.Importer reading from the export index.
func (ex Exports) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ex[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// NewInfo returns a types.Info with every map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// CheckFiles parses and type-checks one package from explicit files.
// Imports resolve through the export index; the package's own sources
// are never required to have export data.
func CheckFiles(fset *token.FileSet, imp types.Importer, importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	cfg := &types.Config{Importer: imp}
	tpkg, err := cfg.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        filepath.Dir(filenames[0]),
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// Load type-checks every package matching the patterns (for example
// "./...") relative to dir. Only non-test sources are analyzed: the
// determinism invariants bind the simulator, not its tests, and the
// analyzers additionally exempt _test.go files loaded by other means.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := golist(dir, patterns...)
	if err != nil {
		return nil, err
	}
	ex := make(Exports, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			ex[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := ex.Importer(fset)

	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		filenames := make([]string, 0, len(p.GoFiles))
		for _, f := range p.GoFiles {
			filenames = append(filenames, filepath.Join(p.Dir, f))
		}
		pkg, err := CheckFiles(fset, imp, p.ImportPath, filenames)
		if err != nil {
			return nil, err
		}
		pkg.Dir = p.Dir
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir parses and type-checks every .go file in one directory as a
// single package named after the directory — the analysistest loader.
// Files whose names end in _test.go are included (package-level test
// files exercise the analyzers' test-file exemptions); external test
// packages (package foo_test) are not supported.
func LoadDir(dir string, moduleDir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("loader: no .go files in %s", dir)
	}
	sort.Strings(filenames)

	// Pre-parse to discover imports, then build the export index for
	// exactly those paths.
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var imports []string
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	sort.Strings(imports)
	ex, err := ExportsFor(moduleDir, imports...)
	if err != nil {
		return nil, err
	}
	fset = token.NewFileSet()
	return CheckFiles(fset, ex.Importer(fset), filepath.Base(dir), filenames)
}
