// Package analysistest runs a medusalint analyzer over a golden
// testdata package and checks its diagnostics against expectations
// embedded in the source, mirroring the x/tools analysistest
// convention:
//
//	time.Now() // want `wall clock`
//
// A `// want` comment holds one or more quoted regular expressions;
// each must be matched by a diagnostic reported on that line, and every
// diagnostic must be claimed by a want. Testdata lives under
// testdata/src/<pkg>/ next to the analyzer's test. Packages load
// through the same loader and runner as cmd/medusalint, so the
// //medusalint:allow escape hatch is exercised exactly as in
// production.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/medusa-repro/medusa/internal/lint/analysis"
	"github.com/medusa-repro/medusa/internal/lint/loader"
	"github.com/medusa-repro/medusa/internal/lint/runner"
)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// quoted matches one double-quoted or backquoted expectation string.
var quoted = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// collectWants extracts `// want` expectations from a loaded package.
func collectWants(t *testing.T, pkg *loader.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, "want ")
				matches := quoted.FindAllStringSubmatch(rest, -1)
				if len(matches) == 0 {
					t.Errorf("%s: want comment with no quoted pattern", pos)
					continue
				}
				for _, m := range matches {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

// Run loads testdata/src/<pkgname> relative to the calling test's
// working directory, applies the analyzer through the production
// runner, and diffs diagnostics against `// want` comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := moduleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(cwd, "testdata", "src", pkgname)
	pkg, err := loader.LoadDir(dir, root)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	findings, err := runner.Run([]*loader.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}
