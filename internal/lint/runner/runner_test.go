package runner

import "testing"

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text         string
		name, reason string
		ok, badForm  bool
	}{
		{"//medusalint:allow wallclock(watchdog deadline)", "wallclock", "watchdog deadline", true, false},
		{"// medusalint:allow maporder(debug dump)", "maporder", "debug dump", true, false},
		{"//medusalint:allow seededrand( padded reason )", "seededrand", "padded reason", true, false},
		// Reasons may themselves contain parentheses.
		{"//medusalint:allow capturesync(models §2.3 (invalidation) path)", "capturesync", "models §2.3 (invalidation) path", true, false},
		// Malformed: no justification, no parens, empty name.
		{"//medusalint:allow wallclock()", "", "", true, true},
		{"//medusalint:allow wallclock", "", "", true, true},
		{"//medusalint:allow (reason)", "", "", true, true},
		// Not allow directives at all.
		{"// plain comment", "", "", false, false},
		{"//medusalint:something-else", "", "", false, false},
	}
	for _, c := range cases {
		name, reason, ok, badForm := parseAllow(c.text)
		if name != c.name || reason != c.reason || ok != c.ok || badForm != c.badForm {
			t.Errorf("parseAllow(%q) = (%q, %q, %v, %v), want (%q, %q, %v, %v)",
				c.text, name, reason, ok, badForm, c.name, c.reason, c.ok, c.badForm)
		}
	}
}
