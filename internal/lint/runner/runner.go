// Package runner executes medusalint analyzers over loaded packages
// and applies the //medusalint:allow escape hatch.
//
// An allow directive is written on (or directly above) the offending
// line:
//
//	t := time.Now() //medusalint:allow wallclock(process-level timeout, not simulated time)
//
// The directive names the analyzer it silences and must carry a
// non-empty justification in parentheses; a directive without one is
// itself a finding. Suppression is deliberately narrow — one line per
// directive — so an allowance never silently covers new code.
package runner

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"github.com/medusa-repro/medusa/internal/lint/analysis"
	"github.com/medusa-repro/medusa/internal/lint/loader"
)

// Finding is one diagnostic surviving allow-filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// allowKey identifies one (file, line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

const allowPrefix = "medusalint:allow"

// parseAllow parses "medusalint:allow name(reason)". ok reports whether
// the comment is an allow directive at all; badForm reports a directive
// with a missing analyzer name or empty justification.
func parseAllow(text string) (name, reason string, ok, badForm bool) {
	text = strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(text, allowPrefix) {
		return "", "", false, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	open := strings.IndexByte(rest, '(')
	close := strings.LastIndexByte(rest, ')')
	if open <= 0 || close < open {
		return "", "", true, true
	}
	name = strings.TrimSpace(rest[:open])
	reason = strings.TrimSpace(rest[open+1 : close])
	if name == "" || reason == "" {
		return "", "", true, true
	}
	return name, reason, true, false
}

// collectAllows scans a package's comments. It returns the suppression
// set and findings for malformed directives.
func collectAllows(pkg *loader.Package) (map[allowKey]bool, []Finding) {
	allows := make(map[allowKey]bool)
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, _, ok, badForm := parseAllow(c.Text)
				pos := pkg.Fset.Position(c.Pos())
				if !ok {
					continue
				}
				if badForm {
					bad = append(bad, Finding{
						Analyzer: "medusalint",
						Pos:      pos,
						Message:  "malformed allow directive: want //medusalint:allow analyzer(justification)",
					})
					continue
				}
				// The directive covers its own line and the next one
				// (directive-above-the-statement style).
				allows[allowKey{pos.Filename, pos.Line, name}] = true
				allows[allowKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return allows, bad
}

// Run applies every analyzer to every package and returns the findings
// that survive //medusalint:allow filtering, sorted by position.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		allows, bad := collectAllows(pkg)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if allows[allowKey{pos.Filename, pos.Line, a.Name}] {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("runner: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
