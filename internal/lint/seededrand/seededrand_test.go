package seededrand_test

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/lint/analysistest"
	"github.com/medusa-repro/medusa/internal/lint/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, seededrand.Analyzer, "seededrand")
}
