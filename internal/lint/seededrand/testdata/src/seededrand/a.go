package seededrand

import (
	crand "crypto/rand" // want `crypto/rand is nondeterministic`
	"math/rand"
)

// Config mirrors the repository convention: every randomized component
// carries a Seed field.
type Config struct{ Seed int64 }

// Violations draws from the process-global, auto-seeded source.
func Violations() int {
	n := rand.Intn(10)                 // want `rand\.Intn draws from the process-global source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	_ = rand.Int63()                   // want `rand\.Int63 draws from the process-global source`
	var b [8]byte
	_, _ = crand.Read(b[:])
	return n
}

// HardCoded seeds a generator with a literal: replaying a run then
// requires reading the source, not the config.
func HardCoded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand\.NewSource with a hard-coded seed`
}

// Good is the sanctioned pattern: the seed arrives through config.
func Good(cfg Config) int {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return rng.Intn(10)
}

// GoodDerived mixes a config seed with shard salt — not constant, fine.
func GoodDerived(cfg Config, shard int) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed ^ 0x5eed ^ int64(shard)))
}

// Allowed demonstrates the escape hatch.
func Allowed() int {
	return rand.Intn(2) //medusalint:allow seededrand(coin flip in a throwaway example binary)
}
