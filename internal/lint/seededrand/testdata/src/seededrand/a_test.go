package seededrand

import "math/rand"

// Test files are exempt: a throwaway fixed-seed generator in a test is
// exactly what determinism wants.
func testdataRNG() *rand.Rand { return rand.New(rand.NewSource(42)) }
