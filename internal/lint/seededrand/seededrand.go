// Package seededrand defines a medusalint analyzer that keeps every
// random number traceable to a configuration seed. The simulator's
// workloads, allocators, and cluster policies all draw from
// rand.New(rand.NewSource(cfg.Seed)) instances (see
// internal/workload/workload.go and internal/gpu/device.go), which is
// what makes a run replayable from its config alone.
//
// Three things break that and are flagged:
//
//  1. package-level math/rand (and math/rand/v2) functions — rand.Intn,
//     rand.Shuffle, … — which draw from the process-global,
//     auto-seeded source;
//  2. any use of crypto/rand, which is nondeterministic by design;
//  3. rand.NewSource / rand.NewPCG / rand.NewChaCha8 with all-constant
//     arguments — a hard-coded seed that cannot be varied from config.
//
// Constructors (rand.New, rand.NewSource, rand.NewZipf) fed from
// non-constant seeds are the sanctioned pattern. _test.go files are
// exempt.
package seededrand

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/medusa-repro/medusa/internal/lint/analysis"
	"github.com/medusa-repro/medusa/internal/lint/lintutil"
)

// Analyzer is the seededrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "require all randomness to come from rand.New(rand.NewSource(seed)) with a config-derived seed",
	Run:  run,
}

// constructors are the math/rand functions that build explicitly-seeded
// generators; everything else at package scope draws from the global
// source.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// seedTakers are the constructors whose arguments are the seed itself;
// calling them with only constant arguments hard-codes the seed.
var seedTakers = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func isMathRand(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "crypto/rand" {
				pass.Reportf(imp.Pos(), "crypto/rand is nondeterministic; derive randomness from a config seed via math/rand.NewSource")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok || !isMathRand(fn.Pkg()) {
					return true
				}
				// Methods on *rand.Rand are fine; only package-scope
				// functions touch the global source.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				if !constructors[fn.Name()] {
					pass.Reportf(n.Sel.Pos(), "rand.%s draws from the process-global source; use rand.New(rand.NewSource(seed)) with a config-derived seed", fn.Name())
				}
			case *ast.CallExpr:
				fn := lintutil.Callee(pass.TypesInfo, n)
				if fn == nil || !isMathRand(fn.Pkg()) || !seedTakers[fn.Name()] || len(n.Args) == 0 {
					return true
				}
				allConst := true
				for _, arg := range n.Args {
					if tv, ok := pass.TypesInfo.Types[arg]; !ok || tv.Value == nil {
						allConst = false
						break
					}
				}
				if allConst {
					pass.Reportf(n.Pos(), "rand.%s with a hard-coded seed; thread the seed through a config field so runs are replayable from config", fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
