// Package poolescape defines the flow-aware medusalint analyzer for
// the free-list discipline: once a pointer to pooled state (reqState,
// instState, and any future free-listed struct) has been handed back
// to the pool, the local variable that held it is dead — reading it,
// mutating it, storing it into a longer-lived structure, passing it
// on, or freeing it again all touch a slot the pool may already have
// recycled for an unrelated request. The runtime counterpart is the
// recycled-slot corruption a stale pointer causes under the fixed-seed
// byte-identity tests; this is its static mirror.
//
// Freeing functions are matched two ways:
//
//   - by name: a declared function or method matching free[A-Z]* or
//     recycle* whose pointer-to-struct parameters are the freed slots
//     (freeReq, freeInst, recycle);
//   - by package-local fixpoint: a function that passes one of its own
//     pointer parameters to a known freeing function transitively
//     frees that parameter too (retire calling freeInst).
//
// At each call site that frees a local variable, the exists-path query
// collects every later use of that variable not preceded by a full
// reassignment. A range-loop head re-binding the variable kills the
// path (the next iteration's pointer is a fresh one), as does `v =
// nil` or any other whole-variable reassignment. Uses through other
// aliases are outside the intraprocedural pass.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"github.com/medusa-repro/medusa/internal/lint/analysis"
	"github.com/medusa-repro/medusa/internal/lint/analysis/cfg"
	"github.com/medusa-repro/medusa/internal/lint/analysis/pairing"
	"github.com/medusa-repro/medusa/internal/lint/lintutil"
)

// Analyzer is the poolescape pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "no use of a pooled pointer after it returns to the free list",
	Run:  run,
}

// freeName matches the naming convention for pool-returning functions.
var freeName = regexp.MustCompile(`^(free[A-Z]\w*|recycle\w*)$`)

// isPtrToStruct reports whether t is a pointer to a struct type.
func isPtrToStruct(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	_, ok = p.Elem().Underlying().(*types.Struct)
	return ok
}

// freedParams returns the indices of fn's pointer-to-struct parameters
// — the slots a freeing function returns to the pool.
func freedParams(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	for i := 0; i < sig.Params().Len(); i++ {
		if isPtrToStruct(sig.Params().At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Seed: name-matched freeing functions declared in this package.
	freeing := map[*types.Func]map[int]bool{} // fn -> freed param indices
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := lintutil.FuncObj(info, fd)
			if fn == nil {
				continue
			}
			decls[fn] = fd
			if freeName.MatchString(fn.Name()) {
				set := map[int]bool{}
				for _, i := range freedParams(fn) {
					set[i] = true
				}
				if len(set) > 0 {
					freeing[fn] = set
				}
			}
		}
	}

	// Fixpoint: a function forwarding its own pointer parameter to a
	// known freeing function frees that parameter too.
	paramIndex := func(fn *types.Func, v *types.Var) int {
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == v {
				return i
			}
		}
		return -1
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := lintutil.Callee(info, call)
				freed, ok := freeing[callee]
				if !ok {
					return true
				}
				for argIdx := range freed {
					if argIdx >= len(call.Args) {
						continue
					}
					id, ok := ast.Unparen(call.Args[argIdx]).(*ast.Ident)
					if !ok {
						continue
					}
					v, _ := info.Uses[id].(*types.Var)
					if v == nil {
						continue
					}
					if pi := paramIndex(fn, v); pi >= 0 && !freeing[fn][pi] {
						if freeing[fn] == nil {
							freeing[fn] = map[int]bool{}
						}
						freeing[fn][pi] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	for fn, fd := range decls {
		if lintutil.IsTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		checkFunc(pass, fd, fn, freeing)
	}
	return nil, nil
}

// checkFunc scans one function for frees of local variables and flags
// path-reachable uses after each.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, fn *types.Func, freeing map[*types.Func]map[int]bool) {
	info := pass.TypesInfo
	type site struct {
		call *ast.CallExpr
		v    *types.Var
		name string // callee name, for the diagnostic
	}
	var sites []site
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate flow
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := lintutil.Callee(info, call)
		freed, ok := freeing[callee]
		if !ok {
			return true
		}
		for argIdx := range freed {
			if argIdx >= len(call.Args) {
				continue
			}
			id, ok := ast.Unparen(call.Args[argIdx]).(*ast.Ident)
			if !ok {
				continue // field/index expressions are other owners' pointers
			}
			if v, _ := info.Uses[id].(*types.Var); v != nil {
				sites = append(sites, site{call, v, callee.Name()})
			}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	// A freeing function's own body legitimately touches the dead slot
	// while clearing it: only the explicit inner free-call transfer is
	// checked there, and that is exactly what the call-site collection
	// above already covers for wrappers, so skip seed-named bodies.
	if freeName.MatchString(fn.Name()) {
		return
	}

	g := cfg.New(fd.Body)
	for _, s := range sites {
		start, ok := pairing.Find(g, s.call)
		if !ok {
			continue // dead code
		}
		uses := pairing.Unkilled(g, start, classifier(info, s.v))
		for _, use := range uses {
			pass.Reportf(identPos(info, use, s.v), "use of %s after %s returned it to the free list on some path: the slot may already be recycled (nil or reassign the pointer first, free-list discipline)", s.v.Name(), s.name)
		}
	}
}

// classifier builds the per-node Class function for freed variable v.
// Whole-variable reassignment (bare LHS, range-head re-binding, v =
// nil) kills the path; any other appearance of v is a use.
func classifier(info *types.Info, v *types.Var) func(ast.Node) pairing.Class {
	return func(n ast.Node) pairing.Class {
		// Idents of v in non-reassignment position anywhere under n.
		reassigned := false
		used := false
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			lhs := map[*ast.Ident]bool{}
			for _, l := range stmt.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok && varOf(info, id) == v {
					lhs[id] = true
					reassigned = true
				}
			}
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && varOf(info, id) == v && !lhs[id] {
					used = true
				}
				return true
			})
		case *ast.RangeStmt:
			for _, x := range []ast.Expr{stmt.Key, stmt.Value} {
				if id, ok := x.(*ast.Ident); ok && varOf(info, id) == v {
					reassigned = true
				}
			}
			if !reassigned {
				// The head only evaluates the range operand; body
				// statements are their own nodes.
				ast.Inspect(stmt.X, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && varOf(info, id) == v {
						used = true
					}
					return true
				})
			}
		default:
			// Any appearance of v — including a capture inside a
			// closure, which is itself an escape of the dead pointer.
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && varOf(info, id) == v {
					used = true
				}
				return true
			})
		}
		if used {
			return pairing.ClassUse
		}
		if reassigned {
			return pairing.ClassKill
		}
		return pairing.ClassNone
	}
}

// varOf resolves an identifier to the *types.Var it uses or defines.
func varOf(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Defs[id].(*types.Var)
	return v
}

// identPos returns the position of the first identifier of v under n,
// anchoring the diagnostic on the variable rather than the statement.
func identPos(info *types.Info, n ast.Node, v *types.Var) token.Pos {
	pos := n.Pos()
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && varOf(info, id) == v {
			pos = id.Pos()
			found = true
		}
		return true
	})
	return pos
}
