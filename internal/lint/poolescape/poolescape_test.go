package poolescape_test

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/lint/analysistest"
	"github.com/medusa-repro/medusa/internal/lint/poolescape"
)

func TestPoolEscape(t *testing.T) {
	analysistest.Run(t, poolescape.Analyzer, "poolescape")
}
