// Package poolescape's testdata mirrors the simulator core's
// free-list shape: reqState/instState are pooled, freeReq/freeInst
// return slots to the pool, retire is a wrapper the fixpoint must
// discover, and recycle matches the second naming convention.
package poolescape

// reqState mimics the free-listed request state.
type reqState struct {
	id     int
	tokens int
}

// instState mimics the free-listed instance state.
type instState struct {
	epoch uint64
	idle  bool
}

type sim struct {
	reqFree  []*reqState
	instFree []*instState
	parked   *reqState
}

func (s *sim) freeReq(r *reqState) {
	r.id = 0
	r.tokens = 0
	s.reqFree = append(s.reqFree, r)
}

func (s *sim) freeInst(inst *instState) {
	inst.epoch++
	inst.idle = false
	s.instFree = append(s.instFree, inst)
}

// retire drains an instance and frees it: the package-local fixpoint
// marks it as freeing its parameter.
func (s *sim) retire(inst *instState) {
	inst.idle = false
	s.freeInst(inst)
}

// recycle matches the second freeing naming convention.
func recycle(r *reqState) {}

func observe(x any)    {}
func keep(r *reqState) {}

// GoodFreeLast frees as the final touch.
func (s *sim) GoodFreeLast(r *reqState) {
	observe(r.id)
	s.freeReq(r)
}

// GoodLoopPerIteration frees each element; the range head re-binds the
// variable before the next iteration uses it.
func (s *sim) GoodLoopPerIteration(batch []*reqState) {
	for _, r := range batch {
		observe(r.id)
		s.freeReq(r)
	}
}

// GoodNilAfterFree clears the pointer before later code runs.
func (s *sim) GoodNilAfterFree(r *reqState) {
	s.freeReq(r)
	r = nil
	observe(r)
}

// GoodReassign replaces the dead pointer with a live one.
func (s *sim) GoodReassign(r *reqState, fresh *reqState) {
	s.freeReq(r)
	r = fresh
	r.tokens++
}

// BadReadAfterFree reads a freed slot.
func (s *sim) BadReadAfterFree(r *reqState) int {
	s.freeReq(r)
	return r.tokens // want `use of r after freeReq returned it to the free list`
}

// BadMutateAfterFree writes into a freed slot.
func (s *sim) BadMutateAfterFree(r *reqState) {
	s.freeReq(r)
	r.tokens = 7 // want `use of r after freeReq returned it to the free list`
}

// BadStoreAfterFree parks the dead pointer in a longer-lived
// structure.
func (s *sim) BadStoreAfterFree(r *reqState) {
	s.freeReq(r)
	s.parked = r // want `use of r after freeReq returned it to the free list`
}

// BadPassAfterFree hands the dead pointer to another function.
func (s *sim) BadPassAfterFree(r *reqState) {
	s.freeReq(r)
	keep(r) // want `use of r after freeReq returned it to the free list`
}

// BadDoubleFree frees the same slot twice.
func (s *sim) BadDoubleFree(r *reqState) {
	s.freeReq(r)
	s.freeReq(r) // want `use of r after freeReq returned it to the free list`
}

// BadWrapperFree uses the pointer after the transitively-freeing
// wrapper: the fixpoint sees retire -> freeInst.
func (s *sim) BadWrapperFree(inst *instState) {
	s.retire(inst)
	observe(inst.idle) // want `use of inst after retire returned it to the free list`
}

// BadRecycleConvention covers the recycle* naming convention.
func BadRecycleConvention(r *reqState) {
	recycle(r)
	observe(r.id) // want `use of r after recycle returned it to the free list`
}

// BadFreeOneBranch frees on one branch and uses after the join: the
// exists-path query flags the freeing path.
func (s *sim) BadFreeOneBranch(r *reqState, drop bool) {
	if drop {
		s.freeReq(r)
	}
	observe(r.tokens) // want `use of r after freeReq returned it to the free list`
}

// AllowedDebugPeek demonstrates the escape hatch for diagnostics that
// deliberately inspect a just-freed slot.
func (s *sim) AllowedDebugPeek(r *reqState) {
	s.freeReq(r)
	observe(r.id) //medusalint:allow poolescape(debug counter reads the cleared slot before any other event can reallocate it; single-threaded step)
}
