// Package spanpair defines the flow-aware medusalint analyzer that
// checks obs span pairing: every span begun (Tracer.StartSpan or
// Span.Child) and bound to a local variable must reach a matching
// End on ALL return paths. An un-Ended span never reaches RecordSpan,
// so its phase silently vanishes from the drift-free phase tables the
// obs tiling invariant guarantees — the runtime counterpart is the
// span-accounting property test; this is its static mirror.
//
// Matching is duck-typed: a begin is a call to a method named
// StartSpan or Child whose result is a pointer to a type declaring an
// End method. Pairing is an exists-path CFG query starting just after
// the begin statement. A path is killed (considered paired) when it
// passes a node that either
//
//   - calls End on the span variable (including inside a defer, which
//     pairs every downstream return), or
//   - transfers ownership: the variable is returned, passed as an
//     argument, stored into a structure, aliased, or captured by a
//     function literal. Whoever receives the span owns its End; the
//     pass stays intraprocedural, exactly like lostcancel.
//
// Begins whose result is discarded outright are reported immediately
// (nothing can ever End them); begins stored directly into fields are
// skipped as transfers. Method chaining (Tag/Attr return the span for
// fluency) is transparent: a receiver-position use neither kills nor
// escapes.
package spanpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/medusa-repro/medusa/internal/lint/analysis"
	"github.com/medusa-repro/medusa/internal/lint/analysis/cfg"
	"github.com/medusa-repro/medusa/internal/lint/analysis/pairing"
	"github.com/medusa-repro/medusa/internal/lint/lintutil"
)

// Analyzer is the spanpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc:  "every obs span begun must be Ended (or ownership-transferred) on all return paths",
	Run:  run,
}

// spanBegin reports whether call begins a span: callee named StartSpan
// or Child returning a pointer to a type with an End method.
func spanBegin(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.Callee(info, call)
	if fn == nil || (fn.Name() != "StartSpan" && fn.Name() != "Child") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	ptr, ok := sig.Results().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "End" {
			return true
		}
	}
	return false
}

// containsEndCall reports whether any call named End appears under n —
// the inline-chained `tr.StartSpan(...).End(t)` form is self-paired.
func containsEndCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || lintutil.IsTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// site is one tracked span begin: the call and the variable bound.
type site struct {
	call *ast.CallExpr
	v    *types.Var // nil: result discarded
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var sites []site
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			return false // separate flow; a begin inside a closure pairs within it
		case *ast.AssignStmt:
			if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
				return true
			}
			call := chainRoot(info, stmt.Rhs[0])
			if call == nil {
				return true
			}
			if containsEndCall(stmt.Rhs[0]) {
				return false
			}
			id, ok := stmt.Lhs[0].(*ast.Ident)
			if !ok {
				return false // stored into a field/index: ownership transferred at birth
			}
			var v *types.Var
			if stmt.Tok == token.DEFINE {
				v, _ = info.Defs[id].(*types.Var)
			} else {
				v, _ = info.Uses[id].(*types.Var)
			}
			sites = append(sites, site{call, v}) // v==nil covers `_ =`
			return false
		case *ast.ExprStmt:
			call := chainRoot(info, stmt.X)
			if call != nil && !containsEndCall(stmt.X) {
				sites = append(sites, site{call, nil})
			}
			return false
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	g := cfg.New(fd.Body)
	for _, s := range sites {
		if s.v == nil {
			pass.Reportf(s.call.Pos(), "span begun and discarded: nothing can End it, its phase never reaches the table (bind the span and End it, obs drift-free tiling)")
			continue
		}
		start, ok := pairing.Find(g, s.call)
		if !ok {
			continue // dead code
		}
		if pairing.EscapesToExit(g, start, classifier(info, s.v)) {
			pass.Reportf(s.call.Pos(), "span %s can reach return without End on some path: its phase never reaches the table (End every span, obs drift-free tiling)", s.v.Name())
		}
	}
}

// chainRoot unwraps a method chain `root(...).Tag(...).Attr(...)` and
// returns the innermost span-begin call, or nil if the expression is
// not rooted at one.
func chainRoot(info *types.Info, e ast.Expr) *ast.CallExpr {
	for {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil
		}
		if spanBegin(info, call) {
			return call
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		e = sel.X
	}
}

// classifier builds the per-node Class function for span variable v:
// End-on-v (anywhere in a fluent chain rooted at v, as in
// `sp.AttrInt(...).End(t)`) or any non-receiver use of v (transfer)
// kills the path; pure chaining (Tag, Attr, Child) is transparent.
func classifier(info *types.Info, v *types.Var) func(ast.Node) pairing.Class {
	return func(n ast.Node) pairing.Class {
		recvUse := map[*ast.Ident]bool{}  // ident appears as a chain root
		chainEnd := map[*ast.Ident]bool{} // ...and the chain includes End
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Unwrap the method chain below this call; if it roots at
			// an ident of v, record every method name along the way.
			hasEnd := false
			for {
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if sel.Sel.Name == "End" {
					hasEnd = true
				}
				base := ast.Unparen(sel.X)
				if id, ok := base.(*ast.Ident); ok {
					if info.Uses[id] == v {
						recvUse[id] = true
						chainEnd[id] = chainEnd[id] || hasEnd
					}
					return true
				}
				inner, ok := base.(*ast.CallExpr)
				if !ok {
					return true
				}
				call = inner
			}
		})
		killed := false
		ast.Inspect(n, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok || info.Uses[id] != v {
				return true
			}
			if recvUse[id] {
				if chainEnd[id] {
					killed = true
				}
				return true
			}
			killed = true // returned, passed, stored, aliased, or captured
			return true
		})
		if killed {
			return pairing.ClassKill
		}
		return pairing.ClassNone
	}
}
