// Package spanpair's testdata mirrors the obs tracing API by shape:
// Tracer.StartSpan and Span.Child begin spans, Span.End closes them,
// and Tag/Attr return the span for fluent chaining.
package spanpair

// Tracer mimics obs.Tracer.
type Tracer struct{}

func (t *Tracer) StartSpan(track, name string, now int64) *Span { return nil }

// Span mimics obs.Span.
type Span struct{}

func (s *Span) Child(name string, now int64) *Span { return nil }
func (s *Span) Tag(k, v string) *Span              { return nil }
func (s *Span) Attr(k, v string) *Span             { return nil }
func (s *Span) End(now int64)                      {}

type sink struct{ root *Span }

func cond() bool    { return false }
func work() error   { return nil }
func emit(sp *Span) {}
func now() int64    { return 0 }

// GoodLinear begins, works, ends.
func GoodLinear(tr *Tracer) {
	sp := tr.StartSpan("t", "phase", now())
	work()
	sp.End(now())
}

// GoodChainedBegin tolerates fluent Tag/Attr chaining on both the
// begin expression and later receiver-position uses.
func GoodChainedBegin(tr *Tracer) {
	sp := tr.StartSpan("t", "phase", now()).Tag("k", "v").Attr("a", "b")
	sp.Tag("more", "tags")
	sp.End(now())
}

// GoodDeferEnd pairs every downstream return through the defer.
func GoodDeferEnd(tr *Tracer) error {
	sp := tr.StartSpan("t", "phase", now())
	defer sp.End(now())
	if err := work(); err != nil {
		return err
	}
	return nil
}

// GoodErrorPathsEnd ends the span explicitly before each return.
func GoodErrorPathsEnd(tr *Tracer) error {
	sp := tr.StartSpan("t", "phase", now())
	if err := work(); err != nil {
		sp.End(now())
		return err
	}
	sp.End(now())
	return nil
}

// GoodChainedEnd ends through a fluent chain: the End receiver is the
// chain result, not the variable, and must still count.
func GoodChainedEnd(tr *Tracer) {
	sp := tr.StartSpan("t", "analysis", now())
	work()
	sp.Attr("nodes", "12").End(now())
}

// GoodInlinePair chains End directly onto the begin.
func GoodInlinePair(tr *Tracer) {
	tr.StartSpan("t", "blip", now()).End(now())
}

// GoodTransferReturn hands the span to the caller, which owns End.
func GoodTransferReturn(tr *Tracer) *Span {
	sp := tr.StartSpan("t", "phase", now())
	return sp
}

// GoodTransferClosure captures the span in a returned closure that
// ends it: ownership moves into the function literal.
func GoodTransferClosure(tr *Tracer) func() {
	sp := tr.StartSpan("t", "stage", now())
	return func() { sp.End(now()) }
}

// GoodTransferStore parks the span in a longer-lived structure; the
// holder owns End.
func GoodTransferStore(tr *Tracer, s *sink) {
	sp := tr.StartSpan("t", "phase", now())
	s.root = sp
}

// GoodTransferArg passes the span on; the callee owns End.
func GoodTransferArg(tr *Tracer) {
	sp := tr.StartSpan("t", "phase", now())
	emit(sp)
}

// BadNeverEnded begins a span and falls off the end of the function.
func BadNeverEnded(tr *Tracer) {
	sp := tr.StartSpan("t", "phase", now()) // want `span sp can reach return without End`
	work()
	sp.Tag("used", "but-never-ended")
}

// BadErrorPathLeaks ends only the success path: the early return
// leaks the span, exactly the offline-phase bug shape.
func BadErrorPathLeaks(tr *Tracer) error {
	sp := tr.StartSpan("t", "offline_phase", now()).Tag("k", "v") // want `span sp can reach return without End`
	if err := work(); err != nil {
		return err
	}
	sp.End(now())
	return nil
}

// BadChildLeaks pairs the root but leaks the child on the error path.
func BadChildLeaks(tr *Tracer) error {
	root := tr.StartSpan("t", "phase", now())
	defer root.End(now())
	child := root.Child("analysis", now()) // want `span child can reach return without End`
	if err := work(); err != nil {
		return err
	}
	child.End(now())
	return nil
}

// BadDiscarded throws the span away at birth.
func BadDiscarded(tr *Tracer) {
	tr.StartSpan("t", "phase", now()) // want `span begun and discarded`
}

// AllowedSentinel demonstrates the escape hatch for a span deliberately
// left open as a liveness sentinel that an external reaper closes.
func AllowedSentinel(tr *Tracer) {
	sp := tr.StartSpan("t", "sentinel", now()) //medusalint:allow spanpair(sentinel span is closed by the reaper goroutine at shutdown)
	work()
	sp.Tag("liveness", "sentinel")
}
