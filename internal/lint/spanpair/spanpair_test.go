package spanpair_test

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/lint/analysistest"
	"github.com/medusa-repro/medusa/internal/lint/spanpair"
)

func TestSpanPair(t *testing.T) {
	analysistest.Run(t, spanpair.Analyzer, "spanpair")
}
