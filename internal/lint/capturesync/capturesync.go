// Package capturesync defines a medusalint analyzer that turns the
// runtime CaptureInvalidatedError contract (internal/cuda/errors.go)
// into a compile-time check. Per Medusa §2.3, synchronization and lazy
// module loading are prohibited while a stream capture is active: real
// CUDA invalidates the capture, and the simulator faithfully returns
// CaptureInvalidatedError. That is a runtime tripwire — it only fires
// on the path that actually executes. This analyzer flags the hazard
// statically.
//
// Within each function that calls BeginCapture, every call lexically
// between BeginCapture and the matching EndCapture is checked: calls
// whose callee is a synchronization or module-loading operation
// (Synchronize, DeviceSynchronize, StreamSynchronize,
// EventSynchronize, LoadModule, ModuleLoad, ensureModuleLoaded), or a
// same-package function that transitively reaches one, are reported.
// The package-local call graph provides the transitive step;
// cross-package helpers are matched by callee name only — the
// deliberate limitation that keeps the pass modular (the runtime check
// remains the backstop, exactly as §2.3's warm-up-before-capture
// discipline requires).
package capturesync

import (
	"go/ast"
	"go/types"
	"sort"

	"github.com/medusa-repro/medusa/internal/lint/analysis"
	"github.com/medusa-repro/medusa/internal/lint/lintutil"
)

// Analyzer is the capturesync pass.
var Analyzer = &analysis.Analyzer{
	Name: "capturesync",
	Doc:  "forbid synchronization and module loading between BeginCapture and EndCapture",
	Run:  run,
}

// syncNames are the operations prohibited during stream capture.
var syncNames = map[string]bool{
	"Synchronize":        true,
	"DeviceSynchronize":  true,
	"StreamSynchronize":  true,
	"EventSynchronize":   true,
	"LoadModule":         true,
	"ModuleLoad":         true,
	"ensureModuleLoaded": true,
}

const (
	beginName = "BeginCapture"
	endName   = "EndCapture"
)

func run(pass *analysis.Pass) (any, error) {
	// Fixpoint taint over the package-local call graph: a local
	// function is tainted if it directly performs a prohibited
	// operation or calls a tainted local function.
	graph := lintutil.LocalCallGraph(pass.Pkg, pass.TypesInfo, pass.Files)
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn := lintutil.FuncObj(pass.TypesInfo, fd); fn != nil {
					decls[fn] = fd
				}
			}
		}
	}
	tainted := make(map[*types.Func]string) // local func -> prohibited op it reaches
	for fn, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := lintutil.Callee(pass.TypesInfo, call); callee != nil && syncNames[callee.Name()] {
				tainted[fn] = callee.Name()
				return false
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn := range decls {
			if _, done := tainted[fn]; done {
				continue
			}
			for _, callee := range graph[fn] {
				if op, ok := tainted[callee]; ok {
					tainted[fn] = op
					changed = true
					break
				}
			}
		}
	}

	for _, fd := range decls {
		checkFunc(pass, fd, tainted)
	}
	return nil, nil
}

// marker is one BeginCapture/EndCapture call site.
type marker struct {
	pos   int // byte offset, for lexical ordering
	begin bool
}

// checkFunc scans one function: if it opens a capture, every call in
// the lexical capture region is checked against the taint set.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, tainted map[*types.Func]string) {
	if lintutil.IsTestFile(pass.Fset, fd.Pos()) {
		return
	}
	var markers []marker
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := lintutil.Callee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		switch callee.Name() {
		case beginName:
			markers = append(markers, marker{int(call.Pos()), true})
		case endName:
			markers = append(markers, marker{int(call.Pos()), false})
		}
		return true
	})
	if len(markers) == 0 {
		return
	}
	sort.Slice(markers, func(i, j int) bool { return markers[i].pos < markers[j].pos })

	inCapture := func(pos int) bool {
		state := false
		for _, m := range markers {
			if m.pos >= pos {
				break
			}
			state = m.begin
		}
		return state
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := lintutil.Callee(pass.TypesInfo, call)
		if callee == nil || callee.Name() == beginName || callee.Name() == endName {
			return true
		}
		if !inCapture(int(call.Pos())) {
			return true
		}
		if syncNames[callee.Name()] {
			pass.Reportf(call.Pos(), "%s during stream capture: synchronization and module loading invalidate the capture (CaptureInvalidatedError, Medusa §2.3); warm up before BeginCapture", callee.Name())
		} else if op, ok := tainted[callee]; ok && callee.Pkg() == pass.Pkg {
			pass.Reportf(call.Pos(), "%s reaches %s during stream capture: synchronization and module loading invalidate the capture (CaptureInvalidatedError, Medusa §2.3); warm up before BeginCapture", callee.Name(), op)
		}
		return true
	})
}
