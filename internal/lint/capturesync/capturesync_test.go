package capturesync_test

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/lint/analysistest"
	"github.com/medusa-repro/medusa/internal/lint/capturesync"
)

func TestCaptureSync(t *testing.T) {
	analysistest.Run(t, capturesync.Analyzer, "capturesync")
}
