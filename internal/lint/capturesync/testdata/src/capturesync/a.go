// Package capturesync's testdata mirrors the internal/cuda capture API
// by name: Stream.BeginCapture/EndCapture bracket a capture, and
// synchronization or module loading inside the bracket invalidates it.
package capturesync

// Stream mimics cuda.Stream.
type Stream struct{}

func (s *Stream) BeginCapture() error { return nil }
func (s *Stream) EndCapture() error   { return nil }
func (s *Stream) Synchronize() error  { return nil }
func (s *Stream) Launch(name string)  {}

// Process mimics cuda.Process.
type Process struct{}

func (p *Process) DeviceSynchronize() error { return nil }
func (p *Process) LoadModule(name string)   {}

// BadDirect synchronizes and lazily loads mid-capture: both calls
// would return CaptureInvalidatedError at runtime.
func BadDirect(s *Stream, p *Process) error {
	if err := s.BeginCapture(); err != nil {
		return err
	}
	s.Launch("gemm_f16")
	if err := s.Synchronize(); err != nil { // want `Synchronize during stream capture`
		return err
	}
	p.LoadModule("libattn") // want `LoadModule during stream capture`
	return s.EndCapture()
}

// BadTransitive reaches synchronization through a same-package helper:
// the package-local call graph closes the gap.
func BadTransitive(s *Stream, p *Process) error {
	if err := s.BeginCapture(); err != nil {
		return err
	}
	drain(p) // want `drain reaches DeviceSynchronize during stream capture`
	return s.EndCapture()
}

func drain(p *Process) { _ = p.DeviceSynchronize() }

// Good is the §2.3 discipline: warm up (loading modules, draining the
// stream) strictly before BeginCapture, sync again only after
// EndCapture.
func Good(s *Stream, p *Process) error {
	p.LoadModule("libgemm")
	if err := s.Synchronize(); err != nil {
		return err
	}
	if err := s.BeginCapture(); err != nil {
		return err
	}
	s.Launch("gemm_f16")
	if err := s.EndCapture(); err != nil {
		return err
	}
	return p.DeviceSynchronize()
}

// AllowedProbe demonstrates the escape hatch for code that tests the
// invalidation contract itself.
func AllowedProbe(s *Stream) error {
	if err := s.BeginCapture(); err != nil {
		return err
	}
	_ = s.Synchronize() //medusalint:allow capturesync(deliberately invalidates the capture to exercise the error path)
	return s.EndCapture()
}
