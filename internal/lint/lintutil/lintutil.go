// Package lintutil holds the small AST/type helpers shared by the
// medusalint analyzers.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// IsTestFile reports whether the file containing pos is a _test.go
// file. The determinism invariants bind the simulator, not its tests:
// tests measure real elapsed time and build throwaway RNGs freely.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Callee resolves the static *types.Func a call expression invokes, or
// nil for dynamic calls (function values, interface methods resolve to
// the interface method object, which is still returned).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// FuncObj returns the *types.Func declared by a FuncDecl.
func FuncObj(info *types.Info, decl *ast.FuncDecl) *types.Func {
	fn, _ := info.Defs[decl.Name].(*types.Func)
	return fn
}

// LocalCallGraph builds the static, package-local call graph: for each
// function or method declared in the package, the set of
// same-package functions it calls directly. Dynamic calls through
// function values are invisible, which keeps the analyzers
// conservative-by-name rather than conservative-by-supergraph.
func LocalCallGraph(pkg *types.Package, info *types.Info, files []*ast.File) map[*types.Func][]*types.Func {
	graph := make(map[*types.Func][]*types.Func)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller := FuncObj(info, fd)
			if caller == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := Callee(info, call); callee != nil && callee.Pkg() == pkg {
					graph[caller] = append(graph[caller], callee)
				}
				return true
			})
		}
	}
	return graph
}

// Reachable computes the set of functions reachable from roots in the
// package-local call graph, including the roots themselves.
func Reachable(graph map[*types.Func][]*types.Func, roots []*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	stack := append([]*types.Func(nil), roots...)
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		stack = append(stack, graph[fn]...)
	}
	return seen
}
