package maporder_test

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/lint/analysistest"
	"github.com/medusa-repro/medusa/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "maporder")
}
