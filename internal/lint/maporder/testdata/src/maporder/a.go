package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// EncodeState is an entry point (Encode prefix) ranging a map straight
// into its output: the canonical violation.
func EncodeState(m map[string]int) string {
	var b strings.Builder
	for k, v := range m { // want `range over map in serialization entry point EncodeState`
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	return b.String()
}

// WriteSummary leaks map order through a helper: the call graph makes
// emit reachable from a serialization entry point.
func WriteSummary(m map[string]int) string { return emit(m) }

func emit(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `range over map in emit, reachable from serialization entry point WriteSummary`
		b.WriteString(k)
	}
	return b.String()
}

// HashSorted is the sanctioned idiom: collect keys, sort, then emit.
func HashSorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// ExportTotal sums integers: addition on integers commutes exactly, so
// iteration order cannot reach the output.
func ExportTotal(m map[string]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

// ExportMean sums floats: float addition is not associative, so random
// iteration order produces run-to-run ULP drift — flagged.
func ExportMean(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `range over map in serialization entry point ExportMean`
		total += v
	}
	return total / float64(len(m))
}

// pickBest is not reachable from any serialization entry point, so its
// order-dependent-looking loop is out of scope.
func pickBest(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// DumpAllowed demonstrates the escape hatch: the mixing assignment is
// order-dependent in general, but this output feeds a debug log that is
// never hashed or diffed.
func DumpAllowed(m map[string]bool) int {
	seen := 1
	for k := range m { //medusalint:allow maporder(debug-only dump, output is never hashed or diffed)
		seen = seen*31 + len(k)
	}
	return seen
}
