// Package maporder defines a medusalint analyzer that guards the
// "bit-identical artifacts" guarantee: inside any function reachable
// from a serialization or export entry point, ranging over a map with
// order-dependent effects is forbidden, because Go randomizes map
// iteration order per run. This is exactly the hazard class that would
// let two offline passes at different worker counts produce artifacts
// that hash differently (PR 1's core invariant) or let a Chrome trace
// export reorder between runs.
//
// Entry points are identified by name: functions matching
// (?i)^(encode|marshal|write|export|hash|fingerprint|digest|render|
// table|dump|chrome|append) — the wire.go encoders, the obs exporters,
// the phase tables, artifact hashing. Reachability is computed over the
// package-local static call graph.
//
// Two loop shapes are recognized as order-insensitive and exempted:
//
//   - collect-then-sort: every statement appends to a slice
//     (for k := range m { keys = append(keys, k) } … sort.Strings(keys));
//   - commutative integer accumulation: += / |= / ^= / &= or ++/--
//     on integer-kinded values (sums of time.Duration, counters).
//
// Floating-point accumulation is deliberately NOT exempt: float
// addition is not associative, so summing map values in random order
// produces run-to-run ULP drift that CRCs and golden files catch.
// Anything else needs an explicit sort or a justified
// //medusalint:allow maporder(...) directive.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"github.com/medusa-repro/medusa/internal/lint/analysis"
	"github.com/medusa-repro/medusa/internal/lint/lintutil"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "forbid order-dependent map iteration in functions reachable from serialization entry points",
	Run:  run,
}

// EntryPattern matches the names of serialization/export entry points.
// It is a package variable so the driver could expose a flag for it.
var EntryPattern = regexp.MustCompile(`(?i)^(encode|marshal|write|export|hash|fingerprint|digest|render|table|dump|chrome|append)`)

func run(pass *analysis.Pass) (any, error) {
	// Map declared functions to their bodies and find the entry roots.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*types.Func
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := lintutil.FuncObj(pass.TypesInfo, fd)
			if fn == nil {
				continue
			}
			decls[fn] = fd
			if EntryPattern.MatchString(fd.Name.Name) {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}

	// BFS over the package-local call graph, remembering which entry
	// point first reached each function (for the diagnostic).
	graph := lintutil.LocalCallGraph(pass.Pkg, pass.TypesInfo, pass.Files)
	origin := make(map[*types.Func]*types.Func, len(roots))
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		origin[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range graph[fn] {
			if _, seen := origin[callee]; !seen {
				origin[callee] = origin[fn]
				queue = append(queue, callee)
			}
		}
	}

	for fn, root := range origin {
		fd, ok := decls[fn]
		if !ok {
			continue
		}
		rootName := root.Name()
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass.TypesInfo, rs.Body) {
				return true
			}
			if fn == root {
				pass.Reportf(rs.Pos(), "range over map in serialization entry point %s: iteration order is randomized and leaks into the output; collect keys and sort first", rootName)
			} else {
				pass.Reportf(rs.Pos(), "range over map in %s, reachable from serialization entry point %s: iteration order is randomized and leaks into the output; collect keys and sort first", fn.Name(), rootName)
			}
			return true
		})
	}
	return nil, nil
}

// orderInsensitive reports whether every statement in a range body is a
// shape whose cumulative effect cannot depend on iteration order.
func orderInsensitive(info *types.Info, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if !appendAssign(info, s) && !integerAccum(info, s) {
				return false
			}
		case *ast.IncDecStmt:
			if !isIntegerKind(info.TypeOf(s.X)) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// appendAssign matches `xs = append(xs, …)` — the collect-then-sort
// idiom's first half.
func appendAssign(info *types.Info, s *ast.AssignStmt) bool {
	if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// integerAccum matches commutative compound assignment on integers:
// += |= ^= &= (float += is order-sensitive and stays flagged).
func integerAccum(info *types.Info, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_ASSIGN:
	default:
		return false
	}
	return len(s.Lhs) == 1 && isIntegerKind(info.TypeOf(s.Lhs[0]))
}

func isIntegerKind(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
