// Package epochguard defines the flow-aware medusalint analyzer for
// the pooled-state invalidation discipline: event handlers that pop an
// event carrying a pointer into free-listed state (instState, and any
// future pooled struct with an epoch field) must compare the state's
// epoch against the event's epoch before mutating it. A stale event —
// one enqueued against a prior occupancy of the recycled slot — would
// otherwise corrupt whatever request or instance now owns the slot.
// The runtime counterpart is the stale-event property test over
// epoch-bumped recycling; this is its static mirror.
//
// Shape matching is structural, not name-based: an event type is any
// struct with an `epoch` field plus at least one field whose type is a
// pointer to a struct that also has an `epoch` field (the pooled
// payload). reqState carries no epoch, so `ev.req` is naturally
// exempt. For each (event variable, pooled field) pair the analyzer
// tracks the selector `ev.f` and simple aliases `x := ev.f`, then asks
// the path-sensitive query: is any MUTATION of the pooled state (an
// assignment or ++/-- through the selector or an alias) reachable from
// function entry on some path that has not passed an epoch GUARD (a
// == or != comparison between the group's .epoch and the event's
// .epoch)? Guards kill the path regardless of comparison direction —
// the invariant is "a comparison dominates the mutation", branch
// polarity is the handler's business.
//
// Reads are deliberately not flagged (logging a stale event's payload
// is harmless); mutations through function calls are outside the
// intraprocedural pass and covered by the runtime tests.
package epochguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/medusa-repro/medusa/internal/lint/analysis"
	"github.com/medusa-repro/medusa/internal/lint/analysis/cfg"
	"github.com/medusa-repro/medusa/internal/lint/analysis/pairing"
	"github.com/medusa-repro/medusa/internal/lint/lintutil"
)

// Analyzer is the epochguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "epochguard",
	Doc:  "compare epochs before mutating pooled state reached through an event",
	Run:  run,
}

// structOf unwraps pointers and named types to a struct, or nil.
func structOf(t types.Type) *types.Struct {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	s, _ := t.Underlying().(*types.Struct)
	return s
}

// hasEpochField reports whether the struct has a field named epoch
// (any integer-ish type will do; the name is the contract).
func hasEpochField(s *types.Struct) bool {
	if s == nil {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		if s.Field(i).Name() == "epoch" {
			return true
		}
	}
	return false
}

// pooledFields returns the names of t's fields that point to structs
// carrying their own epoch — the free-listed payloads. Empty when t is
// not an event type (no epoch of its own, or no pooled payloads).
func pooledFields(t types.Type) []string {
	s := structOf(t)
	if !hasEpochField(s) {
		return nil
	}
	var fields []string
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if f.Name() == "epoch" {
			continue
		}
		if p, ok := f.Type().Underlying().(*types.Pointer); ok && hasEpochField(structOf(p.Elem())) {
			fields = append(fields, f.Name())
		}
	}
	return fields
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || lintutil.IsTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// varObj resolves an identifier to its *types.Var, through either a
// use or a definition.
func varObj(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Defs[id].(*types.Var)
	return v
}

// group is one (event variable, pooled field) tracking unit.
type group struct {
	ev      *types.Var
	field   string
	aliases map[*types.Var]bool
}

// selectsPooled reports whether e is the selector `ev.field` for g.
func (g *group) selectsPooled(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != g.field {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && varObj(info, id) == g.ev
}

// rootsInGroup reports whether expression e dereferences the pooled
// state: its base is an alias variable or the `ev.field` selector.
func (g *group) rootsInGroup(info *types.Info, e ast.Expr) bool {
	for {
		e = ast.Unparen(e)
		if g.selectsPooled(info, e) {
			return true
		}
		switch x := e.(type) {
		case *ast.Ident:
			return g.aliases[varObj(info, x)]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// epochOfGroup reports whether e is `A.epoch` with A in the group.
func (g *group) epochOfGroup(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "epoch" && g.rootsInGroup(info, sel.X)
}

// epochOfEvent reports whether e is `ev.epoch`.
func (g *group) epochOfEvent(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "epoch" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && varObj(info, id) == g.ev
}

// guardIn reports whether node n contains an epoch comparison between
// the event and the pooled group, in either operand order.
func (g *group) guardIn(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		be, ok := m.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if (g.epochOfEvent(info, be.X) && g.epochOfGroup(info, be.Y)) ||
			(g.epochOfEvent(info, be.Y) && g.epochOfGroup(info, be.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// mutationIn returns the position of a mutation of the pooled state in
// node n, or token.NoPos: an assignment or ++/-- whose left-hand side
// dereferences the group (not a rebinding of the bare alias itself).
func (g *group) mutationIn(info *types.Info, n ast.Node) token.Pos {
	switch stmt := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range stmt.Lhs {
			if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
				continue // rebinding the alias variable, not the pooled state
			}
			if g.rootsInGroup(info, lhs) {
				return lhs.Pos()
			}
		}
	case *ast.IncDecStmt:
		if g.rootsInGroup(info, stmt.X) {
			return stmt.X.Pos()
		}
	}
	return token.NoPos
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Discover event variables and their pooled fields.
	groups := map[*types.Var][]*group{} // event var -> one group per pooled field
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := varObj(info, id)
		if v == nil {
			return true
		}
		if _, seen := groups[v]; seen {
			return true
		}
		fields := pooledFields(v.Type())
		if len(fields) == 0 {
			return true
		}
		gs := make([]*group, 0, len(fields))
		for _, f := range fields {
			gs = append(gs, &group{ev: v, field: f, aliases: map[*types.Var]bool{}})
		}
		groups[v] = gs
		return true
	})
	if len(groups) == 0 {
		return
	}

	// Collect simple aliases: x := ev.f (or x = ev.f).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		stmt, ok := n.(*ast.AssignStmt)
		if !ok || len(stmt.Lhs) != len(stmt.Rhs) {
			return true
		}
		for i, rhs := range stmt.Rhs {
			id, ok := ast.Unparen(stmt.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			v := varObj(info, id)
			if v == nil {
				continue
			}
			for _, gs := range groups {
				for _, g := range gs {
					if g.selectsPooled(info, rhs) {
						g.aliases[v] = true
					}
				}
			}
		}
		return true
	})

	var g *cfg.Graph // built lazily: most functions with event vars never mutate
	for _, gs := range groups {
		for _, grp := range gs {
			grp := grp
			classify := func(n ast.Node) pairing.Class {
				if grp.guardIn(info, n) {
					return pairing.ClassKill
				}
				if grp.mutationIn(info, n) != token.NoPos {
					return pairing.ClassUse
				}
				return pairing.ClassNone
			}
			// Cheap pre-scan: skip the CFG when nothing mutates.
			mutates := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if grp.mutationIn(info, n) != token.NoPos {
					mutates = true
				}
				return !mutates
			})
			if !mutates {
				continue
			}
			if g == nil {
				g = cfg.New(fd.Body)
			}
			for _, use := range pairing.Unkilled(g, pairing.Entry(g), classify) {
				pass.Reportf(grp.mutationIn(info, use), "mutation of pooled state %s.%s without an epoch guard on some path: a stale event may touch recycled state (compare .epoch against %s.epoch first, pooled-state invalidation)", grp.ev.Name(), grp.field, grp.ev.Name())
			}
		}
	}
}
