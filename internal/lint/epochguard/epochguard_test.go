package epochguard_test

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/lint/analysistest"
	"github.com/medusa-repro/medusa/internal/lint/epochguard"
)

func TestEpochGuard(t *testing.T) {
	analysistest.Run(t, epochguard.Analyzer, "epochguard")
}
