// Package epochguard's testdata mirrors the simulator core's pooled
// event shape: event carries an epoch plus pointers into free-listed
// state (instState has its own epoch; reqState does not, so it is not
// a pooled payload and needs no guard).
package epochguard

// instState mimics the free-listed instance state: recycled slots bump
// epoch so stale events can be detected.
type instState struct {
	epoch   uint64
	idle    bool
	pending int
}

// reqState mimics request state: free-listed but not epoch-stamped
// (requests never outlive their events in the testdata world).
type reqState struct {
	tokens int
}

// event mimics the simulator event record.
type event struct {
	kind  int
	epoch uint64
	inst  *instState
	req   *reqState
}

type sim struct {
	queue []event
}

func (s *sim) pop() event { return s.queue[0] }
func observe(x any)       {}

// GoodGuardedAlias is the canonical handler shape: alias, guard,
// mutate.
func (s *sim) GoodGuardedAlias() {
	ev := s.pop()
	inst := ev.inst
	if inst.epoch != ev.epoch {
		return
	}
	inst.idle = true
	inst.pending--
}

// GoodGuardedSelector guards and mutates through the selector without
// an alias.
func (s *sim) GoodGuardedSelector() {
	ev := s.pop()
	if ev.inst.epoch != ev.epoch {
		return
	}
	ev.inst.pending++
}

// GoodGuardBothArms guards on every path to the mutation.
func (s *sim) GoodGuardBothArms(fast bool) {
	ev := s.pop()
	inst := ev.inst
	if fast {
		if inst.epoch != ev.epoch {
			return
		}
	} else {
		if ev.epoch != inst.epoch {
			return
		}
	}
	inst.idle = false
}

// GoodReadOnly only reads the pooled state: logging a stale payload is
// harmless, no guard required.
func (s *sim) GoodReadOnly() {
	ev := s.pop()
	observe(ev.inst.pending)
}

// GoodReqNoEpoch mutates reqState, which carries no epoch: not a
// pooled payload, nothing to guard.
func (s *sim) GoodReqNoEpoch() {
	ev := s.pop()
	ev.req.tokens++
}

// BadUnguardedAlias mutates recycled state with no comparison at all.
func (s *sim) BadUnguardedAlias() {
	ev := s.pop()
	inst := ev.inst
	inst.idle = true // want `mutation of pooled state ev.inst without an epoch guard`
}

// BadMutateBeforeGuard guards too late: the first mutation already
// landed on a possibly-recycled slot.
func (s *sim) BadMutateBeforeGuard() {
	ev := s.pop()
	inst := ev.inst
	inst.pending-- // want `mutation of pooled state ev.inst without an epoch guard`
	if inst.epoch != ev.epoch {
		return
	}
	inst.idle = true
}

// BadGuardOneArmOnly guards only the fast path; the slow path reaches
// the mutation unguarded.
func (s *sim) BadGuardOneArmOnly(fast bool) {
	ev := s.pop()
	inst := ev.inst
	if fast {
		if inst.epoch != ev.epoch {
			return
		}
	}
	inst.idle = false // want `mutation of pooled state ev.inst without an epoch guard`
}

// BadSelectorUnguarded mutates through the selector with no guard.
func (s *sim) BadSelectorUnguarded() {
	ev := s.pop()
	ev.inst.pending++ // want `mutation of pooled state ev.inst without an epoch guard`
}

// AllowedCreationSite demonstrates the escape hatch: the handler that
// just installed the instance into the slot knows the event cannot be
// stale.
func (s *sim) AllowedCreationSite() {
	ev := s.pop()
	ev.inst.epoch = ev.epoch //medusalint:allow epochguard(creation handler: the event was enqueued in the same step that installed this instance, staleness is impossible)
}
