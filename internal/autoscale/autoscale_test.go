package autoscale

import (
	"math"
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/metrics"
)

// TestReactiveMatchesLegacyFormula pins the baseline to the exact
// formula the simulator used before policies were pluggable: scaling
// with a reactive policy must stay byte-identical to the legacy
// autoscaler, and that starts with these integers.
func TestReactiveMatchesLegacyFormula(t *testing.T) {
	p := NewReactive()
	cases := []struct {
		outstanding, target, want int
	}{
		{0, 4, 0},
		{1, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{8, 4, 2},
		{9, 4, 3},
		{1, 1, 1},
		{7, 1, 7},
		{3, 0, 3}, // degenerate target guards to 1
	}
	for _, tc := range cases {
		o := Observation{Outstanding: tc.outstanding, InstanceTarget: tc.target}
		if got := p.Desired(0, o); got != tc.want {
			t.Errorf("Desired(outstanding=%d target=%d) = %d, want %d",
				tc.outstanding, tc.target, got, tc.want)
		}
	}
}

// TestPredictiveNeverBelowReactive: whatever the forecast, the
// predictive policy must cover the current backlog at least as well as
// the baseline.
func TestPredictiveNeverBelowReactive(t *testing.T) {
	p, err := NewPredictive(PredictiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewReactive()
	o := Observation{Now: time.Second, Outstanding: 9, InstanceTarget: 4, ProvisionLatency: 2 * time.Second}
	if got, base := p.Desired(0, o), r.Desired(0, o); got < base {
		t.Fatalf("predictive %d below reactive %d with no history", got, base)
	}
	// A deployment never observed forecasts nothing: exactly the baseline.
	if got, base := p.Desired(3, o), r.Desired(3, o); got != base {
		t.Fatalf("unobserved deployment: predictive %d, want reactive %d", got, base)
	}
}

// rampArrivals feeds an accelerating stream whose per-window rates are
// exactly linear — window k of width 1s carries 2+4k arrivals — into
// fn for each arrival instant. Holt tracks a linear series exactly, so
// the forecast growth is closed-form.
func rampArrivals(windows int, fn func(t time.Duration)) {
	for k := 0; k < windows; k++ {
		for j := 0; j < 2+4*k; j++ {
			fn(time.Duration(k)*time.Second + time.Duration(j)*time.Millisecond)
		}
	}
}

// TestPredictiveScalesAheadOfRamp: on an accelerating arrival stream
// the policy must provision above the reactive baseline by exactly the
// forecast rate growth over the lead time, divided by the absorption
// target — the formula mirrored here through an identically-fed
// RateWindow so float rounding cannot drift the expectation.
func TestPredictiveScalesAheadOfRamp(t *testing.T) {
	p, err := NewPredictive(PredictiveConfig{Window: time.Second, MaxStep: 100})
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := metrics.NewRateWindow(time.Second, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rampArrivals(10, func(at time.Duration) {
		p.ObserveArrival(0, at)
		mirror.Observe(at)
	})
	o := Observation{
		Now:              10 * time.Second,
		Outstanding:      2,
		InstanceTarget:   4,
		ProvisionLatency: 3 * time.Second,
	}
	base := reactiveDesired(o) // 1
	got := p.Desired(0, o)
	if got <= base {
		t.Fatalf("predictive %d did not scale ahead of the ramp (reactive %d)", got, base)
	}
	growth := mirror.ForecastAt(o.Now, o.ProvisionLatency) - mirror.RateAt(o.Now)
	want := base + int(math.Ceil(growth*o.ProvisionLatency.Seconds()/4))
	// Rates 2,6,…,38 give trend 4/s per 1s window: growth over a 3s
	// lead ≈ 12/s, 36 extra arrivals, 9 instances at target 4.
	if want != base+9 {
		t.Fatalf("mirror computed %d, closed form says %d", want, base+9)
	}
	if got != want {
		t.Fatalf("predictive desired = %d, want %d", got, want)
	}
}

// TestPredictiveStepCap: the default config rate-limits scale-ahead to
// MaxStep instances above the baseline per decision, however steep the
// ramp — one deployment's burst onset must not hoard the fleet's GPUs.
func TestPredictiveStepCap(t *testing.T) {
	p, err := NewPredictive(PredictiveConfig{Window: time.Second}) // MaxStep defaults to 2
	if err != nil {
		t.Fatal(err)
	}
	rampArrivals(10, func(at time.Duration) { p.ObserveArrival(0, at) })
	o := Observation{
		Now:              10 * time.Second,
		Outstanding:      2,
		InstanceTarget:   4,
		ProvisionLatency: 3 * time.Second,
	}
	if got, want := p.Desired(0, o), reactiveDesired(o)+2; got != want {
		t.Fatalf("capped desired = %d, want %d", got, want)
	}
}

// TestPredictiveSteadyStateMatchesReactive: a flat arrival rate has no
// growth to provision for — the reactive feedback loop already sizes
// steady traffic, and charging the absolute rate against the
// outstanding-count target would hoard capacity.
func TestPredictiveSteadyStateMatchesReactive(t *testing.T) {
	p, err := NewPredictive(PredictiveConfig{Window: time.Second, MaxStep: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p.ObserveArrival(0, time.Duration(i)*100*time.Millisecond) // 10/s for 20s
	}
	o := Observation{
		Now:              20 * time.Second,
		Outstanding:      6,
		InstanceTarget:   4,
		ProvisionLatency: 4 * time.Second,
	}
	if got, want := p.Desired(0, o), reactiveDesired(o); got != want {
		t.Fatalf("steady-state desired = %d, want reactive %d", got, want)
	}
}

// TestPredictiveDrainsWhenQuiet: with no backlog and a decayed
// forecast, the policy must return to zero so idle instances retire.
func TestPredictiveDrainsWhenQuiet(t *testing.T) {
	p, err := NewPredictive(PredictiveConfig{Window: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p.ObserveArrival(0, time.Duration(i)*100*time.Millisecond) // 10/s for 5s
	}
	o := Observation{
		Now:              5 * time.Minute, // long silence
		Outstanding:      0,
		InstanceTarget:   4,
		ProvisionLatency: 4 * time.Second,
	}
	if got := p.Desired(0, o); got != 0 {
		t.Fatalf("quiet deployment still wants %d instances", got)
	}
}

// TestPredictiveDeterministic: identical observation sequences must
// produce identical decisions.
func TestPredictiveDeterministic(t *testing.T) {
	mk := func() []int {
		p, err := NewPredictive(PredictiveConfig{Window: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for i := 0; i < 100; i++ {
			at := time.Duration(i) * 137 * time.Millisecond
			p.ObserveArrival(i%3, at)
			out = append(out, p.Desired(i%3, Observation{
				Now: at, Outstanding: i % 7, InstanceTarget: 4,
				ProvisionLatency: 3 * time.Second,
			}))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestParse(t *testing.T) {
	for _, name := range []string{"", "reactive"} {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if p.Name() != "reactive" {
			t.Fatalf("Parse(%q) = %q", name, p.Name())
		}
	}
	p, err := Parse("predictive")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "predictive" {
		t.Fatalf("Parse(predictive) = %q", p.Name())
	}
	if _, err := Parse("oracle"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPredictiveRejectsBadConfig(t *testing.T) {
	if _, err := NewPredictive(PredictiveConfig{Alpha: 2}); err == nil {
		t.Fatal("alpha 2 accepted")
	}
	if _, err := NewPredictive(PredictiveConfig{Beta: -1}); err == nil {
		t.Fatal("beta -1 accepted")
	}
	if _, err := NewPredictive(PredictiveConfig{MaxStep: -3}); err == nil {
		t.Fatal("max step -3 accepted")
	}
}
