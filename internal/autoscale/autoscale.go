// Package autoscale holds the fleet control plane's scaling policies:
// pluggable deciders for how many instances each deployment should have
// live at a virtual instant. The cluster simulator consults the policy
// on every control tick (arrival, iteration end, idle retirement, node
// crash) and launches until the policy is satisfied or the fleet is
// out of GPUs; placement itself stays with the simulator's
// locality-aware placer (RAM > in-flight > SSD > registry), so a
// scale-up lands on artifact-warm nodes whichever policy asked for it.
//
// Policies advance only on virtual-time observations — no wall clock,
// no shared RNG — so a fixed-seed simulation renders byte-identically
// whatever policy is plugged in.
package autoscale

import (
	"fmt"
	"math"
	"time"

	"github.com/medusa-repro/medusa/internal/metrics"
)

// Observation is the per-deployment state a policy sees when asked for
// a desired instance count.
type Observation struct {
	// Now is the control tick's virtual instant.
	Now time.Duration
	// Outstanding counts the deployment's unfinished requests (queued +
	// running).
	Outstanding int
	// Live counts the deployment's provisioned instances, including
	// ones still cold-starting.
	Live int
	// InstanceTarget is the outstanding-request count one instance is
	// expected to absorb (Scheduler.InstanceTarget).
	InstanceTarget int
	// ProvisionLatency estimates how long a launch started now takes to
	// become ready — the lead time a predictive policy scales ahead by.
	ProvisionLatency time.Duration
}

// target returns the per-instance absorption target, guarding the
// degenerate zero config.
func (o Observation) target() int {
	if o.InstanceTarget < 1 {
		return 1
	}
	return o.InstanceTarget
}

// Policy decides how many instances a deployment should have live.
// Implementations must be deterministic functions of the observations
// fed to them; a stateful policy must not be shared across simulation
// runs.
type Policy interface {
	// Name identifies the policy in reports and renders.
	Name() string
	// ObserveArrival feeds one request arrival for the deployment, in
	// nondecreasing time order across calls per deployment.
	ObserveArrival(dep int, t time.Duration)
	// Desired returns how many instances the deployment should have
	// live. Returning less than o.Live asks for nothing: the simulator
	// scales down only by idle-timeout draining, never by killing busy
	// instances. A policy that also implements Retainer can veto that
	// draining to hold warm capacity for forecast traffic.
	Desired(dep int, o Observation) int
}

// Retainer is an optional Policy extension: a scale-down veto. When a
// policy implements it, the simulator keeps an idle instance alive as
// long as retiring it would drop the deployment's live count below the
// Retain floor — capacity held warm for traffic the policy forecasts
// inside a provisioning lead time. Policies that do not implement
// Retainer (the reactive baseline) keep the legacy unconditional
// idle-timeout retirement, byte for byte.
type Retainer interface {
	// Retain returns the minimum live instance count worth holding
	// through idleness at this instant. Implementations must clamp the
	// floor to o.Live: retention only vetoes scale-down, it never
	// launches.
	Retain(dep int, o Observation) int
}

// Reactive is the baseline policy: one instance per InstanceTarget
// outstanding requests, zero when idle — exactly the formula the
// simulator applied before policies were pluggable, so a reactive run
// is byte-identical to the legacy autoscaler.
type Reactive struct{}

// NewReactive returns the reactive baseline policy.
func NewReactive() *Reactive { return &Reactive{} }

// Name identifies the policy.
func (*Reactive) Name() string { return "reactive" }

// ObserveArrival is a no-op: the reactive policy needs no history.
func (*Reactive) ObserveArrival(int, time.Duration) {}

// Desired implements the legacy formula: ⌈Outstanding/InstanceTarget⌉,
// zero when nothing is outstanding.
func (*Reactive) Desired(_ int, o Observation) int {
	return reactiveDesired(o)
}

func reactiveDesired(o Observation) int {
	if o.Outstanding == 0 {
		return 0
	}
	return 1 + (o.Outstanding-1)/o.target()
}

// PredictiveConfig parameterizes the predictive policy's forecaster.
type PredictiveConfig struct {
	// Window is the rate-estimation window width (default 5s).
	Window time.Duration
	// Alpha is the Holt level weight (default 0.5).
	Alpha float64
	// Beta is the Holt trend weight (default 0.3).
	Beta float64
	// MaxStep caps how many instances above the reactive baseline one
	// decision may add (default 2; -1 disables scale-ahead entirely).
	// Ramp provisioning is rate-limited so a burst onset cannot grab
	// the whole fleet's GPUs at once and starve co-located deployments
	// of slots.
	MaxStep int
	// KeepWarm caps the scale-down veto's floor (default 1; -1 disables
	// retention): at most this many idle instances are held warm for
	// forecast traffic. The floor is a pilot light, not rate-sized
	// capacity — right after a burst the smoothed rate is still high
	// while instances sit idle, and holding every one of them would
	// burn GPU-seconds the trough never uses.
	KeepWarm int
}

func (c PredictiveConfig) withDefaults() PredictiveConfig {
	if c.Window == 0 {
		c.Window = 5 * time.Second
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Beta == 0 {
		c.Beta = 0.3
	}
	// -1 opts a knob out entirely; the zero value means "default", so
	// the explicit disable needs its own sentinel.
	switch c.MaxStep {
	case 0:
		c.MaxStep = 2
	case -1:
		c.MaxStep = 0
	}
	switch c.KeepWarm {
	case 0:
		c.KeepWarm = 1
	case -1:
		c.KeepWarm = 0
	}
	return c
}

// Predictive scales ahead of demand ramps: it maintains a windowed
// Holt forecast of each deployment's arrival rate (internal/metrics)
// and provisions for the rate *growth* expected over a launch's lead
// time, on top of the reactive baseline. Only the growth needs new
// capacity ahead of time — traffic already flowing is sized by the
// reactive outstanding-count feedback, and charging the whole forecast
// rate against InstanceTarget would hoard GPUs that co-located
// deployments need (an instance absorbs far more than InstanceTarget
// requests per second; the target is an outstanding-count knob, not a
// throughput). It never asks for less than the reactive baseline, and
// quiet deployments still drain to zero through idle timeouts.
type Predictive struct {
	cfg PredictiveConfig
	win map[int]*metrics.RateWindow
}

// NewPredictive returns a predictive policy with the given forecaster
// parameters (zero values take defaults).
func NewPredictive(cfg PredictiveConfig) (*Predictive, error) {
	cfg = cfg.withDefaults()
	if cfg.Window < 0 {
		return nil, fmt.Errorf("autoscale: window %v must be positive", cfg.Window)
	}
	if cfg.MaxStep < 0 {
		return nil, fmt.Errorf("autoscale: max step %d must be nonnegative (-1 pre-normalization disables scale-ahead)", cfg.MaxStep)
	}
	if cfg.KeepWarm < 0 {
		return nil, fmt.Errorf("autoscale: keep warm %d must be nonnegative (-1 pre-normalization disables retention)", cfg.KeepWarm)
	}
	// Validate the Holt weights eagerly: per-deployment windows are
	// created lazily, and a bad weight must fail at construction, not
	// mid-simulation.
	if _, err := metrics.NewRateWindow(cfg.Window, cfg.Alpha, cfg.Beta); err != nil {
		return nil, err
	}
	return &Predictive{cfg: cfg, win: make(map[int]*metrics.RateWindow)}, nil
}

// Name identifies the policy.
func (*Predictive) Name() string { return "predictive" }

// ObserveArrival feeds one arrival into the deployment's rate window.
func (p *Predictive) ObserveArrival(dep int, t time.Duration) {
	w := p.win[dep]
	if w == nil {
		// Weights were validated at construction; this cannot fail.
		w, _ = metrics.NewRateWindow(p.cfg.Window, p.cfg.Alpha, p.cfg.Beta)
		p.win[dep] = w
	}
	w.Observe(t)
}

// Desired returns the reactive baseline plus ramp headroom: the
// forecast rate growth over the provisioning window, times the lead
// time, divided by the per-instance absorption target — the extra
// requests expected to pile up before a launch started now would be
// ready — capped at MaxStep instances per decision. Flat or falling
// forecasts add nothing.
func (p *Predictive) Desired(dep int, o Observation) int {
	base := reactiveDesired(o)
	w := p.win[dep]
	if w == nil {
		return base
	}
	lead := o.ProvisionLatency.Seconds()
	// The Holt level can decay below zero through a long silence; a
	// negative rate is meaningless and would fabricate growth against
	// the zero-clamped forecast.
	now := math.Max(w.RateAt(o.Now), 0)
	growth := w.ForecastAt(o.Now, o.ProvisionLatency) - now
	if growth <= 0 || lead <= 0 {
		return base
	}
	extra := int(math.Ceil(growth * lead / float64(o.target())))
	if extra > p.cfg.MaxStep {
		extra = p.cfg.MaxStep
	}
	return base + extra
}

// Retain implements the scale-down veto: hold up to KeepWarm idle
// instances (a pilot light, default one) while the forecast expects at
// least one arrival within a provisioning lead — rate·lead ≥ 1.
// Retiring the last warm instance then would force the very cold start
// the forecast already predicts; one warm instance, batching, absorbs
// a burst front while reactive follow-up launches spin up behind it.
// Retention cuts off sharply when traffic stops: two full windows
// without a single arrival zero the floor immediately, rather than
// waiting for the smoothed Holt level to bleed down — a diurnal trough
// keeps trickling requests and stays retained, while end-of-stream
// silence drains the deployment on the baseline's timetable.
func (p *Predictive) Retain(dep int, o Observation) int {
	w := p.win[dep]
	if w == nil {
		return 0
	}
	last, ok := w.LastObserved()
	if !ok || o.Now-last > 2*p.cfg.Window {
		return 0
	}
	lead := o.ProvisionLatency.Seconds()
	rate := math.Max(w.ForecastAt(o.Now, o.ProvisionLatency), 0)
	// One warm instance per whole arrival forecast inside the lead:
	// the floor tapers as a trough deepens instead of snapping from
	// KeepWarm to zero.
	keep := int(rate * lead)
	if keep > p.cfg.KeepWarm {
		keep = p.cfg.KeepWarm
	}
	if keep > o.Live {
		keep = o.Live
	}
	return keep
}

// Parse resolves a policy by CLI name: "reactive" (or empty) and
// "predictive" (default forecaster parameters).
func Parse(name string) (Policy, error) {
	switch name {
	case "", "reactive":
		return NewReactive(), nil
	case "predictive":
		return NewPredictive(PredictiveConfig{})
	}
	return nil, fmt.Errorf("autoscale: unknown policy %q (want reactive or predictive)", name)
}
