package tokenizer_test

import (
	"fmt"

	"github.com/medusa-repro/medusa/internal/tokenizer"
)

func ExampleTokenizer() {
	tk, _ := tokenizer.New(32000)
	ids := tk.Encode("tok5 tok12")
	fmt.Println(ids)
	fmt.Println(tk.Decode(ids))
	// Output:
	// [5 12]
	// tok5 tok12
}
