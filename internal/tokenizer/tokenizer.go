// Package tokenizer provides the deterministic toy tokenizer that
// stands in for each model's HuggingFace tokenizer. Loading it is stage
// 3 of the paper's loading phase; its cost scales with vocabulary size
// (a Qwen tokenizer with 152k entries takes noticeably longer than
// Llama's 32k one).
package tokenizer

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Tokenizer maps between text and token IDs over a synthetic
// vocabulary "tok0" … "tokN-1". Unknown words hash into the
// vocabulary, making Encode total.
type Tokenizer struct {
	vocab int
}

// New builds a tokenizer with the given vocabulary size.
func New(vocab int) (*Tokenizer, error) {
	if vocab <= 0 {
		return nil, fmt.Errorf("tokenizer: vocabulary size %d", vocab)
	}
	return &Tokenizer{vocab: vocab}, nil
}

// VocabSize returns the vocabulary size.
func (t *Tokenizer) VocabSize() int { return t.vocab }

// Encode converts text to token IDs. Canonical tokens ("tok<i>") map
// to their ID; other words hash deterministically into the vocabulary.
func (t *Tokenizer) Encode(text string) []uint32 {
	fields := strings.Fields(text)
	ids := make([]uint32, 0, len(fields))
	for _, f := range fields {
		if strings.HasPrefix(f, "tok") {
			if n, err := strconv.Atoi(f[3:]); err == nil && n >= 0 && n < t.vocab {
				ids = append(ids, uint32(n))
				continue
			}
		}
		h := uint32(2166136261)
		for i := 0; i < len(f); i++ {
			h = (h ^ uint32(f[i])) * 16777619
		}
		ids = append(ids, h%uint32(t.vocab))
	}
	return ids
}

// Decode converts token IDs to canonical text.
func (t *Tokenizer) Decode(ids []uint32) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString("tok")
		b.WriteString(strconv.FormatUint(uint64(id%uint32(t.vocab)), 10))
	}
	return b.String()
}

// LoadDuration models the time the tokenizer-loading stage takes:
// a fixed setup cost plus a per-entry cost. Calibrated so Qwen1.5's
// 152k-entry tokenizer loads in ≈0.21 s (Figure 8a).
func LoadDuration(vocab int) time.Duration {
	const (
		base     = 50 * time.Millisecond
		perEntry = 1050 * time.Nanosecond
	)
	return base + time.Duration(vocab)*perEntry
}
