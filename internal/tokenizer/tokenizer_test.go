package tokenizer

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNewRejectsBadVocab(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	if _, err := New(-5); err == nil {
		t.Fatal("New(-5) succeeded")
	}
}

func TestEncodeCanonicalTokens(t *testing.T) {
	tk, _ := New(100)
	ids := tk.Encode("tok5 tok0 tok99")
	want := []uint32{5, 0, 99}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Encode = %v, want %v", ids, want)
		}
	}
}

func TestEncodeOutOfRangeTokenHashes(t *testing.T) {
	tk, _ := New(10)
	ids := tk.Encode("tok99") // out of vocab: hashed, but still in range
	if len(ids) != 1 || ids[0] >= 10 {
		t.Fatalf("Encode out-of-range = %v", ids)
	}
}

func TestEncodeArbitraryWordsInRange(t *testing.T) {
	tk, _ := New(32)
	for _, id := range tk.Encode("the quick brown fox") {
		if id >= 32 {
			t.Fatalf("hashed id %d out of vocab", id)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	tk, _ := New(1000)
	a := tk.Encode("hello world hello")
	b := tk.Encode("hello world hello")
	if len(a) != 3 || a[0] != a[2] {
		t.Fatalf("Encode = %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Encode not deterministic")
		}
	}
}

func TestDecodeEmpty(t *testing.T) {
	tk, _ := New(10)
	if got := tk.Decode(nil); got != "" {
		t.Fatalf("Decode(nil) = %q", got)
	}
	if got := len(tk.Encode("")); got != 0 {
		t.Fatalf("Encode(\"\") len = %d", got)
	}
}

// Property: Encode∘Decode is the identity on ID sequences.
func TestRoundTripProperty(t *testing.T) {
	tk, _ := New(512)
	f := func(raw []uint16) bool {
		ids := make([]uint32, len(raw))
		for i, r := range raw {
			ids[i] = uint32(r) % 512
		}
		got := tk.Encode(tk.Decode(ids))
		if len(got) != len(ids) {
			return false
		}
		for i := range ids {
			if got[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDurationScalesWithVocab(t *testing.T) {
	qwen := LoadDuration(151936)
	llama := LoadDuration(32000)
	if qwen <= llama {
		t.Fatalf("LoadDuration(qwen)=%v <= LoadDuration(llama)=%v", qwen, llama)
	}
	// Calibration anchor: Qwen's tokenizer stage is ≈0.21 s in Fig. 8a.
	if qwen < 190*time.Millisecond || qwen > 230*time.Millisecond {
		t.Fatalf("Qwen tokenizer load = %v, want ≈210ms", qwen)
	}
}
