package tokenizer

import "testing"

// FuzzEncodeDecode checks the tokenizer is total and id-stable on
// arbitrary text: Encode never produces out-of-vocabulary IDs, and
// Decode∘Encode∘Decode is stable.
func FuzzEncodeDecode(f *testing.F) {
	f.Add("hello world", uint16(100))
	f.Add("tok5 tok0 tok99999999999999999999", uint16(10))
	f.Add("", uint16(1))
	f.Add("tok-1 tok+3   \t\n tokabc", uint16(7))
	f.Fuzz(func(t *testing.T, text string, vocabRaw uint16) {
		vocab := int(vocabRaw)%100000 + 1
		tk, err := New(vocab)
		if err != nil {
			t.Fatal(err)
		}
		ids := tk.Encode(text)
		for _, id := range ids {
			if id >= uint32(vocab) {
				t.Fatalf("id %d out of vocab %d", id, vocab)
			}
		}
		canonical := tk.Decode(ids)
		ids2 := tk.Encode(canonical)
		if len(ids2) != len(ids) {
			t.Fatalf("round trip changed length: %d → %d", len(ids), len(ids2))
		}
		for i := range ids {
			if ids[i] != ids2[i] {
				t.Fatal("round trip changed ids")
			}
		}
	})
}
