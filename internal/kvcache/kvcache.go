// Package kvcache implements vLLM-style paged KV cache management: the
// cache is one contiguous device reservation carved into fixed-size
// blocks, sequences hold per-sequence block tables, and blocks recycle
// through a free list. Sizing the reservation requires knowing the
// residual free GPU memory after a worst-case forwarding — the quantity
// the paper's §6 materializes to skip profiling at cold start.
package kvcache

import (
	"fmt"
)

// TokensPerBlock is the paged-attention block size (vLLM default 16).
const TokensPerBlock = 16

// BlockBytes returns the device size of one block: TokensPerBlock
// token slots of `hidden` elements for both K and V.
func BlockBytes(hidden, elemBytes int) uint64 {
	return uint64(TokensPerBlock) * uint64(hidden) * uint64(elemBytes) * 2
}

// NumBlocksFor returns how many blocks fit in freeBytes.
func NumBlocksFor(freeBytes, blockBytes uint64) int {
	if blockBytes == 0 {
		return 0
	}
	return int(freeBytes / blockBytes)
}

// BlocksForTokens returns the number of blocks needed to hold n tokens.
func BlocksForTokens(n int) int {
	return (n + TokensPerBlock - 1) / TokensPerBlock
}

// OutOfBlocksError reports block exhaustion: the requesting sequence,
// how many blocks the operation needed, how many were free, and the
// shortfall (Needed − Free) — the quantity a preemption policy must
// reclaim before retrying.
type OutOfBlocksError struct {
	Seq       uint64
	Needed    int
	Free      int
	Shortfall int
}

func (e *OutOfBlocksError) Error() string {
	return fmt.Sprintf("kvcache: sequence %d needs %d blocks, %d free (short %d)",
		e.Seq, e.Needed, e.Free, e.Shortfall)
}

// reservation records one uncommitted Reserve so Rollback can restore
// the manager byte-for-byte: the tokens added, the number of blocks
// popped from the free tail, and whether the sequence existed before.
type reservation struct {
	seq     uint64
	tokens  int
	blocks  int
	existed bool
}

// Manager tracks block ownership. It is not safe for concurrent use;
// the engine serializes access like vLLM's scheduler does.
type Manager struct {
	numBlocks int
	free      []int
	tables    map[uint64][]int
	seqLens   map[uint64]int
	pending   []reservation
}

// NewManager creates a manager over numBlocks blocks.
func NewManager(numBlocks int) *Manager {
	free := make([]int, numBlocks)
	for i := range free {
		free[i] = numBlocks - 1 - i // pop order 0,1,2,…
	}
	return &Manager{
		numBlocks: numBlocks,
		free:      free,
		tables:    make(map[uint64][]int),
		seqLens:   make(map[uint64]int),
	}
}

// NumBlocks returns the total block count.
func (m *Manager) NumBlocks() int { return m.numBlocks }

// NumFreeBlocks returns the free block count.
func (m *Manager) NumFreeBlocks() int { return len(m.free) }

// SeqLen returns the cached token count of a sequence.
func (m *Manager) SeqLen(seq uint64) int { return m.seqLens[seq] }

// Sequences returns the number of live sequences.
func (m *Manager) Sequences() int { return len(m.tables) }

// BlockTable returns the sequence's block table (shared slice; callers
// must not mutate).
func (m *Manager) BlockTable(seq uint64) []int { return m.tables[seq] }

// blocksNeeded computes additional blocks to extend seq by n tokens.
func (m *Manager) blocksNeeded(seq uint64, n int) int {
	cur := m.seqLens[seq]
	return BlocksForTokens(cur+n) - len(m.tables[seq])
}

// CanAppend reports whether n more tokens fit without exhausting the
// pool.
func (m *Manager) CanAppend(seq uint64, n int) bool {
	return m.blocksNeeded(seq, n) <= len(m.free)
}

// Append extends a sequence by n tokens, allocating blocks as needed.
// On exhaustion it returns OutOfBlocksError and changes nothing.
func (m *Manager) Append(seq uint64, n int) error {
	if n < 0 {
		return fmt.Errorf("kvcache: negative append %d", n)
	}
	need := m.blocksNeeded(seq, n)
	if need > len(m.free) {
		return &OutOfBlocksError{Seq: seq, Needed: need, Free: len(m.free), Shortfall: need - len(m.free)}
	}
	m.grow(seq, n, need)
	return nil
}

// grow pops need blocks from the free tail onto seq's table and extends
// its length by n tokens. Callers have already checked capacity.
func (m *Manager) grow(seq uint64, n, need int) {
	for i := 0; i < need; i++ {
		b := m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.tables[seq] = append(m.tables[seq], b)
	}
	m.seqLens[seq] += n
}

// Reserve extends a sequence like Append but logs the allocation in an
// open reservation, so a batch of per-sequence admissions can be
// checked atomically: reserve each member in turn, and on the first
// OutOfBlocksError call Rollback to restore the manager byte-for-byte
// (free-list order included) before choosing a preemption victim.
// Commit closes the reservation and makes the allocations permanent.
func (m *Manager) Reserve(seq uint64, n int) error {
	if n < 0 {
		return fmt.Errorf("kvcache: negative reserve %d", n)
	}
	need := m.blocksNeeded(seq, n)
	if need > len(m.free) {
		return &OutOfBlocksError{Seq: seq, Needed: need, Free: len(m.free), Shortfall: need - len(m.free)}
	}
	_, existed := m.seqLens[seq]
	m.pending = append(m.pending, reservation{seq: seq, tokens: n, blocks: need, existed: existed})
	m.grow(seq, n, need)
	return nil
}

// Rollback undoes every uncommitted Reserve in reverse order, pushing
// blocks back onto the free list in the exact positions they were
// popped from, so the manager state (and therefore every downstream
// deterministic allocation) is byte-identical to before the first
// Reserve.
func (m *Manager) Rollback() {
	for i := len(m.pending) - 1; i >= 0; i-- {
		r := m.pending[i]
		table := m.tables[r.seq]
		for j := 0; j < r.blocks; j++ {
			b := table[len(table)-1]
			table = table[:len(table)-1]
			m.free = append(m.free, b)
		}
		if len(table) == 0 && !r.existed {
			delete(m.tables, r.seq)
			delete(m.seqLens, r.seq)
			continue
		}
		m.tables[r.seq] = table
		m.seqLens[r.seq] -= r.tokens
	}
	m.pending = m.pending[:0]
}

// Commit makes every uncommitted Reserve permanent.
func (m *Manager) Commit() {
	m.pending = m.pending[:0]
}

// Reset restores the manager to its freshly constructed state without
// reallocating, so pooled managers can be recycled across instances.
func (m *Manager) Reset() {
	m.free = m.free[:0]
	for i := 0; i < m.numBlocks; i++ {
		m.free = append(m.free, m.numBlocks-1-i)
	}
	clear(m.tables)
	clear(m.seqLens)
	m.pending = m.pending[:0]
}

// Release frees all blocks of a sequence.
func (m *Manager) Release(seq uint64) {
	blocks := m.tables[seq]
	delete(m.tables, seq)
	delete(m.seqLens, seq)
	m.free = append(m.free, blocks...)
}

// UsedBlocks returns allocated block count.
func (m *Manager) UsedBlocks() int { return m.numBlocks - len(m.free) }
