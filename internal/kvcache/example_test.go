package kvcache_test

import (
	"fmt"

	"github.com/medusa-repro/medusa/internal/kvcache"
)

// A sequence grows token by token; blocks are allocated lazily at
// 16-token granularity and recycled on release.
func ExampleManager() {
	m := kvcache.NewManager(8)
	const seq = 1
	m.Append(seq, 20) // prompt: 20 tokens → 2 blocks
	fmt.Println("blocks after prompt:", len(m.BlockTable(seq)))
	for i := 0; i < 12; i++ { // decode 12 more tokens: fits block 2
		m.Append(seq, 1)
	}
	fmt.Println("blocks after decode:", len(m.BlockTable(seq)))
	m.Release(seq)
	fmt.Println("free after release:", m.NumFreeBlocks())
	// Output:
	// blocks after prompt: 2
	// blocks after decode: 2
	// free after release: 8
}

func ExampleBlockBytes() {
	// One fp16 block of a 4096-wide model: 16 tokens × 4096 × 2 bytes,
	// for both K and V.
	fmt.Println(kvcache.BlockBytes(4096, 2))
	// Output:
	// 262144
}
