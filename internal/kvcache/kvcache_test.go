package kvcache

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSizingHelpers(t *testing.T) {
	if BlockBytes(4096, 2) != 16*4096*2*2 {
		t.Fatalf("BlockBytes = %d", BlockBytes(4096, 2))
	}
	if NumBlocksFor(10<<30, BlockBytes(4096, 2)) != int((10<<30)/(16*4096*2*2)) {
		t.Fatal("NumBlocksFor wrong")
	}
	if NumBlocksFor(100, 0) != 0 {
		t.Fatal("NumBlocksFor zero block size")
	}
	cases := map[int]int{0: 0, 1: 1, 16: 1, 17: 2, 32: 2, 33: 3}
	for n, want := range cases {
		if got := BlocksForTokens(n); got != want {
			t.Errorf("BlocksForTokens(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAppendAllocatesLazily(t *testing.T) {
	m := NewManager(4)
	if err := m.Append(1, 10); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 1 || m.SeqLen(1) != 10 {
		t.Fatalf("after 10 tokens: used=%d len=%d", m.UsedBlocks(), m.SeqLen(1))
	}
	if err := m.Append(1, 6); err != nil { // fills block 0 exactly
		t.Fatal(err)
	}
	if m.UsedBlocks() != 1 {
		t.Fatalf("16 tokens should still use 1 block, used=%d", m.UsedBlocks())
	}
	if err := m.Append(1, 1); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 2 {
		t.Fatalf("17th token should open block 2, used=%d", m.UsedBlocks())
	}
	if bt := m.BlockTable(1); len(bt) != 2 || bt[0] == bt[1] {
		t.Fatalf("block table = %v", bt)
	}
}

func TestExhaustionAtomic(t *testing.T) {
	m := NewManager(2)
	if err := m.Append(1, 32); err != nil { // exactly 2 blocks
		t.Fatal(err)
	}
	if m.CanAppend(2, 1) {
		t.Fatal("CanAppend with empty pool")
	}
	err := m.Append(2, 1)
	var oob *OutOfBlocksError
	if !errors.As(err, &oob) {
		t.Fatalf("Append on empty pool = %v", err)
	}
	if m.SeqLen(2) != 0 || len(m.BlockTable(2)) != 0 {
		t.Fatal("failed Append mutated state")
	}
	// A multi-block request that cannot be fully served must not
	// partially allocate.
	m2 := NewManager(2)
	if err := m2.Append(7, 100); err == nil {
		t.Fatal("oversized Append succeeded")
	}
	if m2.NumFreeBlocks() != 2 {
		t.Fatal("failed multi-block Append leaked blocks")
	}
}

func TestReleaseRecyclesBlocks(t *testing.T) {
	m := NewManager(3)
	m.Append(1, 40) // 3 blocks
	if m.NumFreeBlocks() != 0 {
		t.Fatal("pool should be empty")
	}
	m.Release(1)
	if m.NumFreeBlocks() != 3 || m.Sequences() != 0 {
		t.Fatalf("after release: free=%d seqs=%d", m.NumFreeBlocks(), m.Sequences())
	}
	if err := m.Append(2, 48); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseUnknownSeqIsNoop(t *testing.T) {
	m := NewManager(2)
	m.Release(99)
	if m.NumFreeBlocks() != 2 {
		t.Fatal("Release of unknown sequence changed pool")
	}
}

func TestNegativeAppendRejected(t *testing.T) {
	m := NewManager(2)
	if err := m.Append(1, -1); err == nil {
		t.Fatal("negative append succeeded")
	}
}

// Property: under any interleaving of appends and releases, block
// accounting is exact and no block is owned by two sequences.
func TestBlockAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const blocks = 32
		m := NewManager(blocks)
		for _, op := range ops {
			seq := uint64(op % 5)
			if op%7 == 0 {
				m.Release(seq)
			} else {
				n := int(op%20) + 1
				if m.CanAppend(seq, n) {
					if m.Append(seq, n) != nil {
						return false
					}
				} else if m.Append(seq, n) == nil {
					return false // CanAppend said no but Append worked
				}
			}
			// Invariants.
			owned := map[int]uint64{}
			total := 0
			for s := uint64(0); s < 5; s++ {
				bt := m.BlockTable(s)
				if len(bt) != BlocksForTokens(m.SeqLen(s)) {
					return false
				}
				for _, b := range bt {
					if prev, dup := owned[b]; dup && prev != s {
						return false
					}
					owned[b] = s
				}
				total += len(bt)
			}
			if total+m.NumFreeBlocks() != blocks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
