package kvcache

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSizingHelpers(t *testing.T) {
	if BlockBytes(4096, 2) != 16*4096*2*2 {
		t.Fatalf("BlockBytes = %d", BlockBytes(4096, 2))
	}
	if NumBlocksFor(10<<30, BlockBytes(4096, 2)) != int((10<<30)/(16*4096*2*2)) {
		t.Fatal("NumBlocksFor wrong")
	}
	if NumBlocksFor(100, 0) != 0 {
		t.Fatal("NumBlocksFor zero block size")
	}
	cases := map[int]int{0: 0, 1: 1, 16: 1, 17: 2, 32: 2, 33: 3}
	for n, want := range cases {
		if got := BlocksForTokens(n); got != want {
			t.Errorf("BlocksForTokens(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAppendAllocatesLazily(t *testing.T) {
	m := NewManager(4)
	if err := m.Append(1, 10); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 1 || m.SeqLen(1) != 10 {
		t.Fatalf("after 10 tokens: used=%d len=%d", m.UsedBlocks(), m.SeqLen(1))
	}
	if err := m.Append(1, 6); err != nil { // fills block 0 exactly
		t.Fatal(err)
	}
	if m.UsedBlocks() != 1 {
		t.Fatalf("16 tokens should still use 1 block, used=%d", m.UsedBlocks())
	}
	if err := m.Append(1, 1); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 2 {
		t.Fatalf("17th token should open block 2, used=%d", m.UsedBlocks())
	}
	if bt := m.BlockTable(1); len(bt) != 2 || bt[0] == bt[1] {
		t.Fatalf("block table = %v", bt)
	}
}

func TestExhaustionAtomic(t *testing.T) {
	m := NewManager(2)
	if err := m.Append(1, 32); err != nil { // exactly 2 blocks
		t.Fatal(err)
	}
	if m.CanAppend(2, 1) {
		t.Fatal("CanAppend with empty pool")
	}
	err := m.Append(2, 1)
	var oob *OutOfBlocksError
	if !errors.As(err, &oob) {
		t.Fatalf("Append on empty pool = %v", err)
	}
	if m.SeqLen(2) != 0 || len(m.BlockTable(2)) != 0 {
		t.Fatal("failed Append mutated state")
	}
	// A multi-block request that cannot be fully served must not
	// partially allocate.
	m2 := NewManager(2)
	if err := m2.Append(7, 100); err == nil {
		t.Fatal("oversized Append succeeded")
	}
	if m2.NumFreeBlocks() != 2 {
		t.Fatal("failed multi-block Append leaked blocks")
	}
}

func TestReleaseRecyclesBlocks(t *testing.T) {
	m := NewManager(3)
	m.Append(1, 40) // 3 blocks
	if m.NumFreeBlocks() != 0 {
		t.Fatal("pool should be empty")
	}
	m.Release(1)
	if m.NumFreeBlocks() != 3 || m.Sequences() != 0 {
		t.Fatalf("after release: free=%d seqs=%d", m.NumFreeBlocks(), m.Sequences())
	}
	if err := m.Append(2, 48); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseUnknownSeqIsNoop(t *testing.T) {
	m := NewManager(2)
	m.Release(99)
	if m.NumFreeBlocks() != 2 {
		t.Fatal("Release of unknown sequence changed pool")
	}
}

func TestNegativeAppendRejected(t *testing.T) {
	m := NewManager(2)
	if err := m.Append(1, -1); err == nil {
		t.Fatal("negative append succeeded")
	}
}

func TestReserveRollbackRestoresState(t *testing.T) {
	m := NewManager(4)
	if err := m.Append(1, 20); err != nil { // 2 blocks committed
		t.Fatal(err)
	}
	freeBefore := append([]int(nil), m.free...)
	if err := m.Reserve(1, 13); err != nil { // extends into block 3
		t.Fatal(err)
	}
	if err := m.Reserve(2, 10); err != nil { // new sequence, block 4
		t.Fatal(err)
	}
	err := m.Reserve(3, 1)
	var oob *OutOfBlocksError
	if !errors.As(err, &oob) {
		t.Fatalf("Reserve on empty pool = %v", err)
	}
	if oob.Seq != 3 || oob.Shortfall != 1 {
		t.Fatalf("OutOfBlocksError = %+v, want seq 3 shortfall 1", oob)
	}
	m.Rollback()
	if m.SeqLen(1) != 20 || m.SeqLen(2) != 0 || m.Sequences() != 1 {
		t.Fatalf("rollback left len1=%d len2=%d seqs=%d", m.SeqLen(1), m.SeqLen(2), m.Sequences())
	}
	for i, b := range m.free {
		if freeBefore[i] != b {
			t.Fatalf("rollback reordered free list: %v != %v", m.free, freeBefore)
		}
	}
}

func TestReserveCommitIsPermanent(t *testing.T) {
	m := NewManager(4)
	if err := m.Reserve(1, 20); err != nil {
		t.Fatal(err)
	}
	m.Commit()
	m.Rollback() // must be a no-op after Commit
	if m.SeqLen(1) != 20 || m.UsedBlocks() != 2 {
		t.Fatalf("commit not permanent: len=%d used=%d", m.SeqLen(1), m.UsedBlocks())
	}
}

func TestResetRestoresFreshState(t *testing.T) {
	m := NewManager(3)
	m.Append(1, 40)
	m.Reserve(2, 1)
	m.Reset()
	fresh := NewManager(3)
	if m.NumFreeBlocks() != 3 || m.Sequences() != 0 || len(m.pending) != 0 {
		t.Fatalf("Reset left free=%d seqs=%d pending=%d", m.NumFreeBlocks(), m.Sequences(), len(m.pending))
	}
	for i := range fresh.free {
		if m.free[i] != fresh.free[i] {
			t.Fatalf("Reset free-list order %v != fresh %v", m.free, fresh.free)
		}
	}
}

// Property: under admit/preempt/resume churn expressed through the
// reservation API — reserve-batches that either commit or roll back,
// interleaved with releases (preemption) and re-appends (resume) —
// block accounting stays exact, no block has two owners, and every
// table length matches BlocksForTokens of its sequence length.
func TestReserveConservationProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const blocks = 24
		m := NewManager(blocks)
		for _, op := range ops {
			seq := uint64(op % 6)
			switch op % 5 {
			case 0: // preempt: recompute-on-resume drops all blocks
				m.Release(seq)
			case 1: // resume: re-append the recomputed prefix
				n := int(op%17) + 1
				if m.CanAppend(seq, n) {
					if m.Append(seq, n) != nil {
						return false
					}
				}
			default: // admission batch of 1–3 sequences, commit or roll back
				batch := int(op%3) + 1
				ok := true
				for i := 0; i < batch; i++ {
					if m.Reserve((seq+uint64(i))%6, int(op%13)+1) != nil {
						ok = false
						break
					}
				}
				if ok && op%2 == 0 {
					m.Commit()
				} else {
					m.Rollback()
				}
			}
			owned := map[int]uint64{}
			total := 0
			for s := uint64(0); s < 8; s++ {
				bt := m.BlockTable(s)
				if len(bt) != BlocksForTokens(m.SeqLen(s)) {
					return false
				}
				for _, b := range bt {
					if prev, dup := owned[b]; dup && prev != s {
						return false
					}
					owned[b] = s
				}
				total += len(bt)
			}
			if total+m.NumFreeBlocks() != blocks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: under any interleaving of appends and releases, block
// accounting is exact and no block is owned by two sequences.
func TestBlockAccountingProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const blocks = 32
		m := NewManager(blocks)
		for _, op := range ops {
			seq := uint64(op % 5)
			if op%7 == 0 {
				m.Release(seq)
			} else {
				n := int(op%20) + 1
				if m.CanAppend(seq, n) {
					if m.Append(seq, n) != nil {
						return false
					}
				} else if m.Append(seq, n) == nil {
					return false // CanAppend said no but Append worked
				}
			}
			// Invariants.
			owned := map[int]uint64{}
			total := 0
			for s := uint64(0); s < 5; s++ {
				bt := m.BlockTable(s)
				if len(bt) != BlocksForTokens(m.SeqLen(s)) {
					return false
				}
				for _, b := range bt {
					if prev, dup := owned[b]; dup && prev != s {
						return false
					}
					owned[b] = s
				}
				total += len(bt)
			}
			if total+m.NumFreeBlocks() != blocks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
