package cuda

import (
	"fmt"
	"sort"
	"time"

	"github.com/medusa-repro/medusa/internal/dl"
	"github.com/medusa-repro/medusa/internal/gpu"
	"github.com/medusa-repro/medusa/internal/vclock"
)

// KernelCostFunc models the GPU execution time of one kernel given its
// decoded arguments. The engine installs a model-specific cost function;
// the default charges a small floor per kernel ("kernel execution on the
// GPU can be as fast as microseconds", §1).
type KernelCostFunc func(impl *KernelImpl, args []Value) time.Duration

// Config tunes per-process driver overheads. Zero values select the
// defaults below, which are calibrated for the paper's A100 testbed.
type Config struct {
	// Seed randomizes the process address space: allocator base and
	// library load bases. Every simulated cold start must use a fresh
	// seed.
	Seed int64
	// Mode selects functional or cost-only kernel execution.
	Mode gpu.ExecMode
	// Device optionally overrides the GPU configuration (defaults to an
	// A100-40GB).
	Device *gpu.DeviceConfig

	// LaunchOverhead is the CPU cost of launching one kernel
	// individually (default 5µs).
	LaunchOverhead time.Duration
	// CaptureOverhead is the CPU cost of recording one kernel launch
	// into an active capture (default 3µs).
	CaptureOverhead time.Duration
	// GraphLaunchOverhead is the CPU cost of launching a whole graph
	// (default 30µs) — the single submission that amortizes per-kernel
	// launches.
	GraphLaunchOverhead time.Duration
	// InstantiateNodeCost is the per-node cost of cudaGraphInstantiate
	// (default 35µs).
	InstantiateNodeCost time.Duration
	// ModuleLoadCost is the cost of lazily loading one CUDA module,
	// including its implicit synchronization (default 1ms).
	ModuleLoadCost time.Duration
	// DlopenCost is the cost of mapping one shared library (default 4ms).
	DlopenCost time.Duration
	// MallocCost is the CPU cost of one cudaMalloc/cudaFree (default 1.5µs).
	MallocCost time.Duration
	// HtoDBandwidth is host-to-device copy bandwidth in bytes/s
	// (default 25 GB/s over NVLink-attached PCIe staging).
	HtoDBandwidth float64
	// MemcpyLatency is the fixed per-copy submission latency
	// (default 5µs).
	MemcpyLatency time.Duration
	// KernelCost models per-kernel GPU time; nil selects a 2µs floor
	// plus memory traffic at HBM bandwidth when Traffic is available.
	KernelCost KernelCostFunc
}

func (c Config) withDefaults() Config {
	def := func(d *time.Duration, v time.Duration) {
		if *d == 0 {
			*d = v
		}
	}
	def(&c.LaunchOverhead, 5*time.Microsecond)
	def(&c.CaptureOverhead, 3*time.Microsecond)
	def(&c.GraphLaunchOverhead, 30*time.Microsecond)
	def(&c.InstantiateNodeCost, 35*time.Microsecond)
	def(&c.ModuleLoadCost, time.Millisecond)
	def(&c.DlopenCost, 4*time.Millisecond)
	def(&c.MallocCost, 1500*time.Nanosecond)
	def(&c.MemcpyLatency, 5*time.Microsecond)
	if c.HtoDBandwidth == 0 {
		c.HtoDBandwidth = 25e9
	}
	return c
}

// AllocEvent is one entry of a process's buffer (de)allocation sequence,
// as observed by trace hooks. Frees are identified by the *allocation
// index* they release, because addresses are not stable across cold
// starts — this is precisely the indirection the paper's indirect index
// pointers rely on.
type AllocEvent struct {
	// Free reports whether this event releases a prior allocation.
	Free bool
	// AllocIndex is the ordinal of the allocation (0-based, counting
	// allocations only). For Free events it names the allocation being
	// released.
	AllocIndex int
	// Size is the allocation size in bytes (zero for frees).
	Size uint64
	// Addr is the address returned (or released).
	Addr uint64
}

// LaunchRecord describes one kernel launch as seen by trace hooks.
type LaunchRecord struct {
	KernelName string
	KernelAddr uint64
	// RawParams are the serialized parameter images, exactly what a
	// captured graph node stores. Offline analysis must work from these
	// (plus sizes), never from typed values.
	RawParams  [][]byte
	ParamSizes []int
	// Captured reports whether the launch was recorded into an active
	// capture; NodeID is its node id when so.
	Captured bool
	NodeID   int
}

// Hooks observe process activity. Medusa's offline capturing stage
// installs them to record the allocation sequence and kernel launches.
type Hooks struct {
	OnAlloc  func(ev AllocEvent)
	OnLaunch func(rec LaunchRecord)
}

// Process is one simulated OS process with a CUDA context: its own
// randomized address space, device allocator state, loaded libraries and
// modules, streams, and captures. A serverless cold start creates a
// fresh Process.
type Process struct {
	rt     *Runtime
	cfg    Config
	clock  *vclock.Clock
	dev    *gpu.Device
	linker *dl.Linker

	byAddr  map[uint64]*Kernel
	byName  map[string]*Kernel
	modules map[string]*LoadedModule // "lib/module" -> loaded

	streams   []*Stream
	capture   *captureState
	hooks     Hooks
	allocSeq  int            // next allocation index
	liveAlloc map[uint64]int // live addr -> allocation index
}

// Kernel is a loaded kernel function in one process: the pair of a
// process-specific address and the installed implementation.
type Kernel struct {
	impl   *KernelImpl
	addr   uint64
	module *LoadedModule
}

// Name returns the kernel's mangled name (cuFuncGetName).
func (k *Kernel) Name() string { return k.impl.Name }

// Addr returns the kernel's process-specific address.
func (k *Kernel) Addr() uint64 { return k.addr }

// Impl exposes the installed implementation.
func (k *Kernel) Impl() *KernelImpl { return k.impl }

// Module returns the loaded module that carries the kernel.
func (k *Kernel) Module() *LoadedModule { return k.module }

// LoadedModule is a CUDA module mapped into the process. Loading any
// kernel of a module loads the whole module — the property
// triggering-kernels exploit (§5).
type LoadedModule struct {
	Library string
	Name    string
	kernels []*Kernel
}

// Kernels returns all kernels of the module, in image order
// (cuModuleEnumerateFunctions).
func (m *LoadedModule) Kernels() []*Kernel { return m.kernels }

// NewProcess starts a simulated process against the installed runtime.
func NewProcess(rt *Runtime, clock *vclock.Clock, cfg Config) *Process {
	cfg = cfg.withDefaults()
	if clock == nil {
		clock = vclock.New()
	}
	devCfg := gpu.A100(cfg.Seed, cfg.Mode)
	if cfg.Device != nil {
		devCfg = *cfg.Device
		devCfg.Seed = cfg.Seed
		devCfg.Mode = cfg.Mode
	}
	return &Process{
		rt:        rt,
		cfg:       cfg,
		clock:     clock,
		dev:       gpu.NewDevice(devCfg, clock),
		linker:    dl.NewLinker(rt.DL(), cfg.Seed),
		byAddr:    make(map[uint64]*Kernel),
		byName:    make(map[string]*Kernel),
		modules:   make(map[string]*LoadedModule),
		liveAlloc: make(map[uint64]int),
	}
}

// Device returns the process's GPU.
func (p *Process) Device() *gpu.Device { return p.dev }

// Clock returns the virtual clock.
func (p *Process) Clock() *vclock.Clock { return p.clock }

// Linker returns the process's dynamic linker.
func (p *Process) Linker() *dl.Linker { return p.linker }

// Runtime returns the installed software environment.
func (p *Process) Runtime() *Runtime { return p.rt }

// Config returns the effective (defaulted) configuration.
func (p *Process) Config() Config { return p.cfg }

// SetHooks installs trace hooks. Passing zero-value Hooks removes them.
func (p *Process) SetHooks(h Hooks) { p.hooks = h }

// Malloc allocates device memory (cudaMalloc).
func (p *Process) Malloc(size uint64) (uint64, error) {
	p.clock.Advance(p.cfg.MallocCost)
	addr, err := p.dev.Malloc(size)
	if err != nil {
		return 0, err
	}
	idx := p.allocSeq
	p.allocSeq++
	p.liveAlloc[addr] = idx
	if p.hooks.OnAlloc != nil {
		p.hooks.OnAlloc(AllocEvent{AllocIndex: idx, Size: size, Addr: addr})
	}
	return addr, nil
}

// Free releases device memory (cudaFree).
func (p *Process) Free(addr uint64) error {
	p.clock.Advance(p.cfg.MallocCost)
	idx, live := p.liveAlloc[addr]
	if err := p.dev.Free(addr); err != nil {
		return err
	}
	delete(p.liveAlloc, addr)
	if p.hooks.OnAlloc != nil && live {
		p.hooks.OnAlloc(AllocEvent{Free: true, AllocIndex: idx, Addr: addr})
	}
	return nil
}

// AllocationCount reports how many allocations the process has made.
func (p *Process) AllocationCount() int { return p.allocSeq }

// MemcpyHtoD copies host bytes to device memory, charging transfer time.
func (p *Process) MemcpyHtoD(addr uint64, data []byte) error {
	p.chargeHtoD(uint64(len(data)))
	b, off, ok := p.dev.FindBuffer(addr)
	if !ok {
		return fmt.Errorf("cuda: MemcpyHtoD to unmapped address %#x", addr)
	}
	if !p.dev.Functional() {
		return nil // cost-only: transfer time charged, contents dropped
	}
	return b.WriteAt(off, data)
}

// ChargeHtoD charges the transfer time of nbytes host-to-device without
// moving data; used by cost-only weight loading.
func (p *Process) ChargeHtoD(nbytes uint64) { p.chargeHtoD(nbytes) }

func (p *Process) chargeHtoD(nbytes uint64) {
	p.clock.Advance(p.cfg.MemcpyLatency +
		time.Duration(float64(nbytes)/p.cfg.HtoDBandwidth*float64(time.Second)))
}

// DeviceSynchronize waits for the device. During an active capture this
// is a prohibited operation and invalidates the capture, mirroring
// cudaErrorStreamCaptureUnsupported.
func (p *Process) DeviceSynchronize() error {
	if p.capture != nil {
		err := &CaptureInvalidatedError{Op: "cudaDeviceSynchronize"}
		p.capture.invalidated = err
		return err
	}
	return nil
}

// moduleKey identifies a module within the process.
func moduleKey(lib, mod string) string { return lib + "/" + mod }

// ensureModuleLoaded lazily loads the module containing impl, assigning
// process-specific addresses to every kernel in it. Module loading
// performs an implicit synchronization: during capture it is fatal.
// This is why warm-up forwarding must precede capture.
func (p *Process) ensureModuleLoaded(impl *KernelImpl) (*Kernel, error) {
	if k, ok := p.byName[impl.Name]; ok {
		return k, nil
	}
	if p.capture != nil {
		err := &CaptureInvalidatedError{Op: "lazy module load of " + moduleKey(impl.Library, impl.Module)}
		p.capture.invalidated = err
		return nil, err
	}
	firstOfLib := true
	for key := range p.modules {
		if len(key) > len(impl.Library) && key[:len(impl.Library)] == impl.Library && key[len(impl.Library)] == '/' {
			firstOfLib = false
			break
		}
	}
	ll, err := p.linker.Dlopen(impl.Library)
	if err != nil {
		return nil, err
	}
	if firstOfLib {
		p.clock.Advance(p.cfg.DlopenCost)
	}
	syms, ok := ll.Lib.Module(impl.Module)
	if !ok {
		return nil, fmt.Errorf("cuda: module %q missing from %q", impl.Module, impl.Library)
	}
	p.clock.Advance(p.cfg.ModuleLoadCost)
	lm := &LoadedModule{Library: impl.Library, Name: impl.Module}
	for _, s := range syms {
		si, ok := p.rt.Impl(s.Name)
		if !ok {
			return nil, fmt.Errorf("cuda: symbol %q has no installed implementation", s.Name)
		}
		k := &Kernel{impl: si, addr: ll.AddrOf(s), module: lm}
		lm.kernels = append(lm.kernels, k)
		p.byAddr[k.addr] = k
		p.byName[k.Name()] = k
	}
	p.modules[moduleKey(impl.Library, impl.Module)] = lm
	return p.byName[impl.Name], nil
}

// KernelByName returns the loaded kernel with the given mangled name.
func (p *Process) KernelByName(name string) (*Kernel, bool) {
	k, ok := p.byName[name]
	return k, ok
}

// KernelByAddr returns the loaded kernel at the given address.
func (p *Process) KernelByAddr(addr uint64) (*Kernel, bool) {
	k, ok := p.byAddr[addr]
	return k, ok
}

// GetFuncBySymbol turns a dlsym handle into a loaded kernel
// (cudaGetFuncBySymbol), loading its module as a side effect.
func (p *Process) GetFuncBySymbol(h dl.SymbolHandle) (*Kernel, error) {
	impl, ok := p.rt.Impl(h.Name)
	if !ok {
		return nil, &UnknownKernelError{Name: h.Name}
	}
	return p.ensureModuleLoaded(impl)
}

// LoadedModules returns the process's loaded modules, sorted by key.
func (p *Process) LoadedModules() []*LoadedModule {
	keys := make([]string, 0, len(p.modules))
	for k := range p.modules {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*LoadedModule, len(keys))
	for i, k := range keys {
		out[i] = p.modules[k]
	}
	return out
}

// ModuleEnumerateFunctions returns all kernels of a loaded module
// (cuModuleEnumerateFunctions).
func (p *Process) ModuleEnumerateFunctions(m *LoadedModule) []*Kernel {
	return m.Kernels()
}

// kernelCost models one kernel's GPU execution time with a roofline:
// the kernel takes as long as the slower of its memory traffic at HBM
// bandwidth and its FLOPs at half of peak, with a 2µs floor ("kernel
// execution on the GPU can be as fast as microseconds", §1).
func (p *Process) kernelCost(impl *KernelImpl, args []Value) time.Duration {
	if p.cfg.KernelCost != nil {
		return p.cfg.KernelCost(impl, args)
	}
	t := 2 * time.Microsecond
	if impl.Traffic != nil {
		bw := p.dev.Config().MemBandwidth
		if mt := time.Duration(float64(impl.Traffic(args)) / bw * float64(time.Second)); mt > t {
			t = mt
		}
	}
	if impl.Flops != nil {
		peak := 0.5 * p.dev.Config().PeakFLOPS
		if ct := time.Duration(impl.Flops(args) / peak * float64(time.Second)); ct > t {
			t = ct
		}
	}
	return t
}

// NewStream creates a stream.
func (p *Process) NewStream() *Stream {
	s := &Stream{p: p, id: len(p.streams)}
	p.streams = append(p.streams, s)
	return s
}

// Launch launches a kernel by mangled name on a stream
// (cudaLaunchKernel). Outside capture the kernel executes (functionally
// when the device allows); during capture it is recorded as a graph
// node instead.
func (p *Process) Launch(s *Stream, name string, args []Value) error {
	impl, ok := p.rt.Impl(name)
	if !ok {
		return &UnknownKernelError{Name: name}
	}
	if err := checkArgs(impl, args); err != nil {
		return err
	}
	k, err := p.ensureModuleLoaded(impl)
	if err != nil {
		return err
	}
	if p.capture != nil && p.capture.invalidated == nil {
		node := p.capture.record(s, k, args)
		p.clock.Advance(p.cfg.CaptureOverhead)
		p.emitLaunch(k, args, true, node)
		return nil
	}
	p.clock.Advance(p.cfg.LaunchOverhead)
	p.clock.Advance(p.kernelCost(impl, args))
	p.emitLaunch(k, args, false, -1)
	if p.dev.Functional() && impl.Func != nil {
		if err := impl.Func(p.dev, args); err != nil {
			return fmt.Errorf("kernel %s: %w", name, err)
		}
	}
	return nil
}

func (p *Process) emitLaunch(k *Kernel, args []Value, captured bool, node int) {
	if p.hooks.OnLaunch == nil {
		return
	}
	raw := EncodeArgs(args)
	sizes := make([]int, len(raw))
	for i := range raw {
		sizes[i] = len(raw[i])
	}
	p.hooks.OnLaunch(LaunchRecord{
		KernelName: k.Name(),
		KernelAddr: k.Addr(),
		RawParams:  raw,
		ParamSizes: sizes,
		Captured:   captured,
		NodeID:     node,
	})
}

func checkArgs(impl *KernelImpl, args []Value) error {
	if len(args) != len(impl.Params) {
		return &ParamMismatchError{Kernel: impl.Name,
			Detail: fmt.Sprintf("got %d args, schema has %d", len(args), len(impl.Params))}
	}
	for i, a := range args {
		if a.Kind != impl.Params[i] {
			return &ParamMismatchError{Kernel: impl.Name,
				Detail: fmt.Sprintf("arg %d is %v, schema wants %v", i, a.Kind, impl.Params[i])}
		}
	}
	return nil
}
