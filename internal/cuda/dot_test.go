package cuda

import (
	"strings"
	"testing"
)

func TestGraphDOT(t *testing.T) {
	p := newProc(t, 42)
	s := p.NewStream()
	d := mustMalloc(t, p, 64)
	args := []Value{PtrValue(d), PtrValue(d), PtrValue(d), U32Value(4)}
	if err := p.Launch(s, "vec_add_f32", args); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginCapture(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.Launch(s, "vec_add_f32", args); err != nil {
			t.Fatal(err)
		}
	}
	g, err := s.EndCapture()
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("test", p.KernelResolver())
	for _, want := range []string{
		"digraph \"test\"",
		"n0 [label=\"0: vec_add_f32",
		"n0 -> n1;",
		"n1 -> n2;",
		"4 params",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Without a resolver the raw address appears.
	raw := g.DOT("raw", nil)
	if !strings.Contains(raw, "0x7f") {
		t.Fatalf("unresolved DOT lacks addresses:\n%s", raw)
	}
	// Deterministic output.
	if dot != g.DOT("test", p.KernelResolver()) {
		t.Fatal("DOT not deterministic")
	}
}
