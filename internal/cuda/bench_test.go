package cuda

import (
	"testing"

	"github.com/medusa-repro/medusa/internal/gpu"
	"github.com/medusa-repro/medusa/internal/vclock"
)

// Micro-benchmarks of the simulator's hot paths: launch dispatch,
// capture recording, and graph replay. These measure host (simulator)
// performance, not the virtual-time cost model.

func benchProc(b *testing.B) (*Process, *Stream, []Value) {
	b.Helper()
	p := NewProcess(testRuntime(b), vclock.New(), Config{Seed: 1, Mode: gpu.CostOnly})
	s := p.NewStream()
	d, err := p.Malloc(1 << 12)
	if err != nil {
		b.Fatal(err)
	}
	args := []Value{PtrValue(d), PtrValue(d), PtrValue(d), U32Value(64)}
	if err := p.Launch(s, "vec_add_f32", args); err != nil { // load module
		b.Fatal(err)
	}
	return p, s, args
}

func BenchmarkKernelLaunch(b *testing.B) {
	p, s, args := benchProc(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Launch(s, "vec_add_f32", args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaptureRecord(b *testing.B) {
	p, s, args := benchProc(b)
	if err := s.BeginCapture(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Launch(s, "vec_add_f32", args); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := s.EndCapture(); err != nil {
		b.Fatal(err)
	}
}

func captureGraph(b *testing.B, nodes int) (*Process, *Stream, *GraphExec) {
	b.Helper()
	p, s, args := benchProc(b)
	if err := s.BeginCapture(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if err := p.Launch(s, "vec_add_f32", args); err != nil {
			b.Fatal(err)
		}
	}
	g, err := s.EndCapture()
	if err != nil {
		b.Fatal(err)
	}
	ge, err := g.Instantiate(p)
	if err != nil {
		b.Fatal(err)
	}
	return p, s, ge
}

func BenchmarkGraphReplay512Nodes(b *testing.B) {
	_, s, ge := captureGraph(b, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ge.Launch(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(512, "nodes/replay")
}

func BenchmarkInstantiate512Nodes(b *testing.B) {
	p, s, ge := captureGraph(b, 512)
	_ = s
	g := ge.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Instantiate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopoOrder512Nodes(b *testing.B) {
	_, _, ge := captureGraph(b, 512)
	g := ge.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}
