package cuda

import (
	"fmt"
	"time"
)

// Stream is a CUDA stream: an in-order queue of device work. During
// capture, launches on any participating stream are recorded as graph
// nodes, with intra-stream order becoming dependency edges and events
// becoming cross-stream edges.
type Stream struct {
	p  *Process
	id int
}

// ID returns the stream's process-local id.
func (s *Stream) ID() int { return s.id }

// Synchronize waits for the stream's work (cudaStreamSynchronize).
// Like device synchronization, it is prohibited during capture — the
// paper's §2.3 lists both as the reason warm-up must precede capture.
func (s *Stream) Synchronize() error {
	if s.p.capture != nil {
		err := &CaptureInvalidatedError{Op: "cudaStreamSynchronize"}
		s.p.capture.invalidated = err
		return err
	}
	return nil
}

// Event is a CUDA event used for cross-stream ordering. During capture,
// Record/Wait pairs become graph dependency edges.
type Event struct {
	recorded bool
	node     int // last node on the recording stream at record time; -1 if none
}

// NewEvent creates an event.
func (p *Process) NewEvent() *Event { return &Event{node: -1} }

// captureState holds an in-progress stream capture.
type captureState struct {
	origin       *Stream
	nodes        []*Node
	lastInStream map[int]int // stream id -> last node id
	pendingDeps  map[int][]int
	invalidated  error
}

// BeginCapture starts capturing on the stream
// (cudaStreamBeginCapture). Only one capture may be active per process.
func (s *Stream) BeginCapture() error {
	if s.p.capture != nil {
		return ErrCaptureActive
	}
	s.p.capture = &captureState{
		origin:       s,
		lastInStream: make(map[int]int),
		pendingDeps:  make(map[int][]int),
	}
	return nil
}

// EndCapture finishes the capture and returns the built graph
// (cudaStreamEndCapture). If a prohibited operation occurred during the
// capture, the capture's error is returned and the graph discarded.
func (s *Stream) EndCapture() (*Graph, error) {
	c := s.p.capture
	if c == nil || c.origin != s {
		return nil, ErrNoCapture
	}
	s.p.capture = nil
	if c.invalidated != nil {
		return nil, c.invalidated
	}
	g := &Graph{nodes: c.nodes}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("cuda: capture produced invalid graph: %w", err)
	}
	return g, nil
}

// Capturing reports whether a capture is active on the process.
func (p *Process) Capturing() bool { return p.capture != nil }

// record appends a launch as a graph node.
func (c *captureState) record(s *Stream, k *Kernel, args []Value) int {
	id := len(c.nodes)
	var deps []int
	if last, ok := c.lastInStream[s.id]; ok {
		deps = append(deps, last)
	}
	if pend := c.pendingDeps[s.id]; len(pend) > 0 {
		deps = append(deps, pend...)
		delete(c.pendingDeps, s.id)
	}
	raw := EncodeArgs(args)
	sizes := make([]int, len(raw))
	for i := range raw {
		sizes[i] = len(raw[i])
	}
	c.nodes = append(c.nodes, &Node{
		ID:         id,
		KernelAddr: k.Addr(),
		Params:     raw,
		ParamSizes: sizes,
		Deps:       deps,
	})
	c.lastInStream[s.id] = id
	return id
}

// RecordEvent records the event on the stream. During capture it marks
// the stream's last node as the event's dependency source.
func (s *Stream) RecordEvent(e *Event) error {
	e.recorded = true
	if c := s.p.capture; c != nil {
		if last, ok := c.lastInStream[s.id]; ok {
			e.node = last
		} else {
			e.node = -1
		}
	}
	return nil
}

// WaitEvent makes subsequent work on the stream depend on the event.
func (s *Stream) WaitEvent(e *Event) error {
	if !e.recorded {
		return fmt.Errorf("cuda: wait on unrecorded event")
	}
	if c := s.p.capture; c != nil && e.node >= 0 {
		c.pendingDeps[s.id] = append(c.pendingDeps[s.id], e.node)
	}
	return nil
}

// Node is one kernel node of a CUDA graph, carrying exactly the
// information of Figure 4(d): the kernel's address, the array of raw
// parameter images, the number of parameters and the size of each, plus
// the dependency edges. Nothing identifies which parameters are
// pointers.
type Node struct {
	ID         int
	KernelAddr uint64
	Params     [][]byte
	ParamSizes []int
	Deps       []int
}

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	cp := &Node{ID: n.ID, KernelAddr: n.KernelAddr}
	cp.Params = make([][]byte, len(n.Params))
	for i, p := range n.Params {
		cp.Params[i] = append([]byte(nil), p...)
	}
	cp.ParamSizes = append([]int(nil), n.ParamSizes...)
	cp.Deps = append([]int(nil), n.Deps...)
	return cp
}

// Graph is a CUDA graph: kernels plus execution dependencies.
type Graph struct {
	nodes []*Node
}

// NewGraph builds a graph from explicit nodes — the path Medusa's
// restoration uses (the explicit-construction analogue of
// cudaGraphAddKernelNode).
func NewGraph(nodes []*Node) *Graph { return &Graph{nodes: nodes} }

// Nodes returns the graph's nodes indexed by ID.
func (g *Graph) Nodes() []*Node { return g.nodes }

// NodeCount reports the number of kernel nodes.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// Validate checks IDs are dense, dependencies reference earlier valid
// nodes, and the graph is acyclic.
func (g *Graph) Validate() error {
	for i, n := range g.nodes {
		if n.ID != i {
			return fmt.Errorf("node %d has ID %d", i, n.ID)
		}
		if len(n.Params) != len(n.ParamSizes) {
			return fmt.Errorf("node %d: %d params, %d sizes", i, len(n.Params), len(n.ParamSizes))
		}
		for j, p := range n.Params {
			if len(p) != n.ParamSizes[j] {
				return fmt.Errorf("node %d param %d: image %d bytes, declared %d", i, j, len(p), n.ParamSizes[j])
			}
		}
		for _, d := range n.Deps {
			if d < 0 || d >= len(g.nodes) {
				return fmt.Errorf("node %d depends on invalid node %d", i, d)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological ordering of node IDs (dependencies
// first) or an error if the graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, node := range g.nodes {
		for _, d := range node.Deps {
			succ[d] = append(succ[d], node.ID)
			indeg[node.ID]++
		}
	}
	// Kahn's algorithm with a FIFO over node IDs keeps the order
	// deterministic and close to capture order.
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("cuda: graph has a dependency cycle (%d of %d nodes ordered)", len(order), n)
	}
	return order, nil
}

// GraphExec is an instantiated, ready-to-launch graph.
type GraphExec struct {
	g    *Graph
	p    *Process
	topo []int
}

// Instantiate validates the graph against the process — every node's
// kernel address must resolve to a loaded kernel with a matching
// parameter layout — and prepares it for launch (cudaGraphInstantiate).
func (g *Graph) Instantiate(p *Process) (*GraphExec, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, n := range g.nodes {
		k, ok := p.KernelByAddr(n.KernelAddr)
		if !ok {
			return nil, &UnknownKernelError{Addr: n.KernelAddr}
		}
		if len(n.Params) != len(k.impl.Params) {
			return nil, &ParamMismatchError{Kernel: k.Name(),
				Detail: fmt.Sprintf("node %d has %d params, kernel wants %d", n.ID, len(n.Params), len(k.impl.Params))}
		}
		for i, kind := range k.impl.Params {
			if n.ParamSizes[i] != kind.Size() {
				return nil, &ParamMismatchError{Kernel: k.Name(),
					Detail: fmt.Sprintf("node %d param %d is %d bytes, kernel wants %d", n.ID, i, n.ParamSizes[i], kind.Size())}
			}
		}
	}
	p.clock.Advance(time.Duration(len(g.nodes)) * p.cfg.InstantiateNodeCost)
	return &GraphExec{g: g, p: p, topo: topo}, nil
}

// Graph returns the underlying graph.
func (ge *GraphExec) Graph() *Graph { return ge.g }

// Launch replays the graph (cudaGraphLaunch): one CPU submission, then
// every node executes in dependency order with the parameters recorded
// in the nodes — the self-replaying property of §2.2.
func (ge *GraphExec) Launch(s *Stream) error {
	p := ge.p
	if p.capture != nil {
		err := &CaptureInvalidatedError{Op: "cudaGraphLaunch"}
		p.capture.invalidated = err
		return err
	}
	p.clock.Advance(p.cfg.GraphLaunchOverhead)
	for _, id := range ge.topo {
		n := ge.g.nodes[id]
		k, ok := p.KernelByAddr(n.KernelAddr)
		if !ok {
			return &UnknownKernelError{Addr: n.KernelAddr}
		}
		args, err := DecodeArgs(k.impl.Params, n.Params)
		if err != nil {
			return &ParamMismatchError{Kernel: k.Name(), Detail: err.Error()}
		}
		p.clock.Advance(p.kernelCost(k.impl, args))
		if p.dev.Functional() && k.impl.Func != nil {
			if err := k.impl.Func(p.dev, args); err != nil {
				return fmt.Errorf("graph node %d kernel %s: %w", id, k.Name(), err)
			}
		}
	}
	return nil
}
