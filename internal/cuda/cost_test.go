package cuda

import (
	"testing"
	"time"

	"github.com/medusa-repro/medusa/internal/gpu"
	"github.com/medusa-repro/medusa/internal/vclock"
)

// costRuntime installs kernels with controlled Traffic/Flops models.
func costRuntime(t testing.TB) *Runtime {
	t.Helper()
	rt := NewRuntime()
	rt.MustRegister(KernelImpl{
		Name: "mem_bound", Library: "libc.so", Module: "m", Exported: true,
		Params:  []ParamKind{U32},
		Traffic: func(a []Value) uint64 { return uint64(a[0].U32()) },
	})
	rt.MustRegister(KernelImpl{
		Name: "compute_bound", Library: "libc.so", Module: "m", Exported: true,
		Params: []ParamKind{U32},
		Flops:  func(a []Value) float64 { return float64(a[0].U32()) * 1e9 },
	})
	rt.MustRegister(KernelImpl{
		Name: "tiny", Library: "libc.so", Module: "m", Exported: true,
		Params: []ParamKind{},
	})
	return rt
}

func TestRooflineMemoryBound(t *testing.T) {
	clk := vclock.New()
	p := NewProcess(costRuntime(t), clk, Config{Seed: 1, Mode: gpu.CostOnly})
	s := p.NewStream()
	// Load module (and absorb that cost) with a tiny launch.
	if err := p.Launch(s, "tiny", nil); err != nil {
		t.Fatal(err)
	}
	// 1555 GB of traffic ⇒ exactly 1s at HBM bandwidth.
	before := clk.Now()
	if err := p.Launch(s, "mem_bound", []Value{U32Value(1_555_000_000)}); err != nil {
		t.Fatal(err)
	}
	exec := clk.Now() - before - p.Config().LaunchOverhead
	if exec < 990*time.Microsecond || exec > 1010*time.Microsecond {
		t.Fatalf("mem-bound exec = %v, want ≈1ms for 1.555GB", exec)
	}
}

func TestRooflineComputeBound(t *testing.T) {
	clk := vclock.New()
	p := NewProcess(costRuntime(t), clk, Config{Seed: 2, Mode: gpu.CostOnly})
	s := p.NewStream()
	if err := p.Launch(s, "tiny", nil); err != nil {
		t.Fatal(err)
	}
	// 156 GFLOP at 50% of 312 TFLOPS ⇒ 1ms.
	before := clk.Now()
	if err := p.Launch(s, "compute_bound", []Value{U32Value(156)}); err != nil {
		t.Fatal(err)
	}
	exec := clk.Now() - before - p.Config().LaunchOverhead
	if exec < 990*time.Microsecond || exec > 1010*time.Microsecond {
		t.Fatalf("compute-bound exec = %v, want ≈1ms", exec)
	}
}

func TestRooflineFloor(t *testing.T) {
	clk := vclock.New()
	p := NewProcess(costRuntime(t), clk, Config{Seed: 3, Mode: gpu.CostOnly})
	s := p.NewStream()
	if err := p.Launch(s, "tiny", nil); err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	if err := p.Launch(s, "tiny", nil); err != nil {
		t.Fatal(err)
	}
	got := clk.Now() - before
	want := p.Config().LaunchOverhead + 2*time.Microsecond
	if got != want {
		t.Fatalf("floor launch = %v, want %v", got, want)
	}
}

func TestModuleLoadChargedOnce(t *testing.T) {
	clk := vclock.New()
	p := NewProcess(costRuntime(t), clk, Config{Seed: 4, Mode: gpu.CostOnly})
	s := p.NewStream()
	first := clk.Span(func() {
		if err := p.Launch(s, "tiny", nil); err != nil {
			t.Fatal(err)
		}
	})
	second := clk.Span(func() {
		if err := p.Launch(s, "tiny", nil); err != nil {
			t.Fatal(err)
		}
	})
	// First launch pays dlopen + module load; second does not.
	if first-second < p.Config().ModuleLoadCost {
		t.Fatalf("module load not charged on first launch: first %v, second %v", first, second)
	}
}

func TestCustomKernelCostHook(t *testing.T) {
	clk := vclock.New()
	p := NewProcess(costRuntime(t), clk, Config{
		Seed: 5, Mode: gpu.CostOnly,
		KernelCost: func(impl *KernelImpl, args []Value) time.Duration {
			return 42 * time.Millisecond
		},
	})
	s := p.NewStream()
	if err := p.Launch(s, "tiny", nil); err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	if err := p.Launch(s, "tiny", nil); err != nil {
		t.Fatal(err)
	}
	got := clk.Now() - before - p.Config().LaunchOverhead
	if got != 42*time.Millisecond {
		t.Fatalf("custom cost hook not used: %v", got)
	}
}

func TestWaitUnrecordedEvent(t *testing.T) {
	p := NewProcess(costRuntime(t), vclock.New(), Config{Seed: 6, Mode: gpu.CostOnly})
	s := p.NewStream()
	ev := p.NewEvent()
	if err := s.WaitEvent(ev); err == nil {
		t.Fatal("wait on unrecorded event succeeded")
	}
}

func TestGraphLaunchDuringCaptureInvalidates(t *testing.T) {
	p := NewProcess(costRuntime(t), vclock.New(), Config{Seed: 7, Mode: gpu.CostOnly})
	s := p.NewStream()
	if err := p.Launch(s, "tiny", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginCapture(); err != nil {
		t.Fatal(err)
	}
	if err := p.Launch(s, "tiny", nil); err != nil {
		t.Fatal(err)
	}
	g, err := s.EndCapture()
	if err != nil {
		t.Fatal(err)
	}
	ge, err := g.Instantiate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginCapture(); err != nil {
		t.Fatal(err)
	}
	if err := ge.Launch(s); err == nil {
		t.Fatal("graph launch during capture succeeded")
	}
	if _, err := s.EndCapture(); err == nil {
		t.Fatal("capture survived a graph launch")
	}
}

func TestStreamSynchronizeDuringCapture(t *testing.T) {
	p := NewProcess(costRuntime(t), vclock.New(), Config{Seed: 8, Mode: gpu.CostOnly})
	s := p.NewStream()
	if err := s.Synchronize(); err != nil {
		t.Fatalf("sync outside capture = %v", err)
	}
	if err := p.Launch(s, "tiny", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginCapture(); err != nil {
		t.Fatal(err)
	}
	if err := s.Synchronize(); err == nil {
		t.Fatal("stream sync during capture succeeded")
	}
	if _, err := s.EndCapture(); err == nil {
		t.Fatal("capture survived stream sync")
	}
}
